// Flow scheduling example (paper §5.2): FLUX's FFNN predicts flow sizes at
// flow admission; predicted sizes map to strict-priority bands on a 2×2
// spine–leaf fabric running DCTCP. The example contrasts the in-kernel
// LiteFlow snapshot predictor with a netlink userspace deployment and
// reports FCT by flow class.
//
// Run: go run ./examples/scheduling
package main

import (
	"fmt"
	"math/rand"

	"github.com/liteflow-sim/liteflow/internal/cc"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/quant"
	"github.com/liteflow-sim/liteflow/internal/sched"
	"github.com/liteflow-sim/liteflow/internal/stats"
	"github.com/liteflow-sim/liteflow/internal/tcp"
	"github.com/liteflow-sim/liteflow/internal/topo"
	"github.com/liteflow-sim/liteflow/internal/workload"
)

func run(name string, useKernel bool) {
	eng := netsim.NewEngine()
	opts := topo.DefaultSpineLeafOpts(8) // 16 hosts
	opts.UsePrioQueues = true
	sl := topo.BuildSpineLeaf(eng, opts)
	costs := ksim.DefaultCosts()

	// Train the predictor.
	net := sched.NewFFNN(1)
	fm := sched.NewFeatureModel(2)
	dist := workload.WebSearch()
	r := rand.New(rand.NewSource(3))
	var feats [][]float64
	var sizes []int64
	for i := 0; i < 512; i++ {
		s := dist.Sample(r)
		sizes = append(sizes, s)
		feats = append(feats, fm.Features(s))
	}
	sched.Train(net, feats, sizes, 600, 1e-2)

	var predictor sched.Predictor
	if useKernel {
		predictor = sched.NewKernelPredictor(eng, nil, costs,
			quant.Quantize(net, quant.DefaultConfig()))
	} else {
		predictor = sched.NewUserPredictor(eng, nil, costs, net, sched.Netlink)
	}

	// Workload.
	wr := rand.New(rand.NewSource(7))
	flows := workload.Generate(wr, 800, len(sl.Hosts), 0.2, opts.HostLinkBps, dist)
	dists := [3]*stats.Dist{stats.NewDist(64), stats.NewDist(64), stats.NewDist(64)}
	var predLat stats.Summary

	for idx, fs := range flows {
		fs := fs
		flowID := netsim.FlowID(idx + 1)
		eng.At(fs.At, func() {
			src, dst := sl.Hosts[fs.Src], sl.Hosts[fs.Dst]
			snd := tcp.NewSender(src, flowID, dst.ID, fs.Size, cc.NewDCTCP())
			tcp.NewReceiver(dst, flowID, src.ID)
			snd.OnComplete = func(fct netsim.Time) {
				dists[workload.ClassOf(fs.Size)].Add(float64(fct) / 1e3)
			}
			lat := predictor.Predict(fm.Features(fs.Size), func(prio int) {
				snd.Prio = prio
				snd.Start()
			})
			predLat.Add(float64(lat) / 1e3)
		})
	}
	eng.RunUntil(flows[len(flows)-1].At + 20*netsim.Second)

	fmt.Printf("%-22s prediction %5.2fµs | FCT short %6.0fµs  mid %6.0fµs  long %8.0fµs\n",
		name, predLat.Mean(), dists[0].Mean(), dists[1].Mean(), dists[2].Mean())
}

func main() {
	fmt.Println("flow scheduling on a 2×2 spine-leaf fabric (16 hosts, DCTCP, 8 priority bands)")
	run("LF-FFNN (kernel)", true)
	run("netlink-FFNN (user)", false)
	fmt.Println("\nthe kernel snapshot tags flows before their first packet leaves;")
	fmt.Println("the userspace deployment pays a round trip per prediction (Figure 15/16).")
}
