// Load balancing example (paper §5.3): an MLP selects the spine for each
// flow on a 2×2 spine–leaf fabric using per-path congestion features (ECN
// mark fractions, smoothed RTTs), enforced with XPath-style explicit paths.
// ECMP hashing is the baseline. An adversarial elephant flow congests one
// spine; the learned selector routes around it.
//
// Run: go run ./examples/loadbalance
package main

import (
	"fmt"
	"math/rand"

	"github.com/liteflow-sim/liteflow/internal/cc"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/lb"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/quant"
	"github.com/liteflow-sim/liteflow/internal/stats"
	"github.com/liteflow-sim/liteflow/internal/tcp"
	"github.com/liteflow-sim/liteflow/internal/topo"
	"github.com/liteflow-sim/liteflow/internal/workload"
)

// feedbackCC wraps DCTCP and measures the flow's ECN fraction and mean RTT.
type feedbackCC struct {
	*cc.DCTCP
	acks, eces int
	rttSum     netsim.Time
}

func (d *feedbackCC) OnAck(a tcp.AckInfo) {
	d.acks++
	if a.ECE {
		d.eces++
	}
	d.rttSum += a.RTT
	d.DCTCP.OnAck(a)
}

func run(name string, useMLP bool) {
	eng := netsim.NewEngine()
	opts := topo.DefaultSpineLeafOpts(4) // 8 hosts
	opts.FabricLinkBps = 10e9            // oversubscribable fabric: one host can congest a spine
	sl := topo.BuildSpineLeaf(eng, opts)
	paths := len(sl.Spines)

	// The learned selector, trained on the congestion oracle then
	// quantized into a kernel snapshot (LF-MLP).
	net := lb.NewMLP(paths, 1)
	lb.Train(net, paths, 400, 1e-2, 1.0, 2)
	kernel := lb.NewKernelSelector(eng, nil, ksim.DefaultCosts(),
		quant.Quantize(net, quant.DefaultConfig()))
	ecmp := &lb.ECMPSelector{Paths: paths}
	monitor := lb.NewPathMonitor(paths)

	// Adversary: a long-running elephant pinned through spine 0 between
	// leaves, congesting that path.
	eleSrc, eleDst := sl.Hosts[0], sl.Hosts[7]
	ele := tcp.NewSender(eleSrc, 100000, eleDst.ID, 0, tcp.NewFixedRate(9e9))
	ele.Path = sl.PathVia(eleSrc.ID, eleDst.ID, 0)
	tcp.NewReceiver(eleDst, 100000, eleSrc.ID)
	ele.Start()

	// Foreground flows between the leaves.
	r := rand.New(rand.NewSource(7))
	dist := workload.WebSearch()
	fct := stats.NewDist(256)
	var viaSpine [2]int
	const flows = 400
	t := netsim.Time(0)
	for i := 0; i < flows; i++ {
		i := i
		t += netsim.Time(r.ExpFloat64() * 2e6) // ~2 ms mean spacing
		size := dist.Sample(r)
		src := sl.Hosts[1+r.Intn(3)] // avoid the elephant's hosts
		dst := sl.Hosts[4+r.Intn(3)]
		flowID := netsim.FlowID(i + 1)
		eng.At(t, func() {
			ctrl := &feedbackCC{DCTCP: cc.NewDCTCP()}
			snd := tcp.NewSender(src, flowID, dst.ID, size, ctrl)
			tcp.NewReceiver(dst, flowID, src.ID)
			norm := float64(size) / 1e7
			if norm > 1 {
				norm = 1
			}
			feats := monitor.Features(norm)
			sel := lb.Selector(ecmp)
			if useMLP {
				sel = kernel
			}
			sel.Select(feats, func(path int) {
				viaSpine[path]++
				snd.Path = sl.PathVia(src.ID, dst.ID, path)
				snd.OnComplete = func(d netsim.Time) {
					fct.Add(float64(d) / 1e3)
					ecn := 0.0
					if ctrl.acks > 0 {
						ecn = float64(ctrl.eces) / float64(ctrl.acks)
					}
					var avgRTT netsim.Time
					if ctrl.acks > 0 {
						avgRTT = ctrl.rttSum / netsim.Time(ctrl.acks)
					}
					monitor.Observe(path, ecn, avgRTT)
				}
				snd.Start()
			})
		})
	}
	eng.RunUntil(t + 20*netsim.Second)

	fmt.Printf("%-8s FCT mean %7.0fµs p99 %8.0fµs | spine split %d/%d | spine0 ECN %.2f spine1 ECN %.2f\n",
		name, fct.Mean(), fct.Quantile(0.99), viaSpine[0], viaSpine[1],
		monitor.ECN(0), monitor.ECN(1))
}

func main() {
	fmt.Println("load balancing on a 2×2 spine-leaf fabric with an elephant pinned to spine 0")
	run("LF-MLP", true)
	run("ECMP", false)
	fmt.Println("\nthe learned selector observes spine 0's ECN marks and shifts flows to")
	fmt.Println("spine 1; ECMP keeps hashing half the flows into the congested path (§5.3).")
}
