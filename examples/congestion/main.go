// Congestion control example: the paper's headline scenario. One flow on a
// congested 1 Gbps / 10 ms-RTT dumbbell, controlled by the same Aurora
// policy network deployed three ways:
//
//   - LF-Aurora: integer snapshot in the (simulated) kernel via LiteFlow
//   - CCP-Aurora-100ms: userspace inference, 100 ms exchange interval
//   - kernel BBR as the classic baseline
//
// The kernel snapshot matches fine-grained control without the cross-space
// overhead — the core claim of the paper's Figure 11.
//
// Run: go run ./examples/congestion
package main

import (
	"fmt"
	"log"

	liteflow "github.com/liteflow-sim/liteflow"
	"github.com/liteflow-sim/liteflow/internal/cc"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/tcp"
	"github.com/liteflow-sim/liteflow/internal/topo"
)

func runScheme(name string, policy *liteflow.Network, mkCtrl func(eng *netsim.Engine, lf *liteflow.Core, cpu *ksim.CPU) tcp.CongestionControl) float64 {
	eng := netsim.NewEngine()
	d := topo.BuildDumbbell(eng, topo.TestbedOpts(1))
	costs := liteflow.DefaultCosts()
	d.ProvisionCPUs(4, costs)
	sender, receiver := d.Senders[0], d.Receivers[0]

	// Bursty background UDP keeps the bottleneck congested and moving
	// (paper §2.2 setup; mean 0.1 Gbps).
	udp := tcp.NewBurstyUDP(tcp.NewUDPSource(d.UDPHost, 99, receiver.ID, 100e6),
		20e6, 180e6, 200*liteflow.Millisecond)
	udp.Start()
	defer udp.Stop()

	var lf *liteflow.Core
	if policy != nil {
		cfg := liteflow.DefaultConfig()
		cfg.FlowCacheTimeout = 0
		lf = liteflow.NewCore(eng, sender.CPU, costs, cfg)
		snap, err := liteflow.BuildSnapshot(policy, liteflow.DefaultQuantConfig(), "aurora")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := lf.RegisterModel(snap); err != nil {
			log.Fatal(err)
		}
	}

	ctrl := mkCtrl(eng, lf, sender.CPU)
	s := tcp.NewSender(sender, 1, receiver.ID, 0, ctrl)
	r := tcp.NewReceiver(receiver, 1, sender.ID)
	var bytes int64
	measuring := false
	r.OnDeliver = func(n int, now netsim.Time) {
		if measuring {
			bytes += int64(n)
		}
	}
	s.Start()
	eng.RunUntil(3 * liteflow.Second)
	measuring = true
	eng.RunUntil(8 * liteflow.Second)
	if m, ok := ctrl.(*cc.MIController); ok {
		m.Stop()
	}
	if lf != nil {
		lf.StopSweeper()
	}
	g := float64(bytes*8) / 5e9
	fmt.Printf("%-18s %6.3f Gbps\n", name, g)
	return g
}

func main() {
	fmt.Println("pretraining the Aurora policy network (32/16 hidden units)…")
	aurora := cc.NewAuroraNet(1)
	cc.Pretrain(aurora, 400, 2)

	fmt.Println("\ngoodput of one flow on the congested testbed:")
	lfG := runScheme("LF-Aurora", aurora, func(eng *netsim.Engine, lf *liteflow.Core, cpu *ksim.CPU) tcp.CongestionControl {
		return cc.NewMIController(eng, liteflow.NewFlowBackend(lf, 1), 500e6)
	})
	ccpG := runScheme("CCP-Aurora-100ms", nil, func(eng *netsim.Engine, lf *liteflow.Core, cpu *ksim.CPU) tcp.CongestionControl {
		b := &cc.CCPBackend{Eng: eng, CPU: cpu, Costs: liteflow.DefaultCosts(),
			Policy: cc.NewNNPolicy(aurora), Interval: 100 * liteflow.Millisecond,
			UserMACs: aurora.MACs()}
		return cc.NewMIController(eng, b, 500e6)
	})
	runScheme("kernel BBR", nil, func(eng *netsim.Engine, lf *liteflow.Core, cpu *ksim.CPU) tcp.CongestionControl {
		return cc.NewBBR()
	})

	fmt.Printf("\nLF-Aurora outperforms CCP-Aurora-100ms by %.1f%% — the same NN,\n"+
		"deployed where inference belongs (paper Figure 11).\n", (lfG/ccpG-1)*100)
}
