// Quickstart: the full LiteFlow lifecycle in one small program.
//
//  1. Train a float NN in "userspace".
//  2. Quantize it and generate a kernel snapshot module (integer-only).
//  3. Register the snapshot with the LiteFlow core (lf_register_model).
//  4. Query it through the inference router (lf_query_model).
//  5. Tune the userspace model, deliver batches over the netlink channel,
//     and watch the service install an updated snapshot once the fidelity
//     gate trips — while the old snapshot keeps serving.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	liteflow "github.com/liteflow-sim/liteflow"
)

// user implements the three userspace-service interfaces around one network.
type user struct {
	net  *liteflow.Network
	loss float64
}

func (u *user) Freeze() *liteflow.Network    { return u.net }
func (u *user) Stability() float64           { return u.loss }
func (u *user) Infer(in []float64) []float64 { return u.net.Infer(in) }
func (u *user) Adapt(batch []liteflow.Sample) {
	// A real adapter would train here; the quickstart just notes receipt
	// and pretends training converged.
	fmt.Printf("  slow path: adapted on %d samples\n", len(batch))
	u.loss = 0.01
}

func main() {
	// A simulated world: one virtual clock, one 4-core host CPU.
	eng := liteflow.NewEngine()
	cpu := liteflow.NewHostCPU(eng, 4)
	costs := liteflow.DefaultCosts()

	// 1. A small userspace model (4 inputs → 1 output).
	net := liteflow.NewNetwork([]int{4, 8, 1},
		[]liteflow.Activation{liteflow.Tanh, liteflow.Sigmoid}, 42)

	// 2. Quantize + generate the snapshot module.
	snap, err := liteflow.BuildSnapshot(net, liteflow.DefaultQuantConfig(), "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated snapshot %q: %d bytes of integer-only source\n",
		snap.Name, len(snap.Source))

	// 3. The kernel core module.
	cfg := liteflow.DefaultConfig()
	cfg.OutMin, cfg.OutMax = 0, 1 // sigmoid output range
	lf := liteflow.NewCore(eng, cpu, costs, cfg)
	if _, err := lf.RegisterModel(snap); err != nil {
		log.Fatal(err)
	}

	// 4. Fast-path inference for flow 7 (pinned by the flow cache).
	input := snap.Program.QuantizeInput([]float64{0.1, 0.2, 0.3, 0.4}, nil)
	output := make([]int64, 1)
	if err := lf.QueryModel(7, input, output); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fast path: flow 7 → model output %.3f (integer %d at scale %d)\n",
		float64(output[0])/float64(snap.Program.OutputScale), output[0], snap.Program.OutputScale)

	// 5. The slow path: batched kernel→user delivery plus snapshot updates.
	u := &user{net: net.Clone(), loss: 1}
	// Diverge the userspace model so an update becomes necessary.
	u.net.Layers[1].B[0] += 2
	ch := liteflow.NewNetlinkChannel(eng, cpu, costs, nil)
	svc := liteflow.NewSlowPath(lf, ch, u, u, u)
	svc.OnUpdate = func(m *liteflow.Model) {
		fmt.Printf("  snapshot update installed: %s (router switched roles)\n", m.Name)
	}
	svc.Start(100 * liteflow.Millisecond) // the paper's batch interval T

	// Kernel collector: push a training sample every 10 ms.
	var collect func()
	n := 0
	collect = func() {
		if n >= 100 {
			return
		}
		n++
		ch.Push(liteflow.EncodeSample(liteflow.Sample{
			Input: []float64{0.1 * float64(n%10), 0.2, 0.3, 0.4},
			At:    eng.Now(),
		}))
		eng.After(10*liteflow.Millisecond, collect)
	}
	eng.After(0, collect)

	eng.RunUntil(2 * liteflow.Second)
	ch.StopBatching()
	lf.StopSweeper()

	st := lf.Stats()
	ss := svc.Stats()
	fmt.Printf("\ncore: %d queries, %d installs, %d role switches\n",
		st.Queries, st.Installs, st.Switches)
	fmt.Printf("service: %d batches, %d fidelity checks, %d updates (min fidelity loss %.3f)\n",
		ss.Batches, ss.FidelityChecks, ss.Updates, ss.LastFidelity)
	fmt.Printf("CPU: %s\n", cpu.Report())

	// Flow 7 is still served consistently; new flows use the new snapshot.
	if err := lf.QueryModel(7, input, output); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow 7 after update (flow-consistent): %.3f\n",
		float64(output[0])/float64(snap.Program.OutputScale))
	if err := lf.QueryModel(8, input, output); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new flow 8 (updated snapshot):        %.3f\n",
		float64(output[0])/float64(snap.Program.OutputScale))
}
