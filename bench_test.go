package liteflow_test

// One benchmark per table and figure of the paper's evaluation (DESIGN.md
// §3): each runs the corresponding experiment end-to-end on the simulated
// substrate at a reduced scale and reports the headline quantities via
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates every result.
// cmd/lfbench prints the full rows at paper scale.

import (
	"testing"

	liteflow "github.com/liteflow-sim/liteflow"
	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/experiments"
	"github.com/liteflow-sim/liteflow/internal/fleet"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netlink"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/obs"
)

// benchCfg keeps full-suite bench runs tractable; cmd/lfbench -all uses
// Scale 1.
func benchCfg() experiments.Config { return experiments.Config{Scale: 0.1, Seed: 1} }

func runExperiment(b *testing.B, id string) experiments.Result {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = r.Run(benchCfg())
	}
	return res
}

func BenchmarkFig01a(b *testing.B) {
	res := runExperiment(b, "fig1a")
	if s := res.Get("100ms"); s != nil && len(s.Y) > 0 {
		b.ReportMetric(s.X[len(s.X)/2], "goodput-p50-100ms-Gbps")
	}
}

func BenchmarkFig01b(b *testing.B) { runExperiment(b, "fig1b") }

func BenchmarkFig02(b *testing.B) { runExperiment(b, "fig2") }

func BenchmarkFig03(b *testing.B) {
	res := runExperiment(b, "fig3")
	if s := res.Get("CCP-Aurora-1ms"); s != nil && len(s.Y) > 0 {
		b.ReportMetric(s.Y[len(s.Y)-1], "ccp1ms-over-bbr-at-N10")
	}
}

func BenchmarkFig04(b *testing.B) {
	res := runExperiment(b, "fig4")
	if s := res.Get("softirq-share-%"); s != nil && len(s.Y) > 0 {
		b.ReportMetric(s.Y[0], "bbr-softirq-share-pct")
		b.ReportMetric(s.Y[len(s.Y)-1], "ccp1ms-softirq-share-pct")
	}
}

func BenchmarkFig05(b *testing.B) { runExperiment(b, "fig5") }

func BenchmarkFig07(b *testing.B) {
	res := runExperiment(b, "fig7")
	if s := res.Get("Aurora"); s != nil && len(s.Y) >= 4 {
		b.ReportMetric(s.Y[3]*100, "aurora-loss-at-C1000-pct")
	}
}

func BenchmarkFig08(b *testing.B) { runExperiment(b, "fig8") }

func BenchmarkFig11(b *testing.B) {
	res := runExperiment(b, "fig11")
	if s := res.Get("goodput"); s != nil && len(s.Y) >= 5 {
		b.ReportMetric(s.Y[0], "lf-aurora-Gbps")
		b.ReportMetric(s.Y[4], "ccp-aurora-100ms-Gbps")
	}
}

func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }

func BenchmarkFig13(b *testing.B) {
	res := runExperiment(b, "fig13")
	if s := res.Get("LF-Aurora"); s != nil && len(s.Y) > 0 {
		b.ReportMetric(s.Y[len(s.Y)-1], "lf-aurora-over-bbr-at-N10")
	}
}

func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14") }

func BenchmarkDummyNN(b *testing.B) { runExperiment(b, "dummy") }

func BenchmarkFig15(b *testing.B) { runExperiment(b, "fig15") }

func BenchmarkFig16(b *testing.B) {
	res := runExperiment(b, "fig16")
	if s := res.Get("LF-FFNN"); s != nil && len(s.Y) >= 3 {
		b.ReportMetric(s.Y[0], "lf-ffnn-short-fct-us")
		b.ReportMetric(s.Y[2], "lf-ffnn-long-fct-us")
	}
}

func BenchmarkFig17(b *testing.B) {
	res := runExperiment(b, "fig17")
	if s := res.Get("LF-MLP"); s != nil && len(s.Y) >= 3 {
		b.ReportMetric(s.Y[0], "lf-mlp-short-fct-us")
	}
}

// BenchmarkQuerySteadyState measures the steady-state cost of lf_query_model
// on a cached flow and enforces the zero-allocation contract with
// testing.AllocsPerRun (a failed bench run, not just a regressed number —
// see also alloc_test.go for the plain-test variant).
func BenchmarkQuerySteadyState(b *testing.B) {
	lf, in, out := queryFixture(b)
	if err := lf.QueryModel(1, in, out); err != nil {
		b.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := lf.QueryModel(1, in, out); err != nil {
			b.Fatal(err)
		}
	}); allocs != 0 {
		b.Fatalf("steady-state QueryModel allocates %.1f allocs/op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lf.QueryModel(1, in, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryModelBatch measures the strided batch entry point at batch
// 64; allocs/op must stay 0 (one arena per core, reused across calls).
func BenchmarkQueryModelBatch(b *testing.B) {
	lf, _, _ := queryFixture(b)
	const n = 64
	ins := make([]int64, n*30)
	outs := make([]int64, n*1)
	if err := lf.QueryModelBatch(1, ins, outs, n); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lf.QueryModelBatch(1, ins, outs, n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLookupManyFlows measures steady-state QueryModel with 100k flows
// resident in the cache: sharding keeps each map small, and the hit path must
// stay allocation-free regardless of cache population.
func BenchmarkLookupManyFlows(b *testing.B) {
	lf, in, out := queryFixture(b)
	const resident = 100_000
	for f := 1; f <= resident; f++ {
		if err := lf.QueryModel(liteflow.FlowID(f), in, out); err != nil {
			b.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := lf.QueryModel(liteflow.FlowID(resident/2), in, out); err != nil {
			b.Fatal(err)
		}
	}); allocs != 0 {
		b.Fatalf("many-flows lookup allocates %.1f allocs/op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lf.QueryModel(liteflow.FlowID(i%resident+1), in, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepChurn measures the insert→expire cycle through the
// incremental sweeper: each op caches a batch of fresh flows and advances
// virtual time past the cache timeout, so the timing wheel parks, scans and
// evicts every entry.
func BenchmarkSweepChurn(b *testing.B) {
	eng := liteflow.NewEngine()
	cfg := liteflow.DefaultConfig()
	cfg.FlowCacheTimeout = liteflow.Millisecond
	lf := liteflow.New(eng, nil, liteflow.DefaultCosts(), cfg)
	net := liteflow.NewNetwork([]int{30, 32, 16, 1},
		[]liteflow.Activation{liteflow.Tanh, liteflow.Tanh, liteflow.Tanh}, 1)
	snap, err := liteflow.BuildSnapshot(net, liteflow.DefaultQuantConfig(), "aurora")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := lf.RegisterModel(snap); err != nil {
		b.Fatal(err)
	}
	in := make([]int64, 30)
	out := make([]int64, 1)
	const batch = 256
	next := liteflow.FlowID(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			if err := lf.QueryModel(next, in, out); err != nil {
				b.Fatal(err)
			}
			next++
		}
		eng.RunUntil(eng.Now() + 2*liteflow.Millisecond)
	}
	b.StopTimer()
	lf.StopSweeper()
	if n := lf.CachedFlows(); n != 0 {
		b.Fatalf("sweeper left %d flows cached after the timeout horizon", n)
	}
}

// BenchmarkTable1API measures the core API's hot entry point, lf_query_model
// through the flow cache — the per-inference cost a datapath function pays.
func BenchmarkTable1API(b *testing.B) {
	eng := liteflow.NewEngine()
	cfg := liteflow.DefaultConfig()
	cfg.FlowCacheTimeout = 0
	lf := liteflow.New(eng, nil, liteflow.DefaultCosts(), cfg)
	net := liteflow.NewNetwork([]int{30, 32, 16, 1},
		[]liteflow.Activation{liteflow.Tanh, liteflow.Tanh, liteflow.Tanh}, 1)
	snap, err := liteflow.BuildSnapshot(net, liteflow.DefaultQuantConfig(), "aurora")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := lf.RegisterModel(snap); err != nil {
		b.Fatal(err)
	}
	in := make([]int64, 30)
	out := make([]int64, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lf.QueryModel(1, in, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetFanout measures one full distribution-plane wave: 8 members
// behind one fleet controller, with a model that changes every pooled round,
// so each op is push → aggregate → gate → build → 8 bounded-concurrency
// member installs. This is the control-plane cost of keeping a fleet at
// epoch parity, the figure the fleet-scale experiment scales up.
func BenchmarkFleetFanout(b *testing.B) {
	eng := netsim.NewEngine()
	cfg := core.DefaultConfig()
	cfg.StabilityWindow = 1 // open the correctness gate on the first round
	user := &fanoutUser{net: nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Linear}, 1), sign: 0.5}
	ctrl := fleet.New(eng, cfg, user, user, user, fleet.Config{
		BatchInterval:         netsim.Millisecond,
		AggregationInterval:   netsim.Millisecond,
		MaxConcurrentInstalls: 8,
	})
	costs := ksim.DefaultCosts()
	for i := 0; i < 8; i++ {
		cpu := ksim.NewCPU(eng, 4, obs.Scope{})
		if _, err := ctrl.AddMember(core.NewCore(eng, cpu, costs, cfg),
			netlink.NewChannel(eng, cpu, costs, nil)); err != nil {
			b.Fatal(err)
		}
	}
	if err := ctrl.Start(); err != nil {
		b.Fatal(err)
	}
	input := []float64{0.1, 0.2, 0.3, 0.4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range ctrl.Members() {
			m.Chan.Push(core.EncodeSample(core.Sample{Input: input, At: eng.Now()}))
		}
		eng.RunUntil(eng.Now() + 2*netsim.Millisecond)
	}
	b.StopTimer()
	// Drain the last wave: its installs land just past the measured window.
	eng.RunUntil(eng.Now() + 2*netsim.Millisecond)
	ctrl.Stop()
	st := ctrl.Stats()
	if st.VersionsBuilt == 0 || st.MemberInstalls == 0 {
		b.Fatalf("fan-out never fired: %d versions, %d installs", st.VersionsBuilt, st.MemberInstalls)
	}
	if st.StaleMembers != 0 {
		b.Fatalf("%d members stale after the drain", st.StaleMembers)
	}
	b.ReportMetric(float64(st.MemberInstalls)/float64(b.N), "installs/op")
}

// fanoutUser flips the model every pooled adaptation round, so every
// aggregation fails the necessity gate and mints a new epoch.
type fanoutUser struct {
	net  *nn.Network
	sign float64
}

func (u *fanoutUser) Freeze() *nn.Network          { return u.net }
func (u *fanoutUser) Stability() float64           { return 0.5 }
func (u *fanoutUser) Infer(in []float64) []float64 { return u.net.Infer(in) }
func (u *fanoutUser) Adapt([]core.Sample) {
	u.net.Layers[len(u.net.Layers)-1].B[0] += u.sign
	u.sign = -u.sign
}
