package liteflow_test

import (
	"errors"
	"strings"
	"testing"

	liteflow "github.com/liteflow-sim/liteflow"
)

// TestPublicAPILifecycle drives the full facade: build → quantize → generate
// → register → query → adapt → update, asserting the paper's Table 1
// semantics through the public package only.
func TestPublicAPILifecycle(t *testing.T) {
	eng := liteflow.NewEngine()
	cpu := liteflow.NewCPU(eng, 4)
	costs := liteflow.DefaultCosts()

	net := liteflow.NewNetwork([]int{4, 6, 1},
		[]liteflow.Activation{liteflow.Tanh, liteflow.Sigmoid}, 1)
	snap, err := liteflow.BuildSnapshot(net, liteflow.DefaultQuantConfig(), "api_test")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(snap.Source, "Infer_api_test") {
		t.Error("generated source must expose the inference entry point")
	}

	cfg := liteflow.DefaultConfig()
	cfg.OutMin, cfg.OutMax = 0, 1
	cfg.FlowCacheTimeout = 0
	lf := liteflow.New(eng, cpu, costs, cfg)
	if _, err := lf.RegisterModel(snap); err != nil {
		t.Fatal(err)
	}

	in := snap.Program.QuantizeInput([]float64{0.1, 0.2, 0.3, 0.4}, nil)
	out := make([]int64, 1)
	if err := lf.QueryModel(1, in, out); err != nil {
		t.Fatal(err)
	}
	want := make([]int64, 1)
	snap.Program.Infer(in, want)
	if out[0] != want[0] {
		t.Errorf("QueryModel = %d, direct = %d", out[0], want[0])
	}

	// Slow path through the facade.
	u := &apiUser{net: net.Clone()}
	u.net.Layers[1].B[0] += 2 // diverge so an update becomes necessary
	ch := liteflow.NewChannel(eng, cpu, costs, nil)
	svc := liteflow.NewService(lf, ch, u, u, u)
	updated := false
	svc.OnUpdate = func(m *liteflow.Model) { updated = true }
	svc.Start(50 * liteflow.Millisecond)
	for i := 0; i < 80; i++ {
		ch.Push(liteflow.EncodeSample(liteflow.Sample{
			Input: []float64{0.1, 0.2, 0.3, float64(i%7) / 7},
			At:    eng.Now(),
		}))
		eng.RunUntil(eng.Now() + 10*liteflow.Millisecond)
	}
	ch.StopBatching()
	lf.StopSweeper()
	if !updated {
		t.Errorf("diverged model must trigger a snapshot update; stats %+v", svc.Stats())
	}
	if lf.Stats().Switches == 0 {
		t.Error("update must switch router roles")
	}
}

type apiUser struct{ net *liteflow.Network }

func (u *apiUser) Freeze() *liteflow.Network     { return u.net }
func (u *apiUser) Stability() float64            { return 0.01 }
func (u *apiUser) Infer(in []float64) []float64  { return u.net.Infer(in) }
func (u *apiUser) Adapt(batch []liteflow.Sample) {}

func TestSampleCodecFacade(t *testing.T) {
	s := liteflow.Sample{Input: []float64{1, 2}, Aux: []float64{3}, At: 9}
	got, ok := liteflow.DecodeSample(liteflow.EncodeSample(s))
	if !ok || got.Input[1] != 2 || got.Aux[0] != 3 || got.At != 9 {
		t.Errorf("codec round trip failed: %+v", got)
	}
}

func TestGenerateSourceFacade(t *testing.T) {
	net := liteflow.NewNetwork([]int{2, 2}, []liteflow.Activation{liteflow.ReLU}, 1)
	src, err := liteflow.GenerateSource(liteflow.Quantize(net, liteflow.DefaultQuantConfig()), "gen")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "fc_0_comp") {
		t.Error("source missing layer function")
	}
	if _, err := liteflow.GenerateSource(liteflow.Quantize(net, liteflow.DefaultQuantConfig()), "bad name"); err == nil {
		t.Error("invalid name must be rejected")
	}
}

// TestOptionsAPILifecycle exercises the redesigned functional-options
// constructors end to end: an injected-fault run with watchdog + retry
// policies, sentinel-error classification, and profile lookup — all through
// the public facade.
func TestOptionsAPILifecycle(t *testing.T) {
	eng := liteflow.NewEngine()
	cpu := liteflow.NewHostCPU(eng, 4)
	costs := liteflow.DefaultCosts()
	sc := liteflow.NewScope(nil, nil)

	prof, ok := liteflow.FaultProfileByName("chaos")
	if !ok || !prof.Active() {
		t.Fatal("chaos profile must resolve and be active")
	}
	if _, ok := liteflow.FaultProfileByName("nope"); ok {
		t.Fatal("unknown profile name must be rejected")
	}
	inj := liteflow.NewFaultInjector(prof, 42, sc)

	net := liteflow.NewNetwork([]int{4, 6, 1},
		[]liteflow.Activation{liteflow.Tanh, liteflow.Sigmoid}, 1)
	snap, err := liteflow.BuildSnapshot(net, liteflow.DefaultQuantConfig(), "opts_test")
	if err != nil {
		t.Fatal(err)
	}

	cfg := liteflow.DefaultConfig()
	cfg.OutMin, cfg.OutMax = 0, 1
	cfg.FlowCacheTimeout = 0
	lf := liteflow.NewCore(eng, cpu, costs, cfg,
		liteflow.WithScope(sc),
		liteflow.WithWatchdog(liteflow.WatchdogConfig{Window: int64(200 * liteflow.Millisecond)}))
	defer lf.StopWatchdog()
	if _, err := lf.RegisterModel(snap); err != nil {
		t.Fatal(err)
	}

	u := &apiUser{net: net.Clone()}
	ch := liteflow.NewNetlinkChannel(eng, cpu, costs, nil,
		liteflow.WithScope(sc), liteflow.WithFaults(inj))
	svc := liteflow.NewSlowPath(lf, ch, u, u, u,
		liteflow.WithScope(sc), liteflow.WithFaults(inj),
		liteflow.WithRetry(liteflow.RetryConfig{
			Max: 2, Base: int64(10 * liteflow.Millisecond), Cap: int64(liteflow.Second)}))
	svc.Start(50 * liteflow.Millisecond)
	for i := 0; i < 60; i++ {
		ch.Push(liteflow.EncodeSample(liteflow.Sample{
			Input: []float64{0.1, 0.2, 0.3, float64(i%7) / 7},
			At:    eng.Now(),
		}))
		eng.RunUntil(eng.Now() + 10*liteflow.Millisecond)
	}
	ch.StopBatching()
	lf.StopSweeper()

	if inj.Stats().Total() == 0 {
		t.Error("chaos injector fired nothing over 600 virtual ms")
	}
	in := snap.Program.QuantizeInput([]float64{0.1, 0.2, 0.3, 0.4}, nil)
	out := make([]int64, 1)
	if err := lf.QueryModel(1, in, out); err != nil {
		t.Errorf("fast path must keep serving under faults: %v", err)
	}

	// Sentinel errors survive the facade re-export.
	wrongDims := liteflow.NewNetwork([]int{2, 2}, []liteflow.Activation{liteflow.ReLU}, 2)
	badSnap, err := liteflow.BuildSnapshot(wrongDims, liteflow.DefaultQuantConfig(), "wrong_dims")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lf.RegisterModel(badSnap); !errors.Is(err, liteflow.ErrDimensionMismatch) {
		t.Errorf("want ErrDimensionMismatch, got %v", err)
	}
	ch.Close()
	if err := ch.SendToKernel(8, nil); !errors.Is(err, liteflow.ErrChannelClosed) {
		t.Errorf("want ErrChannelClosed, got %v", err)
	}
	if _, err := liteflow.ParseSample(liteflow.Message{Data: []float64{-1, 1}}); !errors.Is(err, liteflow.ErrMalformedSample) {
		t.Errorf("want ErrMalformedSample, got %v", err)
	}
	if _, err := liteflow.BuildSnapshot(net, liteflow.DefaultQuantConfig(), "bad name"); !errors.Is(err, liteflow.ErrSnapshotBuild) {
		t.Errorf("want ErrSnapshotBuild, got %v", err)
	}
}
