package liteflow_test

import (
	"strings"
	"testing"

	liteflow "github.com/liteflow-sim/liteflow"
)

// TestPublicAPILifecycle drives the full facade: build → quantize → generate
// → register → query → adapt → update, asserting the paper's Table 1
// semantics through the public package only.
func TestPublicAPILifecycle(t *testing.T) {
	eng := liteflow.NewEngine()
	cpu := liteflow.NewCPU(eng, 4)
	costs := liteflow.DefaultCosts()

	net := liteflow.NewNetwork([]int{4, 6, 1},
		[]liteflow.Activation{liteflow.Tanh, liteflow.Sigmoid}, 1)
	snap, err := liteflow.BuildSnapshot(net, liteflow.DefaultQuantConfig(), "api_test")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(snap.Source, "Infer_api_test") {
		t.Error("generated source must expose the inference entry point")
	}

	cfg := liteflow.DefaultConfig()
	cfg.OutMin, cfg.OutMax = 0, 1
	cfg.FlowCacheTimeout = 0
	lf := liteflow.New(eng, cpu, costs, cfg)
	if _, err := lf.RegisterModel(snap); err != nil {
		t.Fatal(err)
	}

	in := snap.Program.QuantizeInput([]float64{0.1, 0.2, 0.3, 0.4}, nil)
	out := make([]int64, 1)
	if err := lf.QueryModel(1, in, out); err != nil {
		t.Fatal(err)
	}
	want := make([]int64, 1)
	snap.Program.Infer(in, want)
	if out[0] != want[0] {
		t.Errorf("QueryModel = %d, direct = %d", out[0], want[0])
	}

	// Slow path through the facade.
	u := &apiUser{net: net.Clone()}
	u.net.Layers[1].B[0] += 2 // diverge so an update becomes necessary
	ch := liteflow.NewChannel(eng, cpu, costs, nil)
	svc := liteflow.NewService(lf, ch, u, u, u)
	updated := false
	svc.OnUpdate = func(m *liteflow.Model) { updated = true }
	svc.Start(50 * liteflow.Millisecond)
	for i := 0; i < 80; i++ {
		ch.Push(liteflow.EncodeSample(liteflow.Sample{
			Input: []float64{0.1, 0.2, 0.3, float64(i%7) / 7},
			At:    eng.Now(),
		}))
		eng.RunUntil(eng.Now() + 10*liteflow.Millisecond)
	}
	ch.StopBatching()
	lf.StopSweeper()
	if !updated {
		t.Errorf("diverged model must trigger a snapshot update; stats %+v", svc.Stats())
	}
	if lf.Stats().Switches == 0 {
		t.Error("update must switch router roles")
	}
}

type apiUser struct{ net *liteflow.Network }

func (u *apiUser) Freeze() *liteflow.Network     { return u.net }
func (u *apiUser) Stability() float64            { return 0.01 }
func (u *apiUser) Infer(in []float64) []float64  { return u.net.Infer(in) }
func (u *apiUser) Adapt(batch []liteflow.Sample) {}

func TestSampleCodecFacade(t *testing.T) {
	s := liteflow.Sample{Input: []float64{1, 2}, Aux: []float64{3}, At: 9}
	got, ok := liteflow.DecodeSample(liteflow.EncodeSample(s))
	if !ok || got.Input[1] != 2 || got.Aux[0] != 3 || got.At != 9 {
		t.Errorf("codec round trip failed: %+v", got)
	}
}

func TestGenerateSourceFacade(t *testing.T) {
	net := liteflow.NewNetwork([]int{2, 2}, []liteflow.Activation{liteflow.ReLU}, 1)
	src, err := liteflow.GenerateSource(liteflow.Quantize(net, liteflow.DefaultQuantConfig()), "gen")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "fc_0_comp") {
		t.Error("source missing layer function")
	}
	if _, err := liteflow.GenerateSource(liteflow.Quantize(net, liteflow.DefaultQuantConfig()), "bad name"); err == nil {
		t.Error("invalid name must be rejected")
	}
}
