// Package scenarios embeds the named scenario corpus: every *.json file in
// this directory is a declarative workload spec for internal/scenario. The
// corpus is loaded by the scenarios experiment, lfsim -scenario, and the
// acceptance tests in internal/scenario, so a new file here is automatically
// validated, envelope-checked and swept across -sim-domains in CI.
package scenarios

import "embed"

// FS holds the scenario corpus.
//
//go:embed *.json
var FS embed.FS
