module github.com/liteflow-sim/liteflow

go 1.22
