package experiments

import (
	"fmt"

	"github.com/liteflow-sim/liteflow/internal/netsim"
)

// Fig11 reproduces Figure 11: goodput of one congested flow under every
// deployment of the same NNs — LF-Aurora and LF-MOCC (kernel snapshots)
// versus CCP at per-ACK/1 ms/10 ms/100 ms, with BBR and CUBIC for reference.
// The LF deployments match the finest CCP intervals and beat the coarse
// ones; their goodput is also far less variable.
func Fig11(cfg Config) Result {
	res := Result{ID: "fig11", Title: "CC goodput across deployments (1 flow, congested)",
		XLabel: "scheme idx", YLabel: "goodput Gbps"}
	schemes := []scheme{
		{name: "LF-Aurora", dep: depLFAurora},
		ccpScheme(depCCPAurora, "CCP-Aurora", 0),
		ccpScheme(depCCPAurora, "CCP-Aurora", netsim.Millisecond),
		ccpScheme(depCCPAurora, "CCP-Aurora", 10*netsim.Millisecond),
		ccpScheme(depCCPAurora, "CCP-Aurora", 100*netsim.Millisecond),
		{name: "LF-MOCC", dep: depLFMOCC},
		ccpScheme(depCCPMOCC, "CCP-MOCC", 0),
		ccpScheme(depCCPMOCC, "CCP-MOCC", netsim.Millisecond),
		ccpScheme(depCCPMOCC, "CCP-MOCC", 10*netsim.Millisecond),
		ccpScheme(depCCPMOCC, "CCP-MOCC", 100*netsim.Millisecond),
		{name: "BBR", dep: depBBR},
		{name: "CUBIC", dep: depCUBIC},
	}
	mean := Series{Name: "goodput"}
	for i, sc := range schemes {
		out := runCC(ccRun{scheme: sc, flows: 1, congested: true,
			warmup: cfg.dur(3 * netsim.Second), dur: cfg.dur(8 * netsim.Second), domains: cfg.Domains})
		m := out.windows.Mean()
		std := out.windows.Quantile(0.84) - out.windows.Quantile(0.16)
		mean.X = append(mean.X, float64(i))
		mean.Y = append(mean.Y, m)
		mean.Err = append(mean.Err, std/2)
		res.Notes = append(res.Notes, fmt.Sprintf("[%d] %-18s goodput %.3f Gbps (±%.3f)", i, sc.name, m, std/2))
	}
	res.Series = append(res.Series, mean)
	return res
}

// Fig13 reproduces Figure 13: N concurrent flows in a non-congested setting,
// aggregate throughput normalized to BBR. The LF deployments ride within a
// few percent of BBR (kernel-cheap integer inference once per MI), CUBIC
// pays its cube-root arithmetic per ACK, and the CCP deployments fall off a
// cliff as the interval shrinks.
func Fig13(cfg Config) Result {
	res := Result{ID: "fig13", Title: "Deployment overhead: normalized aggregate throughput",
		XLabel: "flows N", YLabel: "throughput / BBR"}
	ns := []int{2, 4, 6, 8, 10}
	schemes := []scheme{
		{name: "BBR", dep: depBBR},
		{name: "CUBIC", dep: depCUBIC},
		{name: "LF-Aurora", dep: depLFAurora},
		{name: "LF-MOCC", dep: depLFMOCC},
		ccpScheme(depCCPAurora, "CCP-Aurora", netsim.Millisecond),
		ccpScheme(depCCPMOCC, "CCP-MOCC", netsim.Millisecond),
	}
	base := make(map[int]float64)
	for _, sc := range schemes {
		s := Series{Name: sc.name}
		for _, n := range ns {
			out := runCC(ccRun{scheme: sc, flows: n, congested: false,
				warmup: cfg.dur(2 * netsim.Second), dur: cfg.dur(2 * netsim.Second), domains: cfg.Domains})
			if sc.dep == depBBR {
				base[n] = out.aggGbps
				res.Notes = append(res.Notes, fmt.Sprintf("BBR N=%d aggregate %.2f Gbps", n, out.aggGbps))
			}
			norm := 0.0
			if base[n] > 0 {
				norm = out.aggGbps / base[n]
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, norm)
		}
		res.Series = append(res.Series, s)
	}
	return res
}

// FigDummy reproduces the §5.1 "High Throughput & Low Latency" summary:
// a dummy NN with Aurora's structure whose generated code always emits line
// rate, run without netem delay against kernel BBR. The snapshot machinery
// costs less than 5%.
func FigDummy(cfg Config) Result {
	res := Result{ID: "dummy", Title: "LF-Dummy-NN vs BBR, no added latency",
		XLabel: "flows N", YLabel: "throughput / BBR"}
	ns := []int{2, 4, 6}
	s := Series{Name: "LF-Dummy-NN"}
	for _, n := range ns {
		bbr := runCC(ccRun{scheme: scheme{name: "BBR", dep: depBBR}, flows: n, congested: false,
			warmup: cfg.dur(netsim.Second), dur: cfg.dur(2 * netsim.Second), domains: cfg.Domains})
		dummy := runCC(ccRun{scheme: scheme{name: "LF-Dummy", dep: depLFDummy}, flows: n, congested: false,
			warmup: cfg.dur(netsim.Second), dur: cfg.dur(2 * netsim.Second), domains: cfg.Domains})
		norm := 0.0
		if bbr.aggGbps > 0 {
			norm = dummy.aggGbps / bbr.aggGbps
		}
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, norm)
		res.Notes = append(res.Notes, fmt.Sprintf("N=%d: BBR %.2f Gbps, LF-Dummy %.2f Gbps (%.0f%%)",
			n, bbr.aggGbps, dummy.aggGbps, norm*100))
	}
	res.Series = append(res.Series, s)
	return res
}
