package experiments

import (
	"fmt"

	"github.com/liteflow-sim/liteflow/internal/fault"
	"github.com/liteflow-sim/liteflow/internal/netsim"
)

// FigResilience measures graceful degradation: the same adaptation scenario
// as Figure 12, once clean and once under the chaos fault profile (netlink
// drop/corrupt/delay/reorder, injected snapshot build failures, slow-path
// outage windows, CPU spikes) with the core's slow-path watchdog armed.
//
// The claim under test is the decoupling argument of the paper taken to its
// failure modes: when the slow path misbehaves, the kernel fast path keeps
// answering queries from the last good snapshot — goodput bends, it does not
// break. The watchdog counts degradations (liteflow_core_degraded_total) and
// recoveries; the run must finish with zero panics and a non-trivial share
// of the clean run's goodput.
func FigResilience(cfg Config) Result {
	res := Result{ID: "resilience", Title: "Goodput under injected faults (graceful degradation)",
		XLabel: "time s", YLabel: "goodput Gbps"}
	dur := cfg.dur(30 * netsim.Second)
	period := dur / 3
	T := 100 * netsim.Millisecond

	clean := runAdaptation(cfg, adaptVariant{name: "clean", adapt: true}, T, dur, period, 1)
	chaos := runAdaptation(cfg, adaptVariant{
		name: "chaos", adapt: true,
		faults:   fault.Chaos(),
		watchdog: true, wdWindow: 3 * T,
	}, T, dur, period, 1)

	for _, v := range []struct {
		name string
		out  adaptOut
	}{{"clean", clean}, {"chaos+watchdog", chaos}} {
		s := Series{Name: v.name}
		for i, g := range v.out.rateGbps {
			s.X = append(s.X, float64(i)*0.5)
			s.Y = append(s.Y, g)
		}
		res.Series = append(res.Series, s)
	}

	fs := chaos.faultStats
	cs := chaos.coreStats
	ratio := 0.0
	if clean.meanGbps > 0 {
		ratio = chaos.meanGbps / clean.meanGbps
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("goodput: clean %.3f vs chaos %.3f Gbps (%.0f%% retained)",
			clean.meanGbps, chaos.meanGbps, ratio*100),
		fmt.Sprintf("faults injected: %d total (%d drops, %d corrupt, %d delays, %d reorders, %d build fails, %d outages, %d cpu spikes)",
			fs.Total(), fs.Drops, fs.Corrupts, fs.Delays, fs.Reorders,
			fs.BuildFails+fs.QuantFails, fs.Outages, fs.Spikes),
		fmt.Sprintf("degradation: %d degraded, %d recovered; fast path answered %d queries throughout",
			cs.Degraded, cs.Recovered, cs.Queries),
		fmt.Sprintf("slow path: %d updates, %d install retries, %d abandoned, %d outage-dropped batches, %d malformed samples rejected",
			chaos.svcStats.Updates, chaos.svcStats.InstallRetries,
			chaos.svcStats.InstallsAbandoned, chaos.svcStats.OutageDrops,
			chaos.svcStats.Malformed),
	)
	return res
}
