package experiments

import (
	"fmt"
	"math/rand"

	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/fault"
	"github.com/liteflow-sim/liteflow/internal/fleet"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/obs"
	"github.com/liteflow-sim/liteflow/internal/opt"
	"github.com/liteflow-sim/liteflow/internal/scenario"
	"github.com/liteflow-sim/liteflow/internal/topo"
)

// fleetDriftUser is the fleet scenario's slow-path model: stability is
// constant (the correctness gate opens after one window), and every
// driftEvery pooled adaptation rounds the output bias jumps by ±0.5 — a
// traffic-dynamics step large enough to trip the necessity gate and mint a
// new fleet epoch, after which the rebuilt snapshot tracks the drifted net
// and the gate goes quiet until the next jump.
type fleetDriftUser struct {
	net        *nn.Network
	driftEvery int // 0 disables drift
	rounds     int
	sign       float64
}

func (u *fleetDriftUser) Freeze() *nn.Network          { return u.net }
func (u *fleetDriftUser) Stability() float64           { return 0.5 }
func (u *fleetDriftUser) Infer(in []float64) []float64 { return u.net.Infer(in) }
func (u *fleetDriftUser) Adapt([]core.Sample) {
	u.rounds++
	if u.driftEvery > 0 && u.rounds%u.driftEvery == 0 {
		out := u.net.Layers[len(u.net.Layers)-1]
		out.B[0] += u.sign * 0.5
		u.sign = -u.sign
	}
}

// FleetScenarioOpts parameterizes one fleet distribution-plane run. The same
// scenario backs the fleet-scale experiment, cmd/lfsim -fleet, and the
// chaos-recovery acceptance test.
type FleetScenarioOpts struct {
	Members     int // fabric hosts = fleet members (rounded up to even)
	Seed        int64
	Dur         netsim.Time // drift-active window; the run continues to 2×Dur as a recovery tail
	Chaos       bool        // odd members suffer injected slow-path outages
	Obs         obs.Scope
	CacheShards int
	// Flight, when non-nil, is sampled from Obs's registry every FlightEvery
	// of virtual time (default agg/2) for the whole run.
	Flight      *obs.FlightRecorder
	FlightEvery netsim.Time
	// CanaryCount > 0 stages every minted epoch through that many canary
	// members before release (fleet.Config canary gating). The gate reads
	// the run's flight recorder; private telemetry is provisioned when the
	// caller brought none.
	CanaryCount int
	// CanaryWindow is the verdict observation window. Zero means 4
	// aggregation intervals.
	CanaryWindow netsim.Time
	// Workload, when non-nil, shapes every member's datapath query cadence
	// by the scenario's arrival process: the inter-query gap is divided by
	// the scenario's arrival density at the current point of the run, so a
	// diurnal scenario makes fleet-wide load breathe day/night while the
	// distribution-plane machinery stays untouched. Nil keeps the flat
	// cadence (and the pre-scenario byte-identical reports).
	Workload *scenario.Spec
}

// FleetScenarioResult reports one scenario run.
type FleetScenarioResult struct {
	Members     int
	Queries     int64   // member datapath queries during the measured window
	GoodputQPS  float64 // Queries per measured second, fleet-wide
	MeanStale   float64 // time-averaged stale-member count over the whole run
	PeakStale   int
	Epochs      []int64 // final per-member epochs
	Blacklisted []int64 // epochs the canary gate refused to release (mint order)
	Stats       fleet.Stats
}

// RunFleetScenario provisions a spine–leaf fabric with one kernel datapath
// per host and a single fleet.Controller slow path, drives per-member query
// + sample streams, and lets a drifting model force versioned fan-outs. With
// Chaos, odd members go dark on a jittered schedule: their watchdogs degrade
// the core, installs park, and the recovery tail (Dur..2×Dur, drift off)
// must bring every member back to epoch parity.
func RunFleetScenario(o FleetScenarioOpts) FleetScenarioResult {
	const (
		aggDivisor = 100 // aggregation rounds per measured window
		driftEvery = 6   // pooled rounds between traffic-dynamics steps
	)
	dur := o.Dur
	agg := dur / aggDivisor
	if agg < 200*netsim.Microsecond {
		agg = 200 * netsim.Microsecond
	}
	end := 2 * dur

	// Canary gating needs flight-recorder evidence: when the caller brought
	// no registry or recorder, provision private ones so the gate can see.
	// Telemetry is passive either way — the simulation is identical.
	if o.CanaryCount > 0 {
		if o.Obs.Registry() == nil {
			o.Obs = obs.New(obs.NewRegistry(), nil)
		}
		if o.Flight == nil {
			o.Flight = obs.NewFlightRecorder(0)
		}
	}

	eng := netsim.NewEngine()
	hostsPerLeaf := (o.Members + 1) / 2
	if hostsPerLeaf < 1 {
		hostsPerLeaf = 1
	}
	fabric := topo.BuildSpineLeaf(eng, topo.DefaultSpineLeafOpts(hostsPerLeaf), opt.WithScope(o.Obs))
	fabric.ProvisionCPUs(4, ksim.DefaultCosts(), opt.WithScope(o.Obs))
	members := len(fabric.Hosts)

	user := &fleetDriftUser{
		net:        nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Linear}, o.Seed),
		driftEvery: driftEvery,
		sign:       1,
	}
	ccfg := core.DefaultConfig()
	ccfg.FlowCacheShards = o.CacheShards
	spec := topo.FleetSpec{
		Costs: ksim.DefaultCosts(),
		Core:  ccfg,
		Fleet: fleet.Config{
			BatchInterval:         agg,
			AggregationInterval:   agg,
			MaxConcurrentInstalls: 2,
		},
		CoreOptions: nil, // set below
	}
	if o.CanaryCount > 0 {
		win := o.CanaryWindow
		if win <= 0 {
			win = 4 * agg
		}
		spec.Fleet.CanaryCount = o.CanaryCount
		spec.Fleet.CanaryWindow = win
		spec.Fleet.Flight = o.Flight
	}
	spec.CoreOptions = func(host int) []opt.Option {
		// Watchdog window: a few missed batch intervals mean the slow
		// path is dark for this member; degrade instead of waiting on a
		// half-installed standby.
		return []opt.Option{opt.WithWatchdog(opt.Watchdog{Window: int64(4 * agg)})}
	}
	if o.Chaos {
		spec.MemberOptions = func(host int) []opt.Option {
			if host%2 == 0 {
				return nil
			}
			inj := fault.New(fault.Profile{
				OutagePeriod:   int64(dur / 4),
				OutageDuration: int64(dur / 10),
			}, o.Seed*1009+int64(host), o.Obs)
			return []opt.Option{opt.WithFaults(inj)}
		}
	}
	ctrl := fabric.ProvisionFleet(spec, user, user, user, opt.WithScope(o.Obs))
	if err := ctrl.Start(); err != nil {
		panic("experiments: fleet scenario: " + err.Error())
	}

	// Per-member datapath: a seeded query stream against the member core,
	// with every query mirrored into the member's sample batch (the paper's
	// kernel-side collector). Feeding continues through the recovery tail so
	// parked members have batches to catch up on.
	var queries int64
	measuring := true
	queryEvery := agg / 8
	if queryEvery < 10*netsim.Microsecond {
		queryEvery = 10 * netsim.Microsecond
	}
	// nextGap is the inter-query gap: flat by default, or thinned/bunched by
	// the workload scenario's arrival density at the current point of the
	// run. Density is floored so a zero-trough diurnal never stalls a member.
	nextGap := func() netsim.Time { return queryEvery }
	if o.Workload != nil {
		nextGap = func() netsim.Time {
			den := o.Workload.ArrivalDensity(float64(eng.Now()) / float64(end))
			if den < 0.05 {
				den = 0.05
			}
			return netsim.Time(float64(queryEvery) / den)
		}
	}
	for i, m := range ctrl.Members() {
		i, m := i, m
		rng := rand.New(rand.NewSource(o.Seed + 31*int64(i)))
		in := make([]int64, 4)
		out := make([]int64, 1)
		flow := netsim.FlowID(i + 1)
		var tick func()
		tick = func() {
			sample := core.Sample{Input: make([]float64, 4), At: eng.Now()}
			for k := range in {
				sample.Input[k] = rng.Float64()*2 - 1
				in[k] = int64(sample.Input[k] * 100)
			}
			if err := m.Core.QueryModel(flow, in, out); err == nil && measuring {
				queries++
			}
			m.Chan.Push(core.EncodeSample(sample))
			if eng.Now() < end {
				eng.After(nextGap(), tick)
			}
		}
		eng.After(nextGap(), tick)
	}

	// Flight recorder: snapshot every registry series on a virtual-time tick.
	if o.Flight != nil && o.Obs.Registry() != nil {
		freg := o.Obs.Registry()
		every := o.FlightEvery
		if every <= 0 {
			every = agg / 2
		}
		var flightTick func()
		flightTick = func() {
			o.Flight.Sample(freg, int64(eng.Now()))
			if eng.Now() < end {
				eng.After(every, flightTick)
			}
		}
		eng.After(every, flightTick)
	}

	// Staleness integral: sample the lag gauge on a fixed cadence.
	staleSum, staleSamples, peakStale := 0.0, 0, 0
	var sampleStale func()
	sampleStale = func() {
		s := ctrl.StaleMembers()
		staleSum += float64(s)
		staleSamples++
		if s > peakStale {
			peakStale = s
		}
		if eng.Now() < end {
			eng.After(agg/2, sampleStale)
		}
	}
	eng.After(agg/2, sampleStale)

	// Drift stops at the end of the measured window; the tail is pure
	// distribution-plane recovery (outage gaps let dark members catch up).
	eng.At(dur, func() { user.driftEvery = 0; measuring = false })

	eng.RunUntil(dur)
	for eng.Now() < end && ctrl.StaleMembers() > 0 {
		eng.RunUntil(eng.Now() + agg)
	}
	ctrl.Stop()
	for _, m := range ctrl.Members() {
		m.Core.StopSweeper()
	}

	return FleetScenarioResult{
		Members:     members,
		Queries:     queries,
		GoodputQPS:  float64(queries) / (float64(dur) / 1e9),
		MeanStale:   staleSum / float64(staleSamples),
		PeakStale:   peakStale,
		Epochs:      ctrl.MemberEpochs(),
		Blacklisted: ctrl.Blacklisted(),
		Stats:       ctrl.Stats(),
	}
}

// FigFleetScale (experiment #21, beyond the paper) measures the snapshot
// distribution plane as the fleet grows: one controller slow path serving
// 2/4/8 kernel datapaths, clean versus chaos (injected slow-path outages on
// odd members). Goodput is the fleet-wide model-query rate — it must scale
// with member count in both variants because queries never block on the
// control plane — and staleness is the time-averaged number of members
// lagging the fleet epoch, which chaos inflates (parked installs ride out
// outage windows) but must drain to zero by the end of every run's recovery
// tail.
func FigFleetScale(cfg Config) Result {
	res := Result{ID: "fleet-scale", Title: "Fleet snapshot distribution: goodput and staleness vs member count",
		XLabel: "members", YLabel: "queries/s | mean stale members"}

	const baseDur = 4 * netsim.Second
	dur := cfg.dur(baseDur)

	goodputClean := Series{Name: "goodput-clean"}
	goodputChaos := Series{Name: "goodput-chaos"}
	staleClean := Series{Name: "stale-clean"}
	staleChaos := Series{Name: "stale-chaos"}

	for _, members := range []int{2, 4, 8} {
		for _, chaos := range []bool{false, true} {
			r := RunFleetScenario(FleetScenarioOpts{
				Members: members, Seed: cfg.Seed, Dur: dur, Chaos: chaos,
				Obs: cfg.Obs, CacheShards: cfg.CacheShards,
				Flight: cfg.Flight, FlightEvery: cfg.FlightEvery,
			})
			x := float64(r.Members)
			if chaos {
				goodputChaos.X = append(goodputChaos.X, x)
				goodputChaos.Y = append(goodputChaos.Y, r.GoodputQPS)
				staleChaos.X = append(staleChaos.X, x)
				staleChaos.Y = append(staleChaos.Y, r.MeanStale)
			} else {
				goodputClean.X = append(goodputClean.X, x)
				goodputClean.Y = append(goodputClean.Y, r.GoodputQPS)
				staleClean.X = append(staleClean.X, x)
				staleClean.Y = append(staleClean.Y, r.MeanStale)
			}
			variant := "clean"
			if chaos {
				variant = "chaos"
			}
			res.Notes = append(res.Notes, fmt.Sprintf(
				"%d members %s: %d epochs, %d installs (%d parked, %d abandoned, %d deferred), %d outage drops, peak stale %d, final stale %d",
				r.Members, variant, r.Stats.Epoch, r.Stats.MemberInstalls,
				r.Stats.InstallsParked, r.Stats.InstallsAbandoned, r.Stats.InstallsDeferred,
				r.Stats.OutageDrops, r.PeakStale, r.Stats.StaleMembers))
		}
	}
	res.Series = append(res.Series, goodputClean, goodputChaos, staleClean, staleChaos)
	return res
}
