package experiments

import (
	"fmt"
	"strings"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/netsim"
)

// The experiment tests assert the qualitative shapes the paper reports,
// at reduced scale. Magnitudes live in EXPERIMENTS.md from full-scale runs.

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 23 {
		t.Fatalf("registry has %d experiments, want 23", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		if r.ID == "" || r.Title == "" || r.Run == nil {
			t.Fatalf("incomplete registration %+v", r.ID)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate ID %s", r.ID)
		}
		seen[r.ID] = true
		if got, ok := ByID(r.ID); !ok || got.ID != r.ID {
			t.Fatalf("ByID(%s) failed", r.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID must reject unknown IDs")
	}
}

func TestResultString(t *testing.T) {
	r := Result{ID: "x", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "a", X: []float64{1, 2}, Y: []float64{3, 4}},
			{Name: "b", X: []float64{2}, Y: []float64{9}}},
		Notes: []string{"n1"}}
	s := r.String()
	for _, want := range []string{"== x: t ==", "a", "b", "note: n1"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
	// Sparse series render "-" for missing X values.
	if !strings.Contains(s, "-") {
		t.Error("missing values must render as -")
	}
	if (Result{ID: "e"}).String() == "" {
		t.Error("empty result must still render a header")
	}
}

func TestConfigScaling(t *testing.T) {
	c := Config{Scale: 0.5}
	if got := c.dur(10 * netsim.Second); got != 5*netsim.Second {
		t.Errorf("dur = %v", got)
	}
	if got := c.count(100); got != 50 {
		t.Errorf("count = %v", got)
	}
	tiny := Config{Scale: 1e-9}
	if tiny.dur(netsim.Second) < netsim.Millisecond || tiny.count(10) < 1 {
		t.Error("scaling must respect floors")
	}
}

// --- Motivation experiments -------------------------------------------------

func TestFig01aIntervalOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := Fig01a(Config{Scale: 0.3, Seed: 1})
	if len(res.Series) != 3 {
		t.Fatalf("want 3 CDFs, got %d", len(res.Series))
	}
	// Mean goodput at 1 ms must beat 100 ms (Figure 1a's conclusion).
	mean := func(name string) float64 {
		s := res.Get(name)
		sum := 0.0
		for _, x := range s.X {
			sum += x
		}
		return sum / float64(len(s.X))
	}
	if mean("1ms") <= mean("100ms") {
		t.Errorf("1ms interval %.3f must outperform 100ms %.3f", mean("1ms"), mean("100ms"))
	}
	// CDFs must be monotone.
	for _, s := range res.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Fatalf("%s CDF not monotone", s.Name)
			}
		}
	}
}

func TestFig04SoftirqGrowsWithFrequency(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := Fig04(Config{Scale: 0.2, Seed: 1})
	ms := res.Get("softirq-ms")
	if ms == nil || len(ms.Y) != 4 {
		t.Fatal("missing softirq series")
	}
	// Softirq time grows with exchange frequency within the CCP family
	// (100 ms < 10 ms < 1 ms), and the finest interval dwarfs BBR. (The
	// BBR-vs-CCP-100ms comparison is noise in this substrate: the coarse
	// controller's overdriving alters how many packets the saturated CPU
	// accepts, so only within-family growth is asserted.)
	if !(ms.Y[1] < ms.Y[2] && ms.Y[2] < ms.Y[3]) {
		t.Errorf("softirq time must grow with exchange frequency: %v", ms.Y)
	}
	if ms.Y[3] < 3*ms.Y[0] {
		t.Errorf("CCP-1ms softirq %v ms must dwarf BBR's %v ms", ms.Y[3], ms.Y[0])
	}
	share := res.Get("softirq-share-%")
	// The paper's BBR softirq share is ~12.6%; ours must be in that regime.
	if share.Y[0] < 5 || share.Y[0] > 25 {
		t.Errorf("BBR softirq share = %.1f%%, want ≈ 12.6%%", share.Y[0])
	}
	// CCP-1ms share must dominate BBR's by a large factor (paper: 72.3%).
	if share.Y[3] < 2*share.Y[0] {
		t.Errorf("CCP-1ms share %.1f%% must dwarf BBR's %.1f%%", share.Y[3], share.Y[0])
	}
}

func TestFig03CCPDegradesWithFlows(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := Fig03(Config{Scale: 0.15, Seed: 1})
	fine := res.Get("CCP-Aurora-1ms")
	if fine == nil {
		t.Fatal("missing 1ms series")
	}
	// The finest interval at N=10 must lose at least a third to BBR
	// (paper: less than half of BBR's 16.1 Gbps).
	last := fine.Y[len(fine.Y)-1]
	if last > 0.67 {
		t.Errorf("CCP-1ms at N=10 = %.2f of BBR, want ≤ 0.67", last)
	}
	// And it must degrade as N grows.
	if fine.Y[len(fine.Y)-1] >= fine.Y[0] {
		t.Errorf("CCP-1ms must degrade with N: %v", fine.Y)
	}
}

// --- Core mechanism experiments ----------------------------------------------

func TestFig07QuantizationShape(t *testing.T) {
	res := Fig07(Config{Scale: 0.3, Seed: 1})
	if len(res.Series) != 4 {
		t.Fatalf("want 4 NNs, got %d", len(res.Series))
	}
	for _, s := range res.Series {
		// C = 1 collapses; C = 1000 is within the paper's ~2%.
		if s.Y[0] < s.Y[3] {
			t.Errorf("%s: loss at C=1 (%.4f) must exceed loss at C=1000 (%.4f)",
				s.Name, s.Y[0], s.Y[3])
		}
		if s.Y[3] > 0.02 {
			t.Errorf("%s: loss at C=1000 = %.4f, want ≤ 2%%", s.Name, s.Y[3])
		}
	}
}

func TestFig08AdaptationConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy")
	}
	res := Fig08(Config{Scale: 0.5, Seed: 1})
	g := res.Get("snapshot-goodput")
	if g == nil || len(g.Y) < 3 {
		t.Fatal("missing snapshot goodput series")
	}
	first, last := g.Y[0], g.Y[len(g.Y)-1]
	if last <= first {
		t.Errorf("snapshot goodput must improve with training: %.2f → %.2f", first, last)
	}
}

// --- Evaluation experiments ---------------------------------------------------

func TestFig11DeploymentOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := Fig11(Config{Scale: 0.25, Seed: 1})
	g := res.Get("goodput")
	if g == nil || len(g.Y) != 12 {
		t.Fatalf("want 12 schemes, got %v", g)
	}
	lfAurora, ccpAurora100 := g.Y[0], g.Y[4]
	lfMOCC, ccpMOCC100 := g.Y[5], g.Y[9]
	if lfAurora <= ccpAurora100 {
		t.Errorf("LF-Aurora %.3f must beat CCP-Aurora-100ms %.3f", lfAurora, ccpAurora100)
	}
	if lfMOCC <= ccpMOCC100 {
		t.Errorf("LF-MOCC %.3f must beat CCP-MOCC-100ms %.3f", lfMOCC, ccpMOCC100)
	}
	// LF must be comparable to the finest CCP interval (within 5%).
	if lfAurora < g.Y[1]*0.95 {
		t.Errorf("LF-Aurora %.3f must match CCP-Aurora-ACK %.3f", lfAurora, g.Y[1])
	}
}

func TestFig13LFOverheadNearBBR(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := Fig13(Config{Scale: 0.15, Seed: 1})
	lf := res.Get("LF-Aurora")
	cubic := res.Get("CUBIC")
	if lf == nil || cubic == nil {
		t.Fatal("missing series")
	}
	for i, y := range lf.Y {
		if y < 0.90 {
			t.Errorf("LF-Aurora at N=%g = %.2f of BBR, want ≥ 0.90 (paper: <5%% loss)", lf.X[i], y)
		}
	}
	// CUBIC pays its per-ACK arithmetic (paper: LF beats it by ~17.5%).
	lastLF, lastCubic := lf.Y[len(lf.Y)-1], cubic.Y[len(cubic.Y)-1]
	if lastLF <= lastCubic {
		t.Errorf("LF-Aurora %.2f must beat CUBIC %.2f", lastLF, lastCubic)
	}
}

func TestFig12AdaptationBeatsFrozen(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := Fig12(Config{Scale: 0.25, Seed: 1})
	mean := func(name string) float64 {
		s := res.Get(name)
		if s == nil {
			t.Fatalf("missing %s", name)
		}
		sum := 0.0
		for _, y := range s.Y {
			sum += y
		}
		return sum / float64(len(s.Y))
	}
	aurora := mean("LF-Aurora")
	mocc := mean("LF-MOCC")
	noa := mean("LF-Aurora-N-O-A")
	if aurora <= noa*1.2 {
		t.Errorf("adaptation must clearly beat frozen: LF-Aurora %.3f vs N-O-A %.3f", aurora, noa)
	}
	if mocc <= noa*1.2 {
		t.Errorf("LF-MOCC %.3f must clearly beat N-O-A %.3f", mocc, noa)
	}
}

func TestFig14BatchIntervalTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := Fig14(Config{Scale: 0.25, Seed: 1})
	ov := res.Get("softirq-share-%")
	gp := res.Get("single-flow-goodput")
	if ov == nil || gp == nil || len(ov.Y) != 5 {
		t.Fatal("missing series")
	}
	// Overhead falls as T grows (paper: T ≥ 100 ms ≈ kernel CC's ~12.6%).
	if !(ov.Y[0] > ov.Y[2] && ov.Y[2] > ov.Y[4]*0.8) {
		t.Errorf("softirq share must fall with T: %v", ov.Y)
	}
	// Goodput peaks in the recommended 100 ms–1 s band and is worst with
	// effectively no adaptation (T = 10 s).
	best := gp.Y[2] // T = 100 ms
	if best < gp.Y[4] {
		t.Errorf("T=100ms goodput %.3f must beat T=10s %.3f", best, gp.Y[4])
	}
}

func TestDummyNNNearBBR(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := FigDummy(Config{Scale: 0.25, Seed: 1})
	s := res.Get("LF-Dummy-NN")
	for i, y := range s.Y {
		if y < 0.95 || y > 1.10 {
			t.Errorf("LF-Dummy at N=%g = %.2f of BBR, want within ~5%%", s.X[i], y)
		}
	}
}

func TestFig15LatencyOrdering(t *testing.T) {
	res := Fig15(Config{Scale: 0.3, Seed: 1})
	median := func(name string) float64 {
		s := res.Get(name)
		if s == nil {
			t.Fatalf("missing %s", name)
		}
		// X at F≈0.5.
		for i, f := range s.Y {
			if f >= 0.5 {
				return s.X[i]
			}
		}
		return s.X[len(s.X)-1]
	}
	lf, char, nl := median("LF-FFNN"), median("char-FFNN"), median("netlink-FFNN")
	if !(lf < char && char < nl) {
		t.Errorf("latency ordering LF(%.2f) < char(%.2f) < netlink(%.2f) violated", lf, char, nl)
	}
	// µs scale, like the paper's 2.19/4.34/8.09.
	if lf > 5 || nl > 20 {
		t.Errorf("latencies out of µs scale: lf=%.2f nl=%.2f", lf, nl)
	}
}

func TestFig16SchedulingCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := Fig16(Config{Scale: 0.1, Seed: 1})
	if len(res.Series) != 4 {
		t.Fatalf("want 4 schemes, got %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Y) != 3 {
			t.Fatalf("%s missing classes", s.Name)
		}
		for c, y := range s.Y {
			if y <= 0 {
				t.Errorf("%s class %d has no FCT data", s.Name, c)
			}
		}
		// Long flows must cost far more than short ones in every scheme.
		if s.Y[2] < s.Y[0] {
			t.Errorf("%s: long FCT %.0f < short %.0f", s.Name, s.Y[2], s.Y[0])
		}
	}
}

func TestFig17LoadBalancingCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := Fig17(Config{Scale: 0.1, Seed: 1})
	if len(res.Series) != 4 {
		t.Fatalf("want 4 schemes, got %d", len(res.Series))
	}
	for _, s := range res.Series {
		for c, y := range s.Y {
			if y <= 0 {
				t.Errorf("%s class %d has no FCT data", s.Name, c)
			}
		}
	}
}

func TestFlowChurnIncrementalSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := FigFlowChurn(Config{Scale: 0.2, Seed: 1, CacheShards: 64})
	cached := res.Get("cached-flows")
	depth := res.Get("shard-depth")
	if cached == nil || depth == nil || len(cached.Y) < 10 {
		t.Fatal("missing time series")
	}
	peakCached, peakDepth := 0.0, 0.0
	for i := range cached.Y {
		if cached.Y[i] > peakCached {
			peakCached = cached.Y[i]
		}
		if depth.Y[i] > peakDepth {
			peakDepth = depth.Y[i]
		}
	}
	if peakCached < 100 {
		t.Fatalf("peak cached = %.0f — churn never filled the cache", peakCached)
	}
	// 64 shards must keep the deepest shard a small fraction of the total.
	if peakDepth > peakCached/8 {
		t.Errorf("deepest shard %.0f of %.0f cached — sharding is not spreading", peakDepth, peakCached)
	}
	// The incremental-sweep bound, as reported in the notes: no single tick
	// scanned anything close to the peak cache population.
	var maxTick, peak, scans, shards int64
	found := false
	for _, n := range res.Notes {
		if _, err := fmt.Sscanf(n, "incremental sweep: max tick scan %d of peak %d cached (%d scans total over %d shards)",
			&maxTick, &peak, &scans, &shards); err == nil {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("missing incremental-sweep note in %v", res.Notes)
	}
	if maxTick == 0 || scans == 0 {
		t.Error("sweeper did no work under churn")
	}
	if maxTick > peak/4 {
		t.Errorf("one sweep tick scanned %d of peak %d cached — not incremental", maxTick, peak)
	}
	// Everything drains: the last sample and the drain note must agree.
	if last := cached.Y[len(cached.Y)-1]; last > peakCached/2 {
		t.Errorf("cache still near peak at run end: %.0f of %.0f", last, peakCached)
	}
}

func TestAblTaylorShape(t *testing.T) {
	res := AblTaylor(Config{Scale: 1, Seed: 1})
	for _, actName := range []string{"tanh", "sigmoid"} {
		errS := res.Get(actName + "-taylor-maxerr")
		mulS := res.Get(actName + "-taylor-muls")
		if errS == nil || mulS == nil {
			t.Fatalf("missing %s series", actName)
		}
		// Taylor cost grows with degree; even degree 11 stays far less
		// accurate over [-4,4] than the LUT's uniform precision.
		for i := 1; i < len(mulS.Y); i++ {
			if mulS.Y[i] <= mulS.Y[i-1] {
				t.Errorf("%s: muls must grow with degree: %v", actName, mulS.Y)
			}
		}
		if errS.Y[len(errS.Y)-1] < 1e-3 {
			t.Errorf("%s: degree-11 Taylor should still err badly at range edges, got %v",
				actName, errS.Y[len(errS.Y)-1])
		}
	}
}

func TestAblUpdateShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := AblUpdate(Config{Scale: 0.3, Seed: 1})
	gaps := res.Get("worst-decision-gap-ms")
	if gaps == nil || len(gaps.Y) != 2 {
		t.Fatal("missing gap series")
	}
	standby, blocking := gaps.Y[0], gaps.Y[1]
	// Blocking install must stall decisions ~the full lock time; the
	// active-standby switch must not (worst gap stays at MI scale).
	if blocking < 100 {
		t.Errorf("blocking install worst gap = %.1f ms, want ≈ 150", blocking)
	}
	if standby > 60 {
		t.Errorf("active-standby worst gap = %.1f ms, want MI-scale", standby)
	}
}
