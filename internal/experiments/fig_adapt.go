package experiments

import (
	"fmt"

	"github.com/liteflow-sim/liteflow/internal/cc"
	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/fault"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netlink"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/opt"
	"github.com/liteflow-sim/liteflow/internal/quant"
	"github.com/liteflow-sim/liteflow/internal/stats"
	"github.com/liteflow-sim/liteflow/internal/tcp"
	"github.com/liteflow-sim/liteflow/internal/topo"
	"github.com/liteflow-sim/liteflow/internal/workload"
)

// alphaUser is the user-provided implementation of the three LiteFlow
// userspace interfaces for the α-output CC models: online adaptation is
// self-supervised regression toward the achievable rate fraction observed in
// each batch (increase gently when the path is clean, track delivered rate
// down when it is congested).
type alphaUser struct {
	net *nn.Network
	opt nn.Optimizer
	cpu *ksim.CPU

	// probeGain is the multiplicative up-probe per batch on a clean path;
	// MOCC's tuner probes more aggressively, which is what makes it
	// reconverge faster in Figure 12.
	probeGain float64
	maxEpochs int
	lastLoss  float64
	adapts    int

	// pending accumulates samples across deliveries so tiny batch
	// intervals (T = 1 ms delivers 0–1 samples per flush) do not drive
	// the tuner with single-sample noise.
	pending []core.Sample
}

func newAlphaUser(net *nn.Network, lr float64, cpu *ksim.CPU) *alphaUser {
	return &alphaUser{net: net, opt: nn.NewAdam(lr), cpu: cpu,
		probeGain: 1.25, maxEpochs: 300, lastLoss: 1}
}

// Freeze implements core.Freezer.
func (a *alphaUser) Freeze() *nn.Network { return a.net }

// Stability implements core.Evaluator.
func (a *alphaUser) Stability() float64 { return a.lastLoss }

// Infer implements core.Evaluator.
func (a *alphaUser) Infer(in []float64) []float64 { return a.net.Infer(in) }

// Adapt implements core.Adapter. Aux layout (from the kernel collector):
// [alpha, deliveredFrac, latRatio, lossFrac].
func (a *alphaUser) Adapt(batch []core.Sample) {
	a.pending = append(a.pending, batch...)
	if len(a.pending) < 8 {
		return // wait for a meaningful window of MIs
	}
	batch = a.pending
	a.pending = nil
	// Aggregate the batch into one congestion verdict: per-MI measurements
	// jitter, and mixing per-sample regimes would give the conservative
	// min-fidelity gate a near-zero gap on every batch, freezing updates.
	var alpha, delivered, latRatio, lossFrac float64
	x := make([][]float64, 0, len(batch))
	for _, s := range batch {
		if len(s.Aux) < 4 {
			continue
		}
		x = append(x, s.Input)
		alpha += s.Aux[0]
		delivered += s.Aux[1]
		latRatio += s.Aux[2]
		lossFrac += s.Aux[3]
	}
	if len(x) == 0 {
		return
	}
	n := float64(len(x))
	alpha /= n
	delivered /= n
	latRatio /= n
	lossFrac /= n

	var target float64
	switch {
	case lossFrac > 0.005 || latRatio > 0.2 || delivered < alpha*0.85:
		// Congested or under-delivering: track the delivered fraction
		// down with headroom.
		target = delivered * 0.85
	default:
		// Clean: probe multiplicatively so recovery after a pattern
		// improvement takes a handful of batches, not tens.
		target = alpha*a.probeGain + 0.02
	}
	if target > 1 {
		target = 1
	}
	if target < 0.02 {
		target = 0.02
	}
	y := make([][]float64, len(x))
	for i := range y {
		y[i] = []float64{target}
	}
	// Train to convergence on the (tiny) batch so the userspace model
	// tracks its target tightly; a saturated sigmoid head otherwise barely
	// moves and the fidelity gap that triggers snapshot updates never
	// opens.
	var loss float64
	epochs := 0
	for ; epochs < a.maxEpochs; epochs++ {
		loss = nn.TrainBatch(a.net, a.opt, x, y, 5)
		if loss < 2e-4 {
			break
		}
	}
	a.lastLoss = loss
	a.adapts++
	if a.cpu != nil {
		// Userspace training compute: epochs × batch × ~3 passes of MACs.
		work := ksim.InferCost(1, a.net.MACs()) * netsim.Time(3*(epochs+1)*len(x))
		a.cpu.Charge(ksim.User, work)
	}
}

// adaptVariant selects the Figure 12 lines (and the resilience variants).
type adaptVariant struct {
	name  string
	mocc  bool // MOCC architecture + faster tuner
	adapt bool // false = N-O-A (frozen snapshot)

	// faults enables deterministic fault injection (zero value = none);
	// watchdog arms the core's slow-path watchdog with window wdWindow
	// (0 = default).
	faults   fault.Profile
	watchdog bool
	wdWindow netsim.Time
}

// adaptOut is what the adaptation figures read.
type adaptOut struct {
	// rateGbps is flow 0's goodput per 500 ms bin.
	rateGbps []float64
	report   ksim.Report
	updates  int64
	switches int
	meanGbps float64
	svcStats core.ServiceStats

	coreStats  core.Stats
	faultStats fault.Stats
}

// runAdaptation executes one congested single-flow (plus optional extra
// flows) run with the full LiteFlow deployment: kernel snapshot + netlink
// batching at interval T + userspace service, under a switching background
// traffic pattern.
func runAdaptation(cfg Config, v adaptVariant, T netsim.Time, dur netsim.Time,
	switchPeriod netsim.Time, flows int) adaptOut {

	eng := netsim.NewEngine()
	opts := topo.TestbedOpts(1)
	d := topo.BuildDumbbell(eng, opts, opt.WithScope(cfg.Obs))
	costs := ksim.DefaultCosts()
	d.ProvisionCPUs(4, costs, opt.WithScope(cfg.Obs))
	sender, receiver := d.Senders[0], d.Receivers[0]
	cpu := sender.CPU

	// Deterministic fault injector: the decision streams derive from the
	// experiment seed, so faulted runs are as reproducible as clean ones.
	var inj *fault.Injector
	if v.faults.Active() {
		inj = fault.New(v.faults, cfg.Seed+11, cfg.Obs)
		inj.StartCPUSpikes(eng, func(work int64) {
			cpu.Charge(ksim.SoftIRQ, netsim.Time(work))
		})
		defer inj.StopCPUSpikes()
	}

	// Background UDP with a switching pattern: available bandwidth moves
	// among 0.9, 0.6 and 0.3 Gbps.
	udp := tcp.NewUDPSource(d.UDPHost, 9999, receiver.ID, 100e6)
	udp.Start()
	defer udp.Stop()
	// The first rate is the model's training pattern (heavy background,
	// 0.3 Gbps available); later patterns free up bandwidth a frozen model
	// cannot claim.
	var sw *workload.PatternSwitcher
	if switchPeriod > 0 {
		sw = workload.NewPatternSwitcher(eng, udp, switchPeriod,
			[]int64{700e6, 100e6, 400e6}, cfg.Seed+7)
		sw.StartAt(0) // pinned: the experiment premise needs this exact start

		defer sw.Stop()
	} else {
		udp.SetRate(700e6)
	}

	// Userspace model, pre-trained for the 0.1 Gbps background pattern
	// (α ≈ 0.88 of the 1 Gbps line).
	var userNet *nn.Network
	probeGain := 1.25
	if v.mocc {
		userNet = cc.NewMOCCAlphaNet(cfg.Seed + 2)
		probeGain = 1.45 // MOCC's tuner reconverges faster (paper §5.1)
	} else {
		userNet = cc.NewAuroraAlphaNet(cfg.Seed + 1)
	}
	// Trained for the initial pattern: 0.3 Gbps available → α* ≈ 0.28.
	cc.PretrainAlpha(userNet, 0.28, 300, cfg.Seed+3)

	// Kernel core + snapshot. Long-lived CC flows disable the flow cache
	// so snapshot updates take effect mid-flow (paper §3.4 footnote).
	coreCfg := core.DefaultConfig()
	coreCfg.OutMin, coreCfg.OutMax = 0, 1
	coreCfg.FlowCacheTimeout = 0
	// React within a few batches of a pattern change: a short stability
	// window with a loose tolerance (self-supervised regression losses are
	// noisy at 10-sample batches).
	coreCfg.StabilityWindow = 2
	coreCfg.StabilityTolerance = 1.0
	coreOpts := []opt.Option{opt.WithScope(cfg.Obs)}
	if v.watchdog {
		coreOpts = append(coreOpts, opt.WithWatchdog(opt.Watchdog{Window: int64(v.wdWindow)}))
	}
	lf := core.NewCore(eng, cpu, costs, coreCfg, coreOpts...)
	lf.SetFlowCache(false)
	mod, err := codegen.Build(quant.Quantize(userNet, coreCfg.Quant), "alpha0")
	if err != nil {
		panic(err)
	}
	if _, err := lf.RegisterModel(mod); err != nil {
		panic(err)
	}

	// Slow path.
	var svc *core.Service
	var ch *netlink.Channel
	user := newAlphaUser(userNet, 1e-2, cpu)
	user.probeGain = probeGain
	if v.adapt {
		ch = netlink.NewChannel(eng, cpu, costs, nil,
			opt.WithScope(cfg.Obs), opt.WithFaults(inj))
		svc = core.NewSlowPath(lf, ch, user, user, user, opt.WithFaults(inj))
		svc.Start(T)
	}

	// Flows.
	var ctrls []*cc.AlphaController
	perFlow := make([]int64, flows)
	ts := stats.NewTimeSeries(500 * netsim.Millisecond)
	for i := 0; i < flows; i++ {
		i := i
		flow := netsim.FlowID(i + 1)
		ctrl := cc.NewAlphaController(eng, core.NewFlowBackend(lf, flow), opts.BottleneckBps, 0.28)
		if v.adapt {
			ctrl.OnState = func(state []float64, alpha float64, mi cc.MISummary) {
				durMI := mi.End - mi.Start
				if durMI <= 0 {
					return
				}
				delivered := float64(mi.AckedBytes) * 8 / (float64(durMI) / 1e9) / float64(opts.BottleneckBps)
				latRatio := 0.0
				if mi.MinRTT > 0 && mi.MinRTT < 1<<62 && mi.AvgRTT > 0 {
					latRatio = float64(mi.AvgRTT)/float64(mi.MinRTT) - 1
				}
				lossFrac := 0.0
				if mi.AckedBytes+mi.LostBytes > 0 {
					lossFrac = float64(mi.LostBytes) / float64(mi.AckedBytes+mi.LostBytes)
				}
				ch.Push(core.EncodeSample(core.Sample{
					Input: append([]float64(nil), state...),
					Aux:   []float64{alpha, delivered, latRatio, lossFrac},
					At:    eng.Now(),
				}))
			}
		}
		ctrls = append(ctrls, ctrl)
		s := tcp.NewSender(sender, flow, receiver.ID, 0, ctrl)
		rcv := tcp.NewReceiver(receiver, flow, sender.ID)
		rcv.OnDeliver = func(n int, now netsim.Time) {
			perFlow[i] += int64(n)
			if i == 0 {
				ts.Add(now, float64(n))
			}
		}
		s.Start()
	}

	cpu.ResetAccounting()
	eng.RunUntil(dur)
	for _, c := range ctrls {
		c.Stop()
	}
	if ch != nil {
		ch.StopBatching()
	}
	lf.StopSweeper()
	lf.StopWatchdog()

	out := adaptOut{report: cpu.Report(), coreStats: lf.Stats()}
	if svc != nil {
		out.updates = svc.Stats().Updates
		out.svcStats = svc.Stats()
	}
	if inj != nil {
		out.faultStats = inj.Stats()
	}
	if sw != nil {
		out.switches = sw.Switches
	}
	for _, v := range ts.RatePerSecond() {
		out.rateGbps = append(out.rateGbps, v*8/1e9)
	}
	out.meanGbps = float64(perFlow[0]*8) / (float64(dur) / 1e9) / 1e9
	return out
}

// Fig05 reproduces Figure 5: a one-time quantized kernel model performs well
// while the environment matches its training pattern and degrades once the
// background traffic changes — lack of adaptation costs goodput.
func Fig05(cfg Config) Result {
	res := Result{ID: "fig5", Title: "Static snapshot vs traffic dynamics",
		XLabel: "time s", YLabel: "goodput Gbps"}
	dur := cfg.dur(60 * netsim.Second)
	period := dur / 3
	static := runAdaptation(cfg, adaptVariant{name: "static", adapt: false}, 0, dur, period, 1)
	adapted := runAdaptation(cfg, adaptVariant{name: "adapted", adapt: true},
		100*netsim.Millisecond, dur, period, 1)
	for _, v := range []struct {
		name string
		out  adaptOut
	}{{"kernel-static-Aurora", static}, {"adaptive-reference", adapted}} {
		s := Series{Name: v.name}
		for i, g := range v.out.rateGbps {
			s.X = append(s.X, float64(i)*0.5)
			s.Y = append(s.Y, g)
		}
		res.Series = append(res.Series, s)
	}
	// Quantify: in the training pattern both match; once the environment
	// changes the frozen snapshot leaves the freed bandwidth unclaimed.
	n := len(static.rateGbps)
	seg := n / 3
	firstS := stats.MeanOf(static.rateGbps[:seg])
	firstA := stats.MeanOf(adapted.rateGbps[:seg])
	restS := stats.MeanOf(static.rateGbps[seg:])
	restA := stats.MeanOf(adapted.rateGbps[seg:])
	res.Notes = append(res.Notes, fmt.Sprintf(
		"training pattern: static %.3f vs adaptive %.3f Gbps; after changes: static %.3f vs adaptive %.3f Gbps (static loses %.0f%%), %d switches",
		firstS, firstA, restS, restA, (1-restS/restA)*100, static.switches))
	return res
}

// Fig12 reproduces Figure 12: LF-Aurora and LF-MOCC learn and adapt to the
// changing background pattern through the slow path, while the
// no-online-adaptation variant stays degraded. MOCC reconverges faster.
func Fig12(cfg Config) Result {
	res := Result{ID: "fig12", Title: "Online adaptation under traffic dynamics",
		XLabel: "time s", YLabel: "goodput Gbps"}
	dur := cfg.dur(60 * netsim.Second)
	period := dur / 3
	variants := []adaptVariant{
		{name: "LF-Aurora", adapt: true},
		{name: "LF-MOCC", mocc: true, adapt: true},
		{name: "LF-Aurora-N-O-A", adapt: false},
	}
	for _, v := range variants {
		out := runAdaptation(cfg, v, 100*netsim.Millisecond, dur, period, 1)
		s := Series{Name: v.name}
		for i, g := range out.rateGbps {
			s.X = append(s.X, float64(i)*0.5)
			s.Y = append(s.Y, g)
		}
		res.Series = append(res.Series, s)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: mean %.3f Gbps, %d snapshot updates, %d pattern switches (batches %d, converged %d, fidelity checks %d, skipped %d)",
			v.name, out.meanGbps, out.updates, out.switches,
			out.svcStats.Batches, out.svcStats.Converged, out.svcStats.FidelityChecks, out.svcStats.SkippedByNecessity))
	}
	return res
}

// Fig14 reproduces Figure 14: the batch data delivery interval T trades
// softirq overhead (small T) against adaptation freshness (large T). The
// paper recommends T between 100 ms and 1000 ms.
func Fig14(cfg Config) Result {
	res := Result{ID: "fig14", Title: "Batch data delivery interval micro-benchmark",
		XLabel: "T ms", YLabel: "softirq share % / goodput Gbps"}
	overhead := Series{Name: "softirq-share-%"}
	goodput := Series{Name: "single-flow-goodput"}
	dur := cfg.dur(30 * netsim.Second)
	for _, T := range []netsim.Time{netsim.Millisecond, 10 * netsim.Millisecond,
		100 * netsim.Millisecond, netsim.Second, 10 * netsim.Second} {
		// Overhead: 10 adapted flows, no pattern switching needed.
		ov := runAdaptation(cfg, adaptVariant{name: "lf", adapt: true}, T,
			cfg.dur(5*netsim.Second), 0, 10)
		// Goodput: single flow across pattern changes; slow batches adapt
		// too late.
		gp := runAdaptation(cfg, adaptVariant{name: "lf", adapt: true}, T,
			dur, dur/3, 1)
		tMs := float64(T) / 1e6
		overhead.X = append(overhead.X, tMs)
		overhead.Y = append(overhead.Y, ov.report.SoftShare*100)
		goodput.X = append(goodput.X, tMs)
		goodput.Y = append(goodput.Y, gp.meanGbps)
		res.Notes = append(res.Notes, fmt.Sprintf("T=%gms: softirq %.1f%%, goodput %.3f Gbps, %d updates",
			tMs, ov.report.SoftShare*100, gp.meanGbps, gp.updates))
	}
	res.Series = append(res.Series, overhead, goodput)
	return res
}
