package experiments

import (
	"fmt"

	"github.com/liteflow-sim/liteflow/internal/scenario"
	"github.com/liteflow-sim/liteflow/scenarios"
)

// FigScenarios sweeps the embedded actor-scenario corpus (scenarios/*.json)
// through the scenario harness and reports one point per scenario for the
// headline envelope metrics. The 1M-flow scale smoke (mega-web-1m) is
// excluded here — it exists to stress memory and heap residency, not to be
// re-run inside every suite sweep; TestMegaWebMillionFlows covers it.
//
// cfg.Seed offsets every scenario's base seed relative to the calibrated
// corpus (Seed 1 == the shipped seeds), cfg.Scale scales the session
// population, and cfg.Domains selects the partitioned engine, so the golden
// suite exercises serial-vs-parallel and cross-domain byte-identity for the
// whole corpus through this one runner.
func FigScenarios(cfg Config) Result {
	specs, err := scenario.LoadCorpus(scenarios.FS)
	if err != nil {
		panic(fmt.Sprintf("scenarios: embedded corpus failed to load: %v", err))
	}
	res := Result{
		ID:     "scenarios",
		Title:  "Actor scenario corpus: goodput / tail latency / responses per scenario",
		XLabel: "scenario index",
		YLabel: "per-metric (Mbps, ms, count)",
	}
	goodput := Series{Name: "goodput-mbps"}
	p99 := Series{Name: "p99-ms"}
	responses := Series{Name: "responses"}
	opts := scenario.RunOpts{
		Domains:    cfg.Domains,
		Scale:      cfg.Scale,
		SeedOffset: uint64(cfg.Seed - 1),
	}
	i := 0
	for _, s := range specs {
		if s.Name == "mega-web-1m" {
			continue
		}
		r, err := scenario.Run(s, opts)
		if err != nil {
			panic(fmt.Sprintf("scenarios: %s: %v", s.Name, err))
		}
		x := float64(i)
		goodput.X = append(goodput.X, x)
		goodput.Y = append(goodput.Y, r.Total.GoodputMbps)
		p99.X = append(p99.X, x)
		p99.Y = append(p99.Y, r.Total.P99Ms)
		responses.X = append(responses.X, x)
		responses.Y = append(responses.Y, float64(r.Total.Responses))
		env := "envelope unchecked (scaled run)"
		if r.EnvelopeChecked {
			env = "envelope OK"
			if n := len(r.Violations); n > 0 {
				env = fmt.Sprintf("envelope VIOLATED (%d)", n)
			}
		}
		res.Notes = append(res.Notes, fmt.Sprintf("x=%d %s: %d flows, %s", i, s.Name, r.Flows, env))
		i++
	}
	res.Series = []Series{goodput, p99, responses}
	return res
}
