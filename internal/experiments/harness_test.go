package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/obs"
)

// suiteBytes runs the given runners through RunSuite and renders everything
// comparable: the aggregated report text, the Prometheus export and the
// Chrome trace export.
func suiteBytes(t *testing.T, runners []Runner, cfg Config, opts SuiteOptions) (report, metrics, trace string) {
	t.Helper()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	cfg.Obs = obs.New(reg, tracer)
	var b strings.Builder
	for _, sr := range RunSuite(runners, cfg, opts) {
		b.WriteString(sr.Result.String())
		b.WriteByte('\n')
	}
	var tb bytes.Buffer
	if err := tracer.WriteChromeTrace(&tb); err != nil {
		t.Fatalf("trace export: %v", err)
	}
	return b.String(), string(reg.PrometheusText()), tb.String()
}

// fastSubset picks a few quick experiments that exercise telemetry (core,
// netlink, topo instrumentation) without the cost of the full suite; the
// all-experiment byte-identity check lives in determinism_test.go.
func fastSubset(t *testing.T) []Runner {
	t.Helper()
	var out []Runner
	for _, id := range []string{"fig2", "fig14", "abl-update"} {
		r, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		out = append(out, r)
	}
	return out
}

func TestRunSuiteParallelMatchesSerial(t *testing.T) {
	runners := fastSubset(t)
	cfg := Config{Scale: 0.05, Seed: 1}
	opts := SuiteOptions{Reps: 2}

	serialRep, serialMet, serialTr := suiteBytes(t, runners, cfg, SuiteOptions{Parallel: 1, Reps: opts.Reps})
	parRep, parMet, parTr := suiteBytes(t, runners, cfg, SuiteOptions{Parallel: 4, Reps: opts.Reps})

	if serialRep != parRep {
		t.Errorf("report differs between -parallel 1 and -parallel 4:\n--- serial ---\n%s\n--- parallel ---\n%s", serialRep, parRep)
	}
	if serialMet != parMet {
		t.Errorf("metrics export differs between -parallel 1 and -parallel 4")
	}
	if serialTr != parTr {
		t.Errorf("trace export differs between -parallel 1 and -parallel 4")
	}
}

func TestRunSuiteRepSeeds(t *testing.T) {
	// A fake runner records which seeds it saw; reps must map to Seed+r in
	// job order, independent of pool size.
	seen := make(chan int64, 16)
	fake := Runner{ID: "fake", Title: "fake", Run: func(c Config) Result {
		seen <- c.Seed
		return Result{ID: "fake", Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{float64(c.Seed)}}}}
	}}
	res := RunSuite([]Runner{fake}, Config{Scale: 1, Seed: 10}, SuiteOptions{Parallel: 3, Reps: 3})
	close(seen)
	got := map[int64]bool{}
	for s := range seen {
		got[s] = true
	}
	for _, want := range []int64{10, 11, 12} {
		if !got[want] {
			t.Errorf("seed %d never ran (got %v)", want, got)
		}
	}
	if len(res) != 1 || len(res[0].Reps) != 3 {
		t.Fatalf("want 1 suite result with 3 reps, got %+v", res)
	}
	// Identical X across reps → Y is the per-point median: seeds 10,11,12.
	if y := res[0].Result.Series[0].Y[0]; y != 11 {
		t.Errorf("aggregated Y = %v, want median 11", y)
	}
}

func TestAggregateCDFMedian(t *testing.T) {
	mk := func(xs ...float64) Result {
		return Result{Series: []Series{{Name: "cdf", X: xs, Y: []float64{0.5, 1.0}}}}
	}
	agg := aggregate([]Result{mk(1, 10), mk(3, 30), mk(2, 20)}, 7)
	s := agg.Series[0]
	if s.X[0] != 2 || s.X[1] != 20 {
		t.Errorf("CDF aggregation: X = %v, want per-point median [2 20]", s.X)
	}
	if s.Y[0] != 0.5 || s.Y[1] != 1.0 {
		t.Errorf("CDF aggregation: Y mutated: %v", s.Y)
	}
}

func TestAggregateShapeMismatchFallsBack(t *testing.T) {
	a := Result{Series: []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{1, 2}}}}
	b := Result{Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{1}}}}
	agg := aggregate([]Result{a, b}, 1)
	if len(agg.Series[0].X) != 2 {
		t.Errorf("fallback should keep rep 0, got %+v", agg.Series[0])
	}
	found := false
	for _, n := range agg.Notes {
		if strings.Contains(n, "shape differs") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a shape-mismatch note, notes = %v", agg.Notes)
	}
}

func TestRunSuiteSingleRepKeepsResultVerbatim(t *testing.T) {
	fake := Runner{ID: "fake", Title: "fake", Run: func(c Config) Result {
		return Result{ID: "fake", Notes: []string{fmt.Sprintf("seed=%d", c.Seed)}}
	}}
	res := RunSuite([]Runner{fake}, Config{Seed: 5}, SuiteOptions{})
	if len(res[0].Result.Notes) != 1 || res[0].Result.Notes[0] != "seed=5" {
		t.Errorf("single-rep result altered: %+v", res[0].Result)
	}
}
