package experiments

import (
	"fmt"
	"math/rand"

	"github.com/liteflow-sim/liteflow/internal/cc"
	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netlink"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/quant"
	"github.com/liteflow-sim/liteflow/internal/sched"
	"github.com/liteflow-sim/liteflow/internal/stats"
	"github.com/liteflow-sim/liteflow/internal/tcp"
	"github.com/liteflow-sim/liteflow/internal/topo"
	"github.com/liteflow-sim/liteflow/internal/workload"
)

// Fig15 reproduces Figure 15: the per-prediction latency CDF of the three
// FFNN deployments. LF-FFNN answers in-kernel at integer-inference cost;
// char-FFNN and netlink-FFNN pay a round trip each.
func Fig15(cfg Config) Result {
	res := Result{ID: "fig15", Title: "Flow-size prediction latency CDF",
		XLabel: "latency µs", YLabel: "CDF"}
	eng := netsim.NewEngine()
	costs := ksim.DefaultCosts()
	net := trainedFFNN(cfg)
	prog := quant.Quantize(net, quant.DefaultConfig())

	preds := []struct {
		name string
		p    sched.Predictor
	}{
		{"LF-FFNN", sched.NewKernelPredictor(eng, nil, costs, prog)},
		{"char-FFNN", sched.NewUserPredictor(eng, nil, costs, net, sched.CharDev)},
		{"netlink-FFNN", sched.NewUserPredictor(eng, nil, costs, net, sched.Netlink)},
	}
	fm := sched.NewFeatureModel(cfg.Seed + 9)
	dist := workload.WebSearch()
	r := rand.New(rand.NewSource(cfg.Seed + 10))
	n := cfg.count(2000)
	for _, pr := range preds {
		d := stats.NewDist(n)
		for i := 0; i < n; i++ {
			lat := pr.p.Predict(fm.Features(dist.Sample(r)), func(int) {})
			d.Add(float64(lat) / 1e3)
		}
		eng.Run()
		s := Series{Name: pr.name}
		for _, p := range d.CDF(20) {
			s.X = append(s.X, p.X)
			s.Y = append(s.Y, p.F)
		}
		res.Series = append(res.Series, s)
		res.Notes = append(res.Notes, fmt.Sprintf("%s: mean %.2f µs, p99 %.2f µs",
			pr.name, d.Mean(), d.Quantile(0.99)))
	}
	return res
}

// trainedFFNN returns an FFNN fitted on the undrifted web-search feature
// distribution.
func trainedFFNN(cfg Config) *nn.Network {
	net := sched.NewFFNN(cfg.Seed)
	fm := sched.NewFeatureModel(cfg.Seed + 1)
	dist := workload.WebSearch()
	r := rand.New(rand.NewSource(cfg.Seed + 2))
	var feats [][]float64
	var sizes []int64
	for i := 0; i < 512; i++ {
		s := dist.Sample(r)
		sizes = append(sizes, s)
		feats = append(feats, fm.Features(s))
	}
	sched.Train(net, feats, sizes, 600, 1e-2)
	return net
}

// ffnnUser implements the LiteFlow userspace interfaces for the FFNN: the
// adapter regresses on (features → log size) samples collected from
// completed flows. Aux layout: [Target(size)].
type ffnnUser struct {
	net      *nn.Network
	opt      nn.Optimizer
	lastLoss float64
}

func (u *ffnnUser) Freeze() *nn.Network          { return u.net }
func (u *ffnnUser) Stability() float64           { return u.lastLoss }
func (u *ffnnUser) Infer(in []float64) []float64 { return u.net.Infer(in) }
func (u *ffnnUser) Adapt(batch []core.Sample) {
	x := make([][]float64, 0, len(batch))
	y := make([][]float64, 0, len(batch))
	for _, s := range batch {
		if len(s.Aux) < 1 {
			continue
		}
		x = append(x, s.Input)
		y = append(y, []float64{s.Aux[0]})
	}
	if len(x) == 0 {
		return
	}
	for e := 0; e < 30; e++ {
		u.lastLoss = nn.TrainBatch(u.net, u.opt, x, y, 5)
	}
}

// corePredictor resolves priorities through the LiteFlow core module
// (lf_query_model), so snapshot updates and the flow cache are exercised.
type corePredictor struct {
	eng  *netsim.Engine
	c    *core.Core
	in   []int64
	out  []int64
	jit  *rand.Rand
	cost ksim.Costs
}

// PredictFlow resolves a priority for one flow through lf_query_model; the
// flow ID drives the flow cache so a flow's packets stay consistent with the
// snapshot that first served it.
func (p *corePredictor) PredictFlow(flow netsim.FlowID, features []float64, reply func(int)) netsim.Time {
	prog := p.c.Active().Program()
	if cap(p.in) < len(features) {
		p.in = make([]int64, len(features))
		p.out = make([]int64, prog.OutputSize())
	}
	prog.QuantizeInput(features, p.in[:len(features)])
	if err := p.c.QueryModel(flow, p.in[:len(features)], p.out[:1]); err != nil {
		reply(sched.PrioOf(1e6))
		return 0
	}
	cost := ksim.InferCost(p.cost.KernelInferPerMAC, prog.MACs())
	lat := cost + netsim.Time(p.jit.Int63n(int64(cost)+1))
	prio := sched.PrioOf(sched.PredictedBytes(float64(p.out[0]) / float64(prog.OutputScale)))
	p.eng.After(lat, func() { reply(prio) })
	return lat
}

// fctBuckets accumulates FCT per flow class, with a separate post-drift view
// (the adaptation comparison only differs after the workload shifts).
type fctBuckets struct {
	dists [3]*stats.Dist
	post  [3]*stats.Dist
	note  string
}

func newFCTBuckets() *fctBuckets {
	b := &fctBuckets{}
	for c := 0; c < 3; c++ {
		b.dists[c] = stats.NewDist(256)
		b.post[c] = stats.NewDist(256)
	}
	return b
}

func (f *fctBuckets) add(size int64, fct netsim.Time) {
	f.dists[workload.ClassOf(size)].Add(float64(fct) / 1e3) // µs
}

func (f *fctBuckets) addPost(size int64, fct netsim.Time) {
	f.post[workload.ClassOf(size)].Add(float64(fct) / 1e3)
}

// Fig16 reproduces Figure 16: average FCT by flow class on the 2×2
// spine–leaf fabric (32 hosts, DCTCP, strict-priority queues) for the four
// FFNN deployments. Ordering: LF-FFNN < char < netlink, and the frozen
// LF-FFNN-N-O-A loses the most once the workload's feature mapping drifts.
func Fig16(cfg Config) Result {
	res := Result{ID: "fig16", Title: "Flow scheduling FCT by class (µs)",
		XLabel: "class (0=short 1=mid 2=long)", YLabel: "avg FCT µs"}
	numFlows := cfg.count(4000)
	type schemeKind int
	const (
		lfFFNN schemeKind = iota
		charFFNN
		netlinkFFNN
		lfNOA
	)
	type schemeDef struct {
		name string
		kind schemeKind
	}
	for _, sd := range []schemeDef{
		{"LF-FFNN", lfFFNN},
		{"char-FFNN", charFFNN},
		{"netlink-FFNN", netlinkFFNN},
		{"LF-FFNN-N-O-A", lfNOA},
	} {
		buckets := runFig16Scheme(cfg, sd.kind == charFFNN, sd.kind == netlinkFFNN,
			sd.kind == lfFFNN, sd.kind == lfNOA, numFlows)
		s := Series{Name: sd.name}
		for c := 0; c < 3; c++ {
			s.X = append(s.X, float64(c))
			s.Y = append(s.Y, buckets.dists[c].Mean())
		}
		res.Series = append(res.Series, s)
		note := fmt.Sprintf("%s: mean short %.0fµs mid %.0fµs long %.0fµs | median %.0f/%.0f/%.0fµs (n=%d/%d/%d)",
			sd.name, buckets.dists[0].Mean(), buckets.dists[1].Mean(), buckets.dists[2].Mean(),
			buckets.dists[0].Median(), buckets.dists[1].Median(), buckets.dists[2].Median(),
			buckets.dists[0].N(), buckets.dists[1].N(), buckets.dists[2].N())
		note += fmt.Sprintf(" | post-drift median %.0f/%.0f/%.0fµs",
			buckets.post[0].Median(), buckets.post[1].Median(), buckets.post[2].Median())
		if buckets.note != "" {
			note += " [" + buckets.note + "]"
		}
		res.Notes = append(res.Notes, note)
	}
	return res
}

// runFig16Scheme runs one deployment over the identical drifting workload.
func runFig16Scheme(cfg Config, isChar, isNetlink, isLF, isNOA bool, numFlows int) *fctBuckets {
	eng := netsim.NewEngine()
	opts := topo.DefaultSpineLeafOpts(16) // 32 hosts
	opts.UsePrioQueues = true
	sl := topo.NewSpineLeaf(eng, opts)
	costs := ksim.DefaultCosts()
	sl.AttachCPUs(32, costs) // server-class hosts for the 10G fabric

	// Identical workload for every scheme.
	r := rand.New(rand.NewSource(cfg.Seed + 20))
	flows := workload.Generate(r, numFlows, len(sl.Hosts), 0.55, opts.HostLinkBps, workload.WebSearch())
	fm := sched.NewFeatureModel(cfg.Seed + 21)
	driftAt := flows[numFlows/2].At // feature mapping drifts mid-run
	// Batch delivery must complete several adaptation rounds within the
	// arrival span; scale T to the workload rather than wall-clock.
	batchT := flows[len(flows)-1].At / 20
	if batchT < 5*netsim.Millisecond {
		batchT = 5 * netsim.Millisecond
	}
	if batchT > 100*netsim.Millisecond {
		batchT = 100 * netsim.Millisecond
	}

	net := trainedFFNN(cfg)
	user := &ffnnUser{net: net, opt: nn.NewAdam(1e-2), lastLoss: 1}

	// predict resolves one flow's priority under the scheme's deployment.
	var predict func(flow netsim.FlowID, feats []float64, reply func(int))
	var lf *core.Core
	var svc *core.Service
	var ch *netlink.Channel
	switch {
	case isLF || isNOA:
		coreCfg := core.DefaultConfig()
		coreCfg.OutMin, coreCfg.OutMax = 0, 1
		coreCfg.StabilityWindow = 2
		coreCfg.StabilityTolerance = 1.0
		lf = core.New(eng, nil, costs, coreCfg)
		mod, err := codegen.Build(quant.Quantize(net.Clone(), coreCfg.Quant), "ffnn0")
		if err != nil {
			panic(err)
		}
		if _, err := lf.RegisterModel(mod); err != nil {
			panic(err)
		}
		cp := &corePredictor{eng: eng, c: lf, cost: costs,
			jit: rand.New(rand.NewSource(cfg.Seed + 22))}
		predict = func(flow netsim.FlowID, feats []float64, reply func(int)) {
			cp.PredictFlow(flow, feats, reply)
		}
		if isLF {
			ch = netlink.New(eng, sl.Hosts[0].CPU, costs, nil)
			svc = core.NewService(lf, ch, user, user, user)
			svc.Start(batchT)
		}
	case isChar:
		up := sched.NewUserPredictor(eng, nil, costs, net, sched.CharDev)
		predict = func(_ netsim.FlowID, feats []float64, reply func(int)) { up.Predict(feats, reply) }
	case isNetlink:
		up := sched.NewUserPredictor(eng, nil, costs, net, sched.Netlink)
		predict = func(_ netsim.FlowID, feats []float64, reply func(int)) { up.Predict(feats, reply) }
	}

	// Userspace deployments adapt their model directly (it already lives
	// in userspace); collect and retrain every 100 ms.
	var userspaceBatchX [][]float64
	var userspaceBatchY []int64
	if isChar || isNetlink {
		var retrain func()
		retrain = func() {
			eng.After(batchT, func() {
				if len(userspaceBatchX) > 0 {
					sched.Train(net, userspaceBatchX, userspaceBatchY, 30, 1e-2)
					userspaceBatchX = userspaceBatchX[:0]
					userspaceBatchY = userspaceBatchY[:0]
				}
				retrain()
			})
		}
		retrain()
	}

	buckets := newFCTBuckets()
	for idx, fs := range flows {
		fs := fs
		flowID := netsim.FlowID(idx + 1)
		eng.At(fs.At, func() {
			if fs.At >= driftAt {
				fm.Drift = 0.15
			}
			feats := fm.Features(fs.Size)
			src := sl.Hosts[fs.Src]
			dst := sl.Hosts[fs.Dst]
			ctrl := cc.NewDCTCP()
			snd := tcp.NewSender(src, flowID, dst.ID, fs.Size, ctrl)
			snd.Prio = netsim.NumPrioBands - 1 // untagged until the prediction lands
			rcv := tcp.NewReceiver(dst, flowID, src.ID)
			if lf != nil {
				rcv.OnFIN = func(f netsim.FlowID) { lf.FlowFinished(f) }
			}
			snd.OnComplete = func(fct netsim.Time) {
				buckets.add(fs.Size, fct)
				if fs.At >= driftAt {
					buckets.addPost(fs.Size, fct)
				}
				// Completed flows yield labeled training data.
				if isLF && ch != nil {
					ch.Push(core.EncodeSample(core.Sample{
						Input: feats, Aux: []float64{sched.Target(fs.Size)}, At: eng.Now(),
					}))
				}
				if isChar || isNetlink {
					userspaceBatchX = append(userspaceBatchX, feats)
					userspaceBatchY = append(userspaceBatchY, fs.Size)
				}
			}
			// FLUX tags at flow admission: the flow starts once the
			// prediction lands, so deployment latency directly delays
			// every flow's first packet.
			predict(flowID, feats, func(prio int) {
				snd.Prio = prio
				snd.Start()
			})
		})
	}

	horizon := flows[len(flows)-1].At + 20*netsim.Second
	eng.RunUntil(horizon)
	if ch != nil {
		ch.StopBatching()
	}
	if lf != nil {
		lf.StopSweeper()
	}
	if svc != nil {
		st := svc.Stats()
		buckets.note = fmt.Sprintf("batches %d converged %d checks %d updates %d skipped %d lastFid %.3f",
			st.Batches, st.Converged, st.FidelityChecks, st.Updates, st.SkippedByNecessity, st.LastFidelity)
	}
	return buckets
}
