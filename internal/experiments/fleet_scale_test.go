package experiments

import (
	"testing"

	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/scenario"
	"github.com/liteflow-sim/liteflow/scenarios"
)

// TestFleetChaosRecoversToEpochParity is the distribution plane's acceptance
// gate: with injected slow-path outages darkening odd members mid-rollout,
// installs must park on the degraded cores (never silently drop), and the
// recovery tail must bring every member back to the fleet epoch.
func TestFleetChaosRecoversToEpochParity(t *testing.T) {
	r := RunFleetScenario(FleetScenarioOpts{Members: 4, Seed: 3, Dur: netsim.Second, Chaos: true})

	if r.Stats.Epoch < 2 {
		t.Fatalf("fleet minted %d epochs; the drifting model must force fan-outs", r.Stats.Epoch)
	}
	if r.Stats.OutageDrops == 0 {
		t.Fatal("chaos run injected no outage drops; the scenario exercised nothing")
	}
	if r.Stats.InstallsParked == 0 {
		t.Error("no install parked during outages; degraded members must park, not drop")
	}
	if r.Stats.InstallsAbandoned != 0 {
		t.Errorf("%d installs abandoned; chaos must degrade gracefully, not lose versions", r.Stats.InstallsAbandoned)
	}
	// Epoch parity after recovery: every member converged back to the fleet
	// epoch once its outages ended and its batches resumed.
	if r.Stats.StaleMembers != 0 {
		t.Errorf("%d members still stale after the recovery tail", r.Stats.StaleMembers)
	}
	for i, e := range r.Epochs {
		if e != r.Stats.Epoch {
			t.Errorf("member %d at epoch %d, fleet at %d — no parity", i, e, r.Stats.Epoch)
		}
	}
	if r.PeakStale == 0 {
		t.Error("staleness gauge never moved; rollout waves should lag members transiently")
	}

	// The clean twin at the same seed must see no outage machinery at all.
	c := RunFleetScenario(FleetScenarioOpts{Members: 4, Seed: 3, Dur: netsim.Second, Chaos: false})
	if c.Stats.OutageDrops != 0 || c.Stats.InstallsParked != 0 {
		t.Errorf("clean run saw %d drops / %d parked; fault injection leaked", c.Stats.OutageDrops, c.Stats.InstallsParked)
	}
	if c.Stats.StaleMembers != 0 {
		t.Errorf("clean run ended with %d stale members", c.Stats.StaleMembers)
	}
	// Chaos costs staleness, not correctness: the mean lag must be no better
	// than the clean run's rollout-wave transients.
	if r.MeanStale < c.MeanStale {
		t.Errorf("chaos mean staleness %.3f below clean %.3f; outages should add lag", r.MeanStale, c.MeanStale)
	}
}

// TestFleetScaleShape smokes the registered experiment: goodput scales with
// member count (queries never block on the control plane) and every run
// drains its staleness by the end of the recovery tail.
func TestFleetScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := FigFleetScale(Config{Scale: 0.25, Seed: 1})
	for _, name := range []string{"goodput-clean", "goodput-chaos", "stale-clean", "stale-chaos"} {
		s := res.Get(name)
		if s == nil || len(s.Y) != 3 {
			t.Fatalf("series %s missing or wrong length: %v", name, s)
		}
	}
	for _, name := range []string{"goodput-clean", "goodput-chaos"} {
		g := res.Get(name)
		for i := 1; i < len(g.Y); i++ {
			if g.Y[i] <= g.Y[i-1] {
				t.Errorf("%s must grow with member count: %v", name, g.Y)
			}
		}
	}
	if len(res.Notes) != 6 {
		t.Errorf("want one note per (count, variant) run, got %d", len(res.Notes))
	}
}

// TestFleetWorkloadShaping checks the scenario→fleet-plane wiring: a diurnal
// workload thins member query cadence at the troughs (fewer total queries
// than the flat cadence at the same seed), the run stays deterministic, and
// the distribution plane itself — epochs minted, parity at the end — is
// untouched by load shaping.
func TestFleetWorkloadShaping(t *testing.T) {
	specs, err := scenario.LoadCorpus(scenarios.FS)
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	var diurnal *scenario.Spec
	for _, s := range specs {
		if s.Arrival.Diurnal != nil {
			diurnal = s
			break
		}
	}
	if diurnal == nil {
		t.Fatal("corpus has no diurnal scenario to shape with")
	}

	base := FleetScenarioOpts{Members: 2, Seed: 5, Dur: 400 * netsim.Millisecond}
	flat := RunFleetScenario(base)
	shapedOpts := base
	shapedOpts.Workload = diurnal
	shaped := RunFleetScenario(shapedOpts)
	again := RunFleetScenario(shapedOpts)

	if shaped.Queries != again.Queries || shaped.MeanStale != again.MeanStale {
		t.Errorf("shaped run not deterministic: %d/%f vs %d/%f queries/meanStale",
			shaped.Queries, shaped.MeanStale, again.Queries, again.MeanStale)
	}
	if shaped.Queries >= flat.Queries {
		t.Errorf("diurnal shaping did not thin load: %d shaped >= %d flat queries", shaped.Queries, flat.Queries)
	}
	if shaped.Queries == 0 {
		t.Error("shaped run made no queries; density floor failed")
	}
	if shaped.Stats.Epoch < 2 {
		t.Errorf("shaped run minted %d epochs; drift must still fan out under shaping", shaped.Stats.Epoch)
	}
	if shaped.Stats.StaleMembers != 0 {
		t.Errorf("%d members stale after recovery tail under shaping", shaped.Stats.StaleMembers)
	}
}
