package experiments

import (
	"fmt"
	"math/rand"

	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/opt"
	"github.com/liteflow-sim/liteflow/internal/quant"
	"github.com/liteflow-sim/liteflow/internal/workload"
)

// FigFlowChurn (experiment #20, beyond the paper) stresses the router's
// sharded flow cache the way the ROADMAP's "millions of users" target would:
// hundreds of thousands of short flows churn through the cache — arriving,
// querying a few times, then FINing or going silent — while a long-lived
// adaptation loop keeps installing and activating new snapshots, so flow
// consistency (paper §3.4) must pin old snapshots until their last flow
// drains. The figure reports the live cache population and deepest-shard
// depth over time; the notes quantify the incremental sweeper's per-tick
// work bound (liteflow_core_sweep_scan_total): the largest single sweep tick
// must stay far below the peak cache size, where the pre-sharded
// implementation walked the whole cache every period.
func FigFlowChurn(cfg Config) Result {
	res := Result{ID: "flow-churn", Title: "Flow-cache churn at scale (sharded cache + incremental sweep)",
		XLabel: "time ms", YLabel: "flows / shard depth"}

	const (
		baseFlows   = 250_000
		baseDur     = 2500 * netsim.Millisecond
		meanLife    = 25 * netsim.Millisecond
		cacheTO     = 40 * netsim.Millisecond
		finFrac     = 0.6
		adaptGens   = 8 // snapshot generations activated across the run
		prebuiltMod = 4 // distinct module payloads reused round-robin
	)
	nFlows := cfg.count(baseFlows)
	dur := cfg.dur(baseDur)
	// Arrivals fill the first 85% of the run; the tail lets the cache drain.
	ratePerSec := float64(nFlows) / (float64(dur) * 0.85 / 1e9)

	eng := netsim.NewEngine()
	ccfg := core.DefaultConfig()
	ccfg.FlowCacheTimeout = cacheTO
	ccfg.FlowCacheShards = cfg.CacheShards
	lf := core.NewCore(eng, nil, ksim.DefaultCosts(), ccfg, opt.WithScope(cfg.Obs))

	// Pre-build a few interchangeable snapshot payloads outside the event
	// loop (codegen is the expensive part); the adaptation loop re-registers
	// them round-robin, each registration becoming a fresh Model generation.
	mods := make([]*codegen.Module, prebuiltMod)
	for i := range mods {
		net := nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Tanh}, cfg.Seed+int64(i))
		mod, err := codegen.Build(quant.Quantize(net, ccfg.Quant), fmt.Sprintf("churn%d", i))
		if err != nil {
			panic("experiments: " + err.Error())
		}
		mods[i] = mod
	}
	if _, err := lf.RegisterModel(mods[0]); err != nil {
		panic("experiments: " + err.Error())
	}

	// Long-lived adaptation loop: a new snapshot activates every dur/adaptGens.
	installs := 0
	adaptPeriod := dur / adaptGens
	var adapt func()
	adapt = func() {
		eng.After(adaptPeriod, func() {
			if eng.Now() >= dur {
				return
			}
			installs++
			if _, err := lf.RegisterModel(mods[installs%prebuiltMod]); err != nil {
				panic("experiments: " + err.Error())
			}
			if err := lf.Activate(); err != nil {
				panic("experiments: " + err.Error())
			}
			adapt()
		})
	}
	adapt()

	// Churn workload: each flow opens, spreads its queries over its
	// lifetime, then FINs or goes silent (idle-expired by the sweeper).
	// Per-flow events chain lazily so the event heap stays small; query
	// buffers are shared (the engine is single-threaded) so the steady
	// state allocates only the scheduling closures.
	flows := workload.GenerateChurn(rand.New(rand.NewSource(cfg.Seed)), nFlows, ratePerSec, meanLife, finFrac)
	in := make([]int64, 4)
	out := make([]int64, 1)
	query := func(f netsim.FlowID) {
		if err := lf.QueryModel(f, in, out); err != nil {
			panic("experiments: " + err.Error())
		}
	}
	var fins int64
	for i := range flows {
		f := flows[i]
		step := netsim.Time(0)
		if f.Queries > 1 {
			step = (f.Close - f.Open) / netsim.Time(f.Queries-1)
		}
		var run func(left int)
		run = func(left int) {
			query(f.ID)
			if left > 1 {
				eng.After(step, func() { run(left - 1) })
				return
			}
			if f.Fin {
				fins++
				lf.FlowFinished(f.ID)
			}
		}
		eng.At(f.Open, func() { run(f.Queries) })
	}

	// Sample the cache population and deepest shard on a fixed cadence.
	cached := Series{Name: "cached-flows"}
	depth := Series{Name: "shard-depth"}
	sampleEvery := dur / 50
	var sample func()
	sample = func() {
		ms := float64(eng.Now()) / 1e6
		cached.X = append(cached.X, ms)
		cached.Y = append(cached.Y, float64(lf.CachedFlows()))
		depth.X = append(depth.X, ms)
		depth.Y = append(depth.Y, float64(lf.ShardDepth()))
		if eng.Now() < dur {
			eng.After(sampleEvery, sample)
		}
	}
	eng.After(sampleEvery, sample)

	eng.RunUntil(dur)
	peak := 0
	for _, y := range cached.Y {
		if int(y) > peak {
			peak = int(y)
		}
	}
	// Drain: let the longest-lived flows finish and idle entries expire, so
	// refcounts return to zero and retired snapshots unload.
	eng.Run()
	lf.StopSweeper()
	res.Series = append(res.Series, cached, depth)

	st := lf.Stats()
	res.Notes = append(res.Notes,
		fmt.Sprintf("churned %d flows (%.0f/s, mean life %dms): %d queries, %d FIN drops, %d idle-swept",
			nFlows, ratePerSec, meanLife/netsim.Millisecond, st.Queries, fins, st.SweptEntries),
		fmt.Sprintf("incremental sweep: max tick scan %d of peak %d cached (%d scans total over %d shards)",
			lf.MaxSweepTickScan(), peak, st.SweepScans, lf.CacheShards()),
		fmt.Sprintf("adaptation: %d installs, %d switches, %d snapshot unloads, %d models resident, %d flows cached after drain",
			st.Installs, st.Switches, st.Unloads, lf.Models(), lf.CachedFlows()))
	return res
}
