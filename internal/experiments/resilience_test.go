package experiments

import (
	"bytes"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/fault"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/obs"
)

// TestResilienceGracefulDegradation runs the chaos variant directly and
// asserts the acceptance criteria of the fault-injection work: the run
// completes without panics, the watchdog actually fires
// (liteflow_core_degraded_total > 0), fast-path queries keep succeeding
// throughout the slow-path outages, and goodput stays non-trivial.
func TestResilienceGracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := Config{Scale: 0.25, Seed: 1}
	dur := cfg.dur(30 * netsim.Second)
	T := 100 * netsim.Millisecond
	out := runAdaptation(cfg, adaptVariant{
		name: "chaos", adapt: true,
		faults:   fault.Chaos(),
		watchdog: true, wdWindow: 3 * T,
	}, T, dur, dur/3, 1)

	if out.faultStats.Total() == 0 {
		t.Fatal("chaos profile injected no faults")
	}
	if out.faultStats.Outages == 0 {
		t.Errorf("expected at least one injected service outage, stats: %+v", out.faultStats)
	}
	if out.coreStats.Degraded == 0 {
		t.Errorf("watchdog never degraded despite outages (silence window %v): %+v",
			3*T, out.coreStats)
	}
	if out.coreStats.Queries == 0 {
		t.Error("fast path answered no queries under faults")
	}
	if out.meanGbps <= 0 {
		t.Errorf("goodput collapsed to %.3f Gbps under faults", out.meanGbps)
	}
	if out.svcStats.OutageDrops == 0 {
		t.Error("no batches were dropped by the injected outages")
	}
}

// TestFaultTelemetryDeterminism mirrors TestTelemetryDeterminism for faulted
// runs: the injector derives every decision from the seed, so two same-seed
// chaos runs must export byte-identical Chrome traces and Prometheus text.
func TestFaultTelemetryDeterminism(t *testing.T) {
	export := func() (trace, prom []byte) {
		reg := obs.NewRegistry()
		tr := obs.NewTracer(1 << 14)
		cfg := Config{Scale: 0.2, Seed: 7, Obs: obs.New(reg, tr)}
		prof := fault.Chaos()
		runAdaptation(cfg, adaptVariant{
			name: "chaos", adapt: true,
			faults:   prof,
			watchdog: true, wdWindow: 60 * netsim.Millisecond,
		}, 20*netsim.Millisecond, 400*netsim.Millisecond, 0, 1)
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), reg.PrometheusText()
	}
	t1, p1 := export()
	t2, p2 := export()
	if len(t1) == 0 || len(p1) == 0 {
		t.Fatal("empty telemetry export")
	}
	if !bytes.Equal(t1, t2) {
		t.Errorf("Chrome traces differ between same-seed faulted runs (%d vs %d bytes)", len(t1), len(t2))
	}
	if !bytes.Equal(p1, p2) {
		t.Errorf("Prometheus exports differ between same-seed faulted runs:\n--- run1\n%s\n--- run2\n%s", p1, p2)
	}
}
