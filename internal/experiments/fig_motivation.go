package experiments

import (
	"fmt"

	"github.com/liteflow-sim/liteflow/internal/cc"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/stats"
	"github.com/liteflow-sim/liteflow/internal/tcp"
)

// Fig01a reproduces Figure 1a: the goodput CDF of one CCP-Aurora flow on the
// congested testbed, for communication intervals 1 ms, 10 ms and 100 ms.
// Larger intervals reduce responsiveness and lose goodput.
func Fig01a(cfg Config) Result {
	res := Result{ID: "fig1a", Title: "Goodput CDF vs CCP interval (1 flow, congested)",
		XLabel: "goodput Gbps", YLabel: "CDF"}
	for _, iv := range []netsim.Time{netsim.Millisecond, 10 * netsim.Millisecond, 100 * netsim.Millisecond} {
		out := runCC(ccRun{
			scheme:    ccpScheme(depCCPAurora, "CCP-Aurora", iv),
			flows:     1,
			congested: true,
			warmup:    cfg.dur(3 * netsim.Second),
			dur:       cfg.dur(10 * netsim.Second),
			domains:   cfg.Domains,
		})
		pts := out.windows.CDF(20)
		s := Series{Name: fmt.Sprintf("%dms", iv/netsim.Millisecond)}
		for _, p := range pts {
			s.X = append(s.X, p.X)
			s.Y = append(s.Y, p.F)
		}
		res.Series = append(res.Series, s)
		res.Notes = append(res.Notes, fmt.Sprintf("interval %v: mean goodput %.3f Gbps",
			iv/netsim.Millisecond, out.windows.Mean()))
	}
	return res
}

// Fig01b reproduces Figure 1b: bottleneck queue length over time for the
// same intervals. Small intervals hold the queue short and stable; large
// intervals oscillate it.
func Fig01b(cfg Config) Result {
	res := Result{ID: "fig1b", Title: "Bottleneck queue vs CCP interval",
		XLabel: "time s", YLabel: "queue KB"}
	for _, iv := range []netsim.Time{netsim.Millisecond, 10 * netsim.Millisecond, 100 * netsim.Millisecond} {
		out := runCC(ccRun{
			scheme:      ccpScheme(depCCPAurora, "CCP-Aurora", iv),
			flows:       1,
			congested:   true,
			warmup:      cfg.dur(3 * netsim.Second),
			dur:         cfg.dur(6 * netsim.Second),
			sampleQueue: true,
			domains:     cfg.Domains,
		})
		s := Series{Name: fmt.Sprintf("%dms", iv/netsim.Millisecond)}
		var qsum stats.Summary
		for i := 0; i < out.queue.NumBins(); i++ {
			s.X = append(s.X, float64(i)*0.01)
			kb := out.queue.Avg(i) / 1e3
			s.Y = append(s.Y, kb)
			qsum.Add(kb)
		}
		res.Series = append(res.Series, s)
		res.Notes = append(res.Notes,
			fmt.Sprintf("interval %dms: queue mean %.1f KB std %.1f KB", iv/netsim.Millisecond, qsum.Mean(), qsum.Std()))
	}
	return res
}

// Fig02 reproduces Figure 2: the Mahimahi toy experiment — a single
// NN-controlled flow on a 12 Mbps / 10 ms one-way link, driven through a
// userspace model at 10 ms vs 2.5 ms intervals. The coarse interval fails to
// converge to the available bandwidth.
func Fig02(cfg Config) Result {
	res := Result{ID: "fig2", Title: "Toy link convergence (12 Mbps Mahimahi analog)",
		XLabel: "time s", YLabel: "rate Mbps"}
	for _, iv := range []netsim.Time{10 * netsim.Millisecond, 2500 * netsim.Microsecond} {
		eng := netsim.NewEngine()
		a := tcp.NewHost(eng, 1)
		b := tcp.NewHost(eng, 2)
		// One-way delay 2.5 ms: the coarse 10 ms interval is then two RTTs
		// of staleness while the fine 2.5 ms interval is half an RTT —
		// preserving the paper's interval ratio on a link the simulated
		// controller can actually oscillate on.
		fwd := netsim.NewLink(eng, b, 12_000_000, 2500*netsim.Microsecond, netsim.NewDropTail(8_000))
		rev := netsim.NewLink(eng, a, 12_000_000, 2500*netsim.Microsecond, netsim.NewDropTail(1<<20))
		a.SetEgress(fwd)
		b.SetEgress(rev)

		aur, _ := pretrainedNets()
		backend := &cc.CCPBackend{Eng: eng, Costs: ksim.DefaultCosts(),
			Policy: cc.NewNNPolicy(aur), Interval: iv, UserMACs: aur.MACs()}
		ctrl := cc.NewMIController(eng, backend, 3_000_000)
		// The UDT-Aurora toy uses aggressive per-decision steps; with a
		// coarse interval the (interval-stale) decisions overshoot and the
		// flow cannot settle at the available bandwidth.
		ctrl.Delta = 0.25
		ctrl.MinRate = 500_000

		s := tcp.NewSender(a, 1, b.ID, 0, ctrl)
		r := tcp.NewReceiver(b, 1, a.ID)
		ts := stats.NewTimeSeries(200 * netsim.Millisecond)
		r.OnDeliver = func(n int, now netsim.Time) { ts.Add(now, float64(n)) }
		s.Start()
		eng.RunUntil(cfg.dur(30 * netsim.Second))
		ctrl.Stop()

		sr := Series{Name: fmt.Sprintf("egress-%.1fms", float64(iv)/1e6)}
		rates := ts.RatePerSecond()
		var tail stats.Summary
		for i, v := range rates {
			mbps := v * 8 / 1e6
			sr.X = append(sr.X, float64(i)*0.2)
			sr.Y = append(sr.Y, mbps)
			if i > len(rates)/2 {
				tail.Add(mbps)
			}
		}
		res.Series = append(res.Series, sr)
		// Time to first reach 90% of capacity — the convergence the figure
		// visualizes.
		conv := -1.0
		for i, v := range sr.Y {
			if v >= 0.9*12 {
				conv = sr.X[i]
				break
			}
		}
		res.Notes = append(res.Notes,
			fmt.Sprintf("interval %.1fms: steady-state egress %.2f Mbps of 12 (util %.0f%%), reaches 90%% at t=%.1fs",
				float64(iv)/1e6, tail.Mean(), tail.Mean()/12*100, conv))
	}
	return res
}

// Fig03 reproduces Figure 3: aggregate throughput of N concurrent CCP-Aurora
// flows (normalized to BBR) collapses as the communication interval shrinks
// and the flow count grows — the cross-space overhead wall.
func Fig03(cfg Config) Result {
	res := Result{ID: "fig3", Title: "Normalized aggregate throughput vs N (CCP overhead)",
		XLabel: "flows N", YLabel: "throughput / BBR"}
	ns := []int{2, 4, 6, 8, 10}
	schemes := []scheme{
		{name: "BBR", dep: depBBR},
		ccpScheme(depCCPAurora, "CCP-Aurora", 100*netsim.Millisecond),
		ccpScheme(depCCPAurora, "CCP-Aurora", 10*netsim.Millisecond),
		ccpScheme(depCCPAurora, "CCP-Aurora", netsim.Millisecond),
	}
	base := make(map[int]float64)
	for _, sc := range schemes {
		s := Series{Name: sc.name}
		for _, n := range ns {
			out := runCC(ccRun{scheme: sc, flows: n, congested: false,
				warmup: cfg.dur(2 * netsim.Second), dur: cfg.dur(2 * netsim.Second), domains: cfg.Domains})
			if sc.dep == depBBR {
				base[n] = out.aggGbps
			}
			norm := 0.0
			if base[n] > 0 {
				norm = out.aggGbps / base[n]
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, norm)
		}
		res.Series = append(res.Series, s)
	}
	return res
}

// Fig04 reproduces Figure 4: mpstat softirq time for BBR vs CCP-Aurora at
// shrinking intervals (10 concurrent flows). Cross-space switching, not
// model execution, owns the CPU.
func Fig04(cfg Config) Result {
	res := Result{ID: "fig4", Title: "Softirq CPU time, 10 flows (mpstat)",
		XLabel: "scheme idx", YLabel: "softirq ms / share %"}
	schemes := []scheme{
		{name: "BBR", dep: depBBR},
		ccpScheme(depCCPAurora, "CCP-Aurora", 100*netsim.Millisecond),
		ccpScheme(depCCPAurora, "CCP-Aurora", 10*netsim.Millisecond),
		ccpScheme(depCCPAurora, "CCP-Aurora", netsim.Millisecond),
	}
	ms := Series{Name: "softirq-ms"}
	share := Series{Name: "softirq-share-%"}
	for i, sc := range schemes {
		out := runCC(ccRun{scheme: sc, flows: 10, congested: false,
			warmup: cfg.dur(2 * netsim.Second), dur: cfg.dur(2 * netsim.Second), domains: cfg.Domains})
		ms.X = append(ms.X, float64(i))
		ms.Y = append(ms.Y, float64(out.report.SoftIRQTime)/1e6)
		share.X = append(share.X, float64(i))
		share.Y = append(share.Y, out.report.SoftShare*100)
		res.Notes = append(res.Notes, fmt.Sprintf("%s: %s", sc.name, out.report))
	}
	res.Series = append(res.Series, ms, share)
	return res
}
