package experiments

import (
	"fmt"
	"sync"
	"time"

	"github.com/liteflow-sim/liteflow/internal/obs"
	"github.com/liteflow-sim/liteflow/internal/stats"
)

// This file is the parallel experiment harness. Experiments are pure
// Config→Result functions, each constructing its own private netsim.Engine,
// so independent experiments — and independent per-seed repetitions of one
// experiment — can run on separate goroutines with no shared simulator
// state. Determinism is preserved by construction:
//
//   - result slots are indexed by job, never by completion order;
//   - telemetry is recorded into a private Registry/Tracer per job and folded
//     into the caller's exporters in fixed job order after every job
//     finished (see obs.Registry.Merge), so exported bytes are identical to
//     a serial run of the same jobs;
//   - only wall-clock durations differ between runs, and callers are
//     expected to keep those out of comparable output (cmd/lfbench prints
//     them to stderr).
//
// DESIGN.md §4d documents the invariant; the golden test in
// determinism_test.go enforces it over every registered experiment.

// SuiteOptions configure a RunSuite invocation.
type SuiteOptions struct {
	// Parallel is the worker-pool size. Values below 1 mean serial; note
	// that serial runs still use the same per-job telemetry plumbing, so
	// output bytes never depend on the pool size.
	Parallel int
	// Reps is the number of repetitions per experiment. Rep r runs with
	// Seed+r; results are aggregated per point (median across reps).
	Reps int
}

// SuiteResult is one experiment's outcome across all repetitions.
type SuiteResult struct {
	Runner Runner
	// Result is the aggregate: the rep-0 result when Reps==1, otherwise a
	// per-point median across reps (see aggregate for the exact rules).
	Result Result
	// Reps holds the individual repetition results, rep r at Seed+r.
	Reps []Result
	// Wall holds per-rep host wall-clock durations. Wall time is the one
	// non-deterministic output; callers must not mix it into comparable
	// report bytes.
	Wall []time.Duration
}

// WallQuantile returns the q-th quantile of the per-rep wall times.
func (s SuiteResult) WallQuantile(q float64) time.Duration {
	d := stats.NewDist(len(s.Wall))
	for _, w := range s.Wall {
		d.Add(float64(w))
	}
	return time.Duration(d.Quantile(q))
}

// RunSuite runs every runner for opts.Reps repetitions over a bounded worker
// pool and returns one aggregated SuiteResult per runner, in runner order.
// cfg.Seed seeds rep 0; rep r uses cfg.Seed+r. If cfg.Obs is enabled, each
// job records into a private registry/tracer and the harness folds them into
// cfg.Obs's exporters in job order once all jobs are done.
func RunSuite(runners []Runner, cfg Config, opts SuiteOptions) []SuiteResult {
	reps := opts.Reps
	if reps < 1 {
		reps = 1
	}
	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	nJobs := len(runners) * reps
	if workers > nJobs {
		workers = nJobs
	}

	baseReg := cfg.Obs.Registry()
	baseTracer := cfg.Obs.Tracer()
	baseFlight := cfg.Flight
	type jobOut struct {
		res    Result
		wall   time.Duration
		reg    *obs.Registry
		tracer *obs.Tracer
		flight *obs.FlightRecorder
	}
	outs := make([]jobOut, nJobs)

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				e, r := j/reps, j%reps
				c := cfg
				c.Seed = cfg.Seed + int64(r)
				c.Obs = obs.Nop()
				c.Flight = nil
				if baseReg != nil || baseTracer != nil {
					o := &outs[j]
					if baseReg != nil {
						o.reg = obs.NewRegistry()
					}
					if baseTracer != nil {
						o.tracer = obs.NewTracer(baseTracer.Cap())
					}
					c.Obs = obs.New(o.reg, o.tracer)
				}
				if baseFlight != nil {
					outs[j].flight = obs.NewFlightRecorder(baseFlight.Cap())
					c.Flight = outs[j].flight
				}
				start := time.Now()
				res := runners[e].Run(c)
				outs[j].res = res
				outs[j].wall = time.Since(start)
			}
		}()
	}
	for j := 0; j < nJobs; j++ {
		next <- j
	}
	close(next)
	wg.Wait()

	// Fold per-job telemetry in job order — deterministic regardless of
	// which worker finished when.
	for j := range outs {
		if baseReg != nil {
			baseReg.Merge(outs[j].reg)
		}
		if baseTracer != nil {
			baseTracer.Merge(outs[j].tracer)
		}
		if baseFlight != nil {
			baseFlight.Merge(outs[j].flight)
		}
	}

	results := make([]SuiteResult, len(runners))
	for e := range runners {
		sr := SuiteResult{Runner: runners[e]}
		for r := 0; r < reps; r++ {
			j := e*reps + r
			sr.Reps = append(sr.Reps, outs[j].res)
			sr.Wall = append(sr.Wall, outs[j].wall)
		}
		sr.Result = aggregate(sr.Reps, cfg.Seed)
		results[e] = sr
	}
	return results
}

// aggregate folds repetition results into one Result. Rules, per series:
//
//   - identical X across reps (figure lines, bars): Y becomes the per-point
//     median across reps and Err the per-point standard deviation;
//   - identical Y across reps (CDFs, where the fractions are fixed and the
//     sample values move): X becomes the per-point median, Y and Err kept;
//   - anything else (shape varies with seed): rep 0 is kept verbatim and a
//     note records the fallback.
//
// Medians of deterministic inputs are deterministic, so aggregated output is
// as reproducible as a single run.
func aggregate(reps []Result, baseSeed int64) Result {
	if len(reps) == 1 {
		return reps[0]
	}
	agg := reps[0]
	agg.Series = make([]Series, len(reps[0].Series))
	agg.Notes = append([]string(nil), reps[0].Notes...)
	for si := range reps[0].Series {
		s0 := reps[0].Series[si]
		aligned := true
		for _, r := range reps[1:] {
			if si >= len(r.Series) || r.Series[si].Name != s0.Name ||
				len(r.Series[si].X) != len(s0.X) || len(r.Series[si].Y) != len(s0.Y) {
				aligned = false
				break
			}
		}
		if !aligned {
			agg.Series[si] = s0
			agg.Notes = append(agg.Notes, fmt.Sprintf(
				"series %q: shape differs across reps; showing seed %d only", s0.Name, baseSeed))
			continue
		}
		sameX, sameY := true, true
		for _, r := range reps[1:] {
			rs := r.Series[si]
			for i := range s0.X {
				if rs.X[i] != s0.X[i] {
					sameX = false
				}
			}
			for i := range s0.Y {
				if rs.Y[i] != s0.Y[i] {
					sameY = false
				}
			}
		}
		switch {
		case sameX:
			ns := Series{Name: s0.Name, X: append([]float64(nil), s0.X...)}
			ns.Y = make([]float64, len(s0.Y))
			ns.Err = make([]float64, len(s0.Y))
			for i := range s0.Y {
				d := stats.NewDist(len(reps))
				var sum stats.Summary
				for _, r := range reps {
					d.Add(r.Series[si].Y[i])
					sum.Add(r.Series[si].Y[i])
				}
				ns.Y[i] = d.Median()
				ns.Err[i] = sum.Std()
			}
			agg.Series[si] = ns
		case sameY:
			ns := Series{Name: s0.Name,
				Y:   append([]float64(nil), s0.Y...),
				Err: append([]float64(nil), s0.Err...)}
			ns.X = make([]float64, len(s0.X))
			for i := range s0.X {
				d := stats.NewDist(len(reps))
				for _, r := range reps {
					d.Add(r.Series[si].X[i])
				}
				ns.X[i] = d.Median()
			}
			agg.Series[si] = ns
		default:
			agg.Series[si] = s0
			agg.Notes = append(agg.Notes, fmt.Sprintf(
				"series %q: X and Y both vary across reps; showing seed %d only", s0.Name, baseSeed))
		}
	}
	agg.Notes = append(agg.Notes, fmt.Sprintf(
		"aggregated over %d reps (seeds %d..%d): per-point median, err = std across reps",
		len(reps), baseSeed, baseSeed+int64(len(reps)-1)))
	return agg
}
