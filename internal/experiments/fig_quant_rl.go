package experiments

import (
	"fmt"
	"math/rand"

	"github.com/liteflow-sim/liteflow/internal/cc"
	"github.com/liteflow-sim/liteflow/internal/lb"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/quant"
	"github.com/liteflow-sim/liteflow/internal/rl"
	"github.com/liteflow-sim/liteflow/internal/sched"
	"github.com/liteflow-sim/liteflow/internal/workload"
)

// Fig07 reproduces Figure 7: accuracy loss of LiteFlow's integer
// quantization across all four evaluated NNs as the output scaling factor C
// grows. With C = 1000 (the paper's example), the loss sits around the
// paper's ~2% average; with C = 1 the output collapses.
func Fig07(cfg Config) Result {
	res := Result{ID: "fig7", Title: "Quantization accuracy loss vs scaling factor",
		XLabel: "scaling factor C", YLabel: "accuracy loss"}
	r := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.count(400)

	type model struct {
		name   string
		net    *nn.Network
		inputs [][]float64
	}
	aur, mocc := pretrainedNets()
	ffnn := sched.NewFFNN(5)
	mlp := lb.NewMLP(2, 6)
	// Give FFNN and MLP trained weights so outputs are meaningful.
	fm := sched.NewFeatureModel(7)
	dist := workload.WebSearch()
	var feats [][]float64
	var sizes []int64
	for i := 0; i < 256; i++ {
		s := dist.Sample(r)
		sizes = append(sizes, s)
		feats = append(feats, fm.Features(s))
	}
	sched.Train(ffnn, feats, sizes, 200, 1e-2)
	lb.Train(mlp, 2, 200, 1e-2, 1.0, cfg.Seed)

	ccInputs := make([][]float64, n)
	for i := range ccInputs {
		ccInputs[i] = cc.RandomState(r)
	}
	schedInputs := make([][]float64, n)
	for i := range schedInputs {
		schedInputs[i] = fm.Features(dist.Sample(r))
	}
	lbInputs := make([][]float64, n)
	for i := range lbInputs {
		lbInputs[i] = lb.RandomFeatures(r, 2, 1.0)
	}

	models := []model{
		{"Aurora", aur, ccInputs},
		{"MOCC", mocc, ccInputs},
		{"FFNN", ffnn, schedInputs},
		{"MLP", mlp, lbInputs},
	}
	for _, m := range models {
		s := Series{Name: m.name}
		for _, c := range []int64{1, 10, 100, 1000, 10000} {
			qc := quant.DefaultConfig()
			qc.OutputScale = c
			loss := quant.AccuracyLoss(m.net, quant.Quantize(m.net, qc), m.inputs)
			s.X = append(s.X, float64(c))
			s.Y = append(s.Y, loss)
		}
		res.Series = append(res.Series, s)
		res.Notes = append(res.Notes, fmt.Sprintf("%s: loss at C=1000 is %.4f", m.name, s.Y[3]))
	}
	return res
}

// Fig08 reproduces Figure 8: Aurora's online adaptation reward across
// training iterations, and the goodput a snapshot frozen every 100
// iterations would deliver. Snapshots taken before exploration converges
// perform poorly — the motivation for the correctness gate (§3.3).
func Fig08(cfg Config) Result {
	res := Result{ID: "fig8", Title: "Adaptation convergence vs snapshot goodput",
		XLabel: "iteration", YLabel: "reward / goodput Mbps"}
	net := cc.NewAuroraNet(cfg.Seed)
	learner := rl.NewREINFORCE(net, 5e-3, cfg.Seed+1)
	env := rl.NewLinkEnv(rl.AuroraReward{}, cfg.Seed+2)
	env.Steps = 120

	iters := cfg.count(800)
	const batch = 4
	reward := Series{Name: "training-reward"}
	goodput := Series{Name: "snapshot-goodput"}

	// evaluate deploys the current policy deterministically on a fresh
	// link and reports mean utilization as goodput of a 12 Mbps link.
	evaluate := func() float64 {
		eval := rl.NewLinkEnv(rl.AuroraReward{}, 999)
		eval.Steps = 200
		obs := eval.Reset()
		var util float64
		for t := 0; t < eval.Steps; t++ {
			var done bool
			obs, _, done = eval.Step(learner.Mean(obs))
			util += eval.Utilization()
			if done {
				break
			}
		}
		return util / float64(eval.Steps) * 12 // Mbps on the toy link
	}

	for it := 0; it < iters; it += batch {
		ret := learner.RunBatch(env, batch, env.Steps)
		reward.X = append(reward.X, float64(it))
		reward.Y = append(reward.Y, ret)
		if it%100 < batch {
			goodput.X = append(goodput.X, float64(it))
			goodput.Y = append(goodput.Y, evaluate())
		}
	}
	res.Series = append(res.Series, reward, goodput)
	res.Notes = append(res.Notes,
		fmt.Sprintf("first snapshot goodput %.2f Mbps, final %.2f Mbps",
			goodput.Y[0], goodput.Y[len(goodput.Y)-1]))
	return res
}
