package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/fleet"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/obs"
	"github.com/liteflow-sim/liteflow/internal/opt"
	"github.com/liteflow-sim/liteflow/internal/topo"
)

// canaryUser is the canary experiment's slow-path model. It drifts like
// fleetDriftUser to keep epochs minting, and at a scheduled virtual time it is
// swapped to a deliberately bloated network (same input/output dims, huge
// hidden layer) — a "bad push" whose next minted epoch carries ~250× the
// MACs, so every member that installs it pays a visibly larger kernel
// inference cost.
type canaryUser struct {
	net        *nn.Network
	driftEvery int
	rounds     int
	sign       float64
}

func (u *canaryUser) Freeze() *nn.Network          { return u.net }
func (u *canaryUser) Stability() float64           { return 0.5 }
func (u *canaryUser) Infer(in []float64) []float64 { return u.net.Infer(in) }
func (u *canaryUser) Adapt([]core.Sample) {
	u.rounds++
	if u.driftEvery > 0 && u.rounds%u.driftEvery == 0 {
		out := u.net.Layers[len(u.net.Layers)-1]
		out.B[0] += u.sign * 0.5
		u.sign = -u.sign
	}
}

// bloat returns a functionally offset copy of base with its hidden layer
// padded to the given width: the original hidden units (weights and biases)
// are embedded verbatim, the padding units get random input weights but zero
// output weights, and the output bias shifts by off — so bloated(x) ==
// base(x) + off exactly. The constant offset keeps the fleet necessity gate's
// min-loss strictly above threshold (a fresh random net would cross the old
// function somewhere and let the minimum collapse to ~0), while the padding
// inflates the MAC count ~250× — the degradation the canary must catch.
func bloat(base *nn.Network, hidden int, off float64, seed int64) *nn.Network {
	n := nn.New([]int{base.InputSize(), hidden, base.OutputSize()},
		[]nn.Activation{nn.Tanh, nn.Linear}, seed)
	l1, l2 := base.Layers[0], base.Layers[1]
	b1, b2 := n.Layers[0], n.Layers[1]
	for i := 0; i < l1.Out; i++ {
		copy(b1.W[i], l1.W[i])
		b1.B[i] = l1.B[i]
	}
	for o := 0; o < l2.Out; o++ {
		for j := range b2.W[o] {
			if j < l1.Out {
				b2.W[o][j] = l2.W[o][j]
			} else {
				b2.W[o][j] = 0
			}
		}
		b2.B[o] = l2.B[o] + off
	}
	return n
}

// FigFleetCanary (experiment #22, beyond the paper) closes the loop between
// the snapshot distribution plane and the flight recorder: it is the
// canary-gate scenario DESIGN.md §4g describes. A 4-member fleet runs a
// drifting model under a closed-loop query stream — each member issues its
// next query only after the previous one's modeled kernel inference cost has
// elapsed, so per-member goodput is inversely tied to the active snapshot's
// MAC count. Halfway through, the slow-path model is swapped for a bloated
// 4→2048→1 network (a deliberately degraded push: ~10240 MACs ≈ 20µs per
// inference versus the healthy model's 1µs floor). The fleet dutifully builds
// and fans it out; the flight recorder, sampling every registry series on a
// virtual-time tick, must flag the regression purely from windowed deltas:
// the fleet-wide query rate collapses and the modeled query-latency p99
// jumps between the pre-install and post-install windows.
func FigFleetCanary(cfg Config) Result {
	const (
		members    = 4
		aggDivisor = 40
		driftEvery = 6
	)
	res := Result{ID: "fleet-canary", Title: "Canary gate: flight-recorder delta across a degraded snapshot install",
		XLabel: "window (0=pre-install, 1=post-install)", YLabel: "queries/s | p99 ns"}

	dur := cfg.dur(2 * netsim.Second)
	end := 2 * dur
	agg := dur / aggDivisor
	if agg < 200*netsim.Microsecond {
		agg = 200 * netsim.Microsecond
	}

	// The flight recorder needs a live registry to sample. Use the caller's
	// when observability is on; otherwise run a private one — the simulation
	// is identical either way, obs is passive.
	sc := cfg.Obs
	reg := sc.Registry()
	if reg == nil {
		reg = obs.NewRegistry()
		sc = obs.New(reg, nil)
	}
	fr := cfg.Flight
	if fr == nil {
		fr = obs.NewFlightRecorder(0)
	}
	flightEvery := cfg.FlightEvery
	if flightEvery <= 0 {
		flightEvery = agg / 2
	}

	eng := netsim.NewEngine()
	fabric := topo.BuildSpineLeaf(eng, topo.DefaultSpineLeafOpts(members/2), opt.WithScope(sc))
	costs := ksim.DefaultCosts()
	fabric.ProvisionCPUs(4, costs, opt.WithScope(sc))

	user := &canaryUser{
		net:        nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Linear}, cfg.Seed),
		driftEvery: driftEvery,
		sign:       1,
	}
	ccfg := core.DefaultConfig()
	ccfg.FlowCacheShards = cfg.CacheShards
	spec := topo.FleetSpec{
		Costs: costs,
		Core:  ccfg,
		Fleet: fleet.Config{
			BatchInterval:         agg,
			AggregationInterval:   agg,
			MaxConcurrentInstalls: 2,
		},
	}
	ctrl := fabric.ProvisionFleet(spec, user, user, user, opt.WithScope(sc))
	if err := ctrl.Start(); err != nil {
		panic("experiments: fleet canary: " + err.Error())
	}

	// The bad push: swap the slow-path model for the bloated network and stop
	// drifting, so exactly one degraded epoch is minted and the post-install
	// window is steady-state on it. Hidden-layer growth is legal for
	// RegisterModel (input/output dims are pinned).
	eng.At(dur, func() {
		user.net = bloat(user.net, 2048, 1.0, cfg.Seed+7)
		user.driftEvery = 0
	})

	// Closed-loop per-member query stream: each member issues its next query
	// only after the active snapshot's modeled inference cost has elapsed, so
	// a bloated snapshot directly depresses that member's query rate. Flows
	// are short-lived (flowLen queries, then FIN + a fresh flow) — snapshots
	// pin per flow at first use (§3.4 flow consistency), so churn is what
	// lets new flows pick up a freshly activated version.
	const flowLen = 16
	queryEvery := 5 * netsim.Microsecond
	for i, m := range ctrl.Members() {
		i, m := i, m
		rng := rand.New(rand.NewSource(cfg.Seed + 31*int64(i)))
		in := make([]int64, 4)
		out := make([]int64, 1)
		flow := netsim.FlowID(i*1_000_000 + 1)
		sent := 0
		var tick func()
		tick = func() {
			sample := core.Sample{Input: make([]float64, 4), At: eng.Now()}
			for k := range in {
				sample.Input[k] = rng.Float64()*2 - 1
				in[k] = int64(sample.Input[k] * 100)
			}
			m.Core.QueryModel(flow, in, out)
			m.Chan.Push(core.EncodeSample(sample))
			if sent++; sent%flowLen == 0 {
				m.Core.FlowFinished(flow)
				flow++
			}
			next := queryEvery
			if act := m.Core.Active(); act != nil {
				next += ksim.InferCost(costs.KernelInferPerMAC, act.Program().MACs())
			}
			if eng.Now() < end {
				eng.After(next, tick)
			}
		}
		eng.After(queryEvery, tick)
	}

	// Flight-recorder tick: snapshot every series in the registry.
	var flightTick func()
	flightTick = func() {
		fr.Sample(reg, int64(eng.Now()))
		if eng.Now() < end {
			eng.After(flightEvery, flightTick)
		}
	}
	eng.After(flightEvery, flightTick)

	eng.RunUntil(end)
	ctrl.Stop()
	for _, m := range ctrl.Members() {
		m.Core.StopSweeper()
	}

	// The canary gate: compare the steady window before the bad push against
	// the steady window after the rollout settles. [dur, 3dur/2] is left out
	// as the transition (build, fan-out, member installs).
	before := obs.TimeWindow{From: int64(dur / 2), To: int64(dur)}
	after := obs.TimeWindow{From: int64(3 * dur / 2), To: int64(end)}
	deltas := fr.Delta(before, after)

	var qBefore, qAfter float64 // summed member query rates
	var pBefore, pAfter float64 // mean member p99 levels
	var pN int
	for _, d := range deltas {
		switch {
		case strings.HasPrefix(d.Name, "liteflow_core_queries_total") && d.Cumulative:
			qBefore += d.Before
			qAfter += d.After
		case strings.HasPrefix(d.Name, "liteflow_query_ns") && strings.HasSuffix(d.Name, "_p99"):
			pBefore += d.Before
			pAfter += d.After
			pN++
		}
	}
	if pN > 0 {
		pBefore /= float64(pN)
		pAfter /= float64(pN)
	}

	res.Series = append(res.Series,
		Series{Name: "goodput-qps", X: []float64{0, 1}, Y: []float64{qBefore, qAfter}},
		Series{Name: "query-p99-ns", X: []float64{0, 1}, Y: []float64{pBefore, pAfter}},
	)
	st := ctrl.Stats()
	goodputRatio := 0.0
	if qBefore > 0 {
		goodputRatio = qAfter / qBefore
	}
	latRatio := 0.0
	if pBefore > 0 {
		latRatio = pAfter / pBefore
	}
	verdict := "no regression"
	if goodputRatio < 0.9 || latRatio > 1.5 {
		verdict = "REGRESSION: degraded snapshot flagged"
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("flight delta windows: before [%d,%d] after [%d,%d] ns (virtual), %d samples recorded",
			before.From, before.To, after.From, after.To, fr.Ticks()),
		fmt.Sprintf("goodput ratio %.3f, p99 latency ratio %.2f — %s", goodputRatio, latRatio, verdict),
		fmt.Sprintf("fleet: %d epochs, %d member installs (%d parked, %d abandoned)",
			st.Epoch, st.MemberInstalls, st.InstallsParked, st.InstallsAbandoned),
	)
	return res
}
