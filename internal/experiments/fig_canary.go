package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/fleet"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/obs"
	"github.com/liteflow-sim/liteflow/internal/opt"
	"github.com/liteflow-sim/liteflow/internal/topo"
)

// canaryUser is the canary experiment's slow-path model. It drifts like
// fleetDriftUser to keep epochs minting, and at a scheduled virtual time it is
// swapped to a deliberately bloated network (same input/output dims, huge
// hidden layer) — a "bad push" whose next minted epoch carries ~250× the
// MACs, so every member that installs it pays a visibly larger kernel
// inference cost.
type canaryUser struct {
	net        *nn.Network
	driftEvery int
	rounds     int
	sign       float64
}

func (u *canaryUser) Freeze() *nn.Network          { return u.net }
func (u *canaryUser) Stability() float64           { return 0.5 }
func (u *canaryUser) Infer(in []float64) []float64 { return u.net.Infer(in) }
func (u *canaryUser) Adapt([]core.Sample) {
	u.rounds++
	if u.driftEvery > 0 && u.rounds%u.driftEvery == 0 {
		out := u.net.Layers[len(u.net.Layers)-1]
		out.B[0] += u.sign * 0.5
		u.sign = -u.sign
	}
}

// bloat returns a functionally offset copy of base with its hidden layer
// padded to the given width: the original hidden units (weights and biases)
// are embedded verbatim, the padding units get random input weights but zero
// output weights, and the output bias shifts by off — so bloated(x) ==
// base(x) + off exactly. The constant offset keeps the fleet necessity gate's
// min-loss strictly above threshold (a fresh random net would cross the old
// function somewhere and let the minimum collapse to ~0), while the padding
// inflates the MAC count ~250× — the degradation the canary must catch.
func bloat(base *nn.Network, hidden int, off float64, seed int64) *nn.Network {
	n := nn.New([]int{base.InputSize(), hidden, base.OutputSize()},
		[]nn.Activation{nn.Tanh, nn.Linear}, seed)
	l1, l2 := base.Layers[0], base.Layers[1]
	b1, b2 := n.Layers[0], n.Layers[1]
	for i := 0; i < l1.Out; i++ {
		copy(b1.W[i], l1.W[i])
		b1.B[i] = l1.B[i]
	}
	for o := 0; o < l2.Out; o++ {
		for j := range b2.W[o] {
			if j < l1.Out {
				b2.W[o][j] = l2.W[o][j]
			} else {
				b2.W[o][j] = 0
			}
		}
		b2.B[o] = l2.B[o] + off
	}
	return n
}

// CanaryScenarioOpts parameterizes one bad-push run of the canary scenario.
type CanaryScenarioOpts struct {
	Members     int         // fleet size (default 4)
	CanaryCount int         // staged cohort size when Gate is on (default 1)
	Gate        bool        // enable the controller's canary gate
	Seed        int64       // rng seed for traffic and model init
	Dur         netsim.Time // bad push at Dur; the run ends at 2×Dur
	Obs         obs.Scope   // telemetry scope; a private registry is used when it has none
	CacheShards int
	Flight      *obs.FlightRecorder // recorder to sample into (private one when nil)
	FlightEvery netsim.Time         // sampling period (default aggregation/2)
}

// CanaryScenarioResult is everything the acceptance tests and the experiment
// figure need from one run.
type CanaryScenarioResult struct {
	Stats       fleet.Stats
	Blacklisted []int64   // epochs rejected by the canary verdict
	Canaries    []int     // staged cohort member indices (nil when ungated)
	EpochsSeen  [][]int64 // per member: distinct epochs observed active, in order
	Final       []int64   // member epochs at run end
	Released    int64     // released epoch at run end

	QBefore, QAfter float64 // summed member query rates around the bad push
	PBefore, PAfter float64 // mean member query-latency p99 levels
	Ticks           int64   // flight samples recorded
}

// GoodputRatio is QAfter/QBefore (0 when the pre-push window is empty).
func (r CanaryScenarioResult) GoodputRatio() float64 {
	if r.QBefore <= 0 {
		return 0
	}
	return r.QAfter / r.QBefore
}

// LatencyRatio is PAfter/PBefore (0 when the pre-push window is empty).
func (r CanaryScenarioResult) LatencyRatio() float64 {
	if r.PBefore <= 0 {
		return 0
	}
	return r.PAfter / r.PBefore
}

// RunCanaryScenario runs the bad-push fleet scenario once: a fleet under a
// closed-loop query stream — each member issues its next query only after the
// previous one's modeled kernel inference cost has elapsed, so per-member
// goodput is inversely tied to the active snapshot's MAC count — whose
// slow-path model is swapped at Dur for a bloated 4→2048→1 network (~10240
// MACs ≈ 20µs per inference versus the healthy model's 1µs floor). Ungated,
// the fleet dutifully fans the degraded epoch out to everyone and fleet-wide
// goodput collapses. Gated, the epoch reaches only the canary cohort; the
// controller's verdict reads the same flight recorder the figure does, fails
// the cohort on its goodput collapse, rolls it back, and blacklists the epoch
// — non-canary members never see it.
func RunCanaryScenario(o CanaryScenarioOpts) CanaryScenarioResult {
	const (
		aggDivisor = 40
		driftEvery = 6
		flowLen    = 16
	)
	if o.Members <= 0 {
		o.Members = 4
	}
	if o.CanaryCount <= 0 {
		o.CanaryCount = 1
	}
	dur := o.Dur
	if dur <= 0 {
		dur = 2 * netsim.Second
	}
	end := 2 * dur
	agg := dur / aggDivisor
	if agg < 200*netsim.Microsecond {
		agg = 200 * netsim.Microsecond
	}

	// The flight recorder needs a live registry to sample. Use the caller's
	// when observability is on; otherwise run a private one — the simulation
	// is identical either way, obs is passive.
	sc := o.Obs
	reg := sc.Registry()
	if reg == nil {
		reg = obs.NewRegistry()
		sc = obs.New(reg, nil)
	}
	fr := o.Flight
	if fr == nil {
		fr = obs.NewFlightRecorder(0)
	}
	flightEvery := o.FlightEvery
	if flightEvery <= 0 {
		flightEvery = agg / 2
	}

	eng := netsim.NewEngine()
	fabric := topo.BuildSpineLeaf(eng, topo.DefaultSpineLeafOpts((o.Members+1)/2), opt.WithScope(sc))
	costs := ksim.DefaultCosts()
	fabric.ProvisionCPUs(4, costs, opt.WithScope(sc))

	user := &canaryUser{
		net:        nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Linear}, o.Seed),
		driftEvery: driftEvery,
		sign:       1,
	}
	ccfg := core.DefaultConfig()
	ccfg.FlowCacheShards = o.CacheShards
	fcfg := fleet.Config{
		BatchInterval:         agg,
		AggregationInterval:   agg,
		MaxConcurrentInstalls: 2,
	}
	if o.Gate {
		// The verdict window is 4 aggregation rounds: long enough for the
		// flight recorder (sampling at agg/2) to hold several points in both
		// the baseline and observation windows, short enough that a bad epoch
		// is caught within a fraction of the run.
		fcfg.CanaryCount = o.CanaryCount
		fcfg.CanaryWindow = 4 * agg
		fcfg.Flight = fr
	}
	spec := topo.FleetSpec{Costs: costs, Core: ccfg, Fleet: fcfg}
	ctrl := fabric.ProvisionFleet(spec, user, user, user, opt.WithScope(sc))
	if err := ctrl.Start(); err != nil {
		panic("experiments: fleet canary: " + err.Error())
	}

	// The bad push: swap the slow-path model for the bloated network and stop
	// drifting. Ungated, exactly one degraded epoch is minted and the
	// post-install window is steady-state on it; gated, every re-mint of the
	// still-bloated model is caught at the canary stage in turn. Hidden-layer
	// growth is legal for RegisterModel (input/output dims are pinned).
	eng.At(dur, func() {
		user.net = bloat(user.net, 2048, 1.0, o.Seed+7)
		user.driftEvery = 0
	})

	// Closed-loop per-member query stream. Flows are short-lived (flowLen
	// queries, then FIN + a fresh flow) — snapshots pin per flow at first use
	// (§3.4 flow consistency), so churn is what lets new flows pick up a
	// freshly activated version.
	queryEvery := 5 * netsim.Microsecond
	for i, m := range ctrl.Members() {
		i, m := i, m
		rng := rand.New(rand.NewSource(o.Seed + 31*int64(i)))
		in := make([]int64, 4)
		out := make([]int64, 1)
		flow := netsim.FlowID(i*1_000_000 + 1)
		sent := 0
		var tick func()
		tick = func() {
			sample := core.Sample{Input: make([]float64, 4), At: eng.Now()}
			for k := range in {
				sample.Input[k] = rng.Float64()*2 - 1
				in[k] = int64(sample.Input[k] * 100)
			}
			m.Core.QueryModel(flow, in, out)
			m.Chan.Push(core.EncodeSample(sample))
			if sent++; sent%flowLen == 0 {
				m.Core.FlowFinished(flow)
				flow++
			}
			next := queryEvery
			if act := m.Core.Active(); act != nil {
				next += ksim.InferCost(costs.KernelInferPerMAC, act.Program().MACs())
			}
			if eng.Now() < end {
				eng.After(next, tick)
			}
		}
		eng.After(queryEvery, tick)
	}

	// Flight-recorder tick: snapshot every series in the registry. The gated
	// controller's verdict reads these same samples.
	var flightTick func()
	flightTick = func() {
		fr.Sample(reg, int64(eng.Now()))
		if eng.Now() < end {
			eng.After(flightEvery, flightTick)
		}
	}
	eng.After(flightEvery, flightTick)

	// Epoch-history tick: record each member's active epoch 4× per
	// aggregation round, so the acceptance test can prove a blacklisted epoch
	// was never live on a non-canary member at any sampled instant.
	seen := make([][]int64, o.Members)
	var epochTick func()
	epochTick = func() {
		for i, e := range ctrl.MemberEpochs() {
			if n := len(seen[i]); n == 0 || seen[i][n-1] != e {
				seen[i] = append(seen[i], e)
			}
		}
		if eng.Now() < end {
			eng.After(agg/4, epochTick)
		}
	}
	epochTick()

	eng.RunUntil(end)
	ctrl.Stop()
	for _, m := range ctrl.Members() {
		m.Core.StopSweeper()
	}

	// Compare the steady window before the bad push against the window after
	// the rollout (or the gate's block) settles. [dur, 3dur/2] is left out as
	// the transition (build, fan-out, member installs, verdicts).
	before := obs.TimeWindow{From: int64(dur / 2), To: int64(dur)}
	after := obs.TimeWindow{From: int64(3 * dur / 2), To: int64(end)}
	res := CanaryScenarioResult{
		Stats:       ctrl.Stats(),
		Blacklisted: ctrl.Blacklisted(),
		EpochsSeen:  seen,
		Final:       ctrl.MemberEpochs(),
		Released:    ctrl.Released(),
		Ticks:       fr.Ticks(),
	}
	if o.Gate {
		for i := 0; i < o.CanaryCount; i++ {
			res.Canaries = append(res.Canaries, i)
		}
	}
	var pN int
	for _, d := range fr.Delta(before, after) {
		switch {
		case strings.HasPrefix(d.Name, "liteflow_core_queries_total") && d.Cumulative:
			res.QBefore += d.Before
			res.QAfter += d.After
		case strings.HasPrefix(d.Name, "liteflow_query_ns") && strings.HasSuffix(d.Name, "_p99"):
			res.PBefore += d.Before
			res.PAfter += d.After
			pN++
		}
	}
	if pN > 0 {
		res.PBefore /= float64(pN)
		res.PAfter /= float64(pN)
	}
	return res
}

// FigFleetCanary (experiment #22, beyond the paper) closes the loop between
// the snapshot distribution plane and the flight recorder twice over: the
// same bad push runs once ungated — the degraded epoch fans out fleet-wide
// and the windowed deltas flag the collapse after the fact — and once with
// the controller's canary gate on, where the verdict reads the same flight
// recorder live, catches the collapse on the one-member cohort, rolls it
// back, and blacklists the epoch. The pair of series is the before/after of
// ROADMAP item 3: observation (PR 6) versus enforcement (this gate).
func FigFleetCanary(cfg Config) Result {
	const members = 4
	res := Result{ID: "fleet-canary", Title: "Canary gate: ungated collapse vs gated auto-rollback on a degraded snapshot",
		XLabel: "window (0=pre-push, 1=post-push)", YLabel: "queries/s | p99 ns"}

	dur := cfg.dur(2 * netsim.Second)

	// Ungated baseline on private telemetry: its only outputs are the window
	// aggregates. The gated run gets the caller's scope and flight recorder,
	// so the exported artifacts show the blocked rollout.
	ungated := RunCanaryScenario(CanaryScenarioOpts{
		Members: members, Seed: cfg.Seed, Dur: dur, CacheShards: cfg.CacheShards,
	})
	gated := RunCanaryScenario(CanaryScenarioOpts{
		Members: members, CanaryCount: 1, Gate: true,
		Seed: cfg.Seed, Dur: dur, CacheShards: cfg.CacheShards,
		Obs: cfg.Obs, Flight: cfg.Flight, FlightEvery: cfg.FlightEvery,
	})

	res.Series = append(res.Series,
		Series{Name: "goodput-qps-ungated", X: []float64{0, 1}, Y: []float64{ungated.QBefore, ungated.QAfter}},
		Series{Name: "goodput-qps-gated", X: []float64{0, 1}, Y: []float64{gated.QBefore, gated.QAfter}},
		Series{Name: "query-p99-ns-ungated", X: []float64{0, 1}, Y: []float64{ungated.PBefore, ungated.PAfter}},
		Series{Name: "query-p99-ns-gated", X: []float64{0, 1}, Y: []float64{gated.PBefore, gated.PAfter}},
	)

	uVerdict := "no regression"
	if ungated.GoodputRatio() < 0.9 || ungated.LatencyRatio() > 1.5 {
		uVerdict = "REGRESSION: degraded snapshot reached the whole fleet"
	}
	gVerdict := "REGRESSION: gate failed to protect the fleet"
	if gated.GoodputRatio() >= 0.7 && gated.Stats.CanaryFails >= 1 {
		gVerdict = "BLOCKED: canary gate caught the degraded epoch"
	}
	us, gs := ungated.Stats, gated.Stats
	res.Notes = append(res.Notes,
		fmt.Sprintf("ungated: goodput ratio %.3f, p99 ratio %.2f — %s", ungated.GoodputRatio(), ungated.LatencyRatio(), uVerdict),
		fmt.Sprintf("gated:   goodput ratio %.3f, p99 ratio %.2f — %s", gated.GoodputRatio(), gated.LatencyRatio(), gVerdict),
		fmt.Sprintf("ungated fleet: %d epochs, %d member installs (%d parked, %d abandoned)",
			us.Epoch, us.MemberInstalls, us.InstallsParked, us.InstallsAbandoned),
		fmt.Sprintf("gated fleet: released epoch %d, %d canary passes, %d fails, %d rollbacks, blacklisted %v",
			gs.ReleasedEpoch, gs.CanaryPasses, gs.CanaryFails, gs.Rollbacks, gated.Blacklisted),
		fmt.Sprintf("flight: %d samples (gated run); verdict windows = 4 aggregation rounds", gated.Ticks),
	)
	return res
}
