package experiments

import (
	"fmt"
	"sync"

	"github.com/liteflow-sim/liteflow/internal/cc"
	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/quant"
	"github.com/liteflow-sim/liteflow/internal/stats"
	"github.com/liteflow-sim/liteflow/internal/tcp"
	"github.com/liteflow-sim/liteflow/internal/topo"
)

// deployment selects how a congestion-control scheme is realized.
type deployment int

const (
	depBBR deployment = iota
	depCUBIC
	depLFAurora
	depLFMOCC
	depLFDummy
	depCCPAurora
	depCCPMOCC
)

// scheme is one bar/line of the CC figures.
type scheme struct {
	name     string
	dep      deployment
	interval netsim.Time // CCP exchange interval; 0 = per-ACK
}

// Per-ACK kernel compute costs of the classic controllers: BBR's max-filter
// update is cheap; CUBIC's cube-root window computation is the expensive
// kernel arithmetic the paper blames for CUBIC trailing the NN snapshots
// (§5.1 "the complex CUBIC function needs to be calculated").
const (
	bbrAckCost   = 1 * netsim.Microsecond
	cubicAckCost = 7 * netsim.Microsecond
	dctcpAckCost = 1 * netsim.Microsecond
)

// ackCosted charges a fixed kernel cost per ACK around an inner controller.
type ackCosted struct {
	tcp.CongestionControl
	cpu  *ksim.CPU
	cost netsim.Time
}

func (a *ackCosted) OnAck(i tcp.AckInfo) {
	if a.cpu != nil {
		a.cpu.Charge(ksim.Kernel, a.cost)
	}
	a.CongestionControl.OnAck(i)
}

// Pretrained policy networks (deterministic). Pretraining runs once; every
// caller gets private clones because nn.Network.Forward mutates per-layer
// activation caches — sharing one instance across the parallel harness's
// concurrently running experiments would be a data race. The clones carry
// identical weights, so results are unchanged versus the shared originals.
var (
	pretrainOnce sync.Once
	auroraNet    *nn.Network
	moccNet      *nn.Network
)

func pretrainedNets() (*nn.Network, *nn.Network) {
	pretrainOnce.Do(func() {
		auroraNet = cc.NewAuroraNet(1)
		cc.Pretrain(auroraNet, 400, 2)
		moccNet = cc.NewMOCCNet(3)
		cc.Pretrain(moccNet, 400, 4)
	})
	return auroraNet.Clone(), moccNet.Clone()
}

// buildLFCore installs a quantized snapshot of net as a LiteFlow core module
// on the given CPU.
func buildLFCore(eng *netsim.Engine, cpu *ksim.CPU, net *nn.Network, name string) *core.Core {
	cfg := core.DefaultConfig()
	cfg.FlowCacheTimeout = 0 // long-lived flows; sweeper noise unwanted
	c := core.New(eng, cpu, ksim.DefaultCosts(), cfg)
	mod, err := codegen.Build(quant.Quantize(net, cfg.Quant), name)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	if _, err := c.RegisterModel(mod); err != nil {
		panic("experiments: " + err.Error())
	}
	return c
}

// ccRun configures one dumbbell run.
type ccRun struct {
	scheme      scheme
	flows       int
	congested   bool // 1 Gbps bottleneck + 0.1 Gbps UDP vs 40 Gbps free path
	warmup      netsim.Time
	dur         netsim.Time
	sampleQueue bool
	// domains selects the engine: 0 builds the classic serial engine, ≥ 1
	// builds a partitioned conservative-lookahead engine executing on that
	// many worker goroutines (Config.Domains).
	domains int
}

// ccOut carries everything the CC figures read off a run.
type ccOut struct {
	perFlowGbps []float64
	aggGbps     float64
	// windows holds 0.1 s goodput samples of flow 0 (Gbps) — Figure 1a.
	windows *stats.Dist
	// queue holds (ms, bytes) bottleneck samples — Figure 1b.
	queue *stats.TimeSeries
	// report is the sender-host mpstat snapshot over the measured period.
	report ksim.Report
	// rateSeries is flow 0's goodput per 100 ms bin (Gbps) — Figure 2/12.
	rateSeries []float64
}

// runCC executes one scheme on the §2.2 testbed analog: one sender host and
// one receiver host (both 4-core), N flows between them, plus background UDP
// when congested.
//
// With r.domains ≥ 1 the dumbbell runs on a partitioned engine: each host and
// switch is its own partition (BuildDumbbell), the congestion controllers and
// the LiteFlow core live in the sender's partition, the goodput window tick
// in the receiver's, and the queue sampler in the bottleneck's. In classic
// mode (domains == 0) every partition view below aliases the one engine, so
// the serial schedule — and the golden outputs — are untouched.
func runCC(r ccRun) ccOut {
	var eng *netsim.Engine
	if r.domains >= 1 {
		eng = netsim.NewParallelEngine(r.domains)
	} else {
		eng = netsim.NewEngine()
	}
	opts := topo.TestbedOpts(1)
	if !r.congested {
		opts.BottleneckBps = 40e9
		opts.BufferBytes = 4 << 20
	}
	d := topo.NewDumbbell(eng, opts)
	costs := ksim.DefaultCosts()
	d.AttachCPUs(4, costs)
	sender, receiver := d.Senders[0], d.Receivers[0]
	cpu := sender.CPU

	if r.congested {
		// Bursty background congestion averaging the paper's 0.1 Gbps:
		// constant-rate backgrounds would let even 100 ms-stale control
		// settle into a fixed point, hiding the responsiveness penalty.
		u := tcp.NewBurstyUDP(tcp.NewUDPSource(d.UDPHost, 9999, receiver.ID, 100e6),
			20e6, 180e6, 200*netsim.Millisecond)
		u.Start()
		defer u.Stop()
	}

	aur, mocc := pretrainedNets()

	// Shared LiteFlow core for the LF deployments (one per host, §4.2).
	var lfCore *core.Core
	switch r.scheme.dep {
	case depLFAurora, depLFDummy:
		lfCore = buildLFCore(sender.Eng, cpu, aur, "aurora")
	case depLFMOCC:
		lfCore = buildLFCore(sender.Eng, cpu, mocc, "mocc")
	}

	var ctrls []*cc.MIController
	makeCtrl := func(flow netsim.FlowID) tcp.CongestionControl {
		const initRate = 500e6
		switch r.scheme.dep {
		case depBBR:
			return &ackCosted{CongestionControl: cc.NewBBR(), cpu: cpu, cost: bbrAckCost}
		case depCUBIC:
			return &ackCosted{CongestionControl: cc.NewCubic(), cpu: cpu, cost: cubicAckCost}
		case depLFAurora, depLFMOCC:
			m := cc.NewMIController(sender.Eng, core.NewFlowBackend(lfCore, flow), initRate)
			ctrls = append(ctrls, m)
			return m
		case depLFDummy:
			// Same snapshot plumbing, but the generated code was edited to
			// always emit full rate (paper §5.1): model as a constant +1
			// action at kernel inference cost. "Line rate" in the scaled
			// testbed is the CPU-bound ~1.6 Gbps the paper's 100 Gbps NICs
			// correspond to (DESIGN.md §1); N flows share the NIC's pacing.
			prog := lfCore.Active().Program()
			inferCost := ksim.InferCost(costs.KernelInferPerMAC, prog.MACs())
			b := &cc.DirectBackend{Policy: cc.PolicyFunc(func([]float64) float64 { return 1 }),
				CPU: cpu, Cost: inferCost, Cat: ksim.Kernel}
			m := cc.NewMIController(sender.Eng, b, initRate)
			m.MaxRate = 1_600_000_000 / int64(r.flows)
			ctrls = append(ctrls, m)
			return m
		case depCCPAurora, depCCPMOCC:
			policy := cc.NewNNPolicy(aur)
			macs := aur.MACs()
			if r.scheme.dep == depCCPMOCC {
				policy = cc.NewNNPolicy(mocc)
				macs = mocc.MACs()
			}
			b := &cc.CCPBackend{Eng: sender.Eng, CPU: cpu, Costs: costs,
				Policy: policy, Interval: r.scheme.interval, UserMACs: macs}
			m := cc.NewMIController(sender.Eng, b, initRate)
			ctrls = append(ctrls, m)
			return m
		}
		panic("experiments: unknown deployment")
	}

	perFlow := make([]int64, r.flows)
	win := stats.NewDist(256)
	rateTS := stats.NewTimeSeries(100 * netsim.Millisecond)
	var lastWindowBytes int64
	measuring := false

	for i := 0; i < r.flows; i++ {
		i := i
		flow := netsim.FlowID(i + 1)
		s := tcp.NewSender(sender, flow, receiver.ID, 0, makeCtrl(flow))
		rcv := tcp.NewReceiver(receiver, flow, sender.ID)
		rcv.OnDeliver = func(n int, now netsim.Time) {
			if !measuring {
				return
			}
			perFlow[i] += int64(n)
			if i == 0 {
				rateTS.Add(now-r.warmup, float64(n))
			}
		}
		s.Start()
	}

	// Flow-0 goodput windows every 100 ms (the paper measures every 0.1 s).
	// The tick runs in the receiver's partition: perFlow is written by the
	// receiver's OnDeliver, so sampling it anywhere else would race under
	// windowed execution.
	var windowTick func()
	windowTick = func() {
		receiver.Eng.After(100*netsim.Millisecond, func() {
			if measuring {
				delta := perFlow[0] - lastWindowBytes
				lastWindowBytes = perFlow[0]
				win.Add(float64(delta*8) / 0.1 / 1e9) // Gbps
			}
			windowTick()
		})
	}
	windowTick()

	var queueTS *stats.TimeSeries
	if r.sampleQueue {
		queueTS = stats.NewTimeSeries(10 * netsim.Millisecond)
		// The bottleneck queue belongs to the left switch's partition.
		qEng := d.Bottleneck.Engine()
		var qTick func()
		qTick = func() {
			qEng.After(10*netsim.Millisecond, func() {
				if measuring {
					queueTS.Add(qEng.Now()-r.warmup, float64(d.QueueBytes()))
				}
				qTick()
			})
		}
		qTick()
	}

	eng.RunUntil(r.warmup)
	measuring = true
	cpu.ResetAccounting()
	receiver.CPU.ResetAccounting()
	eng.RunUntil(r.warmup + r.dur)
	measuring = false
	for _, m := range ctrls {
		m.Stop()
	}
	if lfCore != nil {
		lfCore.StopSweeper()
	}

	out := ccOut{windows: win, queue: queueTS, report: cpu.Report(), rateSeries: rateTS.RatePerSecond()}
	secs := float64(r.dur) / 1e9
	for _, b := range perFlow {
		g := float64(b*8) / secs / 1e9
		out.perFlowGbps = append(out.perFlowGbps, g)
		out.aggGbps += g
	}
	for i := range out.rateSeries {
		out.rateSeries[i] = out.rateSeries[i] * 8 / 1e9 // bytes/s → Gbps
	}
	return out
}

// ccSchemes builds the named scheme list used across figures.
func ccpScheme(dep deployment, label string, interval netsim.Time) scheme {
	suffix := "ACK"
	if interval > 0 {
		suffix = fmt.Sprintf("%dms", interval/netsim.Millisecond)
	}
	return scheme{name: label + "-" + suffix, dep: dep, interval: interval}
}
