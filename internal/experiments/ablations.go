package experiments

import (
	"fmt"

	"github.com/liteflow-sim/liteflow/internal/cc"
	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/quant"
	"github.com/liteflow-sim/liteflow/internal/tcp"
	"github.com/liteflow-sim/liteflow/internal/topo"
)

// AblTaylor reproduces the paper's §3.1 design argument for lookup tables
// over Taylor-series activation approximation: a polynomial is accurate only
// near its expansion point and costs more multiplications per evaluation as
// its degree grows, while the LUT is uniformly accurate at constant cost.
func AblTaylor(cfg Config) Result {
	res := Result{ID: "abl-taylor", Title: "LUT vs Taylor-series activation approximation (§3.1)",
		XLabel: "Taylor degree", YLabel: "max abs error over [-4,4] / muls"}
	const limit, samples = 4.0, 2001

	for _, act := range []nn.Activation{nn.Tanh, nn.Sigmoid} {
		errS := Series{Name: act.String() + "-taylor-maxerr"}
		mulS := Series{Name: act.String() + "-taylor-muls"}
		for _, deg := range []int{3, 5, 7, 9, 11} {
			coeffs := quant.TaylorCoeffs(act, deg)
			var muls int
			maxErr, _ := quant.ApproxError(act, func(x float64) float64 {
				y, m := quant.TaylorEval(coeffs, x)
				muls = m
				return y
			}, limit, samples)
			errS.X = append(errS.X, float64(deg))
			errS.Y = append(errS.Y, maxErr)
			mulS.X = append(mulS.X, float64(deg))
			mulS.Y = append(mulS.Y, float64(muls))
		}
		res.Series = append(res.Series, errS, mulS)

		// The LUT the snapshots actually use: constant cost (one divide,
		// one interpolation) and uniform accuracy.
		lut := quant.LUTApprox(act, 4096, 8, 1<<16)
		lutMax, lutMean := quant.ApproxError(act, lut, limit, samples)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s LUT(4096 entries): max err %.2e, mean err %.2e, constant cost; degree-9 Taylor max err %.2e",
			act, lutMax, lutMean, errS.Y[3]))
	}
	return res
}

// AblUpdate reproduces the §3.4 design argument for the active-standby
// switch: a naive blocking install holds the router lock for the whole
// parameter transfer, stalling every fast-path decision; the active-standby
// switch stalls nothing. The experiment installs a snapshot mid-flow with
// both mechanisms and reports the worst decision outage and the goodput
// around the install.
func AblUpdate(cfg Config) Result {
	res := Result{ID: "abl-update", Title: "Snapshot update: active-standby vs blocking lock (§3.4)",
		XLabel: "mechanism (0=standby 1=blocking)", YLabel: "worst decision gap ms / goodput Gbps"}
	// The blocking install holds the lock while parameters transfer and the
	// module initializes — tens of milliseconds at testbed scale.
	const blockTime = 150 * netsim.Millisecond

	run := func(blocking bool) (worstGapMs, goodGbps float64, blocked int64) {
		eng := netsim.NewEngine()
		opts := topo.TestbedOpts(1)
		d := topo.NewDumbbell(eng, opts)
		costs := ksim.DefaultCosts()
		d.AttachCPUs(4, costs)
		sender, receiver := d.Senders[0], d.Receivers[0]
		u := tcp.NewBurstyUDP(tcp.NewUDPSource(d.UDPHost, 99, receiver.ID, 100e6),
			20e6, 180e6, 200*netsim.Millisecond)
		u.Start()
		defer u.Stop()

		aur, _ := pretrainedNets()
		lf := buildLFCore(eng, sender.CPU, aur, "m0")
		lf.SetFlowCache(false)

		ctrl := cc.NewMIController(eng, core.NewFlowBackend(lf, 1), 500e6)
		var lastDecision netsim.Time
		var worstGap netsim.Time
		ctrl.OnState = func(state []float64, a float64, mi cc.MISummary) {
			now := eng.Now()
			if lastDecision > 0 && now-lastDecision > worstGap {
				worstGap = now - lastDecision
			}
			lastDecision = now
		}
		s := tcp.NewSender(sender, 1, receiver.ID, 0, ctrl)
		rcv := tcp.NewReceiver(receiver, 1, sender.ID)
		var bytes int64
		measuring := false
		rcv.OnDeliver = func(n int, now netsim.Time) {
			if measuring {
				bytes += int64(n)
			}
		}
		s.Start()

		warmup := cfg.dur(3 * netsim.Second)
		installAt := warmup + cfg.dur(netsim.Second)
		dur := cfg.dur(4 * netsim.Second)
		eng.At(installAt, func() {
			mod, err := codegen.Build(quant.Quantize(aur, core.DefaultConfig().Quant), "m1")
			if err != nil {
				panic(err)
			}
			if blocking {
				if err := lf.InstallBlocking(mod, blockTime); err != nil {
					panic(err)
				}
				return
			}
			// Active-standby: register (standby), then switch roles.
			if _, err := lf.RegisterModel(mod); err != nil {
				panic(err)
			}
			if err := lf.Activate(); err != nil {
				panic(err)
			}
		})

		eng.RunUntil(warmup)
		measuring = true
		eng.RunUntil(warmup + dur)
		ctrl.Stop()
		lf.StopSweeper()
		return float64(worstGap) / 1e6, float64(bytes*8) / (float64(dur) / 1e9) / 1e9,
			lf.Stats().BlockedQueries
	}

	gaps := Series{Name: "worst-decision-gap-ms"}
	good := Series{Name: "goodput-Gbps"}
	for i, blocking := range []bool{false, true} {
		gap, g, blocked := run(blocking)
		gaps.X = append(gaps.X, float64(i))
		gaps.Y = append(gaps.Y, gap)
		good.X = append(good.X, float64(i))
		good.Y = append(good.Y, g)
		name := "active-standby"
		if blocking {
			name = "blocking-lock"
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: worst decision gap %.1f ms, goodput %.3f Gbps, %d stalled queries",
			name, gap, g, blocked))
	}
	res.Series = append(res.Series, gaps, good)
	return res
}
