// Package experiments reproduces every table and figure of the LiteFlow
// paper's evaluation (and the motivation-section experiments) on the
// simulated substrate. Each experiment is a pure function from a Config to a
// Result; cmd/lfbench prints them and bench_test.go wraps each in a
// testing.B benchmark. See DESIGN.md §3 for the experiment index.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/obs"
)

// Config scales experiments between CI-fast and paper-faithful runs.
type Config struct {
	// Scale multiplies run durations and flow counts. 1.0 is the
	// paper-shaped run used for EXPERIMENTS.md; tests use ~0.1–0.3.
	Scale float64
	// Seed drives every random source.
	Seed int64
	// Obs, when non-zero, exports metrics and trace events from the
	// simulated components (threaded through core, netlink, topo, ksim).
	Obs obs.Scope
	// CacheShards overrides the core flow-cache shard count for experiments
	// that exercise the cache (0 = the core default). Set by lfbench
	// -cache-shards.
	CacheShards int
	// Flight, when non-nil, receives virtual-time registry samples from
	// experiments that drive a flight recorder (the fleet scenarios). RunSuite
	// gives each job a private recorder and folds them into Flight in job
	// order, so recordings are byte-identical serial vs parallel.
	Flight *obs.FlightRecorder
	// FlightEvery is the flight-recorder sampling tick (0 = per-experiment
	// default).
	FlightEvery netsim.Time
	// Domains, when ≥ 1, runs the experiments that support partitioned
	// execution (see SupportsDomains) on a conservative-lookahead parallel
	// engine with that many worker goroutines. 0 keeps the classic serial
	// engine. Partitioned output is byte-identical for every Domains value;
	// see DESIGN.md §4h. Set by -sim-domains on both CLIs.
	Domains int
}

// SupportsDomains reports whether the experiment with the given ID honors
// Config.Domains. Today that is the dumbbell family — the experiments whose
// event rate dominates the benchmark suite — plus the actor scenario corpus,
// which partitions its spine-leaf fabric per host; the remaining experiments
// build topologies (fleet provisioning, toy links) that schedule across
// entities and stay on the classic engine regardless of Domains.
func SupportsDomains(id string) bool {
	switch id {
	case "fig1a", "fig1b", "fig3", "fig4", "fig11", "fig13", "dummy", "scenarios":
		return true
	}
	return false
}

// DefaultConfig returns the full-scale configuration.
func DefaultConfig() Config { return Config{Scale: 1, Seed: 1} }

// FastConfig returns a configuration suitable for unit tests.
func FastConfig() Config { return Config{Scale: 0.25, Seed: 1} }

// dur scales a base duration by the config.
func (c Config) dur(base netsim.Time) netsim.Time {
	d := netsim.Time(float64(base) * c.Scale)
	if d < netsim.Millisecond {
		d = netsim.Millisecond
	}
	return d
}

// count scales an integer quantity, with a floor of 1.
func (c Config) count(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 1 {
		n = 1
	}
	return n
}

// Series is one named line/bar of a figure.
type Series struct {
	Name string
	// X and Y are parallel; for bar rows X may be indices.
	X []float64
	Y []float64
	// Err holds optional per-point error bars (std deviations).
	Err []float64
}

// Result is one reproduced table or figure.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// String renders the result as an aligned text table, one row per X value.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Series) == 0 {
		return b.String()
	}
	// Collect the union of X values in order of first appearance.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range r.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	fmt.Fprintf(&b, "%-14s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %16s", s.Name)
	}
	fmt.Fprintf(&b, "   (%s)\n", r.YLabel)
	for _, x := range xs {
		fmt.Fprintf(&b, "%-14.4g", x)
		for _, s := range r.Series {
			y, ok := lookup(s, x)
			if ok {
				fmt.Fprintf(&b, " %16.4g", y)
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func lookup(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Get returns the series with the given name, or nil.
func (r Result) Get(name string) *Series {
	for i := range r.Series {
		if r.Series[i].Name == name {
			return &r.Series[i]
		}
	}
	return nil
}

// Runner is a registered experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) Result
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"fig1a", "Goodput CDF vs CCP communication interval", Fig01a},
		{"fig1b", "Bottleneck queue length vs CCP interval", Fig01b},
		{"fig2", "Toy link convergence, 10ms vs 2.5ms interval", Fig02},
		{"fig3", "Normalized aggregate throughput vs flow count (CCP overhead)", Fig03},
		{"fig4", "Softirq CPU time vs CCP interval (mpstat)", Fig04},
		{"fig5", "Static snapshot vs traffic dynamics", Fig05},
		{"fig7", "Quantization accuracy loss vs scaling factor", Fig07},
		{"fig8", "Online adaptation convergence vs snapshot goodput", Fig08},
		{"fig11", "Congestion control goodput across deployments", Fig11},
		{"fig12", "Online adaptation under traffic dynamics", Fig12},
		{"fig13", "Deployment overhead: normalized aggregate throughput", Fig13},
		{"fig14", "Batch data delivery interval micro-benchmark", Fig14},
		{"dummy", "LF-Dummy-NN at high throughput & low latency (§5.1)", FigDummy},
		{"fig15", "Flow-size prediction latency CDF", Fig15},
		{"fig16", "Flow scheduling FCT by flow class", Fig16},
		{"fig17", "Load balancing FCT by flow class", Fig17},
		{"abl-taylor", "Ablation: LUT vs Taylor activation approximation (§3.1)", AblTaylor},
		{"abl-update", "Ablation: active-standby switch vs blocking install (§3.4)", AblUpdate},
		{"resilience", "Goodput under injected faults (graceful degradation)", FigResilience},
		{"flow-churn", "Flow-cache churn at scale: sharded cache + incremental sweep", FigFlowChurn},
		{"fleet-scale", "Fleet snapshot distribution: goodput + staleness vs member count", FigFleetScale},
		{"fleet-canary", "Canary gate: flight-recorder delta flags a degraded snapshot install", FigFleetCanary},
		{"scenarios", "Actor scenario corpus: per-scenario goodput, tail latency, responses", FigScenarios},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
