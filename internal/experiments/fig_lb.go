package experiments

import (
	"fmt"
	"math/rand"

	"github.com/liteflow-sim/liteflow/internal/cc"
	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/lb"
	"github.com/liteflow-sim/liteflow/internal/netlink"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/quant"
	"github.com/liteflow-sim/liteflow/internal/tcp"
	"github.com/liteflow-sim/liteflow/internal/topo"
	"github.com/liteflow-sim/liteflow/internal/workload"
)

// mlpUser implements the LiteFlow userspace interfaces for the LB MLP: the
// adapter fits one-hot path labels produced by the congestion oracle on the
// features observed in each batch. Aux layout: one-hot best path.
type mlpUser struct {
	net      *nn.Network
	opt      nn.Optimizer
	lastLoss float64
}

func (u *mlpUser) Freeze() *nn.Network          { return u.net }
func (u *mlpUser) Stability() float64           { return u.lastLoss }
func (u *mlpUser) Infer(in []float64) []float64 { return u.net.Infer(in) }
func (u *mlpUser) Adapt(batch []core.Sample) {
	x := make([][]float64, 0, len(batch))
	y := make([][]float64, 0, len(batch))
	for _, s := range batch {
		if len(s.Aux) != u.net.OutputSize() {
			continue
		}
		x = append(x, s.Input)
		y = append(y, s.Aux)
	}
	if len(x) == 0 {
		return
	}
	for e := 0; e < 30; e++ {
		u.lastLoss = nn.TrainBatch(u.net, u.opt, x, y, 5)
	}
}

// dctcpFeedback wraps DCTCP and accumulates the flow's ECN echo fraction and
// average RTT — the congestion signals the path selection module collects.
type dctcpFeedback struct {
	*cc.DCTCP
	acks, eces int
	rttSum     netsim.Time
}

func (d *dctcpFeedback) OnAck(a tcp.AckInfo) {
	d.acks++
	if a.ECE {
		d.eces++
	}
	d.rttSum += a.RTT
	d.DCTCP.OnAck(a)
}

func (d *dctcpFeedback) stats() (ecnFrac float64, avgRTT netsim.Time) {
	if d.acks == 0 {
		return 0, 0
	}
	return float64(d.eces) / float64(d.acks), d.rttSum / netsim.Time(d.acks)
}

// Fig17 reproduces Figure 17: FCT by flow class on the 2×2 spine–leaf fabric
// (8 hosts) under LF-MLP, char-MLP, ECMP, and LF-MLP-N-O-A. Mid-run the
// fabric's ECN marking is disabled (regime shift): the frozen model goes
// blind, the adapted LF-MLP relearns to read RTT, and char-MLP additionally
// pays continuous cross-space monitoring overhead.
func Fig17(cfg Config) Result {
	res := Result{ID: "fig17", Title: "Load balancing FCT by class (µs)",
		XLabel: "class (0=short 1=mid 2=long)", YLabel: "avg FCT µs"}
	numFlows := cfg.count(3000)
	for _, name := range []string{"LF-MLP", "char-MLP", "ECMP", "LF-MLP-N-O-A"} {
		b := runFig17Scheme(cfg, name, numFlows)
		s := Series{Name: name}
		for c := 0; c < 3; c++ {
			s.X = append(s.X, float64(c))
			s.Y = append(s.Y, b.dists[c].Mean())
		}
		res.Series = append(res.Series, s)
		res.Notes = append(res.Notes, fmt.Sprintf("%s: mean short %.0fµs mid %.0fµs long %.0fµs | median %.0f/%.0f/%.0fµs (n=%d/%d/%d)",
			name, b.dists[0].Mean(), b.dists[1].Mean(), b.dists[2].Mean(),
			b.dists[0].Median(), b.dists[1].Median(), b.dists[2].Median(),
			b.dists[0].N(), b.dists[1].N(), b.dists[2].N()))
	}
	return res
}

func runFig17Scheme(cfg Config, name string, numFlows int) *fctBuckets {
	eng := netsim.NewEngine()
	opts := topo.DefaultSpineLeafOpts(4) // 8 hosts
	// A congestible fabric with asymmetric path quality: spine 0's links
	// run degraded at 3 Gbps (a part-failed LAG, a common data-center
	// pathology), spine 1 at the full 10 Gbps. Intelligent path selection
	// matters exactly when paths are unequal; under symmetric paths ECMP
	// is already near-optimal and the comparison is vacuous.
	opts.FabricLinkBps = 10e9
	sl := topo.NewSpineLeaf(eng, opts)
	for _, leaf := range sl.Leaves {
		leaf.Port(topo.SpineIDBase).SetRate(3e9)
	}
	for l := range sl.Leaves {
		sl.Spines[0].Port(topo.LeafIDBase + l).SetRate(3e9)
	}
	costs := ksim.DefaultCosts()
	sl.AttachCPUs(8, costs)
	paths := len(sl.Spines)

	r := rand.New(rand.NewSource(cfg.Seed + 30))
	flows := workload.Generate(r, numFlows, len(sl.Hosts), 0.15, opts.HostLinkBps, workload.WebSearch())
	shiftAt := flows[numFlows/2].At
	batchT := flows[len(flows)-1].At / 20
	if batchT < 5*netsim.Millisecond {
		batchT = 5 * netsim.Millisecond
	}
	if batchT > 100*netsim.Millisecond {
		batchT = 100 * netsim.Millisecond
	}

	// The userspace model, trained in the ECN-visible regime.
	net := lb.NewMLP(paths, cfg.Seed+31)
	lb.Train(net, paths, 400, 1e-2, 1.0, cfg.Seed+32)
	user := &mlpUser{net: net, opt: nn.NewAdam(1e-2), lastLoss: 1}

	monitor := lb.NewPathMonitor(paths)

	var lf *core.Core
	var ch *netlink.Channel
	var kernelSel func(feats []float64, reply func(int))
	var userSel *lb.UserSelector
	ecmp := &lb.ECMPSelector{Paths: paths}
	var charBatch []lb.Sample // char-MLP's userspace adaptation buffer

	switch name {
	case "LF-MLP", "LF-MLP-N-O-A":
		coreCfg := core.DefaultConfig()
		coreCfg.OutMin, coreCfg.OutMax = 0, 1
		coreCfg.StabilityWindow = 2
		coreCfg.StabilityTolerance = 1.0
		lf = core.New(eng, nil, costs, coreCfg)
		// Per-flow decisions are one-shot: the flow cache adds nothing.
		lf.SetFlowCache(false)
		mod, err := codegen.Build(quant.Quantize(net.Clone(), coreCfg.Quant), "lbmlp0")
		if err != nil {
			panic(err)
		}
		if _, err := lf.RegisterModel(mod); err != nil {
			panic(err)
		}
		in := make([]int64, lb.InputDim(paths))
		out := make([]int64, paths)
		jit := rand.New(rand.NewSource(cfg.Seed + 33))
		kernelSel = func(feats []float64, reply func(int)) {
			prog := lf.Active().Program()
			prog.QuantizeInput(feats, in)
			if err := lf.QueryModel(0, in, out); err != nil {
				reply(0)
				return
			}
			best := 0
			for i := range out {
				if out[i] > out[best] {
					best = i
				}
			}
			cost := ksim.InferCost(costs.KernelInferPerMAC, prog.MACs())
			eng.After(cost+netsim.Time(jit.Int63n(int64(cost)+1)), func() { reply(best) })
		}
		if name == "LF-MLP" {
			ch = netlink.New(eng, sl.Hosts[0].CPU, costs, nil)
			_ = ch
			svc := core.NewService(lf, ch, user, user, user)
			svc.Start(batchT)
		}
	case "char-MLP":
		// Selector latency only; the per-host cost is the continuous
		// kernel→user path-state sync every host pays (the overhead that
		// drops char-MLP below plain ECMP in the paper).
		userSel = lb.NewUserSelector(eng, nil, costs, net)
		for _, h := range sl.Hosts {
			h := h
			var monitorTick func()
			monitorTick = func() {
				eng.After(200*netsim.Microsecond, func() {
					h.CPU.Charge(ksim.SoftIRQ, costs.CrossSpace)
					h.CPU.Charge(ksim.Kernel, costs.CharDevPerMsg)
					monitorTick()
				})
			}
			monitorTick()
		}
		// char-MLP adapts its userspace model directly.
		opt := nn.NewAdam(1e-2)
		var retrain func()
		retrain = func() {
			eng.After(batchT, func() {
				if len(charBatch) > 0 {
					x := make([][]float64, len(charBatch))
					y := make([][]float64, len(charBatch))
					for i, s := range charBatch {
						x[i] = s.Features
						t := make([]float64, paths)
						t[s.Best] = 1
						y[i] = t
					}
					for e := 0; e < 30; e++ {
						nn.TrainBatch(net, opt, x, y, 5)
					}
					charBatch = charBatch[:0]
				}
				retrain()
			})
		}
		retrain()
	}

	// Regime shift: disable ECN marking fabric-wide. Congestion then shows
	// up as RTT inflation instead of marks.
	disable := func(l *netsim.Link) {
		if l == nil {
			return
		}
		if q, ok := l.Queue().(*netsim.DropTail); ok {
			q.MarkBytes = 0
		}
	}
	eng.At(shiftAt, func() {
		for _, leaf := range sl.Leaves {
			for hid := range sl.Hosts {
				disable(leaf.Port(hid))
			}
			for s := range sl.Spines {
				disable(leaf.Port(topo.SpineIDBase + s))
			}
		}
		for _, spine := range sl.Spines {
			for l := range sl.Leaves {
				disable(spine.Port(topo.LeafIDBase + l))
			}
		}
		for _, h := range sl.Hosts {
			disable(h.Egress())
		}
	})

	buckets := newFCTBuckets()
	for idx, fs := range flows {
		fs := fs
		flowID := netsim.FlowID(idx + 1)
		eng.At(fs.At, func() {
			src := sl.Hosts[fs.Src]
			dst := sl.Hosts[fs.Dst]
			sizeNorm := float64(fs.Size) / 1e7
			if sizeNorm > 1 {
				sizeNorm = 1
			}
			feats := monitor.Features(sizeNorm)
			ctrl := &dctcpFeedback{DCTCP: cc.NewDCTCP()}
			snd := tcp.NewSender(src, flowID, dst.ID, fs.Size, ctrl)
			rcv := tcp.NewReceiver(dst, flowID, src.ID)
			_ = rcv

			start := func(path int) {
				snd.Path = sl.PathVia(src.ID, dst.ID, path)
				snd.OnComplete = func(fct netsim.Time) {
					buckets.add(fs.Size, fct)
					ecnFrac, avgRTT := ctrl.stats()
					monitor.Observe(path, ecnFrac, avgRTT)
					// Feed the adaptation loop with oracle-labeled data.
					best := lb.BestPath(monitor.Features(sizeNorm), paths)
					switch name {
					case "LF-MLP":
						oneHot := make([]float64, paths)
						oneHot[best] = 1
						ch.Push(core.EncodeSample(core.Sample{Input: feats, Aux: oneHot, At: eng.Now()}))
					case "char-MLP":
						charBatch = append(charBatch, lb.Sample{Features: feats, Best: best})
					}
				}
				snd.Start()
			}

			switch name {
			case "LF-MLP", "LF-MLP-N-O-A":
				kernelSel(feats, start)
			case "char-MLP":
				userSel.Select(feats, start)
			default:
				ecmp.Select(feats, start)
			}
		})
	}

	// Run until the workload drains (or a generous cap).
	done := func() int { return buckets.dists[0].N() + buckets.dists[1].N() + buckets.dists[2].N() }
	deadline := flows[len(flows)-1].At + 60*netsim.Second
	for eng.Now() < deadline && done() < numFlows {
		eng.RunUntil(eng.Now() + netsim.Second)
	}
	if ch != nil {
		ch.StopBatching()
	}
	if lf != nil {
		lf.StopSweeper()
	}
	return buckets
}
