package experiments

import (
	"strings"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/obs"
)

// TestFleetCanaryFlagsRegression: installing the deliberately bloated
// snapshot must show up in the flight-recorder delta as a goodput collapse
// and a query-latency p99 jump between the pre- and post-install windows.
func TestFleetCanaryFlagsRegression(t *testing.T) {
	fr := obs.NewFlightRecorder(0)
	cfg := Config{Scale: 0.05, Seed: 1, Flight: fr}
	res := FigFleetCanary(cfg)

	good := res.Get("goodput-qps")
	p99 := res.Get("query-p99-ns")
	if good == nil || p99 == nil {
		t.Fatalf("missing series: %+v", res.Series)
	}
	qb, qa := good.Y[0], good.Y[1]
	pb, pa := p99.Y[0], p99.Y[1]
	if qb <= 0 || pb <= 0 {
		t.Fatalf("empty pre-install window: goodput=%g p99=%g\n%s", qb, pb, res)
	}
	if qa >= 0.9*qb {
		t.Errorf("goodput did not regress: before %g, after %g", qb, qa)
	}
	if pa <= 1.5*pb {
		t.Errorf("query p99 did not regress: before %g, after %g", pb, pa)
	}
	var flagged bool
	for _, n := range res.Notes {
		if strings.Contains(n, "REGRESSION") {
			flagged = true
		}
	}
	if !flagged {
		t.Errorf("canary verdict missing from notes: %v", res.Notes)
	}
	if fr.Ticks() == 0 {
		t.Error("caller-supplied flight recorder absorbed no samples")
	}
}
