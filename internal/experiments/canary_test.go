package experiments

import (
	"strings"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/obs"
)

// TestFleetCanaryUngatedFlagsRegression: without the gate, installing the
// deliberately bloated snapshot must show up in the flight-recorder delta as
// a goodput collapse and a query-latency p99 jump between the pre- and
// post-install windows — the fleet dutifully shipped the bad push everywhere.
func TestFleetCanaryUngatedFlagsRegression(t *testing.T) {
	res := RunCanaryScenario(CanaryScenarioOpts{
		Members: 4, Seed: 1, Dur: netsim.Time(0.05 * float64(2*netsim.Second)),
	})
	if res.QBefore <= 0 || res.PBefore <= 0 {
		t.Fatalf("empty pre-install window: goodput=%g p99=%g", res.QBefore, res.PBefore)
	}
	if res.QAfter >= 0.9*res.QBefore {
		t.Errorf("goodput did not regress: before %g, after %g", res.QBefore, res.QAfter)
	}
	if res.PAfter <= 1.5*res.PBefore {
		t.Errorf("query p99 did not regress: before %g, after %g", res.PBefore, res.PAfter)
	}
	if len(res.Blacklisted) != 0 || res.Stats.Rollbacks != 0 {
		t.Errorf("ungated run should not gate anything: blacklisted %v, rollbacks %d",
			res.Blacklisted, res.Stats.Rollbacks)
	}
}

// TestFleetCanaryChaosAcceptance is the chaos acceptance criterion for the
// staged rollout plane: with the gate on, the deliberately degraded snapshot
// must be caught at the canary stage — the bad epoch activates on canary
// members only, auto-rollback restores them to the prior released version,
// and no non-canary member ever reports a blacklisted epoch in
// MemberEpochs() at any sampled instant.
func TestFleetCanaryChaosAcceptance(t *testing.T) {
	res := RunCanaryScenario(CanaryScenarioOpts{
		Members: 4, CanaryCount: 1, Gate: true,
		Seed: 1, Dur: netsim.Time(0.05 * float64(2*netsim.Second)),
	})
	st := res.Stats

	// The gate must actually have fired: at least one bad epoch blacklisted
	// and at least one canary member rolled back.
	if st.CanaryFails < 1 {
		t.Fatalf("canary gate never failed a verdict: %+v", st)
	}
	if st.Rollbacks < 1 {
		t.Fatalf("no canary member was rolled back: %+v", st)
	}
	if len(res.Blacklisted) < 1 {
		t.Fatalf("no epoch blacklisted: %+v", st)
	}
	// Healthy drift epochs before the bad push must have passed the gate —
	// the gate blocks bad pushes, not all pushes.
	if st.CanaryPasses < 1 {
		t.Errorf("no healthy epoch ever passed the canary stage: %+v", st)
	}

	bad := make(map[int64]bool, len(res.Blacklisted))
	for _, e := range res.Blacklisted {
		bad[e] = true
	}
	canary := make(map[int]bool, len(res.Canaries))
	for _, i := range res.Canaries {
		canary[i] = true
	}

	// Non-canary members must never have been observed on a blacklisted
	// epoch; the canary cohort must have carried one (that is its job) and
	// must have been restored — every blacklisted epoch in its history is
	// followed by an older (released) epoch, never held to the end.
	sawBadOnCanary := false
	for i, hist := range res.EpochsSeen {
		for j, e := range hist {
			if !bad[e] {
				continue
			}
			if !canary[i] {
				t.Fatalf("non-canary member %d observed blacklisted epoch %d (history %v)", i, e, hist)
			}
			sawBadOnCanary = true
			if j+1 < len(hist) && hist[j+1] >= e {
				t.Errorf("canary member %d moved forward off blacklisted epoch %d: %v", i, e, hist)
			}
		}
	}
	if !sawBadOnCanary {
		t.Errorf("no canary member ever observed a blacklisted epoch: %v (blacklist %v)",
			res.EpochsSeen, res.Blacklisted)
	}
	for i, e := range res.Final {
		if bad[e] {
			if !canary[i] {
				t.Errorf("non-canary member %d finished on blacklisted epoch %d", i, e)
			} else {
				t.Errorf("canary member %d finished on blacklisted epoch %d (rollback did not land)", i, e)
			}
		}
	}

	// The gate protects fleet goodput: the post-push window must stay within
	// a sane fraction of the pre-push window, far above the ungated collapse
	// (~0.25 at these parameters).
	if r := res.GoodputRatio(); r < 0.6 {
		t.Errorf("gated fleet goodput collapsed anyway: ratio %.3f", r)
	}
}

// TestFleetCanaryFigureContrast: the experiment figure must tell the story —
// the ungated run regresses, the gated run blocks, and the gated goodput
// ratio beats the ungated one by a wide margin.
func TestFleetCanaryFigureContrast(t *testing.T) {
	fr := obs.NewFlightRecorder(0)
	res := FigFleetCanary(Config{Scale: 0.05, Seed: 1, Flight: fr})

	for _, name := range []string{"goodput-qps-ungated", "goodput-qps-gated", "query-p99-ns-ungated", "query-p99-ns-gated"} {
		if res.Get(name) == nil {
			t.Fatalf("missing series %q: %+v", name, res.Series)
		}
	}
	ug := res.Get("goodput-qps-ungated")
	g := res.Get("goodput-qps-gated")
	uRatio := ug.Y[1] / ug.Y[0]
	gRatio := g.Y[1] / g.Y[0]
	if uRatio >= 0.9 {
		t.Errorf("ungated run did not regress: ratio %.3f", uRatio)
	}
	if gRatio < uRatio+0.2 {
		t.Errorf("gate bought no goodput: gated ratio %.3f vs ungated %.3f", gRatio, uRatio)
	}
	var blocked, regressed bool
	for _, n := range res.Notes {
		if strings.Contains(n, "BLOCKED") {
			blocked = true
		}
		if strings.Contains(n, "REGRESSION: degraded snapshot reached") {
			regressed = true
		}
	}
	if !blocked || !regressed {
		t.Errorf("notes missing verdicts (blocked=%v regressed=%v): %v", blocked, regressed, res.Notes)
	}
	if fr.Ticks() == 0 {
		t.Error("caller-supplied flight recorder absorbed no samples")
	}
}
