package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/obs"
)

// TestDeterminism asserts bit-exact reproducibility: the whole stack —
// PRNGs, event ordering, training, quantization — is deterministic for a
// fixed seed (DESIGN.md §4). fig7 exercises training + quantization; fig15
// exercises the simulator's event loop and cost model.
func TestDeterminism(t *testing.T) {
	for _, id := range []string{"fig7", "fig15", "abl-taylor"} {
		r, ok := ByID(id)
		if !ok {
			t.Fatal(id)
		}
		cfg := Config{Scale: 0.2, Seed: 7}
		a := r.Run(cfg)
		b := r.Run(cfg)
		if a.String() != b.String() {
			t.Errorf("%s is not deterministic for a fixed seed", id)
		}
	}
}

// TestTelemetryDeterminism asserts that telemetry itself is reproducible:
// two same-seed adaptation runs must export byte-identical Chrome traces and
// Prometheus text. Virtual-time stamps, sorted export orders and the
// deterministic ring eviction make this possible.
func TestTelemetryDeterminism(t *testing.T) {
	export := func() (trace, prom []byte) {
		reg := obs.NewRegistry()
		tr := obs.NewTracer(1 << 14)
		cfg := Config{Scale: 0.2, Seed: 7, Obs: obs.New(reg, tr)}
		runAdaptation(cfg, adaptVariant{name: "lf", adapt: true},
			20*netsim.Millisecond, 200*netsim.Millisecond, 0, 1)
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), reg.PrometheusText()
	}
	t1, p1 := export()
	t2, p2 := export()
	if len(t1) == 0 || len(p1) == 0 {
		t.Fatal("empty telemetry export")
	}
	if !bytes.Equal(t1, t2) {
		t.Errorf("Chrome traces differ between same-seed runs (%d vs %d bytes)", len(t1), len(t2))
	}
	if !bytes.Equal(p1, p2) {
		t.Errorf("Prometheus exports differ between same-seed runs:\n--- run1\n%s\n--- run2\n%s", p1, p2)
	}
}

// TestGoldenSuiteSerialVsParallel is the determinism invariant of DESIGN.md
// §4d, enforced over EVERY registered experiment: the full suite run through
// the harness with -parallel 4 must produce byte-identical reports AND
// byte-identical telemetry exports (Prometheus text + Chrome trace) to the
// serial run. Scale 0.02 keeps the double full-suite run tractable in CI
// while still executing every experiment's complete code path.
func TestGoldenSuiteSerialVsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite golden run is slow; skipped with -short")
	}
	// The suite must include the flow-churn experiment (#20) — its sharded
	// cache and timing-wheel sweeper are exactly the structures whose
	// iteration order could silently go nondeterministic — and the
	// fleet-scale experiment (#21), whose index-ordered batch merge and
	// bounded install queue are the distribution plane's §4d obligations.
	for _, id := range []string{"flow-churn", "fleet-scale"} {
		if _, ok := ByID(id); !ok {
			t.Fatalf("%s missing from the registry; golden coverage would silently shrink", id)
		}
	}
	runSuite := func(parallel int) (report string, prom, trace []byte) {
		reg := obs.NewRegistry()
		tr := obs.NewTracer(0)
		cfg := Config{Scale: 0.02, Seed: 3, Obs: obs.New(reg, tr)}
		var b bytes.Buffer
		covered := map[string]bool{}
		for _, sr := range RunSuite(All(), cfg, SuiteOptions{Parallel: parallel}) {
			covered[sr.Result.ID] = true
			b.WriteString(sr.Result.String())
			b.WriteByte('\n')
		}
		for _, id := range []string{"flow-churn", "fleet-scale"} {
			if !covered[id] {
				t.Fatalf("suite run did not execute %s", id)
			}
		}
		var tb bytes.Buffer
		if err := tr.WriteChromeTrace(&tb); err != nil {
			t.Fatal(err)
		}
		return b.String(), reg.PrometheusText(), tb.Bytes()
	}
	serialRep, serialProm, serialTrace := runSuite(1)
	parRep, parProm, parTrace := runSuite(4)

	if len(serialRep) == 0 || len(serialProm) == 0 || len(serialTrace) == 0 {
		t.Fatal("empty suite output; golden comparison is vacuous")
	}
	if serialRep != parRep {
		t.Errorf("suite report differs between serial and -parallel 4 runs")
		diffFirstLine(t, serialRep, parRep)
	}
	if !bytes.Equal(serialProm, parProm) {
		t.Errorf("Prometheus export differs between serial and -parallel 4 runs")
		diffFirstLine(t, string(serialProm), string(parProm))
	}
	if !bytes.Equal(serialTrace, parTrace) {
		t.Errorf("Chrome trace differs between serial and -parallel 4 runs (%d vs %d bytes)",
			len(serialTrace), len(parTrace))
	}
}

// TestEngineSerialVsParallelByteIdentical is the golden invariant of the
// conservative-lookahead engine (DESIGN.md §4h): every registered experiment,
// run with -sim-domains 1, 2, 4 and 8, must produce byte-identical reports,
// byte-identical Prometheus text and a byte-identical trace JSONL stream. The
// windowed single-domain run (Domains=1) is the reference; higher domain
// counts only change which worker executes a partition, never the schedule.
// Experiments outside SupportsDomains ignore Config.Domains entirely, so for
// them the sweep degenerates to verifying the knob is inert end-to-end — they
// run at domains 1 and 8 only, which keeps the quadruple-suite run tractable
// without shrinking coverage.
func TestEngineSerialVsParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-domain full-suite golden run is slow; skipped with -short")
	}
	type export struct {
		report string
		prom   []byte
		trace  []byte
	}
	runAt := func(r Runner, domains int) export {
		reg := obs.NewRegistry()
		tr := obs.NewTracer(0)
		cfg := Config{Scale: 0.02, Seed: 3, Obs: obs.New(reg, tr), Domains: domains}
		rep := r.Run(cfg).String()
		var tb bytes.Buffer
		if err := tr.WriteJSONL(&tb); err != nil {
			t.Fatal(err)
		}
		return export{report: rep, prom: reg.PrometheusText(), trace: tb.Bytes()}
	}
	partitioned := 0
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			sweep := []int{2, 4, 8}
			if !SupportsDomains(r.ID) {
				sweep = []int{8}
			} else {
				partitioned++
			}
			base := runAt(r, 1)
			if base.report == "" {
				t.Fatal("empty report; golden comparison is vacuous")
			}
			for _, d := range sweep {
				got := runAt(r, d)
				if got.report != base.report {
					t.Errorf("report differs between domains=1 and domains=%d", d)
					diffFirstLine(t, base.report, got.report)
				}
				if !bytes.Equal(got.prom, base.prom) {
					t.Errorf("Prometheus export differs between domains=1 and domains=%d", d)
					diffFirstLine(t, string(base.prom), string(got.prom))
				}
				if !bytes.Equal(got.trace, base.trace) {
					t.Errorf("trace JSONL differs between domains=1 and domains=%d (%d vs %d bytes)",
						d, len(base.trace), len(got.trace))
				}
			}
		})
	}
	if partitioned == 0 {
		t.Error("no experiment supports domains; the sweep tested nothing")
	}
}

// diffFirstLine logs the first differing line of two texts, so a golden
// failure names the drifting experiment or metric instead of dumping both
// multi-thousand-line documents.
func diffFirstLine(t *testing.T, a, b string) {
	t.Helper()
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			t.Logf("first difference at line %d:\n  serial:   %q\n  parallel: %q", i+1, al[i], bl[i])
			return
		}
	}
	t.Logf("outputs differ in length: %d vs %d lines", len(al), len(bl))
}

// TestSeedSensitivity: different seeds must actually change stochastic
// experiments (guarding against accidentally ignoring the seed).
func TestSeedSensitivity(t *testing.T) {
	r, _ := ByID("fig7")
	a := r.Run(Config{Scale: 0.2, Seed: 1})
	b := r.Run(Config{Scale: 0.2, Seed: 2})
	if a.String() == b.String() {
		t.Error("fig7 ignores the seed")
	}
}
