package experiments

import (
	"testing"
)

// TestDeterminism asserts bit-exact reproducibility: the whole stack —
// PRNGs, event ordering, training, quantization — is deterministic for a
// fixed seed (DESIGN.md §4). fig7 exercises training + quantization; fig15
// exercises the simulator's event loop and cost model.
func TestDeterminism(t *testing.T) {
	for _, id := range []string{"fig7", "fig15", "abl-taylor"} {
		r, ok := ByID(id)
		if !ok {
			t.Fatal(id)
		}
		cfg := Config{Scale: 0.2, Seed: 7}
		a := r.Run(cfg)
		b := r.Run(cfg)
		if a.String() != b.String() {
			t.Errorf("%s is not deterministic for a fixed seed", id)
		}
	}
}

// TestSeedSensitivity: different seeds must actually change stochastic
// experiments (guarding against accidentally ignoring the seed).
func TestSeedSensitivity(t *testing.T) {
	r, _ := ByID("fig7")
	a := r.Run(Config{Scale: 0.2, Seed: 1})
	b := r.Run(Config{Scale: 0.2, Seed: 2})
	if a.String() == b.String() {
		t.Error("fig7 ignores the seed")
	}
}
