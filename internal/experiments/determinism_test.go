package experiments

import (
	"bytes"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/obs"
)

// TestDeterminism asserts bit-exact reproducibility: the whole stack —
// PRNGs, event ordering, training, quantization — is deterministic for a
// fixed seed (DESIGN.md §4). fig7 exercises training + quantization; fig15
// exercises the simulator's event loop and cost model.
func TestDeterminism(t *testing.T) {
	for _, id := range []string{"fig7", "fig15", "abl-taylor"} {
		r, ok := ByID(id)
		if !ok {
			t.Fatal(id)
		}
		cfg := Config{Scale: 0.2, Seed: 7}
		a := r.Run(cfg)
		b := r.Run(cfg)
		if a.String() != b.String() {
			t.Errorf("%s is not deterministic for a fixed seed", id)
		}
	}
}

// TestTelemetryDeterminism asserts that telemetry itself is reproducible:
// two same-seed adaptation runs must export byte-identical Chrome traces and
// Prometheus text. Virtual-time stamps, sorted export orders and the
// deterministic ring eviction make this possible.
func TestTelemetryDeterminism(t *testing.T) {
	export := func() (trace, prom []byte) {
		reg := obs.NewRegistry()
		tr := obs.NewTracer(1 << 14)
		cfg := Config{Scale: 0.2, Seed: 7, Obs: obs.New(reg, tr)}
		runAdaptation(cfg, adaptVariant{name: "lf", adapt: true},
			20*netsim.Millisecond, 200*netsim.Millisecond, 0, 1)
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), reg.PrometheusText()
	}
	t1, p1 := export()
	t2, p2 := export()
	if len(t1) == 0 || len(p1) == 0 {
		t.Fatal("empty telemetry export")
	}
	if !bytes.Equal(t1, t2) {
		t.Errorf("Chrome traces differ between same-seed runs (%d vs %d bytes)", len(t1), len(t2))
	}
	if !bytes.Equal(p1, p2) {
		t.Errorf("Prometheus exports differ between same-seed runs:\n--- run1\n%s\n--- run2\n%s", p1, p2)
	}
}

// TestSeedSensitivity: different seeds must actually change stochastic
// experiments (guarding against accidentally ignoring the seed).
func TestSeedSensitivity(t *testing.T) {
	r, _ := ByID("fig7")
	a := r.Run(Config{Scale: 0.2, Seed: 1})
	b := r.Run(Config{Scale: 0.2, Seed: 2})
	if a.String() == b.String() {
		t.Error("fig7 ignores the seed")
	}
}
