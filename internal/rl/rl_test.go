package rl

import (
	"math"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/nn"
)

// targetEnv is a trivial 1-step environment: reward = −(a − target)². The
// optimal policy outputs target everywhere; REINFORCE must find it.
type targetEnv struct {
	target float64
	steps  int
	t      int
}

func (e *targetEnv) Reset() []float64 { e.t = 0; return make([]float64, 3) }
func (e *targetEnv) Step(a float64) ([]float64, float64, bool) {
	e.t++
	d := a - e.target
	return make([]float64, 3), -d * d, e.t >= e.steps
}

func TestREINFORCEConvergesOnTargetTask(t *testing.T) {
	net := nn.New([]int{3, 8, 1}, []nn.Activation{nn.Tanh, nn.Tanh}, 1)
	r := NewREINFORCE(net, 0.01, 2)
	env := &targetEnv{target: 0.6, steps: 8}
	for ep := 0; ep < 400; ep++ {
		r.RunEpisode(env, 100)
	}
	got := r.Mean(make([]float64, 3))
	if math.Abs(got-0.6) > 0.15 {
		t.Errorf("learned mean = %.3f, want ≈ 0.6", got)
	}
	if r.Episodes != 400 {
		t.Errorf("Episodes = %d", r.Episodes)
	}
}

func TestSigmaDecays(t *testing.T) {
	net := nn.New([]int{3, 4, 1}, []nn.Activation{nn.Tanh, nn.Tanh}, 1)
	r := NewREINFORCE(net, 0.01, 1)
	start := r.Sigma
	env := &targetEnv{target: 0, steps: 2}
	for ep := 0; ep < 50; ep++ {
		r.RunEpisode(env, 10)
	}
	if r.Sigma >= start {
		t.Error("sigma must decay across episodes")
	}
	r.Sigma = r.MinSigma
	r.RunEpisode(env, 10)
	if r.Sigma < r.MinSigma*0.99 {
		t.Error("sigma must not decay below MinSigma")
	}
}

func TestSampleIsClipped(t *testing.T) {
	net := nn.New([]int{3, 4, 1}, []nn.Activation{nn.Tanh, nn.Tanh}, 1)
	r := NewREINFORCE(net, 0.01, 1)
	r.Sigma = 10 // absurd exploration
	obs := make([]float64, 3)
	for i := 0; i < 100; i++ {
		a := r.Sample(obs)
		if a < -1 || a > 1 {
			t.Fatalf("sample %v out of [-1,1]", a)
		}
	}
}

func TestEmptyTrajectoryIsSafe(t *testing.T) {
	net := nn.New([]int{3, 4, 1}, []nn.Activation{nn.Tanh, nn.Tanh}, 1)
	r := NewREINFORCE(net, 0.01, 1)
	r.update(nil)           // must not panic
	r.update([][]step{nil}) // nor with an empty trajectory
}

func TestRunBatchClampsEpisodeCount(t *testing.T) {
	net := nn.New([]int{3, 4, 1}, []nn.Activation{nn.Tanh, nn.Tanh}, 1)
	r := NewREINFORCE(net, 0.01, 1)
	env := &targetEnv{target: 0, steps: 2}
	r.RunBatch(env, 0, 10) // episodes < 1 clamps to 1
	if r.Episodes != 1 {
		t.Errorf("Episodes = %d, want 1", r.Episodes)
	}
}

func TestRewardFunctions(t *testing.T) {
	a := AuroraReward{}
	if a.Score(1, 0, 0) <= 0 {
		t.Error("full throughput, no latency must score positive")
	}
	if a.Score(1, 0, 0) <= a.Score(1, 0.5, 0.5) {
		t.Error("latency and loss must hurt the Aurora reward")
	}
	m := NewMOCCReward()
	if m.Score(1, 0, 0) <= 0 {
		t.Error("MOCC reward must be positive at ideal operation")
	}
	// MOCC punishes latency relatively harder than Aurora.
	aDrop := a.Score(1, 0, 0) - a.Score(1, 0.1, 0)
	mDrop := m.Score(1, 0, 0) - m.Score(1, 0.1, 0)
	if mDrop <= aDrop {
		t.Error("MOCC must weigh latency more than Aurora")
	}
}

func TestLinkEnvDynamics(t *testing.T) {
	e := NewLinkEnv(AuroraReward{}, 1)
	obs := e.Reset()
	if len(obs) != StateDim {
		t.Fatalf("obs dim = %d, want %d", len(obs), StateDim)
	}
	// Relentless increase must eventually cause queueing then loss.
	var sawQueue, sawNegReward bool
	for i := 0; i < 200; i++ {
		_, r, done := e.Step(1)
		if e.QueueSeconds() > 0 {
			sawQueue = true
		}
		if r < 0 {
			sawNegReward = true
		}
		if done {
			break
		}
	}
	if !sawQueue {
		t.Error("max-rate policy must build a queue")
	}
	if !sawNegReward {
		t.Error("overload must eventually produce negative rewards")
	}
}

func TestLinkEnvDecreaseDrainsQueue(t *testing.T) {
	e := NewLinkEnv(AuroraReward{}, 1)
	e.Reset()
	for i := 0; i < 60; i++ {
		e.Step(1)
	}
	q := e.QueueSeconds()
	for i := 0; i < 120; i++ {
		e.Step(-1)
	}
	if e.QueueSeconds() >= q {
		t.Errorf("backing off must drain the queue: %v -> %v", q, e.QueueSeconds())
	}
}

func TestLinkEnvEpisodeTermination(t *testing.T) {
	e := NewLinkEnv(AuroraReward{}, 1)
	e.Steps = 10
	e.Reset()
	var done bool
	for i := 0; i < 10; i++ {
		_, _, done = e.Step(0)
	}
	if !done {
		t.Error("episode must end after Steps steps")
	}
}

func TestLinkEnvRandomization(t *testing.T) {
	e := NewLinkEnv(AuroraReward{}, 1)
	e.RandomizeBandwidth = true
	seen := map[float64]bool{}
	for i := 0; i < 10; i++ {
		e.Reset()
		seen[e.bw] = true
	}
	if len(seen) < 5 {
		t.Errorf("bandwidth should vary across episodes, got %d distinct", len(seen))
	}
}

func TestREINFORCEImprovesOnLinkEnv(t *testing.T) {
	// End-to-end: training on the fluid link must improve returns. This is
	// the Figure 8 machinery (online adaptation needs exploration time).
	net := nn.New([]int{StateDim, 32, 16, 1}, []nn.Activation{nn.Tanh, nn.Tanh, nn.Tanh}, 7)
	r := NewREINFORCE(net, 5e-3, 3)
	env := NewLinkEnv(AuroraReward{}, 4)
	env.Steps = 120

	early := r.RunBatch(env, 10, env.Steps)
	for it := 0; it < 40; it++ {
		r.RunBatch(env, 8, env.Steps)
	}
	late := r.RunBatch(env, 10, env.Steps)

	if late <= early {
		t.Errorf("training must improve returns: early %.1f, late %.1f", early, late)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{1, 2, 3, 4})
	if math.Abs(m-2.5) > 1e-12 || math.Abs(s-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("meanStd = %v, %v", m, s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Error("empty meanStd must be zero")
	}
}

func BenchmarkEpisode(b *testing.B) {
	net := nn.New([]int{StateDim, 32, 16, 1}, []nn.Activation{nn.Tanh, nn.Tanh, nn.Tanh}, 1)
	r := NewREINFORCE(net, 1e-3, 1)
	env := NewLinkEnv(AuroraReward{}, 2)
	env.Steps = 100
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RunEpisode(env, env.Steps)
	}
}
