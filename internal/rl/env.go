package rl

import (
	"math/rand"
)

// Feature layout shared with the cc monitor-interval controller: 10 triples
// of (latency gradient, latency ratio − 1, send ratio − 1).
const (
	featureDim = 3
	historyLen = 10
	// StateDim is the observation width of LinkEnv, matching cc.StateDim.
	StateDim = featureDim * historyLen
)

// LinkEnv is the analytic single-bottleneck link model Aurora's GYM training
// uses: one step is one monitor interval; the action adjusts the sending
// rate multiplicatively; queueing, loss and latency follow fluid dynamics.
// It is deliberately far cheaper than the packet-level simulator so episodes
// run fast enough for online adaptation inside experiments.
type LinkEnv struct {
	// Bandwidth is the bottleneck capacity in abstract rate units.
	Bandwidth float64
	// BaseRTT is the propagation RTT in seconds.
	BaseRTT float64
	// BufferSec is the buffer depth in seconds of queueing at capacity.
	BufferSec float64
	// Steps is the episode length in monitor intervals.
	Steps int
	// Delta is the per-step multiplicative rate step (matches the
	// controller's δ).
	Delta float64
	// Reward shapes the per-step reward (Aurora or MOCC).
	Reward Reward
	// RandomizeBandwidth, when set, draws a fresh bandwidth uniformly from
	// [Bandwidth/2, 2·Bandwidth] each episode, the domain-randomization
	// trick Aurora trains with.
	RandomizeBandwidth bool

	rng *rand.Rand

	bw      float64
	rate    float64
	queue   float64 // seconds of queueing delay
	prevLat float64
	step    int
	history [StateDim]float64
}

// NewLinkEnv returns an Aurora-style training link: unit bandwidth, 10 ms
// RTT, half-BDP buffer, 400-step episodes.
func NewLinkEnv(reward Reward, seed int64) *LinkEnv {
	return &LinkEnv{
		Bandwidth: 1.0,
		BaseRTT:   0.01,
		BufferSec: 0.005,
		Steps:     400,
		Delta:     0.05,
		Reward:    reward,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Reset implements Env.
func (e *LinkEnv) Reset() []float64 {
	e.bw = e.Bandwidth
	if e.RandomizeBandwidth {
		e.bw = e.Bandwidth * (0.5 + 1.5*e.rng.Float64())
	}
	e.rate = e.bw * (0.3 + 0.4*e.rng.Float64())
	e.queue = 0
	e.prevLat = e.BaseRTT
	e.step = 0
	e.history = [StateDim]float64{}
	return append([]float64(nil), e.history[:]...)
}

// Step implements Env.
func (e *LinkEnv) Step(action float64) ([]float64, float64, bool) {
	// Apply the Aurora rate update rule.
	if action >= 0 {
		e.rate *= 1 + e.Delta*action
	} else {
		e.rate /= 1 + e.Delta*(-action)
	}

	dt := e.BaseRTT // one MI ≈ one RTT

	// Fluid queue update: excess arrival grows the queue; deficit drains it.
	excess := (e.rate - e.bw) / e.bw // in service-seconds per second
	e.queue += excess * dt
	loss := 0.0
	if e.queue > e.BufferSec {
		// Overflow: everything beyond the buffer is dropped this MI.
		dropped := e.queue - e.BufferSec
		loss = clip(dropped/(e.rate/e.bw*dt), 0, 1)
		e.queue = e.BufferSec
	}
	if e.queue < 0 {
		e.queue = 0
	}

	latency := e.BaseRTT + e.queue
	delivered := e.rate * (1 - loss)
	if delivered > e.bw {
		delivered = e.bw
	}
	throughput := delivered / e.bw

	// Derive the controller-compatible features.
	latGrad := (latency - e.prevLat) / dt
	latRatio := latency/e.BaseRTT - 1
	sendRatio := 0.0
	if delivered > 1e-9 {
		sendRatio = e.rate/delivered - 1
	}
	e.prevLat = latency

	copy(e.history[:], e.history[featureDim:])
	e.history[StateDim-3] = clip(latGrad*0.2, -1, 1)
	e.history[StateDim-2] = clip(latRatio, -1, 5)
	e.history[StateDim-1] = clip(sendRatio, -1, 5)

	reward := e.Reward.Score(throughput, latency, loss)

	e.step++
	done := e.step >= e.Steps
	return append([]float64(nil), e.history[:]...), reward, done
}

// Utilization returns delivered/capacity for the current rate, used by
// tests to check converged behaviour.
func (e *LinkEnv) Utilization() float64 {
	u := e.rate / e.bw
	if u > 1 {
		u = 1
	}
	return u
}

// QueueSeconds returns the current queueing delay.
func (e *LinkEnv) QueueSeconds() float64 { return e.queue }

var _ Env = (*LinkEnv)(nil)
