// Package rl implements the reinforcement-learning machinery behind Aurora
// and MOCC: a gym-style environment interface, a Gaussian-policy REINFORCE
// learner with a moving baseline (the policy-gradient family Aurora's
// PCC-RL training uses), and the multi-objective reward shaping MOCC adds.
//
// The paper tunes its NNs in userspace with TensorFlow/GYM; this package is
// the stdlib equivalent used by the online-adaptation experiments (Figures
// 8 and 12) and by the Adapter implementations in package experiments.
package rl

import (
	"math"
	"math/rand"

	"github.com/liteflow-sim/liteflow/internal/nn"
)

// Env is a gym-like episodic environment with a continuous scalar action.
type Env interface {
	// Reset starts a new episode and returns the initial observation.
	Reset() []float64
	// Step applies an action and returns the next observation, the reward,
	// and whether the episode ended.
	Step(action float64) (obs []float64, reward float64, done bool)
}

// Reward computes a scalar reward from per-step link statistics. Aurora and
// MOCC differ exactly here.
type Reward interface {
	Score(throughput, latency, loss float64) float64
}

// AuroraReward is Aurora's linear reward: 10·throughput − 1000·latency −
// 2000·loss (throughput normalized to link capacity, latency in seconds,
// loss as a fraction), scaled to keep magnitudes comparable across
// environments.
type AuroraReward struct{}

// Score implements Reward.
func (AuroraReward) Score(throughput, latency, loss float64) float64 {
	return 10*throughput - 20*latency - 30*loss
}

// MOCCReward is MOCC's multi-objective reward: a weighted combination whose
// weights express operator priorities; the defaults emphasize latency more
// than Aurora does, which is what gives MOCC its faster reconvergence under
// dynamics (paper §5.1).
type MOCCReward struct {
	WThroughput float64
	WLatency    float64
	WLoss       float64
}

// NewMOCCReward returns the default multi-objective weighting.
func NewMOCCReward() MOCCReward {
	return MOCCReward{WThroughput: 10, WLatency: 40, WLoss: 30}
}

// Score implements Reward.
func (m MOCCReward) Score(throughput, latency, loss float64) float64 {
	return m.WThroughput*throughput - m.WLatency*latency - m.WLoss*loss
}

// REINFORCE is a Gaussian-policy Monte-Carlo policy-gradient learner: the
// network outputs the action mean; exploration noise is Gaussian with a
// decaying sigma; returns are discounted and baselined by their batch mean.
type REINFORCE struct {
	Net        *nn.Network
	Opt        nn.Optimizer
	Gamma      float64 // discount
	Sigma      float64 // exploration stddev
	SigmaDecay float64
	MinSigma   float64

	rng *rand.Rand
	out []float64

	// Episodes counts completed training episodes.
	Episodes int
}

// NewREINFORCE returns a learner for net with standard hyperparameters.
func NewREINFORCE(net *nn.Network, lr float64, seed int64) *REINFORCE {
	return &REINFORCE{
		Net:        net,
		Opt:        nn.NewAdam(lr),
		Gamma:      0.95,
		Sigma:      0.4,
		SigmaDecay: 0.995,
		MinSigma:   0.05,
		rng:        rand.New(rand.NewSource(seed)),
		out:        make([]float64, 1),
	}
}

// Mean returns the policy mean action for obs (deterministic inference).
func (r *REINFORCE) Mean(obs []float64) float64 {
	r.Net.Forward(obs, r.out)
	return clip(r.out[0], -1, 1)
}

// Sample draws an exploratory action for obs.
func (r *REINFORCE) Sample(obs []float64) float64 {
	return clip(r.Mean(obs)+r.rng.NormFloat64()*r.Sigma, -1, 1)
}

// step is one recorded transition.
type step struct {
	obs    []float64
	action float64
	reward float64
}

// RunEpisode plays env to completion (or maxSteps) with exploration and
// applies one policy-gradient update from that single trajectory. For
// environments whose rewards trend within an episode (queues building up),
// prefer RunBatch: its per-time-index baseline removes the trend.
func (r *REINFORCE) RunEpisode(env Env, maxSteps int) float64 {
	traj, total := r.collect(env, maxSteps)
	r.update([][]step{traj})
	r.Episodes++
	r.decaySigma()
	return total
}

// RunBatch plays `episodes` episodes, then applies one policy-gradient
// update using a per-time-index baseline across the batch (removing the
// systematic within-episode return trend that makes single-trajectory
// REINFORCE diverge). It returns the mean undiscounted episode return.
func (r *REINFORCE) RunBatch(env Env, episodes, maxSteps int) float64 {
	if episodes < 1 {
		episodes = 1
	}
	trajs := make([][]step, 0, episodes)
	total := 0.0
	for e := 0; e < episodes; e++ {
		traj, ret := r.collect(env, maxSteps)
		trajs = append(trajs, traj)
		total += ret
	}
	r.update(trajs)
	r.Episodes += episodes
	r.decaySigma()
	return total / float64(episodes)
}

func (r *REINFORCE) collect(env Env, maxSteps int) ([]step, float64) {
	obs := env.Reset()
	var traj []step
	total := 0.0
	for t := 0; t < maxSteps; t++ {
		o := append([]float64(nil), obs...)
		a := r.Sample(o)
		next, reward, done := env.Step(a)
		traj = append(traj, step{obs: o, action: a, reward: reward})
		total += reward
		obs = next
		if done {
			break
		}
	}
	return traj, total
}

func (r *REINFORCE) decaySigma() {
	if r.Sigma > r.MinSigma {
		r.Sigma *= r.SigmaDecay
	}
}

// update applies the REINFORCE gradient. For a Gaussian policy with fixed
// sigma, d log π / d mean = (a − mean)/σ²; the loss gradient wrt the network
// output is −Â·(a − mean)/σ². The baseline is the mean return at the same
// time index across trajectories (when several are available), which cancels
// the within-episode trend; advantages are then globally normalized.
func (r *REINFORCE) update(trajs [][]step) {
	maxLen, n := 0, 0
	for _, tr := range trajs {
		if len(tr) > maxLen {
			maxLen = len(tr)
		}
		n += len(tr)
	}
	if n == 0 {
		return
	}
	// Discounted returns per trajectory.
	returns := make([][]float64, len(trajs))
	for k, tr := range trajs {
		rs := make([]float64, len(tr))
		g := 0.0
		for i := len(tr) - 1; i >= 0; i-- {
			g = tr[i].reward + r.Gamma*g
			rs[i] = g
		}
		returns[k] = rs
	}
	// Per-time-index baseline across trajectories. Indices covered by a
	// single trajectory fall back to the global mean return — otherwise a
	// lone sample would be its own baseline and carry zero advantage.
	var globalSum float64
	for k := range trajs {
		for _, g := range returns[k] {
			globalSum += g
		}
	}
	globalMean := globalSum / float64(n)
	baseline := make([]float64, maxLen)
	counts := make([]int, maxLen)
	for k := range trajs {
		for i, g := range returns[k] {
			baseline[i] += g
			counts[i]++
		}
	}
	for i := range baseline {
		if counts[i] >= 2 {
			baseline[i] /= float64(counts[i])
		} else {
			baseline[i] = globalMean
		}
	}
	// Advantages, globally normalized.
	var advs []float64
	for k := range trajs {
		for i, g := range returns[k] {
			advs = append(advs, g-baseline[i])
		}
	}
	_, std := meanStd(advs)

	r.Net.ZeroGrad()
	grad := make([]float64, 1)
	inv := 1 / float64(n)
	ai := 0
	for k, tr := range trajs {
		_ = k
		for _, s := range tr {
			adv := advs[ai]
			ai++
			if std > 1e-9 {
				adv /= std
			}
			mu := r.Mean(s.obs) // forward caches activations for Backward
			grad[0] = -adv * (s.action - mu) / (r.Sigma * r.Sigma) * inv
			r.Net.Backward(grad)
		}
	}
	r.Net.ClipGrad(5)
	r.Opt.Step(r.Net)
}

func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return m, math.Sqrt(v / float64(len(xs)))
}

func clip(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
