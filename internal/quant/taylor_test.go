package quant

import (
	"math"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/nn"
)

func TestTaylorAccurateNearZero(t *testing.T) {
	for _, act := range []nn.Activation{nn.Tanh, nn.Sigmoid} {
		coeffs := TaylorCoeffs(act, 9)
		for x := -0.5; x <= 0.5; x += 0.05 {
			y, _ := TaylorEval(coeffs, x)
			if math.Abs(y-act.Apply(x)) > 1e-4 {
				t.Errorf("%s Taylor(%.2f) = %v, want %v", act, x, y, act.Apply(x))
			}
		}
	}
}

func TestTaylorDivergesOffRange(t *testing.T) {
	// The paper's point: polynomial approximations are only accurate within
	// a certain range. At |x| = 4 the degree-9 tanh expansion is wildly off.
	coeffs := TaylorCoeffs(nn.Tanh, 9)
	y, _ := TaylorEval(coeffs, 4)
	if math.Abs(y-math.Tanh(4)) < 1 {
		t.Errorf("degree-9 tanh Taylor at 4 should diverge, got %v", y)
	}
}

func TestTaylorEvalCountsMuls(t *testing.T) {
	coeffs := TaylorCoeffs(nn.Tanh, 7)
	_, muls := TaylorEval(coeffs, 0.3)
	if muls != 7 {
		t.Errorf("Horner on degree 7 must use 7 muls, got %d", muls)
	}
}

func TestTaylorCoeffsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Taylor for ReLU must panic (no approximation needed)")
		}
	}()
	TaylorCoeffs(nn.ReLU, 3)
}

func TestLUTApproxUniformAccuracy(t *testing.T) {
	for _, act := range []nn.Activation{nn.Tanh, nn.Sigmoid} {
		lut := LUTApprox(act, 4096, 8, 1<<16)
		maxErr, meanErr := ApproxError(act, lut, 4, 2001)
		if maxErr > 1e-3 {
			t.Errorf("%s LUT max err %v over [-4,4], want ≤ 1e-3", act, maxErr)
		}
		if meanErr > maxErr {
			t.Errorf("%s mean err %v > max err %v", act, meanErr, maxErr)
		}
		// Saturated region still fine (the LUT clamps).
		if e := math.Abs(lut(20) - act.Apply(20)); e > 1e-3 {
			t.Errorf("%s LUT at saturation err %v", act, e)
		}
	}
}

func TestApproxErrorDegenerateSamples(t *testing.T) {
	max, mean := ApproxError(nn.Tanh, math.Tanh, 1, 1) // clamps to 2 samples
	if max != 0 || mean != 0 {
		t.Errorf("perfect approximation must have zero error, got %v/%v", max, mean)
	}
}
