package quant

import (
	"math"

	"github.com/liteflow-sim/liteflow/internal/nn"
)

// This file implements the alternative the paper argues AGAINST in §3.1:
// approximating kernel-unavailable activations (tanh, sigmoid) with Taylor
// polynomials instead of lookup tables. It exists to reproduce the paper's
// two claims as a measurable ablation:
//
//  1. polynomial approximations are accurate only near the expansion point,
//     while a bounded LUT is uniformly accurate, and
//  2. raising the polynomial degree for accuracy raises per-inference cost,
//     while LUT evaluation is constant-time.
//
// See AblTaylor in internal/experiments.

// TaylorCoeffs returns the Maclaurin coefficients of the activation up to
// the given degree (inclusive). Only Tanh and Sigmoid are supported; other
// activations need no approximation in integer code.
func TaylorCoeffs(act nn.Activation, degree int) []float64 {
	c := make([]float64, degree+1)
	switch act {
	case nn.Tanh:
		// tanh x = x − x³/3 + 2x⁵/15 − 17x⁷/315 + 62x⁹/2835 − …
		odd := []float64{1, -1.0 / 3, 2.0 / 15, -17.0 / 315, 62.0 / 2835, -1382.0 / 155925}
		for i, v := range odd {
			k := 2*i + 1
			if k > degree {
				break
			}
			c[k] = v
		}
	case nn.Sigmoid:
		// σ(x) = 1/2 + x/4 − x³/48 + x⁵/480 − 17x⁷/80640 + …
		c[0] = 0.5
		terms := []float64{1.0 / 4, -1.0 / 48, 1.0 / 480, -17.0 / 80640, 31.0 / 1451520}
		for i, v := range terms {
			k := 2*i + 1
			if k > degree {
				break
			}
			c[k] = v
		}
	default:
		panic("quant: Taylor approximation only defined for tanh/sigmoid")
	}
	return c
}

// TaylorEval evaluates the polynomial at x via Horner's rule, counting the
// multiplications consumed (the complexity the paper contrasts with the
// LUT's constant cost).
func TaylorEval(coeffs []float64, x float64) (y float64, muls int) {
	for i := len(coeffs) - 1; i >= 0; i-- {
		y = y*x + coeffs[i]
		if i > 0 {
			muls++
		}
	}
	return y, muls
}

// ApproxError measures the max and mean absolute error of an activation
// approximation over [-limit, limit] at the given sampling resolution.
func ApproxError(act nn.Activation, approx func(x float64) float64, limit float64, samples int) (maxErr, meanErr float64) {
	if samples < 2 {
		samples = 2
	}
	var sum float64
	for i := 0; i < samples; i++ {
		x := -limit + 2*limit*float64(i)/float64(samples-1)
		e := math.Abs(approx(x) - act.Apply(x))
		if e > maxErr {
			maxErr = e
		}
		sum += e
	}
	return maxErr, sum / float64(samples)
}

// LUTApprox builds an evaluation function over the same integer LUT
// machinery the snapshots use, for apples-to-apples comparison with Taylor
// polynomials. The returned function quantizes x at `scale`, looks up, and
// dequantizes.
func LUTApprox(act nn.Activation, tableSize int, tableRange float64, scale int64) func(x float64) float64 {
	l := &Layer{Act: act, accScale: scale, outScale: scale}
	buildTable(l, act, Config{TableSize: tableSize, TableRange: tableRange})
	return func(x float64) float64 {
		acc := roundToInt(x * float64(scale))
		return float64(l.lookup(acc)) / float64(scale)
	}
}
