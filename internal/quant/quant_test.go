package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/liteflow-sim/liteflow/internal/nn"
)

func randInputs(r *rand.Rand, n, dim int, scale float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dim)
		for j := range out[i] {
			out[i][j] = (r.Float64()*2 - 1) * scale
		}
	}
	return out
}

func TestQuantizeMatchesFloatCloselyAurora(t *testing.T) {
	// The Aurora architecture with tanh activations — the hardest case for
	// integer quantization because of the LUTs.
	net := nn.New([]int{30, 32, 16, 1}, []nn.Activation{nn.Tanh, nn.Tanh, nn.Linear}, 11)
	p := Quantize(net, DefaultConfig())
	r := rand.New(rand.NewSource(1))
	loss := AccuracyLoss(net, p, randInputs(r, 200, 30, 1))
	if loss > 0.02 {
		t.Errorf("accuracy loss = %.4f, want ≤ 0.02 (the paper's ~2%%)", loss)
	}
}

func TestQuantizeReLUAndSigmoid(t *testing.T) {
	net := nn.New([]int{8, 12, 4}, []nn.Activation{nn.ReLU, nn.Sigmoid}, 5)
	p := Quantize(net, DefaultConfig())
	r := rand.New(rand.NewSource(2))
	loss := AccuracyLoss(net, p, randInputs(r, 200, 8, 1))
	if loss > 0.02 {
		t.Errorf("accuracy loss = %.4f, want ≤ 0.02", loss)
	}
}

func TestOutputScaleControlsGranularity(t *testing.T) {
	// With OutputScale 1 a [0,1] sigmoid output collapses to {0,1} — the
	// paper's motivating failure. Scaling to 1000 fixes it.
	net := nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Sigmoid}, 3)
	r := rand.New(rand.NewSource(3))
	inputs := randInputs(r, 300, 4, 1)

	coarse := DefaultConfig()
	coarse.OutputScale = 1
	lossCoarse := AccuracyLoss(net, Quantize(net, coarse), inputs)

	fine := DefaultConfig() // C = 1000
	lossFine := AccuracyLoss(net, Quantize(net, fine), inputs)

	if lossFine >= lossCoarse {
		t.Errorf("scaling layer must reduce loss: C=1 loss %.4f, C=1000 loss %.4f", lossCoarse, lossFine)
	}
	if lossFine > 0.02 {
		t.Errorf("C=1000 loss = %.4f, want ≤ 2%%", lossFine)
	}
	// And the coarse output really is binary.
	qo := make([]int64, 1)
	prog := Quantize(net, coarse)
	for _, in := range inputs[:50] {
		prog.Infer(prog.QuantizeInput(in, nil), qo)
		if qo[0] != 0 && qo[0] != 1 {
			t.Fatalf("C=1 sigmoid output = %d, expected collapse to {0,1}", qo[0])
		}
	}
}

func TestInferIsDeterministic(t *testing.T) {
	net := nn.New([]int{6, 10, 2}, []nn.Activation{nn.Tanh, nn.Linear}, 9)
	p := Quantize(net, DefaultConfig())
	in := p.QuantizeInput([]float64{0.1, -0.2, 0.3, 0.5, -0.9, 0.7}, nil)
	a, b := make([]int64, 2), make([]int64, 2)
	p.Infer(in, a)
	p.Infer(in, b)
	if a[0] != b[0] || a[1] != b[1] {
		t.Error("repeated inference must be bit-identical")
	}
}

func TestInferSizePanics(t *testing.T) {
	net := nn.New([]int{2, 2}, []nn.Activation{nn.Linear}, 1)
	p := Quantize(net, DefaultConfig())
	for _, fn := range []func(){
		func() { p.Infer(make([]int64, 1), make([]int64, 2)) },
		func() { p.Infer(make([]int64, 2), make([]int64, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("size mismatch must panic")
				}
			}()
			fn()
		}()
	}
}

func TestConfigValidation(t *testing.T) {
	net := nn.New([]int{2, 2}, []nn.Activation{nn.Linear}, 1)
	bad := []Config{
		{InputScale: 0, WeightScale: 1, ActScale: 1, OutputScale: 1, TableSize: 4},
		{InputScale: 1, WeightScale: 1, ActScale: 1, OutputScale: -5, TableSize: 4},
		{InputScale: 1, WeightScale: 1, ActScale: 1, OutputScale: 1, TableSize: 1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d must panic", i)
				}
			}()
			Quantize(net, cfg)
		}()
	}
}

func TestRescaleRounding(t *testing.T) {
	cases := []struct {
		v, from, to, want int64
	}{
		{100, 100, 1000, 1000},
		{150, 100, 10, 15},
		{154, 100, 10, 15}, // 15.4 rounds to 15
		{156, 100, 10, 16}, // 15.6 rounds to 16
		{-154, 100, 10, -15},
		{-156, 100, 10, -16},
		{7, 7, 7, 7}, // same scale short-circuits
	}
	for _, c := range cases {
		if got := rescale(c.v, c.from, c.to); got != c.want {
			t.Errorf("rescale(%d, %d, %d) = %d, want %d", c.v, c.from, c.to, got, c.want)
		}
	}
}

func TestLookupTableAccuracy(t *testing.T) {
	// Direct LUT check: a 1-layer tanh net with identity weight.
	net := nn.New([]int{1, 1}, []nn.Activation{nn.Tanh}, 1)
	net.Layers[0].W[0][0] = 1
	net.Layers[0].B[0] = 0
	cfg := DefaultConfig()
	cfg.OutputScale = 1 << 16
	p := Quantize(net, cfg)
	for x := -10.0; x <= 10.0; x += 0.37 {
		got := p.InferFloat([]float64{x})[0]
		want := math.Tanh(x)
		if math.Abs(got-want) > 2e-3 {
			t.Errorf("tanh(%v): LUT=%v float=%v", x, got, want)
		}
	}
}

func TestLookupClampsOutsideRange(t *testing.T) {
	net := nn.New([]int{1, 1}, []nn.Activation{nn.Sigmoid}, 1)
	net.Layers[0].W[0][0] = 1
	net.Layers[0].B[0] = 0
	p := Quantize(net, DefaultConfig())
	hi := p.InferFloat([]float64{50})[0]
	lo := p.InferFloat([]float64{-50})[0]
	if math.Abs(hi-1) > 1e-3 || math.Abs(lo) > 1e-3 {
		t.Errorf("saturated sigmoid = %v / %v, want ≈ 1 / 0", hi, lo)
	}
}

func TestQuantizeInputDequantizeRoundTrip(t *testing.T) {
	net := nn.New([]int{3, 1}, []nn.Activation{nn.Linear}, 1)
	p := Quantize(net, DefaultConfig())
	in := []float64{0.125, -0.5, 0.75}
	q := p.QuantizeInput(in, nil)
	for i := range in {
		back := float64(q[i]) / float64(p.InputScale)
		if math.Abs(back-in[i]) > 1.0/float64(p.InputScale) {
			t.Errorf("round trip %v -> %v", in[i], back)
		}
	}
	// dst reuse path.
	dst := make([]int64, 3)
	if got := p.QuantizeInput(in, dst); &got[0] != &dst[0] {
		t.Error("QuantizeInput must reuse provided buffer")
	}
}

func TestMACsAndParams(t *testing.T) {
	net := nn.New([]int{30, 32, 16, 1}, []nn.Activation{nn.Tanh, nn.Tanh, nn.Linear}, 1)
	p := Quantize(net, DefaultConfig())
	if p.MACs() != net.MACs() {
		t.Errorf("MACs = %d, want %d", p.MACs(), net.MACs())
	}
	if p.NumParams() != net.NumParams() {
		t.Errorf("NumParams = %d, want %d", p.NumParams(), net.NumParams())
	}
}

func TestAccuracyLossEmptyInputs(t *testing.T) {
	net := nn.New([]int{2, 1}, []nn.Activation{nn.Linear}, 1)
	p := Quantize(net, DefaultConfig())
	if AccuracyLoss(net, p, nil) != 0 {
		t.Error("no inputs must yield 0 loss")
	}
}

// Property: increasing OutputScale never makes accuracy (much) worse across
// random small networks.
func TestScalingMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		net := nn.New([]int{4, 6, 1}, []nn.Activation{nn.Tanh, nn.Sigmoid}, seed)
		inputs := randInputs(r, 60, 4, 1)
		cfg := DefaultConfig()
		cfg.OutputScale = 10
		low := AccuracyLoss(net, Quantize(net, cfg), inputs)
		cfg.OutputScale = 10000
		high := AccuracyLoss(net, Quantize(net, cfg), inputs)
		return high <= low+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestInferNoAlloc(t *testing.T) {
	net := nn.New([]int{30, 32, 16, 1}, []nn.Activation{nn.Tanh, nn.Tanh, nn.Linear}, 1)
	p := Quantize(net, DefaultConfig())
	in := make([]int64, 30)
	out := make([]int64, 1)
	allocs := testing.AllocsPerRun(100, func() { p.Infer(in, out) })
	if allocs != 0 {
		t.Errorf("Infer allocates %v times, want 0 (kernel fast path)", allocs)
	}
}

func BenchmarkInferAuroraSnapshot(b *testing.B) {
	net := nn.New([]int{30, 32, 16, 1}, []nn.Activation{nn.Tanh, nn.Tanh, nn.Linear}, 1)
	p := Quantize(net, DefaultConfig())
	in := make([]int64, 30)
	out := make([]int64, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Infer(in, out)
	}
}

func BenchmarkInferMOCCSnapshot(b *testing.B) {
	net := nn.New([]int{30, 64, 32, 1}, []nn.Activation{nn.Tanh, nn.Tanh, nn.Linear}, 1)
	p := Quantize(net, DefaultConfig())
	in := make([]int64, 30)
	out := make([]int64, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Infer(in, out)
	}
}
