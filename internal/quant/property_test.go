package quant

// Property-based and fuzz tests: quantize→execute must track the float
// forward pass within a configured bound across randomly shaped networks and
// inputs, the batched/arena execution paths must be bit-identical to the
// sequential path, and the Taylor-vs-LUT ablation must hold its error
// characteristics under extreme inputs.

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/nn"
)

// randomNet draws a random fully-connected network: 1–3 hidden layers of
// width 1–24, any supported activation per layer.
func randomNet(r *rand.Rand) *nn.Network {
	depth := 2 + r.Intn(3)
	sizes := make([]int, depth+1)
	for i := range sizes {
		sizes[i] = 1 + r.Intn(24)
	}
	acts := make([]nn.Activation, depth)
	for i := range acts {
		acts[i] = nn.Activation(r.Intn(4)) // Linear, ReLU, Tanh, Sigmoid
	}
	return nn.New(sizes, acts, r.Int63())
}

// randomInput draws inputs in [-2, 2], the operating range of the CC state
// vectors the experiments feed through snapshots.
func randomInput(r *rand.Rand, n int) []float64 {
	in := make([]float64, n)
	for i := range in {
		in[i] = -2 + 4*r.Float64()
	}
	return in
}

// TestQuantErrorBoundRandomNetworks is the central quantization property:
// for random networks and inputs, the normalized deviation between the
// float forward pass and the integer program stays within a small bound at
// the default configuration (the paper's §3.1 claim behind Figure 7).
func TestQuantErrorBoundRandomNetworks(t *testing.T) {
	const trials = 60
	const bound = 0.05 // Fig. 7 shows ~2% at C=1000; leave slack for worst draws
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < trials; trial++ {
		net := randomNet(r)
		p := Quantize(net, DefaultConfig())
		inputs := make([][]float64, 16)
		for i := range inputs {
			inputs[i] = randomInput(r, net.InputSize())
		}
		if loss := AccuracyLoss(net, p, inputs); loss > bound {
			t.Errorf("trial %d: normalized quantization loss %.4f exceeds %.2f (net %v)",
				trial, loss, bound, shape(net))
		}
	}
}

func shape(net *nn.Network) []int {
	s := []int{net.InputSize()}
	for _, l := range net.Layers {
		s = append(s, l.Out)
	}
	return s
}

// TestInferWithMatchesInfer: caller-owned arenas must be bit-identical to
// the program-owned arena path.
func TestInferWithMatchesInfer(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		net := randomNet(r)
		p := Quantize(net, DefaultConfig())
		a := p.NewArena()
		in := p.QuantizeInput(randomInput(r, net.InputSize()), nil)
		want := make([]int64, p.OutputSize())
		got := make([]int64, p.OutputSize())
		p.Infer(in, want)
		p.InferWith(a, in, got)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: InferWith[%d] = %d, Infer = %d", trial, i, got[i], want[i])
			}
		}
		// A zero arena must grow on demand and still match.
		var zero Arena
		p.InferWith(&zero, in, got)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: zero-arena InferWith[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

// TestInferBatchMatchesSequential: the strided batch path must equal n
// sequential Infer calls exactly, for any batch size.
func TestInferBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		net := randomNet(r)
		p := Quantize(net, DefaultConfig())
		is, os := p.InputSize(), p.OutputSize()
		n := 1 + r.Intn(17)
		ins := make([]int64, n*is)
		for q := 0; q < n; q++ {
			p.QuantizeInput(randomInput(r, is), ins[q*is:(q+1)*is])
		}
		want := make([]int64, n*os)
		for q := 0; q < n; q++ {
			p.Infer(ins[q*is:(q+1)*is], want[q*os:(q+1)*os])
		}
		got := make([]int64, n*os)
		p.InferBatch(p.NewArena(), ins, got, n)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d (batch %d): out[%d] = %d, sequential = %d", trial, n, i, got[i], want[i])
			}
		}
	}
}

// TestInferBatchSizePanics: mis-sized batch buffers must panic like the
// single-shot path, not read out of bounds.
func TestInferBatchSizePanics(t *testing.T) {
	net := nn.New([]int{3, 4, 2}, []nn.Activation{nn.Tanh, nn.Linear}, 1)
	p := Quantize(net, DefaultConfig())
	a := p.NewArena()
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("short input", func() { p.InferBatch(a, make([]int64, 3), make([]int64, 4), 2) })
	expectPanic("short output", func() { p.InferBatch(a, make([]int64, 6), make([]int64, 2), 2) })
}

// TestConcurrentInferWithPrivateArenas: one immutable Program, many
// goroutines, one arena each — results must equal the serial ones. Run under
// -race in CI, this is the quant half of the parallel-harness guarantee.
func TestConcurrentInferWithPrivateArenas(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	net := randomNet(r)
	p := Quantize(net, DefaultConfig())
	is, os := p.InputSize(), p.OutputSize()
	const workers = 8
	const perWorker = 50
	ins := make([][]int64, workers*perWorker)
	want := make([][]int64, len(ins))
	for i := range ins {
		ins[i] = p.QuantizeInput(randomInput(r, is), nil)
		want[i] = make([]int64, os)
		p.Infer(ins[i], want[i])
	}
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := p.NewArena()
			out := make([]int64, os)
			for k := 0; k < perWorker; k++ {
				i := w*perWorker + k
				p.InferWith(a, ins[i], out)
				for j := range out {
					if out[j] != want[i][j] {
						errs <- "concurrent inference diverged from serial"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestTaylorErrorBoundsExtremeInputs pins the §3.1 ablation under extreme
// inputs: the LUT stays uniformly accurate (activations saturate, lookup
// clamps), while the Taylor polynomial's error grows without bound outside
// its convergence neighborhood.
func TestTaylorErrorBoundsExtremeInputs(t *testing.T) {
	for _, act := range []nn.Activation{nn.Tanh, nn.Sigmoid} {
		lut := LUTApprox(act, 4096, 8, 1<<12)
		// Far outside the table range the activation is saturated and the
		// clamped LUT must stay within quantization resolution of it.
		for _, x := range []float64{-1e12, -500, -8.01, 8.01, 500, 1e12} {
			if e := math.Abs(lut(x) - act.Apply(x)); e > 1.5e-3 {
				t.Errorf("%v: LUT error %.5f at extreme x=%g", act, e, x)
			}
		}
		lutMax, _ := ApproxError(act, lut, 50, 4001)
		coeffs := TaylorCoeffs(act, 9)
		taylorMax, _ := ApproxError(act, func(x float64) float64 {
			y, _ := TaylorEval(coeffs, x)
			return y
		}, 50, 4001)
		if lutMax > 1.5e-3 {
			t.Errorf("%v: LUT max error %.5f over [-50,50], want uniform accuracy", act, lutMax)
		}
		if taylorMax < 1e3 {
			t.Errorf("%v: degree-9 Taylor max error %.3g over [-50,50]; expected divergence ≫ LUT", act, taylorMax)
		}
	}
}

// FuzzQuantizeExecute derives a random network and input from the fuzz
// corpus and checks the quantize→execute error bound plus batch/sequential
// agreement — the two properties above, driven by arbitrary bytes.
func FuzzQuantizeExecute(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(5), uint8(3))
	f.Add(int64(99), uint8(3), uint8(24), uint8(0))
	f.Add(int64(-7), uint8(1), uint8(1), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, depthB, widthB, actB uint8) {
		r := rand.New(rand.NewSource(seed))
		depth := 1 + int(depthB)%3
		width := 1 + int(widthB)%16
		sizes := make([]int, depth+1)
		for i := range sizes {
			sizes[i] = 1 + (width+i)%16
		}
		acts := make([]nn.Activation, depth)
		for i := range acts {
			acts[i] = nn.Activation((int(actB) + i) % 4)
		}
		net := nn.New(sizes, acts, seed)
		p := Quantize(net, DefaultConfig())

		in := randomInput(r, net.InputSize())
		if loss := AccuracyLoss(net, p, [][]float64{in}); loss > 0.10 {
			t.Errorf("quantization loss %.4f on %v", loss, sizes)
		}

		qi := p.QuantizeInput(in, nil)
		single := make([]int64, p.OutputSize())
		p.Infer(qi, single)
		batch := make([]int64, p.OutputSize())
		p.InferBatch(p.NewArena(), qi, batch, 1)
		for i := range single {
			if single[i] != batch[i] {
				t.Errorf("batch[%d] = %d, single = %d", i, batch[i], single[i])
			}
		}
	})
}

// FuzzLookupClamp drives raw accumulator values, including extremes, through
// the LUT: the result must stay within the activation's output range at
// outScale and never panic.
func FuzzLookupClamp(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(math.MaxInt64 / 2))
	f.Add(int64(math.MinInt64 / 2))
	f.Add(int64(-1))
	l := &Layer{Act: nn.Tanh, accScale: 1 << 12, outScale: 1 << 12}
	buildTable(l, nn.Tanh, DefaultConfig())
	f.Fuzz(func(t *testing.T, acc int64) {
		v := l.lookup(acc)
		if v < -(1<<12) || v > 1<<12 {
			t.Errorf("lookup(%d) = %d outside tanh range at scale %d", acc, v, 1<<12)
		}
	})
}
