// Package quant implements LiteFlow's high-precision integer quantization
// (paper §3.1): it converts a float userspace network (package nn) into an
// integer-only Program — the "NN snapshot" — whose inference uses nothing a
// kernel fast path cannot: int64 add/mul/div and table lookups. No float
// operation executes on the inference path.
//
// Two ideas from the paper are load-bearing here:
//
//   - Scale-up layers. Naive integer quantization of an output in [0,1]
//     collapses it to {0,1}. LiteFlow appends a scaling layer with factor C
//     (typically 1000) so outputs live in {0..C}, losing ~2% accuracy
//     (Figure 7). Config.OutputScale is that C.
//
//   - Lookup-table activations. tanh/sigmoid are unavailable in kernel
//     space; Taylor approximations lose precision outside a narrow range and
//     cost more for higher degrees. A bounded LUT with linear interpolation
//     gives constant-time, uniformly accurate evaluation.
package quant

import (
	"fmt"
	"math"

	"github.com/liteflow-sim/liteflow/internal/nn"
)

// Config controls quantization precision.
type Config struct {
	// InputScale is the fixed-point scale of network inputs:
	// x_int = round(x_float · InputScale).
	InputScale int64
	// WeightScale is the per-weight fixed-point scale.
	WeightScale int64
	// ActScale is the fixed-point scale of hidden-layer activations.
	ActScale int64
	// OutputScale is the paper's scale-up factor C applied to the final
	// layer: y_int = round(y_float · C). Sweeping C reproduces Figure 7.
	OutputScale int64
	// TableSize is the number of entries in activation lookup tables.
	TableSize int
	// TableRange bounds LUT inputs to [-TableRange, +TableRange] (pre-
	// activation); tanh/sigmoid saturate outside ±8 at float precision.
	TableRange float64
}

// DefaultConfig returns the configuration used by all experiments:
// 1000× output scaling (the paper's example), 4096-entry tables.
func DefaultConfig() Config {
	return Config{
		InputScale:  1 << 12,
		WeightScale: 1 << 12,
		ActScale:    1 << 12,
		OutputScale: 1000,
		TableSize:   4096,
		TableRange:  8,
	}
}

// Layer is one quantized dense layer. Weights are at WeightScale; biases are
// pre-scaled to inScale·WeightScale so they add directly into the
// accumulator.
type Layer struct {
	In, Out int
	W       [][]int64 // [Out][In], scale = weightScale
	B       []int64   // [Out], scale = inScale·weightScale
	Act     nn.Activation

	inScale  int64 // scale of this layer's inputs
	accScale int64 // inScale·weightScale: scale of the accumulator
	outScale int64 // scale of this layer's outputs

	// LUT for tanh/sigmoid: maps accumulator values in
	// [-tblMin, +tblMin]... entries are at outScale.
	table  []int64
	tblMin int64 // accumulator value of table[0]
	tblMax int64 // accumulator value of table[len-1]
}

// InScale returns the fixed-point scale of the layer's inputs.
func (l *Layer) InScale() int64 { return l.inScale }

// AccScale returns the fixed-point scale of the layer's accumulator
// (inScale · weightScale).
func (l *Layer) AccScale() int64 { return l.accScale }

// OutScale returns the fixed-point scale of the layer's outputs.
func (l *Layer) OutScale() int64 { return l.outScale }

// TableData exposes the activation lookup table and the accumulator values
// of its first and last entries; the table is nil for layers that need none.
// Code generation inlines this data into the emitted module.
func (l *Layer) TableData() (table []int64, tblMin, tblMax int64) {
	return l.table, l.tblMin, l.tblMax
}

// Program is an executable integer snapshot of a float network. The struct
// itself is immutable after Quantize; all mutable execution state lives in an
// Arena, so one Program can serve many goroutines concurrently as long as
// each supplies its own Arena (InferWith/InferBatch). The convenience Infer
// method uses a Program-owned arena and therefore remains single-threaded.
type Program struct {
	Layers      []*Layer
	InputScale  int64
	OutputScale int64

	macs     int
	maxWidth int
	arena    Arena // backs Infer; not used by InferWith/InferBatch
}

// Arena is the reusable scratch an inference needs: two ping-pong activation
// buffers sized to the widest layer. A zero Arena is valid and grows on first
// use; after that, steady-state inference performs zero heap allocations
// (guarded by testing.AllocsPerRun assertions in quant and core). Arenas are
// not goroutine-safe — use one per worker.
type Arena struct {
	bufs [2][]int64
}

// Reserve grows the arena to serve programs up to the given layer width.
func (a *Arena) Reserve(width int) {
	if cap(a.bufs[0]) < width {
		a.bufs[0] = make([]int64, width)
		a.bufs[1] = make([]int64, width)
	}
}

// MaxWidth returns the widest layer dimension, i.e. the arena width InferWith
// requires.
func (p *Program) MaxWidth() int { return p.maxWidth }

// NewArena returns an arena pre-sized for this program.
func (p *Program) NewArena() *Arena {
	a := &Arena{}
	a.Reserve(p.maxWidth)
	return a
}

// Quantize converts net into an integer Program under cfg. It panics on
// non-positive scales, which would be silent precision bugs otherwise.
func Quantize(net *nn.Network, cfg Config) *Program {
	if cfg.InputScale <= 0 || cfg.WeightScale <= 0 || cfg.ActScale <= 0 || cfg.OutputScale <= 0 {
		panic("quant: scales must be positive")
	}
	if cfg.TableSize < 2 {
		panic("quant: table size must be at least 2")
	}
	p := &Program{InputScale: cfg.InputScale, OutputScale: cfg.OutputScale}
	inScale := cfg.InputScale
	maxWidth := 0
	for li, fl := range net.Layers {
		outScale := cfg.ActScale
		if li == len(net.Layers)-1 {
			outScale = cfg.OutputScale
		}
		l := &Layer{
			In: fl.In, Out: fl.Out, Act: fl.Act,
			inScale:  inScale,
			accScale: inScale * cfg.WeightScale,
			outScale: outScale,
		}
		l.W = make([][]int64, fl.Out)
		l.B = make([]int64, fl.Out)
		for i := range fl.W {
			l.W[i] = make([]int64, fl.In)
			for j, w := range fl.W[i] {
				l.W[i][j] = roundToInt(w * float64(cfg.WeightScale))
			}
			l.B[i] = roundToInt(fl.B[i] * float64(l.accScale))
		}
		if fl.Act == nn.Tanh || fl.Act == nn.Sigmoid {
			buildTable(l, fl.Act, cfg)
		}
		p.Layers = append(p.Layers, l)
		p.macs += fl.In * fl.Out
		if fl.In > maxWidth {
			maxWidth = fl.In
		}
		if fl.Out > maxWidth {
			maxWidth = fl.Out
		}
		inScale = outScale
	}
	p.maxWidth = maxWidth
	p.arena.Reserve(maxWidth)
	return p
}

func roundToInt(x float64) int64 {
	return int64(math.Round(x))
}

// buildTable fills the layer's activation LUT. Entries map accumulator
// values (scale accScale) over [-R, R] in pre-activation units to activated
// outputs at outScale.
func buildTable(l *Layer, act nn.Activation, cfg Config) {
	l.table = make([]int64, cfg.TableSize)
	l.tblMin = -roundToInt(cfg.TableRange * float64(l.accScale))
	l.tblMax = roundToInt(cfg.TableRange * float64(l.accScale))
	for i := range l.table {
		// Pre-activation value represented by entry i, in float.
		frac := float64(i) / float64(cfg.TableSize-1)
		x := -cfg.TableRange + 2*cfg.TableRange*frac
		l.table[i] = roundToInt(act.Apply(x) * float64(l.outScale))
	}
}

// InputSize returns the program's input dimension.
func (p *Program) InputSize() int { return p.Layers[0].In }

// OutputSize returns the program's output dimension.
func (p *Program) OutputSize() int { return p.Layers[len(p.Layers)-1].Out }

// MACs returns the multiply-accumulate count of one inference.
func (p *Program) MACs() int { return p.macs }

// NumParams returns the number of quantized parameters, used to cost
// snapshot installation.
func (p *Program) NumParams() int {
	n := 0
	for _, l := range p.Layers {
		n += l.In*l.Out + l.Out
	}
	return n
}

// Infer runs integer-only inference: in must be at InputScale, out receives
// values at OutputScale. Both slices must match the program's dimensions.
// The hot path performs no allocation and no floating-point arithmetic. It
// uses the Program's internal arena and is therefore not goroutine-safe; use
// InferWith with a per-worker Arena for concurrent execution.
func (p *Program) Infer(in, out []int64) {
	p.InferWith(&p.arena, in, out)
}

// InferWith is Infer against caller-owned scratch: the same integer-only hot
// path, but with all mutable state in a, so distinct goroutines can execute
// one Program concurrently with distinct arenas.
func (p *Program) InferWith(a *Arena, in, out []int64) {
	if len(in) != p.InputSize() {
		panic(fmt.Sprintf("quant: input size %d, want %d", len(in), p.InputSize()))
	}
	if len(out) != p.OutputSize() {
		panic(fmt.Sprintf("quant: output size %d, want %d", len(out), p.OutputSize()))
	}
	a.Reserve(p.maxWidth)
	p.inferInto(a, in, out)
}

// inferInto is the validated inner loop; a must already cover maxWidth.
func (p *Program) inferInto(a *Arena, in, out []int64) {
	cur := in
	for li, l := range p.Layers {
		dst := a.bufs[li%2][:l.Out]
		if li == len(p.Layers)-1 {
			dst = out
		}
		for i := 0; i < l.Out; i++ {
			acc := l.B[i]
			w := l.W[i]
			for j := 0; j < l.In; j++ {
				acc += w[j] * cur[j]
			}
			dst[i] = l.activate(acc)
		}
		cur = dst
	}
}

// InferBatch runs n inferences over densely packed rows: in holds n
// consecutive input vectors (stride InputSize) and out receives n consecutive
// output vectors (stride OutputSize). Results are identical to n sequential
// Infer calls; the batch form exists so datapath callers amortize the lookup
// and CPU-accounting overhead per batch instead of per query, and performs
// zero heap allocations in steady state.
func (p *Program) InferBatch(a *Arena, in, out []int64, n int) {
	is, os := p.InputSize(), p.OutputSize()
	if len(in) != n*is {
		panic(fmt.Sprintf("quant: batch input len %d, want %d×%d", len(in), n, is))
	}
	if len(out) != n*os {
		panic(fmt.Sprintf("quant: batch output len %d, want %d×%d", len(out), n, os))
	}
	a.Reserve(p.maxWidth)
	for q := 0; q < n; q++ {
		p.inferInto(a, in[q*is:(q+1)*is], out[q*os:(q+1)*os])
	}
}

// activate converts an accumulator value (scale accScale) to the layer's
// output scale through the activation, using integer arithmetic only.
func (l *Layer) activate(acc int64) int64 {
	switch l.Act {
	case nn.ReLU:
		if acc < 0 {
			return 0
		}
		return rescale(acc, l.accScale, l.outScale)
	case nn.Tanh, nn.Sigmoid:
		return l.lookup(acc)
	default: // Linear
		return rescale(acc, l.accScale, l.outScale)
	}
}

// rescale converts v from scale `from` to scale `to` with rounding, in
// integer arithmetic. Callers guarantee |v|·to stays within int64 (enforced
// by the bounded scales in Config).
func rescale(v, from, to int64) int64 {
	if from == to {
		return v
	}
	n := v * to
	if n >= 0 {
		return (n + from/2) / from
	}
	return (n - from/2) / from
}

// lookup evaluates the layer's LUT at accumulator value acc with linear
// interpolation, clamping outside the covered range (where tanh/sigmoid are
// saturated anyway).
func (l *Layer) lookup(acc int64) int64 {
	if acc <= l.tblMin {
		return l.table[0]
	}
	if acc >= l.tblMax {
		return l.table[len(l.table)-1]
	}
	span := l.tblMax - l.tblMin
	num := (acc - l.tblMin) * int64(len(l.table)-1)
	idx := num / span
	rem := num % span
	lo := l.table[idx]
	hi := l.table[idx+1]
	return lo + (hi-lo)*rem/span
}

// QuantizeInput converts float inputs to fixed point at InputScale, writing
// into dst (allocated when nil).
func (p *Program) QuantizeInput(in []float64, dst []int64) []int64 {
	if dst == nil {
		dst = make([]int64, len(in))
	}
	for i, x := range in {
		dst[i] = roundToInt(x * float64(p.InputScale))
	}
	return dst
}

// DequantizeOutput converts fixed-point outputs at OutputScale to floats,
// writing into dst (allocated when nil).
func (p *Program) DequantizeOutput(out []int64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(out))
	}
	for i, v := range out {
		dst[i] = float64(v) / float64(p.OutputScale)
	}
	return dst
}

// InferFloat is a convenience wrapper: float in, float out, with
// quantize/dequantize at the edges. The interior remains integer-only.
func (p *Program) InferFloat(in []float64) []float64 {
	qi := p.QuantizeInput(in, nil)
	qo := make([]int64, p.OutputSize())
	p.Infer(qi, qo)
	return p.DequantizeOutput(qo, nil)
}

// AccuracyLoss measures the mean absolute deviation between the float
// network and its quantized program over the given inputs, normalized by the
// observed float output range — the quantity plotted in Figure 7. It returns
// 0 for no inputs.
func AccuracyLoss(net *nn.Network, p *Program, inputs [][]float64) float64 {
	if len(inputs) == 0 {
		return 0
	}
	oMin, oMax := math.Inf(1), math.Inf(-1)
	var sum float64
	var count int
	fo := make([]float64, net.OutputSize())
	for _, in := range inputs {
		net.Forward(in, fo)
		qo := p.InferFloat(in)
		for i := range fo {
			sum += math.Abs(fo[i] - qo[i])
			count++
			if fo[i] < oMin {
				oMin = fo[i]
			}
			if fo[i] > oMax {
				oMax = fo[i]
			}
		}
	}
	rangeOut := oMax - oMin
	if rangeOut < 1e-9 {
		rangeOut = 1
	}
	return sum / float64(count) / rangeOut
}
