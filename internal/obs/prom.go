package obs

import (
	"bufio"
	"bytes"
	"io"
	"math"
	"strconv"
)

// WritePrometheus serializes the registry in Prometheus text exposition
// format (version 0.0.4). Output order is deterministic: families sorted by
// name, series sorted by rendered labels — byte-identical across same-seed
// runs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(f.help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.sortedSeries() {
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, "", s.labels, "", float64(s.counter.Value()))
			case kindGauge:
				writeSample(bw, f.name, "", s.labels, "", s.gauge.Value())
			case kindHistogram:
				writeHistogram(bw, f.name, s)
			}
		}
	}
	return bw.Flush()
}

// PrometheusText returns the exposition as a byte slice.
func (r *Registry) PrometheusText() []byte {
	var b bytes.Buffer
	r.WritePrometheus(&b)
	return b.Bytes()
}

// writeSample emits one `name{labels,extra} value` line. suffix is appended
// to the metric name (_bucket, _sum, _count); extra is an extra label pair
// already rendered (the le="…" of buckets).
func writeSample(bw *bufio.Writer, name, suffix, labels, extra string, v float64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if labels != "" || extra != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if labels != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatValue(v))
	bw.WriteByte('\n')
}

// writeHistogram emits the cumulative _bucket series plus _sum and _count.
func writeHistogram(bw *bufio.Writer, name string, s *series) {
	bounds, counts, sum := s.hist.snapshot()
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		writeSample(bw, name, "_bucket", s.labels, `le="`+formatValue(b)+`"`, float64(cum))
	}
	cum += counts[len(counts)-1]
	writeSample(bw, name, "_bucket", s.labels, `le="+Inf"`, float64(cum))
	writeSample(bw, name, "_sum", s.labels, "", sum)
	writeSample(bw, name, "_count", s.labels, "", float64(cum))
}

// formatValue renders a float the way Prometheus clients do. Integral
// values print as integers (counters stay human-diffable instead of
// drifting into scientific notation past 1e6).
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
