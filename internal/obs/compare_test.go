package obs

import "testing"

func TestCompareWindowsSumAndMean(t *testing.T) {
	reg := NewRegistry()
	sc := New(reg, nil)
	c1 := sc.Counter("q_total", "queries", Label{Key: "host", Value: "0"})
	c2 := sc.Counter("q_total", "queries", Label{Key: "host", Value: "1"})
	g := sc.Gauge("depth", "queue depth")

	fr := NewFlightRecorder(0)
	// Before window [0,4s]: c1 at 10/s, c2 at 20/s, gauge at 5.
	// After window [4s,8s]: c1 at 5/s, c2 at 10/s, gauge at 9.
	for s := int64(0); s <= 8; s++ {
		if s > 0 {
			if s <= 4 {
				c1.Add(10)
				c2.Add(20)
				g.Set(5)
			} else {
				c1.Add(5)
				c2.Add(10)
				g.Set(9)
			}
		}
		fr.Sample(reg, s*1e9)
	}
	// Interior windows: [1s,4s] holds only the 10/s//20/s/5 samples, [5s,8s]
	// only the 5/s//10/s/9 ones (window boundaries include their samples).
	before := TimeWindow{From: 1e9, To: 4e9}
	after := TimeWindow{From: 5e9, To: 8e9}

	sum := fr.CompareWindows(before, after, AggSum, func(d SeriesDelta) bool { return d.Cumulative })
	if sum.N != 2 {
		t.Fatalf("cumulative series matched = %d, want 2", sum.N)
	}
	if sum.Before != 30 || sum.After != 15 {
		t.Errorf("summed rates = %g -> %g, want 30 -> 15", sum.Before, sum.After)
	}
	if r := sum.Ratio(); r != 0.5 {
		t.Errorf("Ratio = %g, want 0.5", r)
	}

	mean := fr.CompareWindows(before, after, AggMean, func(d SeriesDelta) bool { return !d.Cumulative })
	if mean.N != 1 {
		t.Fatalf("level series matched = %d, want 1", mean.N)
	}
	if mean.Before != 5 || mean.After != 9 {
		t.Errorf("level means = %g -> %g, want 5 -> 9", mean.Before, mean.After)
	}

	// A selector nobody matches is inconclusive, not zero-valued evidence.
	none := fr.CompareWindows(before, after, AggSum, func(SeriesDelta) bool { return false })
	if none.N != 0 || none.Ratio() != 0 {
		t.Errorf("empty selection: %+v", none)
	}
}

func TestCompareWindowsNilRecorder(t *testing.T) {
	var fr *FlightRecorder
	got := fr.CompareWindows(TimeWindow{0, 1}, TimeWindow{1, 2}, AggSum, nil)
	if got.N != 0 || got.Before != 0 || got.After != 0 {
		t.Errorf("nil recorder must return the zero DeltaStat: %+v", got)
	}
}

func TestScopeLabels(t *testing.T) {
	if got := Nop().Labels(); len(got) != 0 {
		t.Errorf("no-op scope labels = %v, want none", got)
	}
	sc := New(NewRegistry(), nil).With(Label{Key: "host", Value: "3"}, Label{Key: "az", Value: "a"})
	got := sc.Labels()
	if len(got) != 2 || got[0] != (Label{Key: "host", Value: "3"}) || got[1] != (Label{Key: "az", Value: "a"}) {
		t.Fatalf("Labels = %v", got)
	}
	got[0].Value = "mutated"
	if sc.Labels()[0].Value != "3" {
		t.Error("Labels must return a copy, not the backing slice")
	}
}
