package obs

import "fmt"

// This file implements deterministic telemetry folding for the parallel
// experiment harness: each worker runs with a private Registry and Tracer
// (the simulation stack itself is single-threaded per engine), and the
// harness merges them into the caller's exporters in a fixed order — job
// registration order, never completion order. Because every fold below is
// order-deterministic, a parallel run exports byte-identical Prometheus text
// and trace JSON to a serial run of the same jobs.

// Merge folds src into r: counters add, gauges take src's value when src has
// observed one (last-merged-wins, mirroring last-write-wins of a shared
// serial registry), histograms add bucket counts and sums. Families or
// series missing from r are created; a name registered with different kinds
// panics, exactly like Registry lookups. src is left unchanged; callers must
// not merge a registry into itself.
func (r *Registry) Merge(src *Registry) {
	if src == nil {
		return
	}
	if src == r {
		panic("obs: cannot merge a registry into itself")
	}
	// Snapshot src under its own lock, then fold under r's: the two locks
	// are never held together in the other order, so this cannot deadlock.
	src.mu.Lock()
	fams := make([]*family, 0, len(src.families))
	for _, f := range src.families {
		fams = append(fams, f)
	}
	src.mu.Unlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range fams {
		for key, s := range f.series {
			dst := r.lookupRendered(f.name, f.help, f.kind, key)
			switch f.kind {
			case kindCounter:
				if s.counter != nil {
					if dst.counter == nil {
						dst.counter = &Counter{}
					}
					dst.counter.Add(s.counter.Value())
				}
			case kindGauge:
				if s.gauge != nil {
					if dst.gauge == nil {
						dst.gauge = &Gauge{}
					}
					dst.gauge.Set(s.gauge.Value())
				}
			case kindHistogram:
				if s.hist != nil {
					if dst.hist == nil {
						bounds, _, _ := s.hist.snapshot()
						dst.hist = newHistogram(append([]float64(nil), bounds...))
					}
					dst.hist.merge(s.hist)
				}
			}
		}
	}
}

// lookupRendered is Registry.lookup keyed by an already-rendered label
// string. Caller holds r.mu.
func (r *Registry) lookupRendered(name, help string, kind metricKind, key string) *series {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, merged as %s", name, f.kind, kind))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		f.series[key] = s
	}
	return s
}

// merge folds src's buckets, sum and summary into h. Bucket bounds must
// match (both sides come from the same instrument definitions).
func (h *Histogram) merge(src *Histogram) {
	sBounds, sCounts, sSum := src.snapshot()
	sSummary := src.Summary()
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.bounds) != len(sBounds) {
		panic(fmt.Sprintf("obs: merging histograms with %d vs %d buckets", len(h.bounds), len(sBounds)))
	}
	for i, b := range h.bounds {
		if b != sBounds[i] {
			panic("obs: merging histograms with different bucket bounds")
		}
	}
	for i, c := range sCounts {
		h.counts[i] += c
	}
	h.sum += sSum
	h.summary.Merge(sSummary)
}

// Merge folds src's events into t in src's emission order, as if each had
// been emitted against t. Ring eviction applies as usual, so a bounded
// destination keeps the most recent events of the concatenation. Evictions
// src already performed carry over into t's count, so after folding every
// per-job tracer the destination reports exactly the evictions a shared
// serial tracer would have (total emitted minus capacity). The fold updates
// only t's internal count, not a bound liteflow_trace_evicted_total counter:
// the per-job registries carry the per-job counter values and Registry.Merge
// sums those, so adding them here too would double-count.
func (t *Tracer) Merge(src *Tracer) {
	if t == nil || src == nil {
		return
	}
	if src == t {
		panic("obs: cannot merge a tracer into itself")
	}
	for _, e := range src.Events() {
		t.Emit(e)
	}
	if n := src.Evicted(); n > 0 {
		t.mu.Lock()
		t.evicted += n
		t.mu.Unlock()
	}
}
