package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/obs"
)

// TestSpanLifecycleTree checks the core span contract: a root opened before
// its version exists buffers children, and End flushes the whole tree with
// the late-assigned version stamped as the Chrome pid, children on their
// member tracks, and the stage/e2e histograms fed.
func TestSpanLifecycleTree(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	sc := obs.New(reg, tr)
	st := obs.NewSpanTracer(sc)

	sp := st.Root("snapshot", "fleet_rollout", 1000)
	sp.Child("pool", 1000, 4000)
	sp.SetVersion(17)
	sp.Child("build", 5000, 0)
	sp.ChildMember("member_install", 2, 5000, 1500)
	sp.Mark("install_deferred", 6000, "queued", 3)
	sp.End(9000)

	ev := tr.Events()
	if len(ev) != 5 {
		t.Fatalf("got %d events, want 5 (root + 4 children): %+v", len(ev), ev)
	}
	root := ev[0]
	if root.Name != "fleet_rollout" || root.Pid != 17 || root.Dur != 8000 {
		t.Fatalf("root event wrong: %+v", root)
	}
	for i, e := range ev {
		if e.Pid != 17 {
			t.Fatalf("event %d missing version pid: %+v", i, e)
		}
	}
	var member obs.Event
	for _, e := range ev {
		if e.Name == "member_install" {
			member = e
		}
	}
	if member.Tid != 3 {
		t.Fatalf("member child not on member track: %+v", member)
	}

	if got := sc.Histogram("liteflow_snapshot_e2e_ns", "", obs.DurationBuckets()).Count(); got != 1 {
		t.Fatalf("e2e histogram count = %d, want 1", got)
	}
	h := sc.Histogram("liteflow_snapshot_stage_ns", "", obs.DurationBuckets(),
		obs.Label{Key: "stage", Value: "pool"})
	if h.Count() != 1 || h.Sum() != 4000 {
		t.Fatalf("pool stage histogram wrong: count=%d sum=%g", h.Count(), h.Sum())
	}

	// The flushed tree must render as valid Chrome JSON with the pid set.
	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace: %v\n%s", err, b.String())
	}
	if doc.TraceEvents[0]["pid"] != 17.0 {
		t.Fatalf("chrome pid = %v, want 17", doc.TraceEvents[0]["pid"])
	}
}

// TestSpanFailedAndDiscard: EndFailed flushes without feeding the e2e
// histogram; Discard drops everything.
func TestSpanFailedAndDiscard(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	st := obs.NewSpanTracer(obs.New(reg, tr))

	sp := st.Root("snapshot", "snapshot_lifecycle", 0)
	sp.Child("pool", 0, 100)
	sp.EndFailed(200, "abandoned")
	if tr.Len() != 2 {
		t.Fatalf("failed root did not flush: %d events", tr.Len())
	}
	if got := reg.Histogram("liteflow_snapshot_e2e_ns", "", obs.DurationBuckets()).Count(); got != 0 {
		t.Fatalf("failed lifecycle fed the e2e histogram (count=%d)", got)
	}
	// Post-end operations are inert.
	sp.Child("late", 300, 1)
	sp.End(400)
	if tr.Len() != 2 {
		t.Fatal("ended span accepted more work")
	}

	tr.Reset()
	dp := st.Root("snapshot", "snapshot_lifecycle", 0)
	dp.Child("pool", 0, 100)
	dp.Discard()
	if tr.Len() != 0 {
		t.Fatalf("discarded span emitted %d events", tr.Len())
	}
}

// TestSpanNilSafety: nil tracers and spans are inert, matching the package's
// no-op conventions.
func TestSpanNilSafety(t *testing.T) {
	var st *obs.SpanTracer
	sp := st.Root("snapshot", "x", 0)
	sp.Child("pool", 0, 1)
	sp.SetVersion(1)
	sp.Mark("m", 0, "k", 1)
	sp.End(10)
	st.Lone("snapshot", "member_install", 1, 0, 0, 10)

	// A span tracer over a metrics-only scope must feed histograms but emit
	// no events (and not accumulate buffered children forever).
	reg := obs.NewRegistry()
	mst := obs.NewSpanTracer(obs.New(reg, nil))
	msp := mst.Root("snapshot", "x", 0)
	msp.Child("pool", 0, 50)
	msp.End(100)
	if got := reg.Histogram("liteflow_snapshot_e2e_ns", "", obs.DurationBuckets()).Count(); got != 1 {
		t.Fatalf("metrics-only span lost the e2e observation (count=%d)", got)
	}
}

// TestSpanLone: immediate emission with version and member track, no root
// required.
func TestSpanLone(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(16)
	st := obs.NewSpanTracer(obs.New(reg, tr))
	st.Lone("snapshot", "member_install", 9, 1, 500, 700)
	ev := tr.Events()
	if len(ev) != 1 || ev[0].Pid != 9 || ev[0].Tid != 2 || ev[0].Dur != 700 {
		t.Fatalf("lone span wrong: %+v", ev)
	}
	h := reg.Histogram("liteflow_snapshot_stage_ns", "", obs.DurationBuckets(),
		obs.Label{Key: "stage", Value: "member_install"})
	if h.Count() != 1 {
		t.Fatal("lone span did not feed the stage histogram")
	}
}
