package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/liteflow-sim/liteflow/internal/stats"
)

// Counter is a monotonically increasing integer metric. The nil counter and
// the zero value are both usable (unregistered); all methods are
// goroutine-safe.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increases the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution metric. It reuses stats.Summary
// for mean/min/max/stddev, adding cumulative bucket counts and an exact sum
// for the Prometheus exposition. All methods are goroutine-safe.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds; +Inf implicit
	counts  []int64   // len(bounds)+1, last is the +Inf bucket
	sum     float64
	summary stats.Summary
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.summary.Add(v)
	h.mu.Unlock()
}

// ObserveN records n identical samples in one locked update — O(1) in n.
// QueryModelBatch uses it so telemetry for an n-query batch costs the same
// as for a single query. Bucket counts and the exact sum match n Observe
// calls; the running summary matches up to float association (stats.AddN).
func (h *Histogram) ObserveN(v float64, n int64) {
	if h == nil || n <= 0 {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i] += n
	h.sum += v * float64(n)
	h.summary.AddN(v, int(n))
	h.mu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var n int64
	for _, c := range h.counts {
		n += c
	}
	return n
}

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Summary returns a copy of the running summary (mean/std/min/max).
func (h *Histogram) Summary() stats.Summary {
	if h == nil {
		return stats.Summary{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.summary
}

// snapshot copies bucket state under the lock for export.
func (h *Histogram) snapshot() (bounds []float64, counts []int64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bounds, append([]int64(nil), h.counts...), h.sum
}

// ExpBuckets returns n ascending bucket bounds starting at start and growing
// by factor — the usual shape for duration histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets requires start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets returns the default bounds for nanosecond duration
// histograms: 1 µs … 10 s in decades.
func DurationBuckets() []float64 { return ExpBuckets(1e3, 10, 8) }

// QueryBuckets returns the default bounds for per-query inference-cost
// histograms, whose values sit µs-and-below where DurationBuckets is too
// coarse: 250 ns … 512 µs, doubling.
func QueryBuckets() []float64 { return ExpBuckets(250, 2, 12) }

// metricKind discriminates registry families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one label combination of a family.
type series struct {
	labels  string // rendered `k="v",…` form, "" for unlabeled
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups every label combination of one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series
}

// Registry holds named metric families. It is goroutine-safe; the zero value
// is not usable — construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels serializes ordered label pairs in Prometheus form.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup finds or creates the series for name+labels, enforcing kind
// consistency. A kind mismatch is a programming error and panics. The caller
// must hold r.mu.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) *series {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	key := renderLabels(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter for name+labels, registering it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindCounter, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge for name+labels, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns the histogram for name+labels, registering it on first
// use. The bounds of the first registration win; later calls with different
// bounds receive the existing instrument.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindHistogram, labels)
	if s.hist == nil {
		s.hist = newHistogram(append([]float64(nil), bounds...))
	}
	return s.hist
}

// sortedFamilies returns families ordered by name, each with its series
// ordered by label key — the deterministic export order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedSeries returns the family's series in deterministic order.
func (f *family) sortedSeries() []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}
