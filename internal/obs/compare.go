package obs

// This file implements the window-comparison helper on top of the flight
// recorder's Delta primitive: CompareWindows reduces the per-series deltas of
// a before/after window pair to one aggregate statistic over a caller-chosen
// subset of series. It is the building block a canary gate needs — "sum the
// query rates of this member's series before and after the install, and give
// me the ratio" — without the caller re-implementing window slicing, rate
// derivation, or series iteration order. Like Delta, the reduction iterates
// series in sorted-name order, so aggregates are byte-deterministic across
// same-seed runs.

// AggMode selects how CompareWindows combines matching series.
type AggMode int

const (
	// AggSum adds the per-series window statistics — the natural reduction
	// for cumulative rates (total queries/s across a member's series).
	AggSum AggMode = iota
	// AggMean averages the per-series window statistics — the natural
	// reduction for level series (mean p99 estimate across members).
	AggMean
)

// DeltaStat is the aggregate of one window comparison: the combined Before
// and After statistics of every matching series, and how many series matched.
// N == 0 means no series had enough data in both windows — callers should
// treat the comparison as inconclusive rather than as a zero reading.
type DeltaStat struct {
	Before, After float64
	N             int
}

// Ratio returns After/Before, or 0 when Before is 0 (no rate to compare
// against — callers must check N and Before before trusting it).
func (d DeltaStat) Ratio() float64 {
	if d.Before == 0 {
		return 0
	}
	return d.After / d.Before
}

// CompareWindows reduces Delta(before, after) over the series accepted by
// sel (nil accepts every series) using the given aggregation mode. Cumulative
// series contribute rates per second, level series contribute window means —
// mixing kinds under one selector is legal but rarely meaningful, so
// selectors usually also test SeriesDelta.Cumulative. The nil recorder
// returns the zero DeltaStat.
func (fr *FlightRecorder) CompareWindows(before, after TimeWindow, mode AggMode, sel func(SeriesDelta) bool) DeltaStat {
	if fr == nil {
		return DeltaStat{}
	}
	var out DeltaStat
	for _, d := range fr.Delta(before, after) {
		if sel != nil && !sel(d) {
			continue
		}
		out.Before += d.Before
		out.After += d.After
		out.N++
	}
	if mode == AggMean && out.N > 0 {
		out.Before /= float64(out.N)
		out.After /= float64(out.N)
	}
	return out
}
