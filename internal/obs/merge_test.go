package obs

import (
	"strings"
	"testing"
)

// populate records the same instrument shapes a worker scope would: a
// counter, a gauge and a histogram, all with a label distinguishing the
// logical job.
func populate(r *Registry, job string, base float64) {
	c := r.Counter("jobs_total", "jobs", Label{Key: "job", Value: job})
	c.Add(int64(base))
	g := r.Gauge("last_value", "last observed", Label{Key: "job", Value: job})
	g.Set(base * 2)
	h := r.Histogram("latency_ns", "latency", ExpBuckets(10, 10, 4), Label{Key: "job", Value: job})
	h.Observe(base)
	h.Observe(base * 3)
}

func TestRegistryMergeMatchesSequential(t *testing.T) {
	// Sequential reference: everything recorded against one registry.
	seq := NewRegistry()
	populate(seq, "a", 5)
	populate(seq, "b", 50)
	populate(seq, "a", 7) // second batch against the same series

	// Parallel shape: three private registries merged in job order.
	parts := []*Registry{NewRegistry(), NewRegistry(), NewRegistry()}
	populate(parts[0], "a", 5)
	populate(parts[1], "b", 50)
	populate(parts[2], "a", 7)
	dst := NewRegistry()
	for _, p := range parts {
		dst.Merge(p)
	}

	want := string(seq.PrometheusText())
	got := string(dst.PrometheusText())
	if want != got {
		t.Fatalf("merged export differs from sequential export:\n--- sequential ---\n%s\n--- merged ---\n%s", want, got)
	}
	if !strings.Contains(got, "jobs_total") {
		t.Fatalf("export missing expected family:\n%s", got)
	}
}

func TestRegistryMergeSummaries(t *testing.T) {
	seq := NewRegistry()
	hs := seq.Histogram("h", "h", ExpBuckets(1, 2, 8))
	for i := 1; i <= 10; i++ {
		hs.Observe(float64(i))
	}

	a, b := NewRegistry(), NewRegistry()
	ha := a.Histogram("h", "h", ExpBuckets(1, 2, 8))
	hb := b.Histogram("h", "h", ExpBuckets(1, 2, 8))
	for i := 1; i <= 5; i++ {
		ha.Observe(float64(i))
	}
	for i := 6; i <= 10; i++ {
		hb.Observe(float64(i))
	}
	dst := NewRegistry()
	dst.Merge(a)
	dst.Merge(b)
	hd := dst.Histogram("h", "h", ExpBuckets(1, 2, 8))

	if hd.Count() != hs.Count() {
		t.Fatalf("count: got %d want %d", hd.Count(), hs.Count())
	}
	if hd.Sum() != hs.Sum() {
		t.Fatalf("sum: got %v want %v", hd.Sum(), hs.Sum())
	}
	gs, ws := hd.Summary(), hs.Summary()
	if gs.N() != ws.N() || gs.Min() != ws.Min() || gs.Max() != ws.Max() {
		t.Fatalf("summary n/min/max: got %v want %v", gs, ws)
	}
	if d := gs.Mean() - ws.Mean(); d > 1e-9 || d < -1e-9 {
		t.Fatalf("summary mean: got %v want %v", gs.Mean(), ws.Mean())
	}
}

func TestRegistryMergeSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic merging a registry into itself")
		}
	}()
	r := NewRegistry()
	r.Merge(r)
}

func TestTracerMergePreservesOrder(t *testing.T) {
	seq := NewTracer(16)
	seq.Emit(Event{Name: "e1"})
	seq.Emit(Event{Name: "e2"})
	seq.Emit(Event{Name: "e3"})

	a, b := NewTracer(16), NewTracer(16)
	a.Emit(Event{Name: "e1"})
	b.Emit(Event{Name: "e2"})
	b.Emit(Event{Name: "e3"})
	dst := NewTracer(16)
	dst.Merge(a)
	dst.Merge(b)

	want, got := seq.Events(), dst.Events()
	if len(want) != len(got) {
		t.Fatalf("event count: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Name != got[i].Name {
			t.Fatalf("event %d: got %q want %q", i, got[i].Name, want[i].Name)
		}
	}
}
