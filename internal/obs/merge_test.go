package obs

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// populate records the same instrument shapes a worker scope would: a
// counter, a gauge and a histogram, all with a label distinguishing the
// logical job.
func populate(r *Registry, job string, base float64) {
	c := r.Counter("jobs_total", "jobs", Label{Key: "job", Value: job})
	c.Add(int64(base))
	g := r.Gauge("last_value", "last observed", Label{Key: "job", Value: job})
	g.Set(base * 2)
	h := r.Histogram("latency_ns", "latency", ExpBuckets(10, 10, 4), Label{Key: "job", Value: job})
	h.Observe(base)
	h.Observe(base * 3)
}

func TestRegistryMergeMatchesSequential(t *testing.T) {
	// Sequential reference: everything recorded against one registry.
	seq := NewRegistry()
	populate(seq, "a", 5)
	populate(seq, "b", 50)
	populate(seq, "a", 7) // second batch against the same series

	// Parallel shape: three private registries merged in job order.
	parts := []*Registry{NewRegistry(), NewRegistry(), NewRegistry()}
	populate(parts[0], "a", 5)
	populate(parts[1], "b", 50)
	populate(parts[2], "a", 7)
	dst := NewRegistry()
	for _, p := range parts {
		dst.Merge(p)
	}

	want := string(seq.PrometheusText())
	got := string(dst.PrometheusText())
	if want != got {
		t.Fatalf("merged export differs from sequential export:\n--- sequential ---\n%s\n--- merged ---\n%s", want, got)
	}
	if !strings.Contains(got, "jobs_total") {
		t.Fatalf("export missing expected family:\n%s", got)
	}
}

func TestRegistryMergeSummaries(t *testing.T) {
	seq := NewRegistry()
	hs := seq.Histogram("h", "h", ExpBuckets(1, 2, 8))
	for i := 1; i <= 10; i++ {
		hs.Observe(float64(i))
	}

	a, b := NewRegistry(), NewRegistry()
	ha := a.Histogram("h", "h", ExpBuckets(1, 2, 8))
	hb := b.Histogram("h", "h", ExpBuckets(1, 2, 8))
	for i := 1; i <= 5; i++ {
		ha.Observe(float64(i))
	}
	for i := 6; i <= 10; i++ {
		hb.Observe(float64(i))
	}
	dst := NewRegistry()
	dst.Merge(a)
	dst.Merge(b)
	hd := dst.Histogram("h", "h", ExpBuckets(1, 2, 8))

	if hd.Count() != hs.Count() {
		t.Fatalf("count: got %d want %d", hd.Count(), hs.Count())
	}
	if hd.Sum() != hs.Sum() {
		t.Fatalf("sum: got %v want %v", hd.Sum(), hs.Sum())
	}
	gs, ws := hd.Summary(), hs.Summary()
	if gs.N() != ws.N() || gs.Min() != ws.Min() || gs.Max() != ws.Max() {
		t.Fatalf("summary n/min/max: got %v want %v", gs, ws)
	}
	if d := gs.Mean() - ws.Mean(); d > 1e-9 || d < -1e-9 {
		t.Fatalf("summary mean: got %v want %v", gs.Mean(), ws.Mean())
	}
}

func TestRegistryMergeSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic merging a registry into itself")
		}
	}()
	r := NewRegistry()
	r.Merge(r)
}

func TestTracerMergePreservesOrder(t *testing.T) {
	seq := NewTracer(16)
	seq.Emit(Event{Name: "e1"})
	seq.Emit(Event{Name: "e2"})
	seq.Emit(Event{Name: "e3"})

	a, b := NewTracer(16), NewTracer(16)
	a.Emit(Event{Name: "e1"})
	b.Emit(Event{Name: "e2"})
	b.Emit(Event{Name: "e3"})
	dst := NewTracer(16)
	dst.Merge(a)
	dst.Merge(b)

	want, got := seq.Events(), dst.Events()
	if len(want) != len(got) {
		t.Fatalf("event count: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Name != got[i].Name {
			t.Fatalf("event %d: got %q want %q", i, got[i].Name, want[i].Name)
		}
	}
}

// TestTracerMergeFoldsEvictions: after folding per-job tracers, the
// destination must report exactly the evictions a shared serial tracer would
// have — total emitted minus capacity — so liteflow_trace_evicted_total stays
// byte-identical between serial and parallel runs.
func TestTracerMergeFoldsEvictions(t *testing.T) {
	const cap = 8
	emit := func(tr *Tracer, base, n int) {
		for i := 0; i < n; i++ {
			tr.Emit(Event{At: int64(base + i), Name: "e"})
		}
	}
	serial := NewTracer(cap)
	emit(serial, 0, 12)
	emit(serial, 100, 5)

	a, b := NewTracer(cap), NewTracer(cap)
	emit(a, 0, 12) // overflows privately: 4 evicted
	emit(b, 100, 5)
	dst := NewTracer(cap)
	dst.Merge(a)
	dst.Merge(b)

	if dst.Evicted() != serial.Evicted() {
		t.Fatalf("evicted: merged %d, serial %d", dst.Evicted(), serial.Evicted())
	}
	want, got := serial.Events(), dst.Events()
	if len(want) != len(got) {
		t.Fatalf("event count: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].At != got[i].At {
			t.Fatalf("event %d: got At=%d want At=%d", i, got[i].At, want[i].At)
		}
	}
}

// combine returns a fresh registry holding a ⊕ b (merge both into an empty
// one, in order) — the binary operation whose associativity the property
// test below checks.
func combine(a, b *Registry) *Registry {
	out := NewRegistry()
	out.Merge(a)
	out.Merge(b)
	return out
}

// randomPart populates r (and mirror, when non-nil) with a random workload:
// counter adds and histogram observations on shared series, plus one gauge
// owned exclusively by this part (one-writer-per-gauge is the harness
// invariant that makes gauge merging order-insensitive). Values are integers,
// which float64 represents exactly, so histogram sums are associative at the
// bit level.
func randomPart(rng *rand.Rand, r, mirror *Registry, part int) {
	apply := func(f func(*Registry)) {
		f(r)
		if mirror != nil {
			f(mirror)
		}
	}
	nOps := 1 + rng.Intn(8)
	for i := 0; i < nOps; i++ {
		switch rng.Intn(3) {
		case 0:
			v := int64(rng.Intn(1000))
			lbl := Label{Key: "job", Value: string(rune('a' + rng.Intn(3)))}
			apply(func(reg *Registry) { reg.Counter("ops_total", "", lbl).Add(v) })
		case 1:
			v := float64(rng.Intn(100000))
			apply(func(reg *Registry) {
				reg.Histogram("lat_ns", "", ExpBuckets(10, 10, 5)).Observe(v)
			})
		default:
			v := float64(rng.Intn(1000))
			lbl := Label{Key: "part", Value: strconv.Itoa(part)}
			apply(func(reg *Registry) { reg.Gauge("level", "", lbl).Set(v) })
		}
	}
}

// TestRegistryMergeProperty is the satellite property test: across random
// workloads, merging registries is (1) order-insensitive — any permutation of
// parts exports identical bytes, (2) associative — left and right fold
// groupings export identical bytes, and (3) faithful — both match the
// sequential reference that absorbed every operation directly. Holds for
// counters and gauges outright (gauges under the one-writer-per-series
// partitioning the harness guarantees) and bit-identically for histogram
// sums because the workload uses exactly-representable values.
func TestRegistryMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 40; iter++ {
		k := 2 + rng.Intn(4)
		parts := make([]*Registry, k)
		ref := NewRegistry()
		for j := range parts {
			parts[j] = NewRegistry()
			randomPart(rng, parts[j], ref, j)
		}
		want := string(ref.PrometheusText())

		// (1) order-insensitivity over a random permutation.
		perm := rng.Perm(k)
		shuffled := NewRegistry()
		for _, j := range perm {
			shuffled.Merge(parts[j])
		}
		if got := string(shuffled.PrometheusText()); got != want {
			t.Fatalf("iter %d: permuted merge %v differs from sequential:\n--- want\n%s--- got\n%s",
				iter, perm, want, got)
		}

		// (2) associativity: ((p0 ⊕ p1) ⊕ p2) … vs (p0 ⊕ (p1 ⊕ (p2 ⊕ …))).
		left := parts[0]
		for j := 1; j < k; j++ {
			left = combine(left, parts[j])
		}
		right := parts[k-1]
		for j := k - 2; j >= 0; j-- {
			right = combine(parts[j], right)
		}
		lt, rt := string(left.PrometheusText()), string(right.PrometheusText())
		if lt != rt {
			t.Fatalf("iter %d: merge is not associative:\n--- left fold\n%s--- right fold\n%s", iter, lt, rt)
		}
		// (3) faithfulness to the sequential reference.
		if lt != want {
			t.Fatalf("iter %d: folded merge differs from sequential reference:\n--- want\n%s--- got\n%s",
				iter, want, lt)
		}
	}
}
