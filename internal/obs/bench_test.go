package obs_test

import (
	"testing"

	"github.com/liteflow-sim/liteflow/internal/obs"
)

// The QueryModel fast path touches one counter and (when tracing) one event
// emit per query. These benchmarks guard the acceptance requirement that the
// no-op scope adds no allocations to that path.

func BenchmarkNopScopeFastPath(b *testing.B) {
	sc := obs.Nop()
	queries := sc.Counter("liteflow_core_queries_total", "")
	hits := sc.Counter("liteflow_core_flow_cache_hits_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		queries.Inc()
		hits.Inc()
		sc.Event1("flowcache", "hit", int64(i), "flow", 1)
	}
}

func BenchmarkEnabledScopeFastPath(b *testing.B) {
	sc := obs.New(obs.NewRegistry(), obs.NewTracer(1<<12))
	queries := sc.Counter("liteflow_core_queries_total", "")
	hits := sc.Counter("liteflow_core_flow_cache_hits_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		queries.Inc()
		hits.Inc()
		sc.Event1("flowcache", "hit", int64(i), "flow", 1)
	}
}

// TestNopScopeFastPathAllocs enforces the zero-allocation contract in the
// regular test run, not just under -bench.
func TestNopScopeFastPathAllocs(t *testing.T) {
	sc := obs.Nop()
	queries := sc.Counter("liteflow_core_queries_total", "")
	h := sc.Histogram("liteflow_core_stall_ns", "", obs.DurationBuckets())
	at := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		queries.Inc()
		h.Observe(1e4)
		sc.Event1("flowcache", "hit", at, "flow", 1)
		sc.Span1("snapshot", "stall", at, 10, "flow", 1)
		at++
	})
	if allocs != 0 {
		t.Fatalf("no-op scope fast path allocates %.1f times per op, want 0", allocs)
	}
}
