package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// Arg is one key/value argument attached to a trace event. When Str is
// non-empty the value is a string, otherwise Val.
type Arg struct {
	Key string
	Val int64
	Str string
}

// Event is one structured trace record. At is virtual simulation time in
// nanoseconds; Dur > 0 marks a complete (span) event covering [At, At+Dur).
// Events carry at most two arguments so emission never allocates.
//
// Pid and Tid map onto the Chrome trace-event process/thread IDs and give
// events a place in the flame-graph hierarchy: the span tracer sets Pid to
// the snapshot version (epoch) and Tid to member index + 1, so a whole fleet
// rollout of one version groups under a single process row with one thread
// track per member (tid 0 is the fleet-wide/controller track). Events that
// predate span tracing leave both zero.
type Event struct {
	At    int64
	Dur   int64
	Pid   int64
	Tid   int64
	Cat   string
	Name  string
	Args  [2]Arg
	NArgs int
}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 1 << 16

// Tracer is a bounded ring buffer of events. When full, the oldest event is
// evicted — recent history wins, and because eviction is deterministic the
// exported bytes stay reproducible. A nil Tracer is a valid no-op.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	start   int
	n       int
	evicted int64
	// evictedCounter mirrors evicted into a registry counter
	// (liteflow_trace_evicted_total) when the tracer is bound to one via
	// New, so silent ring overflow is visible in /metrics.
	evictedCounter *Counter
	// onFirstEvict fires once, the first time this tracer evicts — the
	// CLIs use it to warn on stderr the moment history starts being lost.
	onFirstEvict func()
	evictWarned  bool
}

// NewTracer returns a tracer retaining up to capacity events
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Emit records one event, evicting the oldest when the ring is full.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	var firstEvict func()
	if t.n < len(t.buf) {
		t.buf[(t.start+t.n)%len(t.buf)] = e
		t.n++
	} else {
		t.buf[t.start] = e
		t.start = (t.start + 1) % len(t.buf)
		t.evicted++
		t.evictedCounter.Inc()
		if !t.evictWarned {
			t.evictWarned = true
			firstEvict = t.onFirstEvict
		}
	}
	t.mu.Unlock()
	if firstEvict != nil {
		firstEvict()
	}
}

// bindEvictedCounter mirrors the eviction count into c from now on, seeding
// it with evictions that happened before binding.
func (t *Tracer) bindEvictedCounter(c *Counter) {
	if t == nil || c == nil {
		return
	}
	t.mu.Lock()
	t.evictedCounter = c
	c.Add(t.evicted)
	t.mu.Unlock()
}

// SetOnFirstEviction registers fn to run once, when the tracer first evicts
// an event. The callback runs outside the tracer lock and must not Emit.
func (t *Tracer) SetOnFirstEviction(fn func()) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onFirstEvict = fn
	t.mu.Unlock()
}

// Cap returns the ring capacity. Private per-job tracers in the parallel
// experiment harness are sized to the destination's capacity so that
// merge-after-run retains exactly the events a shared serial tracer would.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Evicted returns how many events were displaced by ring overflow.
func (t *Tracer) Evicted() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// Events returns a copy of the retained events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// Reset discards all retained events.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.start, t.n, t.evicted = 0, 0, 0
	t.evictWarned = false
	t.mu.Unlock()
}

// exportEvents returns the retained events for serialization. When the ring
// has overflowed, a synthetic one-time warning event is prepended (stamped at
// the oldest retained timestamp) so every export that lost history says so
// in-band. The warning is synthesized at export time rather than emitted into
// the ring because a real event would occur at different points in serial vs
// merged parallel runs and break byte-identical exports; the merged eviction
// total is identical in both, so this stays deterministic.
func (t *Tracer) exportEvents() []Event {
	events := t.Events()
	n := t.Evicted()
	if n == 0 {
		return events
	}
	var at int64
	if len(events) > 0 {
		at = events[0].At
	}
	warn := Event{At: at, Cat: "obs", Name: "trace_ring_overflow", NArgs: 1,
		Args: [2]Arg{{Key: "evicted", Val: n}}}
	return append([]Event{warn}, events...)
}

// WriteChromeTrace serializes the retained events as Chrome trace-event JSON
// (the "JSON object format"), loadable in chrome://tracing and Perfetto.
// Instant events use phase "i" with global scope; spans use phase "X".
// Timestamps are virtual microseconds with nanosecond fractions, so the
// output is byte-identical across same-seed runs.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.exportEvents()
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	for i := range events {
		if i > 0 {
			bw.WriteByte(',')
		}
		writeChromeEvent(bw, &events[i])
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

func writeChromeEvent(bw *bufio.Writer, e *Event) {
	bw.WriteString(`{"name":`)
	bw.Write(strconv.AppendQuote(nil, e.Name))
	bw.WriteString(`,"cat":`)
	bw.Write(strconv.AppendQuote(nil, e.Cat))
	if e.Dur > 0 {
		bw.WriteString(`,"ph":"X","ts":`)
		writeMicros(bw, e.At)
		bw.WriteString(`,"dur":`)
		writeMicros(bw, e.Dur)
	} else {
		bw.WriteString(`,"ph":"i","s":"g","ts":`)
		writeMicros(bw, e.At)
	}
	bw.WriteString(`,"pid":`)
	bw.WriteString(strconv.FormatInt(e.Pid, 10))
	bw.WriteString(`,"tid":`)
	bw.WriteString(strconv.FormatInt(e.Tid, 10))
	if e.NArgs > 0 {
		bw.WriteString(`,"args":{`)
		writeArgs(bw, e)
		bw.WriteByte('}')
	}
	bw.WriteByte('}')
}

// WriteJSONL serializes the retained events as JSON lines, one event per
// line with nanosecond virtual timestamps — the grep/jq-friendly form.
// Lines follow ring emission order, which span flushing can leave slightly
// non-chronological; sort by "at" when order matters.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	events := t.exportEvents()
	bw := bufio.NewWriter(w)
	for i := range events {
		e := &events[i]
		bw.WriteString(`{"at":`)
		bw.WriteString(strconv.FormatInt(e.At, 10))
		if e.Dur > 0 {
			bw.WriteString(`,"dur":`)
			bw.WriteString(strconv.FormatInt(e.Dur, 10))
		}
		if e.Pid != 0 {
			bw.WriteString(`,"pid":`)
			bw.WriteString(strconv.FormatInt(e.Pid, 10))
		}
		if e.Tid != 0 {
			bw.WriteString(`,"tid":`)
			bw.WriteString(strconv.FormatInt(e.Tid, 10))
		}
		bw.WriteString(`,"cat":`)
		bw.Write(strconv.AppendQuote(nil, e.Cat))
		bw.WriteString(`,"name":`)
		bw.Write(strconv.AppendQuote(nil, e.Name))
		if e.NArgs > 0 {
			bw.WriteString(`,"args":{`)
			writeArgs(bw, e)
			bw.WriteByte('}')
		}
		bw.WriteString("}\n")
	}
	return bw.Flush()
}

// writeArgs renders the event's arguments as JSON object members.
func writeArgs(bw *bufio.Writer, e *Event) {
	for i := 0; i < e.NArgs && i < len(e.Args); i++ {
		if i > 0 {
			bw.WriteByte(',')
		}
		a := &e.Args[i]
		bw.Write(strconv.AppendQuote(nil, a.Key))
		bw.WriteByte(':')
		if a.Str != "" {
			bw.Write(strconv.AppendQuote(nil, a.Str))
		} else {
			bw.WriteString(strconv.FormatInt(a.Val, 10))
		}
	}
}

// writeMicros renders a nanosecond quantity as microseconds with three
// decimals (Chrome trace timestamps are microseconds).
func writeMicros(bw *bufio.Writer, ns int64) {
	neg := ns < 0
	if neg {
		bw.WriteByte('-')
		ns = -ns
	}
	bw.WriteString(strconv.FormatInt(ns/1000, 10))
	bw.WriteByte('.')
	frac := ns % 1000
	switch {
	case frac < 10:
		bw.WriteString("00")
	case frac < 100:
		bw.WriteByte('0')
	}
	bw.WriteString(strconv.FormatInt(frac, 10))
}
