package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"sync"
)

// This file implements the flight recorder: a virtual-time sampler that
// snapshots every registry series into fixed-capacity ring buffers on a
// configurable tick, and answers windowed queries over the recorded history.
// Window extracts each series' points inside a virtual-time range; Delta
// compares a before-window against an after-window and reports per-series
// rate (or level) changes — exactly the primitive a canary gate needs to
// decide "did installing snapshot v hurt goodput or latency?".
//
// Counters and histogram _count/_sum sub-series are cumulative, so their
// window statistic is a rate (delta value / delta time, per second). Gauges
// and histogram quantile estimates are levels, so their statistic is the
// window mean. Histograms additionally contribute _p50/_p99 sub-series,
// estimated as the upper bound of the bucket where the cumulative count
// crosses the quantile (the +Inf bucket reports the observed max) — coarse,
// but deterministic and monotone in the underlying distribution.
//
// Like the rest of obs, the recorder is goroutine-safe and wall-clock-free:
// callers drive Sample from their simulation engine, so recordings are
// byte-identical across same-seed runs, and the parallel experiment harness
// gives each job a private recorder and folds them in job order (Merge),
// keeping -parallel exports byte-identical to serial ones.

// DefaultFlightCapacity is the per-series ring size used when
// NewFlightRecorder is given a non-positive capacity.
const DefaultFlightCapacity = 1 << 10

// Point is one sampled value at a virtual timestamp.
type Point struct {
	At int64
	V  float64
}

// flightSeries is one recorded series: a bounded ring of points.
type flightSeries struct {
	cumulative bool
	pts        []Point
	start, n   int
}

func (s *flightSeries) push(p Point) {
	if s.n < len(s.pts) {
		s.pts[(s.start+s.n)%len(s.pts)] = p
		s.n++
	} else {
		s.pts[s.start] = p
		s.start = (s.start + 1) % len(s.pts)
	}
}

func (s *flightSeries) points() []Point {
	out := make([]Point, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.pts[(s.start+i)%len(s.pts)]
	}
	return out
}

// FlightRecorder records registry samples over virtual time. Construct with
// NewFlightRecorder; the nil recorder is a valid no-op.
type FlightRecorder struct {
	mu     sync.Mutex
	cap    int
	series map[string]*flightSeries
	ticks  int64
}

// NewFlightRecorder returns a recorder retaining up to capacity points per
// series (DefaultFlightCapacity when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{cap: capacity, series: make(map[string]*flightSeries)}
}

// Cap returns the per-series ring capacity.
func (fr *FlightRecorder) Cap() int {
	if fr == nil {
		return 0
	}
	return fr.cap
}

// Ticks returns how many Sample calls the recorder has absorbed.
func (fr *FlightRecorder) Ticks() int64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.ticks
}

// Len returns the number of recorded series.
func (fr *FlightRecorder) Len() int {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return len(fr.series)
}

// record appends one point to the named series, creating it on first use.
func (fr *FlightRecorder) record(name string, cumulative bool, at int64, v float64) {
	s, ok := fr.series[name]
	if !ok {
		s = &flightSeries{cumulative: cumulative, pts: make([]Point, fr.cap)}
		fr.series[name] = s
	}
	s.push(Point{At: at, V: v})
}

// Sample snapshots every series of reg at virtual time at: counter and gauge
// values directly, histograms as _count/_sum plus _p50/_p99 estimates.
// Series names include rendered labels (name{k="v",…}), matching the
// Prometheus exposition identity.
func (fr *FlightRecorder) Sample(reg *Registry, at int64) {
	if fr == nil || reg == nil {
		return
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.ticks++
	for _, f := range reg.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			key := f.name
			if s.labels != "" {
				key = f.name + "{" + s.labels + "}"
			}
			switch f.kind {
			case kindCounter:
				fr.record(key, true, at, float64(s.counter.Value()))
			case kindGauge:
				fr.record(key, false, at, s.gauge.Value())
			case kindHistogram:
				bounds, counts, sum := s.hist.snapshot()
				var total int64
				for _, c := range counts {
					total += c
				}
				fr.record(key+"_count", true, at, float64(total))
				fr.record(key+"_sum", true, at, sum)
				summ := s.hist.Summary()
				max := summ.Max()
				fr.record(key+"_p50", false, at, bucketQuantile(bounds, counts, total, max, 0.50))
				fr.record(key+"_p99", false, at, bucketQuantile(bounds, counts, total, max, 0.99))
			}
		}
	}
}

// bucketQuantile estimates quantile q from cumulative bucket counts: the
// upper bound of the bucket where the cumulative count crosses q*total; the
// +Inf bucket reports the observed max.
func bucketQuantile(bounds []float64, counts []int64, total int64, max float64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		if cum >= rank {
			return b
		}
	}
	return max
}

// SeriesWindow is one series' recorded points inside a queried time range.
type SeriesWindow struct {
	Name       string
	Cumulative bool
	Points     []Point
}

// Window returns every series' points with from <= At <= to, sorted by
// series name. Series with no points in range are omitted.
func (fr *FlightRecorder) Window(from, to int64) []SeriesWindow {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]SeriesWindow, 0, len(fr.series))
	for name, s := range fr.series {
		var pts []Point
		for _, p := range s.points() {
			if p.At >= from && p.At <= to {
				pts = append(pts, p)
			}
		}
		if len(pts) > 0 {
			out = append(out, SeriesWindow{Name: name, Cumulative: s.cumulative, Points: pts})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TimeWindow is a closed virtual-time interval.
type TimeWindow struct {
	From, To int64
}

// SeriesDelta compares one series across two windows. For cumulative series
// Before/After are rates per second over each window; for level series they
// are window means. Delta is After-Before; Ratio is After/Before (0 when
// Before is 0).
type SeriesDelta struct {
	Name       string
	Cumulative bool
	Before     float64
	After      float64
	Delta      float64
	Ratio      float64
}

// Delta compares the before and after windows and returns one entry per
// series that has enough data in both (cumulative series need >= 2 points
// per window to form a rate; level series need >= 1), sorted by name. This
// is the canary-gate primitive: sample around an install, then ask which
// series' rates moved.
func (fr *FlightRecorder) Delta(before, after TimeWindow) []SeriesDelta {
	if fr == nil {
		return nil
	}
	b := fr.Window(before.From, before.To)
	a := fr.Window(after.From, after.To)
	bi := make(map[string]SeriesWindow, len(b))
	for _, w := range b {
		bi[w.Name] = w
	}
	out := make([]SeriesDelta, 0, len(a))
	for _, aw := range a {
		bw, ok := bi[aw.Name]
		if !ok {
			continue
		}
		bv, bok := windowStat(bw)
		av, aok := windowStat(aw)
		if !bok || !aok {
			continue
		}
		d := SeriesDelta{Name: aw.Name, Cumulative: aw.Cumulative,
			Before: bv, After: av, Delta: av - bv}
		if bv != 0 {
			d.Ratio = av / bv
		}
		out = append(out, d)
	}
	return out
}

// windowStat reduces a window to its statistic: rate per second for
// cumulative series, mean for level series.
func windowStat(w SeriesWindow) (float64, bool) {
	if w.Cumulative {
		if len(w.Points) < 2 {
			return 0, false
		}
		first, last := w.Points[0], w.Points[len(w.Points)-1]
		span := last.At - first.At
		if span <= 0 {
			return 0, false
		}
		return (last.V - first.V) / float64(span) * 1e9, true
	}
	if len(w.Points) == 0 {
		return 0, false
	}
	var sum float64
	for _, p := range w.Points {
		sum += p.V
	}
	return sum / float64(len(w.Points)), true
}

// Merge folds src's recorded points into fr in sorted series order, appending
// after fr's own points (ring eviction applies). The parallel harness folds
// per-job recorders in job order, so merged recordings are byte-identical to
// a serial run's.
func (fr *FlightRecorder) Merge(src *FlightRecorder) {
	if fr == nil || src == nil {
		return
	}
	if fr == src {
		panic("obs: cannot merge a flight recorder into itself")
	}
	type part struct {
		name       string
		cumulative bool
		pts        []Point
	}
	src.mu.Lock()
	parts := make([]part, 0, len(src.series))
	for name, s := range src.series {
		parts = append(parts, part{name: name, cumulative: s.cumulative, pts: s.points()})
	}
	ticks := src.ticks
	src.mu.Unlock()
	sort.Slice(parts, func(i, j int) bool { return parts[i].name < parts[j].name })

	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.ticks += ticks
	for _, p := range parts {
		for _, pt := range p.pts {
			fr.record(p.name, p.cumulative, pt.At, pt.V)
		}
	}
}

// WriteJSONL serializes the recording as JSON lines — one line per point, in
// sorted series order then recording order — byte-identical across same-seed
// runs.
func (fr *FlightRecorder) WriteJSONL(w io.Writer) error {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	names := make([]string, 0, len(fr.series))
	for name := range fr.series {
		names = append(names, name)
	}
	sort.Strings(names)
	type dump struct {
		name       string
		cumulative bool
		pts        []Point
	}
	dumps := make([]dump, 0, len(names))
	for _, name := range names {
		s := fr.series[name]
		dumps = append(dumps, dump{name: name, cumulative: s.cumulative, pts: s.points()})
	}
	fr.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, d := range dumps {
		kind := `"level"`
		if d.cumulative {
			kind = `"cumulative"`
		}
		for _, p := range d.pts {
			bw.WriteString(`{"series":`)
			bw.Write(strconv.AppendQuote(nil, d.name))
			bw.WriteString(`,"kind":`)
			bw.WriteString(kind)
			bw.WriteString(`,"at":`)
			bw.WriteString(strconv.FormatInt(p.At, 10))
			bw.WriteString(`,"v":`)
			bw.WriteString(formatValue(p.V))
			bw.WriteString("}\n")
		}
	}
	return bw.Flush()
}
