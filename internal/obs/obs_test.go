package obs_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/obs"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := obs.NewRegistry()
	sc := obs.New(reg, nil)

	c := sc.Counter("liteflow_test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels resolves to the same instrument.
	if sc.Counter("liteflow_test_ops_total", "ops") != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Different labels are distinct series.
	c2 := sc.Counter("liteflow_test_ops_total", "ops", obs.Label{Key: "k", Value: "v"})
	if c2 == c {
		t.Fatal("labeled series aliases the unlabeled one")
	}

	g := sc.Gauge("liteflow_test_level", "level")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	sc := obs.New(reg, nil)
	h := sc.Histogram("liteflow_test_dur_ns", "durations", []float64{10, 100, 1000})
	for _, v := range []float64{1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 5556 {
		t.Fatalf("sum = %g, want 5556", h.Sum())
	}
	s := h.Summary()
	if s.Min() != 1 || s.Max() != 5000 || s.N() != 5 {
		t.Fatalf("summary = %v", s)
	}

	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`liteflow_test_dur_ns_bucket{le="10"} 2`,
		`liteflow_test_dur_ns_bucket{le="100"} 3`,
		`liteflow_test_dur_ns_bucket{le="1000"} 4`,
		`liteflow_test_dur_ns_bucket{le="+Inf"} 5`,
		`liteflow_test_dur_ns_sum 5556`,
		`liteflow_test_dur_ns_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusFormat(t *testing.T) {
	reg := obs.NewRegistry()
	sc := obs.New(reg, nil).With(obs.Label{Key: "host", Value: "0"})
	sc.Counter("liteflow_test_b_total", "bees", obs.Label{Key: "kind", Value: "x"}).Add(7)
	sc.Gauge("liteflow_test_a_level", "level").Set(3)

	out := string(reg.PrometheusText())
	// Families sorted by name; scope labels precede instrument labels.
	ai := strings.Index(out, "liteflow_test_a_level")
	bi := strings.Index(out, "liteflow_test_b_total")
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("families out of order:\n%s", out)
	}
	if !strings.Contains(out, `liteflow_test_b_total{host="0",kind="x"} 7`) {
		t.Errorf("label ordering wrong:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE liteflow_test_b_total counter") ||
		!strings.Contains(out, "# TYPE liteflow_test_a_level gauge") {
		t.Errorf("missing TYPE lines:\n%s", out)
	}
	if !strings.Contains(out, "# HELP liteflow_test_b_total bees") {
		t.Errorf("missing HELP line:\n%s", out)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("liteflow_test_x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	reg.Gauge("liteflow_test_x", "")
}

func TestNopScopeStillCounts(t *testing.T) {
	sc := obs.Nop()
	if sc.Enabled() || sc.Tracing() {
		t.Fatal("nop scope claims to be enabled")
	}
	c := sc.Counter("x", "")
	c.Add(3)
	if c.Value() != 3 {
		t.Fatalf("nop-scope counter lost counts: %d", c.Value())
	}
	h := sc.Histogram("y", "", obs.DurationBuckets())
	h.Observe(42)
	if h.Count() != 1 {
		t.Fatal("nop-scope histogram lost observations")
	}
	// Nil instruments (fields never wired) must be safe no-ops.
	var nc *obs.Counter
	nc.Inc()
	var ng *obs.Gauge
	ng.Set(1)
	var nh *obs.Histogram
	nh.Observe(1)
	sc.Event("a", "b", 0)
	sc.Event1("a", "b", 0, "k", 1)
	sc.Span("a", "b", 0, 10)
}

func TestTracerRing(t *testing.T) {
	tr := obs.NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Emit(obs.Event{At: int64(i), Cat: "c", Name: "n"})
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Evicted() != 2 {
		t.Fatalf("evicted = %d, want 2", tr.Evicted())
	}
	ev := tr.Events()
	if ev[0].At != 2 || ev[3].At != 5 {
		t.Fatalf("ring order wrong: %+v", ev)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Evicted() != 0 {
		t.Fatal("reset did not clear the ring")
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	tr := obs.NewTracer(16)
	sc := obs.New(nil, tr)
	sc.Event("flowcache", "hit", 1500)
	sc.Event2("netlink", "flush", 2000, "msgs", 3, "bytes", 120)
	sc.EventStr("snapshot", "install", 2500, "model", `sn"ap`)
	sc.Span1("snapshot", "stall", 3000, 250, "flow", 7)

	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b.Bytes()) {
		t.Fatalf("invalid chrome trace JSON:\n%s", b.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0]["ts"] != 1.5 {
		t.Errorf("ts = %v, want 1.5 µs", doc.TraceEvents[0]["ts"])
	}
	if doc.TraceEvents[3]["ph"] != "X" || doc.TraceEvents[3]["dur"] != 0.25 {
		t.Errorf("span event wrong: %v", doc.TraceEvents[3])
	}

	var jb bytes.Buffer
	if err := tr.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d JSONL lines, want 4", len(lines))
	}
	for _, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Errorf("invalid JSONL line: %s", l)
		}
	}
}

func TestExportDeterminism(t *testing.T) {
	build := func() ([]byte, []byte) {
		reg := obs.NewRegistry()
		tr := obs.NewTracer(64)
		sc := obs.New(reg, tr)
		for i := 0; i < 10; i++ {
			sc.Counter("liteflow_test_n_total", "").Inc()
			sc.Histogram("liteflow_test_h", "", obs.DurationBuckets()).Observe(float64(i) * 1e4)
			sc.Event1("c", "e", int64(i)*100, "i", int64(i))
		}
		var tb bytes.Buffer
		tr.WriteChromeTrace(&tb)
		return reg.PrometheusText(), tb.Bytes()
	}
	p1, t1 := build()
	p2, t2 := build()
	if !bytes.Equal(p1, p2) {
		t.Error("prometheus export is not byte-identical")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("chrome trace export is not byte-identical")
	}
}

// TestConcurrentReadersAndWriters exercises the goroutine-safety contract
// under -race: the HTTP exporter reads snapshots while writers hammer the
// instruments and the tracer.
func TestConcurrentReadersAndWriters(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1024)
	sc := obs.New(reg, tr)
	h := obs.NewHTTPHandler(reg, tr)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := sc.Counter("liteflow_test_w_total", "")
			g := sc.Gauge("liteflow_test_w_level", "")
			hi := sc.Histogram("liteflow_test_w_ns", "", obs.DurationBuckets())
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(i))
				hi.Observe(float64(i))
				sc.Event1("w", "tick", int64(i), "w", int64(w))
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		for _, path := range []string{"/metrics", "/debug/trace", "/debug/trace.jsonl"} {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
			if rec.Code != 200 {
				t.Fatalf("%s returned %d", path, rec.Code)
			}
			io.Copy(io.Discard, rec.Body)
		}
	}
	close(stop)
	wg.Wait()
}

// TestEvictionCounterAndWarning: satellite contract — ring overflow is
// visible as liteflow_trace_evicted_total, the one-time callback fires on
// first eviction only, and exports prepend a single synthetic warning event.
func TestEvictionCounterAndWarning(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(4)
	sc := obs.New(reg, tr)

	var warnings int
	tr.SetOnFirstEviction(func() { warnings++ })
	for i := 0; i < 10; i++ {
		sc.Event("c", "n", int64(i))
	}
	if tr.Evicted() != 6 {
		t.Fatalf("evicted = %d, want 6", tr.Evicted())
	}
	if warnings != 1 {
		t.Fatalf("first-eviction callback fired %d times, want 1", warnings)
	}
	if !strings.Contains(string(reg.PrometheusText()), "liteflow_trace_evicted_total 6") {
		t.Fatalf("eviction counter missing from exposition:\n%s", reg.PrometheusText())
	}

	var jb bytes.Buffer
	if err := tr.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jb.String()), "\n")
	if len(lines) != 5 { // 4 retained + 1 synthetic warning
		t.Fatalf("got %d JSONL lines, want 5:\n%s", len(lines), jb.String())
	}
	if !strings.Contains(lines[0], "trace_ring_overflow") || !strings.Contains(lines[0], `"evicted":6`) {
		t.Fatalf("synthetic overflow warning missing or wrong: %s", lines[0])
	}
	var cb bytes.Buffer
	if err := tr.WriteChromeTrace(&cb); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(cb.Bytes()) || !strings.Contains(cb.String(), "trace_ring_overflow") {
		t.Fatalf("chrome trace missing overflow warning:\n%s", cb.String())
	}

	// Binding seeds pre-existing evictions: a scope created late still
	// reports the full count.
	reg2 := obs.NewRegistry()
	obs.New(reg2, tr)
	if !strings.Contains(string(reg2.PrometheusText()), "liteflow_trace_evicted_total 6") {
		t.Fatalf("late binding lost prior evictions:\n%s", reg2.PrometheusText())
	}
}

// TestHTTPEndpointsContentTypes: every obs endpoint declares its media type,
// /debug/trace honors ?format=jsonl, and /debug/flight serves the recording.
func TestHTTPEndpointsContentTypes(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(16)
	sc := obs.New(reg, tr)
	sc.Counter("liteflow_test_n_total", "").Inc()
	sc.Event("c", "n", 1)
	fr := obs.NewFlightRecorder(8)
	fr.Sample(reg, 100)
	h := obs.NewHTTPHandler(reg, tr, fr)

	cases := []struct {
		path, wantType, wantBody string
	}{
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8", "liteflow_test_n_total 1"},
		{"/debug/trace", "application/json", `"traceEvents"`},
		{"/debug/trace?format=jsonl", "application/x-ndjson", `"name":"n"`},
		{"/debug/trace.jsonl", "application/x-ndjson", `"name":"n"`},
		{"/debug/flight", "application/x-ndjson", `"series":"liteflow_test_n_total"`},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", c.path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s returned %d", c.path, rec.Code)
		}
		if got := rec.Header().Get("Content-Type"); got != c.wantType {
			t.Errorf("%s Content-Type = %q, want %q", c.path, got, c.wantType)
		}
		if !strings.Contains(rec.Body.String(), c.wantBody) {
			t.Errorf("%s body missing %q:\n%s", c.path, c.wantBody, rec.Body.String())
		}
	}

	// Without a recorder, /debug/flight 404s like the other nil halves.
	h2 := obs.NewHTTPHandler(reg, tr)
	rec := httptest.NewRecorder()
	h2.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	if rec.Code != 404 {
		t.Fatalf("/debug/flight without recorder returned %d, want 404", rec.Code)
	}
}
