package obs

import "net/http"

// NewHTTPHandler returns an http.Handler exposing the registry at /metrics
// (Prometheus text format) and the tracer at /debug/trace (Chrome trace JSON)
// and /debug/trace.jsonl (JSON lines). Either argument may be nil; the
// corresponding endpoints then report 404. The handler is safe to serve from
// a goroutine while the simulation writes: the registry and tracer
// synchronize internally.
func NewHTTPHandler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if reg == nil {
			http.NotFound(w, nil)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		if tr == nil {
			http.NotFound(w, nil)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		tr.WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/trace.jsonl", func(w http.ResponseWriter, _ *http.Request) {
		if tr == nil {
			http.NotFound(w, nil)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		tr.WriteJSONL(w)
	})
	return mux
}
