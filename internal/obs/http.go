package obs

import "net/http"

// NewHTTPHandler returns an http.Handler exposing the registry at /metrics
// (Prometheus text format), the tracer at /debug/trace (Chrome trace JSON by
// default, JSON lines with ?format=jsonl) and /debug/trace.jsonl (JSON
// lines), and — when a recorder is supplied — the flight recording at
// /debug/flight (JSON lines). Nil arguments make the corresponding endpoints
// report 404. The handler is safe to serve from a goroutine while the
// simulation writes: the registry, tracer and recorder synchronize
// internally.
func NewHTTPHandler(reg *Registry, tr *Tracer, flight ...*FlightRecorder) http.Handler {
	var fr *FlightRecorder
	if len(flight) > 0 {
		fr = flight[0]
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if reg == nil {
			http.NotFound(w, nil)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if tr == nil {
			http.NotFound(w, nil)
			return
		}
		if r.URL.Query().Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			tr.WriteJSONL(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		tr.WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/trace.jsonl", func(w http.ResponseWriter, _ *http.Request) {
		if tr == nil {
			http.NotFound(w, nil)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		tr.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		if fr == nil {
			http.NotFound(w, nil)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fr.WriteJSONL(w)
	})
	return mux
}
