package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/obs"
)

// TestFlightRecorderSampleAndWindow: counters/gauges record directly,
// histograms expand into _count/_sum/_p50/_p99 sub-series, and Window slices
// by virtual time.
func TestFlightRecorderSampleAndWindow(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("liteflow_test_q_total", "")
	g := reg.Gauge("liteflow_test_depth", "")
	h := reg.Histogram("liteflow_test_ns", "", []float64{100, 1000, 10000})

	fr := obs.NewFlightRecorder(16)
	for i := 1; i <= 4; i++ {
		c.Add(10)
		g.Set(float64(i))
		h.Observe(float64(i) * 200)
		fr.Sample(reg, int64(i)*1000)
	}
	if fr.Ticks() != 4 {
		t.Fatalf("ticks = %d, want 4", fr.Ticks())
	}

	ws := fr.Window(2000, 3000)
	byName := map[string]obs.SeriesWindow{}
	for _, w := range ws {
		byName[w.Name] = w
	}
	cw, ok := byName["liteflow_test_q_total"]
	if !ok || len(cw.Points) != 2 || !cw.Cumulative {
		t.Fatalf("counter window wrong: %+v", cw)
	}
	if cw.Points[0].V != 20 || cw.Points[1].V != 30 {
		t.Fatalf("counter points wrong: %+v", cw.Points)
	}
	if _, ok := byName["liteflow_test_ns_p99"]; !ok {
		t.Fatalf("histogram quantile sub-series missing; have %v", names(ws))
	}
	if gw := byName["liteflow_test_depth"]; gw.Cumulative {
		t.Fatal("gauge marked cumulative")
	}
}

func names(ws []obs.SeriesWindow) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

// TestFlightRecorderDelta: the canary-gate primitive. A counter whose rate
// halves between windows must report the regression; a gauge reports mean
// level change.
func TestFlightRecorderDelta(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("liteflow_test_goodput_total", "")
	g := reg.Gauge("liteflow_test_lat", "")

	fr := obs.NewFlightRecorder(64)
	// Before: 10 units per 1000 ns tick. After: 5 per tick, latency doubles.
	at := int64(0)
	for i := 0; i < 5; i++ {
		c.Add(10)
		g.Set(100)
		at += 1000
		fr.Sample(reg, at)
	}
	for i := 0; i < 5; i++ {
		c.Add(5)
		g.Set(200)
		at += 1000
		fr.Sample(reg, at)
	}

	deltas := fr.Delta(obs.TimeWindow{From: 1000, To: 5000}, obs.TimeWindow{From: 6000, To: 10000})
	var cd, gd *obs.SeriesDelta
	for i := range deltas {
		switch deltas[i].Name {
		case "liteflow_test_goodput_total":
			cd = &deltas[i]
		case "liteflow_test_lat":
			gd = &deltas[i]
		}
	}
	if cd == nil || gd == nil {
		t.Fatalf("missing series in delta: %+v", deltas)
	}
	// 10 per 1000ns = 1e7/s before, 5e6/s after.
	if cd.Before != 1e7 || cd.After != 5e6 || cd.Ratio != 0.5 {
		t.Fatalf("counter delta wrong: %+v", cd)
	}
	if gd.Before != 100 || gd.After != 200 || gd.Delta != 100 {
		t.Fatalf("gauge delta wrong: %+v", gd)
	}
}

// TestFlightRecorderRingEviction: rings keep the most recent points.
func TestFlightRecorderRingEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("liteflow_test_n_total", "")
	fr := obs.NewFlightRecorder(4)
	for i := 1; i <= 10; i++ {
		c.Inc()
		fr.Sample(reg, int64(i))
	}
	w := fr.Window(0, 100)
	if len(w) != 1 || len(w[0].Points) != 4 {
		t.Fatalf("ring retained wrong points: %+v", w)
	}
	if w[0].Points[0].At != 7 || w[0].Points[3].At != 10 {
		t.Fatalf("ring did not keep most recent: %+v", w[0].Points)
	}
}

// TestFlightRecorderMergeMatchesSerial: folding per-job recorders in job
// order must byte-match one recorder that absorbed the same samples
// serially — the §4d obligation for -flight-out.
func TestFlightRecorderMergeMatchesSerial(t *testing.T) {
	sample := func(fr *obs.FlightRecorder, base int64) {
		reg := obs.NewRegistry()
		c := reg.Counter("liteflow_test_n_total", "")
		h := reg.Histogram("liteflow_test_ns", "", []float64{10, 100})
		for i := int64(1); i <= 3; i++ {
			c.Add(i)
			h.Observe(float64(i * 7))
			fr.Sample(reg, base+i*100)
		}
	}
	serial := obs.NewFlightRecorder(32)
	sample(serial, 0)
	sample(serial, 1000)

	a, b := obs.NewFlightRecorder(32), obs.NewFlightRecorder(32)
	sample(a, 0)
	sample(b, 1000)
	merged := obs.NewFlightRecorder(32)
	merged.Merge(a)
	merged.Merge(b)

	var sw, mw bytes.Buffer
	if err := serial.WriteJSONL(&sw); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSONL(&mw); err != nil {
		t.Fatal(err)
	}
	if sw.String() != mw.String() {
		t.Fatalf("merged recording differs from serial:\n--- serial\n%s--- merged\n%s", sw.String(), mw.String())
	}
	if merged.Ticks() != serial.Ticks() {
		t.Fatalf("ticks: merged %d, serial %d", merged.Ticks(), serial.Ticks())
	}
}

// TestFlightRecorderJSONL: every line is valid JSON with the expected keys,
// and the export is deterministic.
func TestFlightRecorderJSONL(t *testing.T) {
	build := func() string {
		reg := obs.NewRegistry()
		reg.Counter("liteflow_test_n_total", "", obs.Label{Key: "job", Value: "a"}).Add(3)
		reg.Gauge("liteflow_test_lvl", "").Set(1.5)
		fr := obs.NewFlightRecorder(8)
		fr.Sample(reg, 42)
		var b bytes.Buffer
		if err := fr.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	out := build()
	if out != build() {
		t.Fatal("flight JSONL is not deterministic")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	for _, l := range lines {
		var rec struct {
			Series string  `json:"series"`
			Kind   string  `json:"kind"`
			At     int64   `json:"at"`
			V      float64 `json:"v"`
		}
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("invalid line %q: %v", l, err)
		}
		if rec.At != 42 || rec.Series == "" || rec.Kind == "" {
			t.Fatalf("line missing fields: %q", l)
		}
	}
	if !strings.Contains(out, `liteflow_test_n_total{job=\"a\"}`) &&
		!strings.Contains(out, `liteflow_test_n_total{job=`) {
		t.Fatalf("labeled series identity missing:\n%s", out)
	}

	// Nil recorder writes nothing and does not error.
	var nilFR *obs.FlightRecorder
	if err := nilFR.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	nilFR.Sample(obs.NewRegistry(), 0)
	if nilFR.Delta(obs.TimeWindow{}, obs.TimeWindow{}) != nil {
		t.Fatal("nil recorder returned deltas")
	}
}
