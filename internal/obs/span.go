package obs

import "sync"

// This file implements snapshot-lifecycle span tracing: a SpanTracer mints
// root spans covering one snapshot version's journey from sample pooling to
// activation, with child spans/instants for each lifecycle stage (pool,
// correctness gate, necessity gate, build, quantize, install, activate) and
// edge markers (park, catch-up, retry, degrade). Spans render in the Chrome
// trace as one process per snapshot version (pid = version/epoch) with one
// thread track per fleet member (tid = member index + 1; tid 0 is the
// controller/fleet-wide track), so a whole rollout reads as a single flame
// graph.
//
// A root's version is usually unknown when pooling starts — versions are
// minted at build time — so the root buffers its children and flushes them
// into the tracer when it ends, stamping the late-assigned version on every
// event. Flushing happens on the single simulation goroutine in a fixed
// order, so exports stay byte-deterministic. Roots that never end (a run
// stopping mid-rollout) are simply dropped.
//
// Alongside the trace events, every completed stage feeds
// liteflow_snapshot_stage_ns{stage} and every successful root feeds
// liteflow_snapshot_e2e_ns, giving the aggregate view of where rollouts
// spend their time.

// SpanTracer derives lifecycle spans and stage histograms from a Scope. The
// nil SpanTracer is a valid no-op, as are spans minted from it.
type SpanTracer struct {
	sc  Scope
	e2e *Histogram

	mu     sync.Mutex
	stages map[string]*Histogram
}

// NewSpanTracer returns a span tracer recording through sc. A no-op scope
// yields a tracer that still feeds (unregistered) histograms but emits no
// events.
func NewSpanTracer(sc Scope) *SpanTracer {
	return &SpanTracer{
		sc: sc,
		e2e: sc.Histogram("liteflow_snapshot_e2e_ns",
			"snapshot lifecycle end-to-end latency, pooling start to activation", DurationBuckets()),
		stages: make(map[string]*Histogram),
	}
}

// stage resolves (and caches) the per-stage duration histogram.
func (st *SpanTracer) stage(name string) *Histogram {
	st.mu.Lock()
	h, ok := st.stages[name]
	if !ok {
		h = st.sc.Histogram("liteflow_snapshot_stage_ns",
			"snapshot lifecycle stage latency", DurationBuckets(),
			Label{Key: "stage", Value: name})
		st.stages[name] = h
	}
	st.mu.Unlock()
	return h
}

// Span is one snapshot lifecycle in flight. It is not goroutine-safe: like
// the components it instruments, a span belongs to a single engine goroutine.
type Span struct {
	st      *SpanTracer
	cat     string
	name    string
	start   int64
	version int64
	buf     []Event
	ended   bool
}

// Root opens a lifecycle root span at virtual time at. Call SetVersion once
// the snapshot version is minted, then End/EndFailed to flush (or Discard to
// drop). Returns a no-op span when st is nil.
func (st *SpanTracer) Root(cat, name string, at int64) *Span {
	if st == nil {
		return nil
	}
	return &Span{st: st, cat: cat, name: name, start: at}
}

// Lone emits one already-completed stage span immediately, outside any root —
// used for stages whose version is already known (per-member installs of a
// minted epoch, catch-up activations). dur 0 renders as an instant. member <
// 0 targets the fleet-wide track.
func (st *SpanTracer) Lone(cat, stage string, version, member, at, dur int64) {
	if st == nil {
		return
	}
	st.stage(stage).Observe(float64(dur))
	if !st.sc.Tracing() {
		return
	}
	e := Event{At: at, Dur: dur, Pid: version, Cat: cat, Name: stage}
	if member >= 0 {
		e.Tid = member + 1
		e.NArgs = 1
		e.Args[0] = Arg{Key: "member", Val: member}
	}
	st.sc.Tracer().Emit(e)
}

// Start returns the root's opening timestamp.
func (sp *Span) Start() int64 {
	if sp == nil {
		return 0
	}
	return sp.start
}

// SetVersion assigns the snapshot version (fleet epoch or per-service
// snapshot ordinal); it becomes the Chrome trace pid of the whole tree.
func (sp *Span) SetVersion(v int64) {
	if sp == nil {
		return
	}
	sp.version = v
}

// Version returns the assigned snapshot version (0 before SetVersion).
func (sp *Span) Version() int64 {
	if sp == nil {
		return 0
	}
	return sp.version
}

// Child records a completed lifecycle stage covering [at, at+dur) on the
// root's track. dur 0 renders as an instant event. The stage histogram is fed
// immediately; the trace event is buffered until the root ends.
func (sp *Span) Child(stage string, at, dur int64) {
	sp.child(stage, -1, at, dur)
}

// ChildMember records a completed stage on a member's track.
func (sp *Span) ChildMember(stage string, member, at, dur int64) {
	sp.child(stage, member, at, dur)
}

func (sp *Span) child(stage string, member, at, dur int64) {
	if sp == nil || sp.ended {
		return
	}
	sp.st.stage(stage).Observe(float64(dur))
	if !sp.st.sc.Tracing() {
		return
	}
	e := Event{At: at, Dur: dur, Cat: sp.cat, Name: stage}
	if member >= 0 {
		e.Tid = member + 1
		e.NArgs = 1
		e.Args[0] = Arg{Key: "member", Val: member}
	}
	sp.buf = append(sp.buf, e)
}

// Mark records an instant edge event (park, retry, defer, …) with one
// integer argument on the root's track.
func (sp *Span) Mark(name string, at int64, k string, v int64) {
	if sp == nil || sp.ended || !sp.st.sc.Tracing() {
		return
	}
	sp.buf = append(sp.buf, Event{At: at, Cat: sp.cat, Name: name, NArgs: 1,
		Args: [2]Arg{{Key: k, Val: v}}})
}

// MarkMember records an instant edge event on a member's track.
func (sp *Span) MarkMember(name string, member, at int64) {
	if sp == nil || sp.ended || !sp.st.sc.Tracing() {
		return
	}
	sp.buf = append(sp.buf, Event{At: at, Tid: member + 1, Cat: sp.cat, Name: name,
		NArgs: 1, Args: [2]Arg{{Key: "member", Val: member}}})
}

// End closes a successful lifecycle at virtual time at: the root event plus
// every buffered child is emitted with the version stamped as pid, and the
// end-to-end histogram observes at-start.
func (sp *Span) End(at int64) {
	if sp == nil || sp.ended {
		return
	}
	sp.st.e2e.Observe(float64(at - sp.start))
	sp.flush(at, "")
}

// EndFailed closes an abandoned lifecycle (build retries exhausted, install
// rejected): the tree is still emitted — failures should be visible in the
// flame graph — but the end-to-end histogram is not fed.
func (sp *Span) EndFailed(at int64, outcome string) {
	if sp == nil || sp.ended {
		return
	}
	if outcome == "" {
		outcome = "failed"
	}
	sp.flush(at, outcome)
}

// Discard drops the span and its buffered children without emitting.
func (sp *Span) Discard() {
	if sp == nil {
		return
	}
	sp.ended = true
	sp.buf = nil
}

func (sp *Span) flush(at int64, outcome string) {
	sp.ended = true
	tr := sp.st.sc.Tracer()
	if tr == nil {
		sp.buf = nil
		return
	}
	dur := at - sp.start
	if dur < 1 {
		// Keep the root a span ("X") even if the lifecycle collapsed to a
		// single virtual instant, so the tree still nests.
		dur = 1
	}
	root := Event{At: sp.start, Dur: dur, Pid: sp.version, Cat: sp.cat,
		Name: sp.name, NArgs: 1, Args: [2]Arg{{Key: "version", Val: sp.version}}}
	if outcome != "" {
		root.NArgs = 2
		root.Args[1] = Arg{Key: "outcome", Str: outcome}
	}
	tr.Emit(root)
	for i := range sp.buf {
		sp.buf[i].Pid = sp.version
		tr.Emit(sp.buf[i])
	}
	sp.buf = nil
}
