// Package obs is the unified telemetry layer of the simulator: a metrics
// registry (counters, gauges, fixed-bucket histograms keyed by name plus
// ordered label pairs) whose snapshots serialize to Prometheus text
// exposition format, and a bounded event tracer stamped with virtual
// simulation time that exports Chrome trace-event JSON (loadable in
// chrome://tracing or Perfetto) and JSON lines.
//
// The package is stdlib-only and deliberately does not import netsim:
// timestamps are plain int64 nanoseconds, which is the identical type to
// netsim.Time (a type alias). Because the simulation engine is deterministic
// and every timestamp is virtual, two runs with the same seed produce
// byte-identical exports — traces are diffable regression artifacts, not
// just debugging aids.
//
// Instrumented components receive a Scope, a cheap value handle bundling a
// *Registry and a *Tracer plus base labels. The zero Scope (or Nop()) is a
// valid no-op: instruments resolved through it still count — so stats
// accessors keep returning correct values — but register nowhere and trace
// nothing, and the fast path performs no allocations (guarded by a benchmark
// in this package).
//
// Unlike the rest of the simulator, obs is goroutine-safe: the HTTP exporter
// reads snapshots while the simulation writes.
package obs

// Label is one name/value pair qualifying a metric or a scope.
type Label struct {
	Key   string
	Value string
}

// Scope is the instrumentation handle threaded through component
// constructors. It is a small value; copy it freely.
type Scope struct {
	reg    *Registry
	tracer *Tracer
	labels []Label
	tid    int64
}

// Nop returns the no-op scope. Identical to the zero value.
func Nop() Scope { return Scope{} }

// New returns a scope exporting metrics to reg and events to tr. Either may
// be nil to disable that half. When both halves are live the tracer's
// eviction count is mirrored into liteflow_trace_evicted_total, so silent
// trace-ring overflow shows up in /metrics.
func New(reg *Registry, tr *Tracer) Scope {
	if reg != nil && tr != nil {
		tr.bindEvictedCounter(reg.Counter("liteflow_trace_evicted_total",
			"trace events displaced by ring-buffer overflow"))
	}
	return Scope{reg: reg, tracer: tr}
}

// With returns a scope whose instruments carry the additional base labels
// (prepended before per-instrument labels, in order).
func (s Scope) With(labels ...Label) Scope {
	merged := make([]Label, 0, len(s.labels)+len(labels))
	merged = append(merged, s.labels...)
	merged = append(merged, labels...)
	return Scope{reg: s.reg, tracer: s.tracer, labels: merged, tid: s.tid}
}

// WithTracer returns a scope emitting trace events to tr instead of the
// current tracer, keeping the registry, labels and tid. The partitioned
// simulation engine uses it to route each partition's events into a private
// shard (netsim.Engine.PartitionScope); tr is not bound to the
// trace-eviction counter — the fold into the base tracer carries shard
// evictions.
func (s Scope) WithTracer(tr *Tracer) Scope {
	s.tracer = tr
	return s
}

// WithTid returns a scope whose trace events carry the given thread-track ID
// (Chrome trace "tid"). Fleet provisioning sets member index + 1 so each
// member's events render on its own track; tid 0 is the shared/controller
// track.
func (s Scope) WithTid(tid int64) Scope {
	s.tid = tid
	return s
}

// Tid returns the scope's thread-track ID (0 unless set with WithTid).
func (s Scope) Tid() int64 { return s.tid }

// Enabled reports whether the scope exports anywhere.
func (s Scope) Enabled() bool { return s.reg != nil || s.tracer != nil }

// Tracing reports whether the scope records trace events.
func (s Scope) Tracing() bool { return s.tracer != nil }

// Registry returns the backing registry (nil for a no-op scope).
func (s Scope) Registry() *Registry { return s.reg }

// Tracer returns the backing tracer (nil when tracing is off).
func (s Scope) Tracer() *Tracer { return s.tracer }

// Labels returns a copy of the scope's base labels in declaration order.
// Callers use it to reconstruct the exposition-name fragments (`k="v"`) that
// identify this scope's series in a flight recorder.
func (s Scope) Labels() []Label { return append([]Label(nil), s.labels...) }

// merged combines the scope's base labels with instrument labels.
func (s Scope) merged(labels []Label) []Label {
	if len(s.labels) == 0 {
		return labels
	}
	out := make([]Label, 0, len(s.labels)+len(labels))
	out = append(out, s.labels...)
	out = append(out, labels...)
	return out
}

// Counter resolves (registering on first use) a counter. On a no-op scope it
// returns a live but unregistered counter, so callers can still read back
// exact counts through their own accessors.
func (s Scope) Counter(name, help string, labels ...Label) *Counter {
	if s.reg == nil {
		return &Counter{}
	}
	return s.reg.Counter(name, help, s.merged(labels)...)
}

// Gauge resolves (registering on first use) a gauge.
func (s Scope) Gauge(name, help string, labels ...Label) *Gauge {
	if s.reg == nil {
		return &Gauge{}
	}
	return s.reg.Gauge(name, help, s.merged(labels)...)
}

// Histogram resolves (registering on first use) a fixed-bucket histogram.
// bounds are ascending upper bounds; a final +Inf bucket is implicit.
func (s Scope) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if s.reg == nil {
		return newHistogram(bounds)
	}
	return s.reg.Histogram(name, help, bounds, s.merged(labels)...)
}

// The fixed-arity event helpers below exist so hot paths can emit without
// constructing argument slices: on a no-op scope they return immediately and
// allocate nothing.

// Event records an instant event at virtual time at (nanoseconds).
func (s Scope) Event(cat, name string, at int64) {
	if s.tracer == nil {
		return
	}
	s.tracer.Emit(Event{At: at, Tid: s.tid, Cat: cat, Name: name})
}

// Event1 records an instant event with one integer argument.
func (s Scope) Event1(cat, name string, at int64, k string, v int64) {
	if s.tracer == nil {
		return
	}
	s.tracer.Emit(Event{At: at, Tid: s.tid, Cat: cat, Name: name, NArgs: 1,
		Args: [2]Arg{{Key: k, Val: v}}})
}

// Event2 records an instant event with two integer arguments.
func (s Scope) Event2(cat, name string, at int64, k1 string, v1 int64, k2 string, v2 int64) {
	if s.tracer == nil {
		return
	}
	s.tracer.Emit(Event{At: at, Tid: s.tid, Cat: cat, Name: name, NArgs: 2,
		Args: [2]Arg{{Key: k1, Val: v1}, {Key: k2, Val: v2}}})
}

// EventStr records an instant event with one string argument.
func (s Scope) EventStr(cat, name string, at int64, k, v string) {
	if s.tracer == nil {
		return
	}
	s.tracer.Emit(Event{At: at, Tid: s.tid, Cat: cat, Name: name, NArgs: 1,
		Args: [2]Arg{{Key: k, Str: v}}})
}

// EventMix records an instant event with one integer and one string
// argument — the mixed shape resilience events need (e.g. a retry attempt
// number plus the failing model's name).
func (s Scope) EventMix(cat, name string, at int64, k1 string, v1 int64, k2, v2 string) {
	if s.tracer == nil {
		return
	}
	s.tracer.Emit(Event{At: at, Tid: s.tid, Cat: cat, Name: name, NArgs: 2,
		Args: [2]Arg{{Key: k1, Val: v1}, {Key: k2, Str: v2}}})
}

// Span records a complete event covering [at, at+dur).
func (s Scope) Span(cat, name string, at, dur int64) {
	if s.tracer == nil {
		return
	}
	s.tracer.Emit(Event{At: at, Dur: dur, Tid: s.tid, Cat: cat, Name: name})
}

// Span1 records a complete event with one integer argument.
func (s Scope) Span1(cat, name string, at, dur int64, k string, v int64) {
	if s.tracer == nil {
		return
	}
	s.tracer.Emit(Event{At: at, Dur: dur, Tid: s.tid, Cat: cat, Name: name, NArgs: 1,
		Args: [2]Arg{{Key: k, Val: v}}})
}
