package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/liteflow-sim/liteflow/internal/netsim"
)

func TestWebSearchDistribution(t *testing.T) {
	d := WebSearch()
	r := rand.New(rand.NewSource(1))
	var short, mid, long int
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		s := d.Sample(r)
		sum += float64(s)
		switch ClassOf(s) {
		case Short:
			short++
		case Middle:
			mid++
		default:
			long++
		}
	}
	// The web-search workload is mostly short flows with a heavy tail.
	if float64(short)/n < 0.10 || float64(short)/n > 0.30 {
		t.Errorf("short fraction = %.3f", float64(short)/n)
	}
	if float64(long)/n < 0.30 || float64(long)/n > 0.55 {
		t.Errorf("long fraction = %.3f", float64(long)/n)
	}
	// Empirical mean should be near the analytic mean.
	mean := sum / n
	if mean < d.Mean()*0.9 || mean > d.Mean()*1.1 {
		t.Errorf("empirical mean %.0f vs analytic %.0f", mean, d.Mean())
	}
	if d.Mean() < 500_000 || d.Mean() > 3_000_000 {
		t.Errorf("web-search mean = %.0f bytes, expected ~MB scale", d.Mean())
	}
}

func TestSizeDistValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSizeDist([]float64{1}, []float64{1}) },
		func() { NewSizeDist([]float64{1, 2}, []float64{0.5, 0.9}) },  // doesn't end at 1
		func() { NewSizeDist([]float64{2, 1}, []float64{0.5, 1}) },    // sizes descending
		func() { NewSizeDist([]float64{1, 2}, []float64{0.9, 0.5}) },  // cdf descending
		func() { NewSizeDist([]float64{1, 2, 3}, []float64{0.5, 1}) }, // length mismatch
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid CDF must panic")
				}
			}()
			fn()
		}()
	}
}

func TestSampleWithinBounds(t *testing.T) {
	d := WebSearch()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			s := d.Sample(r)
			if s < 1 || s > 30_000_000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestClassOf(t *testing.T) {
	cases := map[int64]Class{
		100:       Short,
		9_999:     Short,
		10_000:    Middle,
		100_000:   Middle,
		100_001:   Long,
		5_000_000: Long,
	}
	for size, want := range cases {
		if got := ClassOf(size); got != want {
			t.Errorf("ClassOf(%d) = %v, want %v", size, got, want)
		}
	}
	for _, c := range []Class{Short, Middle, Long} {
		if c.String() == "" {
			t.Error("class must render")
		}
	}
}

func TestGenerateFlows(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	flows := Generate(r, 1000, 32, 0.4, 10e9, WebSearch())
	if len(flows) != 1000 {
		t.Fatalf("generated %d flows", len(flows))
	}
	prev := netsim.Time(-1)
	for _, f := range flows {
		if f.At < prev {
			t.Fatal("arrivals must be nondecreasing")
		}
		prev = f.At
		if f.Src == f.Dst {
			t.Fatal("src == dst")
		}
		if f.Src < 0 || f.Src >= 32 || f.Dst < 0 || f.Dst >= 32 {
			t.Fatal("host out of range")
		}
		if f.Size < 1 {
			t.Fatal("non-positive size")
		}
	}
	// Arrival rate should roughly produce the requested load: expected
	// duration for 1000 flows at λ = 0.4·32·10e9/(mean·8).
	lambda := 0.4 * 32 * 10e9 / (WebSearch().Mean() * 8)
	expected := netsim.Time(float64(1000) / lambda * 1e9)
	last := flows[len(flows)-1].At
	if last < expected/2 || last > expected*2 {
		t.Errorf("span = %v, expected ≈ %v", last, expected)
	}
}

func TestGenerateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("hosts < 2 must panic")
		}
	}()
	Generate(rand.New(rand.NewSource(1)), 1, 1, 0.5, 1e9, WebSearch())
}

type fakeRate struct{ rates []int64 }

func (f *fakeRate) SetRate(bps int64) { f.rates = append(f.rates, bps) }

func TestPatternSwitcher(t *testing.T) {
	eng := netsim.NewEngine()
	tgt := &fakeRate{}
	var switches []netsim.Time
	p := NewPatternSwitcher(eng, tgt, 100*netsim.Millisecond, []int64{100, 200, 300}, 7)
	p.OnSwitch = func(at netsim.Time, bps int64) { switches = append(switches, at) }
	p.Start()
	eng.RunUntil(550 * netsim.Millisecond)
	p.Stop()
	if len(tgt.rates) < 5 {
		t.Fatalf("got %d rate changes, want ≥ 5", len(tgt.rates))
	}
	for i := 1; i < len(tgt.rates); i++ {
		if tgt.rates[i] == tgt.rates[i-1] {
			t.Error("switcher must never repeat the current rate")
		}
	}
	if switches[0] != 0 {
		t.Error("first rate applies immediately")
	}
}

// TestPatternSwitcherCountsOnlyChanges pins the Switches semantics: the
// initial rate is the starting pattern (not counted), every later change is.
func TestPatternSwitcherCountsOnlyChanges(t *testing.T) {
	eng := netsim.NewEngine()
	tgt := &fakeRate{}
	p := NewPatternSwitcher(eng, tgt, 100*netsim.Millisecond, []int64{100, 200, 300}, 7)
	p.Start()
	if p.Switches != 0 {
		t.Fatalf("Switches = %d right after Start, want 0 (initial apply is not a switch)", p.Switches)
	}
	eng.RunUntil(550 * netsim.Millisecond)
	if want := len(tgt.rates) - 1; p.Switches != want {
		t.Errorf("Switches = %d, want %d (rate applications minus the initial one)", p.Switches, want)
	}
}

// TestPatternSwitcherFirstRateSeedDependent: Start draws the initial rate
// from the rng, so different seeds must be able to start on different rates
// (the old behavior always started at Rates[0]).
func TestPatternSwitcherFirstRateSeedDependent(t *testing.T) {
	first := func(seed int64) int64 {
		eng := netsim.NewEngine()
		tgt := &fakeRate{}
		p := NewPatternSwitcher(eng, tgt, netsim.Second, []int64{100, 200, 300}, seed)
		p.Start()
		return tgt.rates[0]
	}
	seen := make(map[int64]bool)
	for seed := int64(0); seed < 20; seed++ {
		seen[first(seed)] = true
	}
	if len(seen) < 2 {
		t.Errorf("20 seeds all started on the same rate %v; first rate must come from the rng", seen)
	}
}

// TestPatternSwitcherStartAtPins: StartAt fixes the initial pattern for
// callers whose premise depends on it (the adaptation experiments train the
// frozen model on Rates[0]).
func TestPatternSwitcherStartAtPins(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		eng := netsim.NewEngine()
		tgt := &fakeRate{}
		p := NewPatternSwitcher(eng, tgt, netsim.Second, []int64{100, 200, 300}, seed)
		p.StartAt(2)
		if tgt.rates[0] != 300 {
			t.Fatalf("seed %d: StartAt(2) applied %d, want 300", seed, tgt.rates[0])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("StartAt out of range must panic")
		}
	}()
	NewPatternSwitcher(netsim.NewEngine(), &fakeRate{}, 1, []int64{1, 2}, 1).StartAt(2)
}

// TestPatternSwitcherStopStartNoDoubleChain is the Stop→Start regression:
// the pending tick of the stopped run must die on the generation check
// instead of re-arming a second concurrent switch chain (which doubled
// Switches counting and rate draws).
func TestPatternSwitcherStopStartNoDoubleChain(t *testing.T) {
	eng := netsim.NewEngine()
	tgt := &fakeRate{}
	period := 100 * netsim.Millisecond
	p := NewPatternSwitcher(eng, tgt, period, []int64{100, 200, 300}, 7)
	p.Start()
	// Stop mid-period and restart immediately: the old tick (scheduled by
	// the first run) is still pending and fires after the restart.
	eng.At(250*netsim.Millisecond, func() {
		p.Stop()
		p.Start()
	})
	eng.RunUntil(1050 * netsim.Millisecond)
	p.Stop()
	// One healthy chain applies ~1 rate per period after restart. A doubled
	// chain applies ~2 per period. 10 periods + 2 initial applies + slack.
	if len(tgt.rates) > 13 {
		t.Errorf("%d rate applications over 10 periods — double switch chain after Stop→Start", len(tgt.rates))
	}
	// The chain must still be alive (the restart did not kill switching).
	if len(tgt.rates) < 9 {
		t.Errorf("only %d rate applications — switcher died after Stop→Start", len(tgt.rates))
	}
}

func TestPatternSwitcherValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("single-rate switcher must panic")
		}
	}()
	NewPatternSwitcher(netsim.NewEngine(), &fakeRate{}, 1, []int64{5}, 1)
}

func TestGenerateChurn(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 20000
	rate := 10000.0
	meanLife := 30 * netsim.Millisecond
	flows := GenerateChurn(r, n, rate, meanLife, 0.7)
	if len(flows) != n {
		t.Fatalf("got %d flows, want %d", len(flows), n)
	}
	var fins, queries int
	var lifeSum float64
	prev := netsim.Time(-1)
	for i, f := range flows {
		if f.ID != netsim.FlowID(i+1) {
			t.Fatalf("flow %d: ID = %d, IDs must be dense from 1", i, f.ID)
		}
		if f.Open < prev {
			t.Fatalf("flow %d opens at %d before predecessor %d — arrivals must be ordered", i, f.Open, prev)
		}
		prev = f.Open
		if f.Close < f.Open {
			t.Fatalf("flow %d closes before it opens", i)
		}
		if f.Queries < 1 || f.Queries > 4 {
			t.Fatalf("flow %d: Queries = %d, want 1..4", i, f.Queries)
		}
		if f.Fin {
			fins++
		}
		queries += f.Queries
		lifeSum += float64(f.Close - f.Open)
	}
	// Statistical shape, generous bounds: Poisson arrival span ≈ n/rate
	// seconds, exponential mean life ≈ meanLife, FIN fraction ≈ 0.7.
	span := float64(flows[n-1].Open) / 1e9
	if want := n / rate; span < want/2 || span > want*2 {
		t.Errorf("arrival span = %.3fs, want ~%.3fs", span, want)
	}
	if mean := lifeSum / n; mean < 0.8*float64(meanLife) || mean > 1.2*float64(meanLife) {
		t.Errorf("mean life = %.0fns, want ~%d", mean, meanLife)
	}
	if frac := float64(fins) / n; frac < 0.65 || frac > 0.75 {
		t.Errorf("FIN fraction = %.3f, want ~0.7", frac)
	}
	if avg := float64(queries) / n; avg < 2 || avg > 3 {
		t.Errorf("avg queries/flow = %.2f, want ~2.5", avg)
	}

	// Determinism: same seed, same flows.
	again := GenerateChurn(rand.New(rand.NewSource(7)), n, rate, meanLife, 0.7)
	for i := range flows {
		if flows[i] != again[i] {
			t.Fatalf("flow %d differs between same-seed generations", i)
		}
	}
}

// TestGenerateChurnAtOffsets: two populations composed in one experiment
// must not collide on flow IDs, and the second population's clock starts at
// its base time.
func TestGenerateChurnAtOffsets(t *testing.T) {
	a := GenerateChurnAt(rand.New(rand.NewSource(1)), 100, 1000, netsim.Millisecond, 0.5, 0, 0)
	base := a[len(a)-1].ID
	b := GenerateChurnAt(rand.New(rand.NewSource(2)), 100, 1000, netsim.Millisecond, 0.5,
		base, netsim.Second)
	ids := make(map[netsim.FlowID]bool)
	for _, f := range a {
		ids[f.ID] = true
	}
	for _, f := range b {
		if ids[f.ID] {
			t.Fatalf("flow ID %d collides across populations", f.ID)
		}
		if f.Open < netsim.Second {
			t.Fatalf("flow %d opens at %v, before the base time", f.ID, f.Open)
		}
	}
	// GenerateChurn must stay the zero-base special case.
	c := GenerateChurn(rand.New(rand.NewSource(1)), 100, 1000, netsim.Millisecond, 0.5)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("GenerateChurn != GenerateChurnAt(base 0)")
		}
	}
}

func TestGenerateChurnValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive rate must panic")
		}
	}()
	GenerateChurn(rand.New(rand.NewSource(1)), 1, 0, netsim.Millisecond, 0.5)
}

func BenchmarkSample(b *testing.B) {
	d := WebSearch()
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Sample(r)
	}
}
