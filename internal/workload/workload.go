// Package workload generates the traffic of the paper's evaluation: the
// DCTCP web-search flow-size distribution with Poisson arrivals for the
// spine–leaf experiments, and the background-pattern switcher that drives
// the online-adaptation experiments (Figures 5 and 12).
package workload

import (
	"math"
	"math/rand"
	"sort"

	"github.com/liteflow-sim/liteflow/internal/netsim"
)

// SizeDist samples flow sizes from a piecewise-linear empirical CDF.
type SizeDist struct {
	sizes []float64 // bytes, ascending
	cdf   []float64 // cumulative fractions, ascending, ends at 1
	mean  float64
}

// NewSizeDist builds a distribution from (size, cumulative fraction) points.
// Points must be ascending in both coordinates and end with fraction 1.
func NewSizeDist(sizes, cdf []float64) *SizeDist {
	if len(sizes) != len(cdf) || len(sizes) < 2 {
		panic("workload: need matching size/cdf points")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] || cdf[i] < cdf[i-1] {
			panic("workload: CDF points must be ascending")
		}
	}
	if cdf[len(cdf)-1] != 1 {
		panic("workload: CDF must end at 1")
	}
	d := &SizeDist{sizes: sizes, cdf: cdf}
	// Mean of the piecewise-linear distribution: trapezoid per segment.
	prevS, prevF := sizes[0], cdf[0]
	d.mean = prevS * prevF // mass at/below the first point
	for i := 1; i < len(sizes); i++ {
		d.mean += (cdf[i] - prevF) * (sizes[i] + prevS) / 2
		prevS, prevF = sizes[i], cdf[i]
	}
	return d
}

// WebSearch returns the DCTCP paper's web-search workload (sizes in bytes),
// the distribution both §5.2 and §5.3 use. Mostly short query/response
// flows with a heavy tail of multi-megabyte background transfers.
func WebSearch() *SizeDist {
	kb := 1000.0
	return NewSizeDist(
		[]float64{1 * kb, 6 * kb, 13 * kb, 19 * kb, 33 * kb, 53 * kb, 133 * kb,
			667 * kb, 1333 * kb, 3333 * kb, 6667 * kb, 20000 * kb, 30000 * kb},
		[]float64{0.0, 0.15, 0.20, 0.30, 0.40, 0.53, 0.60, 0.70, 0.80, 0.90,
			0.95, 0.98, 1.0},
	)
}

// Sample draws one flow size in bytes (at least 1).
func (d *SizeDist) Sample(r *rand.Rand) int64 {
	return d.SampleU(r.Float64())
}

// SampleU maps one uniform draw u ∈ [0,1) to a flow size — for callers with
// their own random source (the actor sessions keep an 8-byte prng instead of
// a *rand.Rand).
func (d *SizeDist) SampleU(u float64) int64 {
	i := sort.SearchFloat64s(d.cdf, u)
	if i == 0 {
		return int64(math.Max(1, d.sizes[0]))
	}
	if i >= len(d.cdf) {
		return int64(d.sizes[len(d.sizes)-1])
	}
	lo, hi := d.cdf[i-1], d.cdf[i]
	frac := 0.0
	if hi > lo {
		frac = (u - lo) / (hi - lo)
	}
	s := d.sizes[i-1] + frac*(d.sizes[i]-d.sizes[i-1])
	if s < 1 {
		s = 1
	}
	return int64(s)
}

// Mean returns the distribution mean in bytes.
func (d *SizeDist) Mean() float64 { return d.mean }

// FlowSpec is one generated flow.
type FlowSpec struct {
	At   netsim.Time
	Src  int
	Dst  int
	Size int64
}

// Class buckets flows the way Figures 16 and 17 report FCT: short (<10 KB),
// middle (10–100 KB), long (>100 KB).
type Class int

// Flow size classes.
const (
	Short Class = iota
	Middle
	Long
)

// String names the class as the figures do.
func (c Class) String() string {
	switch c {
	case Short:
		return "short(<10KB)"
	case Middle:
		return "mid(10-100KB)"
	default:
		return "long(>100KB)"
	}
}

// ClassOf buckets a flow size.
func ClassOf(sizeBytes int64) Class {
	switch {
	case sizeBytes < 10_000:
		return Short
	case sizeBytes <= 100_000:
		return Middle
	default:
		return Long
	}
}

// Generate produces n flows with Poisson arrivals at the rate that loads
// each host link to `load` of linkBps, sources and destinations drawn
// uniformly among hosts (src ≠ dst). Deterministic for a given rand source.
func Generate(r *rand.Rand, n, hosts int, load float64, linkBps int64, dist *SizeDist) []FlowSpec {
	if hosts < 2 {
		panic("workload: need at least two hosts")
	}
	// Aggregate arrival rate: load × hosts × linkBps / (mean size in bits).
	lambda := load * float64(hosts) * float64(linkBps) / (dist.Mean() * 8)
	t := 0.0
	out := make([]FlowSpec, 0, n)
	for i := 0; i < n; i++ {
		t += r.ExpFloat64() / lambda
		src := r.Intn(hosts)
		dst := r.Intn(hosts - 1)
		if dst >= src {
			dst++
		}
		out = append(out, FlowSpec{
			At:   netsim.Time(t * 1e9),
			Src:  src,
			Dst:  dst,
			Size: dist.Sample(r),
		})
	}
	return out
}

// ChurnFlow is one short-lived flow of a churn workload: it opens, issues a
// handful of fast-path queries across its lifetime, and either closes with a
// FIN or goes silent and idles out of the flow cache.
type ChurnFlow struct {
	ID      netsim.FlowID
	Open    netsim.Time // arrival (first query)
	Close   netsim.Time // last activity; ≥ Open
	Queries int         // total queries across [Open, Close], ≥ 1
	Fin     bool        // close with FIN (explicit cache drop) vs idle out
}

// GenerateChurn produces n short flows with Poisson arrivals at ratePerSec
// (aggregate flows/second) and exponentially distributed lifetimes with the
// given mean — the churn profile that stresses a flow cache: at any instant
// ~ratePerSec×meanLife flows are live, and the whole population turns over
// continuously. finFrac of flows end with a FIN; the rest stop querying and
// must be reclaimed by the cache's idle sweeper. Each flow issues 1–4
// queries. Deterministic for a given rand source.
func GenerateChurn(r *rand.Rand, n int, ratePerSec float64, meanLife netsim.Time, finFrac float64) []ChurnFlow {
	return GenerateChurnAt(r, n, ratePerSec, meanLife, finFrac, 0, 0)
}

// GenerateChurnAt is GenerateChurn with a composition base: flow IDs start
// at baseID+1 and arrivals at baseTime, so several populations can be layered
// in one experiment (scenario churn over session actors) without colliding on
// FlowID(i+1) or restarting the clock at zero.
func GenerateChurnAt(r *rand.Rand, n int, ratePerSec float64, meanLife netsim.Time, finFrac float64, baseID netsim.FlowID, baseTime netsim.Time) []ChurnFlow {
	if n < 0 || ratePerSec <= 0 || meanLife <= 0 {
		panic("workload: GenerateChurn needs n >= 0, ratePerSec > 0, meanLife > 0")
	}
	out := make([]ChurnFlow, 0, n)
	t := 0.0
	for i := 0; i < n; i++ {
		t += r.ExpFloat64() / ratePerSec
		life := netsim.Time(r.ExpFloat64() * float64(meanLife))
		open := baseTime + netsim.Time(t*1e9)
		out = append(out, ChurnFlow{
			ID:      baseID + netsim.FlowID(i+1),
			Open:    open,
			Close:   open + life,
			Queries: 1 + r.Intn(4),
			Fin:     r.Float64() < finFrac,
		})
	}
	return out
}

// RateSetter is anything whose sending rate can be changed live; the tcp
// UDPSource implements it.
type RateSetter interface {
	SetRate(bps int64)
}

// PatternSwitcher randomly re-draws a background traffic rate on a fixed
// period — the "randomly change the traffic pattern every 20 minutes" setup
// of the adaptation experiments, time-scaled to the simulation.
type PatternSwitcher struct {
	Eng    *netsim.Engine
	Target RateSetter
	// Period between switches.
	Period netsim.Time
	// Rates to draw from (uniformly, never repeating the current one).
	Rates []int64
	// OnSwitch observes each change (experiment annotation).
	OnSwitch func(at netsim.Time, bps int64)

	rng     *rand.Rand
	current int
	running bool
	// gen invalidates the pending tick of a previous run: a Stop→Start
	// cycle would otherwise let the old callback observe running==true and
	// re-arm, leaving two concurrent switch chains (the flowcache sweeper's
	// generation-counter pattern).
	gen int
	// Switches counts pattern *changes* applied — the initial rate is the
	// starting pattern, not a switch.
	Switches int
}

// NewPatternSwitcher returns a switcher driving target through rates.
func NewPatternSwitcher(eng *netsim.Engine, target RateSetter, period netsim.Time, rates []int64, seed int64) *PatternSwitcher {
	if len(rates) < 2 {
		panic("workload: need at least two rates to switch between")
	}
	return &PatternSwitcher{Eng: eng, Target: target, Period: period, Rates: rates,
		rng: rand.New(rand.NewSource(seed))}
}

// Start draws the initial rate from the switcher's rng, applies it
// immediately, and schedules periodic switches. The initial application
// fires OnSwitch but is not counted in Switches. Use StartAt when the
// starting pattern must be pinned (e.g. a model's training pattern).
func (p *PatternSwitcher) Start() {
	if p.running {
		return
	}
	p.StartAt(p.rng.Intn(len(p.Rates)))
}

// StartAt starts switching from Rates[idx] as the initial pattern.
func (p *PatternSwitcher) StartAt(idx int) {
	if p.running {
		return
	}
	if idx < 0 || idx >= len(p.Rates) {
		panic("workload: StartAt index out of range")
	}
	p.running = true
	p.gen++
	p.apply(idx)
	p.tick(p.gen)
}

// Stop halts switching after the pending period elapses. A later Start
// begins a fresh switch chain; the old pending tick dies on the generation
// check instead of re-arming alongside it.
func (p *PatternSwitcher) Stop() { p.running = false }

func (p *PatternSwitcher) apply(idx int) {
	p.current = idx
	p.Target.SetRate(p.Rates[idx])
	if p.OnSwitch != nil {
		p.OnSwitch(p.Eng.Now(), p.Rates[idx])
	}
}

func (p *PatternSwitcher) tick(gen int) {
	p.Eng.After(p.Period, func() {
		if !p.running || p.gen != gen {
			return
		}
		next := p.rng.Intn(len(p.Rates) - 1)
		if next >= p.current {
			next++
		}
		p.apply(next)
		p.Switches++
		p.tick(gen)
	})
}
