package ksim

import (
	"testing"

	"github.com/liteflow-sim/liteflow/internal/netsim"
)

func TestSubmitSerializesWork(t *testing.T) {
	e := netsim.NewEngine()
	c := NewCPU(e, 1)
	var done []netsim.Time
	c.Submit(Kernel, 100, func() { done = append(done, e.Now()) })
	c.Submit(Kernel, 100, func() { done = append(done, e.Now()) })
	e.Run()
	if len(done) != 2 || done[0] != 100 || done[1] != 200 {
		t.Errorf("completions = %v, want [100 200]", done)
	}
}

func TestMultiCoreSpeedsUpWallTime(t *testing.T) {
	e := netsim.NewEngine()
	c := NewCPU(e, 4)
	var at netsim.Time
	c.Submit(Kernel, 400, func() { at = e.Now() })
	e.Run()
	if at != 100 {
		t.Errorf("4-core completion = %d, want 100", at)
	}
	// Raw accounting still records the full CPU work.
	if c.BusyTime(Kernel) != 400 {
		t.Errorf("BusyTime = %d, want 400", c.BusyTime(Kernel))
	}
}

func TestBacklogRejection(t *testing.T) {
	e := netsim.NewEngine()
	c := NewCPU(e, 1)
	c.MaxBacklog = 1000
	if !c.Submit(SoftIRQ, 900, nil) {
		t.Fatal("first submit must fit")
	}
	if !c.Submit(SoftIRQ, 500, nil) {
		t.Fatal("second submit must fit (backlog 900 ≤ 1000)")
	}
	if c.Submit(SoftIRQ, 1, nil) {
		t.Error("submit beyond backlog bound must be rejected")
	}
	if c.Rejected() != 1 {
		t.Errorf("Rejected = %d, want 1", c.Rejected())
	}
}

func TestBacklogDrainsOverTime(t *testing.T) {
	e := netsim.NewEngine()
	c := NewCPU(e, 1)
	c.MaxBacklog = 100
	c.Submit(Kernel, 200, nil)
	if c.Submit(Kernel, 100, nil) {
		t.Fatal("must reject while backlog exceeds bound")
	}
	e.RunUntil(150)
	if !c.Submit(Kernel, 100, nil) {
		t.Error("must accept after backlog drained below bound")
	}
}

func TestAccountingSharesAndReport(t *testing.T) {
	e := netsim.NewEngine()
	c := NewCPU(e, 2)
	c.Submit(User, 100, nil)
	c.Submit(Kernel, 300, nil)
	c.Submit(SoftIRQ, 600, nil)
	if got := c.Share(SoftIRQ); got != 0.6 {
		t.Errorf("SoftIRQ share = %v, want 0.6", got)
	}
	if got := c.TotalBusy(); got != 1000 {
		t.Errorf("TotalBusy = %v, want 1000", got)
	}
	r := c.Report()
	if r.SoftIRQTime != 600 || r.UserTime != 100 || r.KernelTime != 300 {
		t.Errorf("report = %+v", r)
	}
	if r.String() == "" {
		t.Error("report must render")
	}
}

func TestUtilizationWindow(t *testing.T) {
	e := netsim.NewEngine()
	c := NewCPU(e, 1)
	c.Submit(Kernel, 500, nil)
	e.RunUntil(1000)
	if got := c.Utilization(); got != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	c.ResetAccounting()
	if c.TotalBusy() != 0 || c.Utilization() != 0 {
		t.Error("ResetAccounting must zero counters")
	}
	e.At(1000, func() { c.Submit(Kernel, 250, nil) })
	e.RunUntil(2000)
	if got := c.Utilization(); got != 0.25 {
		t.Errorf("post-reset Utilization = %v, want 0.25", got)
	}
}

func TestIdleCPUShareIsZero(t *testing.T) {
	e := netsim.NewEngine()
	c := NewCPU(e, 1)
	if c.Share(SoftIRQ) != 0 || c.Utilization() != 0 {
		t.Error("idle CPU must report zero shares")
	}
}

func TestChargeDoesNotReject(t *testing.T) {
	e := netsim.NewEngine()
	c := NewCPU(e, 1)
	c.MaxBacklog = 10
	c.Charge(User, 1_000_000)
	c.Charge(User, 1_000_000)
	if c.BusyTime(User) != 2_000_000 {
		t.Errorf("Charge must always account, got %d", c.BusyTime(User))
	}
}

func TestQueueDelay(t *testing.T) {
	e := netsim.NewEngine()
	c := NewCPU(e, 1)
	if c.QueueDelay() != 0 {
		t.Error("idle CPU queue delay must be 0")
	}
	c.Submit(Kernel, 400, nil)
	if c.QueueDelay() != 400 {
		t.Errorf("QueueDelay = %d, want 400", c.QueueDelay())
	}
	e.RunUntil(150)
	if c.QueueDelay() != 250 {
		t.Errorf("QueueDelay after 150 = %d, want 250", c.QueueDelay())
	}
}

func TestZeroCoresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCPU(0 cores) must panic")
		}
	}()
	NewCPU(netsim.NewEngine(), 0)
}

func TestCategoryString(t *testing.T) {
	if User.String() != "usr" || Kernel.String() != "sys" || SoftIRQ.String() != "soft" {
		t.Error("category names wrong")
	}
	if Category(42).String() == "" {
		t.Error("unknown category must still render")
	}
}

func TestInferCostFloor(t *testing.T) {
	if got := InferCost(2, 10); got != netsim.Microsecond {
		t.Errorf("tiny inference must hit the 1µs floor, got %d", got)
	}
	if got := InferCost(2, 1_000_000); got != 2_000_000 {
		t.Errorf("large inference = %d, want 2ms", got)
	}
}

func TestDefaultCostsSane(t *testing.T) {
	c := DefaultCosts()
	if c.PacketRx <= 0 || c.CrossSpace <= c.PacketRx {
		t.Errorf("cross-space switching must dominate per-packet cost: %+v", c)
	}
	if c.NetlinkPerMsg >= c.CrossSpace {
		t.Error("a batched netlink message must be cheaper than a cross-space control switch")
	}
}

func BenchmarkSubmit(b *testing.B) {
	e := netsim.NewEngine()
	c := NewCPU(e, 4)
	c.MaxBacklog = 1 << 60
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Submit(SoftIRQ, 100, nil)
	}
}
