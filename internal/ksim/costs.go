package ksim

import "github.com/liteflow-sim/liteflow/internal/netsim"

// Costs is the single calibration point of the CPU model (DESIGN.md §4).
// Every constant is raw CPU time charged per operation. The defaults are
// scaled so that the simulated testbed reproduces the *shapes* of the
// paper's CPU-bound figures at 1/10 of the testbed's absolute rates, which
// keeps event counts tractable: the paper's 4-core 2.6 GHz hosts drive
// ~16 Gbps aggregate; the simulated hosts drive ~1.6 Gbps with costs scaled
// ×10, preserving every ratio the figures depend on.
type Costs struct {
	// PacketRx is softirq work per received packet (NET_RX processing:
	// driver poll, GRO, protocol demux).
	PacketRx netsim.Time
	// PacketRxSys is the kernel (sys) work per received packet above the
	// softirq portion: socket delivery, TCP state machine. Splitting the
	// two keeps the baseline softirq share near mpstat's ~12% for a pure
	// kernel CC (Figure 4's BBR bar).
	PacketRxSys netsim.Time
	// PacketTx is kernel work per transmitted packet (qdisc + driver).
	PacketTx netsim.Time
	// CrossSpace is the softirq work of one kernel↔userspace transition
	// (context switch, wakeup, copy). A request/response exchange costs
	// two of these. This is the quantity Figure 4 attributes the CCP
	// overhead to.
	CrossSpace netsim.Time
	// CrossSpacePerAck is the softirq work of one transition in CCP's
	// per-ACK mode. Unlike CrossSpace it is NOT ×10-scaled: per-ACK events
	// occur at near-real packet rates in the simulation (per-flow rates are
	// only mildly scaled), so they carry near-real cost; the ×10 scaling on
	// CrossSpace compensates the ×10-reduced rate of interval-driven
	// exchanges only.
	CrossSpacePerAck netsim.Time
	// CrossSpaceLatency is the wall-clock latency a cross-space round trip
	// adds to a control decision, beyond queueing.
	CrossSpaceLatency netsim.Time
	// NetlinkPerMsg is the kernel work to send one batched netlink message.
	NetlinkPerMsg netsim.Time
	// NetlinkPerByte is the copy cost per payload byte of a netlink batch.
	NetlinkPerByte netsim.Time
	// KernelInferPerMAC is kernel work per multiply-accumulate of an
	// integer snapshot inference (integer ALU only).
	KernelInferPerMAC netsim.Time
	// UserInferPerMAC is userspace work per MAC of a float inference.
	UserInferPerMAC netsim.Time
	// CharDevPerMsg is the per-message cost of the char-device transport
	// used by the char-FFNN / char-MLP baselines (two copies + ioctl).
	CharDevPerMsg netsim.Time
	// CharDevLatency is the one-way latency of a char-device exchange —
	// calibrated so a round trip plus userspace inference lands near the
	// paper's 4.34 µs char-FFNN prediction latency (Figure 15).
	CharDevLatency netsim.Time
	// NetlinkLatency is the one-way latency of a per-message netlink
	// exchange (the 8.09 µs netlink-FFNN path of Figure 15).
	NetlinkLatency netsim.Time
	// SnapshotInstallPerParam is kernel work per parameter when installing
	// a standby snapshot (module load + relocation analog).
	SnapshotInstallPerParam netsim.Time
}

// DefaultCosts returns the calibrated cost set used by all experiments.
func DefaultCosts() Costs {
	return Costs{
		PacketRx:                4 * netsim.Microsecond,
		PacketRxSys:             16 * netsim.Microsecond,
		PacketTx:                10 * netsim.Microsecond,
		CrossSpace:              150 * netsim.Microsecond,
		CrossSpacePerAck:        5 * netsim.Microsecond,
		CrossSpaceLatency:       50 * netsim.Microsecond,
		NetlinkPerMsg:           30 * netsim.Microsecond,
		NetlinkPerByte:          2, // 2 ns per byte
		KernelInferPerMAC:       2, // 2 ns per integer MAC
		UserInferPerMAC:         1, // float MAC with SIMD in userspace
		CharDevPerMsg:           80 * netsim.Microsecond,
		CharDevLatency:          1600, // 1.6 µs one way
		NetlinkLatency:          3500, // 3.5 µs one way
		SnapshotInstallPerParam: 500,
	}
}

// InferCost returns the CPU work of one inference of a network with the
// given MAC count using the per-MAC cost, with a floor of 1 µs modelling
// fixed call overhead.
func InferCost(perMAC netsim.Time, macs int) netsim.Time {
	c := perMAC * netsim.Time(macs)
	if c < netsim.Microsecond {
		c = netsim.Microsecond
	}
	return c
}
