// Package ksim models the host CPU of a kernel datapath: a finite processing
// resource shared by packet processing (softirq), kernel work, and userspace
// work. It is the substitute for the real kernel's scheduling behaviour that
// the LiteFlow paper measures with mpstat (Figures 3, 4, 13, 14): when
// cross-space communication consumes CPU, fewer cycles remain for packet
// processing and datapath throughput collapses.
//
// The model is a single logical work-conserving server whose capacity scales
// with the configured core count. Work items are serialized FIFO; each item
// charges its duration to an accounting category. When the backlog exceeds a
// bound the submission is rejected — the analog of NIC ring overflow under
// overload.
package ksim

import (
	"fmt"

	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/obs"
	"github.com/liteflow-sim/liteflow/internal/opt"
)

// Category classifies CPU time the way mpstat buckets it.
type Category int

// Accounting categories.
const (
	User    Category = iota // userspace execution (NN tuning, CCP agent)
	Kernel                  // syscalls and kernel datapath logic
	SoftIRQ                 // packet receive processing and cross-space switching
	numCategories
)

// String returns the mpstat-style column name.
func (c Category) String() string {
	switch c {
	case User:
		return "usr"
	case Kernel:
		return "sys"
	case SoftIRQ:
		return "soft"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// CPU is a finite compute resource attached to a simulation engine.
type CPU struct {
	eng   *netsim.Engine
	cores int

	busyUntil netsim.Time
	acct      [numCategories]netsim.Time // raw CPU-time consumed per category

	// MaxBacklog bounds how far work may queue ahead of the current time
	// (in wall time). Submissions beyond it are rejected. This models the
	// finite NIC ring / softirq budget: an overloaded kernel drops packets
	// rather than queueing them forever.
	MaxBacklog netsim.Time

	rejected int64
	started  netsim.Time

	sc      obs.Scope
	busyNS  [numCategories]*obs.Counter
	rejects *obs.Counter
}

// DefaultMaxBacklog is the default bound on queued work, in wall time.
const DefaultMaxBacklog = 5 * netsim.Millisecond

// NewHostCPU returns a CPU with the given core count attached to eng. It
// panics if cores is not positive. opt.WithScope exports per-category busy
// time and charge trace events; omitted, telemetry is a no-op.
func NewHostCPU(eng *netsim.Engine, cores int, options ...opt.Option) *CPU {
	return NewCPU(eng, cores, opt.Resolve(options).Scope)
}

// NewCPU is the pre-options constructor.
//
// Deprecated: use NewHostCPU, which takes functional options (opt.WithScope).
func NewCPU(eng *netsim.Engine, cores int, sc ...obs.Scope) *CPU {
	if cores <= 0 {
		panic("ksim: cores must be positive")
	}
	c := &CPU{eng: eng, cores: cores, MaxBacklog: DefaultMaxBacklog, started: eng.Now()}
	if len(sc) > 0 {
		c.sc = sc[0]
	}
	for cat := Category(0); cat < numCategories; cat++ {
		c.busyNS[cat] = c.sc.Counter("liteflow_cpu_busy_ns_total",
			"raw CPU time consumed, by mpstat category",
			obs.Label{Key: "category", Value: cat.String()})
	}
	c.rejects = c.sc.Counter("liteflow_cpu_rejected_total",
		"work submissions refused by the backlog bound")
	return c
}

// Cores returns the configured core count.
func (c *CPU) Cores() int { return c.cores }

// Rejected returns how many submissions were refused due to backlog.
func (c *CPU) Rejected() int64 { return c.rejected }

// wallTime converts raw CPU work into wall time on this CPU: n cores retire
// work n times faster.
func (c *CPU) wallTime(work netsim.Time) netsim.Time {
	w := work / netsim.Time(c.cores)
	if w == 0 && work > 0 {
		w = 1
	}
	return w
}

// Submit schedules a work item consuming the given CPU time in category cat,
// invoking done (which may be nil) when the work retires. It reports false —
// and drops the work — when the backlog bound is exceeded.
func (c *CPU) Submit(cat Category, work netsim.Time, done func()) bool {
	now := c.eng.Now()
	if c.busyUntil < now {
		c.busyUntil = now
	}
	if c.busyUntil-now > c.MaxBacklog {
		c.rejected++
		c.rejects.Inc()
		c.sc.Event1("cpu", "reject", now, "ns", int64(work))
		return false
	}
	c.acct[cat] += work
	c.busyUntil += c.wallTime(work)
	c.busyNS[cat].Add(int64(work))
	c.sc.Event1("cpu", cat.String(), now, "ns", int64(work))
	if done != nil {
		at := c.busyUntil
		c.eng.At(at, done)
	}
	return true
}

// SubmitPacket is the closure-free Submit for per-packet work: when the work
// retires, fn(p) runs — the packet rides in the engine's typed event, so the
// steady-state packet datapath schedules CPU completions without allocating.
// Backlog rejection matches Submit; the caller owns (and frees) the packet
// on rejection.
func (c *CPU) SubmitPacket(cat Category, work netsim.Time, fn func(*netsim.Packet), p *netsim.Packet) bool {
	now := c.eng.Now()
	if c.busyUntil < now {
		c.busyUntil = now
	}
	if c.busyUntil-now > c.MaxBacklog {
		c.rejected++
		c.rejects.Inc()
		c.sc.Event1("cpu", "reject", now, "ns", int64(work))
		return false
	}
	c.acct[cat] += work
	c.busyUntil += c.wallTime(work)
	c.busyNS[cat].Add(int64(work))
	c.sc.Event1("cpu", cat.String(), now, "ns", int64(work))
	c.eng.AtPacket(c.busyUntil, fn, p)
	return true
}

// Charge accounts CPU time without scheduling a completion callback and
// without backlog rejection. Use it for background work whose completion is
// tracked elsewhere (e.g. a userspace trainer's compute burst).
func (c *CPU) Charge(cat Category, work netsim.Time) {
	now := c.eng.Now()
	if c.busyUntil < now {
		c.busyUntil = now
	}
	c.acct[cat] += work
	c.busyUntil += c.wallTime(work)
	c.busyNS[cat].Add(int64(work))
	c.sc.Event1("cpu", cat.String(), now, "ns", int64(work))
}

// QueueDelay returns how long newly submitted work would wait before starting.
func (c *CPU) QueueDelay() netsim.Time {
	now := c.eng.Now()
	if c.busyUntil <= now {
		return 0
	}
	return c.busyUntil - now
}

// BusyTime returns the raw CPU time consumed in category cat since the last
// ResetAccounting (or construction).
func (c *CPU) BusyTime(cat Category) netsim.Time { return c.acct[cat] }

// TotalBusy returns the raw CPU time consumed across all categories.
func (c *CPU) TotalBusy() netsim.Time {
	var t netsim.Time
	for _, v := range c.acct {
		t += v
	}
	return t
}

// Share returns category cat's fraction of total busy CPU time — the
// quantity Figure 4 and Figure 14 report ("portion of time handling software
// interrupts over total execution time"). It returns 0 when idle.
func (c *CPU) Share(cat Category) float64 {
	tot := c.TotalBusy()
	if tot == 0 {
		return 0
	}
	return float64(c.acct[cat]) / float64(tot)
}

// Utilization returns total busy CPU time divided by available CPU time
// (cores × elapsed wall time) since the last ResetAccounting.
func (c *CPU) Utilization() float64 {
	elapsed := c.eng.Now() - c.started
	if elapsed <= 0 {
		return 0
	}
	return float64(c.TotalBusy()) / float64(elapsed*netsim.Time(c.cores))
}

// ResetAccounting zeroes the per-category counters and restarts the
// utilization window, like re-running mpstat for a fresh interval.
func (c *CPU) ResetAccounting() {
	c.acct = [numCategories]netsim.Time{}
	c.rejected = 0
	c.started = c.eng.Now()
}

// Report is an mpstat-style snapshot of CPU accounting.
type Report struct {
	UserTime    netsim.Time
	KernelTime  netsim.Time
	SoftIRQTime netsim.Time
	SoftShare   float64 // SoftIRQTime / total busy
	Utilization float64
	Rejected    int64
}

// Report returns the current accounting snapshot.
func (c *CPU) Report() Report {
	return Report{
		UserTime:    c.acct[User],
		KernelTime:  c.acct[Kernel],
		SoftIRQTime: c.acct[SoftIRQ],
		SoftShare:   c.Share(SoftIRQ),
		Utilization: c.Utilization(),
		Rejected:    c.rejected,
	}
}

// String renders the report as one mpstat-like line.
func (r Report) String() string {
	return fmt.Sprintf("usr=%.1fms sys=%.1fms soft=%.1fms soft%%=%.1f util=%.2f rej=%d",
		float64(r.UserTime)/1e6, float64(r.KernelTime)/1e6, float64(r.SoftIRQTime)/1e6,
		r.SoftShare*100, r.Utilization, r.Rejected)
}
