// Package nn implements the small float64 multilayer perceptrons used by the
// LiteFlow experiments: Aurora (32/16), MOCC (64/32), FLUX's FFNN (5/5) and
// the load-balancing MLP (12/12). It provides forward/backward passes, SGD
// and Adam optimizers, and deterministic initialization — the userspace
// "slow path" half of the system. The kernel "fast path" half is its
// integer-quantized counterpart in package quant.
//
// The implementation is deliberately simple and allocation-free on the
// forward path: inference writes into caller-provided buffers, following the
// preallocated-decoder idiom from gopacket's DecodingLayerParser.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	Linear Activation = iota
	ReLU
	Tanh
	Sigmoid
)

// String returns the activation name used by codegen templates.
func (a Activation) String() string {
	switch a {
	case Linear:
		return "linear"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case Sigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// Apply computes the activation of x.
func (a Activation) Apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Tanh:
		return math.Tanh(x)
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	default:
		return x
	}
}

// Deriv computes the activation derivative given the activation output y.
func (a Activation) Deriv(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case Sigmoid:
		return y * (1 - y)
	default:
		return 1
	}
}

// Dense is one fully connected layer: out = act(W·in + b).
type Dense struct {
	In, Out int
	W       [][]float64 // [Out][In]
	B       []float64   // [Out]
	Act     Activation

	// Gradient accumulators, filled by Network.Backward.
	GW [][]float64
	GB []float64

	// Cached forward values for backprop.
	input []float64 // last input
	out   []float64 // last activated output
}

func newDense(in, out int, act Activation, r *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, Act: act}
	d.W = make([][]float64, out)
	d.GW = make([][]float64, out)
	// Xavier/Glorot uniform initialization keeps small tanh nets trainable.
	limit := math.Sqrt(6 / float64(in+out))
	for i := range d.W {
		d.W[i] = make([]float64, in)
		d.GW[i] = make([]float64, in)
		for j := range d.W[i] {
			d.W[i][j] = (r.Float64()*2 - 1) * limit
		}
	}
	d.B = make([]float64, out)
	d.GB = make([]float64, out)
	d.input = make([]float64, in)
	d.out = make([]float64, out)
	return d
}

// Network is a feed-forward stack of Dense layers.
type Network struct {
	Layers []*Dense
	// scratch holds per-layer input-gradient buffers for backprop.
	scratch [][]float64
}

// New builds a network with the given layer sizes (inputs first) and one
// activation per weight layer (len(acts) == len(sizes)-1). Weights are
// initialized deterministically from seed.
func New(sizes []int, acts []Activation, seed int64) *Network {
	if len(sizes) < 2 {
		panic("nn: need at least input and output sizes")
	}
	if len(acts) != len(sizes)-1 {
		panic("nn: need one activation per layer")
	}
	r := rand.New(rand.NewSource(seed))
	n := &Network{}
	for i := 0; i < len(sizes)-1; i++ {
		n.Layers = append(n.Layers, newDense(sizes[i], sizes[i+1], acts[i], r))
		n.scratch = append(n.scratch, make([]float64, sizes[i]))
	}
	return n
}

// InputSize returns the network's input dimension.
func (n *Network) InputSize() int { return n.Layers[0].In }

// OutputSize returns the network's output dimension.
func (n *Network) OutputSize() int { return n.Layers[len(n.Layers)-1].Out }

// MACs returns the multiply-accumulate count of one inference, used by the
// CPU cost model.
func (n *Network) MACs() int {
	m := 0
	for _, l := range n.Layers {
		m += l.In * l.Out
	}
	return m
}

// NumParams returns the total parameter count (weights + biases).
func (n *Network) NumParams() int {
	p := 0
	for _, l := range n.Layers {
		p += l.In*l.Out + l.Out
	}
	return p
}

// Forward runs inference on in, writing the result into out (which must have
// length OutputSize). It caches intermediate activations for Backward and
// performs no allocation.
func (n *Network) Forward(in, out []float64) {
	if len(in) != n.InputSize() {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(in), n.InputSize()))
	}
	if len(out) != n.OutputSize() {
		panic(fmt.Sprintf("nn: output size %d, want %d", len(out), n.OutputSize()))
	}
	cur := in
	for li, l := range n.Layers {
		copy(l.input, cur)
		dst := l.out
		if li == len(n.Layers)-1 {
			dst = out
		}
		for i := 0; i < l.Out; i++ {
			sum := l.B[i]
			w := l.W[i]
			for j := 0; j < l.In; j++ {
				sum += w[j] * cur[j]
			}
			dst[i] = l.Act.Apply(sum)
		}
		if li == len(n.Layers)-1 {
			copy(l.out, dst)
		}
		cur = l.out
	}
}

// Infer is Forward without retaining anything for training; it allocates the
// output slice for convenience.
func (n *Network) Infer(in []float64) []float64 {
	out := make([]float64, n.OutputSize())
	n.Forward(in, out)
	return out
}

// Backward backpropagates dLoss/dOutput (for the most recent Forward call)
// and accumulates parameter gradients into GW/GB. Call ZeroGrad between
// mini-batches.
func (n *Network) Backward(gradOut []float64) {
	if len(gradOut) != n.OutputSize() {
		panic("nn: gradOut size mismatch")
	}
	grad := gradOut
	for li := len(n.Layers) - 1; li >= 0; li-- {
		l := n.Layers[li]
		prev := n.scratch[li]
		for j := range prev {
			prev[j] = 0
		}
		for i := 0; i < l.Out; i++ {
			d := grad[i] * l.Act.Deriv(l.out[i])
			l.GB[i] += d
			w := l.W[i]
			gw := l.GW[i]
			for j := 0; j < l.In; j++ {
				gw[j] += d * l.input[j]
				prev[j] += d * w[j]
			}
		}
		grad = prev
	}
}

// ZeroGrad clears all accumulated gradients.
func (n *Network) ZeroGrad() {
	for _, l := range n.Layers {
		for i := range l.GW {
			for j := range l.GW[i] {
				l.GW[i][j] = 0
			}
			l.GB[i] = 0
		}
	}
}

// ClipGrad scales gradients down so their global L2 norm is at most maxNorm;
// a no-op when already within bounds or maxNorm ≤ 0.
func (n *Network) ClipGrad(maxNorm float64) {
	if maxNorm <= 0 {
		return
	}
	var sum float64
	for _, l := range n.Layers {
		for i := range l.GW {
			for _, g := range l.GW[i] {
				sum += g * g
			}
			sum += l.GB[i] * l.GB[i]
		}
	}
	norm := math.Sqrt(sum)
	if norm <= maxNorm {
		return
	}
	scale := maxNorm / norm
	for _, l := range n.Layers {
		for i := range l.GW {
			for j := range l.GW[i] {
				l.GW[i][j] *= scale
			}
			l.GB[i] *= scale
		}
	}
}

// Clone returns a deep copy sharing no state with n.
func (n *Network) Clone() *Network {
	c := &Network{}
	for _, l := range n.Layers {
		nl := &Dense{In: l.In, Out: l.Out, Act: l.Act}
		nl.W = make([][]float64, l.Out)
		nl.GW = make([][]float64, l.Out)
		for i := range l.W {
			nl.W[i] = append([]float64(nil), l.W[i]...)
			nl.GW[i] = make([]float64, l.In)
		}
		nl.B = append([]float64(nil), l.B...)
		nl.GB = make([]float64, l.Out)
		nl.input = make([]float64, l.In)
		nl.out = make([]float64, l.Out)
		c.Layers = append(c.Layers, nl)
		c.scratch = append(c.scratch, make([]float64, l.In))
	}
	return c
}

// CopyParamsFrom copies weights and biases from src (architectures must
// match) without touching gradients or optimizer state.
func (n *Network) CopyParamsFrom(src *Network) {
	if len(n.Layers) != len(src.Layers) {
		panic("nn: architecture mismatch")
	}
	for li, l := range n.Layers {
		s := src.Layers[li]
		if l.In != s.In || l.Out != s.Out {
			panic("nn: layer shape mismatch")
		}
		for i := range l.W {
			copy(l.W[i], s.W[i])
		}
		copy(l.B, s.B)
	}
}
