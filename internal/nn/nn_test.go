package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestActivations(t *testing.T) {
	cases := []struct {
		a    Activation
		x    float64
		want float64
	}{
		{Linear, 3, 3},
		{Linear, -2, -2},
		{ReLU, 5, 5},
		{ReLU, -5, 0},
		{Tanh, 0, 0},
		{Sigmoid, 0, 0.5},
	}
	for _, c := range cases {
		if got := c.a.Apply(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v.Apply(%v) = %v, want %v", c.a, c.x, got, c.want)
		}
	}
	if Tanh.Apply(100) <= 0.999 || Sigmoid.Apply(100) <= 0.999 {
		t.Error("saturating activations must approach 1")
	}
}

// Derivatives checked against finite differences through the output form.
func TestActivationDerivs(t *testing.T) {
	for _, a := range []Activation{Linear, Tanh, Sigmoid} {
		for _, x := range []float64{-1.5, -0.2, 0.3, 1.2} {
			h := 1e-6
			want := (a.Apply(x+h) - a.Apply(x-h)) / (2 * h)
			got := a.Deriv(a.Apply(x))
			if math.Abs(got-want) > 1e-5 {
				t.Errorf("%v.Deriv at %v = %v, want %v", a, x, got, want)
			}
		}
	}
	if ReLU.Deriv(2) != 1 || ReLU.Deriv(0) != 0 {
		t.Error("ReLU derivative wrong")
	}
}

func TestActivationString(t *testing.T) {
	names := map[Activation]string{Linear: "linear", ReLU: "relu", Tanh: "tanh", Sigmoid: "sigmoid"}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestNewShapeValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New([]int{3}, nil, 1) },
		func() { New([]int{3, 2}, []Activation{ReLU, ReLU}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid construction must panic")
				}
			}()
			fn()
		}()
	}
}

func TestDeterministicInit(t *testing.T) {
	a := New([]int{4, 8, 2}, []Activation{Tanh, Linear}, 42)
	b := New([]int{4, 8, 2}, []Activation{Tanh, Linear}, 42)
	in := []float64{0.1, -0.2, 0.3, 0.4}
	oa, ob := a.Infer(in), b.Infer(in)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatal("same seed must give identical networks")
		}
	}
	c := New([]int{4, 8, 2}, []Activation{Tanh, Linear}, 43)
	oc := c.Infer(in)
	if oa[0] == oc[0] && oa[1] == oc[1] {
		t.Error("different seeds should give different networks")
	}
}

func TestForwardKnownValues(t *testing.T) {
	// Hand-build a 2→2→1 net with known weights.
	n := New([]int{2, 2, 1}, []Activation{ReLU, Linear}, 1)
	n.Layers[0].W = [][]float64{{1, 1}, {1, -1}}
	n.Layers[0].B = []float64{0, 0}
	n.Layers[1].W = [][]float64{{2, 3}}
	n.Layers[1].B = []float64{-1}
	out := n.Infer([]float64{3, 1})
	// hidden = relu([4, 2]) = [4, 2]; out = 2·4 + 3·2 − 1 = 13
	if out[0] != 13 {
		t.Errorf("out = %v, want 13", out[0])
	}
	out = n.Infer([]float64{1, 3})
	// hidden = relu([4, −2]) = [4, 0]; out = 8 − 1 = 7
	if out[0] != 7 {
		t.Errorf("out = %v, want 7", out[0])
	}
}

func TestForwardSizePanics(t *testing.T) {
	n := New([]int{2, 2}, []Activation{Linear}, 1)
	defer func() {
		if recover() == nil {
			t.Error("wrong input size must panic")
		}
	}()
	n.Forward([]float64{1}, make([]float64, 2))
}

func TestMACsAndParams(t *testing.T) {
	// Aurora architecture: 30 → 32 → 16 → 1.
	n := New([]int{30, 32, 16, 1}, []Activation{Tanh, Tanh, Linear}, 1)
	wantMACs := 30*32 + 32*16 + 16*1
	if n.MACs() != wantMACs {
		t.Errorf("MACs = %d, want %d", n.MACs(), wantMACs)
	}
	wantParams := wantMACs + 32 + 16 + 1
	if n.NumParams() != wantParams {
		t.Errorf("NumParams = %d, want %d", n.NumParams(), wantParams)
	}
}

// Gradient check: backprop gradients must match finite differences.
func TestBackwardGradientCheck(t *testing.T) {
	n := New([]int{3, 4, 2}, []Activation{Tanh, Sigmoid}, 7)
	in := []float64{0.5, -0.3, 0.8}
	target := []float64{0.2, 0.7}
	out := make([]float64, 2)
	grad := make([]float64, 2)

	loss := func() float64 {
		n.Forward(in, out)
		l := 0.0
		for i := range out {
			d := out[i] - target[i]
			l += d * d
		}
		return l / 2
	}

	n.ZeroGrad()
	n.Forward(in, out)
	for i := range grad {
		grad[i] = (out[i] - target[i]) // dLoss/dOut for 0.5·Σd²
	}
	n.Backward(grad)

	const h = 1e-6
	for li, l := range n.Layers {
		for i := range l.W {
			for j := range l.W[i] {
				orig := l.W[i][j]
				l.W[i][j] = orig + h
				lp := loss()
				l.W[i][j] = orig - h
				lm := loss()
				l.W[i][j] = orig
				want := (lp - lm) / (2 * h)
				if math.Abs(l.GW[i][j]-want) > 1e-4 {
					t.Fatalf("layer %d W[%d][%d]: grad = %v, finite diff = %v", li, i, j, l.GW[i][j], want)
				}
			}
			orig := l.B[i]
			l.B[i] = orig + h
			lp := loss()
			l.B[i] = orig - h
			lm := loss()
			l.B[i] = orig
			want := (lp - lm) / (2 * h)
			if math.Abs(l.GB[i]-want) > 1e-4 {
				t.Fatalf("layer %d B[%d]: grad = %v, finite diff = %v", li, i, want, l.GB[i])
			}
		}
	}
}

func TestZeroGrad(t *testing.T) {
	n := New([]int{2, 3, 1}, []Activation{ReLU, Linear}, 1)
	out := make([]float64, 1)
	n.Forward([]float64{1, 2}, out)
	n.Backward([]float64{1})
	n.ZeroGrad()
	for _, l := range n.Layers {
		for i := range l.GW {
			for j := range l.GW[i] {
				if l.GW[i][j] != 0 {
					t.Fatal("ZeroGrad left weight gradient")
				}
			}
			if l.GB[i] != 0 {
				t.Fatal("ZeroGrad left bias gradient")
			}
		}
	}
}

func TestClipGrad(t *testing.T) {
	n := New([]int{1, 1}, []Activation{Linear}, 1)
	n.Layers[0].GW[0][0] = 3
	n.Layers[0].GB[0] = 4 // norm = 5
	n.ClipGrad(1)
	norm := math.Hypot(n.Layers[0].GW[0][0], n.Layers[0].GB[0])
	if math.Abs(norm-1) > 1e-12 {
		t.Errorf("clipped norm = %v, want 1", norm)
	}
	// Within bounds: untouched.
	n.Layers[0].GW[0][0] = 0.1
	n.Layers[0].GB[0] = 0
	n.ClipGrad(1)
	if n.Layers[0].GW[0][0] != 0.1 {
		t.Error("in-bounds gradient must not be scaled")
	}
}

func TestCloneIndependence(t *testing.T) {
	n := New([]int{2, 3, 1}, []Activation{Tanh, Linear}, 5)
	c := n.Clone()
	in := []float64{0.3, -0.7}
	if n.Infer(in)[0] != c.Infer(in)[0] {
		t.Fatal("clone must match original")
	}
	n.Layers[0].W[0][0] += 1
	if n.Infer(in)[0] == c.Infer(in)[0] {
		t.Error("mutating original must not affect clone")
	}
}

func TestCopyParamsFrom(t *testing.T) {
	a := New([]int{2, 3, 1}, []Activation{Tanh, Linear}, 1)
	b := New([]int{2, 3, 1}, []Activation{Tanh, Linear}, 2)
	b.CopyParamsFrom(a)
	in := []float64{0.5, 0.5}
	if a.Infer(in)[0] != b.Infer(in)[0] {
		t.Error("CopyParamsFrom must make outputs identical")
	}
	mismatch := New([]int{2, 4, 1}, []Activation{Tanh, Linear}, 3)
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch must panic")
		}
	}()
	mismatch.CopyParamsFrom(a)
}

// Training must fit a simple function (XOR) — an end-to-end check of
// forward, backward, and both optimizers.
func TestTrainXOR(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := [][]float64{{0}, {1}, {1}, {0}}
	for name, opt := range map[string]Optimizer{
		"adam": NewAdam(0.05),
		"sgd":  NewSGD(0.5, 0.9),
	} {
		n := New([]int{2, 8, 1}, []Activation{Tanh, Sigmoid}, 3)
		var loss float64
		for epoch := 0; epoch < 2000; epoch++ {
			loss = TrainBatch(n, opt, x, y, 0)
		}
		if loss > 0.01 {
			t.Errorf("%s: XOR loss after training = %v, want < 0.01", name, loss)
		}
		for i := range x {
			p := n.Infer(x[i])[0]
			if math.Abs(p-y[i][0]) > 0.2 {
				t.Errorf("%s: XOR(%v) = %v, want %v", name, x[i], p, y[i][0])
			}
		}
	}
}

func TestTrainBatchValidation(t *testing.T) {
	n := New([]int{1, 1}, []Activation{Linear}, 1)
	if got := TrainBatch(n, NewSGD(0.1, 0), nil, nil, 0); got != 0 {
		t.Error("empty batch must return 0 loss")
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched batch must panic")
		}
	}()
	TrainBatch(n, NewSGD(0.1, 0), [][]float64{{1}}, nil, 0)
}

func TestMSE(t *testing.T) {
	grad := make([]float64, 2)
	loss := MSE([]float64{1, 2}, []float64{0, 0}, grad)
	if math.Abs(loss-2.5) > 1e-12 {
		t.Errorf("MSE = %v, want 2.5", loss)
	}
	if grad[0] != 1 || grad[1] != 2 {
		t.Errorf("grad = %v, want [1 2]", grad)
	}
}

// Property: training on a linear target reduces loss.
func TestTrainingReducesLossProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := New([]int{2, 6, 1}, []Activation{Tanh, Linear}, seed)
		opt := NewAdam(0.01)
		var x, y [][]float64
		for i := 0; i < 32; i++ {
			a, b := r.Float64(), r.Float64()
			x = append(x, []float64{a, b})
			y = append(y, []float64{0.3*a - 0.5*b + 0.1})
		}
		first := TrainBatch(n, opt, x, y, 1)
		var last float64
		for i := 0; i < 200; i++ {
			last = TrainBatch(n, opt, x, y, 1)
		}
		return last < first || last < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestForwardNoAlloc(t *testing.T) {
	n := New([]int{30, 32, 16, 1}, []Activation{Tanh, Tanh, Linear}, 1)
	in := make([]float64, 30)
	out := make([]float64, 1)
	allocs := testing.AllocsPerRun(100, func() { n.Forward(in, out) })
	if allocs != 0 {
		t.Errorf("Forward allocates %v times per run, want 0", allocs)
	}
}

func BenchmarkForwardAurora(b *testing.B) {
	n := New([]int{30, 32, 16, 1}, []Activation{Tanh, Tanh, Linear}, 1)
	in := make([]float64, 30)
	out := make([]float64, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Forward(in, out)
	}
}

func BenchmarkTrainBatchAurora(b *testing.B) {
	n := New([]int{30, 32, 16, 1}, []Activation{Tanh, Tanh, Linear}, 1)
	opt := NewAdam(0.001)
	x := make([][]float64, 32)
	y := make([][]float64, 32)
	r := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = make([]float64, 30)
		for j := range x[i] {
			x[i][j] = r.Float64()
		}
		y[i] = []float64{r.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainBatch(n, opt, x, y, 1)
	}
}
