package nn

import "math"

// Optimizer applies accumulated gradients to a network's parameters.
type Optimizer interface {
	Step(n *Network)
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	LR       float64
	Momentum float64

	vW map[*Dense][][]float64
	vB map[*Dense][]float64
}

// NewSGD returns an SGD optimizer with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum,
		vW: make(map[*Dense][][]float64), vB: make(map[*Dense][]float64)}
}

// Step applies one update using the gradients accumulated in n.
func (o *SGD) Step(n *Network) {
	for _, l := range n.Layers {
		vw, ok := o.vW[l]
		if !ok {
			vw = make([][]float64, l.Out)
			for i := range vw {
				vw[i] = make([]float64, l.In)
			}
			o.vW[l] = vw
			o.vB[l] = make([]float64, l.Out)
		}
		vb := o.vB[l]
		for i := range l.W {
			for j := range l.W[i] {
				vw[i][j] = o.Momentum*vw[i][j] - o.LR*l.GW[i][j]
				l.W[i][j] += vw[i][j]
			}
			vb[i] = o.Momentum*vb[i] - o.LR*l.GB[i]
			l.B[i] += vb[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba), the tuner the paper cites for
// userspace model optimization.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t  int
	mW map[*Dense][][]float64
	vW map[*Dense][][]float64
	mB map[*Dense][]float64
	vB map[*Dense][]float64
}

// NewAdam returns an Adam optimizer with standard betas (0.9, 0.999).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8,
		mW: make(map[*Dense][][]float64), vW: make(map[*Dense][][]float64),
		mB: make(map[*Dense][]float64), vB: make(map[*Dense][]float64)}
}

// Step applies one Adam update using the gradients accumulated in n.
func (o *Adam) Step(n *Network) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, l := range n.Layers {
		mw, ok := o.mW[l]
		if !ok {
			mw = make([][]float64, l.Out)
			vw := make([][]float64, l.Out)
			for i := range mw {
				mw[i] = make([]float64, l.In)
				vw[i] = make([]float64, l.In)
			}
			o.mW[l], o.vW[l] = mw, vw
			o.mB[l] = make([]float64, l.Out)
			o.vB[l] = make([]float64, l.Out)
		}
		vw, mb, vb := o.vW[l], o.mB[l], o.vB[l]
		for i := range l.W {
			for j := range l.W[i] {
				g := l.GW[i][j]
				mw[i][j] = o.Beta1*mw[i][j] + (1-o.Beta1)*g
				vw[i][j] = o.Beta2*vw[i][j] + (1-o.Beta2)*g*g
				l.W[i][j] -= o.LR * (mw[i][j] / bc1) / (math.Sqrt(vw[i][j]/bc2) + o.Epsilon)
			}
			g := l.GB[i]
			mb[i] = o.Beta1*mb[i] + (1-o.Beta1)*g
			vb[i] = o.Beta2*vb[i] + (1-o.Beta2)*g*g
			l.B[i] -= o.LR * (mb[i] / bc1) / (math.Sqrt(vb[i]/bc2) + o.Epsilon)
		}
	}
}

// MSE returns the mean squared error between pred and target and writes
// dLoss/dPred into grad (all slices must share a length).
func MSE(pred, target, grad []float64) float64 {
	loss := 0.0
	n := float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		loss += d * d
		grad[i] = 2 * d / n
	}
	return loss / n
}

// TrainBatch runs one optimizer step over the (x, y) pairs with MSE loss and
// returns the mean loss across the batch. Gradients are averaged over the
// batch and clipped to clipNorm (0 disables clipping).
func TrainBatch(n *Network, opt Optimizer, x, y [][]float64, clipNorm float64) float64 {
	if len(x) == 0 {
		return 0
	}
	if len(x) != len(y) {
		panic("nn: x/y length mismatch")
	}
	n.ZeroGrad()
	out := make([]float64, n.OutputSize())
	grad := make([]float64, n.OutputSize())
	total := 0.0
	for k := range x {
		n.Forward(x[k], out)
		total += MSE(out, y[k], grad)
		inv := 1 / float64(len(x))
		for i := range grad {
			grad[i] *= inv
		}
		n.Backward(grad)
	}
	n.ClipGrad(clipNorm)
	opt.Step(n)
	return total / float64(len(x))
}
