package lb

import (
	"math/rand"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/quant"
)

func TestMLPLearnsPathSelection(t *testing.T) {
	net := NewMLP(2, 1)
	loss := Train(net, 2, 400, 1e-2, 1.0, 2)
	if loss > 0.15 {
		t.Fatalf("training loss = %v", loss)
	}
	acc := Accuracy(net, 2, 500, 1.0, 3)
	if acc < 0.80 {
		t.Errorf("path accuracy = %.2f, want ≥ 0.80", acc)
	}
}

func TestRegimeShiftHurtsFrozenSelector(t *testing.T) {
	// Train where congestion shows as ECN marks; evaluate where it shows
	// as RTT inflation instead. A frozen model goes blind; retraining on
	// the new regime recovers — the N-O-A dynamic of Figure 17.
	net := NewMLP(2, 1)
	Train(net, 2, 400, 1e-2, 1.0, 2)
	clean := Accuracy(net, 2, 500, 1.0, 3)
	shifted := Accuracy(net, 2, 500, 0.0, 3)
	if shifted >= clean-0.1 {
		t.Errorf("regime shift must hurt: clean %.2f, shifted %.2f", clean, shifted)
	}
	Train(net, 2, 400, 1e-2, 0.0, 5)
	recovered := Accuracy(net, 2, 500, 0.0, 3)
	if recovered <= shifted+0.1 {
		t.Errorf("retraining must recover: shifted %.2f, recovered %.2f", shifted, recovered)
	}
}

func TestBestPathTeacher(t *testing.T) {
	// Path 0 congested, path 1 clean → pick 1.
	f := []float64{0.8, 0.0, 2.0, 0.5, 0.3}
	if got := BestPath(f, 2); got != 1 {
		t.Errorf("BestPath = %d, want 1", got)
	}
	// Symmetric: ties resolve to 0.
	f = []float64{0.1, 0.1, 1.0, 1.0, 0.5}
	if got := BestPath(f, 2); got != 0 {
		t.Errorf("tie BestPath = %d, want 0", got)
	}
}

func TestPathMonitorEWMA(t *testing.T) {
	m := NewPathMonitor(2)
	if m.Paths() != 2 {
		t.Fatal("paths wrong")
	}
	m.Observe(0, 1.0, 100*netsim.Microsecond)
	if m.ECN(0) != 1.0 {
		t.Errorf("first observation must seed the EWMA, got %v", m.ECN(0))
	}
	for i := 0; i < 50; i++ {
		m.Observe(0, 0.0, 50*netsim.Microsecond)
	}
	if m.ECN(0) > 0.01 {
		t.Errorf("EWMA must decay towards new samples, got %v", m.ECN(0))
	}
	// Out-of-range paths are ignored, not panics.
	m.Observe(-1, 1, 1)
	m.Observe(7, 1, 1)
	f := m.Features(0.5)
	if len(f) != InputDim(2) {
		t.Fatalf("features dim = %d", len(f))
	}
	if f[4] != 0.5 {
		t.Error("size feature misplaced")
	}
}

func TestSelectorsAgreeKernelVsUser(t *testing.T) {
	eng := netsim.NewEngine()
	costs := ksim.DefaultCosts()
	net := NewMLP(2, 1)
	Train(net, 2, 400, 1e-2, 1.0, 2)
	ks := NewKernelSelector(eng, nil, costs, quant.Quantize(net, quant.DefaultConfig()))
	us := NewUserSelector(eng, nil, costs, net)
	r := rand.New(rand.NewSource(7))
	agree := 0
	const n = 200
	for i := 0; i < n; i++ {
		f := RandomFeatures(r, 2, 1.0)
		var pk, pu int
		ks.Select(f, func(p int) { pk = p })
		us.Select(f, func(p int) { pu = p })
		eng.Run()
		if pk == pu {
			agree++
		}
	}
	if float64(agree)/n < 0.93 {
		t.Errorf("deployments agree on only %d/%d selections", agree, n)
	}
}

func TestSelectorLatencyOrdering(t *testing.T) {
	eng := netsim.NewEngine()
	costs := ksim.DefaultCosts()
	net := NewMLP(2, 1)
	ks := NewKernelSelector(eng, nil, costs, quant.Quantize(net, quant.DefaultConfig()))
	us := NewUserSelector(eng, nil, costs, net)
	ec := &ECMPSelector{Paths: 2}
	f := RandomFeatures(rand.New(rand.NewSource(1)), 2, 1.0)
	var lk, lu, le netsim.Time
	for i := 0; i < 50; i++ {
		lk += ks.Select(f, func(int) {})
		lu += us.Select(f, func(int) {})
		le += ec.Select(f, func(int) {})
	}
	eng.Run()
	if le != 0 {
		t.Error("ECMP must be free")
	}
	if !(lk < lu) {
		t.Errorf("kernel selection %v must beat userspace %v", lk, lu)
	}
}

func TestUserSelectorMonitoringOverhead(t *testing.T) {
	eng := netsim.NewEngine()
	cpu := ksim.NewCPU(eng, 4)
	us := NewUserSelector(eng, cpu, ksim.DefaultCosts(), NewMLP(2, 1))
	us.MonitorInterval = netsim.Millisecond
	us.StartMonitoring()
	eng.RunUntil(netsim.Second)
	us.StopMonitoring()
	if us.SyncMessages < 900 {
		t.Errorf("SyncMessages = %d, want ≈ 1000", us.SyncMessages)
	}
	if cpu.BusyTime(ksim.SoftIRQ) < 100*netsim.Millisecond {
		t.Errorf("monitoring stream must burn softirq time, got %v", cpu.BusyTime(ksim.SoftIRQ))
	}
	// Restarting while running is a no-op.
	us.running = true
	us.StartMonitoring()
}

func TestECMPSelectorSpreads(t *testing.T) {
	e := &ECMPSelector{Paths: 2}
	counts := [2]int{}
	for i := 0; i < 1000; i++ {
		e.Select(nil, func(p int) { counts[p]++ })
	}
	if counts[0] < 300 || counts[1] < 300 {
		t.Errorf("ECMP skewed: %v", counts)
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{1, 3, 2}) != 1 {
		t.Error("Argmax wrong")
	}
	if Argmax([]float64{5}) != 0 {
		t.Error("single-element Argmax wrong")
	}
	if argmax64([]int64{2, 2, 1}) != 0 {
		t.Error("tie must pick lowest index")
	}
}

func BenchmarkKernelSelect(b *testing.B) {
	eng := netsim.NewEngine()
	ks := NewKernelSelector(eng, nil, ksim.DefaultCosts(), quant.Quantize(NewMLP(2, 1), quant.DefaultConfig()))
	f := make([]float64, InputDim(2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ks.Select(f, func(int) {})
		if i%1024 == 1023 {
			eng.Run()
		}
	}
}
