// Package lb implements NN-driven load balancing (paper §5.3): a per-flow
// MLP path selector over the spine–leaf fabric with XPath-style explicit
// path control, the per-path congestion monitor feeding it, ECMP as the
// baseline, and the kernel/userspace deployment split whose overhead gap
// Figure 17 measures.
package lb

import (
	"math/rand"

	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/quant"
)

// InputDim returns the MLP input width for the given path count: per path an
// ECN-mark fraction and a normalized RTT, plus the flow's normalized size.
func InputDim(paths int) int { return 2*paths + 1 }

// NewMLP returns the paper's load-balancing model: 2 hidden layers × 12
// neurons with ReLU, one output score per path (argmax selects).
func NewMLP(paths int, seed int64) *nn.Network {
	net := nn.New([]int{InputDim(paths), 12, 12, paths},
		[]nn.Activation{nn.ReLU, nn.ReLU, nn.Linear}, seed)
	for _, l := range net.Layers[:2] {
		for i := range l.B {
			l.B[i] = 0.1 // keep narrow ReLU layers alive at init
		}
	}
	return net
}

// RTTNorm normalizes an RTT to the feature range (50 µs ≈ 1.0 on the
// data-center fabric).
func RTTNorm(rtt netsim.Time) float64 { return float64(rtt) / float64(50*netsim.Microsecond) }

// PathMonitor tracks per-path congestion as EWMAs of ECN-mark fractions and
// RTT samples — the congestion signals the paper's path selection module
// collects (ECN bytes, smoothed RTT).
type PathMonitor struct {
	ecn []float64
	rtt []float64
	g   float64 // EWMA gain
	obs []int64
}

// NewPathMonitor returns a monitor for the given path count.
func NewPathMonitor(paths int) *PathMonitor {
	return &PathMonitor{
		ecn: make([]float64, paths),
		rtt: make([]float64, paths),
		g:   0.2,
		obs: make([]int64, paths),
	}
}

// Paths returns the number of monitored paths.
func (m *PathMonitor) Paths() int { return len(m.ecn) }

// Observe folds one flow-feedback sample for a path into the EWMAs.
func (m *PathMonitor) Observe(path int, ecnFrac float64, rtt netsim.Time) {
	if path < 0 || path >= len(m.ecn) {
		return
	}
	m.obs[path]++
	if m.obs[path] == 1 {
		m.ecn[path] = ecnFrac
		m.rtt[path] = RTTNorm(rtt)
		return
	}
	m.ecn[path] = (1-m.g)*m.ecn[path] + m.g*ecnFrac
	m.rtt[path] = (1-m.g)*m.rtt[path] + m.g*RTTNorm(rtt)
}

// Features assembles the selector input for a flow of the given size.
func (m *PathMonitor) Features(sizeNorm float64) []float64 {
	out := make([]float64, 0, InputDim(len(m.ecn)))
	out = append(out, m.ecn...)
	out = append(out, m.rtt...)
	out = append(out, sizeNorm)
	return out
}

// ECN returns the EWMA mark fraction of a path (test/diagnostic accessor).
func (m *PathMonitor) ECN(path int) float64 { return m.ecn[path] }

// BestPath is the supervision teacher: the least congested path by a
// weighted score of marks and latency. Ties resolve to the lowest index.
func BestPath(features []float64, paths int) int {
	best, bestScore := 0, 1e18
	for p := 0; p < paths; p++ {
		score := 2*features[p] + features[paths+p]
		if score < bestScore {
			best, bestScore = p, score
		}
	}
	return best
}

// Sample is one labeled training example: monitor features plus the path a
// congestion oracle would pick.
type Sample struct {
	Features []float64
	Best     int
}

// SampleRegime draws a sample under a congestion-visibility regime:
// ecnVisible = 1 means congestion shows up as ECN marks (shallow marking
// thresholds); ecnVisible = 0 means it shows up as RTT inflation instead
// (deep buffers / marking disabled). The label comes from the latent
// congestion, not from either proxy. A model trained in one regime is blind
// in the other — the workload dynamic behind the N-O-A comparison of
// Figure 17.
func SampleRegime(r *rand.Rand, paths int, ecnVisible float64) Sample {
	f := make([]float64, InputDim(paths))
	latent := make([]float64, paths)
	for p := 0; p < paths; p++ {
		if r.Float64() < 0.5 {
			latent[p] = 0.2 + 0.8*r.Float64() // congested
		} else {
			latent[p] = 0.05 * r.Float64()
		}
		f[p] = latent[p]*0.8*ecnVisible + absn(r)*0.02
		f[paths+p] = 0.5 + latent[p]*2*(1-ecnVisible) + absn(r)*0.05
	}
	f[2*paths] = r.Float64()
	best, bestC := 0, latent[0]
	for p := 1; p < paths; p++ {
		if latent[p] < bestC {
			best, bestC = p, latent[p]
		}
	}
	return Sample{Features: f, Best: best}
}

func absn(r *rand.Rand) float64 {
	x := r.NormFloat64()
	if x < 0 {
		return -x
	}
	return x
}

// RandomFeatures samples unlabeled monitor features under the given regime.
func RandomFeatures(r *rand.Rand, paths int, ecnVisible float64) []float64 {
	return SampleRegime(r, paths, ecnVisible).Features
}

// Train fits the MLP to imitate the congestion oracle over samples drawn in
// the given regime (one-hot regression) and returns the final loss.
func Train(net *nn.Network, paths, iters int, lr float64, ecnVisible float64, seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	opt := nn.NewAdam(lr)
	const batch = 64
	x := make([][]float64, batch)
	y := make([][]float64, batch)
	var loss float64
	for it := 0; it < iters; it++ {
		for i := 0; i < batch; i++ {
			s := SampleRegime(r, paths, ecnVisible)
			x[i] = s.Features
			t := make([]float64, paths)
			t[s.Best] = 1
			y[i] = t
		}
		loss = nn.TrainBatch(net, opt, x, y, 5)
	}
	return loss
}

// Accuracy measures how often the model picks the oracle's path on fresh
// samples drawn in the given regime.
func Accuracy(net *nn.Network, paths, n int, ecnVisible float64, seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, paths)
	ok := 0
	for i := 0; i < n; i++ {
		s := SampleRegime(r, paths, ecnVisible)
		net.Forward(s.Features, out)
		if Argmax(out) == s.Best {
			ok++
		}
	}
	return float64(ok) / float64(n)
}

// Argmax returns the index of the largest value (lowest index on ties).
func Argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// Selector decides a path for a new flow; deployments differ in latency and
// CPU cost, exactly as the sched predictors do.
type Selector interface {
	Select(features []float64, reply func(path int)) netsim.Time
}

// KernelSelector runs the quantized MLP snapshot in the kernel (LF-MLP).
type KernelSelector struct {
	Eng   *netsim.Engine
	CPU   *ksim.CPU
	Costs ksim.Costs
	Prog  *quant.Program

	in  []int64
	out []int64
	jit *rand.Rand
}

// NewKernelSelector wraps a quantized snapshot.
func NewKernelSelector(eng *netsim.Engine, cpu *ksim.CPU, costs ksim.Costs, prog *quant.Program) *KernelSelector {
	return &KernelSelector{Eng: eng, CPU: cpu, Costs: costs, Prog: prog,
		in: make([]int64, prog.InputSize()), out: make([]int64, prog.OutputSize()),
		jit: rand.New(rand.NewSource(3))}
}

// Select implements Selector.
func (k *KernelSelector) Select(features []float64, reply func(int)) netsim.Time {
	cost := ksim.InferCost(k.Costs.KernelInferPerMAC, k.Prog.MACs())
	lat := cost + netsim.Time(k.jit.Int63n(int64(cost)+1))
	if k.CPU != nil {
		k.CPU.Charge(ksim.Kernel, cost)
		lat += k.CPU.QueueDelay()
	}
	k.Prog.QuantizeInput(features, k.in)
	k.Prog.Infer(k.in, k.out)
	path := argmax64(k.out)
	k.Eng.After(lat, func() { reply(path) })
	return lat
}

// UserSelector runs the float MLP in userspace behind a char device
// (char-MLP): each decision costs a cross-space round trip, and keeping the
// userspace model's view of path state fresh costs a continuous stream of
// monitor updates — the overhead that makes char-MLP lose to plain ECMP in
// the paper.
type UserSelector struct {
	Eng   *netsim.Engine
	CPU   *ksim.CPU
	Costs ksim.Costs
	Net   *nn.Network
	// MonitorInterval is the period of the kernel→user path-state sync;
	// zero disables the background stream.
	MonitorInterval netsim.Time

	out     []float64
	jit     *rand.Rand
	running bool
	// SyncMessages counts background monitor updates (overhead driver).
	SyncMessages int64
}

// NewUserSelector wraps a float MLP behind a char-device exchange.
func NewUserSelector(eng *netsim.Engine, cpu *ksim.CPU, costs ksim.Costs, net *nn.Network) *UserSelector {
	return &UserSelector{Eng: eng, CPU: cpu, Costs: costs, Net: net,
		MonitorInterval: netsim.Millisecond,
		out:             make([]float64, net.OutputSize()),
		jit:             rand.New(rand.NewSource(4))}
}

// StartMonitoring begins the background path-state sync stream.
func (u *UserSelector) StartMonitoring() {
	if u.running || u.MonitorInterval <= 0 {
		return
	}
	u.running = true
	u.tick()
}

// StopMonitoring halts the stream after the pending tick.
func (u *UserSelector) StopMonitoring() { u.running = false }

func (u *UserSelector) tick() {
	u.Eng.After(u.MonitorInterval, func() {
		if !u.running {
			return
		}
		u.SyncMessages++
		if u.CPU != nil {
			u.CPU.Charge(ksim.SoftIRQ, u.Costs.CrossSpace)
			u.CPU.Charge(ksim.Kernel, u.Costs.CharDevPerMsg)
		}
		u.tick()
	})
}

// Select implements Selector.
func (u *UserSelector) Select(features []float64, reply func(int)) netsim.Time {
	infer := ksim.InferCost(u.Costs.UserInferPerMAC, u.Net.MACs())
	lat := 2*u.Costs.CharDevLatency + infer
	lat += netsim.Time(u.jit.Int63n(int64(u.Costs.CharDevLatency) + 1))
	if u.CPU != nil {
		u.CPU.Charge(ksim.SoftIRQ, 2*u.Costs.CrossSpace)
		u.CPU.Charge(ksim.Kernel, 2*u.Costs.CharDevPerMsg)
		u.CPU.Charge(ksim.User, infer)
		lat += u.CPU.QueueDelay()
	}
	u.Net.Forward(features, u.out)
	path := Argmax(u.out)
	u.Eng.After(lat, func() { reply(path) })
	return lat
}

// ECMPSelector hashes the flow onto a path immediately — the baseline. It
// carries its own counter so experiments can draw per-flow IDs through it.
type ECMPSelector struct {
	Paths int
	next  uint64
}

// Select implements Selector: zero latency, hash-spread decisions.
func (e *ECMPSelector) Select(features []float64, reply func(int)) netsim.Time {
	e.next++
	x := e.next * 0x9e3779b97f4a7c15
	x ^= x >> 29
	reply(int(x % uint64(e.Paths)))
	return 0
}

var (
	_ Selector = (*KernelSelector)(nil)
	_ Selector = (*UserSelector)(nil)
	_ Selector = (*ECMPSelector)(nil)
)

func argmax64(xs []int64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
