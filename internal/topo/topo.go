// Package topo builds the simulated topologies of the paper's evaluation:
// the dumbbell testbed analog used by the congestion-control experiments and
// the 2×2 spine–leaf fabric used by flow scheduling (32 hosts) and load
// balancing (8 hosts).
package topo

import (
	"strconv"

	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/fleet"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netlink"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/obs"
	"github.com/liteflow-sim/liteflow/internal/opt"
	"github.com/liteflow-sim/liteflow/internal/tcp"
)

// Node ID layout: hosts are numbered 0..H−1, leaves LeafIDBase+i, spines
// SpineIDBase+j. Keeping the spaces disjoint makes explicit paths
// unambiguous.
const (
	LeafIDBase  = 1000
	SpineIDBase = 2000
)

// SpineLeafOpts configures a spine–leaf fabric.
type SpineLeafOpts struct {
	Spines       int
	Leaves       int
	HostsPerLeaf int

	HostLinkBps   int64
	FabricLinkBps int64
	HostDelay     netsim.Time
	FabricDelay   netsim.Time

	// QueueBytes is the per-port buffer; ECNThresholdBytes enables DCTCP
	// marking when positive. UsePrioQueues switches every port to strict
	// priority queues (flow-scheduling experiments).
	QueueBytes        int
	ECNThresholdBytes int
	UsePrioQueues     bool
}

// DefaultSpineLeafOpts is the paper's 2×2 fabric with the given host count
// per leaf: 10 Gbps host links, 40 Gbps fabric links, shallow ECN-marked
// buffers, ~25 µs propagation per hop (data-center scale).
func DefaultSpineLeafOpts(hostsPerLeaf int) SpineLeafOpts {
	return SpineLeafOpts{
		Spines: 2, Leaves: 2, HostsPerLeaf: hostsPerLeaf,
		HostLinkBps: 10e9, FabricLinkBps: 40e9,
		HostDelay: 5 * netsim.Microsecond, FabricDelay: 5 * netsim.Microsecond,
		QueueBytes: 400_000, ECNThresholdBytes: 90_000,
	}
}

// SpineLeaf is a wired fabric with per-destination ECMP routing.
type SpineLeaf struct {
	Eng    *netsim.Engine
	Opts   SpineLeafOpts
	Hosts  []*tcp.Host
	Leaves []*netsim.Switch
	Spines []*netsim.Switch
}

// BuildSpineLeaf builds and wires the fabric. Options are accepted for
// signature symmetry with BuildDumbbell; the fabric itself has no scoped
// telemetry today (per-host CPU scopes come from ProvisionCPUs).
func BuildSpineLeaf(eng *netsim.Engine, opts SpineLeafOpts, options ...opt.Option) *SpineLeaf {
	_ = opt.Resolve(options)
	return NewSpineLeaf(eng, opts)
}

// NewSpineLeaf builds and wires the fabric. Like BuildDumbbell, every node
// gets its own partition and every link is bound to its receiving partition —
// no-ops on a classic engine, a conservative lookahead of the host/fabric
// link delay on a partitioned one.
//
// Deprecated: use BuildSpineLeaf, which takes functional options.
func NewSpineLeaf(eng *netsim.Engine, opts SpineLeafOpts) *SpineLeaf {
	t := &SpineLeaf{Eng: eng, Opts: opts}

	newQueue := func() netsim.Queue {
		if opts.UsePrioQueues {
			return netsim.NewPrioQueue(opts.QueueBytes, opts.ECNThresholdBytes)
		}
		if opts.ECNThresholdBytes > 0 {
			return netsim.NewECNQueue(opts.QueueBytes, opts.ECNThresholdBytes)
		}
		return netsim.NewDropTail(opts.QueueBytes)
	}

	leafEng := make([]*netsim.Engine, opts.Leaves)
	spineEng := make([]*netsim.Engine, opts.Spines)
	for l := 0; l < opts.Leaves; l++ {
		t.Leaves = append(t.Leaves, netsim.NewSwitch(LeafIDBase+l))
		leafEng[l] = eng.AddPartition()
	}
	for s := 0; s < opts.Spines; s++ {
		t.Spines = append(t.Spines, netsim.NewSwitch(SpineIDBase+s))
		spineEng[s] = eng.AddPartition()
	}

	// Hosts and host↔leaf links.
	for l := 0; l < opts.Leaves; l++ {
		leaf := t.Leaves[l]
		for k := 0; k < opts.HostsPerLeaf; k++ {
			id := l*opts.HostsPerLeaf + k
			hEng := eng.AddPartition()
			h := tcp.NewHost(hEng, id)
			up := netsim.NewLink(hEng, leaf, opts.HostLinkBps, opts.HostDelay, newQueue()).BindRemote(leafEng[l])
			down := netsim.NewLink(leafEng[l], h, opts.HostLinkBps, opts.HostDelay, newQueue()).BindRemote(hEng)
			h.SetEgress(up)
			leaf.AddPort(id, down)
			leaf.AddRoute(id, id)
			t.Hosts = append(t.Hosts, h)
		}
	}

	// Leaf↔spine links and inter-leaf routing.
	for l, leaf := range t.Leaves {
		for s, spine := range t.Spines {
			up := netsim.NewLink(leafEng[l], spine, opts.FabricLinkBps, opts.FabricDelay, newQueue()).BindRemote(spineEng[s])
			down := netsim.NewLink(spineEng[s], leaf, opts.FabricLinkBps, opts.FabricDelay, newQueue()).BindRemote(leafEng[l])
			leaf.AddPort(SpineIDBase+s, up)
			spine.AddPort(LeafIDBase+l, down)
		}
	}
	spineIDs := make([]int, opts.Spines)
	for s := range spineIDs {
		spineIDs[s] = SpineIDBase + s
	}
	for l, leaf := range t.Leaves {
		// Remote hosts: ECMP across all spines.
		for hid := range t.Hosts {
			if t.LeafOf(hid) != l {
				leaf.AddRoute(hid, spineIDs...)
			}
		}
		_ = leaf
	}
	for _, spine := range t.Spines {
		for hid := range t.Hosts {
			spine.AddRoute(hid, LeafIDBase+t.LeafOf(hid))
		}
	}
	return t
}

// LeafOf returns the leaf index hosting host id.
func (t *SpineLeaf) LeafOf(hostID int) int { return hostID / t.Opts.HostsPerLeaf }

// SameLeaf reports whether two hosts share a leaf (no fabric crossing).
func (t *SpineLeaf) SameLeaf(a, b int) bool { return t.LeafOf(a) == t.LeafOf(b) }

// PathVia returns the explicit path pinning traffic from src to dst through
// spine index s (XPath-style). Same-leaf pairs need no pinning and get nil.
func (t *SpineLeaf) PathVia(src, dst, spine int) []int {
	if t.SameLeaf(src, dst) {
		return nil
	}
	return []int{SpineIDBase + spine}
}

// ProvisionCPUs gives every host a CPU with the given core count and cost
// table, attached to the host's own partition view. opt.WithScope labels each
// host's CPU telemetry with host="<id>".
func (t *SpineLeaf) ProvisionCPUs(cores int, costs ksim.Costs, options ...opt.Option) {
	scope := opt.Resolve(options).Scope
	for i, h := range t.Hosts {
		hsc := h.Eng.PartitionScope(scope.With(obs.Label{Key: "host", Value: strconv.Itoa(i)}))
		h.AttachCPU(ksim.NewCPU(h.Eng, cores, hsc), costs)
	}
}

// AttachCPUs is the pre-options form of ProvisionCPUs.
//
// Deprecated: use ProvisionCPUs with opt.WithScope.
func (t *SpineLeaf) AttachCPUs(cores int, costs ksim.Costs, sc ...obs.Scope) {
	var scope obs.Scope
	if len(sc) > 0 {
		scope = sc[0]
	}
	t.ProvisionCPUs(cores, costs, opt.WithScope(scope))
}

// FleetSpec configures ProvisionFleet: one fleet.Controller slow path serving
// a per-host kernel datapath on every fabric host.
type FleetSpec struct {
	Costs ksim.Costs
	// Core is the per-member datapath config; its gate parameters also drive
	// the controller (see fleet.New).
	Core core.Config
	// Fleet tunes the distribution plane (batch/aggregation cadence, install
	// concurrency).
	Fleet fleet.Config
	// CoreOptions, when non-nil, supplies extra per-host options for the
	// member core (e.g. opt.WithWatchdog). MemberOptions, when non-nil,
	// supplies per-member enrollment options (e.g. opt.WithFaults).
	CoreOptions   func(host int) []opt.Option
	MemberOptions func(host int) []opt.Option
}

// ProvisionFleet builds a fleet.Controller over the fabric: every host gets a
// core.Core + netlink.Channel pair on its own CPU, enrolled in ascending host
// order (the deterministic merge order of DESIGN.md §4d). Hosts must already
// have CPUs — call ProvisionCPUs first; the netlink channel charges kernel
// work to them. Per-host telemetry is labelled host="<id>" like the CPU
// scopes. The caller starts the plane with Controller.Start.
func (t *SpineLeaf) ProvisionFleet(spec FleetSpec, f core.Freezer, e core.Evaluator, a core.Adapter, options ...opt.Option) *fleet.Controller {
	if t.Eng.Domains() > 0 {
		// The fleet plane schedules onto member CPUs from the controller's
		// partition (install callbacks, aggregation ticks); that cross-
		// partition scheduling is exactly what windowed execution forbids.
		panic("topo: ProvisionFleet requires a classic engine (netsim.NewEngine), not a partitioned one")
	}
	scope := opt.Resolve(options).Scope
	ctrl := fleet.New(t.Eng, spec.Core, f, e, a, spec.Fleet, opt.WithScope(scope))
	for i, h := range t.Hosts {
		if h.CPU == nil {
			panic("topo: ProvisionFleet host " + strconv.Itoa(i) + " has no CPU; call ProvisionCPUs first")
		}
		hsc := scope.With(obs.Label{Key: "host", Value: strconv.Itoa(i)})
		coreOpts := []opt.Option{opt.WithScope(hsc)}
		if spec.CoreOptions != nil {
			coreOpts = append(coreOpts, spec.CoreOptions(i)...)
		}
		co := core.NewCore(t.Eng, h.CPU, spec.Costs, spec.Core, coreOpts...)
		ch := netlink.NewChannel(t.Eng, h.CPU, spec.Costs, nil, opt.WithScope(hsc))
		var memberOpts []opt.Option
		if spec.MemberOptions != nil {
			memberOpts = spec.MemberOptions(i)
		}
		if _, err := ctrl.AddMember(co, ch, memberOpts...); err != nil {
			panic("topo: ProvisionFleet member " + strconv.Itoa(i) + ": " + err.Error())
		}
	}
	return ctrl
}

// Dumbbell is the testbed analog used by the CC experiments: sender hosts
// and one UDP host on the left, receiver hosts on the right, all crossing
// one bottleneck link.
type Dumbbell struct {
	Eng       *netsim.Engine
	Senders   []*tcp.Host
	Receivers []*tcp.Host
	UDPHost   *tcp.Host
	Left      *netsim.Switch
	Right     *netsim.Switch
	// Bottleneck is the left→right link all data crosses.
	Bottleneck *netsim.Link
}

// DumbbellOpts configures the dumbbell.
type DumbbellOpts struct {
	Flows           int   // sender/receiver pairs
	AccessBps       int64 // per-host access links
	BottleneckBps   int64
	AccessDelay     netsim.Time // one-way, per access link
	BottleneckDelay netsim.Time
	BufferBytes     int // bottleneck buffer
}

// TestbedOpts reproduces §2.2's testbed: 1 Gbps receiver bottleneck, ~10 ms
// RTT via netem, 150 KB buffer.
func TestbedOpts(flows int) DumbbellOpts {
	return DumbbellOpts{
		Flows:           flows,
		AccessBps:       100e9, // 100 Gbps NICs
		BottleneckBps:   1e9,
		AccessDelay:     1250 * netsim.Microsecond,
		BottleneckDelay: 2500 * netsim.Microsecond,
		BufferBytes:     150_000,
	}
}

// BuildDumbbell builds the dumbbell. Sender host IDs are 0..F−1, receivers
// F..2F−1, the UDP host is 2F. opt.WithScope exports drop/ECN telemetry for
// the two shared links, labelled link="bottleneck" and link="back".
//
// Every node (each host and each switch) is placed in its own partition and
// every link is bound to its receiving partition, unconditionally: on a
// classic engine both calls are no-ops, and on a partitioned engine
// (netsim.NewParallelEngine) the builder yields a conservative lookahead of
// the access-link delay. The partition layout depends only on the topology,
// never on the domain count, so partitioned runs are byte-identical for any
// parallelism.
func BuildDumbbell(eng *netsim.Engine, opts DumbbellOpts, options ...opt.Option) *Dumbbell {
	scope := opt.Resolve(options).Scope
	d := &Dumbbell{Eng: eng}
	d.Left = netsim.NewSwitch(LeafIDBase)
	d.Right = netsim.NewSwitch(LeafIDBase + 1)
	leftEng := eng.AddPartition()
	rightEng := eng.AddPartition()

	d.Bottleneck = netsim.NewLink(leftEng, d.Right, opts.BottleneckBps, opts.BottleneckDelay,
		netsim.NewDropTail(opts.BufferBytes),
		leftEng.PartitionScope(scope.With(obs.Label{Key: "link", Value: "bottleneck"}))).BindRemote(rightEng)
	back := netsim.NewLink(rightEng, d.Left, opts.BottleneckBps, opts.BottleneckDelay,
		netsim.NewDropTail(1<<22),
		rightEng.PartitionScope(scope.With(obs.Label{Key: "link", Value: "back"}))).BindRemote(leftEng)
	d.Left.AddPort(LeafIDBase+1, d.Bottleneck)
	d.Right.AddPort(LeafIDBase, back)

	attach := func(id int, sw *netsim.Switch, swEng *netsim.Engine) *tcp.Host {
		hEng := eng.AddPartition()
		h := tcp.NewHost(hEng, id)
		up := netsim.NewLink(hEng, sw, opts.AccessBps, opts.AccessDelay, netsim.NewDropTail(1<<22)).BindRemote(swEng)
		down := netsim.NewLink(swEng, h, opts.AccessBps, opts.AccessDelay, netsim.NewDropTail(1<<22)).BindRemote(hEng)
		h.SetEgress(up)
		sw.AddPort(id, down)
		sw.AddRoute(id, id)
		return h
	}

	for i := 0; i < opts.Flows; i++ {
		d.Senders = append(d.Senders, attach(i, d.Left, leftEng))
		d.Receivers = append(d.Receivers, attach(opts.Flows+i, d.Right, rightEng))
	}
	d.UDPHost = attach(2*opts.Flows, d.Left, leftEng)

	// Cross routes: left switch reaches right-side hosts over the
	// bottleneck and vice versa.
	for i := 0; i < opts.Flows; i++ {
		d.Left.AddRoute(opts.Flows+i, LeafIDBase+1)
		d.Right.AddRoute(i, LeafIDBase)
	}
	d.Right.AddRoute(2*opts.Flows, LeafIDBase)
	return d
}

// NewDumbbell is the pre-options form of BuildDumbbell.
//
// Deprecated: use BuildDumbbell with opt.WithScope.
func NewDumbbell(eng *netsim.Engine, opts DumbbellOpts, sc ...obs.Scope) *Dumbbell {
	var scope obs.Scope
	if len(sc) > 0 {
		scope = sc[0]
	}
	return BuildDumbbell(eng, opts, opt.WithScope(scope))
}

// ProvisionCPUs gives every dumbbell host a CPU (the paper's 4-core servers).
// opt.WithScope labels each host's CPU telemetry with host="<id>". Each CPU
// is attached to its host's own partition view so completions execute in the
// host's partition; trace emission goes through the partition's shard.
func (d *Dumbbell) ProvisionCPUs(cores int, costs ksim.Costs, options ...opt.Option) {
	scope := opt.Resolve(options).Scope
	hostScope := func(h *tcp.Host) obs.Scope {
		return h.Eng.PartitionScope(scope.With(obs.Label{Key: "host", Value: strconv.Itoa(h.ID)}))
	}
	for _, h := range d.Senders {
		h.AttachCPU(ksim.NewCPU(h.Eng, cores, hostScope(h)), costs)
	}
	for _, h := range d.Receivers {
		h.AttachCPU(ksim.NewCPU(h.Eng, cores, hostScope(h)), costs)
	}
	d.UDPHost.AttachCPU(ksim.NewCPU(d.UDPHost.Eng, cores, hostScope(d.UDPHost)), costs)
}

// AttachCPUs is the pre-options form of ProvisionCPUs.
//
// Deprecated: use ProvisionCPUs with opt.WithScope.
func (d *Dumbbell) AttachCPUs(cores int, costs ksim.Costs, sc ...obs.Scope) {
	var scope obs.Scope
	if len(sc) > 0 {
		scope = sc[0]
	}
	d.ProvisionCPUs(cores, costs, opt.WithScope(scope))
}

// QueueBytes returns the bottleneck's current backlog — the Figure 1b
// measurement.
func (d *Dumbbell) QueueBytes() int { return d.Bottleneck.Queue().Bytes() }
