package topo

import (
	"testing"

	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/fleet"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/tcp"
)

func TestSpineLeafWiring(t *testing.T) {
	eng := netsim.NewEngine()
	sl := NewSpineLeaf(eng, DefaultSpineLeafOpts(16)) // 32 hosts
	if len(sl.Hosts) != 32 || len(sl.Leaves) != 2 || len(sl.Spines) != 2 {
		t.Fatalf("fabric = %d hosts / %d leaves / %d spines", len(sl.Hosts), len(sl.Leaves), len(sl.Spines))
	}
	if sl.LeafOf(0) != 0 || sl.LeafOf(15) != 0 || sl.LeafOf(16) != 1 {
		t.Error("LeafOf mapping wrong")
	}
	if !sl.SameLeaf(0, 15) || sl.SameLeaf(15, 16) {
		t.Error("SameLeaf wrong")
	}
}

func TestSpineLeafDelivery(t *testing.T) {
	// A flow between hosts on different leaves must complete.
	eng := netsim.NewEngine()
	sl := NewSpineLeaf(eng, DefaultSpineLeafOpts(4))
	src, dst := sl.Hosts[0], sl.Hosts[7] // leaf 0 → leaf 1
	var fct netsim.Time
	s := tcp.NewSender(src, 1, dst.ID, 100_000, tcp.NewFixedRate(5e9))
	s.OnComplete = func(d netsim.Time) { fct = d }
	tcp.NewReceiver(dst, 1, src.ID)
	s.Start()
	eng.RunUntil(netsim.Second)
	if !s.Completed() {
		t.Fatal("cross-leaf flow did not complete")
	}
	if fct <= 0 || fct > 10*netsim.Millisecond {
		t.Errorf("FCT = %v µs, want µs-scale", float64(fct)/1e3)
	}
}

func TestSpineLeafSameLeafDelivery(t *testing.T) {
	eng := netsim.NewEngine()
	sl := NewSpineLeaf(eng, DefaultSpineLeafOpts(4))
	src, dst := sl.Hosts[1], sl.Hosts[2]
	s := tcp.NewSender(src, 1, dst.ID, 50_000, tcp.NewFixedRate(5e9))
	tcp.NewReceiver(dst, 1, src.ID)
	s.Start()
	eng.RunUntil(netsim.Second)
	if !s.Completed() {
		t.Fatal("same-leaf flow did not complete")
	}
	// Same-leaf traffic must not cross any spine.
	for _, sp := range sl.Spines {
		for hid := range sl.Hosts {
			if l := sp.Port(LeafIDBase + sl.LeafOf(hid)); l != nil && l.TxPackets() > 0 {
				t.Fatal("same-leaf flow leaked into the spine layer")
			}
		}
	}
}

func TestSpineLeafExplicitPath(t *testing.T) {
	eng := netsim.NewEngine()
	sl := NewSpineLeaf(eng, DefaultSpineLeafOpts(4))
	src, dst := sl.Hosts[0], sl.Hosts[7]

	// Pin everything through spine 1 and verify spine 0 carries nothing.
	path := sl.PathVia(src.ID, dst.ID, 1)
	if len(path) != 1 || path[0] != SpineIDBase+1 {
		t.Fatalf("PathVia = %v", path)
	}
	for i := 0; i < 50; i++ {
		src.Transmit(&netsim.Packet{
			Flow: netsim.FlowID(i), Src: src.ID, Dst: dst.ID,
			Size: 1000, Path: append([]int(nil), path...),
		})
	}
	eng.Run()
	spine0Down := sl.Spines[0].Port(LeafIDBase + 1)
	spine1Down := sl.Spines[1].Port(LeafIDBase + 1)
	if spine0Down.TxPackets() != 0 {
		t.Errorf("spine 0 carried %d pinned packets, want 0", spine0Down.TxPackets())
	}
	if spine1Down.TxPackets() != 50 {
		t.Errorf("spine 1 carried %d, want 50", spine1Down.TxPackets())
	}
}

func TestSpineLeafSameLeafPathIsNil(t *testing.T) {
	eng := netsim.NewEngine()
	sl := NewSpineLeaf(eng, DefaultSpineLeafOpts(4))
	if sl.PathVia(0, 1, 0) != nil {
		t.Error("same-leaf path must be nil")
	}
}

func TestSpineLeafECMPSpreadsFlows(t *testing.T) {
	eng := netsim.NewEngine()
	sl := NewSpineLeaf(eng, DefaultSpineLeafOpts(8))
	src := sl.Hosts[0]
	for f := 0; f < 64; f++ {
		src.Transmit(&netsim.Packet{Flow: netsim.FlowID(f), Src: 0, Dst: 12, Size: 500})
	}
	eng.Run()
	up0 := sl.Leaves[0].Port(SpineIDBase).TxPackets()
	up1 := sl.Leaves[0].Port(SpineIDBase + 1).TxPackets()
	if up0 == 0 || up1 == 0 {
		t.Errorf("ECMP must use both spines: %d/%d", up0, up1)
	}
	if up0+up1 != 64 {
		t.Errorf("lost packets: %d+%d != 64", up0, up1)
	}
}

func TestSpineLeafAttachCPUs(t *testing.T) {
	eng := netsim.NewEngine()
	sl := NewSpineLeaf(eng, DefaultSpineLeafOpts(2))
	sl.AttachCPUs(4, ksim.DefaultCosts())
	for _, h := range sl.Hosts {
		if h.CPU == nil || h.CPU.Cores() != 4 {
			t.Fatal("host missing CPU")
		}
	}
}

func TestSpineLeafPrioQueues(t *testing.T) {
	eng := netsim.NewEngine()
	opts := DefaultSpineLeafOpts(2)
	opts.UsePrioQueues = true
	sl := NewSpineLeaf(eng, opts)
	if _, ok := sl.Leaves[0].Port(0).Queue().(*netsim.PrioQueue); !ok {
		t.Error("prio-queue option must install PrioQueue on ports")
	}
}

func TestDumbbellWiring(t *testing.T) {
	eng := netsim.NewEngine()
	d := NewDumbbell(eng, TestbedOpts(3))
	if len(d.Senders) != 3 || len(d.Receivers) != 3 {
		t.Fatal("dumbbell host counts wrong")
	}
	// Flow i: sender i → receiver (3+i).
	var fct netsim.Time
	s := tcp.NewSender(d.Senders[1], 5, d.Receivers[1].ID, 200_000, tcp.NewFixedRate(500e6))
	s.OnComplete = func(t netsim.Time) { fct = t }
	tcp.NewReceiver(d.Receivers[1], 5, d.Senders[1].ID)
	s.Start()
	eng.RunUntil(netsim.Second)
	if !s.Completed() {
		t.Fatal("dumbbell flow did not complete")
	}
	// RTT is ~10 ms (2×(1.25+2.5+1.25) ms); FCT must exceed one RTT.
	if fct < 10*netsim.Millisecond {
		t.Errorf("FCT = %v ms, must include the 10 ms RTT", float64(fct)/1e6)
	}
}

func TestDumbbellRTT(t *testing.T) {
	eng := netsim.NewEngine()
	d := NewDumbbell(eng, TestbedOpts(1))
	s := tcp.NewSender(d.Senders[0], 1, d.Receivers[0].ID, 0, tcp.NewFixedRate(100e6))
	tcp.NewReceiver(d.Receivers[0], 1, d.Senders[0].ID)
	s.Start()
	eng.RunUntil(500 * netsim.Millisecond)
	rtt := float64(s.SRTT()) / 1e6
	if rtt < 9.5 || rtt > 12 {
		t.Errorf("dumbbell SRTT = %.2f ms, want ≈ 10", rtt)
	}
}

func TestDumbbellUDPBackgroundShares(t *testing.T) {
	run := func(withUDP bool) float64 {
		eng := netsim.NewEngine()
		d := NewDumbbell(eng, TestbedOpts(1))
		if withUDP {
			u := tcp.NewUDPSource(d.UDPHost, 99, d.Receivers[0].ID, 100e6)
			u.Start()
			defer u.Stop()
		}
		var got int64
		r := tcp.NewReceiver(d.Receivers[0], 1, d.Senders[0].ID)
		r.OnDeliver = func(n int, now netsim.Time) { got += int64(n) }
		s := tcp.NewSender(d.Senders[0], 1, d.Receivers[0].ID, 0, tcp.NewFixedRate(950e6))
		s.Start()
		eng.RunUntil(netsim.Second)
		if d.QueueBytes() < 0 {
			t.Error("queue accessor broken")
		}
		return float64(got*8) / 1e9
	}
	clean := run(false)
	shared := run(true)
	if shared >= clean-0.02 {
		t.Errorf("UDP background must cost the TCP flow goodput: clean %.3f vs shared %.3f", clean, shared)
	}
}

func TestDumbbellAttachCPUs(t *testing.T) {
	eng := netsim.NewEngine()
	d := NewDumbbell(eng, TestbedOpts(2))
	d.AttachCPUs(4, ksim.DefaultCosts())
	if d.Senders[0].CPU == nil || d.UDPHost.CPU == nil {
		t.Error("CPUs not attached")
	}
}

// fleetTestUser is a minimal Freezer/Evaluator/Adapter for ProvisionFleet.
type fleetTestUser struct{ net *nn.Network }

func (u fleetTestUser) Freeze() *nn.Network          { return u.net }
func (u fleetTestUser) Stability() float64           { return 1 }
func (u fleetTestUser) Infer(in []float64) []float64 { return u.net.Infer(in) }
func (u fleetTestUser) Adapt([]core.Sample)          {}

func TestProvisionFleet(t *testing.T) {
	eng := netsim.NewEngine()
	sl := NewSpineLeaf(eng, DefaultSpineLeafOpts(2)) // 4 hosts
	sl.ProvisionCPUs(4, ksim.DefaultCosts())
	u := fleetTestUser{nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Linear}, 7)}
	ctrl := sl.ProvisionFleet(FleetSpec{
		Costs: ksim.DefaultCosts(),
		Core:  core.DefaultConfig(),
		Fleet: fleet.Config{BatchInterval: 10 * netsim.Millisecond},
	}, u, u, u)
	if err := ctrl.Start(); err != nil {
		t.Fatal(err)
	}
	defer ctrl.Stop()
	if got := len(ctrl.Members()); got != len(sl.Hosts) {
		t.Fatalf("members = %d, want one per host (%d)", got, len(sl.Hosts))
	}
	for i, m := range ctrl.Members() {
		if m.Core.Models() != 1 {
			t.Errorf("member %d: %d models resident, want the provisioned snapshot", i, m.Core.Models())
		}
		if m.Epoch() != 1 {
			t.Errorf("member %d: epoch %d, want 1", i, m.Epoch())
		}
	}
	// A sample pushed on a member channel must reach the controller's pool.
	ctrl.Members()[2].Chan.Push(core.EncodeSample(core.Sample{
		Input: []float64{0.1, 0.2, 0.3, 0.4}, At: eng.Now(),
	}))
	eng.RunUntil(25 * netsim.Millisecond)
	if st := ctrl.Stats(); st.Batches != 1 || st.Samples != 1 {
		t.Errorf("controller saw %d batches / %d samples, want 1/1", st.Batches, st.Samples)
	}
}

func TestProvisionFleetRequiresCPUs(t *testing.T) {
	eng := netsim.NewEngine()
	sl := NewSpineLeaf(eng, DefaultSpineLeafOpts(1))
	defer func() {
		if recover() == nil {
			t.Fatal("ProvisionFleet without CPUs must panic")
		}
	}()
	u := fleetTestUser{nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Linear}, 7)}
	sl.ProvisionFleet(FleetSpec{Costs: ksim.DefaultCosts(), Core: core.DefaultConfig()}, u, u, u)
}
