package core

import "errors"

// Sentinel errors of the core module and the userspace service. All error
// returns in this package either are one of these values or wrap one, so
// callers classify failures with errors.Is instead of string matching.
// codegen.ErrSnapshotBuild plays the same role for snapshot generation and
// netlink.ErrChannelClosed for the channel.
var (
	// ErrNoModel: the fast path was queried before any snapshot was
	// registered.
	ErrNoModel = errors.New("core: no model installed")
	// ErrNoStandby: Activate was called with no standby snapshot pending.
	ErrNoStandby = errors.New("core: no standby snapshot to activate")
	// ErrNilModule: RegisterModel was handed a nil or program-less module.
	ErrNilModule = errors.New("core: nil module")
	// ErrDimensionMismatch: a module or IO module declares NN dimensions
	// incompatible with the installed model.
	ErrDimensionMismatch = errors.New("core: dimension mismatch")
	// ErrServiceDown: the userspace service is inside an injected
	// crash/restart window (see Service.Healthy).
	ErrServiceDown = errors.New("core: slow-path service down")
	// ErrMalformedSample: a netlink payload failed validation in
	// ParseSample — wrong length header, non-finite values, or an empty
	// record. The kernel boundary rejects such data instead of misparsing.
	ErrMalformedSample = errors.New("core: malformed sample")
	// ErrDegraded: Activate was called while the slow-path watchdog has the
	// core pinned to its last-good snapshot. A stalled service's half-
	// delivered update must never be activated; activation is refused until
	// the slow path proves liveness again (NoteSlowPathAlive).
	ErrDegraded = errors.New("core: degraded, activation pinned to last-good snapshot")
)
