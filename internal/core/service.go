package core

import (
	"math"

	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netlink"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/quant"
)

// Sample is one kernel-collected training record: the NN input plus whatever
// auxiliary signals the user's tuning algorithm needs (rewards, labels,
// utilization — LiteFlow does not interpret Aux).
type Sample struct {
	Input []float64
	Aux   []float64
	At    netsim.Time
}

// EncodeSample packs a sample into a netlink message.
func EncodeSample(s Sample) netlink.Message {
	data := make([]float64, 0, 1+len(s.Input)+len(s.Aux))
	data = append(data, float64(len(s.Input)))
	data = append(data, s.Input...)
	data = append(data, s.Aux...)
	return netlink.Message{Kind: netlink.KindSample, Data: data, At: s.At}
}

// DecodeSample unpacks a netlink message produced by EncodeSample. It
// returns false for malformed payloads rather than panicking: the channel
// boundary is where a real kernel would validate userspace-visible data.
func DecodeSample(m netlink.Message) (Sample, bool) {
	if len(m.Data) < 1 {
		return Sample{}, false
	}
	n := int(m.Data[0])
	if n < 0 || 1+n > len(m.Data) {
		return Sample{}, false
	}
	return Sample{
		Input: m.Data[1 : 1+n],
		Aux:   m.Data[1+n:],
		At:    m.At,
	}, true
}

// The three user interfaces of the userspace service (paper §4.1). LiteFlow
// is not tied to any learning framework: users implement these with whatever
// tooling they like.

// Freezer is the NN Freezing Interface: it returns the current userspace
// model for snapshot generation.
type Freezer interface {
	Freeze() *nn.Network
}

// Evaluator is the NN Evaluation Interface: a stability value monitored for
// convergence (e.g. training loss), and userspace inference for fidelity
// comparison against the kernel snapshot.
type Evaluator interface {
	Stability() float64
	Infer(in []float64) []float64
}

// Adapter is the NN Online Adaptation Interface: tune the userspace model
// with one batch of kernel-collected samples.
type Adapter interface {
	Adapt(batch []Sample)
}

// ServiceStats counts slow-path activity.
type ServiceStats struct {
	Batches            int64
	Samples            int64
	Converged          int64 // batches that passed the correctness gate
	FidelityChecks     int64
	Updates            int64 // snapshots actually installed
	SkippedByNecessity int64
	LastFidelity       float64
	LastStability      float64
}

// Service is the LiteFlow userspace service: it receives batched training
// data over the netlink channel, drives the user's Adapter, and decides
// snapshot synchronization from correctness (convergence) and necessity
// (fidelity loss) — paper §3.2–§3.4.
type Service struct {
	Core *Core
	Chan *netlink.Channel

	Freezer   Freezer
	Evaluator Evaluator
	Adapter   Adapter

	// NamePrefix names generated snapshot modules (suffix is a counter).
	NamePrefix string

	// OnUpdate, when set, observes each snapshot install.
	OnUpdate func(m *Model)

	stabilityHist []float64
	snapCount     int
	installing    bool
	stats         ServiceStats
}

// NewService wires a service to the core and its netlink channel. The
// channel's delivery callback is replaced; call StartBatching on the channel
// (or Service.Start) to begin periodic delivery.
func NewService(c *Core, ch *netlink.Channel, f Freezer, e Evaluator, a Adapter) *Service {
	s := &Service{Core: c, Chan: ch, Freezer: f, Evaluator: e, Adapter: a, NamePrefix: "snapshot"}
	ch.SetDeliver(s.HandleBatch)
	return s
}

// Start begins batched data delivery every interval (the paper's T,
// recommended 100 ms–1000 ms; §5.1's micro-benchmark).
func (s *Service) Start(interval netsim.Time) {
	s.Chan.StartBatching(interval)
}

// Stats returns a snapshot of the service's counters.
func (s *Service) Stats() ServiceStats { return s.stats }

// HandleBatch processes one delivered batch: adapt, then evaluate
// synchronization. It is exposed so hosts can wire it as the channel's
// delivery callback.
func (s *Service) HandleBatch(batch []netlink.Message) {
	samples := make([]Sample, 0, len(batch))
	for _, m := range batch {
		if m.Kind != netlink.KindSample {
			continue
		}
		if sm, ok := DecodeSample(m); ok {
			samples = append(samples, sm)
		}
	}
	if len(samples) == 0 {
		return
	}
	s.stats.Batches++
	s.stats.Samples += int64(len(samples))

	s.Adapter.Adapt(samples)
	s.stats.LastStability = s.Evaluator.Stability()

	if !s.converged() {
		return
	}
	s.stats.Converged++
	s.evaluateNecessity(samples)
}

// converged applies the correctness gate: the stability metric must stay
// within a relative tolerance band across the configured window.
func (s *Service) converged() bool {
	s.stabilityHist = append(s.stabilityHist, s.stats.LastStability)
	w := s.Core.Cfg.StabilityWindow
	if len(s.stabilityHist) > w {
		s.stabilityHist = s.stabilityHist[len(s.stabilityHist)-w:]
	}
	if len(s.stabilityHist) < w {
		return false
	}
	lo, hi := s.stabilityHist[0], s.stabilityHist[0]
	for _, v := range s.stabilityHist[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	scale := math.Max(math.Abs(hi), math.Abs(lo))
	if scale < 1e-12 {
		return true
	}
	return (hi-lo)/scale <= s.Core.Cfg.StabilityTolerance
}

// evaluateNecessity computes the minimal fidelity loss over the batch.
// Kernel snapshot outputs must travel to userspace: the service sends the
// inputs down and the outputs come back, both charged as cross-space work
// (the second netlink message type of §4.2). The snapshot is updated only
// when min L(x) exceeds α·(Omax−Omin).
func (s *Service) evaluateNecessity(samples []Sample) {
	if s.installing {
		return // an install is already in flight
	}
	s.stats.FidelityChecks++

	payload := 0
	for _, sm := range samples {
		payload += 8 * len(sm.Input)
	}
	s.Chan.SendToKernel(payload, func() {
		minLoss := math.Inf(1)
		active := s.Core.Active()
		if active == nil {
			return
		}
		prog := active.Program()
		in := make([]int64, prog.InputSize())
		out := make([]int64, prog.OutputSize())
		for _, sm := range samples {
			if len(sm.Input) != prog.InputSize() {
				continue
			}
			// Kernel-side snapshot output f'(x).
			prog.QuantizeInput(sm.Input, in)
			if s.Core.CPU != nil {
				s.Core.CPU.Charge(ksim.Kernel, ksim.InferCost(s.Core.Costs.KernelInferPerMAC, prog.MACs()))
			}
			prog.Infer(in, out)
			kernelOut := prog.DequantizeOutput(out, nil)
			// Userspace output f(x).
			userOut := s.Evaluator.Infer(sm.Input)
			l := 0.0
			for i := range userOut {
				if i < len(kernelOut) {
					l += math.Abs(kernelOut[i] - userOut[i])
				}
			}
			if l < minLoss {
				minLoss = l
			}
		}
		if math.IsInf(minLoss, 1) {
			return
		}
		// Response crosses back to userspace.
		if s.Core.CPU != nil {
			s.Core.CPU.Charge(ksim.SoftIRQ, s.Core.Costs.CrossSpace)
		}
		s.Core.Eng.After(s.Core.Costs.CrossSpaceLatency, func() {
			s.stats.LastFidelity = minLoss
			threshold := s.Core.Cfg.Alpha * (s.Core.Cfg.OutMax - s.Core.Cfg.OutMin)
			if minLoss <= threshold {
				s.stats.SkippedByNecessity++
				return
			}
			s.installSnapshot()
		})
	})
}

// installSnapshot freezes the userspace model, generates a quantized module,
// ships it to the kernel as the standby snapshot, and switches roles — the
// active-standby-switch of §3.4. The datapath keeps using the old active
// snapshot for the whole install.
func (s *Service) installSnapshot() {
	s.installing = true
	net := s.Freezer.Freeze()
	prog := quant.Quantize(net, s.Core.Cfg.Quant)
	s.snapCount++
	name := fmt_name(s.NamePrefix, s.snapCount)
	mod, err := codegen.Build(prog, name)
	if err != nil {
		// Generated modules are validated; a failure here is a programming
		// error surfaced loudly in tests.
		panic("core: snapshot generation failed: " + err.Error())
	}
	paramBytes := prog.NumParams() * 8
	s.Chan.SendToKernel(paramBytes, func() {
		// Kernel-side module install (insmod): charged per parameter, but
		// the active snapshot keeps serving inference throughout.
		if s.Core.CPU != nil {
			s.Core.CPU.Charge(ksim.Kernel,
				s.Core.Costs.SnapshotInstallPerParam*netsim.Time(prog.NumParams()))
		}
		m, err := s.Core.RegisterModel(mod)
		if err != nil {
			s.installing = false
			return
		}
		if err := s.Core.Activate(); err != nil {
			s.installing = false
			return
		}
		s.stats.Updates++
		s.installing = false
		if s.OnUpdate != nil {
			s.OnUpdate(m)
		}
	})
}

func fmt_name(prefix string, n int) string {
	// Small and allocation-cheap; names are identifiers (validated by
	// codegen.Build).
	const digits = "0123456789"
	if n == 0 {
		return prefix + "_0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = digits[n%10]
		n /= 10
	}
	return prefix + "_" + string(buf[i:])
}
