package core

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/fault"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netlink"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/obs"
	"github.com/liteflow-sim/liteflow/internal/opt"
	"github.com/liteflow-sim/liteflow/internal/quant"
)

// Sample is one kernel-collected training record: the NN input plus whatever
// auxiliary signals the user's tuning algorithm needs (rewards, labels,
// utilization — LiteFlow does not interpret Aux).
type Sample struct {
	Input []float64
	Aux   []float64
	At    netsim.Time
}

// EncodeSample packs a sample into a netlink message.
func EncodeSample(s Sample) netlink.Message {
	data := make([]float64, 0, 1+len(s.Input)+len(s.Aux))
	data = append(data, float64(len(s.Input)))
	data = append(data, s.Input...)
	data = append(data, s.Aux...)
	return netlink.Message{Kind: netlink.KindSample, Data: data, At: s.At}
}

// ParseSample unpacks and validates a netlink message produced by
// EncodeSample. The channel boundary is where a real kernel validates
// userspace-visible data, so a corrupt payload is rejected — with an error
// wrapping ErrMalformedSample — rather than misparsed or panicked on.
// Validation covers the input-length header (finite, integral, within the
// payload; the range check runs in float space because a huge float→int
// conversion is implementation-defined) and every payload value (finite).
func ParseSample(m netlink.Message) (Sample, error) {
	if len(m.Data) < 1 {
		return Sample{}, fmt.Errorf("%w: empty payload", ErrMalformedSample)
	}
	h := m.Data[0]
	if math.IsNaN(h) || math.IsInf(h, 0) || h != math.Trunc(h) ||
		h < 0 || h > float64(len(m.Data)-1) {
		return Sample{}, fmt.Errorf("%w: input-length header %v outside [0, %d]",
			ErrMalformedSample, h, len(m.Data)-1)
	}
	for i, v := range m.Data[1:] {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Sample{}, fmt.Errorf("%w: non-finite value at offset %d",
				ErrMalformedSample, i+1)
		}
	}
	n := int(h)
	// Copy out of the message's backing array: the channel (and a fault
	// injector corrupting queued payloads) retains m.Data, and adapters may
	// mutate the samples they are handed — shared backing would let either
	// side rewrite the other's history.
	in := make([]float64, n)
	copy(in, m.Data[1:1+n])
	aux := make([]float64, len(m.Data)-1-n)
	copy(aux, m.Data[1+n:])
	return Sample{Input: in, Aux: aux, At: m.At}, nil
}

// DecodeSample is ParseSample with a boolean verdict, for callers that do
// not need the rejection reason.
func DecodeSample(m netlink.Message) (Sample, bool) {
	s, err := ParseSample(m)
	return s, err == nil
}

// The three user interfaces of the userspace service (paper §4.1). LiteFlow
// is not tied to any learning framework: users implement these with whatever
// tooling they like.

// Freezer is the NN Freezing Interface: it returns the current userspace
// model for snapshot generation.
type Freezer interface {
	Freeze() *nn.Network
}

// Evaluator is the NN Evaluation Interface: a stability value monitored for
// convergence (e.g. training loss), and userspace inference for fidelity
// comparison against the kernel snapshot.
type Evaluator interface {
	Stability() float64
	Infer(in []float64) []float64
}

// Adapter is the NN Online Adaptation Interface: tune the userspace model
// with one batch of kernel-collected samples.
type Adapter interface {
	Adapt(batch []Sample)
}

// ServiceStats counts slow-path activity. It is a snapshot view over the
// service's registry-backed instruments.
type ServiceStats struct {
	Batches            int64
	Samples            int64
	Converged          int64 // batches that passed the correctness gate
	FidelityChecks     int64
	Updates            int64 // snapshots actually installed
	SkippedByNecessity int64
	BuildFailures      int64 // snapshot codegen failures (install retried)
	InstallRetries     int64 // retry-with-backoff attempts after failures
	InstallsAbandoned  int64 // installs dropped: retry budget, rejection, or closed channel
	InstallsParked     int64 // installs parked on a degraded core, awaiting recovery
	OutageDrops        int64 // batches dropped inside injected outages
	Malformed          int64 // messages rejected by ParseSample
	FidelityMismatches int64 // fidelity samples skipped for output-size mismatch
	LastFidelity       float64
	LastStability      float64
}

// serviceMetrics holds the service's registry-backed instruments.
type serviceMetrics struct {
	batches        *obs.Counter
	samples        *obs.Counter
	converged      *obs.Counter
	fidelityChecks *obs.Counter
	updates        *obs.Counter
	skipped        *obs.Counter
	buildFailures  *obs.Counter
	retries        *obs.Counter
	abandoned      *obs.Counter
	parked         *obs.Counter
	outageDrops    *obs.Counter
	malformed      *obs.Counter
	mismatched     *obs.Counter
	lastFidelity   *obs.Gauge
	lastStability  *obs.Gauge
}

func newServiceMetrics(sc obs.Scope) serviceMetrics {
	return serviceMetrics{
		batches:        sc.Counter("liteflow_service_batches_total", "sample batches processed by the slow path"),
		samples:        sc.Counter("liteflow_service_samples_total", "training samples processed by the slow path"),
		converged:      sc.Counter("liteflow_service_converged_total", "batches that passed the correctness gate"),
		fidelityChecks: sc.Counter("liteflow_service_fidelity_checks_total", "necessity evaluations performed"),
		updates:        sc.Counter("liteflow_service_updates_total", "snapshots installed into the kernel"),
		skipped:        sc.Counter("liteflow_service_skipped_by_necessity_total", "installs skipped because fidelity loss was below threshold"),
		buildFailures:  sc.Counter("liteflow_snapshot_build_failures_total", "snapshot build failures; the install is retried with backoff"),
		retries:        sc.Counter("liteflow_snapshot_install_retries_total", "snapshot install retry attempts after build failures"),
		abandoned:      sc.Counter("liteflow_snapshot_installs_abandoned_total", "snapshot installs dropped: retry budget exhausted, module rejected, or channel closed"),
		parked:         sc.Counter("liteflow_snapshot_installs_parked_total", "snapshot installs parked on a degraded core until recovery"),
		outageDrops:    sc.Counter("liteflow_service_outage_drops_total", "batches dropped because the service was inside an injected outage"),
		malformed:      sc.Counter("liteflow_service_malformed_total", "netlink messages rejected by sample validation"),
		mismatched:     sc.Counter("liteflow_service_fidelity_size_mismatch_total", "fidelity samples skipped because kernel and user output sizes disagreed"),
		lastFidelity:   sc.Gauge("liteflow_service_last_fidelity", "minimal fidelity loss from the latest necessity check"),
		lastStability:  sc.Gauge("liteflow_service_last_stability", "stability metric from the latest batch"),
	}
}

// Service is the LiteFlow userspace service: it receives batched training
// data over the netlink channel, drives the user's Adapter, and decides
// snapshot synchronization from correctness (convergence) and necessity
// (fidelity loss) — paper §3.2–§3.4.
type Service struct {
	Core *Core
	Chan *netlink.Channel

	Freezer   Freezer
	Evaluator Evaluator
	Adapter   Adapter

	// NamePrefix names generated snapshot modules (suffix is a counter).
	NamePrefix string

	// OnUpdate, when set, observes each snapshot install.
	OnUpdate func(m *Model)

	stabilityHist []float64
	snapCount     int
	installing    bool
	parked        *Model // standby registered while degraded, awaiting recovery

	// life is the open lifecycle span for the snapshot version currently
	// being pooled toward: opened on the first batch after the previous
	// lifecycle closed, versioned at build time, ended at activation (or
	// failure). lifeStaged records that the pool/correctness/necessity
	// children were already emitted for this root.
	spans      *obs.SpanTracer
	life       *obs.Span
	lifeStaged bool

	inj   *fault.Injector
	retry opt.Retry

	sc  obs.Scope
	met serviceMetrics
}

// NewSlowPath wires a service to the core and its netlink channel. The
// channel's delivery callback is replaced; call StartBatching on the channel
// (or Service.Start) to begin periodic delivery. Options: opt.WithScope
// overrides the scope (otherwise the service inherits the core's);
// opt.WithFaults subjects the service to injected outages and snapshot
// failures; opt.WithRetry tunes the install retry-with-backoff policy.
// Attaching a service arms the core's watchdog when one was configured.
func NewSlowPath(c *Core, ch *netlink.Channel, f Freezer, e Evaluator, a Adapter, options ...opt.Option) *Service {
	o := opt.Resolve(options)
	s := &Service{Core: c, Chan: ch, Freezer: f, Evaluator: e, Adapter: a, NamePrefix: "snapshot"}
	if o.HasScope {
		s.sc = o.Scope
	} else {
		s.sc = c.Obs()
	}
	s.inj = o.Faults
	s.retry = opt.DefaultRetry()
	if o.Retry != nil {
		s.retry = *o.Retry
	}
	s.met = newServiceMetrics(s.sc)
	s.spans = obs.NewSpanTracer(s.sc)
	ch.SetDeliver(s.HandleBatch)
	c.slowPathAttached()
	return s
}

// NewService is the pre-options constructor.
//
// Deprecated: use NewSlowPath, which takes functional options
// (opt.WithScope, opt.WithFaults, opt.WithRetry).
func NewService(c *Core, ch *netlink.Channel, f Freezer, e Evaluator, a Adapter, sc ...obs.Scope) *Service {
	var options []opt.Option
	if len(sc) > 0 {
		options = append(options, opt.WithScope(sc[0]))
	}
	return NewSlowPath(c, ch, f, e, a, options...)
}

// Start begins batched data delivery every interval (the paper's T,
// recommended 100 ms–1000 ms; §5.1's micro-benchmark).
func (s *Service) Start(interval netsim.Time) {
	s.Chan.StartBatching(interval)
}

// Stats returns a snapshot of the service's counters.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		Batches:            s.met.batches.Value(),
		Samples:            s.met.samples.Value(),
		Converged:          s.met.converged.Value(),
		FidelityChecks:     s.met.fidelityChecks.Value(),
		Updates:            s.met.updates.Value(),
		SkippedByNecessity: s.met.skipped.Value(),
		BuildFailures:      s.met.buildFailures.Value(),
		InstallRetries:     s.met.retries.Value(),
		InstallsAbandoned:  s.met.abandoned.Value(),
		InstallsParked:     s.met.parked.Value(),
		OutageDrops:        s.met.outageDrops.Value(),
		Malformed:          s.met.malformed.Value(),
		FidelityMismatches: s.met.mismatched.Value(),
		LastFidelity:       s.met.lastFidelity.Value(),
		LastStability:      s.met.lastStability.Value(),
	}
}

// Healthy reports whether the service is currently able to process batches.
// Inside an injected crash/restart window it returns ErrServiceDown.
func (s *Service) Healthy() error {
	if s.inj.ServiceDown(int64(s.Core.Eng.Now())) {
		return ErrServiceDown
	}
	return nil
}

// HandleBatch processes one delivered batch: adapt, then evaluate
// synchronization. It is exposed so hosts can wire it as the channel's
// delivery callback. A batch arriving inside an injected service outage is
// dropped wholesale — a crashed process consumes nothing — which is exactly
// the silence the core's watchdog detects.
func (s *Service) HandleBatch(batch []netlink.Message) {
	now := s.Core.Eng.Now()
	if s.inj.ServiceDown(int64(now)) {
		s.met.outageDrops.Inc()
		s.sc.Event1("service", "outage_drop", now, "msgs", int64(len(batch)))
		return
	}
	s.Core.NoteSlowPathAlive()
	s.activateParked()
	samples := make([]Sample, 0, len(batch))
	for _, m := range batch {
		if m.Kind != netlink.KindSample {
			continue
		}
		sm, err := ParseSample(m)
		if err != nil {
			s.met.malformed.Inc()
			s.sc.Event("service", "malformed", now)
			continue
		}
		samples = append(samples, sm)
	}
	if len(samples) == 0 {
		return
	}
	s.met.batches.Inc()
	s.met.samples.Add(int64(len(samples)))
	if s.life == nil {
		s.life = s.spans.Root("snapshot", "snapshot_lifecycle", now)
	}

	s.Adapter.Adapt(samples)
	s.met.lastStability.Set(s.Evaluator.Stability())

	if !s.converged() {
		return
	}
	s.met.converged.Inc()
	s.evaluateNecessity(samples)
}

// activateParked activates a snapshot whose install landed inside a degraded
// window. The core kept it registered as the parked standby through the
// outage; NoteSlowPathAlive has just cleared degradation, so the built module
// activates now instead of being discarded and rebuilt from scratch.
func (s *Service) activateParked() {
	if s.parked == nil {
		return
	}
	m := s.parked
	s.parked = nil
	if err := s.Core.Activate(); err != nil {
		// The standby was displaced while parked (a newer install already
		// took its place); nothing left to recover.
		s.life.EndFailed(s.Core.Eng.Now(), "displaced")
		s.closeLife()
		return
	}
	s.met.updates.Inc()
	now := s.Core.Eng.Now()
	s.sc.EventStr("snapshot", "parked_activate", now, "model", m.Name)
	s.life.Child("parked_activate", now, 0)
	s.life.End(now)
	s.closeLife()
	if s.OnUpdate != nil {
		s.OnUpdate(m)
	}
}

// converged applies the correctness gate: the stability metric must stay
// within a relative tolerance band across the configured window.
func (s *Service) converged() bool {
	s.stabilityHist = append(s.stabilityHist, s.met.lastStability.Value())
	w := s.Core.Cfg.StabilityWindow
	if len(s.stabilityHist) > w {
		s.stabilityHist = s.stabilityHist[len(s.stabilityHist)-w:]
	}
	if len(s.stabilityHist) < w {
		return false
	}
	lo, hi := s.stabilityHist[0], s.stabilityHist[0]
	for _, v := range s.stabilityHist[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	scale := math.Max(math.Abs(hi), math.Abs(lo))
	if scale < 1e-12 {
		return true
	}
	return (hi-lo)/scale <= s.Core.Cfg.StabilityTolerance
}

// evaluateNecessity computes the minimal fidelity loss over the batch.
// Kernel snapshot outputs must travel to userspace: the service sends the
// inputs down and the outputs come back, both charged as cross-space work
// (the second netlink message type of §4.2). The snapshot is updated only
// when min L(x) exceeds α·(Omax−Omin).
func (s *Service) evaluateNecessity(samples []Sample) {
	if s.installing {
		return // a fidelity check or install is already in flight
	}
	// Mark the pipeline busy at schedule time, not deep inside the install
	// callbacks: the fidelity round trip spends a full cross-space RTT in
	// flight, and a second batch arriving inside that window must not launch
	// a concurrent check — overlapping installs race for the standby slot and
	// double-ship parameters. Every terminal path below clears the flag.
	s.installing = true
	s.met.fidelityChecks.Inc()
	necStart := s.Core.Eng.Now()

	payload := 0
	for _, sm := range samples {
		payload += 8 * len(sm.Input)
	}
	sendErr := s.Chan.SendToKernel(payload, func() {
		minLoss := math.Inf(1)
		active := s.Core.Active()
		if active == nil {
			s.installing = false
			return
		}
		prog := active.Program()
		in := make([]int64, prog.InputSize())
		out := make([]int64, prog.OutputSize())
		for _, sm := range samples {
			if len(sm.Input) != prog.InputSize() {
				continue
			}
			// Kernel-side snapshot output f'(x).
			prog.QuantizeInput(sm.Input, in)
			if s.Core.CPU != nil {
				s.Core.CPU.Charge(ksim.Kernel, ksim.InferCost(s.Core.Costs.KernelInferPerMAC, prog.MACs()))
			}
			prog.Infer(in, out)
			kernelOut := prog.DequantizeOutput(out, nil)
			// Userspace output f(x).
			userOut := s.Evaluator.Infer(sm.Input)
			if len(userOut) != len(kernelOut) {
				// Mismatched output shapes make the L1 distance meaningless;
				// a truncated partial sum would understate the loss and mask
				// real divergence. Skip the sample, mirroring the input-size
				// skip above, and count it.
				s.met.mismatched.Inc()
				continue
			}
			l := 0.0
			for i := range userOut {
				l += math.Abs(kernelOut[i] - userOut[i])
			}
			if l < minLoss {
				minLoss = l
			}
		}
		if math.IsInf(minLoss, 1) {
			s.installing = false
			return
		}
		// Response crosses back to userspace.
		if s.Core.CPU != nil {
			s.Core.CPU.Charge(ksim.SoftIRQ, s.Core.Costs.CrossSpace)
		}
		s.Core.Eng.After(s.Core.Costs.CrossSpaceLatency, func() {
			s.met.lastFidelity.Set(minLoss)
			threshold := s.Core.Cfg.Alpha * (s.Core.Cfg.OutMax - s.Core.Cfg.OutMin)
			if minLoss <= threshold {
				s.met.skipped.Inc()
				s.sc.Event("service", "necessity_skip", s.Core.Eng.Now())
				s.installing = false
				return
			}
			// The gate passed: stage the lifecycle children. Pooling and the
			// correctness gate are emitted once per root (a lifecycle can run
			// several necessity rounds if earlier installs failed); the
			// necessity span covers this round's fidelity RTT.
			decided := s.Core.Eng.Now()
			if s.life != nil && !s.lifeStaged {
				s.lifeStaged = true
				s.life.Child("pool", s.life.Start(), necStart-s.life.Start())
				s.life.Child("correctness_gate", necStart, 0)
			}
			s.life.Child("necessity_gate", necStart, decided-necStart)
			s.installSnapshot()
		})
	})
	if sendErr != nil {
		s.installing = false // channel closed; no kernel to query
	}
}

// installSnapshot freezes the userspace model, generates a quantized module,
// ships it to the kernel as the standby snapshot, and switches roles — the
// active-standby-switch of §3.4. The datapath keeps using the old active
// snapshot for the whole install. A failed build is retried with bounded
// backoff in virtual time (see opt.Retry); the fast path is never touched
// by a failed attempt.
func (s *Service) installSnapshot() {
	s.installing = true
	s.tryInstall(0)
}

// backoff returns the wait before retry attempt n: min(Base<<n, Cap).
func (s *Service) backoff(attempt int) netsim.Time {
	b := s.retry.Base << uint(attempt)
	if b <= 0 || b > s.retry.Cap {
		b = s.retry.Cap
	}
	return netsim.Time(b)
}

// tryInstall runs one install attempt (0-based). Build failures — real
// codegen errors or injected build/quantization faults, both wrapping
// codegen.ErrSnapshotBuild — schedule a retry after backoff until the
// attempt budget is exhausted; then the install is abandoned and the
// service keeps adapting with the current snapshot.
func (s *Service) tryInstall(attempt int) {
	now := s.Core.Eng.Now()
	net := s.Freezer.Freeze()
	s.snapCount++
	name := s.NamePrefix + "_" + strconv.Itoa(s.snapCount)

	var mod *codegen.Module
	var prog *quant.Program
	var err error
	if reason, fail := s.inj.FailSnapshot(int64(now)); fail {
		err = fmt.Errorf("%w: injected %s failure", codegen.ErrSnapshotBuild, reason)
	} else {
		prog = quant.Quantize(net, s.Core.Cfg.Quant)
		mod, err = codegen.Build(prog, name)
	}
	if err != nil {
		// A bad user network (or injected fault) must not take down the
		// service: count it, back off, retry. The failure chain is visible
		// in the build-failure/retry counters and the trace.
		s.met.buildFailures.Inc()
		s.sc.EventMix("snapshot", "build_failure", now, "attempt", int64(attempt+1), "model", name)
		s.life.Mark("build_failure", now, "attempt", int64(attempt+1))
		if attempt+1 >= s.retry.Max {
			s.met.abandoned.Inc()
			s.sc.Event1("snapshot", "install_abandoned", now, "attempts", int64(attempt+1))
			s.life.EndFailed(now, "abandoned")
			s.closeLife()
			s.installing = false
			return
		}
		wait := s.backoff(attempt)
		s.met.retries.Inc()
		s.sc.Event2("snapshot", "install_retry", now, "attempt", int64(attempt+1), "backoff_ns", int64(wait))
		s.Core.Eng.After(wait, func() { s.tryInstall(attempt + 1) })
		return
	}
	s.life.SetVersion(int64(s.snapCount))
	s.life.Child("quantize", now, 0)
	s.life.Child("build", now, 0)
	paramBytes := prog.NumParams() * 8
	installStart := now
	sendErr := s.Chan.SendToKernel(paramBytes, func() {
		// Kernel-side module install (insmod): charged per parameter, but
		// the active snapshot keeps serving inference throughout.
		if s.Core.CPU != nil {
			s.Core.CPU.Charge(ksim.Kernel,
				s.Core.Costs.SnapshotInstallPerParam*netsim.Time(prog.NumParams()))
		}
		m, err := s.Core.RegisterModel(mod)
		if err != nil {
			// A rejected module (dimension change, nil program) cannot retry
			// into success; count the loss instead of dropping it silently.
			s.met.abandoned.Inc()
			s.sc.EventStr("snapshot", "install_rejected", s.Core.Eng.Now(), "model", name)
			s.life.EndFailed(s.Core.Eng.Now(), "rejected")
			s.closeLife()
			s.installing = false
			return
		}
		if err := s.Core.Activate(); err != nil {
			if errors.Is(err, ErrDegraded) {
				// The module is already registered: the degraded core parks
				// it as standby, and activateParked switches to it on the
				// first post-recovery batch instead of rebuilding. The
				// lifecycle stays open until that catch-up activation.
				s.parked = m
				s.met.parked.Inc()
				s.sc.EventStr("snapshot", "install_parked", s.Core.Eng.Now(), "model", name)
				s.life.Mark("install_parked", s.Core.Eng.Now(), "version", int64(s.snapCount))
			} else {
				s.met.abandoned.Inc()
				s.sc.EventStr("snapshot", "install_rejected", s.Core.Eng.Now(), "model", name)
				s.life.EndFailed(s.Core.Eng.Now(), "rejected")
				s.closeLife()
			}
			s.installing = false
			return
		}
		s.met.updates.Inc()
		done := s.Core.Eng.Now()
		s.life.Child("install", installStart, done-installStart)
		s.life.Child("activate", done, 0)
		s.life.End(done)
		s.closeLife()
		s.installing = false
		if s.OnUpdate != nil {
			s.OnUpdate(m)
		}
	})
	if sendErr != nil {
		// The channel is gone; no kernel to install into.
		s.met.abandoned.Inc()
		s.sc.Event1("snapshot", "install_abandoned", now, "attempts", int64(attempt+1))
		s.life.EndFailed(now, "abandoned")
		s.closeLife()
		s.installing = false
	}
}

// closeLife resets the lifecycle span slot after the open root ended; the
// next processed batch opens the next version's root.
func (s *Service) closeLife() {
	s.life = nil
	s.lifeStaged = false
}
