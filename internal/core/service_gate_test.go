package core

// Regression tests for the slow-path install pipeline races and silent-loss
// bugs, plus focused coverage of the correctness (converged) and necessity
// (fidelity threshold) gates.

import (
	"math"
	"math/rand"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netlink"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
)

// fillWindow pushes enough faithful batches for the stability history to
// fill, so every subsequent batch reaches the necessity gate.
func fillWindow(r *serviceRig) {
	r.user.stability = 0.5
	for i := 0; i < r.core.Cfg.StabilityWindow+1; i++ {
		r.pushBatch(8, int64(100+i))
	}
}

// TestNoConcurrentFidelityChecks is the regression test for the install-race
// bug: evaluateNecessity only consulted s.installing at entry, but the flag
// was set deep inside the SendToKernel→After callbacks, so two batches
// delivered within one cross-space RTT both passed the check and launched
// concurrent fidelity evaluations — and, with a diverged user model, two
// overlapping installs. The pipeline must be marked busy at schedule time.
func TestNoConcurrentFidelityChecks(t *testing.T) {
	r := newServiceRig(t)
	fillWindow(r)
	st0 := r.svc.Stats()

	// Diverge the user model so the check will want an install, then deliver
	// two batches back-to-back: both flushes happen at the same virtual
	// instant, so both deliveries land inside the first check's RTT window.
	r.user.net.Layers[1].B[0] += 0.5
	rng := rand.New(rand.NewSource(7))
	for b := 0; b < 2; b++ {
		for i := 0; i < 8; i++ {
			in := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
			r.ch.Push(EncodeSample(Sample{Input: in, At: r.eng.Now()}))
		}
		r.ch.Flush()
	}
	r.eng.Run()

	st := r.svc.Stats()
	if got := st.FidelityChecks - st0.FidelityChecks; got != 1 {
		t.Errorf("two batches inside one RTT launched %d fidelity checks, want 1", got)
	}
	if got := st.Updates - st0.Updates; got != 1 {
		t.Errorf("two batches inside one RTT produced %d installs, want 1", got)
	}
}

// badFreezer freezes a network whose output dimension disagrees with the
// active snapshot, so RegisterModel rejects the built module.
type badFreezer struct{}

func (badFreezer) Freeze() *nn.Network {
	return nn.New([]int{4, 8, 2}, []nn.Activation{nn.Tanh, nn.Linear}, 3)
}

// TestRejectedInstallCounted is the regression test for the silent-drop bug:
// a RegisterModel failure inside the install callback returned without
// touching any counter, so ServiceStats undercounted losses. It must count
// as abandoned.
func TestRejectedInstallCounted(t *testing.T) {
	eng := netsim.NewEngine()
	cpu := ksim.NewCPU(eng, 4)
	cfg := DefaultConfig()
	cfg.FlowCacheTimeout = 0
	c := New(eng, cpu, ksim.DefaultCosts(), cfg)
	base := nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Linear}, 11)
	if _, err := c.RegisterModel(buildModule(t, base, "m0")); err != nil {
		t.Fatal(err)
	}
	user := &userModel{net: base.Clone(), stability: 0.5}
	user.net.Layers[1].B[0] += 0.5 // diverged: the check wants an install
	ch := netlink.New(eng, cpu, ksim.DefaultCosts(), nil)
	svc := NewSlowPath(c, ch, badFreezer{}, user, user)
	r := &serviceRig{eng: eng, cpu: cpu, core: c, ch: ch, user: user, svc: svc}

	for i := 0; i < cfg.StabilityWindow+1; i++ {
		r.pushBatch(8, int64(i))
	}
	st := r.svc.Stats()
	if st.Updates != 0 {
		t.Errorf("mismatched module must not install, got %d updates", st.Updates)
	}
	if st.InstallsAbandoned == 0 {
		t.Error("rejected RegisterModel must count as an abandoned install")
	}
	if r.svc.installing {
		t.Error("rejection must release the install pipeline")
	}
}

// TestDegradedInstallParksAndRecovers is the regression test for the
// discarded-module bug: an install whose Activate landed inside a degraded
// window dropped the fully built, already-registered module on the floor.
// The core keeps it parked as standby; the service must activate it on the
// first post-recovery batch rather than rebuilding from scratch.
func TestDegradedInstallParksAndRecovers(t *testing.T) {
	window := 100 * netsim.Millisecond
	r := newWatchdogRig(t, window)
	defer r.core.StopWatchdog()

	r.pushBatch(4) // liveness signal
	r.eng.RunUntil(r.eng.Now() + 5*window)
	if !r.core.Degraded() {
		t.Fatal("watchdog must degrade after slow-path silence")
	}
	pinned := r.core.Active()

	// An install pipeline that was already past its netlink send completes
	// now: RegisterModel parks the standby, Activate is refused.
	r.user.net.Layers[1].B[0] += 0.5
	r.svc.installSnapshot()
	r.eng.RunUntil(r.eng.Now() + 10*netsim.Millisecond)

	st := r.svc.Stats()
	if st.InstallsParked != 1 {
		t.Fatalf("install during degradation must park, got %+v", st)
	}
	if st.InstallsAbandoned != 0 {
		t.Errorf("parked install must not count as abandoned: %+v", st)
	}
	if r.core.Active() != pinned {
		t.Error("degraded core must keep serving the pinned snapshot")
	}
	if r.svc.installing {
		t.Error("parking must release the install pipeline")
	}

	// The next accepted batch recovers the core and activates the parked
	// standby — no rebuild, no re-send.
	r.pushBatch(4)
	if r.core.Degraded() {
		t.Fatal("core must recover once the slow path resumes")
	}
	st = r.svc.Stats()
	if st.Updates != 1 {
		t.Errorf("parked standby must activate on recovery, got %d updates", st.Updates)
	}
	if r.core.Active() == pinned {
		t.Error("recovery must switch to the parked snapshot")
	}
}

// wideEvaluator wraps an Evaluator and appends one extra output element, so
// userspace and kernel output sizes disagree on every fidelity sample.
type wideEvaluator struct{ inner *userModel }

func (w wideEvaluator) Stability() float64 { return w.inner.Stability() }
func (w wideEvaluator) Infer(in []float64) []float64 {
	return append(w.inner.Infer(in), 0)
}

// TestFidelityOutputMismatchSkipped is the regression test for the truncated
// partial-loss bug: the loss loop summed over userOut indices clamped to
// len(kernelOut), so mismatched output sizes produced a prefix loss that was
// acted on as if it were meaningful. Mismatched samples must be skipped — as
// input-size mismatches already are — and counted.
func TestFidelityOutputMismatchSkipped(t *testing.T) {
	eng := netsim.NewEngine()
	cpu := ksim.NewCPU(eng, 4)
	cfg := DefaultConfig()
	cfg.FlowCacheTimeout = 0
	c := New(eng, cpu, ksim.DefaultCosts(), cfg)
	base := nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Linear}, 11)
	if _, err := c.RegisterModel(buildModule(t, base, "m0")); err != nil {
		t.Fatal(err)
	}
	user := &userModel{net: base.Clone(), stability: 0.5}
	user.net.Layers[1].B[0] += 0.5 // prefix loss would exceed the threshold
	ch := netlink.New(eng, cpu, ksim.DefaultCosts(), nil)
	svc := NewSlowPath(c, ch, user, wideEvaluator{user}, user)
	r := &serviceRig{eng: eng, cpu: cpu, core: c, ch: ch, user: user, svc: svc}

	for i := 0; i < cfg.StabilityWindow+1; i++ {
		r.pushBatch(8, int64(i))
	}
	st := r.svc.Stats()
	if st.FidelityMismatches == 0 {
		t.Error("size-mismatched fidelity samples must be counted")
	}
	if st.Updates != 0 || st.SkippedByNecessity != 0 {
		t.Errorf("a batch of mismatched samples must decide nothing: %+v", st)
	}
	if st.LastFidelity != 0 {
		t.Errorf("truncated partial loss leaked into LastFidelity: %v", st.LastFidelity)
	}
	if r.svc.installing {
		t.Error("an all-mismatched check must release the install pipeline")
	}
}

// TestParseSampleCopiesPayload is the regression test for the aliasing bug:
// ParseSample returned Input/Aux slices sharing the netlink message's backing
// array, so a mutating Adapter (or injected corruption of a queued message)
// rewrote history already handed out.
func TestParseSampleCopiesPayload(t *testing.T) {
	msg := EncodeSample(Sample{Input: []float64{1, 2, 3}, Aux: []float64{4, 5}})
	orig := append([]float64(nil), msg.Data...)
	sm, err := ParseSample(msg)
	if err != nil {
		t.Fatal(err)
	}
	sm.Input[0] = 99
	sm.Aux[0] = -99
	for i, v := range msg.Data {
		if v != orig[i] {
			t.Fatalf("mutating a parsed sample changed message data[%d]: %v -> %v",
				i, orig[i], v)
		}
	}
	msg.Data[1] = 77
	if sm.Input[0] != 99 || sm.Input[1] != 2 {
		t.Error("mutating message data changed an already-parsed sample")
	}
}

// TestConvergedWindowShrink covers the correctness gate across a live config
// change: shrinking StabilityWindow must truncate the history to the new
// window, not keep judging against stale entries beyond it.
func TestConvergedWindowShrink(t *testing.T) {
	r := newServiceRig(t)
	r.core.Cfg.StabilityWindow = 4

	feed := func(v float64) bool {
		r.svc.met.lastStability.Set(v)
		return r.svc.converged()
	}
	for i := 0; i < 3; i++ {
		if feed(0.5) {
			t.Fatal("gate must not pass before the window fills")
		}
	}
	if !feed(0.5) {
		t.Fatal("four steady values must pass a window of 4")
	}

	// Shrink mid-run: the next value dominates a 2-window that still holds
	// one old 0.5, so the relative range is huge.
	r.core.Cfg.StabilityWindow = 2
	if feed(10) {
		t.Error("window shrink must not pass on a [0.5, 10] history")
	}
	if !feed(10) {
		t.Error("two steady values must pass the shrunken window of 2")
	}
	if n := len(r.svc.stabilityHist); n != 2 {
		t.Errorf("history must truncate to the new window, len = %d", n)
	}
}

// TestConvergedZeroScaleBand covers the zero-scale special case: a stability
// metric sitting exactly at zero (e.g. a loss that bottomed out) has no
// relative range to judge, and must count as converged rather than dividing
// by zero.
func TestConvergedZeroScaleBand(t *testing.T) {
	r := newServiceRig(t)
	r.core.Cfg.StabilityWindow = 3
	for i := 0; i < 2; i++ {
		r.svc.met.lastStability.Set(0)
		if r.svc.converged() {
			t.Fatal("gate must not pass before the window fills")
		}
	}
	r.svc.met.lastStability.Set(0)
	if !r.svc.converged() {
		t.Error("an all-zero stability window must converge")
	}
}

// fixedEvaluator reports a constant stability and a constant inference
// output, giving the necessity test exact control over the fidelity loss.
type fixedEvaluator struct{ out float64 }

func (f fixedEvaluator) Stability() float64           { return 0.5 }
func (f fixedEvaluator) Infer(in []float64) []float64 { return []float64{f.out} }

// TestNecessityThresholdBoundary tables the necessity decision around
// minLoss == α·(Omax−Omin) exactly. The kernel model is an all-zero network,
// whose quantized output is exactly 0.0, so minLoss equals the evaluator's
// constant |out| with no quantization noise; with the default α = 0.05 and
// output range [−1, 1] the threshold is exactly 0.1 in IEEE arithmetic.
func TestNecessityThresholdBoundary(t *testing.T) {
	threshold := 0.05 * (1.0 - (-1.0)) // exact: 0.1
	cases := []struct {
		name    string
		loss    float64
		install bool
	}{
		{"zero", 0, false},
		{"just_below", threshold - 1e-9, false},
		{"exactly_at", threshold, false}, // the gate is strict: > not >=
		{"just_above", math.Nextafter(threshold, 2), true},
		{"well_above", 0.5, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := netsim.NewEngine()
			cpu := ksim.NewCPU(eng, 4)
			cfg := DefaultConfig()
			cfg.FlowCacheTimeout = 0
			cfg.StabilityWindow = 1
			c := New(eng, cpu, ksim.DefaultCosts(), cfg)
			zero := nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Linear}, 1)
			for _, l := range zero.Layers {
				for i := range l.W {
					for j := range l.W[i] {
						l.W[i][j] = 0
					}
					l.B[i] = 0
				}
			}
			if _, err := c.RegisterModel(buildModule(t, zero, "zero")); err != nil {
				t.Fatal(err)
			}
			user := &userModel{net: zero, stability: 0.5}
			ch := netlink.New(eng, cpu, ksim.DefaultCosts(), nil)
			svc := NewSlowPath(c, ch, user, fixedEvaluator{tc.loss}, user)
			r := &serviceRig{eng: eng, cpu: cpu, core: c, ch: ch, user: user, svc: svc}
			r.pushBatch(4, 1)

			st := svc.Stats()
			wantUpdates, wantSkips := int64(0), int64(1)
			if tc.install {
				wantUpdates, wantSkips = 1, 0
			}
			if st.Updates != wantUpdates || st.SkippedByNecessity != wantSkips {
				t.Errorf("loss %v vs threshold %v: updates=%d skips=%d, want %d/%d",
					tc.loss, threshold, st.Updates, st.SkippedByNecessity, wantUpdates, wantSkips)
			}
			if st.LastFidelity != tc.loss {
				t.Errorf("LastFidelity = %v, want exact %v", st.LastFidelity, tc.loss)
			}
		})
	}
}

// TestSendToKernelAbortedByClose covers the netlink side of the install
// pipeline: a downcall in flight when the channel closes must not run its
// kernel-side completion (the contract says done never runs after Close) and
// must be counted.
func TestSendToKernelAbortedByClose(t *testing.T) {
	eng := netsim.NewEngine()
	cpu := ksim.NewCPU(eng, 4)
	ch := netlink.NewChannel(eng, cpu, ksim.DefaultCosts(), nil)
	ran := false
	if err := ch.SendToKernel(64, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	ch.Close()
	eng.Run()
	if ran {
		t.Error("done must not run when Close races the downcall")
	}
	if got := ch.Stats().DownAborted; got != 1 {
		t.Errorf("DownAborted = %d, want 1", got)
	}
}
