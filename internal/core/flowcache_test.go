package core

import (
	"math/rand"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
)

// newShardedCore returns a core with the sweeper enabled at the given
// timeout and shard count, one registered model, and no CPU accounting.
func newShardedCore(t testing.TB, timeout netsim.Time, shards int) (*netsim.Engine, *Core) {
	t.Helper()
	eng := netsim.NewEngine()
	cfg := DefaultConfig()
	cfg.FlowCacheTimeout = timeout
	cfg.FlowCacheShards = shards
	c := NewCore(eng, nil, ksim.DefaultCosts(), cfg)
	if _, err := c.RegisterModel(buildModule(t, smallNet(1), "m0")); err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func TestShardCountNormalization(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, defaultFlowCacheShards},
		{-3, defaultFlowCacheShards},
		{1, 1},
		{2, 2},
		{3, 4},
		{16, 16},
		{17, 32},
		{maxFlowCacheShards + 1, maxFlowCacheShards},
	} {
		if got := shardCount(tc.in); got != tc.want {
			t.Errorf("shardCount(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestShardingSpreadsSequentialFlows: sequential flow IDs (the simulator's
// common case) must not pile into one shard.
func TestShardingSpreadsSequentialFlows(t *testing.T) {
	_, c := newShardedCore(t, 0, 16)
	in := make([]int64, 4)
	out := make([]int64, 1)
	const n = 4096
	for f := 1; f <= n; f++ {
		if err := c.QueryModel(netsim.FlowID(f), in, out); err != nil {
			t.Fatal(err)
		}
	}
	if c.CachedFlows() != n {
		t.Fatalf("CachedFlows = %d, want %d", c.CachedFlows(), n)
	}
	if got := c.CacheShards(); got != 16 {
		t.Fatalf("CacheShards = %d, want 16", got)
	}
	// Perfectly uniform would be n/16 = 256 per shard; allow 2x skew.
	if d := c.ShardDepth(); d > 2*n/16 {
		t.Errorf("deepest shard holds %d of %d entries — hash is not spreading", d, n)
	}
}

// TestSweepEvictionBoundary pins the <= boundary fix: an entry idle for
// exactly FlowCacheTimeout is evicted by the tick at its deadline, not one
// full timeout later.
func TestSweepEvictionBoundary(t *testing.T) {
	timeout := 64 * netsim.Millisecond // tick = 1ms exactly
	eng, c := newShardedCore(t, timeout, 4)
	in := make([]int64, 4)
	out := make([]int64, 1)
	if err := c.QueryModel(7, in, out); err != nil {
		t.Fatal(err)
	}
	// One tick past the deadline the entry must be gone; the old `<` cutoff
	// kept an exactly-timeout-idle entry until the next full sweep period.
	eng.RunUntil(timeout + 2*c.fc.tick)
	if c.CachedFlows() != 0 {
		t.Errorf("entry idle for exactly the timeout still cached at deadline+2 ticks")
	}
	if st := c.Stats(); st.SweptEntries != 1 {
		t.Errorf("SweptEntries = %d, want 1", st.SweptEntries)
	}
}

// TestSweeperIdleDisarm pins the idle-rescheduling fix: a core whose cache
// was never populated schedules no sweep events at all, and once the cache
// drains the tick chain stops. Re-inserting re-arms it.
func TestSweeperIdleDisarm(t *testing.T) {
	timeout := 10 * netsim.Millisecond
	eng, c := newShardedCore(t, timeout, 4)

	// Never populated: no sweep event may be scheduled at all.
	if eng.Pending() != 0 {
		t.Fatalf("empty cache scheduled %d sweep events", eng.Pending())
	}
	eng.RunUntil(netsim.Second)
	if c.sweepArmed {
		t.Fatal("sweeper armed with an empty cache")
	}

	// Insert, expire, drain: the sweeper must disarm again.
	in := make([]int64, 4)
	out := make([]int64, 1)
	if err := c.QueryModel(1, in, out); err != nil {
		t.Fatal(err)
	}
	if !c.sweepArmed {
		t.Fatal("first insert must arm the sweeper")
	}
	eng.RunUntil(eng.Now() + 10*timeout)
	if c.CachedFlows() != 0 {
		t.Fatalf("entry not swept, CachedFlows = %d", c.CachedFlows())
	}
	if c.sweepArmed {
		t.Error("sweeper must disarm once the wheel drains")
	}
	if eng.Pending() != 0 {
		t.Errorf("disarmed sweeper left %d events scheduled", eng.Pending())
	}

	// Re-arm on the next insert and sweep again.
	if err := c.QueryModel(2, in, out); err != nil {
		t.Fatal(err)
	}
	if !c.sweepArmed {
		t.Fatal("insert after disarm must re-arm the sweeper")
	}
	eng.RunUntil(eng.Now() + 10*timeout)
	if st := c.Stats(); st.SweptEntries != 2 {
		t.Errorf("SweptEntries = %d, want 2", st.SweptEntries)
	}
}

// TestSweepRenewalKeepsHotFlows: a flow queried more often than the timeout
// must survive sweeps indefinitely (lazy renewal re-parks it).
func TestSweepRenewalKeepsHotFlows(t *testing.T) {
	timeout := 10 * netsim.Millisecond
	eng, c := newShardedCore(t, timeout, 4)
	in := make([]int64, 4)
	out := make([]int64, 1)
	step := timeout / 3
	for i := 0; i < 100; i++ {
		if err := c.QueryModel(1, in, out); err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(eng.Now() + step)
	}
	if c.CachedFlows() != 1 {
		t.Errorf("hot flow evicted: CachedFlows = %d", c.CachedFlows())
	}
	st := c.Stats()
	if st.SweptEntries != 0 {
		t.Errorf("SweptEntries = %d, want 0", st.SweptEntries)
	}
	if st.SweepScans == 0 {
		t.Error("renewal must show up as sweep scan work")
	}
	// Now go idle: the hot flow expires like any other.
	eng.RunUntil(eng.Now() + 10*timeout)
	if c.CachedFlows() != 0 {
		t.Error("idle flow must expire after its last renewal")
	}
}

// TestSweepTickScanProportional is the tentpole's scaling acceptance test:
// with ~1M cached flows, no single sweep tick may scan anything close to the
// full cache — per-tick work is bounded by the entries expiring around that
// tick, which liteflow_core_sweep_scan_total / MaxSweepTickScan make
// observable. (The old implementation walked and sorted all N entries every
// sweep period.)
func TestSweepTickScanProportional(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 200_000
	}
	timeout := 100 * netsim.Millisecond
	eng, c := newShardedCore(t, timeout, 256)
	in := make([]int64, 4)
	out := make([]int64, 1)

	// Insert n flows spread across one timeout period so deadlines land in
	// many different wheel buckets, interleaving inserts with engine time
	// (sweep ticks run while the cache fills).
	const chunks = 200
	per := n / chunks
	step := timeout / chunks
	for i := 0; i < chunks; i++ {
		for f := i*per + 1; f <= (i+1)*per; f++ {
			if err := c.QueryModel(netsim.FlowID(f), in, out); err != nil {
				t.Fatal(err)
			}
		}
		eng.RunUntil(eng.Now() + step)
	}
	peak := c.CachedFlows()
	if peak < n/2 {
		t.Fatalf("expected most of %d flows cached, have %d", n, peak)
	}

	// Let everything expire.
	eng.RunUntil(eng.Now() + 3*timeout)
	st := c.Stats()
	if c.CachedFlows() != 0 {
		t.Fatalf("CachedFlows = %d after 3 timeouts, want 0", c.CachedFlows())
	}
	if st.SweptEntries != int64(n) {
		t.Errorf("SweptEntries = %d, want %d", st.SweptEntries, n)
	}
	maxTick := c.MaxSweepTickScan()
	if maxTick == 0 {
		t.Fatal("sweeper did no work")
	}
	// With deadlines spread over ~sweepWheelSlots buckets, a tick should
	// scan ~n/64; require at least an 8x margin below the full cache to
	// fail loudly if sweeping ever regresses to a full scan.
	if maxTick > int64(peak/8) {
		t.Errorf("one sweep tick scanned %d of %d cached flows — not incremental", maxTick, peak)
	}
	// Total scan work stays linear in insertions (each entry is examined
	// O(1) times: parked once, scanned once, no renewals here).
	if st.SweepScans > 3*int64(n) {
		t.Errorf("SweepScans = %d for %d insertions — too much re-scanning", st.SweepScans, n)
	}
}

// sumRefs returns the total flow-cache reference count over every loaded
// model.
func sumRefs(c *Core) int {
	total := 0
	for _, m := range c.models {
		total += m.Refs()
	}
	return total
}

// modelLoaded reports whether m is still in the NN manager's model list.
func modelLoaded(c *Core, m *Model) bool {
	for _, x := range c.models {
		if x == m {
			return true
		}
	}
	return false
}

// TestFlowCacheRefcountInvariant drives random interleavings of lookups,
// FIN drops, snapshot installs/activations, and sweep ticks, asserting after
// every step that the sum of Model.Refs() equals CachedFlows() and that
// unloadDead never unloaded the active or standby snapshot.
func TestFlowCacheRefcountInvariant(t *testing.T) {
	timeout := 20 * netsim.Millisecond
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		eng := netsim.NewEngine()
		cfg := DefaultConfig()
		cfg.FlowCacheTimeout = timeout
		cfg.FlowCacheShards = 4
		c := NewCore(eng, nil, ksim.DefaultCosts(), cfg)

		// Seed the NN manager with a few snapshot generations up front.
		for i, name := range []string{"p0", "p1", "p2", "p3"} {
			if _, err := c.RegisterModel(buildModule(t, smallNet(int64(i+1)), name)); err != nil {
				t.Fatal(err)
			}
			if i > 0 {
				if err := c.Activate(); err != nil {
					t.Fatal(err)
				}
			}
		}

		in := make([]int64, 4)
		out := make([]int64, 1)
		check := func(step int) {
			t.Helper()
			if got, want := sumRefs(c), c.CachedFlows(); got != want {
				t.Fatalf("seed %d step %d: sum(Refs) = %d, CachedFlows = %d", seed, step, got, want)
			}
			if c.active != nil && !modelLoaded(c, c.active) {
				t.Fatalf("seed %d step %d: active snapshot was unloaded", seed, step)
			}
			if c.standby != nil && !modelLoaded(c, c.standby) {
				t.Fatalf("seed %d step %d: standby snapshot was unloaded", seed, step)
			}
		}

		installs := 0
		for step := 0; step < 3000; step++ {
			flow := netsim.FlowID(rng.Intn(200) + 1)
			switch op := rng.Intn(10); {
			case op < 5: // lookup (insert or renew)
				if err := c.QueryModel(flow, in, out); err != nil {
					t.Fatal(err)
				}
			case op < 7: // FIN
				c.FlowFinished(flow)
			case op < 9: // advance time; sweep ticks run
				eng.RunUntil(eng.Now() + netsim.Time(rng.Int63n(int64(timeout/2))))
			default: // install + activate a new snapshot
				installs++
				name := "g" + string(rune('a'+installs%26))
				if _, err := c.RegisterModel(buildModule(t, smallNet(int64(installs%7+1)), name)); err != nil {
					t.Fatal(err)
				}
				if err := c.Activate(); err != nil {
					t.Fatal(err)
				}
			}
			check(step)
		}

		// Drain: with no further activity every entry expires, refcounts
		// return to zero, and only active (and a possible standby) survive.
		eng.RunUntil(eng.Now() + 5*timeout)
		if c.CachedFlows() != 0 {
			t.Fatalf("seed %d: %d flows cached after drain", seed, c.CachedFlows())
		}
		if got := sumRefs(c); got != 0 {
			t.Fatalf("seed %d: sum(Refs) = %d after drain, want 0", seed, got)
		}
		if c.Models() > 2 {
			t.Errorf("seed %d: %d models loaded after drain, want <= 2 (active + standby)", seed, c.Models())
		}
		check(-1)
	}
}

// TestBulkDropDeterministicOrder: disabling the cache drops entries in
// ascending flow order regardless of shard layout — the eviction telemetry
// order the determinism invariant (DESIGN.md §4d) relies on.
func TestBulkDropDeterministicOrder(t *testing.T) {
	_, c := newShardedCore(t, 0, 8)
	in := make([]int64, 4)
	out := make([]int64, 1)
	flows := []netsim.FlowID{99, 3, 1024, 7, 500, 2, 77, 41}
	for _, f := range flows {
		if err := c.QueryModel(f, in, out); err != nil {
			t.Fatal(err)
		}
	}
	got := c.sortedCachedFlows()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("sortedCachedFlows not ascending: %v", got)
		}
	}
	if len(got) != len(flows) {
		t.Fatalf("sortedCachedFlows returned %d flows, want %d", len(got), len(flows))
	}
	c.SetFlowCache(false)
	if c.CachedFlows() != 0 {
		t.Errorf("CachedFlows = %d after disable", c.CachedFlows())
	}
	if c.fc.parked != 0 {
		t.Errorf("wheel still holds %d refs after bulk drop", c.fc.parked)
	}
}
