package core

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/netlink"
)

// bytesToFloats reinterprets raw fuzz bytes as the float64 payload of a
// netlink message (little-endian, trailing partial word dropped).
func bytesToFloats(raw []byte) []float64 {
	out := make([]float64, 0, len(raw)/8)
	for len(raw) >= 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(raw)))
		raw = raw[8:]
	}
	return out
}

func floatsToBytes(data []float64) []byte {
	out := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// FuzzDecodeSample hammers the kernel-boundary sample validator: no input
// may panic, DecodeSample's verdict must agree with ParseSample's error, a
// rejection must classify as ErrMalformedSample, and an accepted sample must
// re-encode to the same payload (round trip).
func FuzzDecodeSample(f *testing.F) {
	f.Add([]byte{})
	f.Add(floatsToBytes(EncodeSample(Sample{Input: []float64{1, 2}, Aux: []float64{3}}).Data))
	f.Add(floatsToBytes([]float64{0}))
	f.Add(floatsToBytes([]float64{math.NaN(), 1}))
	f.Add(floatsToBytes([]float64{-1, 1}))
	f.Add(floatsToBytes([]float64{5, 1}))
	f.Add(floatsToBytes([]float64{1.5, 1, 2}))
	f.Add(floatsToBytes([]float64{2, math.Inf(1), 0.5}))
	f.Fuzz(func(t *testing.T, raw []byte) {
		m := netlink.Message{Kind: netlink.KindSample, Data: bytesToFloats(raw), At: 1}
		s, err := ParseSample(m)
		if _, ok := DecodeSample(m); ok != (err == nil) {
			t.Fatalf("DecodeSample ok=%v disagrees with ParseSample err=%v", ok, err)
		}
		if err != nil {
			if !errors.Is(err, ErrMalformedSample) {
				t.Fatalf("rejection must wrap ErrMalformedSample, got %v", err)
			}
			return
		}
		if len(s.Input)+len(s.Aux) != len(m.Data)-1 {
			t.Fatalf("accepted sample loses data: %d+%d != %d", len(s.Input), len(s.Aux), len(m.Data)-1)
		}
		for _, v := range append(append([]float64(nil), s.Input...), s.Aux...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted sample contains non-finite value: %+v", s)
			}
		}
		s.At = m.At
		re := EncodeSample(s)
		if len(re.Data) != len(m.Data) {
			t.Fatalf("round trip length mismatch: %d != %d", len(re.Data), len(m.Data))
		}
		for i := range re.Data {
			if math.Float64bits(re.Data[i]) != math.Float64bits(m.Data[i]) {
				t.Fatalf("round trip mismatch at %d: %v != %v", i, re.Data[i], m.Data[i])
			}
		}
	})
}
