package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netlink"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/quant"
)

// buildModule quantizes net and wraps it as a generated module.
func buildModule(t testing.TB, net *nn.Network, name string) *codegen.Module {
	t.Helper()
	mod, err := codegen.Build(quant.Quantize(net, quant.DefaultConfig()), name)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func smallNet(seed int64) *nn.Network {
	return nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Tanh}, seed)
}

// newCore returns a core without CPU accounting.
func newCore(t testing.TB) (*netsim.Engine, *Core) {
	t.Helper()
	eng := netsim.NewEngine()
	cfg := DefaultConfig()
	cfg.FlowCacheTimeout = 0 // no sweeper unless a test wants it
	return eng, New(eng, nil, ksim.DefaultCosts(), cfg)
}

func TestRegisterFirstModelBecomesActive(t *testing.T) {
	_, c := newCore(t)
	m, err := c.RegisterModel(buildModule(t, smallNet(1), "m0"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Active() != m {
		t.Error("first model must be active")
	}
	if c.Models() != 1 {
		t.Errorf("Models = %d", c.Models())
	}
}

func TestRegisterValidation(t *testing.T) {
	_, c := newCore(t)
	if _, err := c.RegisterModel(nil); err == nil {
		t.Error("nil module must be rejected")
	}
	if _, err := c.RegisterModel(buildModule(t, smallNet(1), "m0")); err != nil {
		t.Fatal(err)
	}
	// Mismatched dimensions rejected.
	other := nn.New([]int{6, 4, 2}, []nn.Activation{nn.Tanh, nn.Linear}, 2)
	if _, err := c.RegisterModel(buildModule(t, other, "bad")); err == nil {
		t.Error("dimension mismatch must be rejected")
	}
}

func TestActivateSwitchesRoles(t *testing.T) {
	_, c := newCore(t)
	if err := c.Activate(); err == nil {
		t.Error("Activate without standby must error")
	}
	m0, _ := c.RegisterModel(buildModule(t, smallNet(1), "m0"))
	m1, _ := c.RegisterModel(buildModule(t, smallNet(2), "m1"))
	if c.Active() != m0 {
		t.Fatal("m0 must stay active until switch")
	}
	if err := c.Activate(); err != nil {
		t.Fatal(err)
	}
	if c.Active() != m1 {
		t.Error("m1 must be active after switch")
	}
	if c.Stats().Switches != 1 {
		t.Errorf("Switches = %d", c.Stats().Switches)
	}
	// m0 had no flow references: it must be unloaded.
	if c.Models() != 1 {
		t.Errorf("retired unreferenced model must unload; Models = %d", c.Models())
	}
}

func TestQueryModelMatchesDirectInference(t *testing.T) {
	_, c := newCore(t)
	net := smallNet(3)
	mod := buildModule(t, net, "m0")
	c.RegisterModel(mod)
	in := mod.Program.QuantizeInput([]float64{0.1, -0.5, 0.7, 0.2}, nil)
	got := make([]int64, 1)
	if err := c.QueryModel(1, in, got); err != nil {
		t.Fatal(err)
	}
	want := make([]int64, 1)
	mod.Program.Infer(in, want)
	if got[0] != want[0] {
		t.Errorf("QueryModel = %d, direct = %d", got[0], want[0])
	}
	if c.Stats().Queries != 1 {
		t.Errorf("Queries = %d", c.Stats().Queries)
	}
}

func TestQueryModelWithoutModel(t *testing.T) {
	_, c := newCore(t)
	if err := c.QueryModel(1, nil, nil); err == nil {
		t.Error("query without a model must error")
	}
}

func TestQueryChargesKernelCPU(t *testing.T) {
	eng := netsim.NewEngine()
	cpu := ksim.NewCPU(eng, 4)
	cfg := DefaultConfig()
	cfg.FlowCacheTimeout = 0
	c := New(eng, cpu, ksim.DefaultCosts(), cfg)
	mod := buildModule(t, smallNet(1), "m0")
	c.RegisterModel(mod)
	in := make([]int64, 4)
	out := make([]int64, 1)
	c.QueryModel(1, in, out)
	if cpu.BusyTime(ksim.Kernel) == 0 {
		t.Error("kernel inference must charge CPU")
	}
}

func TestFlowConsistencyAcrossSwitch(t *testing.T) {
	// The core of §3.4: a flow that started on snapshot m0 keeps using m0
	// after m1 activates; new flows use m1; FIN releases m0 for unload.
	_, c := newCore(t)
	netA, netB := smallNet(1), smallNet(99)
	modA := buildModule(t, netA, "m0")
	modB := buildModule(t, netB, "m1")
	c.RegisterModel(modA)

	in := modA.Program.QuantizeInput([]float64{0.3, 0.3, 0.3, 0.3}, nil)
	out := make([]int64, 1)

	c.QueryModel(42, in, out) // flow 42 pins m0
	wantA := make([]int64, 1)
	modA.Program.Infer(in, wantA)
	if out[0] != wantA[0] {
		t.Fatal("flow 42 must be served by m0")
	}

	c.RegisterModel(modB)
	if err := c.Activate(); err != nil {
		t.Fatal(err)
	}
	if c.Models() != 2 {
		t.Fatalf("m0 is referenced by flow 42 and must stay loaded; Models=%d", c.Models())
	}

	// Flow 42 still gets m0's answers (consistency).
	c.QueryModel(42, in, out)
	if out[0] != wantA[0] {
		t.Error("flow 42 switched snapshots mid-flow")
	}

	// A new flow gets m1.
	wantB := make([]int64, 1)
	modB.Program.Infer(in, wantB)
	c.QueryModel(43, in, out)
	if out[0] != wantB[0] {
		t.Error("new flow must be served by the new active snapshot")
	}

	// FIN on flow 42 releases the last reference: m0 unloads.
	c.FlowFinished(42)
	if c.Models() != 1 {
		t.Errorf("m0 must unload at refcount 0; Models=%d", c.Models())
	}
	if c.Stats().Unloads == 0 {
		t.Error("unload must be counted")
	}
}

func TestFlowCacheHitMissCounters(t *testing.T) {
	_, c := newCore(t)
	mod := buildModule(t, smallNet(1), "m0")
	c.RegisterModel(mod)
	in := make([]int64, 4)
	out := make([]int64, 1)
	c.QueryModel(7, in, out)
	c.QueryModel(7, in, out)
	c.QueryModel(8, in, out)
	st := c.Stats()
	if st.CacheMisses != 2 || st.CacheHits != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/2", st.CacheHits, st.CacheMisses)
	}
	if c.CachedFlows() != 2 {
		t.Errorf("CachedFlows = %d", c.CachedFlows())
	}
}

func TestFlowCacheDisabled(t *testing.T) {
	_, c := newCore(t)
	mod := buildModule(t, smallNet(1), "m0")
	c.RegisterModel(mod)
	c.SetFlowCache(false)
	in := make([]int64, 4)
	out := make([]int64, 1)
	c.QueryModel(7, in, out)
	if c.CachedFlows() != 0 {
		t.Error("disabled cache must not pin flows")
	}
	// With the cache off, flows follow the active snapshot immediately.
	modB := buildModule(t, smallNet(50), "m1")
	c.RegisterModel(modB)
	c.Activate()
	wantB := make([]int64, 1)
	modB.Program.Infer(in, wantB)
	c.QueryModel(7, in, out)
	if out[0] != wantB[0] {
		t.Error("cache-off flow must use the new active snapshot")
	}
}

func TestFlowCacheSweeper(t *testing.T) {
	eng := netsim.NewEngine()
	cfg := DefaultConfig()
	cfg.FlowCacheTimeout = 100 * netsim.Millisecond
	c := New(eng, nil, ksim.DefaultCosts(), cfg)
	c.RegisterModel(buildModule(t, smallNet(1), "m0"))
	in := make([]int64, 4)
	out := make([]int64, 1)
	c.QueryModel(5, in, out)
	if c.CachedFlows() != 1 {
		t.Fatal("flow must be cached")
	}
	eng.RunUntil(250 * netsim.Millisecond)
	if c.CachedFlows() != 0 {
		t.Error("idle entry must be swept")
	}
	if c.Stats().SweptEntries == 0 {
		t.Error("sweep must be counted")
	}
	c.StopSweeper()
}

func TestRegisterIOValidation(t *testing.T) {
	_, c := newCore(t)
	io := testIO{name: "cc", in: 4, out: 1}
	if err := c.RegisterIO(io); err == nil {
		t.Error("IO registration before any model must fail")
	}
	c.RegisterModel(buildModule(t, smallNet(1), "m0"))
	if err := c.RegisterIO(nil); err == nil {
		t.Error("nil IO must fail")
	}
	if err := c.RegisterIO(io); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterIO(io); err == nil {
		t.Error("duplicate IO must fail")
	}
	if err := c.RegisterIO(testIO{name: "bad", in: 7, out: 1}); err == nil {
		t.Error("dimension-mismatched IO must fail")
	}
	if c.IOModules() != 1 {
		t.Errorf("IOModules = %d", c.IOModules())
	}
	if err := c.UnregisterIO("cc"); err != nil {
		t.Fatal(err)
	}
	if err := c.UnregisterIO("cc"); err == nil {
		t.Error("double unregister must fail")
	}
}

type testIO struct {
	name    string
	in, out int
}

func (io testIO) Name() string    { return io.name }
func (io testIO) InputSize() int  { return io.in }
func (io testIO) OutputSize() int { return io.out }

func TestFlowBackendQuery(t *testing.T) {
	_, c := newCore(t)
	net := smallNet(1)
	mod := buildModule(t, net, "m0")
	c.RegisterModel(mod)
	b := NewFlowBackend(c, 9)
	state := []float64{0.2, -0.1, 0.4, 0.8}
	var got float64
	b.Query(state, func(a float64) { got = a })
	want := mod.Program.InferFloat(state)[0]
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("backend action = %v, snapshot = %v", got, want)
	}
	if got < -1 || got > 1 {
		t.Error("action must be clipped")
	}
	// Without a model, the backend answers neutrally.
	_, empty := newCore(t)
	b2 := NewFlowBackend(empty, 1)
	b2.Query(state, func(a float64) {
		if a != 0 {
			t.Error("no-model backend must reply 0")
		}
	})
}

func TestSampleCodec(t *testing.T) {
	s := Sample{Input: []float64{1, 2, 3}, Aux: []float64{9}, At: 77}
	m := EncodeSample(s)
	got, ok := DecodeSample(m)
	if !ok {
		t.Fatal("decode failed")
	}
	if len(got.Input) != 3 || got.Input[2] != 3 || len(got.Aux) != 1 || got.Aux[0] != 9 || got.At != 77 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	// Malformed payloads are rejected, not panics.
	for _, bad := range []netlink.Message{
		{Data: nil},
		{Data: []float64{5, 1}},  // claims 5 inputs, has 1
		{Data: []float64{-1, 1}}, // negative length
	} {
		if _, ok := DecodeSample(bad); ok {
			t.Errorf("malformed %v must not decode", bad.Data)
		}
	}
}

// userModel is a complete user implementation of the three interfaces with
// controllable stability.
type userModel struct {
	net       *nn.Network
	stability float64
	adapted   int
}

func (u *userModel) Freeze() *nn.Network          { return u.net }
func (u *userModel) Stability() float64           { return u.stability }
func (u *userModel) Infer(in []float64) []float64 { return u.net.Infer(in) }
func (u *userModel) Adapt(batch []Sample)         { u.adapted++ }

// serviceRig builds a full kernel+userspace rig around a linear-output net
// so fidelity distances are controllable.
type serviceRig struct {
	eng  *netsim.Engine
	cpu  *ksim.CPU
	core *Core
	ch   *netlink.Channel
	user *userModel
	svc  *Service
}

func newServiceRig(t *testing.T) *serviceRig {
	t.Helper()
	eng := netsim.NewEngine()
	cpu := ksim.NewCPU(eng, 4)
	cfg := DefaultConfig()
	cfg.FlowCacheTimeout = 0
	c := New(eng, cpu, ksim.DefaultCosts(), cfg)
	base := nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Linear}, 11)
	c.RegisterModel(buildModule(t, base, "m0"))
	user := &userModel{net: base.Clone(), stability: 1}
	ch := netlink.New(eng, cpu, ksim.DefaultCosts(), nil)
	svc := NewService(c, ch, user, user, user)
	return &serviceRig{eng: eng, cpu: cpu, core: c, ch: ch, user: user, svc: svc}
}

func (r *serviceRig) pushBatch(n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		in := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		r.ch.Push(EncodeSample(Sample{Input: in, At: r.eng.Now()}))
	}
	r.ch.Flush()
	r.eng.Run()
}

func TestServiceAdaptsOnEveryBatch(t *testing.T) {
	r := newServiceRig(t)
	for i := 0; i < 3; i++ {
		r.pushBatch(10, int64(i))
	}
	if r.user.adapted != 3 {
		t.Errorf("Adapter ran %d times, want 3", r.user.adapted)
	}
	st := r.svc.Stats()
	if st.Batches != 3 || st.Samples != 30 {
		t.Errorf("stats = %+v", st)
	}
}

func TestServiceCorrectnessGateBlocksUnstableModels(t *testing.T) {
	r := newServiceRig(t)
	// Shift the user model so an update WOULD be necessary…
	r.user.net.Layers[1].B[0] += 0.5
	// …but keep the stability metric oscillating wildly.
	vals := []float64{10, 1, 8, 0.5, 12, 2, 9}
	for i, v := range vals {
		r.user.stability = v
		r.pushBatch(8, int64(i))
	}
	if got := r.svc.Stats().Updates; got != 0 {
		t.Errorf("unstable adaptation must not install snapshots, got %d", got)
	}
	if r.svc.Stats().Converged != 0 {
		t.Error("oscillating stability must not pass the correctness gate")
	}
}

func TestServiceNecessityGateSkipsFaithfulSnapshots(t *testing.T) {
	r := newServiceRig(t)
	// User model identical to the kernel snapshot: fidelity ≈ quantization
	// noise ≪ α·(Omax−Omin) = 0.1.
	r.user.stability = 0.5
	for i := 0; i < 8; i++ {
		r.pushBatch(8, int64(i))
	}
	st := r.svc.Stats()
	if st.Converged == 0 || st.FidelityChecks == 0 {
		t.Fatalf("stable adaptation must reach fidelity evaluation: %+v", st)
	}
	if st.Updates != 0 {
		t.Errorf("faithful snapshot must not be replaced, got %d updates", st.Updates)
	}
	if st.SkippedByNecessity == 0 {
		t.Error("necessity skips must be counted")
	}
}

func TestServiceInstallsWhenModelDiverges(t *testing.T) {
	r := newServiceRig(t)
	// Diverge the user model: +0.5 on the linear output bias shifts every
	// output by 0.5 > threshold 0.1.
	r.user.net.Layers[1].B[0] += 0.5
	r.user.stability = 0.5
	var updated *Model
	r.svc.OnUpdate = func(m *Model) { updated = m }
	for i := 0; i < 10 && updated == nil; i++ {
		r.pushBatch(8, int64(i))
	}
	st := r.svc.Stats()
	if st.Updates == 0 || updated == nil {
		t.Fatalf("diverged model must trigger a snapshot install: %+v", st)
	}
	if r.core.Stats().Switches == 0 {
		t.Error("install must switch active/standby roles")
	}
	// The new active snapshot must now match the user model closely.
	in := []float64{0.2, 0.4, 0.6, 0.8}
	kernelOut := r.core.Active().Program().InferFloat(in)[0]
	userOut := r.user.net.Infer(in)[0]
	if math.Abs(kernelOut-userOut) > 0.02 {
		t.Errorf("post-update fidelity gap = %v", math.Abs(kernelOut-userOut))
	}
	// And further batches should now be skipped by necessity again.
	before := r.svc.Stats().Updates
	for i := 0; i < 5; i++ {
		r.pushBatch(8, int64(100+i))
	}
	if r.svc.Stats().Updates != before {
		t.Error("faithful post-update snapshot must not be replaced again")
	}
}

func TestServiceChargesCrossSpaceWork(t *testing.T) {
	r := newServiceRig(t)
	r.user.stability = 0.5
	before := r.cpu.BusyTime(ksim.SoftIRQ)
	for i := 0; i < 8; i++ {
		r.pushBatch(8, int64(i))
	}
	if r.cpu.BusyTime(ksim.SoftIRQ) <= before {
		t.Error("slow path must cost softirq time for flushes and fidelity queries")
	}
}

func BenchmarkQueryModel(b *testing.B) {
	eng := netsim.NewEngine()
	cfg := DefaultConfig()
	cfg.FlowCacheTimeout = 0
	c := New(eng, nil, ksim.DefaultCosts(), cfg)
	net := nn.New([]int{30, 32, 16, 1}, []nn.Activation{nn.Tanh, nn.Tanh, nn.Tanh}, 1)
	mod, err := codegen.Build(quant.Quantize(net, quant.DefaultConfig()), "aurora")
	if err != nil {
		b.Fatal(err)
	}
	c.RegisterModel(mod)
	in := make([]int64, 30)
	out := make([]int64, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.QueryModel(1, in, out); err != nil {
			b.Fatal(err)
		}
	}
}
