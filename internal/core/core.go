// Package core implements LiteFlow itself (paper §3–§4): the kernel-space
// core module — NN manager, inference router with active/standby snapshot
// switching and a flow-consistency cache, and the collector/enforcer (IO
// module) registry — plus the userspace service that drives the slow path:
// batched online adaptation, convergence ("correctness") detection, fidelity
// ("necessity") evaluation, and conservative snapshot installation.
//
// The paper's Table 1 API maps onto this package as:
//
//	lf_register_model → (*Core).RegisterModel
//	lf_register_io    → (*Core).RegisterIO
//	lf_unregister_io  → (*Core).UnregisterIO
//	lf_query_model    → (*Core).QueryModel
package core

import (
	"errors"
	"fmt"

	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/quant"
)

// Model is an installed NN snapshot: a generated module plus its runtime
// state in the NN manager (reference count from the flow cache, role flags).
type Model struct {
	Name    string
	Module  *codegen.Module
	prog    *quant.Program
	refs    int
	retired bool // replaced as active; unloadable once refs == 0
}

// InputSize returns the snapshot's input dimension.
func (m *Model) InputSize() int { return m.prog.InputSize() }

// OutputSize returns the snapshot's output dimension.
func (m *Model) OutputSize() int { return m.prog.OutputSize() }

// Program exposes the executable snapshot (integer-only inference).
func (m *Model) Program() *quant.Program { return m.prog }

// Refs returns the flow-cache reference count.
func (m *Model) Refs() int { return m.refs }

// IOModule describes a user-provided input collector & output enforcer
// (paper §4.2): the kernel-side glue between a datapath function and the NN.
// RegisterIO validates its declared dimensions against the installed model.
type IOModule interface {
	Name() string
	InputSize() int
	OutputSize() int
}

// Config tunes the framework's update policy.
type Config struct {
	// Alpha scales the necessity threshold: update only when the minimal
	// fidelity loss exceeds Alpha·(Omax−Omin). Paper value: 5%.
	Alpha float64
	// OutMin/OutMax are the model's output range (Omax, Omin in the
	// paper; for Aurora these are −1 and 1).
	OutMin, OutMax float64
	// StabilityWindow is how many consecutive batches the stability
	// metric must stay within StabilityTolerance (relative range) before
	// online adaptation counts as converged — the correctness gate.
	StabilityWindow    int
	StabilityTolerance float64
	// FlowCacheTimeout evicts idle flow-cache entries. Zero disables the
	// sweeper.
	FlowCacheTimeout netsim.Time
	// Quant configures snapshot generation.
	Quant quant.Config
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		Alpha:              0.05,
		OutMin:             -1,
		OutMax:             1,
		StabilityWindow:    5,
		StabilityTolerance: 0.15,
		FlowCacheTimeout:   10 * netsim.Second,
		Quant:              quant.DefaultConfig(),
	}
}

// Stats counts core-module activity.
type Stats struct {
	Queries        int64
	CacheHits      int64
	CacheMisses    int64
	Switches       int64
	Installs       int64
	Unloads        int64
	SweptEntries   int64
	BlockedQueries int64
}

// Core is the kernel-space LiteFlow core module.
type Core struct {
	Eng   *netsim.Engine
	CPU   *ksim.CPU // optional CPU accounting
	Costs ksim.Costs
	Cfg   Config

	// NN manager state.
	models []*Model

	// Inference router state (paper §3.4). The paper guards the role swap
	// with a spin lock held for three lines; the simulator is single-
	// threaded, so the swap is a plain pointer assignment with the same
	// semantics.
	active  *Model
	standby *Model

	// Flow cache: flow ID → snapshot pinned for that flow.
	cacheEnabled bool
	cache        map[netsim.FlowID]*cacheEntry

	ios map[string]IOModule

	// lockedUntil models the naive blocking-install alternative (§3.4):
	// while set in the future, fast-path queries stall until release.
	lockedUntil netsim.Time

	stats    Stats
	sweeping bool
}

type cacheEntry struct {
	model    *Model
	lastUsed netsim.Time
}

// New returns a core module bound to eng. cpu may be nil to disable CPU
// accounting (pure-algorithm tests).
func New(eng *netsim.Engine, cpu *ksim.CPU, costs ksim.Costs, cfg Config) *Core {
	c := &Core{
		Eng: eng, CPU: cpu, Costs: costs, Cfg: cfg,
		cacheEnabled: true,
		cache:        make(map[netsim.FlowID]*cacheEntry),
		ios:          make(map[string]IOModule),
	}
	if cfg.FlowCacheTimeout > 0 {
		c.sweeping = true
		c.scheduleSweep()
	}
	return c
}

// SetFlowCache enables or disables flow-consistency caching (the paper lets
// users disable it for functions that do not need it, e.g. per-packet load
// balancing decisions).
func (c *Core) SetFlowCache(enabled bool) {
	c.cacheEnabled = enabled
	if !enabled {
		for f := range c.cache {
			c.dropEntry(f)
		}
	}
}

// Stats returns a snapshot of the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// Models returns the number of loaded snapshot modules.
func (c *Core) Models() int { return len(c.models) }

// Active returns the active snapshot, or nil before the first registration.
func (c *Core) Active() *Model { return c.active }

// RegisterModel is lf_register_model: it loads a generated module into the
// NN manager. The first registered model becomes active immediately; later
// registrations become the standby snapshot, awaiting Activate.
func (c *Core) RegisterModel(mod *codegen.Module) (*Model, error) {
	if mod == nil || mod.Program == nil {
		return nil, errors.New("core: nil module")
	}
	if c.active != nil {
		if mod.Program.InputSize() != c.active.InputSize() ||
			mod.Program.OutputSize() != c.active.OutputSize() {
			return nil, fmt.Errorf("core: module %q dims %dx%d do not match active %dx%d",
				mod.Name, mod.Program.InputSize(), mod.Program.OutputSize(),
				c.active.InputSize(), c.active.OutputSize())
		}
	}
	m := &Model{Name: mod.Name, Module: mod, prog: mod.Program}
	c.models = append(c.models, m)
	c.stats.Installs++
	if c.active == nil {
		c.active = m
	} else {
		// Replacing an un-activated standby retires it immediately.
		if c.standby != nil {
			c.standby.retired = true
		}
		c.standby = m
	}
	c.unloadDead()
	return m, nil
}

// Activate is the inference router's role switch: the standby snapshot
// becomes active. Existing cached flows keep their pinned snapshot (flow
// consistency); new flows use the new active. It returns an error when no
// standby is installed.
func (c *Core) Activate() error {
	if c.standby == nil {
		return errors.New("core: no standby snapshot to activate")
	}
	old := c.active
	c.active = c.standby
	c.standby = nil
	if old != nil {
		old.retired = true
	}
	c.stats.Switches++
	c.unloadDead()
	return nil
}

// InstallBlocking replaces the active snapshot the naive way the paper warns
// against (§3.4): one lock held across the entire parameter transfer and
// module initialization, stalling every fast-path query for installTime.
// It exists as the measurable baseline for the active-standby-switch
// ablation; production code should use RegisterModel + Activate, whose
// role switch costs a pointer swap.
func (c *Core) InstallBlocking(mod *codegen.Module, installTime netsim.Time) error {
	if _, err := c.RegisterModel(mod); err != nil {
		return err
	}
	if err := c.Activate(); err != nil {
		return err
	}
	if c.CPU != nil {
		c.CPU.Charge(ksim.Kernel, installTime)
	}
	until := c.Eng.Now() + installTime
	if until > c.lockedUntil {
		c.lockedUntil = until
	}
	return nil
}

// LockRemaining returns how long fast-path queries remain stalled by a
// blocking install (0 when unlocked).
func (c *Core) LockRemaining() netsim.Time {
	if rem := c.lockedUntil - c.Eng.Now(); rem > 0 {
		return rem
	}
	return 0
}

// RegisterIO is lf_register_io: it attaches an input collector & output
// enforcer module after validating its declared NN dimensions against the
// installed model (paper §4.2).
func (c *Core) RegisterIO(io IOModule) error {
	if io == nil {
		return errors.New("core: nil IO module")
	}
	if _, dup := c.ios[io.Name()]; dup {
		return fmt.Errorf("core: IO module %q already registered", io.Name())
	}
	if c.active == nil {
		return errors.New("core: no model installed")
	}
	if io.InputSize() != c.active.InputSize() || io.OutputSize() != c.active.OutputSize() {
		return fmt.Errorf("core: IO module %q requires %dx%d, model is %dx%d",
			io.Name(), io.InputSize(), io.OutputSize(),
			c.active.InputSize(), c.active.OutputSize())
	}
	c.ios[io.Name()] = io
	return nil
}

// UnregisterIO is lf_unregister_io.
func (c *Core) UnregisterIO(name string) error {
	if _, ok := c.ios[name]; !ok {
		return fmt.Errorf("core: IO module %q not registered", name)
	}
	delete(c.ios, name)
	return nil
}

// IOModules returns the number of registered IO modules.
func (c *Core) IOModules() int { return len(c.ios) }

// QueryModel is lf_query_model, the unified inference interface: it resolves
// the snapshot for the flow through the router (honoring the flow cache),
// charges the kernel inference cost, and runs integer inference in to out.
func (c *Core) QueryModel(flow netsim.FlowID, in, out []int64) error {
	m := c.lookup(flow)
	if m == nil {
		return errors.New("core: no model installed")
	}
	c.stats.Queries++
	if c.CPU != nil {
		c.CPU.Charge(ksim.Kernel, ksim.InferCost(c.Costs.KernelInferPerMAC, m.prog.MACs()))
	}
	m.prog.Infer(in, out)
	return nil
}

// lookup resolves the model serving a flow, maintaining the flow cache and
// reference counts (paper §3.4).
func (c *Core) lookup(flow netsim.FlowID) *Model {
	if !c.cacheEnabled {
		return c.active
	}
	if e, ok := c.cache[flow]; ok {
		c.stats.CacheHits++
		e.lastUsed = c.Eng.Now()
		return e.model
	}
	if c.active == nil {
		return nil
	}
	c.stats.CacheMisses++
	c.active.refs++
	c.cache[flow] = &cacheEntry{model: c.active, lastUsed: c.Eng.Now()}
	return c.active
}

// FlowFinished removes a flow's cache entry (TCP FIN handling).
func (c *Core) FlowFinished(flow netsim.FlowID) {
	c.dropEntry(flow)
}

func (c *Core) dropEntry(flow netsim.FlowID) {
	e, ok := c.cache[flow]
	if !ok {
		return
	}
	delete(c.cache, flow)
	e.model.refs--
	c.unloadDead()
}

// CachedFlows returns the number of live flow-cache entries.
func (c *Core) CachedFlows() int { return len(c.cache) }

// unloadDead removes retired models whose reference count reached zero — the
// paper's rule that a NN module can be removed only at refcount 0.
func (c *Core) unloadDead() {
	kept := c.models[:0]
	for _, m := range c.models {
		if m.retired && m.refs <= 0 && m != c.active && m != c.standby {
			c.stats.Unloads++
			continue
		}
		kept = append(kept, m)
	}
	c.models = kept
}

func (c *Core) scheduleSweep() {
	c.Eng.After(c.Cfg.FlowCacheTimeout, func() {
		if !c.sweeping {
			return
		}
		cutoff := c.Eng.Now() - c.Cfg.FlowCacheTimeout
		for f, e := range c.cache {
			if e.lastUsed < cutoff {
				c.dropEntry(f)
				c.stats.SweptEntries++
			}
		}
		c.scheduleSweep()
	})
}

// StopSweeper halts the idle-entry sweeper (experiment teardown).
func (c *Core) StopSweeper() { c.sweeping = false }

// FlowBackend adapts the core to the cc.Backend interface for one flow:
// queries run through lf_query_model against the flow's pinned snapshot,
// synchronously, at kernel inference cost — the LiteFlow fast path.
type FlowBackend struct {
	Core *Core
	Flow netsim.FlowID

	in  []int64
	out []int64
}

// NewFlowBackend returns a fast-path inference backend for the given flow.
func NewFlowBackend(c *Core, flow netsim.FlowID) *FlowBackend {
	return &FlowBackend{Core: c, Flow: flow}
}

// Query implements the cc.Backend contract (structurally; cc is not
// imported): quantize, infer through the router, dequantize, reply inline.
// While a blocking install holds the router lock, the query stalls until
// release — the datapath interference the active-standby design eliminates.
func (b *FlowBackend) Query(state []float64, reply func(action float64)) {
	if rem := b.Core.LockRemaining(); rem > 0 {
		b.Core.stats.BlockedQueries++
		b.Core.Eng.After(rem, func() { b.Query(state, reply) })
		return
	}
	m := b.Core.lookup(b.Flow)
	if m == nil {
		reply(0)
		return
	}
	if cap(b.in) < len(state) {
		b.in = make([]int64, len(state))
		b.out = make([]int64, m.OutputSize())
	}
	b.in = b.in[:len(state)]
	prog := m.prog
	for i, x := range state {
		b.in[i] = int64(x * float64(prog.InputScale))
	}
	b.Core.stats.Queries++
	if b.Core.CPU != nil {
		b.Core.CPU.Charge(ksim.Kernel, ksim.InferCost(b.Core.Costs.KernelInferPerMAC, prog.MACs()))
	}
	prog.Infer(b.in, b.out[:prog.OutputSize()])
	a := float64(b.out[0]) / float64(prog.OutputScale)
	if a > 1 {
		a = 1
	}
	if a < -1 {
		a = -1
	}
	reply(a)
}
