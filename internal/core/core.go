// Package core implements LiteFlow itself (paper §3–§4): the kernel-space
// core module — NN manager, inference router with active/standby snapshot
// switching and a flow-consistency cache, and the collector/enforcer (IO
// module) registry — plus the userspace service that drives the slow path:
// batched online adaptation, convergence ("correctness") detection, fidelity
// ("necessity") evaluation, and conservative snapshot installation.
//
// The paper's Table 1 API maps onto this package as:
//
//	lf_register_model → (*Core).RegisterModel
//	lf_register_io    → (*Core).RegisterIO
//	lf_unregister_io  → (*Core).UnregisterIO
//	lf_query_model    → (*Core).QueryModel
package core

import (
	"fmt"

	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/obs"
	"github.com/liteflow-sim/liteflow/internal/opt"
	"github.com/liteflow-sim/liteflow/internal/quant"
)

// Model is an installed NN snapshot: a generated module plus its runtime
// state in the NN manager (reference count from the flow cache, role flags).
type Model struct {
	Name    string
	Module  *codegen.Module
	prog    *quant.Program
	refs    int
	retired bool // replaced as active; unloadable once refs == 0
}

// InputSize returns the snapshot's input dimension.
func (m *Model) InputSize() int { return m.prog.InputSize() }

// OutputSize returns the snapshot's output dimension.
func (m *Model) OutputSize() int { return m.prog.OutputSize() }

// Program exposes the executable snapshot (integer-only inference).
func (m *Model) Program() *quant.Program { return m.prog }

// Refs returns the flow-cache reference count.
func (m *Model) Refs() int { return m.refs }

// IOModule describes a user-provided input collector & output enforcer
// (paper §4.2): the kernel-side glue between a datapath function and the NN.
// RegisterIO validates its declared dimensions against the installed model.
type IOModule interface {
	Name() string
	InputSize() int
	OutputSize() int
}

// Config tunes the framework's update policy.
type Config struct {
	// Alpha scales the necessity threshold: update only when the minimal
	// fidelity loss exceeds Alpha·(Omax−Omin). Paper value: 5%.
	Alpha float64
	// OutMin/OutMax are the model's output range (Omax, Omin in the
	// paper; for Aurora these are −1 and 1).
	OutMin, OutMax float64
	// StabilityWindow is how many consecutive batches the stability
	// metric must stay within StabilityTolerance (relative range) before
	// online adaptation counts as converged — the correctness gate.
	StabilityWindow    int
	StabilityTolerance float64
	// FlowCacheTimeout evicts idle flow-cache entries. Zero disables the
	// sweeper. Expiry runs on a hashed timing wheel of sweepWheelSlots
	// ticks, so an idle entry is evicted within one tick
	// (FlowCacheTimeout/64) after its deadline and each tick's work is
	// proportional to the entries expiring, not to the cache size.
	FlowCacheTimeout netsim.Time
	// FlowCacheShards is the flow-cache shard count, rounded up to a power
	// of two (0 = 16). More shards bound per-map depth when caching
	// hundreds of thousands of concurrent flows; see
	// liteflow_core_shard_depth.
	FlowCacheShards int
	// Quant configures snapshot generation.
	Quant quant.Config
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		Alpha:              0.05,
		OutMin:             -1,
		OutMax:             1,
		StabilityWindow:    5,
		StabilityTolerance: 0.15,
		FlowCacheTimeout:   10 * netsim.Second,
		Quant:              quant.DefaultConfig(),
	}
}

// Stats counts core-module activity. It is a snapshot view over the core's
// registry-backed counters (see coreMetrics).
type Stats struct {
	Queries        int64
	CacheHits      int64
	CacheMisses    int64
	Switches       int64
	Installs       int64
	Unloads        int64
	SweptEntries   int64
	SweepScans     int64 // flow-cache entries examined by sweep ticks
	BlockedQueries int64
	Degraded       int64 // watchdog degradations to the last-good snapshot
	Recovered      int64 // recoveries after the slow path came back
}

// coreMetrics holds the core's registry-backed instruments. With a no-op
// scope the instruments are live but unregistered, so the Stats view keeps
// returning exact counts at zero export cost.
type coreMetrics struct {
	queries     *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	switches    *obs.Counter
	installs    *obs.Counter
	unloads     *obs.Counter
	swept       *obs.Counter
	sweepScans  *obs.Counter
	shardDepth  *obs.Gauge
	blocked     *obs.Counter
	degraded    *obs.Counter
	recovered   *obs.Counter
	stallNS     *obs.Histogram
	queryNS     *obs.Histogram
}

func newCoreMetrics(sc obs.Scope) coreMetrics {
	return coreMetrics{
		queries:     sc.Counter("liteflow_core_queries_total", "lf_query_model invocations"),
		cacheHits:   sc.Counter("liteflow_core_flow_cache_hits_total", "flow-cache lookups served by a pinned snapshot"),
		cacheMisses: sc.Counter("liteflow_core_flow_cache_misses_total", "flow-cache lookups that pinned the active snapshot"),
		switches:    sc.Counter("liteflow_core_snapshot_switches_total", "active/standby role switches"),
		installs:    sc.Counter("liteflow_core_snapshot_installs_total", "snapshot modules loaded into the NN manager"),
		unloads:     sc.Counter("liteflow_core_snapshot_unloads_total", "retired snapshots removed at refcount 0"),
		swept:       sc.Counter("liteflow_core_flow_cache_swept_total", "idle flow-cache entries evicted by the sweeper"),
		sweepScans:  sc.Counter("liteflow_core_sweep_scan_total", "flow-cache entries examined by sweep ticks (incremental eviction work)"),
		shardDepth:  sc.Gauge("liteflow_core_shard_depth", "entries in the deepest flow-cache shard"),
		blocked:     sc.Counter("liteflow_core_blocked_queries_total", "distinct fast-path queries stalled by a blocking install"),
		degraded:    sc.Counter("liteflow_core_degraded_total", "watchdog degradations to the last-good snapshot after slow-path silence"),
		recovered:   sc.Counter("liteflow_core_recovered_total", "recoveries from degraded mode after the slow path resumed"),
		stallNS:     sc.Histogram("liteflow_core_stall_ns", "per-query stall caused by blocking installs", obs.DurationBuckets()),
		queryNS:     sc.Histogram("liteflow_query_ns", "modeled kernel fast-path cost of one lf_query_model inference", obs.QueryBuckets()),
	}
}

// Core is the kernel-space LiteFlow core module.
type Core struct {
	Eng   *netsim.Engine
	CPU   *ksim.CPU // optional CPU accounting
	Costs ksim.Costs
	Cfg   Config

	// NN manager state.
	models []*Model

	// Inference router state (paper §3.4). The paper guards the role swap
	// with a spin lock held for three lines; the simulator is single-
	// threaded, so the swap is a plain pointer assignment with the same
	// semantics.
	active  *Model
	standby *Model

	// Flow cache: flow ID → snapshot pinned for that flow, sharded with an
	// expiry timing wheel (flowcache.go).
	cacheEnabled bool
	fc           *flowCache

	ios map[string]IOModule

	// lockedUntil models the naive blocking-install alternative (§3.4):
	// while set in the future, fast-path queries stall until release.
	lockedUntil netsim.Time

	sc  obs.Scope
	met coreMetrics

	// Sweeper lifecycle: sweeping is the configuration switch (timeout > 0
	// and StopSweeper not called); sweepArmed is whether a tick is actually
	// scheduled. The sweeper arms on the first cache insert and disarms when
	// the wheel drains, so an idle core schedules no events at all.
	// sweepGen invalidates ticks already queued in the engine when the
	// sweeper is force-disarmed (bulk drop) and later re-armed.
	sweeping    bool
	sweepArmed  bool
	sweepGen    uint64
	maxTickScan int64

	// arena is the core's private inference scratch (paper: per-core
	// execution state so snapshots stay immutable and shareable). It grows
	// when a wider model is installed and is reused by every query, so the
	// steady-state fast path performs zero heap allocations.
	arena quant.Arena
	// flowScratch backs sortedCachedFlows so bulk drops and sweeps do not
	// allocate per tick.
	flowScratch []netsim.FlowID

	// Slow-path watchdog state (see NewCore's opt.WithWatchdog): when armed
	// and the service stays silent past wd.Window, the core degrades to the
	// last-good snapshot rather than waiting on a stalled slow path forever.
	wd           opt.Watchdog
	wdEnabled    bool
	wdRunning    bool
	lastAlive    netsim.Time
	degraded     bool
	degradeStart netsim.Time
}

// NewCore returns a core module bound to eng. cpu may be nil to disable CPU
// accounting (pure-algorithm tests). Options: opt.WithScope exports the
// core's counters to a metrics registry and its datapath events to a tracer
// (omitted, telemetry is a no-op but the Stats view still counts);
// opt.WithWatchdog enables graceful degradation when the slow path stalls —
// the watchdog arms once a Service attaches.
func NewCore(eng *netsim.Engine, cpu *ksim.CPU, costs ksim.Costs, cfg Config, options ...opt.Option) *Core {
	o := opt.Resolve(options)
	c := &Core{
		Eng: eng, CPU: cpu, Costs: costs, Cfg: cfg,
		cacheEnabled: true,
		fc:           newFlowCache(cfg.FlowCacheShards, cfg.FlowCacheTimeout),
		ios:          make(map[string]IOModule),
		sc:           o.Scope,
	}
	c.met = newCoreMetrics(c.sc)
	if o.Watchdog != nil {
		c.wd = *o.Watchdog
		c.wdEnabled = true
	}
	// The sweeper arms lazily on the first cache insert (armSweeper), so a
	// core whose cache is never populated schedules no sweep events.
	c.sweeping = cfg.FlowCacheTimeout > 0
	return c
}

// New is the pre-options constructor.
//
// Deprecated: use NewCore, which takes functional options (opt.WithScope,
// opt.WithWatchdog).
func New(eng *netsim.Engine, cpu *ksim.CPU, costs ksim.Costs, cfg Config, sc ...obs.Scope) *Core {
	var scope obs.Scope
	if len(sc) > 0 {
		scope = sc[0]
	}
	return NewCore(eng, cpu, costs, cfg, opt.WithScope(scope))
}

// Obs returns the core's instrumentation scope (the no-op scope when none
// was supplied to New).
func (c *Core) Obs() obs.Scope { return c.sc }

// SetFlowCache enables or disables flow-consistency caching (the paper lets
// users disable it for functions that do not need it, e.g. per-packet load
// balancing decisions).
func (c *Core) SetFlowCache(enabled bool) {
	c.cacheEnabled = enabled
	if !enabled {
		for _, f := range c.sortedCachedFlows() {
			c.dropEntry(f)
		}
		// Every wheel reference is now stale; discard them and cancel any
		// queued tick instead of letting the sweeper drain them one by one.
		c.fc.resetWheel()
		c.disarmSweeper()
	}
}

// sortedCachedFlows returns the cached flow IDs in ascending order (see
// flowCache.appendSortedFlows for why bulk drops must not depend on map
// iteration order). The returned slice aliases a core-owned scratch buffer,
// valid until the next call.
func (c *Core) sortedCachedFlows() []netsim.FlowID {
	c.flowScratch = c.fc.appendSortedFlows(c.flowScratch[:0])
	return c.flowScratch
}

// Stats returns a snapshot of the core's counters.
func (c *Core) Stats() Stats {
	return Stats{
		Queries:        c.met.queries.Value(),
		CacheHits:      c.met.cacheHits.Value(),
		CacheMisses:    c.met.cacheMisses.Value(),
		Switches:       c.met.switches.Value(),
		Installs:       c.met.installs.Value(),
		Unloads:        c.met.unloads.Value(),
		SweptEntries:   c.met.swept.Value(),
		SweepScans:     c.met.sweepScans.Value(),
		BlockedQueries: c.met.blocked.Value(),
		Degraded:       c.met.degraded.Value(),
		Recovered:      c.met.recovered.Value(),
	}
}

// Models returns the number of loaded snapshot modules.
func (c *Core) Models() int { return len(c.models) }

// Active returns the active snapshot, or nil before the first registration.
func (c *Core) Active() *Model { return c.active }

// RegisterModel is lf_register_model: it loads a generated module into the
// NN manager. The first registered model becomes active immediately; later
// registrations become the standby snapshot, awaiting Activate.
func (c *Core) RegisterModel(mod *codegen.Module) (*Model, error) {
	if mod == nil || mod.Program == nil {
		return nil, ErrNilModule
	}
	if c.active != nil {
		if mod.Program.InputSize() != c.active.InputSize() ||
			mod.Program.OutputSize() != c.active.OutputSize() {
			return nil, fmt.Errorf("%w: module %q dims %dx%d do not match active %dx%d",
				ErrDimensionMismatch,
				mod.Name, mod.Program.InputSize(), mod.Program.OutputSize(),
				c.active.InputSize(), c.active.OutputSize())
		}
	}
	m := &Model{Name: mod.Name, Module: mod, prog: mod.Program}
	c.models = append(c.models, m)
	c.met.installs.Inc()
	c.sc.EventStr("snapshot", "install", c.Eng.Now(), "model", mod.Name)
	if c.active == nil {
		c.active = m
	} else {
		// Replacing an un-activated standby retires it immediately.
		if c.standby != nil {
			c.standby.retired = true
		}
		c.standby = m
	}
	c.unloadDead()
	return m, nil
}

// Activate is the inference router's role switch: the standby snapshot
// becomes active. Existing cached flows keep their pinned snapshot (flow
// consistency); new flows use the new active. It returns ErrNoStandby when
// no standby is installed, and ErrDegraded while the watchdog has the core
// pinned to its last-good snapshot — a stalled service's queued netlink
// messages may still arrive and attempt an install, but a half-delivered
// update must never be activated. The rejected standby stays registered and
// can be activated after recovery (NoteSlowPathAlive).
func (c *Core) Activate() error {
	if c.degraded {
		return ErrDegraded
	}
	if c.standby == nil {
		return ErrNoStandby
	}
	old := c.active
	c.active = c.standby
	c.standby = nil
	if old != nil {
		old.retired = true
	}
	c.met.switches.Inc()
	c.sc.EventStr("snapshot", "activate", c.Eng.Now(), "model", c.active.Name)
	c.unloadDead()
	return nil
}

// InstallBlocking replaces the active snapshot the naive way the paper warns
// against (§3.4): one lock held across the entire parameter transfer and
// module initialization, stalling every fast-path query for installTime.
// It exists as the measurable baseline for the active-standby-switch
// ablation; production code should use RegisterModel + Activate, whose
// role switch costs a pointer swap.
func (c *Core) InstallBlocking(mod *codegen.Module, installTime netsim.Time) error {
	if _, err := c.RegisterModel(mod); err != nil {
		return err
	}
	if err := c.Activate(); err != nil {
		return err
	}
	if c.CPU != nil {
		c.CPU.Charge(ksim.Kernel, installTime)
	}
	until := c.Eng.Now() + installTime
	if until > c.lockedUntil {
		c.lockedUntil = until
	}
	c.sc.Span("snapshot", "blocking_install", c.Eng.Now(), installTime)
	return nil
}

// LockRemaining returns how long fast-path queries remain stalled by a
// blocking install (0 when unlocked).
func (c *Core) LockRemaining() netsim.Time {
	if rem := c.lockedUntil - c.Eng.Now(); rem > 0 {
		return rem
	}
	return 0
}

// RegisterIO is lf_register_io: it attaches an input collector & output
// enforcer module after validating its declared NN dimensions against the
// installed model (paper §4.2).
func (c *Core) RegisterIO(io IOModule) error {
	if io == nil {
		return fmt.Errorf("core: nil IO module")
	}
	if _, dup := c.ios[io.Name()]; dup {
		return fmt.Errorf("core: IO module %q already registered", io.Name())
	}
	if c.active == nil {
		return ErrNoModel
	}
	if io.InputSize() != c.active.InputSize() || io.OutputSize() != c.active.OutputSize() {
		return fmt.Errorf("%w: IO module %q requires %dx%d, model is %dx%d",
			ErrDimensionMismatch,
			io.Name(), io.InputSize(), io.OutputSize(),
			c.active.InputSize(), c.active.OutputSize())
	}
	c.ios[io.Name()] = io
	return nil
}

// UnregisterIO is lf_unregister_io.
func (c *Core) UnregisterIO(name string) error {
	if _, ok := c.ios[name]; !ok {
		return fmt.Errorf("core: IO module %q not registered", name)
	}
	delete(c.ios, name)
	return nil
}

// IOModules returns the number of registered IO modules.
func (c *Core) IOModules() int { return len(c.ios) }

// QueryModel is lf_query_model, the unified inference interface: it resolves
// the snapshot for the flow through the router (honoring the flow cache),
// charges the kernel inference cost, and runs integer inference in to out.
// Steady-state queries (flow already cached) perform zero heap allocations.
func (c *Core) QueryModel(flow netsim.FlowID, in, out []int64) error {
	m := c.lookup(flow)
	if m == nil {
		return ErrNoModel
	}
	c.met.queries.Inc()
	cost := ksim.InferCost(c.Costs.KernelInferPerMAC, m.prog.MACs())
	c.met.queryNS.Observe(float64(cost))
	if c.CPU != nil {
		c.CPU.Charge(ksim.Kernel, cost)
	}
	m.prog.InferWith(&c.arena, in, out)
	return nil
}

// QueryModelBatch runs n inferences against the flow's pinned snapshot in one
// router transaction: one flow-cache lookup, one CPU charge of n×InferCost,
// and densely packed rows (in stride InputSize, out stride OutputSize).
// Results are identical to n QueryModel calls; the batch form exists for
// datapath functions that score many candidates per decision — per-packet
// load balancing over k paths, flow-scheduling sweeps — where per-query
// router overhead would dominate. Zero heap allocations in steady state.
func (c *Core) QueryModelBatch(flow netsim.FlowID, in, out []int64, n int) error {
	if n < 0 {
		return fmt.Errorf("core: negative batch size %d", n)
	}
	m := c.lookup(flow)
	if m == nil {
		return ErrNoModel
	}
	if n == 0 {
		return nil
	}
	c.met.queries.Add(int64(n))
	cost := ksim.InferCost(c.Costs.KernelInferPerMAC, m.prog.MACs())
	c.met.queryNS.ObserveN(float64(cost), int64(n))
	if c.CPU != nil {
		c.CPU.Charge(ksim.Kernel, netsim.Time(n)*cost)
	}
	m.prog.InferBatch(&c.arena, in, out, n)
	return nil
}

// lookup resolves the model serving a flow, maintaining the flow cache and
// reference counts (paper §3.4).
func (c *Core) lookup(flow netsim.FlowID) *Model {
	if !c.cacheEnabled {
		return c.active
	}
	if e := c.fc.get(flow); e != nil {
		c.met.cacheHits.Inc()
		c.sc.Event1("flowcache", "hit", c.Eng.Now(), "flow", int64(flow))
		// Lazy renewal: only the timestamp moves. The entry's wheel
		// reference stays parked and is re-parked when its bucket comes
		// due, keeping the hit path at zero allocations.
		e.lastUsed = c.Eng.Now()
		return e.model
	}
	if c.active == nil {
		return nil
	}
	c.met.cacheMisses.Inc()
	c.sc.Event1("flowcache", "miss", c.Eng.Now(), "flow", int64(flow))
	c.active.refs++
	d := c.fc.insert(flow, &cacheEntry{model: c.active, lastUsed: c.Eng.Now()})
	if float64(d) > c.met.shardDepth.Value() {
		c.met.shardDepth.Set(float64(d))
	}
	c.armSweeper()
	return c.active
}

// FlowFinished removes a flow's cache entry (TCP FIN handling).
func (c *Core) FlowFinished(flow netsim.FlowID) {
	c.dropEntry(flow)
}

func (c *Core) dropEntry(flow netsim.FlowID) {
	e, ok := c.fc.remove(flow)
	if !ok {
		return
	}
	e.model.refs--
	c.sc.Event1("flowcache", "evict", c.Eng.Now(), "flow", int64(flow))
	c.unloadDead()
}

// CachedFlows returns the number of live flow-cache entries.
func (c *Core) CachedFlows() int { return c.fc.count }

// CacheShards returns the flow cache's shard count.
func (c *Core) CacheShards() int { return len(c.fc.shards) }

// ShardDepth returns the current depth of the deepest flow-cache shard.
func (c *Core) ShardDepth() int { return c.fc.deepest() }

// MaxSweepTickScan returns the largest number of wheel references any single
// sweep tick has examined — the per-tick work bound the incremental sweeper
// exists to enforce (proportional to expirations, never to cache size).
func (c *Core) MaxSweepTickScan() int64 { return c.maxTickScan }

// unloadDead removes retired models whose reference count reached zero — the
// paper's rule that a NN module can be removed only at refcount 0.
func (c *Core) unloadDead() {
	kept := c.models[:0]
	for _, m := range c.models {
		if m.retired && m.refs <= 0 && m != c.active && m != c.standby {
			c.met.unloads.Inc()
			c.sc.EventStr("snapshot", "unload", c.Eng.Now(), "model", m.Name)
			continue
		}
		kept = append(kept, m)
	}
	c.models = kept
}

// armSweeper schedules the next sweep tick if the sweeper is enabled and no
// tick is pending. Called on every cache insert; once the wheel drains the
// tick chain stops rescheduling, so an idle or empty cache costs no events.
func (c *Core) armSweeper() {
	if !c.sweeping || c.sweepArmed || c.fc.tick <= 0 {
		return
	}
	c.sweepArmed = true
	c.sweepGen++
	gen := c.sweepGen
	c.fc.next = c.Eng.Now()/c.fc.tick + 1
	c.Eng.After(c.fc.tick, func() { c.sweepTick(gen) })
}

// disarmSweeper cancels the pending tick chain (if any) by bumping the
// generation, so a tick already queued in the engine becomes a no-op.
func (c *Core) disarmSweeper() {
	c.sweepArmed = false
	c.sweepGen++
}

// sweepTick is one turn of the expiry wheel: it drains the bucket(s) whose
// slots came due since the previous tick, evicting entries idle for at least
// FlowCacheTimeout (deadline <= now — an entry idle for exactly the timeout
// goes now, not a full period later) and re-parking entries a cache hit
// renewed since they were parked. Work per tick is proportional to the
// references in the due buckets, never to the cache size; the scan count
// feeds liteflow_core_sweep_scan_total so that bound is observable.
func (c *Core) sweepTick(gen uint64) {
	if gen != c.sweepGen || !c.sweeping || !c.sweepArmed {
		return
	}
	fc := c.fc
	now := c.Eng.Now()
	cur := now / fc.tick
	var swept, scanned int64
	for s := fc.next; s <= cur; s++ {
		for _, f := range fc.takeBucket(s) {
			scanned++
			e := fc.get(f)
			if e == nil || e.slot != s {
				continue // stale: flow finished or re-cached since parking
			}
			if e.lastUsed+fc.timeout <= now {
				c.dropEntry(f)
				swept++
			} else {
				fc.park(f, e)
			}
		}
	}
	fc.next = cur + 1
	c.met.sweepScans.Add(scanned)
	if scanned > c.maxTickScan {
		c.maxTickScan = scanned
	}
	c.met.swept.Add(swept)
	if swept > 0 {
		c.sc.Event1("flowcache", "sweep", now, "swept", swept)
	}
	c.met.shardDepth.Set(float64(fc.deepest()))
	if fc.parked == 0 {
		// Wheel drained: nothing left to expire. The next cache insert
		// re-arms the tick chain.
		c.sweepArmed = false
		return
	}
	c.Eng.After(fc.tick, func() { c.sweepTick(gen) })
}

// StopSweeper halts the idle-entry sweeper (experiment teardown).
func (c *Core) StopSweeper() { c.sweeping = false }

// slowPathAttached arms the watchdog (when enabled via opt.WithWatchdog).
// NewSlowPath calls it, so a core without a service never degrades.
func (c *Core) slowPathAttached() {
	if !c.wdEnabled || c.wdRunning {
		return
	}
	c.wdRunning = true
	c.lastAlive = c.Eng.Now()
	c.scheduleWatchdog()
}

// scheduleWatchdog ticks every wd.Check: if the slow path has been silent
// longer than wd.Window, the core degrades gracefully — it pins the
// last-good (current active) snapshot by discarding any pending standby, so
// a half-delivered update from the stalled service can never be activated,
// and keeps serving fast-path queries throughout. Degradation is visible in
// liteflow_core_degraded_total and a "core/degrade" trace event.
func (c *Core) scheduleWatchdog() {
	c.Eng.After(netsim.Time(c.wd.Check), func() {
		if !c.wdRunning {
			return
		}
		now := c.Eng.Now()
		if !c.degraded && now-c.lastAlive > netsim.Time(c.wd.Window) {
			c.degraded = true
			c.met.degraded.Inc()
			if c.standby != nil {
				c.standby.retired = true
				c.standby = nil
				c.unloadDead()
			}
			c.degradeStart = now
			c.sc.Event1("core", "degrade", now, "silence_ns", int64(now-c.lastAlive))
		}
		c.scheduleWatchdog()
	})
}

// AttachSlowPath arms the watchdog (when one was configured) for an external
// slow path — such as a fleet controller — that feeds liveness through
// NoteSlowPathAlive without constructing a Service.
func (c *Core) AttachSlowPath() { c.slowPathAttached() }

// NoteSlowPathAlive records slow-path liveness (the service calls it for
// every batch it accepts). A degraded core recovers here.
func (c *Core) NoteSlowPathAlive() {
	c.lastAlive = c.Eng.Now()
	if c.degraded {
		c.degraded = false
		c.met.recovered.Inc()
		now := c.Eng.Now()
		c.sc.Event("core", "recover", now)
		// The whole degraded window as one span: how long the core served
		// pinned to its last-good snapshot before the slow path came back.
		c.sc.Span("core", "degraded_window", c.degradeStart, int64(now-c.degradeStart))
	}
}

// Degraded reports whether the watchdog currently has the core pinned to
// its last-good snapshot.
func (c *Core) Degraded() bool { return c.degraded }

// StopWatchdog halts the slow-path watchdog (experiment teardown).
func (c *Core) StopWatchdog() { c.wdRunning = false }

// FlowBackend adapts the core to the cc.Backend interface for one flow:
// queries run through lf_query_model against the flow's pinned snapshot,
// synchronously, at kernel inference cost — the LiteFlow fast path.
type FlowBackend struct {
	Core *Core
	Flow netsim.FlowID

	in  []int64
	out []int64
}

// NewFlowBackend returns a fast-path inference backend for the given flow.
func NewFlowBackend(c *Core, flow netsim.FlowID) *FlowBackend {
	return &FlowBackend{Core: c, Flow: flow}
}

// Query implements the cc.Backend contract (structurally; cc is not
// imported): quantize, infer through the router, dequantize, reply inline.
// While a blocking install holds the router lock, the query stalls until
// release — the datapath interference the active-standby design eliminates.
func (b *FlowBackend) Query(state []float64, reply func(action float64)) {
	b.query(state, reply, -1)
}

// query carries the time the query first stalled (-1 when it has not). A
// blocked query counts once however many times it re-checks the lock, and
// its total stall is recorded when it finally runs.
func (b *FlowBackend) query(state []float64, reply func(action float64), stallStart netsim.Time) {
	c := b.Core
	if rem := c.LockRemaining(); rem > 0 {
		if stallStart < 0 {
			stallStart = c.Eng.Now()
			c.met.blocked.Inc()
		}
		c.Eng.After(rem, func() { b.query(state, reply, stallStart) })
		return
	}
	if stallStart >= 0 {
		stall := c.Eng.Now() - stallStart
		c.met.stallNS.Observe(float64(stall))
		c.sc.Span1("snapshot", "stall", stallStart, stall, "flow", int64(b.Flow))
	}
	m := c.lookup(b.Flow)
	if m == nil {
		reply(0)
		return
	}
	if cap(b.in) < len(state) {
		b.in = make([]int64, len(state))
		b.out = make([]int64, m.OutputSize())
	}
	b.in = b.in[:len(state)]
	prog := m.prog
	for i, x := range state {
		b.in[i] = int64(x * float64(prog.InputScale))
	}
	c.met.queries.Inc()
	cost := ksim.InferCost(b.Core.Costs.KernelInferPerMAC, prog.MACs())
	c.met.queryNS.Observe(float64(cost))
	if b.Core.CPU != nil {
		b.Core.CPU.Charge(ksim.Kernel, cost)
	}
	prog.InferWith(&c.arena, b.in, b.out[:prog.OutputSize()])
	a := float64(b.out[0]) / float64(prog.OutputScale)
	if a > 1 {
		a = 1
	}
	if a < -1 {
		a = -1
	}
	reply(a)
}
