package core

import (
	"errors"
	"math"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/fault"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netlink"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/obs"
	"github.com/liteflow-sim/liteflow/internal/opt"
)

// watchdogRig is a serviceRig variant with the slow-path watchdog armed.
type watchdogRig struct {
	eng  *netsim.Engine
	core *Core
	ch   *netlink.Channel
	user *userModel
	svc  *Service
}

func newWatchdogRig(t *testing.T, window netsim.Time, options ...opt.Option) *watchdogRig {
	t.Helper()
	eng := netsim.NewEngine()
	cpu := ksim.NewCPU(eng, 4)
	cfg := DefaultConfig()
	cfg.FlowCacheTimeout = 0
	c := NewCore(eng, cpu, ksim.DefaultCosts(), cfg,
		opt.WithWatchdog(opt.Watchdog{Window: int64(window)}))
	base := nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Linear}, 11)
	if _, err := c.RegisterModel(buildModule(t, base, "m0")); err != nil {
		t.Fatal(err)
	}
	user := &userModel{net: base.Clone(), stability: 1}
	ch := netlink.NewChannel(eng, cpu, ksim.DefaultCosts(), nil)
	svc := NewSlowPath(c, ch, user, user, user, options...)
	return &watchdogRig{eng: eng, core: c, ch: ch, user: user, svc: svc}
}

// pushBatch delivers n samples and advances virtual time to just past the
// delivery (bounded, because the armed watchdog reschedules forever).
func (r *watchdogRig) pushBatch(n int) {
	for i := 0; i < n; i++ {
		r.ch.Push(EncodeSample(Sample{Input: []float64{0.1, 0.2, 0.3, 0.4}, At: r.eng.Now()}))
	}
	r.ch.Flush()
	r.eng.RunUntil(r.eng.Now() + 10*netsim.Millisecond)
}

func TestWatchdogDegradesOnSilenceAndRecovers(t *testing.T) {
	window := 100 * netsim.Millisecond
	r := newWatchdogRig(t, window)
	defer r.core.StopWatchdog()

	r.pushBatch(4) // liveness signal
	if r.core.Degraded() {
		t.Fatal("core must not be degraded while batches flow")
	}

	// Park a standby snapshot, then go silent: the watchdog must degrade to
	// the last-good active snapshot and discard the pending standby.
	base2 := nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Linear}, 12)
	if _, err := r.core.RegisterModel(buildModule(t, base2, "m1")); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(r.eng.Now() + 5*window)
	if !r.core.Degraded() {
		t.Fatal("watchdog must degrade after slow-path silence")
	}
	st := r.core.Stats()
	if st.Degraded != 1 {
		t.Errorf("Degraded = %d, want 1", st.Degraded)
	}
	if r.core.standby != nil {
		t.Error("degrade must discard the pending standby")
	}
	if err := r.core.Activate(); !errors.Is(err, ErrDegraded) {
		t.Errorf("Activate while degraded = %v, want ErrDegraded", err)
	}
	// The fast path keeps answering from the last-good snapshot.
	in := make([]int64, 4)
	out := make([]int64, 1)
	if err := r.core.QueryModel(1, in, out); err != nil {
		t.Errorf("fast path must serve while degraded: %v", err)
	}

	// A batch arriving again recovers the core.
	r.pushBatch(4)
	if r.core.Degraded() {
		t.Error("core must recover once the slow path resumes")
	}
	if got := r.core.Stats().Recovered; got != 1 {
		t.Errorf("Recovered = %d, want 1", got)
	}
}

// TestActivateRejectedWhileDegraded is the regression test for the
// degradation-pin bug: a stalled service's already-queued netlink messages
// could still RegisterModel+Activate a snapshot while the core was degraded,
// violating the "half-delivered update can never be activated" invariant.
// Activation while degraded must return ErrDegraded; the parked standby is
// activatable only after the slow path proves liveness again.
func TestActivateRejectedWhileDegraded(t *testing.T) {
	window := 100 * netsim.Millisecond
	r := newWatchdogRig(t, window)
	defer r.core.StopWatchdog()

	r.pushBatch(4)
	r.eng.RunUntil(r.eng.Now() + 5*window)
	if !r.core.Degraded() {
		t.Fatal("watchdog must degrade after slow-path silence")
	}
	pinned := r.core.Active()

	// A queued update from the stalled service arrives now: install parks a
	// standby, but activation must be refused while the pin holds.
	base2 := nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Linear}, 13)
	if _, err := r.core.RegisterModel(buildModule(t, base2, "late")); err != nil {
		t.Fatal(err)
	}
	if err := r.core.Activate(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Activate while degraded = %v, want ErrDegraded", err)
	}
	if r.core.Active() != pinned {
		t.Error("degraded core must keep serving the last-good snapshot")
	}

	// Recovery lifts the pin: the deferred standby activates normally.
	r.pushBatch(4)
	if r.core.Degraded() {
		t.Fatal("core must recover once the slow path resumes")
	}
	if err := r.core.Activate(); err != nil {
		t.Fatalf("Activate after recovery = %v", err)
	}
	if r.core.Active() == pinned {
		t.Error("deferred standby must activate after recovery")
	}
}

func TestWatchdogNotArmedWithoutOption(t *testing.T) {
	r := newServiceRig(t) // plain New/NewService: no watchdog configured
	r.pushBatch(4, 1)
	r.eng.RunUntil(r.eng.Now() + 10*netsim.Second)
	if r.core.Degraded() || r.core.Stats().Degraded != 0 {
		t.Error("without opt.WithWatchdog the core must never degrade")
	}
}

// TestInstallRetrySucceedsAfterTransientFailure: a failed build schedules a
// retry with backoff; when the cause clears, the retry installs.
func TestInstallRetrySucceedsAfterTransientFailure(t *testing.T) {
	r := newWatchdogRig(t, netsim.Second)
	defer r.core.StopWatchdog()
	r.svc.NamePrefix = "bad name" // invalid identifier → codegen failure
	r.svc.installSnapshot()
	st := r.svc.Stats()
	if st.BuildFailures != 1 || st.InstallRetries != 1 {
		t.Fatalf("want 1 failure + 1 scheduled retry, got %+v", st)
	}
	r.svc.NamePrefix = "recovered" // clear the cause before the backoff ends
	r.eng.RunUntil(r.eng.Now() + 2*netsim.Second)
	st = r.svc.Stats()
	if st.Updates != 1 {
		t.Errorf("retry must install once the cause clears: %+v", st)
	}
	if st.InstallsAbandoned != 0 {
		t.Errorf("nothing must be abandoned: %+v", st)
	}
}

// TestInstallAbandonedAfterRetryBudget: with injected permanent build
// failures, the install is retried Max-1 times then abandoned — and the
// service keeps working.
func TestInstallAbandonedAfterRetryBudget(t *testing.T) {
	inj := fault.New(fault.Profile{BuildFailP: 1}, 3, obs.Scope{})
	r := newWatchdogRig(t, netsim.Second,
		opt.WithFaults(inj),
		opt.WithRetry(opt.Retry{Max: 3, Base: int64(10 * netsim.Millisecond), Cap: int64(netsim.Second)}))
	defer r.core.StopWatchdog()
	r.svc.installSnapshot()
	r.eng.RunUntil(r.eng.Now() + 5*netsim.Second)
	st := r.svc.Stats()
	if st.BuildFailures != 3 || st.InstallRetries != 2 || st.InstallsAbandoned != 1 {
		t.Errorf("want 3 failures, 2 retries, 1 abandoned; got %+v", st)
	}
	if st.Updates != 0 {
		t.Errorf("no snapshot must install under permanent failure: %+v", st)
	}
	// The service is still live: the next batch adapts as usual.
	r.pushBatch(4)
	if r.user.adapted == 0 {
		t.Error("service must keep adapting after an abandoned install")
	}
}

// TestServiceOutageDropsBatches: batches delivered inside an injected outage
// window are dropped wholesale and Healthy reports ErrServiceDown.
func TestServiceOutageDropsBatches(t *testing.T) {
	// First outage window starts in [1ms, 3ms) and lasts 10s: anything after
	// 3ms is guaranteed inside it.
	inj := fault.New(fault.Profile{
		OutagePeriod:   int64(2 * netsim.Millisecond),
		OutageDuration: int64(10 * netsim.Second),
	}, 1, obs.Scope{})
	r := newWatchdogRig(t, netsim.Second, opt.WithFaults(inj))
	defer r.core.StopWatchdog()
	r.eng.RunUntil(5 * netsim.Millisecond)
	r.pushBatch(4)
	st := r.svc.Stats()
	if st.OutageDrops != 1 {
		t.Fatalf("OutageDrops = %d, want 1", st.OutageDrops)
	}
	if st.Batches != 0 || r.user.adapted != 0 {
		t.Error("a crashed service must consume nothing")
	}
	if err := r.svc.Healthy(); !errors.Is(err, ErrServiceDown) {
		t.Errorf("Healthy = %v, want ErrServiceDown", err)
	}
}

// TestMalformedMessagesRejected: corrupt payloads in a batch are counted and
// skipped; the healthy remainder still adapts.
func TestMalformedMessagesRejected(t *testing.T) {
	r := newServiceRig(t)
	r.ch.Push(netlink.Message{Kind: netlink.KindSample, Data: []float64{math.NaN(), 1}})
	r.ch.Push(netlink.Message{Kind: netlink.KindSample, Data: []float64{12, 1}})
	r.ch.Push(EncodeSample(Sample{Input: []float64{0.1, 0.2, 0.3, 0.4}}))
	r.ch.Flush()
	r.eng.Run()
	st := r.svc.Stats()
	if st.Malformed != 2 {
		t.Errorf("Malformed = %d, want 2", st.Malformed)
	}
	if st.Samples != 1 {
		t.Errorf("Samples = %d, want the one valid record", st.Samples)
	}
}

func TestParseSampleErrors(t *testing.T) {
	for _, bad := range [][]float64{
		nil,
		{5, 1},
		{-1, 1},
		{math.NaN(), 1},
		{math.Inf(1), 1},
		{1.5, 1, 2},
		{1, math.NaN()},
		{1e308, 1},
	} {
		_, err := ParseSample(netlink.Message{Data: bad})
		if !errors.Is(err, ErrMalformedSample) {
			t.Errorf("ParseSample(%v) = %v, want ErrMalformedSample", bad, err)
		}
	}
	s, err := ParseSample(EncodeSample(Sample{Input: []float64{1, 2}, Aux: []float64{3}, At: 9}))
	if err != nil || len(s.Input) != 2 || len(s.Aux) != 1 || s.At != 9 {
		t.Errorf("valid sample rejected: %+v, %v", s, err)
	}
}

// TestSentinelErrors pins the errors.Is classification across packages.
func TestSentinelErrors(t *testing.T) {
	_, c := newCore(t)
	if err := c.QueryModel(1, nil, nil); !errors.Is(err, ErrNoModel) {
		t.Errorf("QueryModel = %v, want ErrNoModel", err)
	}
	if err := c.Activate(); !errors.Is(err, ErrNoStandby) {
		t.Errorf("Activate = %v, want ErrNoStandby", err)
	}
	if _, err := c.RegisterModel(nil); !errors.Is(err, ErrNilModule) {
		t.Errorf("RegisterModel(nil) = %v, want ErrNilModule", err)
	}
	if _, err := codegen.Generate(nil, "not an ident"); !errors.Is(err, codegen.ErrSnapshotBuild) {
		t.Errorf("Generate = %v, want ErrSnapshotBuild", err)
	}
}
