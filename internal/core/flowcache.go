package core

import (
	"sort"

	"github.com/liteflow-sim/liteflow/internal/netsim"
)

// This file implements the router's flow-consistency cache (paper §3.4) as a
// sharded map with amortized incremental eviction, replacing the original
// single map + stop-the-world sorted sweep. Two structures cooperate:
//
//   - Shards: a power-of-two array of maps keyed by a mixed FlowID hash.
//     Sharding bounds the per-map size (liteflow_core_shard_depth) and gives
//     bulk operations a deterministic iteration order — shards are visited
//     by index, never by Go map order, so eviction telemetry stays
//     byte-identical across same-seed runs (DESIGN.md §4d).
//
//   - A hashed timing wheel (Varghese & Lauck) for idle expiry: the timeout
//     horizon is divided into sweepWheelSlots ticks, and every cached entry
//     parks a reference in the ring bucket of its expiry deadline. A sweep
//     tick inspects only the bucket(s) that just came due, so per-tick work
//     is proportional to the entries expiring around that tick — not to the
//     cache size. Renewal is lazy: a cache hit only refreshes lastUsed; the
//     wheel reference stays where it is, and when its bucket comes due the
//     still-fresh entry is re-parked at its new deadline. Stale references
//     (flow finished, or re-cached after a drop) are recognized by a slot
//     mismatch and discarded in O(1).
//
// The wheel ring is sized timeout/tick+3: deadlines reach at most one full
// timeout past now, and placement rounds one slot up, so at most
// timeout/tick+2 distinct absolute slots are live at once. With the ring
// strictly larger than that span, two live slots can never alias the same
// bucket; only stale references ever share one.

const (
	// defaultFlowCacheShards is used when Config.FlowCacheShards is zero.
	defaultFlowCacheShards = 16
	// maxFlowCacheShards caps user-provided shard counts.
	maxFlowCacheShards = 1 << 16
	// sweepWheelSlots is how many ticks the timeout horizon is divided into:
	// the sweeper fires every FlowCacheTimeout/sweepWheelSlots and an idle
	// entry is evicted at most one tick after its deadline.
	sweepWheelSlots = 64
)

// cacheEntry pins a snapshot for one flow. slot is the absolute wheel slot
// holding this entry's current expiry reference (-1 when the sweeper is
// disabled); references found under any other slot are stale.
type cacheEntry struct {
	model    *Model
	lastUsed netsim.Time
	slot     int64
}

// flowCache is the sharded flow → entry map plus the expiry wheel.
type flowCache struct {
	shards []map[netsim.FlowID]*cacheEntry
	mask   uint64
	count  int

	timeout netsim.Time
	tick    netsim.Time // slot width; 0 disables the wheel
	ring    [][]netsim.FlowID
	next    int64 // first absolute slot not yet processed
	parked  int   // references (live + stale) currently in the ring

	depthHW int // deepest shard seen since the last exact recompute

	scratch []netsim.FlowID // bucket-processing buffer, reused per tick
}

// shardCount normalizes a configured shard count to a power of two.
func shardCount(n int) int {
	if n <= 0 {
		return defaultFlowCacheShards
	}
	if n > maxFlowCacheShards {
		n = maxFlowCacheShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func newFlowCache(shards int, timeout netsim.Time) *flowCache {
	n := shardCount(shards)
	fc := &flowCache{
		shards:  make([]map[netsim.FlowID]*cacheEntry, n),
		mask:    uint64(n - 1),
		timeout: timeout,
	}
	for i := range fc.shards {
		fc.shards[i] = make(map[netsim.FlowID]*cacheEntry)
	}
	if timeout > 0 {
		fc.tick = timeout / sweepWheelSlots
		if fc.tick <= 0 {
			fc.tick = 1
		}
		fc.ring = make([][]netsim.FlowID, int(timeout/fc.tick)+3)
	}
	return fc
}

// hashFlow mixes a FlowID with the splitmix64 finalizer so sequential IDs
// (the common case in the simulator) spread evenly across shards.
func hashFlow(f netsim.FlowID) uint64 {
	x := uint64(f)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (fc *flowCache) shard(f netsim.FlowID) map[netsim.FlowID]*cacheEntry {
	return fc.shards[hashFlow(f)&fc.mask]
}

// get returns the entry for f, or nil. Zero allocations.
func (fc *flowCache) get(f netsim.FlowID) *cacheEntry {
	return fc.shard(f)[f]
}

// insert adds a new entry and parks its expiry reference. The caller
// guarantees f is not present. It returns the depth of the shard the entry
// landed in, for the shard-depth gauge.
func (fc *flowCache) insert(f netsim.FlowID, e *cacheEntry) int {
	s := fc.shard(f)
	s[f] = e
	fc.count++
	fc.park(f, e)
	d := len(s)
	if d > fc.depthHW {
		fc.depthHW = d
	}
	return d
}

// remove deletes f's entry from its shard. The wheel reference, if any, goes
// stale and is discarded when its bucket comes due.
func (fc *flowCache) remove(f netsim.FlowID) (*cacheEntry, bool) {
	s := fc.shard(f)
	e, ok := s[f]
	if !ok {
		return nil, false
	}
	delete(s, f)
	fc.count--
	return e, true
}

// slotFor maps an expiry deadline to the first absolute slot whose tick time
// is strictly past it: processing slot s happens at the first tick with
// now >= s*tick, so rounding one slot up guarantees the entry is due (never
// scanned early, evicted at most one tick late).
func (fc *flowCache) slotFor(deadline netsim.Time) int64 {
	return int64(deadline/fc.tick) + 1
}

// park stores f's expiry reference in the wheel bucket of its deadline and
// stamps the entry with the slot, superseding any stale reference.
func (fc *flowCache) park(f netsim.FlowID, e *cacheEntry) {
	if fc.tick <= 0 {
		e.slot = -1
		return
	}
	slot := fc.slotFor(e.lastUsed + fc.timeout)
	e.slot = slot
	idx := int(slot % int64(len(fc.ring)))
	fc.ring[idx] = append(fc.ring[idx], f)
	fc.parked++
}

// takeBucket moves the ring bucket for absolute slot s into the reusable
// scratch buffer and empties it in place, so renewals processed by the
// caller can re-park into the same ring index (one revolution ahead)
// without being re-scanned this tick.
func (fc *flowCache) takeBucket(s int64) []netsim.FlowID {
	idx := int(s % int64(len(fc.ring)))
	bucket := fc.ring[idx]
	if len(bucket) == 0 {
		return nil
	}
	fc.scratch = append(fc.scratch[:0], bucket...)
	fc.ring[idx] = bucket[:0]
	fc.parked -= len(fc.scratch)
	return fc.scratch
}

// resetWheel discards every parked reference (bulk drop / cache disable).
func (fc *flowCache) resetWheel() {
	for i := range fc.ring {
		fc.ring[i] = fc.ring[i][:0]
	}
	fc.parked = 0
}

// deepest returns the exact depth of the deepest shard and refreshes the
// high-water mark the insert path compares against.
func (fc *flowCache) deepest() int {
	d := 0
	for _, s := range fc.shards {
		if len(s) > d {
			d = len(s)
		}
	}
	fc.depthHW = d
	return d
}

// appendSortedFlows appends every cached flow ID to buf in ascending order.
// Bulk drops iterate this — never Go map order — so eviction telemetry is
// identical between same-seed runs (the determinism invariant, DESIGN.md
// §4d). Sorting is O(n log n) but only runs on rare bulk operations; the
// periodic sweep path does not use it.
func (fc *flowCache) appendSortedFlows(buf []netsim.FlowID) []netsim.FlowID {
	for _, s := range fc.shards {
		for f := range s {
			buf = append(buf, f)
		}
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf
}
