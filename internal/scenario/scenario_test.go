package scenario

import (
	"strings"
	"testing"

	"github.com/liteflow-sim/liteflow/scenarios"
)

// corpus loads the embedded scenario library once per test binary.
func corpus(t *testing.T) []*Spec {
	t.Helper()
	specs, err := LoadCorpus(scenarios.FS)
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	return specs
}

func byName(t *testing.T, specs []*Spec, name string) *Spec {
	t.Helper()
	for _, s := range specs {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("scenario %q not in corpus", name)
	return nil
}

func TestCorpusLoads(t *testing.T) {
	specs := corpus(t)
	if len(specs) < 11 {
		t.Fatalf("corpus has %d scenarios, want >= 11", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Description == "" {
			t.Errorf("scenario %q has no description", s.Name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("scenario %q: %v", s.Name, err)
		}
	}
	for _, want := range []string{"web-baseline", "rpc-incast", "mega-web-1m"} {
		if !seen[want] {
			t.Errorf("corpus missing %q", want)
		}
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","bogusField":1}`))
	if err == nil || !strings.Contains(err.Error(), "bogusField") {
		t.Fatalf("Parse with unknown field: err = %v, want mention of bogusField", err)
	}
}

// TestScenarioEnvelopes runs every small scenario at natural scale on the
// serial engine and requires a clean acceptance envelope. This is the same
// check CI's scenario job applies through lfsim -scenario-check.
func TestScenarioEnvelopes(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario envelope sweep is a long test")
	}
	for _, s := range corpus(t) {
		if s.Name == "mega-web-1m" {
			continue // covered by TestMegaWebMillionFlows
		}
		s := s
		t.Run(s.Name, func(t *testing.T) {
			r, err := Run(s, RunOpts{})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !r.EnvelopeChecked {
				t.Fatalf("envelope not checked at natural scale")
			}
			if len(r.Violations) != 0 {
				t.Fatalf("envelope violations:\n%s", strings.Join(r.Violations, "\n"))
			}
			if r.Total.Responses == 0 {
				t.Fatalf("scenario completed zero responses")
			}
		})
	}
}

// TestScenarioByteIdenticalAcrossDomains checks the §4j contract for the
// scenario harness itself: every scenario's report is byte-identical on the
// partitioned engine at -sim-domains 1, 2, 4 and 8. Reduced scale keeps the
// 4x sweep tractable; byte-identity is scale-independent.
func TestScenarioByteIdenticalAcrossDomains(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-domain sweep is a long test")
	}
	for _, s := range corpus(t) {
		s := s
		scale := 0.5
		if s.Name == "mega-web-1m" {
			scale = 0.002
		}
		t.Run(s.Name, func(t *testing.T) {
			var want string
			for _, domains := range []int{1, 2, 4, 8} {
				r, err := Run(s, RunOpts{Domains: domains, Scale: scale})
				if err != nil {
					t.Fatalf("Run domains=%d: %v", domains, err)
				}
				got := r.String()
				if domains == 1 {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("report differs between domains=1 and domains=%d:\n--- domains=1 ---\n%s\n--- domains=%d ---\n%s",
						domains, want, domains, got)
				}
			}
		})
	}
}

// TestMegaWebMillionFlows is the scale smoke: >= 1M concurrent tcp flows
// driven by persistent sessions on one fabric, envelope enforced.
func TestMegaWebMillionFlows(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-flow scale smoke is a long test")
	}
	s := byName(t, corpus(t), "mega-web-1m")
	r, err := Run(s, RunOpts{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Flows < 1_000_000 {
		t.Fatalf("scale smoke ran %d concurrent flows, want >= 1,000,000", r.Flows)
	}
	if !r.EnvelopeChecked || len(r.Violations) != 0 {
		t.Fatalf("envelope checked=%v violations=%v", r.EnvelopeChecked, r.Violations)
	}
	t.Logf("mega-web-1m: %d flows, %d responses, p99 %.3f ms",
		r.Flows, r.Total.Responses, r.Total.P99Ms)
}
