// Package scenario loads and runs declarative workload scenarios: a JSON
// spec names an actor mix (web / video / rpc / bulk session state machines
// from package actor), an arrival process with optional diurnal modulation,
// disruption events (flash crowds, incast bursts), a fabric profile
// (data-center, WAN-RTT, wireless-loss) and an acceptance envelope. Run
// builds the fabric, populates it with sessions, plays the scenario on a
// classic or partitioned engine and renders a deterministic Report — the
// same bytes for every -sim-domains value, so every named scenario doubles
// as a regression test (DESIGN.md §4j).
package scenario

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"sort"
	"strings"

	"github.com/liteflow-sim/liteflow/internal/netsim"
)

// Spec is one declarative scenario.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Fabric selects the topology profile.
	Fabric FabricSpec `json:"fabric"`
	// CC picks the congestion controller for every flow: dctcp | cubic |
	// bbr. Empty defaults to cubic on the wan profile, dctcp elsewhere.
	CC string `json:"cc,omitempty"`
	// DurationMs is the simulated run length.
	DurationMs float64 `json:"durationMs"`
	// Seed drives every random draw of the scenario (session seeds, arrival
	// times, server placement, loss processes).
	Seed uint64 `json:"seed"`
	// Actors is the session mix; groups populate in order.
	Actors []ActorGroup `json:"actors"`
	// Arrival spreads session launches over the start of the run.
	Arrival ArrivalSpec `json:"arrival"`
	// Events injects disruptions mid-run.
	Events []EventSpec `json:"events,omitempty"`
	// Churn layers a short-lived background-mice population over the
	// persistent sessions (workload.GenerateChurnAt keeps its flow IDs and
	// clock clear of the actor block).
	Churn *ChurnSpec `json:"churn,omitempty"`
	// Envelope is the acceptance contract checked at natural scale.
	Envelope Envelope `json:"envelope"`
}

// FabricSpec selects and sizes the topology.
type FabricSpec struct {
	// Profile: dc (10G/40G spine-leaf, 5µs hops, ECN) | wan (50µs access,
	// 2ms fabric hops, deep buffers, no ECN) | wireless (dc plus i.i.d.
	// loss on every host access link).
	Profile      string `json:"profile"`
	HostsPerLeaf int    `json:"hostsPerLeaf"`
	// LossRate is the per-packet access-link loss probability (wireless).
	LossRate float64 `json:"lossRate,omitempty"`
}

// ActorGroup instantiates Count sessions of one class.
type ActorGroup struct {
	Class string `json:"class"` // web | video | rpc | bulk
	Count int    `json:"count"`
	// ThinkMs is the mean think/inter-call time (web, rpc; optional bulk
	// pause). Defaults: web 5, rpc 10.
	ThinkMs float64 `json:"thinkMs,omitempty"`
	// ReqBytes is the request size (default 300, must fit one MSS).
	ReqBytes int64 `json:"reqBytes,omitempty"`
	// RespDist sizes web responses: websearch (DCTCP web-search CDF,
	// default) | fixed (every response RespBytes).
	RespDist string `json:"respDist,omitempty"`
	// RespBytes is the response size for rpc/bulk and web with respDist
	// fixed.
	RespBytes int64 `json:"respBytes,omitempty"`
	// Fanout is the rpc server count (default 2).
	Fanout int `json:"fanout,omitempty"`
	// ChunkMs and LadderKbps configure video (defaults 100 ms and
	// 300..6000 kbps).
	ChunkMs    float64 `json:"chunkMs,omitempty"`
	LadderKbps []int64 `json:"ladderKbps,omitempty"`
}

// ArrivalSpec spreads session launches over a ramp window.
type ArrivalSpec struct {
	// Process: uniform (evenly spaced) | poisson (i.i.d. positions, the
	// arrival-order statistics of a Poisson process).
	Process string  `json:"process"`
	RampMs  float64 `json:"rampMs"`
	// Diurnal modulates arrival density over the ramp.
	Diurnal *DiurnalSpec `json:"diurnal,omitempty"`
}

// DiurnalSpec is a sinusoidal day/night arrival-density cycle: density rises
// from MinFrac (trough, at the window start) to 1 (peak) with the given
// period.
type DiurnalSpec struct {
	PeriodMs float64 `json:"periodMs"`
	MinFrac  float64 `json:"minFrac"`
}

// EventSpec is one mid-run disruption.
type EventSpec struct {
	// Kind: flash-crowd (launch Sessions extra sessions of Class within
	// SpanMs of AtMs) | incast-burst (Fire every rpc session at AtMs; busy
	// sessions count an IncastSkip).
	Kind     string  `json:"kind"`
	AtMs     float64 `json:"atMs"`
	SpanMs   float64 `json:"spanMs,omitempty"`
	Class    string  `json:"class,omitempty"`
	Sessions int     `json:"sessions,omitempty"`
}

// ChurnSpec layers short-lived background flows: Poisson opens at RatePerSec,
// exponential lifetimes with mean MeanLifeMs, each flow a one-shot transfer
// sized by its query count. FinFrac is carried through for the flow-cache
// experiments; at the tcp level every mouse simply completes.
type ChurnSpec struct {
	Flows      int     `json:"flows"`
	RatePerSec float64 `json:"ratePerSec"`
	MeanLifeMs float64 `json:"meanLifeMs"`
	FinFrac    float64 `json:"finFrac"`
}

// Envelope bounds a scenario's report at natural scale. Zero fields are
// unchecked.
type Envelope struct {
	// MinGoodputMbps bounds aggregate response goodput (BytesDown over the
	// run duration).
	MinGoodputMbps float64 `json:"minGoodputMbps,omitempty"`
	// MaxP50LatMs / MaxP99LatMs bound the response-latency (FCT analog)
	// quantiles across all classes.
	MaxP50LatMs float64 `json:"maxP50LatMs,omitempty"`
	MaxP99LatMs float64 `json:"maxP99LatMs,omitempty"`
	// MinResponses bounds completed request cycles.
	MinResponses int64 `json:"minResponses,omitempty"`
	// MaxRebufferFrac bounds video rebuffers per delivered chunk.
	MaxRebufferFrac float64 `json:"maxRebufferFrac,omitempty"`
	// MinAvgBitrateKbps bounds the mean delivered video bitrate.
	MinAvgBitrateKbps int64 `json:"minAvgBitrateKbps,omitempty"`
}

// Parse decodes and validates one scenario spec. Unknown fields are errors,
// so typos in a corpus file fail loudly instead of silently relaxing an
// envelope.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return &s, nil
}

// Validate checks the spec against the constraints Run assumes.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("missing name")
	}
	switch s.Fabric.Profile {
	case "dc", "wan":
		if s.Fabric.LossRate != 0 {
			return fmt.Errorf("lossRate needs the wireless profile")
		}
	case "wireless":
		if s.Fabric.LossRate <= 0 || s.Fabric.LossRate >= 1 {
			return fmt.Errorf("wireless profile needs lossRate in (0,1)")
		}
	default:
		return fmt.Errorf("unknown fabric profile %q (want dc|wan|wireless)", s.Fabric.Profile)
	}
	if s.Fabric.HostsPerLeaf < 1 {
		return fmt.Errorf("hostsPerLeaf must be ≥ 1")
	}
	switch s.CC {
	case "", "dctcp", "cubic", "bbr":
	default:
		return fmt.Errorf("unknown cc %q (want dctcp|cubic|bbr)", s.CC)
	}
	if s.DurationMs <= 0 {
		return fmt.Errorf("durationMs must be positive")
	}
	if len(s.Actors) == 0 {
		return fmt.Errorf("need at least one actor group")
	}
	hosts := 2 * s.Fabric.HostsPerLeaf
	for i := range s.Actors {
		g := &s.Actors[i]
		if g.Count < 1 {
			return fmt.Errorf("actors[%d]: count must be ≥ 1", i)
		}
		if g.ReqBytes < 0 || g.ReqBytes > netsim.MSS {
			return fmt.Errorf("actors[%d]: reqBytes must be in 0..MSS", i)
		}
		switch g.Class {
		case "web":
			switch g.RespDist {
			case "", "websearch":
			case "fixed":
				if g.RespBytes <= 0 {
					return fmt.Errorf("actors[%d]: respDist fixed needs respBytes", i)
				}
			default:
				return fmt.Errorf("actors[%d]: unknown respDist %q (want websearch|fixed)", i, g.RespDist)
			}
		case "video":
			if g.ChunkMs < 0 {
				return fmt.Errorf("actors[%d]: chunkMs must be ≥ 0", i)
			}
		case "rpc":
			if g.RespBytes <= 0 {
				return fmt.Errorf("actors[%d]: rpc needs respBytes", i)
			}
			if f := g.fanout(); f >= hosts {
				return fmt.Errorf("actors[%d]: fanout %d needs more than %d hosts", i, f, hosts)
			}
		case "bulk":
			if g.RespBytes <= 0 {
				return fmt.Errorf("actors[%d]: bulk needs respBytes", i)
			}
		default:
			return fmt.Errorf("actors[%d]: unknown class %q", i, g.Class)
		}
	}
	switch s.Arrival.Process {
	case "", "uniform", "poisson":
	default:
		return fmt.Errorf("unknown arrival process %q (want uniform|poisson)", s.Arrival.Process)
	}
	if s.Arrival.RampMs < 0 || s.Arrival.RampMs > s.DurationMs {
		return fmt.Errorf("rampMs must be in 0..durationMs")
	}
	if d := s.Arrival.Diurnal; d != nil {
		if d.PeriodMs <= 0 || d.MinFrac < 0 || d.MinFrac > 1 {
			return fmt.Errorf("diurnal needs periodMs > 0 and minFrac in [0,1]")
		}
	}
	for i, e := range s.Events {
		if e.AtMs < 0 || e.AtMs > s.DurationMs {
			return fmt.Errorf("events[%d]: atMs outside the run", i)
		}
		switch e.Kind {
		case "flash-crowd":
			if e.Sessions < 1 {
				return fmt.Errorf("events[%d]: flash-crowd needs sessions ≥ 1", i)
			}
			if e.SpanMs < 0 {
				return fmt.Errorf("events[%d]: spanMs must be ≥ 0", i)
			}
			found := false
			for j := range s.Actors {
				if s.Actors[j].Class == e.Class {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("events[%d]: flash-crowd class %q has no actor group to clone", i, e.Class)
			}
		case "incast-burst":
			found := false
			for j := range s.Actors {
				if s.Actors[j].Class == "rpc" {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("events[%d]: incast-burst needs an rpc actor group", i)
			}
		default:
			return fmt.Errorf("events[%d]: unknown kind %q (want flash-crowd|incast-burst)", i, e.Kind)
		}
	}
	if c := s.Churn; c != nil {
		if c.Flows < 1 || c.RatePerSec <= 0 || c.MeanLifeMs <= 0 || c.FinFrac < 0 || c.FinFrac > 1 {
			return fmt.Errorf("churn needs flows ≥ 1, ratePerSec > 0, meanLifeMs > 0, finFrac in [0,1]")
		}
	}
	return nil
}

// fanout returns the effective rpc fan-out width.
func (g *ActorGroup) fanout() int {
	if g.Fanout > 0 {
		return g.Fanout
	}
	return 2
}

// Sessions returns the natural-scale session count across all groups.
func (s *Spec) Sessions() int {
	n := 0
	for i := range s.Actors {
		n += s.Actors[i].Count
	}
	return n
}

// LoadCorpus parses every *.json scenario in fsys, sorted by name. Duplicate
// names are errors.
func LoadCorpus(fsys fs.FS) ([]*Spec, error) {
	files, err := fs.Glob(fsys, "*.json")
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	specs := make([]*Spec, 0, len(files))
	seen := map[string]string{}
	for _, f := range files {
		data, err := fs.ReadFile(fsys, f)
		if err != nil {
			return nil, err
		}
		sp, err := Parse(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		if prev, dup := seen[sp.Name]; dup {
			return nil, fmt.Errorf("%s: scenario name %q already used by %s", f, sp.Name, prev)
		}
		seen[sp.Name] = f
		specs = append(specs, sp)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs, nil
}
