package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/liteflow-sim/liteflow/internal/actor"
	"github.com/liteflow-sim/liteflow/internal/cc"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/tcp"
	"github.com/liteflow-sim/liteflow/internal/topo"
	"github.com/liteflow-sim/liteflow/internal/workload"
)

// RunOpts configure one scenario run.
type RunOpts struct {
	// Domains ≥ 1 runs on a conservative-lookahead parallel engine with that
	// many workers; 0 keeps the classic serial engine. The report is
	// byte-identical for every value.
	Domains int
	// Scale multiplies session and churn counts (floor 1 per group); 0 means
	// natural scale. The acceptance envelope is only checked at natural
	// scale.
	Scale float64
	// SeedOffset perturbs the spec seed (experiment repetitions).
	SeedOffset uint64
}

// Report is one scenario run's deterministic outcome. String() must not
// include anything host- or domains-dependent: the golden tests compare its
// bytes across -sim-domains 1/2/4/8.
type Report struct {
	Name  string
	Scale float64
	Dur   netsim.Time
	Hosts int
	// Flows counts the persistent (concurrent) actor flows registered at
	// setup; ChurnFlows counts the layered one-shot mice.
	Flows      int64
	ChurnFlows int64
	ChurnBytes int64
	LossDrops  int64

	PerClass []ClassStats
	Total    ClassStats

	// EnvelopeChecked reports whether the acceptance envelope applied (it
	// only does at natural scale); Violations lists every bound it broke.
	EnvelopeChecked bool
	Violations      []string
}

// ClassStats aggregates one session class (or the whole run for Total).
type ClassStats struct {
	Class       string
	Sessions    int64
	Requests    int64
	Responses   int64
	BytesDown   int64
	Rebuffers   int64
	BitrateSum  int64
	IncastSkips int64
	P50Ms       float64
	P99Ms       float64
	GoodputMbps float64
}

// classes is the fixed report order.
var classes = []actor.Class{actor.Web, actor.Video, actor.RPC, actor.Bulk}

// String renders the deterministic report text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== scenario %s ==\n", r.Name)
	fmt.Fprintf(&b, "hosts %d, duration %gms, scale %g, flows %d concurrent (+%d churn mice)\n",
		r.Hosts, float64(r.Dur)/1e6, r.Scale, r.Flows, r.ChurnFlows)
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %14s %9s %9s %12s\n",
		"class", "sessions", "requests", "responses", "bytesDown", "p50ms", "p99ms", "goodputMbps")
	row := func(c ClassStats) {
		fmt.Fprintf(&b, "%-8s %10d %10d %10d %14d %9.3f %9.3f %12.3f\n",
			c.Class, c.Sessions, c.Requests, c.Responses, c.BytesDown, c.P50Ms, c.P99Ms, c.GoodputMbps)
	}
	for _, c := range r.PerClass {
		row(c)
	}
	row(r.Total)
	for _, c := range r.PerClass {
		if c.Class == "video" && c.Responses > 0 {
			fmt.Fprintf(&b, "video: %d rebuffers (%.4f per chunk), avg bitrate %d kbps\n",
				c.Rebuffers, float64(c.Rebuffers)/float64(c.Responses), c.BitrateSum/c.Responses/1000)
		}
		if c.Class == "rpc" {
			fmt.Fprintf(&b, "rpc: %d incast skips\n", c.IncastSkips)
		}
	}
	if r.LossDrops > 0 {
		fmt.Fprintf(&b, "loss: %d access-link drops\n", r.LossDrops)
	}
	if r.ChurnFlows > 0 {
		fmt.Fprintf(&b, "churn: %d mice delivered %d bytes\n", r.ChurnFlows, r.ChurnBytes)
	}
	switch {
	case !r.EnvelopeChecked:
		fmt.Fprintf(&b, "envelope: unchecked (scale %g)\n", r.Scale)
	case len(r.Violations) == 0:
		b.WriteString("envelope: OK\n")
	default:
		fmt.Fprintf(&b, "envelope: %d violations\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  - %s\n", v)
		}
	}
	return b.String()
}

// xrng is the harness PRNG (xorshift64*, like the per-session generators):
// every draw happens at setup time in spec order, so runs are deterministic
// for any engine layout.
type xrng uint64

func newXRNG(seed uint64) xrng {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return xrng(z)
}

func (p *xrng) next() uint64 {
	x := uint64(*p)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*p = xrng(x)
	return x
}

func (p *xrng) f64() float64   { return float64(p.next()>>11) / (1 << 53) }
func (p *xrng) intn(n int) int { return int(p.next() % uint64(n)) }

// ArrivalDensity returns the scenario's relative arrival density at fraction
// frac ∈ [0,1] of its ramp window: 1 everywhere for flat arrivals, and the
// day/night curve (MinFrac at the troughs, 1 at the peaks) when a diurnal
// cycle is set. The fleet plane uses this to shape member query cadence by a
// scenario's workload without running its flows (FleetScenarioOpts.Workload).
func (s *Spec) ArrivalDensity(frac float64) float64 {
	d := s.Arrival.Diurnal
	if d == nil {
		return 1
	}
	t := frac * s.Arrival.RampMs
	return d.MinFrac + (1-d.MinFrac)*(1-math.Cos(2*math.Pi*t/d.PeriodMs))/2
}

// diurnalCDF is a numeric inverse-CDF table for the sinusoidal arrival
// density d(t) = min + (1-min)·(1-cos(2πt/period))/2 over the ramp window
// (trough at t=0). Mapping uniform draws through it thins arrivals at night
// and bunches them at the peaks without changing the total count.
type diurnalCDF struct{ cum []float64 }

func newDiurnalCDF(d *DiurnalSpec, rampMs float64) *diurnalCDF {
	const bins = 512
	c := &diurnalCDF{cum: make([]float64, bins+1)}
	for i := 0; i < bins; i++ {
		t := (float64(i) + 0.5) / bins * rampMs
		den := d.MinFrac + (1-d.MinFrac)*(1-math.Cos(2*math.Pi*t/d.PeriodMs))/2
		c.cum[i+1] = c.cum[i] + den
	}
	total := c.cum[bins]
	for i := range c.cum {
		c.cum[i] /= total
	}
	return c
}

// invert maps u ∈ [0,1) to a window position in [0,1).
func (c *diurnalCDF) invert(u float64) float64 {
	bins := len(c.cum) - 1
	lo, hi := 0, bins
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] <= u {
			lo = mid
		} else {
			hi = mid
		}
	}
	span := c.cum[lo+1] - c.cum[lo]
	frac := 0.0
	if span > 0 {
		frac = (u - c.cum[lo]) / span
	}
	return (float64(lo) + frac) / float64(bins)
}

// Run plays one scenario and returns its report.
func Run(s *Spec, o RunOpts) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	scale := o.Scale
	if scale <= 0 {
		scale = 1
	}
	scaleCount := func(n int) int {
		v := int(float64(n)*scale + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}

	var eng *netsim.Engine
	if o.Domains >= 1 {
		eng = netsim.NewParallelEngine(o.Domains)
	} else {
		eng = netsim.NewEngine()
	}

	topoOpts := topo.DefaultSpineLeafOpts(s.Fabric.HostsPerLeaf)
	ccName := s.CC
	if s.Fabric.Profile == "wan" {
		topoOpts.HostDelay = 50 * netsim.Microsecond
		topoOpts.FabricDelay = 2 * netsim.Millisecond
		topoOpts.QueueBytes = 4 << 20
		topoOpts.ECNThresholdBytes = 0
		if ccName == "" {
			ccName = "cubic"
		}
	}
	if ccName == "" {
		ccName = "dctcp"
	}
	var ccFn func() tcp.CongestionControl
	switch ccName {
	case "dctcp":
		ccFn = func() tcp.CongestionControl { return cc.NewDCTCP() }
	case "cubic":
		ccFn = func() tcp.CongestionControl { return cc.NewCubic() }
	case "bbr":
		ccFn = func() tcp.CongestionControl { return cc.NewBBR() }
	}
	fabric := topo.NewSpineLeaf(eng, topoOpts)
	hosts := fabric.Hosts
	rng := newXRNG(s.Seed + o.SeedOffset)

	var lossLinks []*netsim.Link
	if s.Fabric.Profile == "wireless" {
		for i, h := range hosts {
			up := h.Egress()
			down := fabric.Leaves[fabric.LeafOf(i)].Port(i)
			up.SetLoss(s.Fabric.LossRate, int64(s.Seed+o.SeedOffset)+int64(2*i)+101)
			down.SetLoss(s.Fabric.LossRate, int64(s.Seed+o.SeedOffset)+int64(2*i)+102)
			lossLinks = append(lossLinks, up, down)
		}
	}

	dur := netsim.Time(s.DurationMs * 1e6)
	rampNs := s.Arrival.RampMs * 1e6
	var diurnal *diurnalCDF
	if s.Arrival.Diurnal != nil && rampNs > 0 {
		diurnal = newDiurnalCDF(s.Arrival.Diurnal, s.Arrival.RampMs)
	}

	// One metrics collector per (host, class): sessions only ever share a
	// collector within their client host's partition (§4j), and the post-run
	// merge walks hosts then classes — a fixed order for any domain count.
	coll := make([][4]*actor.Metrics, len(hosts))
	metricsFor := func(host int, cls actor.Class) *actor.Metrics {
		if coll[host][cls] == nil {
			coll[host][cls] = actor.NewMetrics()
		}
		return coll[host][cls]
	}

	totalPlanned := 0
	for i := range s.Actors {
		totalPlanned += scaleCount(s.Actors[i].Count)
	}

	// launchPos draws a ramp position in [0,1) for global session k.
	launched := 0
	launchPos := func() float64 {
		var u float64
		if s.Arrival.Process == "uniform" || s.Arrival.Process == "" {
			u = (float64(launched) + 0.5) / float64(totalPlanned)
		} else {
			u = rng.f64()
		}
		launched++
		if diurnal != nil {
			return diurnal.invert(u)
		}
		return u
	}

	var flow netsim.FlowID
	var clientRR int
	byClass := map[string][]*actor.Session{}
	build := func(g *ActorGroup) *actor.Session {
		client := clientRR % len(hosts)
		clientRR++
		f := 1
		if g.Class == "rpc" {
			f = g.fanout()
		}
		servers := make([]*tcp.Host, f)
		off := rng.intn(len(hosts) - 1)
		for j := 0; j < f; j++ {
			servers[j] = hosts[(client+1+(off+j)%(len(hosts)-1))%len(hosts)]
		}
		opts := actor.Opts{
			Client:   hosts[client],
			Servers:  servers,
			BaseFlow: flow,
			Seed:     rng.next(),
			CC:       ccFn,
			ReqBytes: g.ReqBytes,
		}
		if opts.ReqBytes == 0 {
			opts.ReqBytes = 300
		}
		switch g.Class {
		case "web":
			opts.Class = actor.Web
			opts.ThinkMean = netsim.Time(g.ThinkMs * 1e6)
			if opts.ThinkMean == 0 {
				opts.ThinkMean = 5 * netsim.Millisecond
			}
			if g.RespDist == "fixed" {
				b := float64(g.RespBytes)
				opts.RespDist = workload.NewSizeDist([]float64{b, b}, []float64{0, 1})
			} else {
				opts.RespDist = workload.WebSearch()
			}
		case "video":
			opts.Class = actor.Video
			opts.ChunkDur = netsim.Time(g.ChunkMs * 1e6)
			if opts.ChunkDur == 0 {
				opts.ChunkDur = 100 * netsim.Millisecond
			}
			opts.Ladder = g.LadderKbps
			if len(opts.Ladder) == 0 {
				opts.Ladder = []int64{300, 750, 1500, 3000, 6000}
			}
			opts.Ladder = append([]int64(nil), opts.Ladder...)
			for i := range opts.Ladder {
				opts.Ladder[i] *= 1000 // kbps → bps
			}
		case "rpc":
			opts.Class = actor.RPC
			opts.RespBytes = g.RespBytes
			opts.ThinkMean = netsim.Time(g.ThinkMs * 1e6)
			if opts.ThinkMean == 0 {
				opts.ThinkMean = 10 * netsim.Millisecond
			}
		case "bulk":
			opts.Class = actor.Bulk
			opts.RespBytes = g.RespBytes
			opts.ThinkMean = netsim.Time(g.ThinkMs * 1e6)
		}
		opts.Metrics = metricsFor(client, opts.Class)
		sess := actor.New(opts)
		flow += netsim.FlowID(sess.Flows())
		byClass[g.Class] = append(byClass[g.Class], sess)
		return sess
	}

	for i := range s.Actors {
		g := &s.Actors[i]
		for k := scaleCount(g.Count); k > 0; k-- {
			sess := build(g)
			sess.Launch(netsim.Time(launchPos() * rampNs))
		}
	}

	// Events: flash crowds clone the first matching group; incast bursts
	// fire every rpc session at once (busy sessions count IncastSkips).
	for i := range s.Events {
		e := &s.Events[i]
		at := netsim.Time(e.AtMs * 1e6)
		switch e.Kind {
		case "flash-crowd":
			var tmpl *ActorGroup
			for j := range s.Actors {
				if s.Actors[j].Class == e.Class {
					tmpl = &s.Actors[j]
					break
				}
			}
			for k := scaleCount(e.Sessions); k > 0; k-- {
				sess := build(tmpl)
				sess.Launch(at + netsim.Time(rng.f64()*e.SpanMs*1e6))
			}
		case "incast-burst":
			for _, sess := range byClass["rpc"] {
				sess.Fire(at)
			}
		}
	}

	// Churn: short-lived background mice layered after the actor flow-ID
	// block — the GenerateChurnAt composition contract.
	var churnFlows int64
	churnRx := make([]int64, len(hosts))
	if s.Churn != nil {
		n := scaleCount(s.Churn.Flows)
		churn := workload.GenerateChurnAt(
			rand.New(rand.NewSource(int64(s.Seed+o.SeedOffset)+1)),
			n, s.Churn.RatePerSec*scale, netsim.Time(s.Churn.MeanLifeMs*1e6),
			s.Churn.FinFrac, flow, 0)
		churnFlows = int64(len(churn))
		for _, cf := range churn {
			src := rng.intn(len(hosts))
			dst := (src + 1 + rng.intn(len(hosts)-1)) % len(hosts)
			size := int64(cf.Queries) * netsim.MSS
			snd := tcp.NewSender(hosts[src], cf.ID, hosts[dst].ID, size, ccFn())
			rcv := tcp.NewReceiver(hosts[dst], cf.ID, hosts[src].ID)
			d := dst
			rcv.OnDeliver = func(nb int, now netsim.Time) { churnRx[d] += int64(nb) }
			hosts[src].Eng.At(cf.Open, snd.Start)
		}
	}

	eng.RunUntil(dur)

	// Merge host-major, class-minor — deterministic for any domain count.
	perClass := make([]*actor.Metrics, len(classes))
	for _, c := range classes {
		perClass[c] = actor.NewMetrics()
	}
	for h := range coll {
		for _, c := range classes {
			if coll[h][c] != nil {
				perClass[c].Merge(coll[h][c])
			}
		}
	}
	total := actor.NewMetrics()
	for _, c := range classes {
		total.Merge(perClass[c])
	}

	r := &Report{
		Name: s.Name, Scale: scale, Dur: dur, Hosts: len(hosts),
		Flows: int64(flow), ChurnFlows: churnFlows,
	}
	for _, c := range classes {
		if perClass[c].Sessions == 0 {
			continue
		}
		r.PerClass = append(r.PerClass, classStats(c.String(), perClass[c], dur))
	}
	r.Total = classStats("total", total, dur)
	for _, l := range lossLinks {
		r.LossDrops += l.LossDrops()
	}
	for _, b := range churnRx {
		r.ChurnBytes += b
	}
	if scale == 1 {
		r.EnvelopeChecked = true
		r.Violations = s.Envelope.check(r)
	}
	return r, nil
}

// classStats folds one merged collector into report numbers.
func classStats(name string, m *actor.Metrics, dur netsim.Time) ClassStats {
	c := ClassStats{
		Class: name, Sessions: m.Sessions, Requests: m.Requests,
		Responses: m.Responses, BytesDown: m.BytesDown, Rebuffers: m.Rebuffers,
		BitrateSum: m.BitrateSum, IncastSkips: m.IncastSkips,
	}
	if m.Lat.N() > 0 {
		c.P50Ms = m.Lat.Quantile(0.5) / 1e6
		c.P99Ms = m.Lat.Quantile(0.99) / 1e6
	}
	c.GoodputMbps = float64(m.BytesDown*8) / (float64(dur) / 1e9) / 1e6
	return c
}

// check evaluates the envelope against a natural-scale report.
func (e *Envelope) check(r *Report) []string {
	var v []string
	t := r.Total
	if e.MinGoodputMbps > 0 && t.GoodputMbps < e.MinGoodputMbps {
		v = append(v, fmt.Sprintf("goodput %.3f Mbps < min %g", t.GoodputMbps, e.MinGoodputMbps))
	}
	if e.MaxP50LatMs > 0 && t.P50Ms > e.MaxP50LatMs {
		v = append(v, fmt.Sprintf("p50 latency %.3f ms > max %g", t.P50Ms, e.MaxP50LatMs))
	}
	if e.MaxP99LatMs > 0 && t.P99Ms > e.MaxP99LatMs {
		v = append(v, fmt.Sprintf("p99 latency %.3f ms > max %g", t.P99Ms, e.MaxP99LatMs))
	}
	if e.MinResponses > 0 && t.Responses < e.MinResponses {
		v = append(v, fmt.Sprintf("responses %d < min %d", t.Responses, e.MinResponses))
	}
	for _, c := range r.PerClass {
		if c.Class != "video" || c.Responses == 0 {
			continue
		}
		frac := float64(c.Rebuffers) / float64(c.Responses)
		if e.MaxRebufferFrac > 0 && frac > e.MaxRebufferFrac {
			v = append(v, fmt.Sprintf("rebuffer fraction %.4f > max %g", frac, e.MaxRebufferFrac))
		}
		if e.MinAvgBitrateKbps > 0 && c.BitrateSum/c.Responses/1000 < e.MinAvgBitrateKbps {
			v = append(v, fmt.Sprintf("avg bitrate %d kbps < min %d", c.BitrateSum/c.Responses/1000, e.MinAvgBitrateKbps))
		}
	}
	return v
}
