package actor

import (
	"testing"

	"github.com/liteflow-sim/liteflow/internal/cc"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/tcp"
	"github.com/liteflow-sim/liteflow/internal/topo"
	"github.com/liteflow-sim/liteflow/internal/workload"
)

func dctcp() tcp.CongestionControl { return cc.NewDCTCP() }

// fabric builds a small spine–leaf for actor tests: 8 hosts, DCTCP marking.
func fabric(eng *netsim.Engine) *topo.SpineLeaf {
	return topo.NewSpineLeaf(eng, topo.DefaultSpineLeafOpts(4))
}

func TestWebSessionRequestLoop(t *testing.T) {
	eng := netsim.NewEngine()
	f := fabric(eng)
	m := NewMetrics()
	s := New(Opts{
		Class: Web, Client: f.Hosts[0], Servers: []*tcp.Host{f.Hosts[4]},
		BaseFlow: 100, Seed: 1, CC: dctcp, Metrics: m,
		ThinkMean: 5 * netsim.Millisecond, ReqBytes: 400,
		RespDist: workload.WebSearch(),
	})
	s.Launch(netsim.Millisecond)
	eng.RunUntil(2 * netsim.Second)

	if m.Sessions != 1 {
		t.Fatalf("Sessions = %d", m.Sessions)
	}
	if m.Requests < 10 {
		t.Fatalf("only %d requests in 2s with 5ms think; session stalled", m.Requests)
	}
	if m.Responses != m.Requests && m.Responses != m.Requests-1 {
		t.Errorf("responses %d vs requests %d: at most one may be in flight", m.Responses, m.Requests)
	}
	if m.Lat.N() == 0 || m.Lat.Quantile(0.5) <= 0 {
		t.Error("no response latency samples")
	}
	if m.BytesDown == 0 {
		t.Error("no response bytes delivered")
	}
}

func TestVideoSessionAdaptsAndPaces(t *testing.T) {
	eng := netsim.NewEngine()
	f := fabric(eng)
	m := NewMetrics()
	ladder := []int64{300e3, 750e3, 1500e3, 3000e3, 6000e3}
	s := New(Opts{
		Class: Video, Client: f.Hosts[1], Servers: []*tcp.Host{f.Hosts[5]},
		BaseFlow: 200, Seed: 2, CC: dctcp, Metrics: m,
		ReqBytes: 300, ChunkDur: 100 * netsim.Millisecond, Ladder: ladder,
	})
	s.Launch(0)
	eng.RunUntil(3 * netsim.Second)

	// On an idle 10 Gbps fabric the ABR must climb off the bottom rung and
	// sustain roughly one chunk per chunk duration.
	if m.Responses < 20 || m.Responses > 40 {
		t.Errorf("%d chunks in 3s at 100ms cadence, want ~30", m.Responses)
	}
	if avg := m.BitrateSum / m.Responses; avg < ladder[2] {
		t.Errorf("avg bitrate %d on an idle fabric, want ≥ %d", avg, ladder[2])
	}
	if m.Rebuffers > 2 {
		t.Errorf("%d rebuffers on an idle fabric", m.Rebuffers)
	}
}

func TestRPCFanoutIncast(t *testing.T) {
	eng := netsim.NewEngine()
	f := fabric(eng)
	m := NewMetrics()
	servers := []*tcp.Host{f.Hosts[4], f.Hosts[5], f.Hosts[6], f.Hosts[7]}
	s := New(Opts{
		Class: RPC, Client: f.Hosts[2], Servers: servers,
		BaseFlow: 300, Seed: 3, CC: dctcp, Metrics: m,
		ThinkMean: 10 * netsim.Millisecond, ReqBytes: 200, RespBytes: 20_000,
	})
	if s.Flows() != 8 {
		t.Fatalf("Flows() = %d, want 8 (an up/down pair per server)", s.Flows())
	}
	s.Launch(0)
	// Forced fire while a fan-out is likely in flight → IncastSkips path.
	s.Fire(netsim.Microsecond)
	eng.RunUntil(500 * netsim.Millisecond)

	if m.Responses < 5 {
		t.Fatalf("only %d fan-outs completed", m.Responses)
	}
	// Every completed fan-out delivered all four responses.
	if want := m.Responses * 4 * 20_000; m.BytesDown < want {
		t.Errorf("BytesDown = %d, want ≥ %d", m.BytesDown, want)
	}
	if m.IncastSkips == 0 {
		t.Error("forced fire during a fan-out must count an IncastSkip")
	}
}

func TestBulkSessionSaturates(t *testing.T) {
	eng := netsim.NewEngine()
	f := fabric(eng)
	m := NewMetrics()
	s := New(Opts{
		Class: Bulk, Client: f.Hosts[3], Servers: []*tcp.Host{f.Hosts[7]},
		BaseFlow: 400, Seed: 4, CC: dctcp, Metrics: m,
		ReqBytes: 200, RespBytes: 5_000_000,
	})
	s.Launch(0)
	eng.RunUntil(500 * netsim.Millisecond)
	// Back-to-back 5 MB downloads on a 10 Gbps access link: expect at
	// least a few hundred MB/s of goodput.
	gbps := float64(m.BytesDown*8) / 0.5 / 1e9
	if gbps < 1 {
		t.Errorf("bulk goodput %.2f Gbps, want ≥ 1 on a 10 Gbps fabric", gbps)
	}
	if m.Responses < 10 {
		t.Errorf("%d items fetched", m.Responses)
	}
}

// TestSessionsDeterministicAcrossDomains runs the same actor mix on the
// windowed engine with 1, 2, 4 and 8 worker domains: client metrics must be
// identical (§4d — partitions fix the ordering, domains only map partitions
// onto workers).
func TestSessionsDeterministicAcrossDomains(t *testing.T) {
	run := func(domains int) *Metrics {
		eng := netsim.NewParallelEngine(domains)
		f := fabric(eng)
		ms := make([]*Metrics, 8)
		var flow netsim.FlowID
		for h := 0; h < 8; h++ {
			ms[h] = NewMetrics()
			srv := f.Hosts[(h+4)%8]
			cls := []Class{Web, Video, RPC, Bulk}[h%4]
			o := Opts{
				Class: cls, Client: f.Hosts[h], Servers: []*tcp.Host{srv},
				BaseFlow: flow, Seed: uint64(h + 1), CC: dctcp, Metrics: ms[h],
				ThinkMean: 3 * netsim.Millisecond, ReqBytes: 300,
				RespDist:  workload.WebSearch(),
				RespBytes: 50_000,
				ChunkDur:  50 * netsim.Millisecond,
				Ladder:    []int64{300e3, 1500e3, 6000e3},
			}
			if cls == RPC {
				o.Servers = []*tcp.Host{f.Hosts[(h+3)%8], f.Hosts[(h+5)%8]}
			}
			s := New(o)
			flow += netsim.FlowID(s.Flows())
			s.Launch(netsim.Time(h) * netsim.Millisecond)
		}
		eng.RunUntil(300 * netsim.Millisecond)
		total := NewMetrics()
		total.Sessions = 0 // count only merged-in sessions
		for _, m := range ms {
			total.Merge(m)
		}
		return total
	}
	base := run(1)
	if base.Responses == 0 {
		t.Fatal("degenerate run: no responses")
	}
	for _, d := range []int{2, 4, 8} {
		if got := run(d); !metricsEqual(got, base) {
			t.Errorf("domains=%d metrics diverge from the 1-domain run", d)
		}
	}
}

func metricsEqual(a, b *Metrics) bool {
	if a.Sessions != b.Sessions || a.Requests != b.Requests ||
		a.Responses != b.Responses || a.BytesDown != b.BytesDown ||
		a.Rebuffers != b.Rebuffers || a.BitrateSum != b.BitrateSum ||
		a.IncastSkips != b.IncastSkips || a.Lat.N() != b.Lat.N() {
		return false
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
		if a.Lat.Quantile(q) != b.Lat.Quantile(q) {
			return false
		}
	}
	return true
}
