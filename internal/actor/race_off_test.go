//go:build !race

package actor

// raceEnabled reports whether the race detector is instrumenting this build.
// Allocation guards skip under -race: the detector's shadow memory allocates.
const raceEnabled = false
