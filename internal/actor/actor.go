// Package actor implements persistent per-user session state machines that
// drive live tcp flows on the netsim engine — the workload plane of the
// scenario library. Where package workload precomputes FlowSpec lists, an
// actor *is* a user: it owns long-lived connections, issues requests, reacts
// to responses, and adapts (video ABR) — all as simulator events.
//
// Partition ownership (DESIGN.md §4j): a session's client state lives on the
// client host and is touched only from callbacks delivered to that host's
// partition (receiver delivery, think-time timers). The server half is a
// dumb Responder whose state lives on the server host and is touched only
// from that partition (request arrival). The two halves communicate solely
// through tcp flows over links, so scenarios run unchanged — and
// byte-identical — on a classic engine and on any -sim-domains partitioning.
//
// Mechanically a session pre-creates its connections at setup time (flow
// registration is partition-safe before Run starts): one up flow
// (client→server) carrying requests and one down flow (server→client)
// carrying responses, both app-limited tcp streams (Sender.Push). A request
// is a small tagged message whose tag is the response size in bytes; the
// responder answers any request by pushing that many bytes back. Requests on
// one connection are strictly sequential, so response completion is plain
// byte counting on the client.
package actor

import (
	"math"

	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/stats"
	"github.com/liteflow-sim/liteflow/internal/tcp"
	"github.com/liteflow-sim/liteflow/internal/workload"
)

// Class enumerates the session types of the scenario library.
type Class int

// Session classes.
const (
	// Web is a request/response user: exponential think time, response
	// sizes drawn from a flow-size distribution.
	Web Class = iota
	// Video is an adaptive-bitrate streamer: a chunk every ChunkDur,
	// bitrate chosen from Ladder by measured download throughput.
	Video
	// RPC is a fan-out caller: one request to every server at once,
	// complete when the slowest response lands (incast at the client).
	RPC
	// Bulk is a backup/sync user: back-to-back large downloads.
	Bulk
)

// String names the class as scenario reports do.
func (c Class) String() string {
	switch c {
	case Web:
		return "web"
	case Video:
		return "video"
	case RPC:
		return "rpc"
	default:
		return "bulk"
	}
}

// prng is an 8-byte xorshift64* generator. Sessions cannot afford a
// math/rand.Rand (its source alone is ~5 KB — at a million sessions that is
// gigabytes); this provides the few uniform/exponential draws a session
// needs with per-session determinism.
type prng uint64

func newPRNG(seed uint64) prng {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return prng(z)
}

func (p *prng) next() uint64 {
	x := uint64(*p)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*p = prng(x)
	return x
}

// f64 returns a uniform draw in [0, 1).
func (p *prng) f64() float64 { return float64(p.next()>>11) / (1 << 53) }

// expTime returns an exponential draw with the given mean.
func (p *prng) expTime(mean netsim.Time) netsim.Time {
	u := p.f64()
	if u <= 0 {
		u = 1.0 / (1 << 53)
	}
	d := -math.Log(u) * float64(mean)
	return netsim.Time(d)
}

// Metrics aggregates one actor population's client-side accounting. A
// Metrics value must only be shared by sessions whose client hosts live in
// the same partition (the scenario harness keeps one per host per class) and
// merged single-threaded after the run, in deterministic order.
type Metrics struct {
	Sessions    int64
	Requests    int64
	Responses   int64
	BytesDown   int64 // unique response payload delivered to clients
	Rebuffers   int64 // video: chunks that missed their playback slot
	BitrateSum  int64 // video: sum of delivered-chunk bitrates (bps)
	IncastSkips int64 // forced fires dropped because the session was busy
	// Lat holds response latencies in nanoseconds: request issue → last
	// response byte (for RPC, the slowest of the fan-out).
	Lat *stats.Dist
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics { return &Metrics{Lat: stats.NewDist(256)} }

// Merge folds o into m. Call only after the run, in deterministic order.
func (m *Metrics) Merge(o *Metrics) {
	m.Sessions += o.Sessions
	m.Requests += o.Requests
	m.Responses += o.Responses
	m.BytesDown += o.BytesDown
	m.Rebuffers += o.Rebuffers
	m.BitrateSum += o.BitrateSum
	m.IncastSkips += o.IncastSkips
	m.Lat.Merge(o.Lat)
}

// Conn is one client connection of a session: the request stream it pushes
// and the response stream it consumes. The server-side halves are wired by
// New and never referenced afterwards.
type Conn struct {
	sess   *Session
	up     *tcp.Sender
	downRx *tcp.Receiver
	remain int64 // response bytes still expected on this connection
}

// onBytes consumes newly delivered response payload (client partition).
func (c *Conn) onBytes(n int, now netsim.Time) {
	s := c.sess
	s.m.BytesDown += int64(n)
	if c.remain <= 0 {
		return
	}
	c.remain -= int64(n)
	if c.remain > 0 {
		return
	}
	s.onRespDone(now)
}

// Opts configures one session.
type Opts struct {
	Class  Class
	Client *tcp.Host
	// Servers the session talks to: exactly one for Web/Video/Bulk, the
	// fan-out set for RPC.
	Servers []*tcp.Host
	// BaseFlow is the start of this session's flow-ID block; the session
	// uses BaseFlow+1 .. BaseFlow+2·len(Servers) (an up/down pair per
	// server).
	BaseFlow netsim.FlowID
	// Seed drives the session-private prng.
	Seed uint64
	// CC constructs a fresh congestion controller per flow.
	CC func() tcp.CongestionControl
	// Metrics receives this session's accounting; one collector may be
	// shared by all sessions with client hosts in the same partition.
	Metrics *Metrics

	// ThinkMean is the mean think/inter-call time (Web, RPC; optional
	// pause for Bulk).
	ThinkMean netsim.Time
	// ReqBytes is the request message size; it should stay ≤ one MSS so
	// the responder sees the whole request when the tagged segment lands.
	ReqBytes int64
	// RespDist draws Web response sizes.
	RespDist *workload.SizeDist
	// RespBytes is the per-server response size (RPC) or item size (Bulk).
	RespBytes int64
	// ChunkDur and Ladder configure Video: chunk playback duration and the
	// bitrate ladder (bps, ascending).
	ChunkDur netsim.Time
	Ladder   []int64
}

// Session is one user's state machine. All fields are client-partition
// state; nothing outside the package may touch them while the engine runs.
type Session struct {
	cls Class
	eng *netsim.Engine
	rng prng
	m   *Metrics

	conns []Conn

	think     netsim.Time
	reqBytes  int64
	respDist  *workload.SizeDist
	respBytes int64
	chunkDur  netsim.Time
	ladder    []int64

	busy        bool
	outstanding int         // RPC: responses still pending this fan-out
	reqAt       netsim.Time // when the current request was issued
	ladderIdx   int         // video: current rung
	playhead    netsim.Time // video: deadline of the chunk being fetched
	launched    bool

	issueFn func() // bound once; every timer schedules this
}

// New builds a session and registers its flows with the client and server
// hosts. Must run at setup time (before the engine starts); the session is
// dormant until Launch.
func New(o Opts) *Session {
	if len(o.Servers) == 0 {
		panic("actor: session needs at least one server")
	}
	if o.Class != RPC && len(o.Servers) != 1 {
		panic("actor: only RPC sessions fan out to multiple servers")
	}
	if o.ReqBytes <= 0 || o.ReqBytes > netsim.MSS {
		panic("actor: ReqBytes must be in 1..MSS")
	}
	if o.Class == Web && o.RespDist == nil {
		panic("actor: Web needs RespDist")
	}
	if (o.Class == RPC || o.Class == Bulk) && o.RespBytes <= 0 {
		panic("actor: RPC/Bulk need RespBytes")
	}
	if o.Class == Video && (o.ChunkDur <= 0 || len(o.Ladder) == 0) {
		panic("actor: Video needs ChunkDur and Ladder")
	}
	if o.Metrics == nil {
		panic("actor: nil Metrics")
	}
	s := &Session{
		cls: o.Class, eng: o.Client.Eng, rng: newPRNG(o.Seed), m: o.Metrics,
		think: o.ThinkMean, reqBytes: o.ReqBytes, respDist: o.RespDist,
		respBytes: o.RespBytes, chunkDur: o.ChunkDur, ladder: o.Ladder,
	}
	s.issueFn = s.issueRequest
	s.conns = make([]Conn, len(o.Servers))
	for i, srv := range o.Servers {
		upID := o.BaseFlow + netsim.FlowID(2*i+1)
		downID := o.BaseFlow + netsim.FlowID(2*i+2)
		c := &s.conns[i]
		c.sess = s
		// Client half.
		c.up = tcp.NewSender(o.Client, upID, srv.ID, 0, o.CC())
		c.downRx = tcp.NewReceiver(o.Client, downID, srv.ID)
		c.downRx.OnDeliver = c.onBytes
		// Server half: a dumb responder — any request tag is a response
		// size to push back. Its only state is the down sender, owned by
		// the server partition where OnApp fires.
		down := tcp.NewSender(srv, downID, o.Client.ID, 0, o.CC())
		upRx := tcp.NewReceiver(srv, upID, o.Client.ID)
		upRx.OnApp = func(tag int64, now netsim.Time) { down.Push(tag, 0) }
		// Mark both streams app-limited BEFORE starting them: a started
		// Size==0 sender without the mark is an unbounded source.
		c.up.MarkAppLimited()
		down.MarkAppLimited()
		c.up.Start()
		down.Start()
	}
	s.m.Sessions++
	return s
}

// Flows returns the number of tcp flows the session registered.
func (s *Session) Flows() int { return 2 * len(s.conns) }

// Launch schedules the session's first request at the given absolute time.
// Call at setup time only.
func (s *Session) Launch(at netsim.Time) {
	if s.launched {
		panic("actor: session launched twice")
	}
	s.launched = true
	s.eng.At(at, s.issueFn)
}

// Fire schedules a forced request at the given absolute time — the incast
// burst mechanism. If the session is mid-request when it fires, the burst is
// skipped and counted in Metrics.IncastSkips. Call at setup time only.
func (s *Session) Fire(at netsim.Time) {
	s.eng.At(at, s.issueFn)
}

// issueRequest starts one request cycle (client partition).
func (s *Session) issueRequest() {
	if s.busy {
		s.m.IncastSkips++
		return
	}
	s.busy = true
	s.reqAt = s.eng.Now()
	s.m.Requests++
	switch s.cls {
	case Web:
		size := s.respDist.SampleU(s.rng.f64())
		s.conns[0].remain = size
		s.conns[0].up.Push(s.reqBytes, size)
	case Video:
		size := s.chunkBytes()
		s.conns[0].remain = size
		s.conns[0].up.Push(s.reqBytes, size)
	case RPC:
		s.outstanding = len(s.conns)
		for i := range s.conns {
			s.conns[i].remain = s.respBytes
			s.conns[i].up.Push(s.reqBytes, s.respBytes)
		}
	case Bulk:
		s.conns[0].remain = s.respBytes
		s.conns[0].up.Push(s.reqBytes, s.respBytes)
	}
}

// chunkBytes sizes a video chunk at the current rung.
func (s *Session) chunkBytes() int64 {
	b := s.ladder[s.ladderIdx] * int64(s.chunkDur) / (8 * int64(netsim.Second))
	if b < 1 {
		b = 1
	}
	return b
}

// onRespDone finishes one request cycle (client partition): record latency,
// adapt (video), and schedule the next request.
func (s *Session) onRespDone(now netsim.Time) {
	if s.cls == RPC {
		s.outstanding--
		if s.outstanding > 0 {
			return
		}
	}
	lat := now - s.reqAt
	s.m.Responses++
	s.m.Lat.Add(float64(lat))
	s.busy = false
	switch s.cls {
	case Web:
		s.eng.After(s.rng.expTime(s.think), s.issueFn)
	case RPC:
		s.eng.After(s.rng.expTime(s.think), s.issueFn)
	case Bulk:
		if s.think > 0 {
			s.eng.After(s.rng.expTime(s.think), s.issueFn)
		} else {
			s.issueRequest()
		}
	case Video:
		s.m.BitrateSum += s.ladder[s.ladderIdx]
		s.adaptLadder(lat)
		// Playback model: the chunk just delivered plays for chunkDur; the
		// next chunk is due at the playhead. Completing after the playhead
		// is a rebuffer and resets the clock. The client keeps one chunk
		// of buffer: it requests the next chunk a full chunk duration
		// before its deadline.
		if s.playhead == 0 || now > s.playhead {
			if s.playhead != 0 {
				s.m.Rebuffers++
			}
			s.playhead = now + s.chunkDur
		} else {
			s.playhead += s.chunkDur
		}
		next := s.playhead - s.chunkDur
		if next < now {
			next = now
		}
		s.eng.At(next, s.issueFn)
	}
}

// adaptLadder is the throughput-rule ABR: pick the highest rung whose rate
// fits in 80% of the measured download throughput.
func (s *Session) adaptLadder(lat netsim.Time) {
	if lat <= 0 {
		s.ladderIdx = len(s.ladder) - 1
		return
	}
	tput := float64(s.chunkBytes()*8) * float64(netsim.Second) / float64(lat)
	idx := 0
	for i, r := range s.ladder {
		if float64(r) <= 0.8*tput {
			idx = i
		}
	}
	s.ladderIdx = idx
}
