//go:build race

package actor

// raceEnabled reports whether the race detector is instrumenting this build.
const raceEnabled = true
