package actor

import (
	"testing"

	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/tcp"
	"github.com/liteflow-sim/liteflow/internal/workload"
)

// TestActorSteadyStateAllocBound guards the actor hot loop: once sessions
// are warm (pools primed, Dist and message-queue capacity grown), each
// request/response cycle must stay near allocation-free. The request path
// reuses pooled packets, freelisted segments and bound closures; the only
// amortized growth left is slice doubling in the latency Dist and engine
// queues, so the bound is a small constant per simulated stretch rather
// than zero.
func TestActorSteadyStateAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; guard runs in the plain job")
	}
	eng := netsim.NewEngine()
	f := fabric(eng)
	m := NewMetrics()
	for i := 0; i < 4; i++ {
		s := New(Opts{
			Class: Web, Client: f.Hosts[i], Servers: []*tcp.Host{f.Hosts[4+i]},
			BaseFlow: netsim.FlowID(100 * i), Seed: uint64(i + 1), CC: dctcp, Metrics: m,
			ThinkMean: 2 * netsim.Millisecond, ReqBytes: 300,
			RespDist: workload.WebSearch(),
		})
		s.Launch(0)
	}
	eng.RunUntil(2 * netsim.Second) // warm: ~thousands of request cycles
	if m.Responses < 500 {
		t.Fatalf("only %d responses after warmup; alloc measurement is vacuous", m.Responses)
	}
	next := eng.Now()
	before := m.Responses
	allocs := testing.AllocsPerRun(20, func() {
		next += 10 * netsim.Millisecond
		eng.RunUntil(next)
	})
	cycles := float64(m.Responses-before) / 20
	if cycles < 1 {
		t.Fatal("no request cycles during measurement")
	}
	// Allow amortized slice growth only: well under one alloc per cycle.
	if allocs/cycles > 0.5 {
		t.Errorf("actor steady state allocates %.2f allocs per request cycle (%.1f allocs/run over %.1f cycles), want < 0.5",
			allocs/cycles, allocs, cycles)
	}
}
