package fleet

import (
	"testing"

	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netlink"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/obs"
)

// addLateMember enrolls one more member on an already-started rig, mirroring
// newFleetRig's member construction.
func (r *fleetRig) addLateMember(t *testing.T) *Member {
	t.Helper()
	ccfg := core.DefaultConfig()
	ccfg.FlowCacheTimeout = 0
	cpu := ksim.NewCPU(r.eng, 4)
	c := core.NewCore(r.eng, cpu, ksim.DefaultCosts(), ccfg)
	ch := netlink.NewChannel(r.eng, cpu, ksim.DefaultCosts(), nil)
	m, err := r.ctrl.AddMember(c, ch)
	if err != nil {
		t.Fatalf("AddMember after Start: %v", err)
	}
	r.cores = append(r.cores, c)
	r.chans = append(r.chans, ch)
	return m
}

// stagedRig is newFleetRig plus a canary-gated config: epoch mints install to
// the first CanaryCount members, observe for CanaryWindow, then release or
// roll back.
func stagedRig(t *testing.T, n, canaries int, fr *obs.FlightRecorder) *fleetRig {
	t.Helper()
	return newFleetRig(t, n, Config{
		BatchInterval:       10 * netsim.Millisecond,
		AggregationInterval: 10 * netsim.Millisecond,
		CanaryCount:         canaries,
		CanaryWindow:        40 * netsim.Millisecond,
		Flight:              fr,
	}, nil)
}

// TestCanaryStagedReleaseFailOpen: with no flight recorder the verdict has no
// evidence and passes fail-open — but the rollout must still be staged: the
// canary member activates the new epoch strictly before any non-canary
// member, and the release wave brings the rest to parity afterward.
func TestCanaryStagedReleaseFailOpen(t *testing.T) {
	r := stagedRig(t, 3, 1, nil)
	defer r.ctrl.Stop()
	r.feedAll(10*netsim.Millisecond, 400*netsim.Millisecond)
	r.eng.At(150*netsim.Millisecond, func() { r.user.net.Layers[1].B[0] += 0.5 })

	staged := false // observed: canary ahead of a non-canary mid-rollout
	var probe func()
	probe = func() {
		es := r.ctrl.MemberEpochs()
		if es[0] > es[1] && es[0] > es[2] {
			staged = true
		}
		if r.eng.Now() < 400*netsim.Millisecond {
			r.eng.After(netsim.Millisecond, probe)
		}
	}
	r.eng.At(150*netsim.Millisecond, probe)
	r.eng.RunUntil(500 * netsim.Millisecond)

	st := r.ctrl.Stats()
	if st.Epoch != 2 || st.ReleasedEpoch != 2 {
		t.Fatalf("drift must mint and release epoch 2: %+v", st)
	}
	if st.CanaryPasses != 1 || st.CanaryFails != 0 || st.Rollbacks != 0 {
		t.Fatalf("verdict must pass fail-open exactly once: %+v", st)
	}
	if !staged {
		t.Error("rollout was not staged: canary never led the non-canary members")
	}
	for i, e := range r.ctrl.MemberEpochs() {
		if e != 2 {
			t.Errorf("member %d epoch = %d, want 2 after release", i, e)
		}
	}
	if len(r.ctrl.Blacklisted()) != 0 {
		t.Errorf("nothing should be blacklisted: %v", r.ctrl.Blacklisted())
	}
}

// TestCanaryFailRollsBackAndBlacklists: a degradation signal rising through
// the observation window must fail the verdict — the canary rolls back to the
// released version, the epoch is blacklisted, and non-canary members never
// move off the released epoch.
func TestCanaryFailRollsBackAndBlacklists(t *testing.T) {
	reg := obs.NewRegistry()
	sc := obs.New(reg, nil)
	degraded := sc.Counter("liteflow_core_degraded_total", "synthetic degradation signal")
	fr := obs.NewFlightRecorder(0)

	r := stagedRig(t, 3, 1, fr)
	defer r.ctrl.Stop()

	// Accelerating degradations: the counter's rate grows linearly with
	// time, so whatever windows the verdict picks, after > before.
	n := int64(0)
	var degTick func()
	degTick = func() {
		n++
		degraded.Add(n)
		fr.Sample(reg, int64(r.eng.Now()))
		if r.eng.Now() < 500*netsim.Millisecond {
			r.eng.After(5*netsim.Millisecond, degTick)
		}
	}
	r.eng.After(5*netsim.Millisecond, degTick)

	r.feedAll(10*netsim.Millisecond, 400*netsim.Millisecond)
	r.eng.At(150*netsim.Millisecond, func() { r.user.net.Layers[1].B[0] += 0.5 })
	r.eng.RunUntil(500 * netsim.Millisecond)

	st := r.ctrl.Stats()
	if st.CanaryFails < 1 || st.Rollbacks < 1 {
		t.Fatalf("verdict must fail and roll the canary back: %+v", st)
	}
	if st.CanaryPasses != 0 {
		t.Errorf("no epoch should have passed under a rising degradation signal: %+v", st)
	}
	if st.ReleasedEpoch != 1 || r.ctrl.Released() != 1 {
		t.Errorf("released epoch moved despite failing verdicts: %+v", st)
	}
	bl := r.ctrl.Blacklisted()
	if len(bl) < 1 {
		t.Fatalf("failed epochs must be blacklisted: %+v", st)
	}
	for _, e := range bl {
		if e <= 1 {
			t.Errorf("blacklisted epoch %d was never a candidate", e)
		}
	}
	for i, e := range r.ctrl.MemberEpochs() {
		if e != 1 {
			t.Errorf("member %d epoch = %d, want 1 (canary rolled back, rest never staged)", i, e)
		}
	}
	// Epoch numbering stays monotonic: a blacklisted epoch number is burned,
	// never re-minted.
	seen := map[int64]bool{}
	for _, e := range bl {
		if seen[e] {
			t.Errorf("epoch %d blacklisted twice — number was reused", e)
		}
		seen[e] = true
	}
}

// TestPinnedMemberSkipsFanOut: a pinned member holds its version through a
// fan-out (counted in the pinned gauge, excluded from staleness), and on
// unpin catches up through the ErrPastEvent late path — the wave's fan-out
// instant is long past, so the catch-up install joins the queue immediately
// and the late-catch-up counter ticks.
func TestPinnedMemberSkipsFanOut(t *testing.T) {
	r := newFleetRig(t, 3, Config{
		BatchInterval:       10 * netsim.Millisecond,
		AggregationInterval: 10 * netsim.Millisecond,
	}, nil)
	defer r.ctrl.Stop()
	pinned := r.ctrl.Members()[2]
	if err := pinned.Pin(7); err == nil {
		t.Fatal("Pin must reject an epoch the member does not have installed")
	}
	if err := pinned.Pin(1); err != nil {
		t.Fatalf("Pin(current epoch) failed: %v", err)
	}
	if !pinned.Pinned() {
		t.Fatal("member not pinned after Pin")
	}

	r.feedAll(10*netsim.Millisecond, 500*netsim.Millisecond)
	r.eng.At(150*netsim.Millisecond, func() { r.user.net.Layers[1].B[0] += 0.5 })
	r.eng.RunUntil(300 * netsim.Millisecond)

	st := r.ctrl.Stats()
	if st.Epoch != 2 {
		t.Fatalf("drift must mint epoch 2: %+v", st)
	}
	if got := r.ctrl.MemberEpochs(); got[0] != 2 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("pinned member must hold epoch 1: %v", got)
	}
	if st.PinnedMembers != 1 {
		t.Errorf("PinnedMembers = %d, want 1", st.PinnedMembers)
	}
	if st.StaleMembers != 0 {
		t.Errorf("pinned member counted stale: %+v", st)
	}

	pinned.Unpin()
	r.eng.RunUntil(500 * netsim.Millisecond)
	st = r.ctrl.Stats()
	if got := r.ctrl.MemberEpochs(); got[2] != 2 {
		t.Fatalf("unpinned member must catch up: %v", got)
	}
	if st.LateCatchUps < 1 {
		t.Errorf("catch-up after the wave drained must take the ErrPastEvent late path: %+v", st)
	}
	if st.PinnedMembers != 0 {
		t.Errorf("PinnedMembers = %d after Unpin, want 0", st.PinnedMembers)
	}
}

// TestStopAbandonsInstallMachinery: Stop mid-wave must abandon the queued
// tail, abort the in-flight transfer's callback, close the wave span, and
// freeze member epochs — nothing may register or activate after Stop.
func TestStopAbandonsInstallMachinery(t *testing.T) {
	r := newFleetRig(t, 6, Config{
		BatchInterval:         10 * netsim.Millisecond,
		AggregationInterval:   10 * netsim.Millisecond,
		MaxConcurrentInstalls: 1,
	}, nil)
	r.feedAll(10*netsim.Millisecond, 300*netsim.Millisecond)
	r.eng.At(100*netsim.Millisecond, func() { r.user.net.Layers[1].B[0] += 0.5 })

	var epochsAtStop []int64
	queuedAtStop, inFlightAtStop := 0, 0
	var probe func()
	probe = func() {
		if r.ctrl.inFlight > 0 && len(r.ctrl.queue) > 0 {
			queuedAtStop = len(r.ctrl.queue)
			inFlightAtStop = r.ctrl.inFlight
			epochsAtStop = r.ctrl.MemberEpochs()
			r.ctrl.Stop()
			return
		}
		if r.eng.Now() < 300*netsim.Millisecond {
			r.eng.After(50*netsim.Microsecond, probe)
		}
	}
	r.eng.At(100*netsim.Millisecond, probe)
	r.eng.RunUntil(400 * netsim.Millisecond)

	if epochsAtStop == nil {
		t.Fatal("never caught the controller mid-wave; test setup broken")
	}
	if got := r.ctrl.MemberEpochs(); !equalEpochs(got, epochsAtStop) {
		t.Errorf("member epochs moved after Stop: at stop %v, now %v", epochsAtStop, got)
	}
	st := r.ctrl.Stats()
	want := int64(queuedAtStop + inFlightAtStop)
	if st.InstallsAbandoned != want {
		t.Errorf("InstallsAbandoned = %d, want %d (%d queued + %d in flight at Stop)",
			st.InstallsAbandoned, want, queuedAtStop, inFlightAtStop)
	}
	if len(r.ctrl.queue) != 0 || r.ctrl.wave != nil || r.ctrl.phase != phaseIdle {
		t.Errorf("install machinery still live after Stop: queue=%d wave=%v phase=%d",
			len(r.ctrl.queue), r.ctrl.wave != nil, r.ctrl.phase)
	}
}

func equalEpochs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCatchUpSupersededParkedEpoch: a member that parked epoch N while the
// fleet went on to release N+1 must never activate the stale N — its first
// post-recovery batch discards the parked target and re-enqueues an install
// of the released version, through the late-catch-up path.
func TestCatchUpSupersededParkedEpoch(t *testing.T) {
	r := newFleetRig(t, 3, Config{
		BatchInterval:       10 * netsim.Millisecond,
		AggregationInterval: 10 * netsim.Millisecond,
	}, nil)
	defer r.ctrl.Stop()
	r.feedAll(10*netsim.Millisecond, 600*netsim.Millisecond)
	r.eng.At(150*netsim.Millisecond, func() { r.user.net.Layers[1].B[0] += 0.5 })
	r.eng.At(300*netsim.Millisecond, func() { r.user.net.Layers[1].B[0] -= 0.7 })
	r.eng.RunUntil(450 * netsim.Millisecond)
	if got := r.ctrl.Released(); got != 3 {
		t.Fatalf("two drifts must release epoch 3, got %d (stats %+v)", got, r.ctrl.Stats())
	}

	// Rewind member 2 into the straggler state: it parked epoch 2 on a
	// degraded core back then and missed the epoch-3 wave entirely.
	m := r.ctrl.members[2]
	m.epoch = 2
	m.parkedEpoch = 2
	late := r.ctrl.Stats().LateCatchUps

	epochs := map[int64]bool{}
	var probe func()
	probe = func() {
		epochs[m.epoch] = true
		if r.eng.Now() < 600*netsim.Millisecond {
			r.eng.After(100*netsim.Microsecond, probe)
		}
	}
	probe()
	r.eng.RunUntil(600 * netsim.Millisecond)

	if m.Epoch() != 3 {
		t.Fatalf("member must catch up to the released epoch 3, at %d", m.Epoch())
	}
	if m.parkedEpoch != 0 {
		t.Errorf("superseded parked epoch not discarded: %d", m.parkedEpoch)
	}
	if epochs[1] {
		t.Error("member regressed to epoch 1 during catch-up")
	}
	if got := r.ctrl.Stats().LateCatchUps; got <= late {
		t.Errorf("superseded catch-up must take the ErrPastEvent late path: %d -> %d", late, got)
	}
}

// TestAddMemberAfterStartJoinsLive: a member enrolled after Start must be
// provisioned with the released version and start batching immediately — not
// sit at epoch 0 inflating the staleness gauge (the old zombie-member bug).
func TestAddMemberAfterStartJoinsLive(t *testing.T) {
	r := newFleetRig(t, 2, Config{
		BatchInterval:       10 * netsim.Millisecond,
		AggregationInterval: 10 * netsim.Millisecond,
	}, nil)
	defer r.ctrl.Stop()

	m := r.addLateMember(t)
	if got := m.Epoch(); got != 1 {
		t.Fatalf("late joiner epoch = %d, want the released epoch 1", got)
	}
	if st := r.ctrl.Stats(); st.StaleMembers != 0 {
		t.Fatalf("late joiner counted stale: %+v", st)
	}

	// Its batches must flow (StartBatching was called for it) and it must
	// ride the next fan-out to parity like everyone else.
	r.feedAll(10*netsim.Millisecond, 400*netsim.Millisecond)
	r.eng.At(150*netsim.Millisecond, func() { r.user.net.Layers[1].B[0] += 0.5 })
	r.eng.RunUntil(500 * netsim.Millisecond)

	st := r.ctrl.Stats()
	if st.Epoch != 2 {
		t.Fatalf("drift must mint epoch 2: %+v", st)
	}
	for i, e := range r.ctrl.MemberEpochs() {
		if e != 2 {
			t.Errorf("member %d epoch = %d, want 2 (late joiner must ride fan-outs)", i, e)
		}
	}
}
