// Package fleet is the snapshot distribution plane: one userspace slow path
// serving many kernel datapaths. The paper's service (§4.1) adapts a model
// for exactly one core; the ROADMAP's production target — millions of users —
// needs one Controller that owns the Freezer/Evaluator/Adapter, aggregates
// sample batches across N per-host (Core, netlink.Channel) members, runs the
// correctness and necessity gates once on the pooled stream, and fans
// versioned snapshot installs back out.
//
// Versioning and staleness: every fan-out bumps a fleet-wide epoch; each
// member records the epoch it last activated (liteflow_fleet_member_epoch)
// and the controller gauges how many members lag the released epoch
// (liteflow_fleet_stale_members). Install concurrency is bounded
// (Config.MaxConcurrentInstalls), so a large fleet rolls out in waves rather
// than bursting the control plane. A member inside an outage or degraded
// window parks the install — the module stays registered as that member's
// standby (core.ErrDegraded semantics) — and catches up on its first
// post-recovery batch, either activating the parked standby (still the
// released version) or re-enqueueing an install of the released version
// (superseded meanwhile).
//
// Staged rollouts (DESIGN.md §4i): with canary gating enabled, a minted
// epoch first installs only to a deterministic cohort (the lowest non-pinned
// member indices), the controller observes per-member flight-recorder deltas
// over Config.CanaryWindow against the pre-install window, and only a
// passing verdict releases the remaining members. A failing verdict rolls
// the canaries back to the retained previous version, blacklists the epoch,
// and the next aggregation rounds mint a fresh candidate. Members may also be
// pinned (Member.Pin) to opt out of fan-outs entirely.
//
// Determinism (DESIGN.md §4d): member batches are pooled in ascending member
// index order on every aggregation tick, the fan-out queue and the canary
// cohort are filled in the same order, verdicts fire on the single-goroutine
// engine clock, and the flight-recorder reduction iterates series in sorted
// name order, so a fleet run is byte-identical across repetitions and
// serial-vs-parallel harnesses.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/fault"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netlink"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/obs"
	"github.com/liteflow-sim/liteflow/internal/opt"
	"github.com/liteflow-sim/liteflow/internal/quant"
)

// Config tunes the distribution plane.
type Config struct {
	// BatchInterval is each member channel's kernel→controller delivery
	// period (the paper's T). Zero means 100 ms.
	BatchInterval netsim.Time
	// AggregationInterval is the pooled adapt/gate cadence. Zero means
	// BatchInterval.
	AggregationInterval netsim.Time
	// MaxConcurrentInstalls bounds how many member installs may be in
	// flight simultaneously during a fan-out wave. Zero means 4.
	MaxConcurrentInstalls int
	// NamePrefix names generated snapshot modules (suffix is the epoch).
	// Zero means "fleet".
	NamePrefix string

	// CanaryCount stages each minted epoch to the first CanaryCount
	// non-pinned members (lowest indices — deterministic per §4d) before
	// releasing the rest. Zero defers to CanaryFraction; if both are zero,
	// or the cohort would cover the whole fleet, epochs fan out unstaged.
	CanaryCount int
	// CanaryFraction stages ceil(fraction × eligible members) canaries when
	// CanaryCount is zero.
	CanaryFraction float64
	// CanaryWindow is how long the controller observes the canary cohort
	// before the verdict, and how far back the pre-install baseline window
	// reaches. Zero disables staging entirely.
	CanaryWindow netsim.Time
	// Flight is the recorder the verdict reads member health from. A nil
	// recorder (or one with no matching series) makes verdicts pass
	// fail-open — the gate cannot see, so it does not block.
	Flight *obs.FlightRecorder
	// CanaryMinGoodputRatio fails the verdict when a canary's query rate
	// over the observation window drops below this fraction of its
	// pre-install rate. Zero means 0.9.
	CanaryMinGoodputRatio float64
	// CanaryMaxLatencyRatio fails the verdict when a canary's query-latency
	// p99 estimate grows beyond this multiple of its pre-install value.
	// Zero means 1.5.
	CanaryMaxLatencyRatio float64
}

func (c Config) withDefaults() Config {
	if c.BatchInterval <= 0 {
		c.BatchInterval = 100 * netsim.Millisecond
	}
	if c.AggregationInterval <= 0 {
		c.AggregationInterval = c.BatchInterval
	}
	if c.MaxConcurrentInstalls <= 0 {
		c.MaxConcurrentInstalls = 4
	}
	if c.NamePrefix == "" {
		c.NamePrefix = "fleet"
	}
	if c.CanaryMinGoodputRatio <= 0 {
		c.CanaryMinGoodputRatio = 0.9
	}
	if c.CanaryMaxLatencyRatio <= 0 {
		c.CanaryMaxLatencyRatio = 1.5
	}
	return c
}

// staged reports whether canary gating is configured at all (the per-wave
// cohort can still degenerate to unstaged when it would cover the fleet).
func (c Config) staged() bool {
	return c.CanaryWindow > 0 && (c.CanaryCount > 0 || c.CanaryFraction > 0)
}

// Stats is a snapshot of the controller's counters.
type Stats struct {
	Members            int
	Epoch              int64 // latest minted epoch (may still be in canary)
	ReleasedEpoch      int64 // latest epoch released to the whole fleet
	StaleMembers       int
	PinnedMembers      int
	Aggregations       int64 // pooled adapt rounds with at least one sample
	Batches            int64 // member batches accepted
	Samples            int64 // samples pooled across all members
	Converged          int64 // aggregation rounds that passed the correctness gate
	FidelityChecks     int64 // necessity evaluations on the pooled stream
	SkippedByNecessity int64
	VersionsBuilt      int64 // fleet epochs minted (one module each)
	BuildFailures      int64
	MemberInstalls     int64 // per-member installs activated
	InstallsParked     int64 // member installs parked on a degraded core
	InstallsAbandoned  int64 // member installs dropped (rejection, closed channel, Stop)
	InstallsDeferred   int64 // build rounds deferred because a fan-out was in flight
	CanaryPasses       int64 // staged epochs released after a healthy observation window
	CanaryFails        int64 // staged epochs blacklisted by the verdict
	Rollbacks          int64 // canary members rolled back to the prior version
	OutageDrops        int64 // member batches dropped inside injected outages
	LateCatchUps       int64 // catch-up installs enqueued after the wave fan-out time passed
	Malformed          int64
	FidelityMismatches int64
	LastStability      float64
	LastFidelity       float64
}

type fleetMetrics struct {
	aggregations   *obs.Counter
	batches        *obs.Counter
	samples        *obs.Counter
	converged      *obs.Counter
	fidelityChecks *obs.Counter
	skipped        *obs.Counter
	versions       *obs.Counter
	buildFailures  *obs.Counter
	installs       *obs.Counter
	parked         *obs.Counter
	abandoned      *obs.Counter
	deferred       *obs.Counter
	canaryPass     *obs.Counter
	canaryFail     *obs.Counter
	rollbacks      *obs.Counter
	outageDrops    *obs.Counter
	lateCatchUps   *obs.Counter
	malformed      *obs.Counter
	mismatched     *obs.Counter
	staleMembers   *obs.Gauge
	pinnedMembers  *obs.Gauge
	releasedEpoch  *obs.Gauge
	lastStability  *obs.Gauge
	lastFidelity   *obs.Gauge
}

func newFleetMetrics(sc obs.Scope) fleetMetrics {
	return fleetMetrics{
		aggregations:   sc.Counter("liteflow_fleet_aggregations_total", "pooled adapt rounds with at least one sample"),
		batches:        sc.Counter("liteflow_fleet_batches_total", "member sample batches accepted by the controller"),
		samples:        sc.Counter("liteflow_fleet_samples_total", "samples pooled across all members"),
		converged:      sc.Counter("liteflow_fleet_converged_total", "aggregation rounds that passed the correctness gate"),
		fidelityChecks: sc.Counter("liteflow_fleet_fidelity_checks_total", "necessity evaluations on the pooled stream"),
		skipped:        sc.Counter("liteflow_fleet_skipped_by_necessity_total", "builds skipped because pooled fidelity loss was below threshold"),
		versions:       sc.Counter("liteflow_fleet_versions_total", "fleet snapshot epochs minted"),
		buildFailures:  sc.Counter("liteflow_fleet_build_failures_total", "snapshot build failures (the next aggregation round retries)"),
		installs:       sc.Counter("liteflow_fleet_member_installs_total", "per-member snapshot installs activated"),
		parked:         sc.Counter("liteflow_fleet_installs_parked_total", "member installs parked on a degraded core until recovery"),
		abandoned:      sc.Counter("liteflow_fleet_installs_abandoned_total", "member installs dropped: module rejected, channel closed, or controller stopped"),
		deferred:       sc.Counter("liteflow_fleet_installs_deferred_total", "build rounds deferred because a fan-out was still in flight"),
		canaryPass:     sc.Counter("liteflow_fleet_canary_pass_total", "staged epochs released after a healthy canary observation window"),
		canaryFail:     sc.Counter("liteflow_fleet_canary_fail_total", "staged epochs blacklisted by a failing canary verdict"),
		rollbacks:      sc.Counter("liteflow_fleet_rollbacks_total", "canary members rolled back to the prior released version"),
		outageDrops:    sc.Counter("liteflow_fleet_outage_drops_total", "member batches dropped inside injected outages"),
		lateCatchUps:   sc.Counter("liteflow_fleet_late_catchups_total", "catch-up installs enqueued immediately because the wave fan-out time had passed"),
		malformed:      sc.Counter("liteflow_fleet_malformed_total", "member messages rejected by sample validation"),
		mismatched:     sc.Counter("liteflow_fleet_fidelity_size_mismatch_total", "pooled fidelity samples skipped for output-size mismatch"),
		staleMembers:   sc.Gauge("liteflow_fleet_stale_members", "members whose installed epoch lags the released epoch"),
		pinnedMembers:  sc.Gauge("liteflow_fleet_pinned_members", "members pinned to a version and excluded from fan-outs"),
		releasedEpoch:  sc.Gauge("liteflow_fleet_released_epoch", "latest epoch released to the whole fleet"),
		lastStability:  sc.Gauge("liteflow_fleet_last_stability", "stability metric from the latest pooled round"),
		lastFidelity:   sc.Gauge("liteflow_fleet_last_fidelity", "minimal pooled fidelity loss from the latest necessity check"),
	}
}

// Member is one kernel datapath served by the controller.
type Member struct {
	Index int
	Core  *core.Core
	Chan  *netlink.Channel

	epoch       int64 // last activated fleet epoch
	parkedEpoch int64 // epoch of a standby parked by degradation (0 = none)
	installing  bool
	pinned      bool
	pending     []core.Sample

	ctrl       *Controller
	inj        *fault.Injector
	epochGauge *obs.Gauge
}

// Epoch returns the fleet epoch this member last activated.
func (m *Member) Epoch() int64 { return m.epoch }

// Pinned reports whether the member is pinned to its installed version.
func (m *Member) Pinned() bool { return m.pinned }

// Pin freezes the member at epoch, which must be the version it currently
// has installed — pinning is "hold what you have", not a request to install
// something else. Pinned members are skipped by fan-outs, canary cohorts,
// releases, and catch-up, and are not counted stale; they keep sampling (their
// traffic still informs adaptation). Returns an error if epoch is not the
// member's installed epoch.
func (m *Member) Pin(epoch int64) error {
	if epoch != m.epoch {
		return fmt.Errorf("fleet: member %d is at epoch %d, cannot pin epoch %d", m.Index, m.epoch, epoch)
	}
	if !m.pinned {
		m.pinned = true
		m.ctrl.sc.Event2("fleet", "pin", m.ctrl.eng.Now(), "member", int64(m.Index), "epoch", epoch)
		m.ctrl.updateStale()
	}
	return nil
}

// Unpin re-enrolls the member in fan-outs. It rejoins at its next catch-up
// (or the next minted wave) rather than being installed synchronously.
func (m *Member) Unpin() {
	if !m.pinned {
		return
	}
	m.pinned = false
	m.ctrl.sc.Event2("fleet", "unpin", m.ctrl.eng.Now(), "member", int64(m.Index), "epoch", m.epoch)
	m.ctrl.updateStale()
}

// installJob is one queued member install of a specific version. rollback
// jobs re-install the retained previous version after a failed canary.
type installJob struct {
	m        *Member
	mod      *codegen.Module
	prog     *quant.Program
	epoch    int64
	rollback bool
}

// version ties an epoch to its built module and the userspace reference
// program. The controller retains the released version (rel) alongside the
// latest minted one (cur) so a failed canary has something to roll back to.
type version struct {
	epoch int64
	mod   *codegen.Module
	prog  *quant.Program
}

// wavePhase is the rollout state machine (DESIGN.md §4i). Transitions happen
// either when the install queue drains (onDrained) or when the canary
// observation timer fires (canaryVerdict).
type wavePhase int

const (
	phaseIdle     wavePhase = iota // no wave in flight; builds may mint
	phaseFanOut                    // unstaged wave installing to all members
	phaseCanary                    // staged wave installing to the cohort
	phaseObserve                   // cohort live; watching flight deltas
	phaseRelease                   // verdict passed; installing the rest
	phaseRollback                  // verdict failed; restoring the cohort
)

// Controller is the fleet's single slow path.
type Controller struct {
	eng     *netsim.Engine
	cfg     Config
	coreCfg core.Config // gate parameters + quantization config

	freezer   core.Freezer
	evaluator core.Evaluator
	adapter   core.Adapter

	members    []*Member
	cur        version // latest minted version (may still be in canary)
	rel        version // latest version released to the whole fleet
	lastMinted int64   // monotonic epoch allocator (blacklisted epochs not reused)
	blacklist  []int64 // epochs rejected by canary verdicts, in mint order

	stabilityHist []float64
	queue         []installJob
	inFlight      int
	running       bool

	phase    wavePhase
	canaries []*Member   // cohort of the staged wave in flight
	obsStart netsim.Time // when the canary observation window opened

	// wave is the open rollout span: rooted at the first pooled aggregation
	// after the previous wave drained, versioned when buildAndFanOut mints
	// the epoch (waveEpoch), ended when the rollout resolves (released or
	// rolled back). Member installs emit as standalone spans keyed by the
	// same epoch pid, so the whole rollout renders as one tree across all
	// member tracks.
	spans     *obs.SpanTracer
	wave      *obs.Span
	waveEpoch int64
	fanStart  netsim.Time // fan-out instant of the released version (catch-up replay anchor)
	segStart  netsim.Time // start of the current enqueue burst (span children)

	sc  obs.Scope
	met fleetMetrics
}

// New returns a controller. coreCfg supplies the gate parameters (Alpha,
// OutMin/OutMax, StabilityWindow/Tolerance) and the quantization config used
// for snapshot generation; members keep their own core.Config for datapath
// concerns. opt.WithScope attaches telemetry.
func New(eng *netsim.Engine, coreCfg core.Config, f core.Freezer, e core.Evaluator, a core.Adapter, cfg Config, options ...opt.Option) *Controller {
	o := opt.Resolve(options)
	c := &Controller{
		eng: eng, cfg: cfg.withDefaults(), coreCfg: coreCfg,
		freezer: f, evaluator: e, adapter: a, sc: o.Scope,
	}
	c.met = newFleetMetrics(c.sc)
	c.spans = obs.NewSpanTracer(c.sc)
	return c
}

// AddMember enrolls one (core, channel) pair. The channel's delivery
// callback is replaced with the controller's aggregator, and the member
// core's watchdog (when configured) is armed — the controller is its slow
// path now. opt.WithFaults subjects this member's batch stream to injected
// outages (the controller drops its batches inside outage windows, which is
// the silence the member's watchdog detects).
//
// Members added after Start are provisioned as late joiners: the released
// version is registered and activated directly and batching begins
// immediately, so the member enters at epoch parity instead of sitting at
// epoch 0 inflating the staleness gauge. A late joiner whose core rejects the
// released module returns an error and is not enrolled.
func (c *Controller) AddMember(co *core.Core, ch *netlink.Channel, options ...opt.Option) (*Member, error) {
	o := opt.Resolve(options)
	m := &Member{Index: len(c.members), Core: co, Chan: ch, ctrl: c, inj: o.Faults}
	msc := c.sc.With(obs.Label{Key: "member", Value: strconv.Itoa(m.Index)}).WithTid(int64(m.Index) + 1)
	m.epochGauge = msc.Gauge("liteflow_fleet_member_epoch", "fleet epoch this member last activated")
	ch.SetDeliver(func(batch []netlink.Message) { c.handleMemberBatch(m, batch) })
	co.AttachSlowPath()
	if c.running {
		if _, err := co.RegisterModel(c.rel.mod); err != nil {
			return nil, fmt.Errorf("fleet: provision late member %d: %w", m.Index, err)
		}
		m.epoch = c.rel.epoch
		m.epochGauge.Set(float64(m.epoch))
		c.members = append(c.members, m)
		ch.StartBatching(c.cfg.BatchInterval)
		c.updateStale()
		c.sc.Event2("fleet", "late_join", c.eng.Now(), "member", int64(m.Index), "epoch", m.epoch)
		return m, nil
	}
	c.members = append(c.members, m)
	return m, nil
}

// Members returns the enrolled members in index order.
func (c *Controller) Members() []*Member { return c.members }

// Epoch returns the latest minted fleet epoch. During a staged rollout this
// runs ahead of Released; a failed canary reverts it to the released epoch.
func (c *Controller) Epoch() int64 { return c.cur.epoch }

// Released returns the latest epoch released to the whole fleet.
func (c *Controller) Released() int64 { return c.rel.epoch }

// Blacklisted returns the epochs rejected by canary verdicts, in mint order.
func (c *Controller) Blacklisted() []int64 { return append([]int64(nil), c.blacklist...) }

func (c *Controller) isBlacklisted(epoch int64) bool {
	for _, e := range c.blacklist {
		if e == epoch {
			return true
		}
	}
	return false
}

// StaleMembers returns how many members lag the released epoch. Canaries
// running ahead of the release and pinned members are not stale.
func (c *Controller) StaleMembers() int {
	stale := 0
	for _, m := range c.members {
		if m.epoch < c.rel.epoch && !m.pinned {
			stale++
		}
	}
	return stale
}

// MemberEpochs returns every member's installed epoch in index order.
func (c *Controller) MemberEpochs() []int64 {
	es := make([]int64, len(c.members))
	for i, m := range c.members {
		es[i] = m.epoch
	}
	return es
}

// Start provisions every member with the initial model (epoch 1, installed
// directly — provisioning predates the datapath, so there is no netlink
// transfer to model), then begins per-member batching and the aggregation
// tick chain. It returns an error if the initial snapshot cannot be built.
func (c *Controller) Start() error {
	if c.running {
		return nil
	}
	if len(c.members) == 0 {
		return fmt.Errorf("fleet: no members enrolled")
	}
	prog := quant.Quantize(c.freezer.Freeze(), c.coreCfg.Quant)
	mod, err := codegen.Build(prog, c.cfg.NamePrefix+"_1")
	if err != nil {
		return fmt.Errorf("fleet: initial snapshot: %w", err)
	}
	c.lastMinted = 1
	c.cur = version{epoch: 1, mod: mod, prog: prog}
	c.rel = c.cur
	c.met.releasedEpoch.Set(1)
	for _, m := range c.members {
		if _, err := m.Core.RegisterModel(mod); err != nil {
			return fmt.Errorf("fleet: provision member %d: %w", m.Index, err)
		}
		m.epoch = 1
		m.epochGauge.Set(1)
	}
	c.met.staleMembers.Set(0)
	c.running = true
	for _, m := range c.members {
		m.Chan.StartBatching(c.cfg.BatchInterval)
	}
	c.scheduleAggregation()
	return nil
}

// Stop halts the aggregation chain and member batching, and tears down the
// install machinery: the queued tail of any in-flight wave is abandoned
// (counted in installs_abandoned) and the open wave span is closed — without
// this, in-flight SendToKernel callbacks would keep registering and
// activating models on a controller the caller believes is dead.
func (c *Controller) Stop() {
	if !c.running {
		return
	}
	c.running = false
	if n := len(c.queue); n > 0 {
		c.met.abandoned.Add(int64(n))
		c.sc.Event1("fleet", "stop_abandons_queue", c.eng.Now(), "jobs", int64(n))
		c.queue = nil
	}
	if c.wave != nil {
		c.wave.EndFailed(c.eng.Now(), "stopped")
		c.wave, c.waveEpoch = nil, 0
	}
	c.phase = phaseIdle
	c.canaries = nil
	for _, m := range c.members {
		m.Chan.StopBatching()
		m.Core.StopWatchdog()
	}
}

// Stats returns a snapshot of the controller's counters.
func (c *Controller) Stats() Stats {
	pinned := 0
	for _, m := range c.members {
		if m.pinned {
			pinned++
		}
	}
	return Stats{
		Members:            len(c.members),
		Epoch:              c.cur.epoch,
		ReleasedEpoch:      c.rel.epoch,
		StaleMembers:       c.StaleMembers(),
		PinnedMembers:      pinned,
		Aggregations:       c.met.aggregations.Value(),
		Batches:            c.met.batches.Value(),
		Samples:            c.met.samples.Value(),
		Converged:          c.met.converged.Value(),
		FidelityChecks:     c.met.fidelityChecks.Value(),
		SkippedByNecessity: c.met.skipped.Value(),
		VersionsBuilt:      c.met.versions.Value(),
		BuildFailures:      c.met.buildFailures.Value(),
		MemberInstalls:     c.met.installs.Value(),
		InstallsParked:     c.met.parked.Value(),
		InstallsAbandoned:  c.met.abandoned.Value(),
		InstallsDeferred:   c.met.deferred.Value(),
		CanaryPasses:       c.met.canaryPass.Value(),
		CanaryFails:        c.met.canaryFail.Value(),
		Rollbacks:          c.met.rollbacks.Value(),
		OutageDrops:        c.met.outageDrops.Value(),
		LateCatchUps:       c.met.lateCatchUps.Value(),
		Malformed:          c.met.malformed.Value(),
		FidelityMismatches: c.met.mismatched.Value(),
		LastStability:      c.met.lastStability.Value(),
		LastFidelity:       c.met.lastFidelity.Value(),
	}
}

// handleMemberBatch buffers one member's delivered batch for the next
// aggregation tick. A batch arriving inside that member's injected outage is
// dropped wholesale — exactly the silence its watchdog detects — so the
// member degrades, parks any install, and catches up here on recovery. A
// batch delivered after Stop (already in flight when the controller went
// down) is ignored.
func (c *Controller) handleMemberBatch(m *Member, batch []netlink.Message) {
	if !c.running {
		return
	}
	now := c.eng.Now()
	if m.inj.ServiceDown(int64(now)) {
		c.met.outageDrops.Inc()
		c.sc.Event2("fleet", "outage_drop", now, "member", int64(m.Index), "msgs", int64(len(batch)))
		return
	}
	m.Core.NoteSlowPathAlive()
	c.catchUp(m)
	for _, msg := range batch {
		if msg.Kind != netlink.KindSample {
			continue
		}
		sm, err := core.ParseSample(msg)
		if err != nil {
			c.met.malformed.Inc()
			continue
		}
		m.pending = append(m.pending, sm)
	}
	c.met.batches.Inc()
}

// catchUp brings a just-proven-alive member back to parity with the released
// epoch. A standby parked at the released epoch activates in place; a parked
// or missed epoch that was superseded (or blacklisted) re-enqueues an install
// of the released version. Pinned members hold their version.
func (c *Controller) catchUp(m *Member) {
	if m.pinned {
		return
	}
	if m.parkedEpoch != 0 {
		target := m.parkedEpoch
		m.parkedEpoch = 0
		if target == c.rel.epoch && !c.isBlacklisted(target) && !m.Core.Degraded() {
			if err := m.Core.Activate(); err == nil {
				m.epoch = target
				m.epochGauge.Set(float64(target))
				c.met.installs.Inc()
				c.sc.Event2("fleet", "parked_activate", c.eng.Now(), "member", int64(m.Index), "epoch", target)
				c.spans.Lone("snapshot", "parked_activate", target, int64(m.Index), c.eng.Now(), 0)
				c.updateStale()
				return
			}
		}
		// Superseded, blacklisted, or activation still refused: fall through
		// and re-enqueue the released version below.
	}
	if m.epoch < c.rel.epoch && !m.installing && !c.queuedFor(m) {
		job := installJob{m: m, mod: c.rel.mod, prog: c.rel.prog, epoch: c.rel.epoch}
		// Replay the missed wave: ideally the member's install would slot in
		// at the epoch's original fan-out instant, but a catching-up member
		// is by definition past it. TryAt reports the stale clock as a typed
		// ErrPastEvent (instead of the engine's scheduling panic), and the
		// install falls back to joining the queue immediately.
		if err := c.eng.TryAt(c.fanStart, func() { c.enqueue(job) }); err != nil {
			if !errors.Is(err, netsim.ErrPastEvent) {
				panic(err)
			}
			c.met.lateCatchUps.Inc()
			c.enqueue(job)
		}
	}
}

func (c *Controller) queuedFor(m *Member) bool {
	for _, j := range c.queue {
		if j.m == m {
			return true
		}
	}
	return false
}

func (c *Controller) scheduleAggregation() {
	c.eng.After(c.cfg.AggregationInterval, func() {
		if !c.running {
			return
		}
		c.aggregate()
		c.scheduleAggregation()
	})
}

// aggregate is one slow-path round over the pooled stream: merge member
// buffers in index order, adapt once, run the correctness and necessity
// gates once, and on necessity mint a new epoch and fan it out.
func (c *Controller) aggregate() {
	var pool []core.Sample
	for _, m := range c.members { // ascending index: deterministic merge
		pool = append(pool, m.pending...)
		m.pending = m.pending[:0]
	}
	if len(pool) == 0 {
		return
	}
	c.met.aggregations.Inc()
	c.met.samples.Add(int64(len(pool)))
	if c.wave == nil {
		c.wave = c.spans.Root("snapshot", "fleet_rollout", c.eng.Now())
	}

	c.adapter.Adapt(pool)
	c.met.lastStability.Set(c.evaluator.Stability())

	if !c.converged() {
		return
	}
	c.met.converged.Inc()
	c.evaluateNecessity(pool)
}

// converged applies the correctness gate to the pooled stability metric —
// identical policy to the single-core service (paper §3.2), run once for the
// whole fleet.
func (c *Controller) converged() bool {
	c.stabilityHist = append(c.stabilityHist, c.met.lastStability.Value())
	w := c.coreCfg.StabilityWindow
	if len(c.stabilityHist) > w {
		c.stabilityHist = c.stabilityHist[len(c.stabilityHist)-w:]
	}
	if len(c.stabilityHist) < w {
		return false
	}
	lo, hi := c.stabilityHist[0], c.stabilityHist[0]
	for _, v := range c.stabilityHist[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	scale := math.Max(math.Abs(hi), math.Abs(lo))
	if scale < 1e-12 {
		return true
	}
	return (hi-lo)/scale <= c.coreCfg.StabilityTolerance
}

// evaluateNecessity computes the minimal fidelity loss of the pooled batch
// against the controller's own reference copy of the latest minted snapshot
// program. Unlike the single-core service — which round-trips inputs to the
// kernel — the fleet controller evaluates in userspace: shipping N members'
// worth of queries down and back would multiply cross-space cost by the
// fleet size for an answer the reference program gives bit-identically.
func (c *Controller) evaluateNecessity(pool []core.Sample) {
	if c.cur.prog == nil {
		return
	}
	c.met.fidelityChecks.Inc()
	prog := c.cur.prog
	in := make([]int64, prog.InputSize())
	out := make([]int64, prog.OutputSize())
	minLoss := math.Inf(1)
	for _, sm := range pool {
		if len(sm.Input) != prog.InputSize() {
			continue
		}
		prog.QuantizeInput(sm.Input, in)
		prog.Infer(in, out)
		kernelOut := prog.DequantizeOutput(out, nil)
		userOut := c.evaluator.Infer(sm.Input)
		if len(userOut) != len(kernelOut) {
			c.met.mismatched.Inc()
			continue
		}
		l := 0.0
		for i := range userOut {
			l += math.Abs(kernelOut[i] - userOut[i])
		}
		if l < minLoss {
			minLoss = l
		}
	}
	if math.IsInf(minLoss, 1) {
		return
	}
	c.met.lastFidelity.Set(minLoss)
	threshold := c.coreCfg.Alpha * (c.coreCfg.OutMax - c.coreCfg.OutMin)
	if minLoss <= threshold {
		c.met.skipped.Inc()
		return
	}
	c.buildAndFanOut()
}

// buildAndFanOut mints the next epoch — one freeze, one quantization, one
// codegen — and starts its rollout. With canary gating configured the new
// version installs only to the cohort and the wave enters the observation
// phase when those installs drain; otherwise it enqueues an install for every
// non-pinned member in index order. A wave still in flight (any non-idle
// phase) defers the build: overlapping waves would ship distinct versions to
// different members and break epoch monotonicity.
func (c *Controller) buildAndFanOut() {
	if c.phase != phaseIdle || c.inFlight > 0 || len(c.queue) > 0 {
		c.met.deferred.Inc()
		c.wave.Mark("install_deferred", c.eng.Now(), "queued", int64(len(c.queue)))
		return
	}
	now := c.eng.Now()
	next := c.lastMinted + 1
	name := c.cfg.NamePrefix + "_" + strconv.FormatInt(next, 10)
	prog := quant.Quantize(c.freezer.Freeze(), c.coreCfg.Quant)
	mod, err := codegen.Build(prog, name)
	if err != nil {
		// The next converged round retries with a fresh freeze.
		c.met.buildFailures.Inc()
		c.sc.EventStr("fleet", "build_failure", now, "model", name)
		c.wave.Mark("build_failure", now, "epoch", next)
		return
	}
	// Re-seed the correctness gate: the window that justified this mint is
	// spent. Without this a single stable stretch could re-pass instantly on
	// the next round and mint back-to-back epochs off stale history.
	c.stabilityHist = c.stabilityHist[:0]
	c.lastMinted = next
	c.cur = version{epoch: next, mod: mod, prog: prog}
	c.met.versions.Inc()
	c.sc.Event2("fleet", "version", now, "epoch", next, "members", int64(len(c.members)))
	if c.wave != nil {
		// The epoch exists now: stage the rollout's controller-side children.
		// Pooling covers root-open to this build; the gates and build are
		// synchronous in virtual time, so they render as instants.
		c.wave.SetVersion(next)
		c.waveEpoch = next
		c.wave.Child("pool", c.wave.Start(), now-c.wave.Start())
		c.wave.Child("correctness_gate", now, 0)
		c.wave.Child("necessity_gate", now, 0)
		c.wave.Child("quantize", now, 0)
		c.wave.Child("build", now, 0)
	}
	c.segStart = now
	if cohort := c.canaryCohort(); len(cohort) > 0 {
		c.phase = phaseCanary
		c.canaries = cohort
		c.sc.Event2("fleet", "canary_stage", now, "epoch", next, "canaries", int64(len(cohort)))
		if c.wave != nil {
			c.wave.Mark("canary_stage", now, "canaries", int64(len(cohort)))
		}
		for _, m := range cohort {
			c.enqueue(installJob{m: m, mod: mod, prog: prog, epoch: next})
		}
	} else {
		c.phase = phaseFanOut
		c.rel = c.cur
		c.met.releasedEpoch.Set(float64(next))
		c.fanStart = now
		for _, m := range c.members {
			if m.pinned {
				continue
			}
			c.enqueue(installJob{m: m, mod: mod, prog: prog, epoch: next})
		}
	}
	c.updateStale()
	c.onDrained() // all members pinned (or no installs enqueued): resolve now
}

// enqueue adds one member install and pumps the bounded-concurrency queue.
func (c *Controller) enqueue(j installJob) {
	c.queue = append(c.queue, j)
	c.pump()
}

// pump starts queued installs while concurrency slots are free. A stopped
// controller leaves the queue alone — Stop abandons it.
func (c *Controller) pump() {
	if !c.running {
		return
	}
	for c.inFlight < c.cfg.MaxConcurrentInstalls && len(c.queue) > 0 {
		j := c.queue[0]
		c.queue = c.queue[1:]
		c.install(j)
	}
}

// install ships one version to one member over its netlink channel: the
// parameter transfer is charged to the member's kernel CPU, then
// RegisterModel+Activate run the active-standby switch. ErrDegraded parks
// the registered standby for catchUp; other failures count as abandoned.
func (c *Controller) install(j installJob) {
	m := j.m
	m.installing = true
	c.inFlight++
	start := c.eng.Now()
	finish := func() {
		m.installing = false
		c.inFlight--
		c.updateStale()
		c.pump()
		c.onDrained()
	}
	sendErr := m.Chan.SendToKernel(j.prog.NumParams()*8, func() {
		now := c.eng.Now()
		if !c.running {
			// Stop raced the transfer: a dead controller must not keep
			// registering and activating models on member cores.
			m.installing = false
			c.inFlight--
			c.met.abandoned.Inc()
			c.sc.Event2("fleet", "install_aborted", now, "member", int64(m.Index), "epoch", j.epoch)
			return
		}
		if m.Core.CPU != nil {
			m.Core.CPU.Charge(ksim.Kernel,
				m.Core.Costs.SnapshotInstallPerParam*netsim.Time(j.prog.NumParams()))
		}
		if _, err := m.Core.RegisterModel(j.mod); err != nil {
			c.met.abandoned.Inc()
			c.sc.Event2("fleet", "install_rejected", now, "member", int64(m.Index), "epoch", j.epoch)
			finish()
			return
		}
		if err := m.Core.Activate(); err != nil {
			// ErrDegraded keeps the standby parked in the member core;
			// anything else means the switch is genuinely lost.
			if errors.Is(err, core.ErrDegraded) {
				m.parkedEpoch = j.epoch
				c.met.parked.Inc()
				c.sc.Event2("fleet", "install_parked", now, "member", int64(m.Index), "epoch", j.epoch)
				if c.wave != nil && c.waveEpoch == j.epoch {
					c.wave.MarkMember("install_parked", int64(m.Index), now)
				}
			} else {
				c.met.abandoned.Inc()
				c.sc.Event2("fleet", "install_rejected", now, "member", int64(m.Index), "epoch", j.epoch)
			}
			finish()
			return
		}
		m.epoch = j.epoch
		m.epochGauge.Set(float64(j.epoch))
		if j.rollback {
			c.met.rollbacks.Inc()
			c.sc.Event2("fleet", "rollback", now, "member", int64(m.Index), "epoch", j.epoch)
			c.spans.Lone("snapshot", "member_rollback", j.epoch, int64(m.Index), start, now-start)
		} else {
			c.met.installs.Inc()
			c.sc.Event2("fleet", "install", now, "member", int64(m.Index), "epoch", j.epoch)
			// Standalone span keyed by the epoch pid: catch-up installs of an
			// already-drained wave still join that version's tree.
			c.spans.Lone("snapshot", "member_install", j.epoch, int64(m.Index), start, now-start)
			c.spans.Lone("snapshot", "member_activate", j.epoch, int64(m.Index), now, 0)
		}
		finish()
	})
	if sendErr != nil {
		c.met.abandoned.Inc()
		c.sc.Event2("fleet", "install_rejected", c.eng.Now(), "member", int64(m.Index), "epoch", j.epoch)
		finish()
	}
}

// onDrained advances the rollout state machine once the install queue fully
// drains. An unstaged wave (or the release burst of a staged one) closes the
// rollout span; a staged wave's canary burst opens the observation window and
// arms the verdict timer; a rollback burst closes the span as failed.
func (c *Controller) onDrained() {
	if c.inFlight > 0 || len(c.queue) > 0 {
		return
	}
	now := c.eng.Now()
	switch c.phase {
	case phaseFanOut:
		if c.wave != nil {
			c.wave.Child("install_wave", c.segStart, now-c.segStart)
			c.wave.End(now)
		}
		c.wave, c.waveEpoch = nil, 0
		c.phase = phaseIdle
	case phaseCanary:
		if c.wave != nil {
			c.wave.Child("canary_install_wave", c.segStart, now-c.segStart)
		}
		c.phase = phaseObserve
		c.obsStart = now
		epoch := c.cur.epoch
		c.eng.After(c.cfg.CanaryWindow, func() { c.canaryVerdict(epoch) })
	case phaseRelease:
		if c.wave != nil {
			c.wave.Child("release_wave", c.segStart, now-c.segStart)
			c.wave.End(now)
		}
		c.wave, c.waveEpoch = nil, 0
		c.phase = phaseIdle
		c.canaries = nil
	case phaseRollback:
		if c.wave != nil {
			c.wave.Child("rollback_wave", c.segStart, now-c.segStart)
			c.wave.EndFailed(now, "canary_failed")
		}
		c.wave, c.waveEpoch = nil, 0
		c.phase = phaseIdle
		c.canaries = nil
	}
}

// updateStale refreshes the staleness and pinned gauges after any epoch or
// pin movement.
func (c *Controller) updateStale() {
	c.met.staleMembers.Set(float64(c.StaleMembers()))
	pinned := 0
	for _, m := range c.members {
		if m.pinned {
			pinned++
		}
	}
	c.met.pinnedMembers.Set(float64(pinned))
}
