// Canary gating for staged fleet rollouts (DESIGN.md §4i). The cohort is the
// deterministic prefix of non-pinned members (lowest indices, §4d); the
// verdict compares each canary's flight-recorder series over the observation
// window against the same-length window that ended at the mint instant. A
// pass releases the remaining members; a fail blacklists the epoch and rolls
// the canaries back to the retained previous version.
package fleet

import (
	"math"
	"strings"

	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/obs"
)

// canaryCohort returns the members a freshly minted epoch stages to, or nil
// for an unstaged fan-out. The cohort is the first k non-pinned members in
// index order — deterministic across runs (§4d). Staging degenerates to a
// full fan-out when the cohort would cover every eligible member: observing
// the whole fleet protects nobody.
func (c *Controller) canaryCohort() []*Member {
	if !c.cfg.staged() {
		return nil
	}
	eligible := make([]*Member, 0, len(c.members))
	for _, m := range c.members {
		if !m.pinned {
			eligible = append(eligible, m)
		}
	}
	k := c.cfg.CanaryCount
	if k <= 0 {
		k = int(math.Ceil(c.cfg.CanaryFraction * float64(len(eligible))))
	}
	if k <= 0 || k >= len(eligible) {
		return nil
	}
	return eligible[:k]
}

// canaryHealth is one canary's verdict input: goodput (query rate), latency
// (p99 estimate), and degradation deltas between the pre-install baseline
// window and the observation window.
type canaryHealth struct {
	member   int
	goodput  obs.DeltaStat
	latency  obs.DeltaStat
	degraded obs.DeltaStat
	healthy  bool
	reason   string
}

// memberSeriesMatcher returns a predicate selecting flight-recorder series
// that belong to m's core scope: every base label of the scope must appear
// in the series' exposition name as a `k="v"` fragment (the closing quote
// keeps host="1" from matching host="10"). A scope with no labels cannot be
// told apart from the rest of the fleet, so it matches every series — the
// verdict then reads fleet-wide aggregates, which still catches a bad epoch,
// just without per-member attribution.
func memberSeriesMatcher(m *Member) func(string) bool {
	labels := m.Core.Obs().Labels()
	if len(labels) == 0 {
		return func(string) bool { return true }
	}
	frags := make([]string, len(labels))
	for i, l := range labels {
		frags[i] = l.Key + `="` + l.Value + `"`
	}
	return func(name string) bool {
		for _, f := range frags {
			if !strings.Contains(name, f) {
				return false
			}
		}
		return true
	}
}

// memberHealth evaluates one canary against the verdict criteria. Criteria
// with no data in both windows (N == 0, e.g. a nil recorder or a sampling
// period longer than the window) are inconclusive and skipped — the gate
// fails closed only on evidence, never on blindness.
func (c *Controller) memberHealth(m *Member, before, after obs.TimeWindow) canaryHealth {
	match := memberSeriesMatcher(m)
	h := canaryHealth{member: m.Index, healthy: true}
	h.goodput = c.cfg.Flight.CompareWindows(before, after, obs.AggSum, func(d obs.SeriesDelta) bool {
		return d.Cumulative && strings.HasPrefix(d.Name, "liteflow_core_queries_total") && match(d.Name)
	})
	h.latency = c.cfg.Flight.CompareWindows(before, after, obs.AggMean, func(d obs.SeriesDelta) bool {
		return !d.Cumulative && strings.HasPrefix(d.Name, "liteflow_query_ns") && strings.HasSuffix(d.Name, "_p99") && match(d.Name)
	})
	h.degraded = c.cfg.Flight.CompareWindows(before, after, obs.AggSum, func(d obs.SeriesDelta) bool {
		return d.Cumulative && strings.HasPrefix(d.Name, "liteflow_core_degraded_total") && match(d.Name)
	})
	switch {
	case h.goodput.N > 0 && h.goodput.Before > 0 && h.goodput.After/h.goodput.Before < c.cfg.CanaryMinGoodputRatio:
		h.healthy, h.reason = false, "goodput"
	case h.latency.N > 0 && h.latency.Before > 0 && h.latency.After/h.latency.Before > c.cfg.CanaryMaxLatencyRatio:
		h.healthy, h.reason = false, "latency"
	case h.degraded.N > 0 && h.degraded.After > h.degraded.Before:
		h.healthy, h.reason = false, "degraded"
	}
	return h
}

// canaryVerdict fires CanaryWindow after the cohort's installs drained. It
// compares each activated canary's observation window against the baseline
// window ending at the canary fan-out instant and either releases the epoch
// to the rest of the fleet or rolls the cohort back. A verdict with zero
// activated canaries (all parked mid-install) learned nothing about the new
// version and fails conservatively.
func (c *Controller) canaryVerdict(epoch int64) {
	if !c.running || c.phase != phaseObserve || c.cur.epoch != epoch {
		return
	}
	now := c.eng.Now()
	win := int64(c.cfg.CanaryWindow)
	before := obs.TimeWindow{From: int64(c.segStart) - win, To: int64(c.segStart)}
	after := obs.TimeWindow{From: int64(c.obsStart), To: int64(now)}
	if before.From < 0 {
		before.From = 0
	}
	pass, reason, activated := true, "", 0
	for _, m := range c.canaries {
		if m.epoch != epoch {
			continue // parked or never activated: no evidence from this one
		}
		activated++
		h := c.memberHealth(m, before, after)
		c.sc.EventMix("fleet", "canary_health", now,
			"member", int64(m.Index), "healthy", boolStr(h.healthy))
		if c.wave != nil {
			c.wave.MarkMember("canary_health_"+healthStr(h), int64(m.Index), now)
		}
		if !h.healthy && pass {
			pass, reason = false, h.reason
		}
	}
	if activated == 0 {
		pass, reason = false, "no_canary_activated"
	}
	if c.wave != nil {
		c.wave.Child("canary_observe", c.obsStart, now-c.obsStart)
	}
	if pass {
		c.releaseWave(now)
	} else {
		c.rollbackWave(now, reason)
	}
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

func healthStr(h canaryHealth) string {
	if h.healthy {
		return "ok"
	}
	return h.reason
}

// releaseWave promotes the observed epoch to the released version and fans
// it out to the remaining members. Members already at (or parked at) the
// epoch, pinned members, and members with an install in flight are skipped.
func (c *Controller) releaseWave(now netsim.Time) {
	c.met.canaryPass.Inc()
	c.sc.Event2("fleet", "canary_pass", now, "epoch", c.cur.epoch, "canaries", int64(len(c.canaries)))
	if c.wave != nil {
		c.wave.Mark("canary_pass", now, "epoch", c.cur.epoch)
	}
	c.rel = c.cur
	c.met.releasedEpoch.Set(float64(c.rel.epoch))
	c.phase = phaseRelease
	c.segStart = now
	c.fanStart = now
	for _, m := range c.members {
		if m.pinned || m.epoch >= c.cur.epoch || m.parkedEpoch == c.cur.epoch || m.installing || c.queuedFor(m) {
			continue
		}
		c.enqueue(installJob{m: m, mod: c.cur.mod, prog: c.cur.prog, epoch: c.cur.epoch})
	}
	c.updateStale()
	c.onDrained() // nothing to release (e.g. cohort was everyone unpinned): close now
}

// rollbackWave blacklists the failed epoch and restores every canary that
// activated it to the retained released version. Parked copies of the bad
// epoch are discarded so catch-up cannot resurrect it.
func (c *Controller) rollbackWave(now netsim.Time, reason string) {
	bad := c.cur.epoch
	c.met.canaryFail.Inc()
	c.blacklist = append(c.blacklist, bad)
	c.sc.EventMix("fleet", "canary_fail", now, "epoch", bad, "reason", reason)
	if c.wave != nil {
		c.wave.Mark("canary_fail", now, "epoch", bad)
	}
	c.cur = c.rel
	c.phase = phaseRollback
	c.segStart = now
	for _, m := range c.canaries {
		if m.parkedEpoch == bad {
			m.parkedEpoch = 0
		}
		if m.epoch != bad {
			continue
		}
		c.enqueue(installJob{m: m, mod: c.rel.mod, prog: c.rel.prog, epoch: c.rel.epoch, rollback: true})
	}
	c.updateStale()
	c.onDrained() // no canary activated the bad epoch: nothing to roll back
}
