package fleet

import (
	"testing"

	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/fault"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netlink"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/obs"
	"github.com/liteflow-sim/liteflow/internal/opt"
)

// fleetUser implements Freezer/Evaluator/Adapter around one shared network,
// with controllable stability and an optional record of every pooled batch.
type fleetUser struct {
	net       *nn.Network
	stability float64
	pools     [][]core.Sample
}

func (u *fleetUser) Freeze() *nn.Network          { return u.net }
func (u *fleetUser) Stability() float64           { return u.stability }
func (u *fleetUser) Infer(in []float64) []float64 { return u.net.Infer(in) }
func (u *fleetUser) Adapt(batch []core.Sample) {
	cp := make([]core.Sample, len(batch))
	copy(cp, batch)
	u.pools = append(u.pools, cp)
}

// fleetRig is a controller over n members, each with its own CPU, core, and
// channel, fed by a periodic per-member sample generator.
type fleetRig struct {
	eng   *netsim.Engine
	ctrl  *Controller
	user  *fleetUser
	cores []*core.Core
	chans []*netlink.Channel
}

// newFleetRig builds an n-member fleet. memberOptions(i) supplies per-member
// core/controller options (watchdog, faults); nil means none.
func newFleetRig(t *testing.T, n int, cfg Config, memberOptions func(i int) (coreOpts, memberOpts []opt.Option)) *fleetRig {
	t.Helper()
	eng := netsim.NewEngine()
	ccfg := core.DefaultConfig()
	ccfg.FlowCacheTimeout = 0
	base := nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Linear}, 11)
	user := &fleetUser{net: base, stability: 0.5}
	ctrl := New(eng, ccfg, user, user, user, cfg)
	r := &fleetRig{eng: eng, ctrl: ctrl, user: user}
	for i := 0; i < n; i++ {
		var co, mo []opt.Option
		if memberOptions != nil {
			co, mo = memberOptions(i)
		}
		cpu := ksim.NewCPU(eng, 4)
		c := core.NewCore(eng, cpu, ksim.DefaultCosts(), ccfg, co...)
		ch := netlink.NewChannel(eng, cpu, ksim.DefaultCosts(), nil)
		if _, err := ctrl.AddMember(c, ch, mo...); err != nil {
			t.Fatal(err)
		}
		r.cores = append(r.cores, c)
		r.chans = append(r.chans, ch)
	}
	if err := ctrl.Start(); err != nil {
		t.Fatal(err)
	}
	return r
}

// feed pushes k samples into member i's channel, tagged with the member
// index in Aux so merge order is observable.
func (r *fleetRig) feed(i, k int) {
	for s := 0; s < k; s++ {
		r.chans[i].Push(core.EncodeSample(core.Sample{
			Input: []float64{0.1, 0.2, 0.3, 0.4},
			Aux:   []float64{float64(i)},
			At:    r.eng.Now(),
		}))
	}
}

// feedAll schedules a periodic feeder for every member until stop.
func (r *fleetRig) feedAll(every, stop netsim.Time) {
	var tick func()
	tick = func() {
		if r.eng.Now() >= stop {
			return
		}
		for i := range r.chans {
			r.feed(i, 4)
		}
		r.eng.After(every, tick)
	}
	r.eng.After(every, tick)
}

func TestFleetProvisionsAllMembers(t *testing.T) {
	r := newFleetRig(t, 4, Config{BatchInterval: 10 * netsim.Millisecond}, nil)
	defer r.ctrl.Stop()
	if got := r.ctrl.Epoch(); got != 1 {
		t.Fatalf("Epoch after Start = %d, want 1", got)
	}
	for i, c := range r.cores {
		if c.Active() == nil {
			t.Fatalf("member %d has no active snapshot after Start", i)
		}
	}
	if got := r.ctrl.StaleMembers(); got != 0 {
		t.Errorf("StaleMembers after provisioning = %d, want 0", got)
	}
}

// TestFanOutReachesEpochParity drives the full pipeline: pooled adaptation
// converges, the user model drifts past the necessity threshold, a new epoch
// is minted, and every member installs it.
func TestFanOutReachesEpochParity(t *testing.T) {
	r := newFleetRig(t, 4, Config{
		BatchInterval:       10 * netsim.Millisecond,
		AggregationInterval: 10 * netsim.Millisecond,
	}, nil)
	defer r.ctrl.Stop()
	r.feedAll(10*netsim.Millisecond, 300*netsim.Millisecond)
	// Drift the user model once the gate has had time to converge.
	r.eng.At(150*netsim.Millisecond, func() { r.user.net.Layers[1].B[0] += 0.5 })
	r.eng.RunUntil(400 * netsim.Millisecond)

	st := r.ctrl.Stats()
	if st.Epoch != 2 || st.VersionsBuilt != 1 {
		t.Fatalf("drift must mint exactly one new epoch: %+v", st)
	}
	if st.MemberInstalls != 4 {
		t.Errorf("MemberInstalls = %d, want 4", st.MemberInstalls)
	}
	if st.StaleMembers != 0 {
		t.Errorf("StaleMembers = %d, want 0 after fan-out", st.StaleMembers)
	}
	for i, e := range r.ctrl.MemberEpochs() {
		if e != 2 {
			t.Errorf("member %d epoch = %d, want 2", i, e)
		}
	}
	if st.Converged == 0 || st.FidelityChecks == 0 || st.SkippedByNecessity == 0 {
		t.Errorf("gates must run on the pooled stream: %+v", st)
	}
}

// TestDeterministicMergeOrder asserts DESIGN.md §4d for the fleet plane:
// pooled batches are merged in ascending member index order regardless of
// arrival interleaving, so the Adapter sees a deterministic stream.
func TestDeterministicMergeOrder(t *testing.T) {
	r := newFleetRig(t, 3, Config{
		BatchInterval:       10 * netsim.Millisecond,
		AggregationInterval: 30 * netsim.Millisecond,
	}, nil)
	defer r.ctrl.Stop()
	// Feed members in descending order; the pool must still come out 0,1,2.
	r.eng.After(netsim.Millisecond, func() {
		for i := len(r.chans) - 1; i >= 0; i-- {
			r.feed(i, 3)
		}
	})
	r.eng.RunUntil(100 * netsim.Millisecond)

	if len(r.user.pools) == 0 {
		t.Fatal("no pooled batch reached the adapter")
	}
	pool := r.user.pools[0]
	if len(pool) != 9 {
		t.Fatalf("pool size = %d, want 9", len(pool))
	}
	last := -1
	for _, sm := range pool {
		mi := int(sm.Aux[0])
		if mi < last {
			t.Fatalf("pool not in member-index order: member %d after %d", mi, last)
		}
		last = mi
	}
}

// TestBoundedInstallConcurrency fans an epoch out to 8 members with at most
// 2 installs in flight, and probes the in-flight count through the whole
// rollout window.
func TestBoundedInstallConcurrency(t *testing.T) {
	r := newFleetRig(t, 8, Config{
		BatchInterval:         10 * netsim.Millisecond,
		AggregationInterval:   10 * netsim.Millisecond,
		MaxConcurrentInstalls: 2,
	}, nil)
	defer r.ctrl.Stop()
	r.feedAll(10*netsim.Millisecond, 300*netsim.Millisecond)
	r.eng.At(100*netsim.Millisecond, func() { r.user.net.Layers[1].B[0] += 0.5 })

	maxInFlight := 0
	var probe func()
	probe = func() {
		if r.ctrl.inFlight > maxInFlight {
			maxInFlight = r.ctrl.inFlight
		}
		if r.eng.Now() < 300*netsim.Millisecond {
			r.eng.After(5*netsim.Microsecond, probe)
		}
	}
	r.eng.At(100*netsim.Millisecond, probe)
	r.eng.RunUntil(400 * netsim.Millisecond)

	st := r.ctrl.Stats()
	if st.MemberInstalls != 8 || st.StaleMembers != 0 {
		t.Fatalf("rollout must complete: %+v", st)
	}
	if maxInFlight != 2 {
		t.Errorf("peak in-flight installs = %d, want exactly the bound 2", maxInFlight)
	}
}

// TestStragglerParksAndCatchesUp is the acceptance path for straggler
// handling: a member that goes silent degrades via its watchdog, the fan-out
// install parks on its core, and the first post-recovery batch activates the
// parked standby, restoring epoch parity without a rebuild.
func TestStragglerParksAndCatchesUp(t *testing.T) {
	wd := opt.WithWatchdog(opt.Watchdog{Window: int64(50 * netsim.Millisecond)})
	r := newFleetRig(t, 3, Config{
		BatchInterval:       10 * netsim.Millisecond,
		AggregationInterval: 10 * netsim.Millisecond,
	}, func(i int) ([]opt.Option, []opt.Option) {
		return []opt.Option{wd}, nil
	})
	defer r.ctrl.Stop()

	// Members 0 and 1 feed throughout; member 2 goes dark during [40, 300]ms.
	var tick func()
	tick = func() {
		if r.eng.Now() >= 500*netsim.Millisecond {
			return
		}
		r.feed(0, 4)
		r.feed(1, 4)
		now := r.eng.Now()
		if now < 40*netsim.Millisecond || now > 300*netsim.Millisecond {
			r.feed(2, 4)
		}
		r.eng.After(10*netsim.Millisecond, tick)
	}
	r.eng.After(10*netsim.Millisecond, tick)

	// Drift while member 2 is degraded: the fan-out parks on it.
	r.eng.At(150*netsim.Millisecond, func() { r.user.net.Layers[1].B[0] += 0.5 })

	r.eng.RunUntil(200 * netsim.Millisecond)
	if !r.cores[2].Degraded() {
		t.Fatal("silent member must degrade")
	}
	st := r.ctrl.Stats()
	if st.Epoch != 2 {
		t.Fatalf("fleet epoch = %d, want 2 while straggler lags", st.Epoch)
	}
	if st.InstallsParked != 1 {
		t.Fatalf("install on a degraded member must park: %+v", st)
	}
	if st.StaleMembers != 1 {
		t.Fatalf("StaleMembers = %d, want 1 during the outage", st.StaleMembers)
	}
	if got := r.ctrl.Members()[2].Epoch(); got != 1 {
		t.Fatalf("straggler epoch = %d, want 1 while parked", got)
	}

	// Recovery: member 2's batches resume after 300ms. (Stop asserting
	// before the feeder's 500ms end — once every member goes silent, the
	// watchdogs legitimately degrade the whole fleet again.)
	r.eng.RunUntil(450 * netsim.Millisecond)
	st = r.ctrl.Stats()
	if r.cores[2].Degraded() {
		t.Fatal("member must recover once its batches resume")
	}
	if st.StaleMembers != 0 {
		t.Errorf("StaleMembers = %d, want 0 after recovery", st.StaleMembers)
	}
	for i, e := range r.ctrl.MemberEpochs() {
		if e != st.Epoch {
			t.Errorf("member %d epoch = %d, want fleet epoch %d", i, e, st.Epoch)
		}
	}
	if st.MemberInstalls != 3 {
		t.Errorf("MemberInstalls = %d, want 3 (2 direct + 1 parked activation)", st.MemberInstalls)
	}
}

// TestOutageDropsMemberBatches covers the injected-fault path: a member
// inside a fault.Injector outage window contributes nothing to the pool.
func TestOutageDropsMemberBatches(t *testing.T) {
	inj := fault.New(fault.Profile{
		OutagePeriod:   int64(2 * netsim.Millisecond),
		OutageDuration: int64(10 * netsim.Second),
	}, 1, obs.Scope{})
	r := newFleetRig(t, 2, Config{
		BatchInterval:       10 * netsim.Millisecond,
		AggregationInterval: 10 * netsim.Millisecond,
	}, func(i int) ([]opt.Option, []opt.Option) {
		if i == 1 {
			return nil, []opt.Option{opt.WithFaults(inj)}
		}
		return nil, nil
	})
	defer r.ctrl.Stop()
	r.eng.RunUntil(5 * netsim.Millisecond) // inside member 1's outage window
	r.feed(0, 4)
	r.feed(1, 4)
	r.eng.RunUntil(50 * netsim.Millisecond)

	st := r.ctrl.Stats()
	if st.OutageDrops != 1 {
		t.Fatalf("OutageDrops = %d, want 1", st.OutageDrops)
	}
	if st.Samples != 4 {
		t.Errorf("pool must contain only the healthy member's samples: %+v", st)
	}
}

// TestClosedChannelAbandonsInstall: a member whose channel died mid-rollout
// cannot receive the version; the install counts as abandoned and the member
// stays visibly stale rather than silently "current".
func TestClosedChannelAbandonsInstall(t *testing.T) {
	r := newFleetRig(t, 3, Config{
		BatchInterval:       10 * netsim.Millisecond,
		AggregationInterval: 10 * netsim.Millisecond,
	}, nil)
	defer r.ctrl.Stop()
	r.feedAll(10*netsim.Millisecond, 300*netsim.Millisecond)
	r.eng.At(140*netsim.Millisecond, func() { r.chans[2].Close() })
	r.eng.At(150*netsim.Millisecond, func() { r.user.net.Layers[1].B[0] += 0.5 })
	r.eng.RunUntil(400 * netsim.Millisecond)

	st := r.ctrl.Stats()
	if st.Epoch != 2 {
		t.Fatalf("fleet epoch = %d, want 2", st.Epoch)
	}
	if st.InstallsAbandoned != 1 {
		t.Errorf("closed channel must abandon the install: %+v", st)
	}
	if st.StaleMembers != 1 {
		t.Errorf("StaleMembers = %d, want the dead member visible as stale", st.StaleMembers)
	}
	if got := r.ctrl.MemberEpochs()[2]; got != 1 {
		t.Errorf("dead member epoch = %d, want 1", got)
	}
}
