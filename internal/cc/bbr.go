package cc

import (
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/tcp"
)

// BBR is a compact model of BBRv1 (Cardwell et al.): rate-based control from
// windowed estimates of bottleneck bandwidth and propagation RTT, with the
// startup/drain/probe_bw gain schedule. It deliberately omits PROBE_RTT and
// long-term policing — the evaluation only needs BBR's steady behaviour as
// the kernel baseline.
type BBR struct {
	state    int // 0 startup, 1 drain, 2 probe_bw
	btlBw    maxFilter
	rtProp   netsim.Time
	rtPropAt netsim.Time

	pacingGain float64
	cycleIdx   int
	cycleAt    netsim.Time

	fullBwCount int
	lastFullBw  int64
	roundEnd    netsim.Time // next full-bandwidth evaluation (once per RTT)

	srtt netsim.Time
	rate int64
}

var probeBwGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

const (
	bbrStartupGain = 2.885
	bbrDrainGain   = 1 / 2.885
	bbrInitialRate = 10_000_000 // 10 Mbps until the first bandwidth sample
)

// NewBBR returns a BBR controller.
func NewBBR() *BBR {
	return &BBR{pacingGain: bbrStartupGain, rate: bbrInitialRate, rtProp: 1 << 62}
}

// maxFilter is a windowed max over (time, value) samples.
type maxFilter struct {
	window  netsim.Time
	samples []struct {
		at netsim.Time
		v  int64
	}
}

func (f *maxFilter) add(at netsim.Time, v int64) {
	f.samples = append(f.samples, struct {
		at netsim.Time
		v  int64
	}{at, v})
	cutoff := at - f.window
	i := 0
	for i < len(f.samples) && f.samples[i].at < cutoff {
		i++
	}
	f.samples = f.samples[i:]
}

func (f *maxFilter) max() int64 {
	var m int64
	for _, s := range f.samples {
		if s.v > m {
			m = s.v
		}
	}
	return m
}

// Start implements tcp.CongestionControl.
func (b *BBR) Start(now netsim.Time) {
	b.btlBw.window = 100 * netsim.Millisecond * 10
	b.cycleAt = now
}

// OnAck implements tcp.CongestionControl.
func (b *BBR) OnAck(a tcp.AckInfo) {
	b.srtt = a.SRTT
	if a.RTT > 0 && (a.RTT < b.rtProp || a.Now-b.rtPropAt > 10*netsim.Second) {
		b.rtProp = a.RTT
		b.rtPropAt = a.Now
	}
	if a.DeliveryRate > 0 {
		b.btlBw.add(a.Now, a.DeliveryRate)
	}
	bw := b.btlBw.max()

	switch b.state {
	case 0: // startup: exit when bandwidth stops growing for 3 round trips
		if a.Now >= b.roundEnd { // evaluate once per RTT, not per ACK
			b.roundEnd = a.Now + b.srttOr(10*netsim.Millisecond)
			if bw > b.lastFullBw*5/4 {
				b.lastFullBw = bw
				b.fullBwCount = 0
			} else if bw > 0 {
				b.fullBwCount++
				if b.fullBwCount >= 3 {
					b.state = 1
					b.pacingGain = bbrDrainGain
					b.cycleAt = a.Now
				}
			}
		}
	case 1: // drain: one RTT at the drain gain, then cycle
		if a.Now-b.cycleAt > b.srttOr(10*netsim.Millisecond) {
			b.state = 2
			b.cycleIdx = 0
			b.pacingGain = probeBwGains[0]
			b.cycleAt = a.Now
		}
	case 2: // probe_bw: advance the gain cycle once per RTT
		if a.Now-b.cycleAt > b.srttOr(10*netsim.Millisecond) {
			b.cycleIdx = (b.cycleIdx + 1) % len(probeBwGains)
			b.pacingGain = probeBwGains[b.cycleIdx]
			b.cycleAt = a.Now
		}
	}

	if bw > 0 {
		b.rate = int64(b.pacingGain * float64(bw))
	} else {
		b.rate = int64(b.pacingGain * bbrInitialRate)
	}
}

func (b *BBR) srttOr(d netsim.Time) netsim.Time {
	if b.srtt > 0 {
		return b.srtt
	}
	return d
}

// OnLoss implements tcp.CongestionControl. BBRv1 is loss-agnostic except for
// timeouts, which restart the bandwidth search.
func (b *BBR) OnLoss(l tcp.LossInfo) {
	if l.Timeout {
		b.state = 0
		b.pacingGain = bbrStartupGain
		b.lastFullBw = 0
		b.fullBwCount = 0
	}
}

// PacingRate implements tcp.CongestionControl.
func (b *BBR) PacingRate() int64 { return b.rate }

// CwndBytes implements tcp.CongestionControl: 2 × BDP.
func (b *BBR) CwndBytes() int {
	rtt := b.rtProp
	if rtt >= 1<<62 {
		rtt = b.srttOr(10 * netsim.Millisecond)
	}
	bdp := float64(b.btlBw.max()) / 8 * float64(rtt) / 1e9
	w := int(2 * bdp)
	if w < 10*netsim.MSS {
		w = 10 * netsim.MSS
	}
	return w
}

var _ tcp.CongestionControl = (*BBR)(nil)
