package cc

import (
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/quant"
	"github.com/liteflow-sim/liteflow/internal/tcp"
)

// Monitor-interval state layout shared by Aurora and MOCC: a sliding history
// of HistoryLen feature triples (latency gradient, latency ratio − 1,
// send ratio − 1), flattened oldest-first into a StateDim vector.
const (
	FeatureDim = 3
	HistoryLen = 10
	StateDim   = FeatureDim * HistoryLen
)

// Policy maps an MI state vector to an action in [−1, 1]. Positive actions
// raise the sending rate multiplicatively, negative actions lower it
// (Aurora's rate update rule).
type Policy interface {
	Act(state []float64) float64
}

// PolicyFunc adapts a function to Policy.
type PolicyFunc func(state []float64) float64

// Act calls f.
func (f PolicyFunc) Act(state []float64) float64 { return f(state) }

// Backend decides where and when policy inference executes — the axis the
// whole paper is about. The kernel-snapshot deployment answers immediately
// at integer-inference cost; the CCP deployment batches queries across the
// kernel/userspace boundary.
type Backend interface {
	// Query requests an action for state; reply runs asynchronously
	// (possibly inline) when the decision is available.
	Query(state []float64, reply func(action float64))
}

// AckObserver is implemented by backends whose cost scales with ACK arrival
// (the CCP per-ACK mode); the controller notifies them on every ACK.
type AckObserver interface {
	OnAckEvent()
}

// MIController is the monitor-interval rate controller used by Aurora and
// MOCC: once per MI it summarizes congestion signals into features, asks the
// policy for an action through its deployment backend, and applies
//
//	rate ← rate·(1+δa)   if a ≥ 0
//	rate ← rate/(1+δ|a|) if a < 0
//
// It implements tcp.CongestionControl.
type MIController struct {
	Eng *netsim.Engine

	// Backend performs policy inference. Required.
	Backend Backend
	// Delta is the per-MI rate step δ. Defaults to 0.05.
	Delta float64
	// MinMI floors the monitor interval. Defaults to 2 ms.
	MinMI netsim.Time
	// FixedMI, when positive, pins the monitor interval to a constant
	// instead of tracking the RTT — the UDT-Aurora mode of the Figure 2
	// toy experiment, where the communication interval is the MI.
	FixedMI netsim.Time
	// MinRate/MaxRate clamp the pacing rate (bits/sec).
	MinRate, MaxRate int64
	// InitialRate is the rate before the first MI decision.
	InitialRate int64

	// OnState, when set, observes each (state, action, MI summary) — the
	// paper's NN input collector feeding the slow path.
	OnState func(state []float64, action float64, mi MISummary)

	rate int64
	srtt netsim.Time

	history [StateDim]float64
	state   [StateDim]float64

	minRTT     netsim.Time
	miStart    netsim.Time
	rttSum     netsim.Time
	rttCount   int
	ackedBytes int
	lostBytes  int
	prevAvgRTT netsim.Time
	running    bool

	// MIs counts completed monitor intervals.
	MIs int64
}

// MISummary carries the per-MI aggregates alongside the derived features.
type MISummary struct {
	Start, End  netsim.Time
	AvgRTT      netsim.Time
	MinRTT      netsim.Time
	AckedBytes  int
	LostBytes   int
	Rate        int64   // rate during the interval
	Utilization float64 // acked throughput / rate
}

// NewMIController returns a controller with paper-calibrated defaults.
func NewMIController(eng *netsim.Engine, backend Backend, initialRate int64) *MIController {
	return &MIController{
		Eng:         eng,
		Backend:     backend,
		Delta:       0.05,
		MinMI:       2 * netsim.Millisecond,
		MinRate:     1_000_000,
		MaxRate:     100_000_000_000,
		InitialRate: initialRate,
		rate:        initialRate,
		minRTT:      1 << 62,
	}
}

// Start implements tcp.CongestionControl.
func (m *MIController) Start(now netsim.Time) {
	m.running = true
	m.miStart = now
	m.scheduleMI()
}

// Stop halts the MI timer (flows that complete stop naturally; this is for
// experiment teardown).
func (m *MIController) Stop() { m.running = false }

func (m *MIController) miDuration() netsim.Time {
	if m.FixedMI > 0 {
		return m.FixedMI
	}
	d := m.srtt
	if d < m.MinMI {
		d = m.MinMI
	}
	return d
}

func (m *MIController) scheduleMI() {
	if !m.running {
		return
	}
	m.Eng.After(m.miDuration(), m.endMI)
}

// OnAck implements tcp.CongestionControl.
func (m *MIController) OnAck(a tcp.AckInfo) {
	m.srtt = a.SRTT
	if a.RTT > 0 {
		m.rttSum += a.RTT
		m.rttCount++
		if a.RTT < m.minRTT {
			m.minRTT = a.RTT
		}
	}
	m.ackedBytes += a.AckedBytes
	if obs, ok := m.Backend.(AckObserver); ok {
		obs.OnAckEvent()
	}
}

// OnLoss implements tcp.CongestionControl.
func (m *MIController) OnLoss(l tcp.LossInfo) {
	m.lostBytes += l.LostBytes
}

// endMI closes the current monitor interval, derives features, and queries
// the backend.
func (m *MIController) endMI() {
	if !m.running {
		return
	}
	now := m.Eng.Now()
	dur := now - m.miStart
	if dur <= 0 {
		dur = 1
	}

	avgRTT := m.prevAvgRTT
	if m.rttCount > 0 {
		avgRTT = m.rttSum / netsim.Time(m.rttCount)
	}

	// Feature 1: latency gradient in RTT-seconds per second.
	var latGrad float64
	if m.prevAvgRTT > 0 && avgRTT > 0 {
		latGrad = float64(avgRTT-m.prevAvgRTT) / float64(dur)
	}
	// Feature 2: latency ratio − 1.
	latRatio := 0.0
	if m.minRTT < 1<<62 && avgRTT > 0 {
		latRatio = float64(avgRTT)/float64(m.minRTT) - 1
	}
	// Feature 3: send ratio − 1, from intended vs acknowledged bytes.
	sent := float64(m.rate) * float64(dur) / 1e9 / 8
	acked := float64(m.ackedBytes)
	sendRatio := 0.0
	if acked > 1 {
		sendRatio = sent/acked - 1
	} else if sent > float64(netsim.MSS) {
		sendRatio = 5 // nothing delivered this MI: maximal distress
	}

	f := [FeatureDim]float64{
		clip(latGrad*20, -1, 1),
		clip(latRatio, -1, 5),
		clip(sendRatio, -1, 5),
	}

	// Slide the history and snapshot the state.
	copy(m.history[:], m.history[FeatureDim:])
	copy(m.history[StateDim-FeatureDim:], f[:])
	copy(m.state[:], m.history[:])

	summary := MISummary{
		Start: m.miStart, End: now,
		AvgRTT: avgRTT, MinRTT: m.minRTT,
		AckedBytes: m.ackedBytes, LostBytes: m.lostBytes,
		Rate: m.rate,
	}
	if m.rate > 0 {
		summary.Utilization = acked * 8 / (float64(m.rate) * float64(dur) / 1e9)
	}

	// Reset accumulators for the next MI.
	m.prevAvgRTT = avgRTT
	m.miStart = now
	m.rttSum, m.rttCount = 0, 0
	m.ackedBytes, m.lostBytes = 0, 0
	m.MIs++

	state := m.state[:]
	m.Backend.Query(state, func(action float64) {
		m.applyAction(action)
		if m.OnState != nil {
			m.OnState(state, action, summary)
		}
	})
	m.scheduleMI()
}

func (m *MIController) applyAction(a float64) {
	a = clip(a, -1, 1)
	r := float64(m.rate)
	if a >= 0 {
		r *= 1 + m.Delta*a
	} else {
		r /= 1 + m.Delta*(-a)
	}
	m.rate = int64(r)
	if m.rate < m.MinRate {
		m.rate = m.MinRate
	}
	if m.rate > m.MaxRate {
		m.rate = m.MaxRate
	}
}

// PacingRate implements tcp.CongestionControl.
func (m *MIController) PacingRate() int64 { return m.rate }

// CwndBytes implements tcp.CongestionControl: 2 × rate·SRTT, floored.
func (m *MIController) CwndBytes() int {
	rtt := m.srtt
	if rtt == 0 {
		rtt = m.MinMI
	}
	w := int(2 * float64(m.rate) / 8 * float64(rtt) / 1e9)
	if w < 10*netsim.MSS {
		w = 10 * netsim.MSS
	}
	return w
}

var _ tcp.CongestionControl = (*MIController)(nil)

func clip(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// TeacherPolicy is the hand-crafted rate controller used to pre-train and
// online-tune the NN policies by imitation: probe upward when the path is
// unloaded, back off proportionally to latency inflation, latency growth and
// undelivered bytes. Its equilibrium sits at ~8% latency inflation — a small
// standing queue that fits the testbed's shallow 150 KB bottleneck buffer.
type TeacherPolicy struct{}

// Act implements Policy from the most recent feature triple.
func (TeacherPolicy) Act(state []float64) float64 {
	latGrad := state[StateDim-3]
	latRatio := state[StateDim-2]
	sendRatio := state[StateDim-1]
	a := 0.4 - 5*latRatio - 3*latGrad - 2*sendRatio
	return clip(a, -1, 1)
}

// NNPolicy wraps a float userspace network (the tuned slow-path model).
type NNPolicy struct {
	Net *nn.Network
	out []float64
}

// NewNNPolicy returns a policy backed by net, which must map StateDim → 1.
func NewNNPolicy(net *nn.Network) *NNPolicy {
	if net.InputSize() != StateDim || net.OutputSize() != 1 {
		panic("cc: policy network must map StateDim -> 1")
	}
	return &NNPolicy{Net: net, out: make([]float64, 1)}
}

// Act implements Policy.
func (p *NNPolicy) Act(state []float64) float64 {
	p.Net.Forward(state, p.out)
	return clip(p.out[0], -1, 1)
}

// SnapshotPolicy wraps an integer-quantized snapshot (the kernel fast-path
// model); inference is integer-only.
type SnapshotPolicy struct {
	Prog *quant.Program
	in   []int64
	out  []int64
}

// NewSnapshotPolicy returns a policy backed by prog (StateDim → 1).
func NewSnapshotPolicy(prog *quant.Program) *SnapshotPolicy {
	if prog.InputSize() != StateDim || prog.OutputSize() != 1 {
		panic("cc: snapshot must map StateDim -> 1")
	}
	return &SnapshotPolicy{Prog: prog, in: make([]int64, StateDim), out: make([]int64, 1)}
}

// Act implements Policy.
func (p *SnapshotPolicy) Act(state []float64) float64 {
	for i, x := range state {
		p.in[i] = int64(x * float64(p.Prog.InputScale))
	}
	p.Prog.Infer(p.in, p.out)
	return clip(float64(p.out[0])/float64(p.Prog.OutputScale), -1, 1)
}

// DirectBackend answers queries synchronously — in-kernel inference. The
// optional CPU charge models the integer snapshot's execution cost.
type DirectBackend struct {
	Policy Policy
	CPU    *ksim.CPU
	Cost   netsim.Time
	Cat    ksim.Category
}

// Query implements Backend.
func (d *DirectBackend) Query(state []float64, reply func(float64)) {
	if d.CPU != nil && d.Cost > 0 {
		d.CPU.Charge(d.Cat, d.Cost)
	}
	reply(d.Policy.Act(state))
}

// CCPBackend models the Congestion Control Plane deployment: policy
// inference runs in userspace, and every exchange with the kernel costs two
// cross-space transitions. Interval > 0 batches decisions (CCP-Xms);
// Interval == 0 exchanges on every ACK (CCP-ACK).
type CCPBackend struct {
	Eng      *netsim.Engine
	CPU      *ksim.CPU
	Costs    ksim.Costs
	Policy   Policy
	Interval netsim.Time // 0 = per-ACK
	UserMACs int         // float inference cost basis

	pendingState []float64
	pendingReply func(float64)
	ticking      bool

	// RoundTrips counts kernel↔userspace exchanges (the overhead driver).
	RoundTrips int64
}

// OnAckEvent implements AckObserver: in per-ACK mode every ACK costs a
// cross-space exchange even when no MI decision is due.
func (c *CCPBackend) OnAckEvent() {
	if c.Interval == 0 {
		c.chargePerAck()
	}
}

// chargePerAck books one per-ACK exchange at the unscaled transition cost.
func (c *CCPBackend) chargePerAck() {
	c.RoundTrips++
	if c.CPU != nil {
		c.CPU.Charge(ksim.SoftIRQ, 2*c.Costs.CrossSpacePerAck)
	}
}

// Query implements Backend.
func (c *CCPBackend) Query(state []float64, reply func(float64)) {
	if c.Interval == 0 {
		// Per-ACK mode: the decision rides the next exchange; inference
		// itself still runs in userspace.
		if c.CPU != nil {
			c.CPU.Charge(ksim.User, ksim.InferCost(c.Costs.UserInferPerMAC, c.UserMACs))
		}
		action := c.Policy.Act(state)
		delay := 2 * c.Costs.CrossSpaceLatency
		if c.CPU != nil {
			delay += c.CPU.QueueDelay()
		}
		c.Eng.After(delay, func() { reply(action) })
		return
	}
	// Batched mode: keep only the latest request; CCP coalesces reports.
	c.pendingState = append(c.pendingState[:0], state...)
	c.pendingReply = reply
	if !c.ticking {
		c.ticking = true
		c.tick()
	}
}

func (c *CCPBackend) tick() {
	c.Eng.After(c.Interval, func() {
		if c.pendingReply != nil {
			st, rp := c.pendingState, c.pendingReply
			c.pendingReply = nil
			c.dispatch(st, rp)
		} else {
			// CCP pushes a congestion report across the boundary every
			// interval whether or not a new decision is due; the exchange
			// cost is unconditional (§2.2).
			c.chargeRoundTrip()
		}
		c.tick()
	})
}

func (c *CCPBackend) chargeRoundTrip() {
	c.RoundTrips++
	if c.CPU != nil {
		c.CPU.Charge(ksim.SoftIRQ, 2*c.Costs.CrossSpace)
		c.CPU.Charge(ksim.User, ksim.InferCost(c.Costs.UserInferPerMAC, c.UserMACs))
	}
}

// dispatch performs one kernel→user→kernel exchange and delivers the action
// after the transition latency.
func (c *CCPBackend) dispatch(state []float64, reply func(float64)) {
	c.chargeRoundTrip()
	delay := 2 * c.Costs.CrossSpaceLatency
	if c.CPU != nil {
		delay += c.CPU.QueueDelay()
	}
	action := c.Policy.Act(state) // userspace compute; cost charged above
	c.Eng.After(delay, func() { reply(action) })
}

var (
	_ Backend     = (*DirectBackend)(nil)
	_ Backend     = (*CCPBackend)(nil)
	_ AckObserver = (*CCPBackend)(nil)
)
