package cc

import (
	"math/rand"

	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/tcp"
)

// AlphaController is the absolute-rate variant of the monitor-interval
// controller: the NN's output is α ∈ [0, 1], the fraction of line rate to
// pace at — exactly the CC example the paper uses to motivate its scale-up
// quantization layer (§3.1: "its output is the portion α of the line rate as
// target sending rate"). Because α is absolute, a model tuned for one
// traffic pattern misbehaves under another, which is what the online
// adaptation experiments (Figures 5 and 12) exercise.
type AlphaController struct {
	Eng      *netsim.Engine
	Backend  Backend
	LineRate int64
	MinMI    netsim.Time
	MinAlpha float64

	// OnState observes (state, α, MI summary) for the slow path.
	OnState func(state []float64, alpha float64, mi MISummary)

	curAlpha float64
	srtt     netsim.Time

	history [StateDim]float64
	state   [StateDim]float64

	minRTT     netsim.Time
	miStart    netsim.Time
	rttSum     netsim.Time
	rttCount   int
	ackedBytes int
	lostBytes  int
	prevAvgRTT netsim.Time
	running    bool

	// MIs counts completed monitor intervals.
	MIs int64
}

// NewAlphaController returns a controller pacing at initialAlpha of
// lineRate until the first decision.
func NewAlphaController(eng *netsim.Engine, backend Backend, lineRate int64, initialAlpha float64) *AlphaController {
	return &AlphaController{
		Eng: eng, Backend: backend, LineRate: lineRate,
		MinMI: 2 * netsim.Millisecond, MinAlpha: 0.01,
		curAlpha: initialAlpha,
		minRTT:   1 << 62,
	}
}

// Start implements tcp.CongestionControl.
func (m *AlphaController) Start(now netsim.Time) {
	m.running = true
	m.miStart = now
	m.schedule()
}

// Stop halts the MI timer.
func (m *AlphaController) Stop() { m.running = false }

// Alpha returns the current line-rate fraction.
func (m *AlphaController) Alpha() float64 { return m.curAlpha }

func (m *AlphaController) schedule() {
	if !m.running {
		return
	}
	d := m.srtt
	if d < m.MinMI {
		d = m.MinMI
	}
	m.Eng.After(d, m.endMI)
}

// OnAck implements tcp.CongestionControl.
func (m *AlphaController) OnAck(a tcp.AckInfo) {
	m.srtt = a.SRTT
	if a.RTT > 0 {
		m.rttSum += a.RTT
		m.rttCount++
		if a.RTT < m.minRTT {
			m.minRTT = a.RTT
		}
	}
	m.ackedBytes += a.AckedBytes
	if obs, ok := m.Backend.(AckObserver); ok {
		obs.OnAckEvent()
	}
}

// OnLoss implements tcp.CongestionControl.
func (m *AlphaController) OnLoss(l tcp.LossInfo) { m.lostBytes += l.LostBytes }

func (m *AlphaController) endMI() {
	if !m.running {
		return
	}
	now := m.Eng.Now()
	dur := now - m.miStart
	if dur <= 0 {
		dur = 1
	}
	avgRTT := m.prevAvgRTT
	if m.rttCount > 0 {
		avgRTT = m.rttSum / netsim.Time(m.rttCount)
	}
	var latGrad float64
	if m.prevAvgRTT > 0 && avgRTT > 0 {
		latGrad = float64(avgRTT-m.prevAvgRTT) / float64(dur)
	}
	latRatio := 0.0
	if m.minRTT < 1<<62 && avgRTT > 0 {
		latRatio = float64(avgRTT)/float64(m.minRTT) - 1
	}
	sent := float64(m.PacingRate()) * float64(dur) / 1e9 / 8
	acked := float64(m.ackedBytes)
	sendRatio := 0.0
	if acked > 1 {
		sendRatio = sent/acked - 1
	} else if sent > float64(netsim.MSS) {
		sendRatio = 5
	}
	copy(m.history[:], m.history[FeatureDim:])
	m.history[StateDim-3] = clip(latGrad*20, -1, 1)
	m.history[StateDim-2] = clip(latRatio, -1, 5)
	m.history[StateDim-1] = clip(sendRatio, -1, 5)
	copy(m.state[:], m.history[:])

	summary := MISummary{
		Start: m.miStart, End: now, AvgRTT: avgRTT, MinRTT: m.minRTT,
		AckedBytes: m.ackedBytes, LostBytes: m.lostBytes, Rate: m.PacingRate(),
	}
	if summary.Rate > 0 {
		summary.Utilization = acked * 8 / (float64(summary.Rate) * float64(dur) / 1e9)
	}

	m.prevAvgRTT = avgRTT
	m.miStart = now
	m.rttSum, m.rttCount = 0, 0
	m.ackedBytes, m.lostBytes = 0, 0
	m.MIs++

	state := m.state[:]
	m.Backend.Query(state, func(alpha float64) {
		m.curAlpha = clip(alpha, m.MinAlpha, 1)
		if m.OnState != nil {
			m.OnState(state, m.curAlpha, summary)
		}
	})
	m.schedule()
}

// PacingRate implements tcp.CongestionControl.
func (m *AlphaController) PacingRate() int64 {
	r := int64(m.curAlpha * float64(m.LineRate))
	if r < 1_000_000 {
		r = 1_000_000
	}
	return r
}

// CwndBytes implements tcp.CongestionControl: 2 × rate·SRTT, floored.
func (m *AlphaController) CwndBytes() int {
	rtt := m.srtt
	if rtt == 0 {
		rtt = m.MinMI
	}
	w := int(2 * float64(m.PacingRate()) / 8 * float64(rtt) / 1e9)
	if w < 10*netsim.MSS {
		w = 10 * netsim.MSS
	}
	return w
}

// NewAuroraAlphaNet returns the Aurora architecture with a sigmoid output
// head producing α ∈ (0, 1).
func NewAuroraAlphaNet(seed int64) *nn.Network {
	return nn.New([]int{StateDim, 32, 16, 1},
		[]nn.Activation{nn.Tanh, nn.Tanh, nn.Sigmoid}, seed)
}

// NewMOCCAlphaNet returns the MOCC architecture with a sigmoid output head.
func NewMOCCAlphaNet(seed int64) *nn.Network {
	return nn.New([]int{StateDim, 64, 32, 1},
		[]nn.Activation{nn.Tanh, nn.Tanh, nn.Sigmoid}, seed)
}

// PretrainAlpha fits net to output the constant fraction alpha across the
// training environment's state distribution — the "NN trained for the
// original pattern" the adaptation experiments start from. Returns the
// final loss.
func PretrainAlpha(net *nn.Network, alpha float64, iters int, seed int64) float64 {
	r := newRand(seed)
	opt := nn.NewAdam(2e-3)
	const batch = 64
	x := make([][]float64, batch)
	y := make([][]float64, batch)
	var loss float64
	for it := 0; it < iters; it++ {
		for i := 0; i < batch; i++ {
			if i%2 == 0 {
				// Calm steady-state inputs: the states the controller
				// actually sees at equilibrium on its training pattern.
				x[i] = CalmState(r)
			} else {
				x[i] = RandomState(r)
			}
			y[i] = []float64{alpha}
		}
		loss = nn.TrainBatch(net, opt, x, y, 5)
	}
	return loss
}

// CalmState samples a near-equilibrium MI state: tiny latency gradients and
// ratios, negligible send-ratio distress.
func CalmState(r *rand.Rand) []float64 {
	s := make([]float64, StateDim)
	for t := 0; t < HistoryLen; t++ {
		s[t*FeatureDim+0] = r.NormFloat64() * 0.01
		s[t*FeatureDim+1] = absFloat(r.NormFloat64()) * 0.02
		s[t*FeatureDim+2] = absFloat(r.NormFloat64()) * 0.03
	}
	return s
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

var _ tcp.CongestionControl = (*AlphaController)(nil)
