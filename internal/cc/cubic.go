// Package cc implements the congestion control algorithms the LiteFlow paper
// evaluates: the kernel baselines CUBIC and BBR, DCTCP for the data-center
// experiments, and the monitor-interval NN rate controller shared by Aurora
// and MOCC together with its deployment backends (in-kernel snapshot vs
// CCP-style cross-space userspace inference).
package cc

import (
	"math"

	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/tcp"
)

// Cubic is the standard kernel CUBIC congestion controller (Ha, Rhee, Xu),
// window-based with cubic growth and β = 0.7 multiplicative decrease.
type Cubic struct {
	cwnd         float64 // bytes
	ssthresh     float64
	wMax         float64
	epochAt      netsim.Time
	k            float64 // cubic inflection offset in seconds
	srtt         netsim.Time
	inRecovery   bool
	recoverUntil netsim.Time
}

// Cubic constants from the paper/kernel: C scales the cubic term, beta is
// the multiplicative decrease factor.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// NewCubic returns a CUBIC controller with a 10-segment initial window.
func NewCubic() *Cubic {
	return &Cubic{cwnd: 10 * netsim.MSS, ssthresh: math.MaxFloat64}
}

// Start implements tcp.CongestionControl.
func (c *Cubic) Start(now netsim.Time) { c.epochAt = now }

// OnAck implements tcp.CongestionControl.
func (c *Cubic) OnAck(a tcp.AckInfo) {
	c.srtt = a.SRTT
	if a.Now > c.recoverUntil {
		c.inRecovery = false
	}
	if c.inRecovery {
		return
	}
	if c.cwnd < c.ssthresh {
		// Slow start.
		c.cwnd += float64(a.AckedBytes)
		return
	}
	// Congestion avoidance: track the cubic curve.
	t := float64(a.Now-c.epochAt) / 1e9
	target := cubicC*math.Pow(t-c.k, 3)*float64(netsim.MSS) + c.wMax
	if target > c.cwnd {
		// Approach the target over one RTT's worth of ACKs.
		c.cwnd += (target - c.cwnd) * float64(a.AckedBytes) / c.cwnd
	} else {
		// TCP-friendly floor: at least Reno-like growth.
		c.cwnd += float64(netsim.MSS) * float64(a.AckedBytes) / c.cwnd * 0.5
	}
}

// OnLoss implements tcp.CongestionControl.
func (c *Cubic) OnLoss(l tcp.LossInfo) {
	if c.inRecovery && !l.Timeout {
		return // one reduction per window
	}
	c.wMax = c.cwnd
	c.cwnd *= cubicBeta
	if c.cwnd < 2*netsim.MSS {
		c.cwnd = 2 * netsim.MSS
	}
	c.ssthresh = c.cwnd
	c.epochAt = l.Now
	c.k = math.Cbrt(c.wMax * (1 - cubicBeta) / (cubicC * float64(netsim.MSS)))
	c.inRecovery = true
	rtt := c.srtt
	if rtt == 0 {
		rtt = 10 * netsim.Millisecond
	}
	c.recoverUntil = l.Now + rtt
	if l.Timeout {
		c.cwnd = 2 * netsim.MSS
	}
}

// PacingRate implements tcp.CongestionControl: cwnd per SRTT with modest
// headroom, the kernel's pacing heuristic for window-based flows.
func (c *Cubic) PacingRate() int64 {
	rtt := c.srtt
	if rtt == 0 {
		rtt = 10 * netsim.Millisecond
	}
	return int64(1.2 * c.cwnd * 8 / (float64(rtt) / 1e9))
}

// CwndBytes implements tcp.CongestionControl.
func (c *Cubic) CwndBytes() int { return int(c.cwnd) }

var _ tcp.CongestionControl = (*Cubic)(nil)
