package cc

import (
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/tcp"
)

// DCTCP is Data Center TCP (Alizadeh et al., SIGCOMM 2010): a window-based
// controller that reduces cwnd in proportion to the fraction of ECN-marked
// bytes per RTT. It is the transport used by the flow-scheduling and
// load-balancing experiments (paper §5.2–5.3).
type DCTCP struct {
	cwnd     float64
	ssthresh float64
	alpha    float64
	srtt     netsim.Time

	windowEnd    netsim.Time
	ackedBytes   float64
	markedBytes  float64
	inRecovery   bool
	recoverUntil netsim.Time
}

// dctcpG is the EWMA gain for the marking-fraction estimate (paper value 1/16).
const dctcpG = 1.0 / 16

// NewDCTCP returns a DCTCP controller with a 10-segment initial window.
func NewDCTCP() *DCTCP {
	return &DCTCP{cwnd: 10 * netsim.MSS, ssthresh: 1 << 62, alpha: 1}
}

// Start implements tcp.CongestionControl.
func (d *DCTCP) Start(now netsim.Time) { d.windowEnd = now }

// OnAck implements tcp.CongestionControl.
func (d *DCTCP) OnAck(a tcp.AckInfo) {
	d.srtt = a.SRTT
	d.ackedBytes += float64(a.AckedBytes)
	if a.ECE {
		d.markedBytes += float64(a.AckedBytes)
	}

	// Once per RTT: fold the marked fraction into alpha and react.
	if a.Now >= d.windowEnd {
		if d.ackedBytes > 0 {
			f := d.markedBytes / d.ackedBytes
			d.alpha = (1-dctcpG)*d.alpha + dctcpG*f
			if d.markedBytes > 0 {
				d.cwnd *= 1 - d.alpha/2
				if d.cwnd < 2*netsim.MSS {
					d.cwnd = 2 * netsim.MSS
				}
				d.ssthresh = d.cwnd
			}
		}
		d.ackedBytes, d.markedBytes = 0, 0
		rtt := d.srtt
		if rtt == 0 {
			rtt = netsim.Millisecond
		}
		d.windowEnd = a.Now + rtt
	}

	if a.Now <= d.recoverUntil {
		return
	}
	d.inRecovery = false
	if d.cwnd < d.ssthresh {
		d.cwnd += float64(a.AckedBytes) // slow start
	} else {
		d.cwnd += float64(netsim.MSS) * float64(a.AckedBytes) / d.cwnd // AI
	}
}

// OnLoss implements tcp.CongestionControl: Reno-style halving.
func (d *DCTCP) OnLoss(l tcp.LossInfo) {
	if d.inRecovery && !l.Timeout {
		return
	}
	d.cwnd /= 2
	if l.Timeout {
		d.cwnd = 2 * netsim.MSS
	}
	if d.cwnd < 2*netsim.MSS {
		d.cwnd = 2 * netsim.MSS
	}
	d.ssthresh = d.cwnd
	d.inRecovery = true
	rtt := d.srtt
	if rtt == 0 {
		rtt = netsim.Millisecond
	}
	d.recoverUntil = l.Now + rtt
}

// PacingRate implements tcp.CongestionControl.
func (d *DCTCP) PacingRate() int64 {
	rtt := d.srtt
	if rtt == 0 {
		rtt = netsim.Millisecond
	}
	return int64(1.2 * d.cwnd * 8 / (float64(rtt) / 1e9))
}

// CwndBytes implements tcp.CongestionControl.
func (d *DCTCP) CwndBytes() int { return int(d.cwnd) }

var _ tcp.CongestionControl = (*DCTCP)(nil)
