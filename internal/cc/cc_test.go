package cc

import (
	"math"
	"math/rand"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/quant"
	"github.com/liteflow-sim/liteflow/internal/tcp"
)

// bottleneckScenario is the testbed analog of §2.2: sender A → switch S →
// receiver B with a 1 Gbps bottleneck, ~10 ms RTT, 150 KB buffer, and
// 0.1 Gbps of background UDP sharing the bottleneck.
type bottleneckScenario struct {
	eng        *netsim.Engine
	a, b, c    *tcp.Host
	sender     *tcp.Sender
	receiver   *tcp.Receiver
	goodput    *int64 // payload bytes delivered
	bottleneck *netsim.Link
}

func newBottleneck(ctrl tcp.CongestionControl, withUDP bool) *bottleneckScenario {
	eng := netsim.NewEngine()
	a := tcp.NewHost(eng, 1)
	b := tcp.NewHost(eng, 2)
	c := tcp.NewHost(eng, 3)
	s := netsim.NewSwitch(10)

	// Access links 10 Gbps / 2.5 ms; bottleneck 1 Gbps / 2.5 ms, 150 KB.
	aUp := netsim.NewLink(eng, s, 10e9, 2500*netsim.Microsecond, netsim.NewDropTail(1<<22))
	cUp := netsim.NewLink(eng, s, 10e9, 2500*netsim.Microsecond, netsim.NewDropTail(1<<22))
	down := netsim.NewLink(eng, b, 1e9, 2500*netsim.Microsecond, netsim.NewDropTail(150_000))
	bUp := netsim.NewLink(eng, s, 10e9, 2500*netsim.Microsecond, netsim.NewDropTail(1<<22))
	toA := netsim.NewLink(eng, a, 10e9, 2500*netsim.Microsecond, netsim.NewDropTail(1<<22))
	toC := netsim.NewLink(eng, c, 10e9, 2500*netsim.Microsecond, netsim.NewDropTail(1<<22))

	a.SetEgress(aUp)
	b.SetEgress(bUp)
	c.SetEgress(cUp)
	s.AddPort(1, toA)
	s.AddPort(2, down)
	s.AddPort(3, toC)
	s.AddRoute(1, 1)
	s.AddRoute(2, 2)
	s.AddRoute(3, 3)

	sc := &bottleneckScenario{eng: eng, a: a, b: b, c: c, bottleneck: down, goodput: new(int64)}
	sc.sender = tcp.NewSender(a, 1, b.ID, 0, ctrl)
	sc.receiver = tcp.NewReceiver(b, 1, a.ID)
	sc.receiver.OnDeliver = func(n int, now netsim.Time) { *sc.goodput += int64(n) }
	if withUDP {
		u := tcp.NewUDPSource(c, 99, b.ID, 100_000_000)
		u.Start()
	}
	return sc
}

// goodputGbps runs the scenario for dur and returns the goodput in Gbps
// measured after a warmup period.
func (sc *bottleneckScenario) goodputGbps(warmup, dur netsim.Time) float64 {
	sc.sender.Start()
	sc.eng.RunUntil(warmup)
	*sc.goodput = 0
	sc.eng.RunUntil(warmup + dur)
	return float64(*sc.goodput*8) / float64(dur) // bytes*8/ns = Gbps... (b/ns == Gb/s)
}

func TestCubicUtilizesBottleneck(t *testing.T) {
	sc := newBottleneck(NewCubic(), false)
	g := sc.goodputGbps(2*netsim.Second, 3*netsim.Second)
	if g < 0.6 || g > 1.0 {
		t.Errorf("CUBIC goodput = %.3f Gbps, want 0.6–1.0", g)
	}
}

func TestCubicBacksOffOnLoss(t *testing.T) {
	c := NewCubic()
	c.Start(0)
	c.OnAck(tcp.AckInfo{Now: 1, SRTT: 10 * netsim.Millisecond, AckedBytes: netsim.MSS})
	before := c.CwndBytes()
	c.OnLoss(tcp.LossInfo{Now: 2})
	after := c.CwndBytes()
	if float64(after) > float64(before)*cubicBeta+1 {
		t.Errorf("cwnd after loss = %d, want ≈ %.0f", after, float64(before)*cubicBeta)
	}
	// Second loss within the same window: no further reduction.
	c.OnLoss(tcp.LossInfo{Now: 3})
	if c.CwndBytes() != after {
		t.Error("second loss in the same RTT must not reduce again")
	}
	// Timeout collapses to minimum.
	c.OnLoss(tcp.LossInfo{Now: 100 * netsim.Millisecond, Timeout: true})
	if c.CwndBytes() != 2*netsim.MSS {
		t.Errorf("timeout cwnd = %d, want %d", c.CwndBytes(), 2*netsim.MSS)
	}
}

func TestBBRUtilizesBottleneck(t *testing.T) {
	sc := newBottleneck(NewBBR(), false)
	g := sc.goodputGbps(2*netsim.Second, 3*netsim.Second)
	if g < 0.6 || g > 1.05 {
		t.Errorf("BBR goodput = %.3f Gbps, want 0.6–1.05", g)
	}
}

func TestBBRExitsStartup(t *testing.T) {
	b := NewBBR()
	b.Start(0)
	now := netsim.Time(0)
	for i := 0; i < 100; i++ {
		now += 10 * netsim.Millisecond
		b.OnAck(tcp.AckInfo{Now: now, RTT: 10 * netsim.Millisecond,
			SRTT: 10 * netsim.Millisecond, AckedBytes: netsim.MSS,
			DeliveryRate: 500_000_000})
	}
	if b.state == 0 {
		t.Error("BBR must exit startup once bandwidth plateaus")
	}
	if b.PacingRate() > 800_000_000 {
		t.Errorf("post-startup rate = %d, want ≈ btlBw·gain ≤ 1.25×500M", b.PacingRate())
	}
}

func TestDCTCPKeepsQueuesShortWithECN(t *testing.T) {
	// DCTCP against an ECN-marking bottleneck must hold utilization with
	// minimal drops.
	eng := netsim.NewEngine()
	a := tcp.NewHost(eng, 1)
	b := tcp.NewHost(eng, 2)
	q := netsim.NewECNQueue(1<<20, 30_000)
	fwd := netsim.NewLink(eng, b, 1e9, 50*netsim.Microsecond, q)
	rev := netsim.NewLink(eng, a, 1e9, 50*netsim.Microsecond, netsim.NewDropTail(1<<20))
	a.SetEgress(fwd)
	b.SetEgress(rev)
	ctrl := NewDCTCP()
	s := tcp.NewSender(a, 1, b.ID, 0, ctrl)
	r := tcp.NewReceiver(b, 1, a.ID)
	var delivered int64
	r.OnDeliver = func(n int, now netsim.Time) { delivered += int64(n) }
	s.Start()
	eng.RunUntil(500 * netsim.Millisecond)
	gbps := float64(delivered*8) / 0.5e9
	if gbps < 0.5 {
		t.Errorf("DCTCP goodput = %.3f Gbps, want ≥ 0.5", gbps)
	}
	if q.Drops() > 20 {
		t.Errorf("DCTCP should avoid drops with ECN, got %d", q.Drops())
	}
	if ctrl.alpha > 0.9 {
		t.Errorf("alpha should fall below 0.9 in steady state, got %.3f", ctrl.alpha)
	}
}

func TestTeacherControllerConverges(t *testing.T) {
	eng := netsim.NewEngine()
	_ = eng
	sc := newBottleneck(nil, true)
	ctrl := NewMIController(sc.eng, &DirectBackend{Policy: TeacherPolicy{}}, 100_000_000)
	// Swap in the controller (scenario built with nil CC placeholder).
	sc.sender = tcp.NewSender(sc.a, 1, sc.b.ID, 0, ctrl)
	sc.receiver = tcp.NewReceiver(sc.b, 1, sc.a.ID)
	sc.receiver.OnDeliver = func(n int, now netsim.Time) { *sc.goodput += int64(n) }
	g := sc.goodputGbps(3*netsim.Second, 3*netsim.Second)
	ctrl.Stop()
	if g < 0.6 || g > 0.95 {
		t.Errorf("teacher-controlled goodput = %.3f Gbps, want 0.6–0.95 (bottleneck 0.9 after UDP)", g)
	}
	if ctrl.MIs < 100 {
		t.Errorf("controller ran %d MIs, want ≥ 100", ctrl.MIs)
	}
}

func TestPretrainedAuroraImitatesTeacher(t *testing.T) {
	net := NewAuroraNet(1)
	loss := Pretrain(net, 400, 2)
	if loss > 0.01 {
		t.Fatalf("pretrain loss = %v, want ≤ 0.01", loss)
	}
	teacher := TeacherPolicy{}
	policy := NewNNPolicy(net)
	r := rand.New(rand.NewSource(3))
	var mae float64
	const trials = 200
	for i := 0; i < trials; i++ {
		s := RandomState(r)
		mae += math.Abs(policy.Act(s) - teacher.Act(s))
	}
	mae /= trials
	if mae > 0.12 {
		t.Errorf("pretrained policy MAE vs teacher = %.3f, want ≤ 0.12", mae)
	}
}

func TestSnapshotPolicyMatchesFloatPolicy(t *testing.T) {
	net := NewAuroraNet(5)
	Pretrain(net, 200, 6)
	float := NewNNPolicy(net)
	snap := NewSnapshotPolicy(quant.Quantize(net, quant.DefaultConfig()))
	r := rand.New(rand.NewSource(7))
	var worst float64
	for i := 0; i < 200; i++ {
		s := RandomState(r)
		d := math.Abs(float.Act(s) - snap.Act(s))
		if d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Errorf("worst float-vs-snapshot action gap = %.4f, want ≤ 0.05", worst)
	}
}

func TestNNControllerAchievesGoodput(t *testing.T) {
	net := NewAuroraNet(1)
	Pretrain(net, 400, 2)
	sc := newBottleneck(nil, true)
	ctrl := NewMIController(sc.eng, &DirectBackend{Policy: NewNNPolicy(net)}, 100_000_000)
	sc.sender = tcp.NewSender(sc.a, 1, sc.b.ID, 0, ctrl)
	sc.receiver = tcp.NewReceiver(sc.b, 1, sc.a.ID)
	sc.receiver.OnDeliver = func(n int, now netsim.Time) { *sc.goodput += int64(n) }
	g := sc.goodputGbps(3*netsim.Second, 3*netsim.Second)
	ctrl.Stop()
	if g < 0.55 {
		t.Errorf("NN-controlled goodput = %.3f Gbps, want ≥ 0.55", g)
	}
}

func TestCCPLargeIntervalDegradesGoodput(t *testing.T) {
	// Figure 1a's shape: a 100 ms control interval must lose goodput
	// relative to in-kernel (direct) decisions under the same policy.
	run := func(backend Backend) float64 {
		sc := newBottleneck(nil, true)
		if c, ok := backend.(*CCPBackend); ok {
			c.Eng = sc.eng
		}
		ctrl := NewMIController(sc.eng, backend, 100_000_000)
		sc.sender = tcp.NewSender(sc.a, 1, sc.b.ID, 0, ctrl)
		sc.receiver = tcp.NewReceiver(sc.b, 1, sc.a.ID)
		sc.receiver.OnDeliver = func(n int, now netsim.Time) { *sc.goodput += int64(n) }
		g := sc.goodputGbps(3*netsim.Second, 4*netsim.Second)
		ctrl.Stop()
		return g
	}
	direct := run(&DirectBackend{Policy: TeacherPolicy{}})
	stale := run(&CCPBackend{Policy: TeacherPolicy{}, Interval: 100 * netsim.Millisecond,
		Costs: ksim.DefaultCosts()})
	if stale >= direct {
		t.Errorf("100ms CCP goodput %.3f must trail direct %.3f", stale, direct)
	}
	if stale > direct*0.97 {
		t.Errorf("100ms CCP should lose noticeably: %.3f vs %.3f", stale, direct)
	}
}

func TestCCPPerAckChargesPerAck(t *testing.T) {
	eng := netsim.NewEngine()
	cpu := ksim.NewCPU(eng, 4)
	b := &CCPBackend{Eng: eng, CPU: cpu, Costs: ksim.DefaultCosts(),
		Policy: TeacherPolicy{}, Interval: 0, UserMACs: 1500}
	for i := 0; i < 100; i++ {
		b.OnAckEvent()
	}
	if b.RoundTrips != 100 {
		t.Errorf("RoundTrips = %d, want 100", b.RoundTrips)
	}
	if cpu.BusyTime(ksim.SoftIRQ) == 0 {
		t.Error("per-ACK exchanges must charge softirq time")
	}
	// Decisions themselves run the model in userspace.
	b.Query(make([]float64, StateDim), func(float64) {})
	eng.Run()
	if cpu.BusyTime(ksim.User) == 0 {
		t.Error("per-ACK decisions must charge userspace inference time")
	}
}

func TestCCPBatchedCoalescesQueries(t *testing.T) {
	eng := netsim.NewEngine()
	b := &CCPBackend{Eng: eng, Costs: ksim.DefaultCosts(),
		Policy:   PolicyFunc(func(s []float64) float64 { return s[0] }),
		Interval: 50 * netsim.Millisecond}
	var got []float64
	// Three queries within one interval: only the last must be answered.
	b.Query([]float64{1}, func(a float64) { got = append(got, a) })
	b.Query([]float64{2}, func(a float64) { got = append(got, a) })
	b.Query([]float64{3}, func(a float64) { got = append(got, a) })
	eng.RunUntil(60 * netsim.Millisecond)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("answers = %v, want just the latest query's [3]", got)
	}
	if b.RoundTrips != 1 {
		t.Errorf("RoundTrips = %d, want 1", b.RoundTrips)
	}
}

func TestDirectBackendChargesKernelCost(t *testing.T) {
	eng := netsim.NewEngine()
	cpu := ksim.NewCPU(eng, 4)
	d := &DirectBackend{Policy: TeacherPolicy{}, CPU: cpu,
		Cost: 2 * netsim.Microsecond, Cat: ksim.Kernel}
	var acted bool
	d.Query(make([]float64, StateDim), func(a float64) { acted = true })
	if !acted {
		t.Fatal("direct backend must answer synchronously")
	}
	if cpu.BusyTime(ksim.Kernel) != 2*netsim.Microsecond {
		t.Errorf("kernel charge = %d", cpu.BusyTime(ksim.Kernel))
	}
}

func TestMIControllerRateBounds(t *testing.T) {
	eng := netsim.NewEngine()
	up := &DirectBackend{Policy: PolicyFunc(func([]float64) float64 { return 1 })}
	m := NewMIController(eng, up, 1_000_000)
	m.MaxRate = 2_000_000
	m.Start(0)
	eng.RunUntil(netsim.Second)
	m.Stop()
	if m.PacingRate() > 2_000_000 {
		t.Errorf("rate %d exceeds MaxRate", m.PacingRate())
	}
	down := &DirectBackend{Policy: PolicyFunc(func([]float64) float64 { return -1 })}
	m2 := NewMIController(eng, down, 2_000_000)
	m2.MinRate = 1_500_000
	m2.Start(eng.Now())
	eng.RunUntil(eng.Now() + netsim.Second)
	m2.Stop()
	if m2.PacingRate() < 1_500_000 {
		t.Errorf("rate %d under MinRate", m2.PacingRate())
	}
}

func TestMIControllerOnStateHook(t *testing.T) {
	eng := netsim.NewEngine()
	m := NewMIController(eng, &DirectBackend{Policy: TeacherPolicy{}}, 1_000_000)
	var states int
	m.OnState = func(s []float64, a float64, mi MISummary) {
		states++
		if len(s) != StateDim {
			t.Fatalf("state dim %d", len(s))
		}
	}
	m.Start(0)
	eng.RunUntil(100 * netsim.Millisecond)
	m.Stop()
	if states == 0 {
		t.Error("OnState must fire per MI")
	}
}

func TestPolicyConstructorValidation(t *testing.T) {
	small := nn.New([]int{3, 4, 1}, []nn.Activation{nn.Tanh, nn.Tanh}, 1)
	for _, fn := range []func(){
		func() { NewNNPolicy(small) },
		func() { NewSnapshotPolicy(quant.Quantize(small, quant.DefaultConfig())) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("wrong-dimension policy must panic")
				}
			}()
			fn()
		}()
	}
}

func TestClip(t *testing.T) {
	if clip(2, -1, 1) != 1 || clip(-2, -1, 1) != -1 || clip(0.5, -1, 1) != 0.5 {
		t.Error("clip broken")
	}
}

func BenchmarkTeacherScenarioSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := newBottleneck(nil, true)
		ctrl := NewMIController(sc.eng, &DirectBackend{Policy: TeacherPolicy{}}, 100_000_000)
		sc.sender = tcp.NewSender(sc.a, 1, sc.b.ID, 0, ctrl)
		sc.receiver = tcp.NewReceiver(sc.b, 1, sc.a.ID)
		sc.sender.Start()
		sc.eng.RunUntil(netsim.Second)
		ctrl.Stop()
	}
}
