package cc

import (
	"math"
	"math/rand"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/tcp"
)

func TestAlphaControllerAppliesFraction(t *testing.T) {
	eng := netsim.NewEngine()
	b := &DirectBackend{Policy: PolicyFunc(func([]float64) float64 { return 0.4 })}
	m := NewAlphaController(eng, b, 1_000_000_000, 0.9)
	if m.PacingRate() != 900_000_000 {
		t.Errorf("initial rate = %d, want 0.9 of line", m.PacingRate())
	}
	m.Start(0)
	eng.RunUntil(50 * netsim.Millisecond)
	m.Stop()
	if m.PacingRate() != 400_000_000 {
		t.Errorf("rate = %d, want 0.4 of line after decisions", m.PacingRate())
	}
	if m.Alpha() != 0.4 {
		t.Errorf("Alpha = %v", m.Alpha())
	}
}

func TestAlphaControllerClamps(t *testing.T) {
	eng := netsim.NewEngine()
	hi := NewAlphaController(eng, &DirectBackend{Policy: PolicyFunc(func([]float64) float64 { return 7 })}, 1e9, 0.5)
	hi.Start(0)
	eng.RunUntil(20 * netsim.Millisecond)
	hi.Stop()
	if hi.Alpha() != 1 {
		t.Errorf("alpha must clamp to 1, got %v", hi.Alpha())
	}
	lo := NewAlphaController(eng, &DirectBackend{Policy: PolicyFunc(func([]float64) float64 { return -3 })}, 1e9, 0.5)
	lo.Start(eng.Now())
	eng.RunUntil(eng.Now() + 20*netsim.Millisecond)
	lo.Stop()
	if lo.Alpha() != lo.MinAlpha {
		t.Errorf("alpha must clamp to MinAlpha, got %v", lo.Alpha())
	}
	// The pacing rate itself floors at 1 Mbps.
	if lo.PacingRate() < 1_000_000 {
		t.Errorf("rate floor broken: %d", lo.PacingRate())
	}
}

func TestAlphaControllerOnStateAndFeatures(t *testing.T) {
	eng := netsim.NewEngine()
	m := NewAlphaController(eng, &DirectBackend{Policy: PolicyFunc(func([]float64) float64 { return 0.5 })}, 1e9, 0.5)
	var states int
	var lastMI MISummary
	m.OnState = func(s []float64, a float64, mi MISummary) {
		states++
		lastMI = mi
		if len(s) != StateDim {
			t.Fatalf("state dim %d", len(s))
		}
		if a != 0.5 {
			t.Fatalf("alpha %v", a)
		}
	}
	m.Start(0)
	// Feed some ACKs so the MI summaries carry data.
	eng.After(netsim.Millisecond, func() {
		m.OnAck(tcp.AckInfo{Now: eng.Now(), RTT: 10 * netsim.Millisecond,
			SRTT: 10 * netsim.Millisecond, AckedBytes: 14480})
	})
	m.OnLoss(tcp.LossInfo{Now: 0, LostBytes: 1448})
	eng.RunUntil(100 * netsim.Millisecond)
	m.Stop()
	if states == 0 {
		t.Fatal("OnState must fire")
	}
	if lastMI.End <= lastMI.Start {
		t.Error("MI summary must cover an interval")
	}
	if m.MIs == 0 {
		t.Error("MI counter must advance")
	}
}

func TestAlphaControllerCwnd(t *testing.T) {
	eng := netsim.NewEngine()
	m := NewAlphaController(eng, &DirectBackend{Policy: PolicyFunc(func([]float64) float64 { return 1 })}, 1e9, 1)
	// No SRTT yet: floor applies.
	if m.CwndBytes() < 10*netsim.MSS {
		t.Error("cwnd floor broken")
	}
	m.OnAck(tcp.AckInfo{SRTT: 10 * netsim.Millisecond})
	// 2 × 1 Gbps × 10 ms = 2.5 MB.
	want := int(2 * 1e9 / 8 * 0.01)
	if got := m.CwndBytes(); got < want*9/10 || got > want*11/10 {
		t.Errorf("cwnd = %d, want ≈ %d", got, want)
	}
}

func TestCalmStateIsCalm(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		s := CalmState(r)
		if len(s) != StateDim {
			t.Fatal("dim")
		}
		for _, v := range s {
			if math.Abs(v) > 0.3 {
				t.Fatalf("calm state has extreme feature %v", v)
			}
		}
	}
}

func TestPretrainAlphaHitsTargetEverywhere(t *testing.T) {
	net := NewAuroraAlphaNet(5)
	loss := PretrainAlpha(net, 0.3, 300, 6)
	if loss > 0.01 {
		t.Fatalf("pretrain loss %v", loss)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		var s []float64
		if i%2 == 0 {
			s = CalmState(r)
		} else {
			s = RandomState(r)
		}
		got := net.Infer(s)[0]
		if math.Abs(got-0.3) > 0.12 {
			t.Errorf("pretrained output %v at sample %d, want ≈ 0.3", got, i)
		}
	}
}

func TestMOCCAlphaNetArchitecture(t *testing.T) {
	n := NewMOCCAlphaNet(1)
	if n.Layers[0].Out != 64 || n.Layers[1].Out != 32 {
		t.Error("MOCC must have 64/32 hidden layers")
	}
	a := NewAuroraAlphaNet(1)
	if a.Layers[0].Out != 32 || a.Layers[1].Out != 16 {
		t.Error("Aurora must have 32/16 hidden layers")
	}
	// Sigmoid heads keep α in (0, 1).
	out := a.Infer(make([]float64, StateDim))[0]
	if out <= 0 || out >= 1 {
		t.Errorf("alpha head out of range: %v", out)
	}
}
