package cc

import (
	"math/rand"

	"github.com/liteflow-sim/liteflow/internal/nn"
)

// NewAuroraNet returns the Aurora architecture from the paper: two hidden
// fully connected layers with 32 and 16 neurons, tanh output bounding the
// action to [−1, 1].
func NewAuroraNet(seed int64) *nn.Network {
	return nn.New([]int{StateDim, 32, 16, 1},
		[]nn.Activation{nn.Tanh, nn.Tanh, nn.Tanh}, seed)
}

// NewMOCCNet returns the MOCC architecture: two hidden layers with 64 and 32
// neurons (paper §5.1).
func NewMOCCNet(seed int64) *nn.Network {
	return nn.New([]int{StateDim, 64, 32, 1},
		[]nn.Activation{nn.Tanh, nn.Tanh, nn.Tanh}, seed)
}

// RandomState samples a plausible MI state vector: mostly calm intervals
// with occasional congestion excursions. Used for pre-training, quantization
// accuracy measurement (Figure 7) and fidelity evaluation.
func RandomState(r *rand.Rand) []float64 {
	s := make([]float64, StateDim)
	for t := 0; t < HistoryLen; t++ {
		latGrad := clip(r.NormFloat64()*0.2, -1, 1)
		latRatio := clip(absf(r.NormFloat64())*0.6, 0, 5)
		sendRatio := 0.0
		if r.Float64() < 0.25 { // occasional under-delivery
			sendRatio = clip(absf(r.NormFloat64())*1.2, 0, 5)
		}
		s[t*FeatureDim+0] = latGrad
		s[t*FeatureDim+1] = latRatio
		s[t*FeatureDim+2] = sendRatio
	}
	return s
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Pretrain fits net to imitate the TeacherPolicy over randomly sampled MI
// states — the "userspace-designed and trained NN" that LiteFlow receives as
// input (paper Figure 6). It returns the final batch loss. Deterministic for
// a given seed.
func Pretrain(net *nn.Network, iters int, seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	teacher := TeacherPolicy{}
	opt := nn.NewAdam(2e-3)
	const batch = 64
	x := make([][]float64, batch)
	y := make([][]float64, batch)
	var loss float64
	for it := 0; it < iters; it++ {
		for i := 0; i < batch; i++ {
			s := RandomState(r)
			x[i] = s
			y[i] = []float64{teacher.Act(s)}
		}
		loss = nn.TrainBatch(net, opt, x, y, 5)
	}
	return loss
}

// newRand returns a deterministic source for training helpers.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
