package codegen

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/quant"
)

func auroraProgram(t *testing.T) (*nn.Network, *quant.Program) {
	t.Helper()
	net := nn.New([]int{10, 8, 4, 1}, []nn.Activation{nn.Tanh, nn.ReLU, nn.Linear}, 17)
	return net, quant.Quantize(net, quant.DefaultConfig())
}

func TestGenerateProducesValidGo(t *testing.T) {
	_, p := auroraProgram(t)
	src, err := Generate(p, "aurora")
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(src); err != nil {
		t.Fatalf("generated source does not parse: %v\n%s", err, src)
	}
	for _, want := range []string{
		"func fc_0_comp", "func fc_1_comp", "func fc_2_comp",
		"func Infer_aurora", "lut_0", "registerModel(\"aurora\"",
		"DO NOT EDIT",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

func TestGeneratedModuleTypeChecks(t *testing.T) {
	// Compile-analog: the generated module plus the runtime support source
	// must form a type-correct package, like a .ko linking against the
	// LiteFlow core module's exported symbols.
	_, p := auroraProgram(t)
	src, err := Generate(p, "aurora")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for name, s := range map[string]string{"snapshot.go": src, "runtime.go": RuntimeSource()} {
		f, err := parser.ParseFile(fset, name, s, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("snapshot", fset, files, nil); err != nil {
		t.Fatalf("generated module fails type check: %v", err)
	}
}

func TestBuildRejectsBadName(t *testing.T) {
	_, p := auroraProgram(t)
	for _, bad := range []string{"", "1abc", "has space", "semi;colon", "dash-ed"} {
		if _, err := Build(p, bad); err == nil {
			t.Errorf("Build(%q) must fail", bad)
		}
	}
}

func TestBuildAcceptsValidNames(t *testing.T) {
	_, p := auroraProgram(t)
	for _, good := range []string{"aurora", "mocc_v2", "A1", "_x"} {
		if _, err := Build(p, good); err != nil {
			t.Errorf("Build(%q) failed: %v", good, err)
		}
	}
}

func TestValidateCatchesSyntaxErrors(t *testing.T) {
	if err := Validate("package snapshot\nfunc broken( {"); err == nil {
		t.Error("Validate must reject broken source")
	}
}

// evalExpr evaluates the restricted expression language emitted by rowExpr:
// integer literals, input[i] indexing, +, *, unary minus, and actv_<k>(...)
// calls resolved through the quantized program's layers.
func evalExpr(t *testing.T, e ast.Expr, input []int64, p *quant.Program) int64 {
	t.Helper()
	switch v := e.(type) {
	case *ast.BasicLit:
		n, err := strconv.ParseInt(v.Value, 10, 64)
		if err != nil {
			t.Fatalf("bad literal %q: %v", v.Value, err)
		}
		return n
	case *ast.ParenExpr:
		return evalExpr(t, v.X, input, p)
	case *ast.UnaryExpr:
		x := evalExpr(t, v.X, input, p)
		if v.Op.String() == "-" {
			return -x
		}
		t.Fatalf("unsupported unary op %s", v.Op)
	case *ast.IndexExpr:
		idx := evalExpr(t, v.Index, input, p)
		return input[idx]
	case *ast.BinaryExpr:
		x := evalExpr(t, v.X, input, p)
		y := evalExpr(t, v.Y, input, p)
		switch v.Op.String() {
		case "+":
			return x + y
		case "*":
			return x * y
		}
		t.Fatalf("unsupported binary op %s", v.Op)
	case *ast.CallExpr:
		name := v.Fun.(*ast.Ident).Name
		if !strings.HasPrefix(name, "actv_") {
			t.Fatalf("unsupported call %s", name)
		}
		li, err := strconv.Atoi(strings.TrimPrefix(name, "actv_"))
		if err != nil {
			t.Fatal(err)
		}
		acc := evalExpr(t, v.Args[0], input, p)
		return applyActivation(p.Layers[li], acc)
	}
	t.Fatalf("unsupported expr %T", e)
	return 0
}

// applyActivation reimplements the generated actv_<k> helpers using the
// layer's exported table/scale data, so the test checks the *inlined
// parameters* of the generated source independently.
func applyActivation(l *quant.Layer, acc int64) int64 {
	rescale := func(v, from, to int64) int64 {
		if from == to {
			return v
		}
		n := v * to
		if n >= 0 {
			return (n + from/2) / from
		}
		return (n - from/2) / from
	}
	switch l.Act {
	case nn.Tanh, nn.Sigmoid:
		tbl, lo, hi := l.TableData()
		if acc <= lo {
			return tbl[0]
		}
		if acc >= hi {
			return tbl[len(tbl)-1]
		}
		span := hi - lo
		num := (acc - lo) * int64(len(tbl)-1)
		idx := num / span
		rem := num % span
		return tbl[idx] + (tbl[idx+1]-tbl[idx])*rem/span
	case nn.ReLU:
		if acc < 0 {
			return 0
		}
		return rescale(acc, l.AccScale(), l.OutScale())
	default:
		return rescale(acc, l.AccScale(), l.OutScale())
	}
}

// TestGeneratedSourceMatchesProgram interprets the generated per-layer
// assignments and checks that, chained together, they reproduce the
// in-memory Program's inference exactly on random inputs. This is the
// "generated module computes what the snapshot computes" guarantee.
func TestGeneratedSourceMatchesProgram(t *testing.T) {
	_, p := auroraProgram(t)
	src, err := Generate(p, "aurora")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "snapshot.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Collect the assignment expressions of each fc_<k>_comp function.
	layerExprs := make(map[int][]ast.Expr)
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || !strings.HasPrefix(fd.Name.Name, "fc_") {
			continue
		}
		parts := strings.Split(fd.Name.Name, "_")
		li, err := strconv.Atoi(parts[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, stmt := range fd.Body.List {
			as, ok := stmt.(*ast.AssignStmt)
			if !ok {
				continue
			}
			layerExprs[li] = append(layerExprs[li], as.Rhs[0])
		}
	}
	if len(layerExprs) != len(p.Layers) {
		t.Fatalf("found %d generated layers, want %d", len(layerExprs), len(p.Layers))
	}

	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		in := make([]float64, p.InputSize())
		for i := range in {
			in[i] = r.Float64()*2 - 1
		}
		qin := p.QuantizeInput(in, nil)

		// Interpret the generated source layer by layer.
		cur := qin
		for li := 0; li < len(p.Layers); li++ {
			next := make([]int64, len(layerExprs[li]))
			for i, e := range layerExprs[li] {
				next[i] = evalExpr(t, e, cur, p)
			}
			cur = next
		}

		// Run the in-memory program.
		want := make([]int64, p.OutputSize())
		p.Infer(qin, want)

		for i := range want {
			if cur[i] != want[i] {
				t.Fatalf("trial %d output %d: generated source = %d, program = %d", trial, i, cur[i], want[i])
			}
		}
	}
}

func TestGenerateInlinesWeights(t *testing.T) {
	// A known weight must appear verbatim in the source (Listing 2 style).
	net := nn.New([]int{2, 1}, []nn.Activation{nn.Linear}, 1)
	net.Layers[0].W[0][0] = 1.0 // becomes WeightScale exactly
	cfg := quant.DefaultConfig()
	p := quant.Quantize(net, cfg)
	src, err := Generate(p, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	want := "input[0]*" + strconv.FormatInt(cfg.WeightScale, 10)
	if !strings.Contains(src, want) {
		t.Errorf("source must inline weight as %q:\n%s", want, src)
	}
}

func TestRuntimeSourceParses(t *testing.T) {
	if err := Validate(RuntimeSource()); err != nil {
		t.Fatalf("runtime source invalid: %v", err)
	}
}

func TestModuleFields(t *testing.T) {
	_, p := auroraProgram(t)
	m, err := Build(p, "snap1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "snap1" || m.Program != p || m.Source == "" {
		t.Errorf("module fields wrong: %+v", m.Name)
	}
}

func BenchmarkGenerateAurora(b *testing.B) {
	net := nn.New([]int{30, 32, 16, 1}, []nn.Activation{nn.Tanh, nn.Tanh, nn.Linear}, 1)
	p := quant.Quantize(net, quant.DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p, "aurora"); err != nil {
			b.Fatal(err)
		}
	}
}
