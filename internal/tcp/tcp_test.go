package tcp

import (
	"testing"

	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
)

// pair builds two hosts joined by a symmetric pipe.
func pair(eng *netsim.Engine, rateBps int64, delay netsim.Time, bufBytes int) (*Host, *Host) {
	a := NewHost(eng, 1)
	b := NewHost(eng, 2)
	p := netsim.NewPipe(eng, a, b, rateBps, delay, bufBytes)
	a.SetEgress(p.AtoB)
	b.SetEgress(p.BtoA)
	return a, b
}

// recordingCC wraps FixedRate and records the signals it sees.
type recordingCC struct {
	FixedRate
	acks    int
	losses  int
	eces    int
	lastRTT netsim.Time
}

func (r *recordingCC) OnAck(a AckInfo) {
	r.acks++
	if a.ECE {
		r.eces++
	}
	if a.RTT > 0 {
		r.lastRTT = a.RTT
	}
}
func (r *recordingCC) OnLoss(l LossInfo) { r.losses++ }

func TestFlowCompletesWithSaneFCT(t *testing.T) {
	eng := netsim.NewEngine()
	a, b := pair(eng, 100_000_000, 5*netsim.Millisecond, 1<<20) // 100 Mbps, 10 ms RTT
	const size = 1 << 20                                        // 1 MiB
	cc := NewFixedRate(80_000_000)
	var fct netsim.Time
	s := NewSender(a, 1, b.ID, size, cc)
	s.OnComplete = func(d netsim.Time) { fct = d }
	NewReceiver(b, 1, a.ID)
	s.Start()
	eng.RunUntil(10 * netsim.Second)
	if !s.Completed() {
		t.Fatalf("flow did not complete; acked=%d", s.AckedBytes())
	}
	// Serialization at 80 Mbps ≈ 105 ms + 10 ms RTT; allow generous slack.
	if fct < 100*netsim.Millisecond || fct > 300*netsim.Millisecond {
		t.Errorf("FCT = %v ms, want ≈ 115 ms", float64(fct)/1e6)
	}
	if s.AckedBytes() != size {
		t.Errorf("acked %d bytes, want %d", s.AckedBytes(), size)
	}
}

func TestUnboundedFlowTracksPacingRate(t *testing.T) {
	eng := netsim.NewEngine()
	a, b := pair(eng, 1_000_000_000, netsim.Millisecond, 1<<20)
	cc := NewFixedRate(200_000_000)
	s := NewSender(a, 1, b.ID, 0, cc)
	r := NewReceiver(b, 1, a.ID)
	var delivered int64
	r.OnDeliver = func(n int, now netsim.Time) { delivered += int64(n) }
	s.Start()
	eng.RunUntil(netsim.Second)
	gbps := float64(delivered*8) / 1e9
	if gbps < 0.17 || gbps > 0.21 {
		t.Errorf("goodput = %.3f Gbps, want ≈ 0.19 (pacing 0.2 minus headers)", gbps)
	}
}

func TestSRTTApproximatesPathRTT(t *testing.T) {
	eng := netsim.NewEngine()
	a, b := pair(eng, 1_000_000_000, 5*netsim.Millisecond, 1<<20)
	cc := NewFixedRate(50_000_000)
	s := NewSender(a, 1, b.ID, 0, cc)
	NewReceiver(b, 1, a.ID)
	s.Start()
	eng.RunUntil(500 * netsim.Millisecond)
	if s.SRTT() < 10*netsim.Millisecond || s.SRTT() > 12*netsim.Millisecond {
		t.Errorf("SRTT = %v ms, want ≈ 10", float64(s.SRTT())/1e6)
	}
}

func TestLossRecoveryUnderOverload(t *testing.T) {
	eng := netsim.NewEngine()
	// 10 Mbps bottleneck, small 30 KB buffer, sender blasting at 50 Mbps.
	a, b := pair(eng, 10_000_000, 2*netsim.Millisecond, 30_000)
	cc := &recordingCC{FixedRate: FixedRate{Bps: 50_000_000, Wnd: 1 << 30}}
	const size = 500_000
	s := NewSender(a, 1, b.ID, size, cc)
	NewReceiver(b, 1, a.ID)
	s.Start()
	eng.RunUntil(30 * netsim.Second)
	if !s.Completed() {
		t.Fatalf("flow must complete despite loss; acked=%d/%d rtx=%d", s.AckedBytes(), int64(size), s.Retransmits)
	}
	if s.Retransmits == 0 {
		t.Error("overdriven bottleneck must force retransmissions")
	}
	if cc.losses == 0 {
		t.Error("congestion controller must see loss events")
	}
}

func TestReceiverDeduplicates(t *testing.T) {
	eng := netsim.NewEngine()
	a, b := pair(eng, 1_000_000_000, netsim.Millisecond, 1<<20)
	r := NewReceiver(b, 7, a.ID)
	var delivered int64
	r.OnDeliver = func(n int, now netsim.Time) { delivered += int64(n) }
	// Deliver the same segment twice, bypassing a sender. The duplicate is a
	// distinct packet object, as a retransmission would be (the host recycles
	// every packet it consumes, so re-sending the same pointer is invalid).
	seg := netsim.Packet{Flow: 7, Src: a.ID, Dst: b.ID, Seq: 0, Size: netsim.HeaderBytes + 1000}
	pkt, dup := seg, seg
	b.HandlePacket(&pkt)
	b.HandlePacket(&dup)
	eng.Run()
	if delivered != 1000 {
		t.Errorf("delivered = %d, want 1000 (dup ignored)", delivered)
	}
	if r.UniqueBytes() != 1000 {
		t.Errorf("UniqueBytes = %d, want 1000", r.UniqueBytes())
	}
	if r.DupAcks != 1 {
		t.Errorf("DupAcks = %d, want 1", r.DupAcks)
	}
}

func TestRTORecoversFromBlackhole(t *testing.T) {
	eng := netsim.NewEngine()
	a := NewHost(eng, 1)
	sink := &netsim.Sink{} // data vanishes: no ACKs ever
	a.SetEgress(netsim.NewLink(eng, sink, 1e9, netsim.Millisecond, nil))
	cc := &recordingCC{FixedRate: FixedRate{Bps: 10_000_000, Wnd: 3 * netsim.MSS}}
	s := NewSender(a, 1, 2, 100_000, cc)
	s.Start()
	eng.RunUntil(500 * netsim.Millisecond)
	if s.Timeouts == 0 {
		t.Error("blackholed flow must fire RTO")
	}
	if s.Retransmits == 0 {
		t.Error("RTO must queue retransmissions")
	}
	found := false
	for _, l := range []bool{cc.losses > 0} {
		found = found || l
	}
	if !found {
		t.Error("controller must see timeout losses")
	}
}

func TestECNEchoReachesController(t *testing.T) {
	eng := netsim.NewEngine()
	a := NewHost(eng, 1)
	b := NewHost(eng, 2)
	// Forward path marks ECN aggressively (K = 10 KB).
	fwd := netsim.NewLink(eng, b, 50_000_000, netsim.Millisecond, netsim.NewECNQueue(1<<20, 10_000))
	rev := netsim.NewLink(eng, a, 50_000_000, netsim.Millisecond, netsim.NewDropTail(1<<20))
	a.SetEgress(fwd)
	b.SetEgress(rev)
	cc := &recordingCC{FixedRate: FixedRate{Bps: 100_000_000, Wnd: 1 << 30}} // overdrive to build queue
	s := NewSender(a, 1, b.ID, 0, cc)
	NewReceiver(b, 1, a.ID)
	s.Start()
	eng.RunUntil(200 * netsim.Millisecond)
	if cc.eces == 0 {
		t.Error("controller must see ECN echoes from a marking queue")
	}
}

func TestHostCPUSaturationDegradesGoodput(t *testing.T) {
	run := func(withCPU bool, crossLoad bool) float64 {
		eng := netsim.NewEngine()
		a, b := pair(eng, 2_000_000_000, netsim.Millisecond, 1<<22)
		costs := ksim.DefaultCosts()
		if withCPU {
			a.AttachCPU(ksim.NewCPU(eng, 1), costs)
			b.AttachCPU(ksim.NewCPU(eng, 1), costs)
		}
		if crossLoad {
			// A hostile busy-loop: burn the sender CPU with softirq work,
			// emulating frequent cross-space switching.
			var burn func()
			burn = func() {
				a.CPU.Charge(ksim.SoftIRQ, 800*netsim.Microsecond)
				eng.After(netsim.Millisecond, burn)
			}
			eng.After(0, burn)
		}
		cc := NewFixedRate(1_000_000_000)
		s := NewSender(a, 1, b.ID, 0, cc)
		r := NewReceiver(b, 1, a.ID)
		var delivered int64
		r.OnDeliver = func(n int, now netsim.Time) { delivered += int64(n) }
		s.Start()
		eng.RunUntil(netsim.Second)
		return float64(delivered * 8)
	}
	unconstrained := run(false, false)
	cpuOnly := run(true, false)
	loaded := run(true, true)
	if cpuOnly > unconstrained {
		t.Errorf("CPU model must not exceed unconstrained: %v > %v", cpuOnly, unconstrained)
	}
	if loaded > cpuOnly*0.7 {
		t.Errorf("softirq load must markedly degrade goodput: loaded=%.0f vs idle=%.0f", loaded, cpuOnly)
	}
}

func TestUDPSourceRate(t *testing.T) {
	eng := netsim.NewEngine()
	a := NewHost(eng, 1)
	sink := &netsim.Sink{}
	a.SetEgress(netsim.NewLink(eng, sink, 1e9, 0, nil))
	u := NewUDPSource(a, 99, 2, 100_000_000) // 0.1 Gbps
	u.Start()
	eng.RunUntil(netsim.Second)
	u.Stop()
	gbps := float64(sink.Bytes*8) / 1e9
	if gbps < 0.095 || gbps > 0.105 {
		t.Errorf("UDP rate = %.4f Gbps, want ≈ 0.1", gbps)
	}
}

func TestUDPSourceSetRateAndPause(t *testing.T) {
	eng := netsim.NewEngine()
	a := NewHost(eng, 1)
	sink := &netsim.Sink{}
	a.SetEgress(netsim.NewLink(eng, sink, 1e9, 0, nil))
	u := NewUDPSource(a, 99, 2, 0) // paused
	u.Start()
	eng.RunUntil(100 * netsim.Millisecond)
	if sink.Packets != 0 {
		t.Error("zero-rate source must not transmit")
	}
	u.SetRate(50_000_000)
	eng.RunUntil(1100 * netsim.Millisecond)
	if sink.Packets == 0 {
		t.Error("source must resume after SetRate")
	}
}

func TestFINCallbackFires(t *testing.T) {
	eng := netsim.NewEngine()
	a, b := pair(eng, 1_000_000_000, netsim.Millisecond, 1<<20)
	cc := NewFixedRate(100_000_000)
	s := NewSender(a, 1, b.ID, 10_000, cc)
	r := NewReceiver(b, 1, a.ID)
	var finFlow netsim.FlowID
	r.OnFIN = func(f netsim.FlowID) { finFlow = f }
	s.Start()
	eng.RunUntil(netsim.Second)
	if finFlow != 1 {
		t.Errorf("OnFIN flow = %d, want 1", finFlow)
	}
}

func TestTransmitWithoutEgressPanics(t *testing.T) {
	eng := netsim.NewEngine()
	h := NewHost(eng, 1)
	defer func() {
		if recover() == nil {
			t.Error("Transmit without egress must panic")
		}
	}()
	h.Transmit(&netsim.Packet{})
}

func TestMultipleFlowsShareBottleneckFairlyEnough(t *testing.T) {
	eng := netsim.NewEngine()
	a, b := pair(eng, 100_000_000, netsim.Millisecond, 1<<20)
	var got [2]int64
	for i := 0; i < 2; i++ {
		i := i
		cc := NewFixedRate(45_000_000)
		s := NewSender(a, netsim.FlowID(i+1), b.ID, 0, cc)
		r := NewReceiver(b, netsim.FlowID(i+1), a.ID)
		r.OnDeliver = func(n int, now netsim.Time) { got[i] += int64(n) }
		s.Start()
	}
	eng.RunUntil(netsim.Second)
	if got[0] == 0 || got[1] == 0 {
		t.Fatalf("both flows must progress: %v", got)
	}
	ratio := float64(got[0]) / float64(got[1])
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("equal-rate flows should share ≈ equally, ratio = %.2f", ratio)
	}
}

func BenchmarkFlowThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := netsim.NewEngine()
		a, h := pair(eng, 1_000_000_000, netsim.Millisecond, 1<<20)
		cc := NewFixedRate(500_000_000)
		s := NewSender(a, 1, h.ID, 0, cc)
		NewReceiver(h, 1, a.ID)
		s.Start()
		eng.RunUntil(100 * netsim.Millisecond)
	}
}
