//go:build race

package tcp

// raceEnabled mirrors netsim's guard: the race detector's instrumentation
// allocates on the event loop, so zero-alloc assertions skip under -race.
const raceEnabled = true
