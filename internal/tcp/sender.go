package tcp

import (
	"github.com/liteflow-sim/liteflow/internal/netsim"
)

// segment is one outstanding MSS-sized unit of the flow's byte stream.
// Segments are recycled through the sender's freelist once every reference
// (ordered outstanding list, retransmission queue) has released them.
type segment struct {
	seq    int64
	size   int // payload bytes
	tag    int64
	sentAt netsim.Time
	rtx    int // retransmission count
	acked  bool
	lost   bool // marked lost, awaiting retransmission
	fin    bool
	inOut  bool // referenced by s.outstanding
	inRtx  bool // referenced by s.rtxQueue
}

// appMsg is one application message pushed onto an app-limited sender:
// bytes [start, end) of the stream, with an opaque tag carried by the first
// segment (segments never span a message boundary, so exactly one segment
// starts at start and the tag survives retransmission).
type appMsg struct {
	start, end int64
	tag        int64
}

// Sender transmits a flow with pacing, a congestion window, selective-repeat
// retransmission (per-segment ACKs, dup-threshold and RTO loss detection),
// and SRTT/delivery-rate estimation. It is driven entirely by simulator
// events. The steady-state send/ACK loop is allocation-free: packets come
// from the netsim pool, segments from a per-sender freelist, and the pacing
// and RTO callbacks are bound once at construction.
type Sender struct {
	Host *Host
	Flow netsim.FlowID
	Dst  int
	// Size is the flow length in bytes; 0 means unbounded (long-running).
	Size int64
	CC   CongestionControl

	// OnComplete, when set, fires once when every byte has been
	// acknowledged, with the flow completion time.
	OnComplete func(fct netsim.Time)

	// OnAcked, when set, fires on every newly acknowledged segment with the
	// cumulative payload bytes acknowledged. App-limited senders (Push) use
	// it to observe upload progress on the sender's own partition.
	OnAcked func(ackedBytes int64, now netsim.Time)

	// DupThresh is the reordering tolerance in segments before a hole is
	// declared lost (fast retransmit). Defaults to 3.
	DupThresh int
	// MinRTO bounds the retransmission timeout from below. Defaults to the
	// Linux kernel's 200 ms; anything close to the path RTT causes
	// spurious timeouts that collapse window-based controllers.
	MinRTO netsim.Time

	// Prio tags every data packet with a priority band (flow scheduling:
	// the output enforcer writes the NN's predicted priority here).
	Prio int
	// Path pins every data packet to an explicit switch path (load
	// balancing: XPath-style path control). nil uses table routing.
	Path []int

	started   bool
	startAt   netsim.Time
	completed bool

	// App-limited mode (Push): the flow is long-lived and the stream grows
	// by discrete messages instead of being fully available up front.
	appLimited bool
	appBytes   int64    // stream length so far: sum of all pushed messages
	msgs       []appMsg // pending + in-flight messages; live region starts at msgHead
	msgHead    int

	nextSeq     int64
	outstanding []*segment // ordered by seq; live region starts at outHead
	outHead     int
	bySeq       map[int64]*segment
	rtxQueue    []*segment
	segFree     []*segment
	inflight    int
	ackedBytes  int64
	highestAck  int64 // highest segment seq acknowledged

	srtt   netsim.Time
	rttvar netsim.Time
	pacing bool

	// The RTO is deadline-based: at most one timer event is outstanding;
	// each ACK only moves rtoDeadline forward, and a timer that fires early
	// re-arms itself for the remainder — no per-ACK closure allocation.
	rtoDeadline netsim.Time
	rtoPending  bool // a fire event is scheduled in the engine
	rtoArm      bool

	sendLoopFn func()
	rtoFireFn  func()

	// Delivery-rate estimation window.
	rateWinStart netsim.Time
	rateWinBytes int64
	deliveryRate int64

	// Counters for experiment reporting.
	Retransmits int64
	Timeouts    int64
}

// NewSender creates a sender for flow → dst on host h governed by cc, and
// registers it with the host's demux table.
func NewSender(h *Host, flow netsim.FlowID, dst int, size int64, cc CongestionControl) *Sender {
	s := &Sender{
		Host: h, Flow: flow, Dst: dst, Size: size, CC: cc,
		DupThresh: 3,
		MinRTO:    200 * netsim.Millisecond,
		bySeq:     make(map[int64]*segment),
	}
	s.sendLoopFn = s.sendLoop
	s.rtoFireFn = s.fireRTO
	h.registerSender(s)
	return s
}

// Start begins transmission.
func (s *Sender) Start() {
	if s.started {
		return
	}
	s.started = true
	s.startAt = s.Host.Eng.Now()
	s.rateWinStart = s.startAt
	s.CC.Start(s.startAt)
	// An app-limited sender with nothing pushed yet stays unarmed: with a
	// million idle sessions, a 200 ms timer per connection would dominate
	// the event heap. Push re-arms when data arrives.
	if s.remaining() || s.inflight > 0 {
		s.armRTO()
	}
	s.maybeSend()
}

// MarkAppLimited switches an unbounded sender into app-limited mode before
// any data exists. A Size==0 sender is otherwise an infinite source the
// moment it starts; a connection that will be driven by Push must be marked
// (or pushed to) before Start, or it transmits phantom data.
func (s *Sender) MarkAppLimited() {
	if s.Size != 0 {
		panic("tcp: MarkAppLimited requires an unbounded sender (Size == 0)")
	}
	s.appLimited = true
}

// Push appends an n-byte application message to an app-limited stream. The
// message's first segment carries tag (echoed on retransmission, surfaced
// exactly once by Receiver.OnApp); segments never span message boundaries.
// Push requires Size == 0 — the stream has no flow length, it grows message
// by message — and must run on the sender host's partition, which is free at
// setup time and inside any callback delivered to this host.
func (s *Sender) Push(n int64, tag int64) {
	if n <= 0 {
		panic("tcp: Push needs a positive message size")
	}
	if s.Size != 0 {
		panic("tcp: Push requires an unbounded sender (Size == 0)")
	}
	s.appLimited = true
	start := s.appBytes
	s.appBytes += n
	s.msgs = append(s.msgs, appMsg{start: start, end: s.appBytes, tag: tag})
	if s.started {
		s.armRTO()
		s.maybeSend()
	}
}

// Pushed returns the cumulative bytes handed to an app-limited sender.
func (s *Sender) Pushed() int64 { return s.appBytes }

// AckedBytes returns the cumulative payload bytes acknowledged.
func (s *Sender) AckedBytes() int64 { return s.ackedBytes }

// Completed reports whether the whole flow has been acknowledged.
func (s *Sender) Completed() bool { return s.completed }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Sender) SRTT() netsim.Time { return s.srtt }

// Inflight returns the bytes currently outstanding.
func (s *Sender) Inflight() int { return s.inflight }

// remaining reports whether new (never-sent) data exists.
func (s *Sender) remaining() bool {
	if s.appLimited {
		return s.nextSeq < s.appBytes
	}
	return s.Size == 0 || s.nextSeq < s.Size
}

// allocSegment takes a zeroed segment from the freelist (or the heap).
func (s *Sender) allocSegment() *segment {
	if n := len(s.segFree); n > 0 {
		seg := s.segFree[n-1]
		s.segFree[n-1] = nil
		s.segFree = s.segFree[:n-1]
		*seg = segment{}
		return seg
	}
	return &segment{}
}

// freeSegment recycles a segment no longer referenced anywhere.
func (s *Sender) freeSegment(seg *segment) {
	s.segFree = append(s.segFree, seg)
}

// maybeSend kicks the pacing loop if it is idle and work is available.
func (s *Sender) maybeSend() {
	if s.pacing || s.completed {
		return
	}
	s.pacing = true
	s.sendLoop()
}

func (s *Sender) sendLoop() {
	if s.completed {
		s.pacing = false
		return
	}
	// Anything to send?
	if len(s.rtxQueue) == 0 && !s.remaining() {
		s.pacing = false
		return
	}
	// Window check.
	if s.inflight+netsim.MSS > s.CC.CwndBytes() {
		s.pacing = false // resumed by the next ACK
		return
	}
	seg := s.pickSegment()
	if seg == nil {
		s.pacing = false
		return
	}
	s.transmit(seg)

	rate := s.CC.PacingRate()
	if rate < 1000 {
		rate = 1000 // floor: one packet per ~12 s, keeps the loop alive
	}
	wire := int64(seg.size+netsim.HeaderBytes) * 8
	gap := netsim.Time(wire * int64(netsim.Second) / rate)
	s.Host.Eng.After(gap, s.sendLoopFn)
}

// pickSegment returns the next segment to transmit: retransmissions first.
func (s *Sender) pickSegment() *segment {
	for len(s.rtxQueue) > 0 {
		seg := s.rtxQueue[0]
		s.rtxQueue = s.rtxQueue[1:]
		seg.inRtx = false
		if seg.acked {
			// Acked while waiting for retransmission; recycle if the
			// outstanding list has also released it.
			if !seg.inOut {
				s.freeSegment(seg)
			}
			continue
		}
		seg.rtx++
		s.Retransmits++
		return seg
	}
	if !s.remaining() {
		return nil
	}
	size := netsim.MSS
	var tag int64
	if s.appLimited {
		// Segments respect message boundaries so the tag lands on the
		// unique segment starting the message.
		m := &s.msgs[s.msgHead]
		if s.nextSeq == m.start {
			tag = m.tag
		}
		if rem := m.end - s.nextSeq; rem < int64(size) {
			size = int(rem)
		}
		if s.nextSeq+int64(size) >= m.end {
			s.msgHead++
			if s.msgHead > 32 && s.msgHead*2 >= len(s.msgs) {
				n := copy(s.msgs, s.msgs[s.msgHead:])
				s.msgs = s.msgs[:n]
				s.msgHead = 0
			}
		}
	} else if s.Size > 0 && s.Size-s.nextSeq < int64(size) {
		size = int(s.Size - s.nextSeq)
	}
	seg := s.allocSegment()
	seg.seq, seg.size = s.nextSeq, size
	seg.tag = tag
	if s.Size > 0 && s.nextSeq+int64(size) >= s.Size {
		seg.fin = true
	}
	s.nextSeq += int64(size)
	seg.inOut = true
	s.outstanding = append(s.outstanding, seg)
	s.bySeq[seg.seq] = seg
	return seg
}

func (s *Sender) transmit(seg *segment) {
	now := s.Host.Eng.Now()
	seg.sentAt = now
	seg.lost = false
	s.inflight += seg.size
	p := netsim.AllocPacket()
	p.Flow, p.Src, p.Dst = s.Flow, s.Host.ID, s.Dst
	p.Seq, p.Size = seg.seq, seg.size+netsim.HeaderBytes
	p.FIN = seg.fin
	p.App = seg.tag
	p.SentAt = now
	p.Prio = s.Prio
	p.Path = s.Path
	s.Host.Transmit(p)
}

// handleAck processes a selective acknowledgment for one segment.
func (s *Sender) handleAck(p *netsim.Packet) {
	if s.completed {
		return
	}
	seg, ok := s.bySeq[p.AckNo]
	if !ok || seg.acked {
		return
	}
	now := s.Host.Eng.Now()
	seg.acked = true
	delete(s.bySeq, seg.seq)
	if !seg.lost {
		s.inflight -= seg.size
	}
	s.ackedBytes += int64(seg.size)
	if seg.seq > s.highestAck {
		s.highestAck = seg.seq
	}

	// RTT sampling (Karn's rule: skip retransmitted segments).
	var rtt netsim.Time
	if seg.rtx == 0 {
		rtt = now - seg.sentAt
		if s.srtt == 0 {
			s.srtt = rtt
			s.rttvar = rtt / 2
		} else {
			diff := s.srtt - rtt
			if diff < 0 {
				diff = -diff
			}
			s.rttvar = (3*s.rttvar + diff) / 4
			s.srtt = (7*s.srtt + rtt) / 8
		}
	}

	// Delivery-rate estimation over an SRTT-wide window.
	s.rateWinBytes += int64(seg.size)
	win := s.srtt
	if win < netsim.Millisecond {
		win = netsim.Millisecond
	}
	if now-s.rateWinStart >= win {
		s.deliveryRate = s.rateWinBytes * 8 * int64(netsim.Second) / int64(now-s.rateWinStart)
		s.rateWinStart = now
		s.rateWinBytes = 0
	}

	s.armRTO()
	s.detectLoss(seg)

	s.CC.OnAck(AckInfo{
		Now: now, RTT: rtt, SRTT: s.srtt,
		AckedBytes: seg.size, ECE: p.ECE,
		Inflight: s.inflight, DeliveryRate: s.deliveryRate,
	})

	s.pruneOutstanding()

	if s.OnAcked != nil {
		s.OnAcked(s.ackedBytes, now)
	}

	if s.Size > 0 && s.ackedBytes >= s.Size {
		s.completed = true
		if s.OnComplete != nil {
			s.OnComplete(now - s.startAt)
		}
		return
	}
	s.maybeSend()
}

// detectLoss marks outstanding segments that precede the just-acked segment
// by more than DupThresh segments (and were sent earlier) as lost.
func (s *Sender) detectLoss(acked *segment) {
	threshold := s.highestAck - int64(s.DupThresh*netsim.MSS)
	lost := 0
	for _, seg := range s.outstanding[s.outHead:] {
		if seg.acked || seg.lost {
			continue
		}
		if seg.seq < threshold && seg.sentAt <= acked.sentAt {
			seg.lost = true
			s.inflight -= seg.size
			lost += seg.size
			seg.inRtx = true
			s.rtxQueue = append(s.rtxQueue, seg)
		}
	}
	if lost > 0 {
		s.CC.OnLoss(LossInfo{Now: s.Host.Eng.Now(), LostBytes: lost})
		s.maybeSend()
	}
}

// pruneOutstanding drops acked segments from the front of the ordered list,
// recycling the ones the retransmission queue no longer references. The
// backing array is compacted once the dead prefix dominates, so steady-state
// traffic reuses it instead of growing without bound.
func (s *Sender) pruneOutstanding() {
	for s.outHead < len(s.outstanding) && s.outstanding[s.outHead].acked {
		seg := s.outstanding[s.outHead]
		s.outstanding[s.outHead] = nil
		s.outHead++
		seg.inOut = false
		if !seg.inRtx {
			s.freeSegment(seg)
		}
	}
	if s.outHead > 32 && s.outHead*2 >= len(s.outstanding) {
		n := copy(s.outstanding, s.outstanding[s.outHead:])
		tail := s.outstanding[n:]
		for i := range tail {
			tail[i] = nil
		}
		s.outstanding = s.outstanding[:n]
		s.outHead = 0
	}
}

func (s *Sender) rto() netsim.Time {
	rto := s.srtt + 4*s.rttvar
	if rto < s.MinRTO {
		rto = s.MinRTO
	}
	return rto
}

// armRTO pushes the timeout deadline past now. A single timer event serves
// every arm: if one is already scheduled it observes the moved deadline when
// it fires and re-arms for the remainder.
func (s *Sender) armRTO() {
	s.rtoDeadline = s.Host.Eng.Now() + s.rto()
	s.rtoArm = true
	if !s.rtoPending {
		s.rtoPending = true
		s.Host.Eng.At(s.rtoDeadline, s.rtoFireFn)
	}
}

func (s *Sender) fireRTO() {
	s.rtoPending = false
	if s.completed || !s.rtoArm {
		return
	}
	now := s.Host.Eng.Now()
	if now < s.rtoDeadline {
		// ACKs moved the deadline since this timer was set; sleep out the
		// remainder.
		s.rtoPending = true
		s.Host.Eng.At(s.rtoDeadline, s.rtoFireFn)
		return
	}
	// A drained app-limited stream disarms instead of re-arming forever;
	// the next Push re-arms. Keeps idle sessions off the event heap.
	if s.inflight == 0 && len(s.rtxQueue) == 0 && !s.remaining() {
		s.rtoArm = false
		return
	}
	// Anything outstanding and un-lost is now presumed lost.
	lost := 0
	for _, seg := range s.outstanding[s.outHead:] {
		if seg.acked || seg.lost {
			continue
		}
		seg.lost = true
		s.inflight -= seg.size
		lost += seg.size
		seg.inRtx = true
		s.rtxQueue = append(s.rtxQueue, seg)
	}
	if lost > 0 {
		s.Timeouts++
		s.CC.OnLoss(LossInfo{Now: s.Host.Eng.Now(), LostBytes: lost, Timeout: true})
	}
	s.armRTO()
	s.maybeSend()
}
