package tcp

import (
	"github.com/liteflow-sim/liteflow/internal/netsim"
)

// segment is one outstanding MSS-sized unit of the flow's byte stream.
type segment struct {
	seq    int64
	size   int // payload bytes
	sentAt netsim.Time
	rtx    int // retransmission count
	acked  bool
	lost   bool // marked lost, awaiting retransmission
	fin    bool
}

// Sender transmits a flow with pacing, a congestion window, selective-repeat
// retransmission (per-segment ACKs, dup-threshold and RTO loss detection),
// and SRTT/delivery-rate estimation. It is driven entirely by simulator
// events.
type Sender struct {
	Host *Host
	Flow netsim.FlowID
	Dst  int
	// Size is the flow length in bytes; 0 means unbounded (long-running).
	Size int64
	CC   CongestionControl

	// OnComplete, when set, fires once when every byte has been
	// acknowledged, with the flow completion time.
	OnComplete func(fct netsim.Time)

	// DupThresh is the reordering tolerance in segments before a hole is
	// declared lost (fast retransmit). Defaults to 3.
	DupThresh int
	// MinRTO bounds the retransmission timeout from below. Defaults to the
	// Linux kernel's 200 ms; anything close to the path RTT causes
	// spurious timeouts that collapse window-based controllers.
	MinRTO netsim.Time

	// Prio tags every data packet with a priority band (flow scheduling:
	// the output enforcer writes the NN's predicted priority here).
	Prio int
	// Path pins every data packet to an explicit switch path (load
	// balancing: XPath-style path control). nil uses table routing.
	Path []int

	started   bool
	startAt   netsim.Time
	completed bool

	nextSeq     int64
	outstanding []*segment // ordered by seq; acked entries pruned lazily
	bySeq       map[int64]*segment
	rtxQueue    []*segment
	inflight    int
	ackedBytes  int64
	highestAck  int64 // highest segment seq acknowledged

	srtt   netsim.Time
	rttvar netsim.Time
	pacing bool
	rtoSeq int // invalidates stale RTO timers
	rtoArm bool

	// Delivery-rate estimation window.
	rateWinStart netsim.Time
	rateWinBytes int64
	deliveryRate int64

	// Counters for experiment reporting.
	Retransmits int64
	Timeouts    int64
}

// NewSender creates a sender for flow → dst on host h governed by cc, and
// registers it with the host's demux table.
func NewSender(h *Host, flow netsim.FlowID, dst int, size int64, cc CongestionControl) *Sender {
	s := &Sender{
		Host: h, Flow: flow, Dst: dst, Size: size, CC: cc,
		DupThresh: 3,
		MinRTO:    200 * netsim.Millisecond,
		bySeq:     make(map[int64]*segment),
	}
	h.registerSender(s)
	return s
}

// Start begins transmission.
func (s *Sender) Start() {
	if s.started {
		return
	}
	s.started = true
	s.startAt = s.Host.Eng.Now()
	s.rateWinStart = s.startAt
	s.CC.Start(s.startAt)
	s.armRTO()
	s.maybeSend()
}

// AckedBytes returns the cumulative payload bytes acknowledged.
func (s *Sender) AckedBytes() int64 { return s.ackedBytes }

// Completed reports whether the whole flow has been acknowledged.
func (s *Sender) Completed() bool { return s.completed }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Sender) SRTT() netsim.Time { return s.srtt }

// Inflight returns the bytes currently outstanding.
func (s *Sender) Inflight() int { return s.inflight }

// remaining reports whether new (never-sent) data exists.
func (s *Sender) remaining() bool {
	return s.Size == 0 || s.nextSeq < s.Size
}

// maybeSend kicks the pacing loop if it is idle and work is available.
func (s *Sender) maybeSend() {
	if s.pacing || s.completed {
		return
	}
	s.pacing = true
	s.sendLoop()
}

func (s *Sender) sendLoop() {
	if s.completed {
		s.pacing = false
		return
	}
	// Anything to send?
	if len(s.rtxQueue) == 0 && !s.remaining() {
		s.pacing = false
		return
	}
	// Window check.
	if s.inflight+netsim.MSS > s.CC.CwndBytes() {
		s.pacing = false // resumed by the next ACK
		return
	}
	seg := s.pickSegment()
	if seg == nil {
		s.pacing = false
		return
	}
	s.transmit(seg)

	rate := s.CC.PacingRate()
	if rate < 1000 {
		rate = 1000 // floor: one packet per ~12 s, keeps the loop alive
	}
	wire := int64(seg.size+netsim.HeaderBytes) * 8
	gap := netsim.Time(wire * int64(netsim.Second) / rate)
	s.Host.Eng.After(gap, s.sendLoop)
}

// pickSegment returns the next segment to transmit: retransmissions first.
func (s *Sender) pickSegment() *segment {
	if len(s.rtxQueue) > 0 {
		seg := s.rtxQueue[0]
		s.rtxQueue = s.rtxQueue[1:]
		if seg.acked {
			return s.pickSegment()
		}
		seg.rtx++
		s.Retransmits++
		return seg
	}
	if !s.remaining() {
		return nil
	}
	size := netsim.MSS
	if s.Size > 0 && s.Size-s.nextSeq < int64(size) {
		size = int(s.Size - s.nextSeq)
	}
	seg := &segment{seq: s.nextSeq, size: size}
	if s.Size > 0 && s.nextSeq+int64(size) >= s.Size {
		seg.fin = true
	}
	s.nextSeq += int64(size)
	s.outstanding = append(s.outstanding, seg)
	s.bySeq[seg.seq] = seg
	return seg
}

func (s *Sender) transmit(seg *segment) {
	now := s.Host.Eng.Now()
	seg.sentAt = now
	seg.lost = false
	s.inflight += seg.size
	s.Host.Transmit(&netsim.Packet{
		Flow: s.Flow, Src: s.Host.ID, Dst: s.Dst,
		Seq: seg.seq, Size: seg.size + netsim.HeaderBytes,
		FIN: seg.fin, SentAt: now,
		Prio: s.Prio, Path: s.Path,
	})
}

// handleAck processes a selective acknowledgment for one segment.
func (s *Sender) handleAck(p *netsim.Packet) {
	if s.completed {
		return
	}
	seg, ok := s.bySeq[p.AckNo]
	if !ok || seg.acked {
		return
	}
	now := s.Host.Eng.Now()
	seg.acked = true
	delete(s.bySeq, seg.seq)
	if !seg.lost {
		s.inflight -= seg.size
	}
	s.ackedBytes += int64(seg.size)
	if seg.seq > s.highestAck {
		s.highestAck = seg.seq
	}

	// RTT sampling (Karn's rule: skip retransmitted segments).
	var rtt netsim.Time
	if seg.rtx == 0 {
		rtt = now - seg.sentAt
		if s.srtt == 0 {
			s.srtt = rtt
			s.rttvar = rtt / 2
		} else {
			diff := s.srtt - rtt
			if diff < 0 {
				diff = -diff
			}
			s.rttvar = (3*s.rttvar + diff) / 4
			s.srtt = (7*s.srtt + rtt) / 8
		}
	}

	// Delivery-rate estimation over an SRTT-wide window.
	s.rateWinBytes += int64(seg.size)
	win := s.srtt
	if win < netsim.Millisecond {
		win = netsim.Millisecond
	}
	if now-s.rateWinStart >= win {
		s.deliveryRate = s.rateWinBytes * 8 * int64(netsim.Second) / int64(now-s.rateWinStart)
		s.rateWinStart = now
		s.rateWinBytes = 0
	}

	s.armRTO()
	s.detectLoss(seg)

	s.CC.OnAck(AckInfo{
		Now: now, RTT: rtt, SRTT: s.srtt,
		AckedBytes: seg.size, ECE: p.ECE,
		Inflight: s.inflight, DeliveryRate: s.deliveryRate,
	})

	s.pruneOutstanding()

	if s.Size > 0 && s.ackedBytes >= s.Size {
		s.completed = true
		if s.OnComplete != nil {
			s.OnComplete(now - s.startAt)
		}
		return
	}
	s.maybeSend()
}

// detectLoss marks outstanding segments that precede the just-acked segment
// by more than DupThresh segments (and were sent earlier) as lost.
func (s *Sender) detectLoss(acked *segment) {
	threshold := s.highestAck - int64(s.DupThresh*netsim.MSS)
	lost := 0
	for _, seg := range s.outstanding {
		if seg.acked || seg.lost {
			continue
		}
		if seg.seq < threshold && seg.sentAt <= acked.sentAt {
			seg.lost = true
			s.inflight -= seg.size
			lost += seg.size
			s.rtxQueue = append(s.rtxQueue, seg)
		}
	}
	if lost > 0 {
		s.CC.OnLoss(LossInfo{Now: s.Host.Eng.Now(), LostBytes: lost})
		s.maybeSend()
	}
}

// pruneOutstanding drops acked segments from the front of the ordered list.
func (s *Sender) pruneOutstanding() {
	i := 0
	for i < len(s.outstanding) && s.outstanding[i].acked {
		i++
	}
	if i > 0 {
		s.outstanding = s.outstanding[i:]
	}
}

func (s *Sender) rto() netsim.Time {
	rto := s.srtt + 4*s.rttvar
	if rto < s.MinRTO {
		rto = s.MinRTO
	}
	return rto
}

func (s *Sender) armRTO() {
	s.rtoSeq++
	seq := s.rtoSeq
	s.rtoArm = true
	s.Host.Eng.After(s.rto(), func() { s.fireRTO(seq) })
}

func (s *Sender) fireRTO(seq int) {
	if seq != s.rtoSeq || s.completed || !s.rtoArm {
		return
	}
	// Anything outstanding and un-lost is now presumed lost.
	lost := 0
	for _, seg := range s.outstanding {
		if seg.acked || seg.lost {
			continue
		}
		seg.lost = true
		s.inflight -= seg.size
		lost += seg.size
		s.rtxQueue = append(s.rtxQueue, seg)
	}
	if lost > 0 {
		s.Timeouts++
		s.CC.OnLoss(LossInfo{Now: s.Host.Eng.Now(), LostBytes: lost, Timeout: true})
	}
	s.armRTO()
	s.maybeSend()
}
