package tcp

import (
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
)

// Host is an end system: it owns an optional CPU model, an egress link into
// the network, and demultiplexes arriving packets to transport endpoints by
// flow ID. When a CPU is attached, every packet pays kernel processing costs
// before reaching the transport — the mechanism by which cross-space
// communication overhead starves the datapath (paper §2.2).
type Host struct {
	ID  int
	Eng *netsim.Engine

	// CPU, when non-nil, charges per-packet processing costs and delays or
	// drops packets under overload.
	CPU   *ksim.CPU
	Costs ksim.Costs

	egress    *netsim.Link
	senders   map[netsim.FlowID]*Sender
	receivers map[netsim.FlowID]*Receiver

	// sendFn/dispatchFn are the CPU-completion callbacks, bound once so
	// per-packet submission allocates no method-value closure.
	sendFn     func(*netsim.Packet)
	dispatchFn func(*netsim.Packet)

	// RxDropped counts packets rejected by the saturated CPU.
	RxDropped int64
	TxDropped int64
}

// NewHost returns a host with the given node ID. Attach an egress link with
// SetEgress and optionally a CPU with AttachCPU before starting flows.
func NewHost(eng *netsim.Engine, id int) *Host {
	h := &Host{
		ID:        id,
		Eng:       eng,
		senders:   make(map[netsim.FlowID]*Sender),
		receivers: make(map[netsim.FlowID]*Receiver),
	}
	h.sendFn = h.egressSend
	h.dispatchFn = h.dispatch
	return h
}

// SetEgress sets the host's link into the network.
func (h *Host) SetEgress(l *netsim.Link) { h.egress = l }

// Egress returns the host's network link.
func (h *Host) Egress() *netsim.Link { return h.egress }

// AttachCPU enables CPU cost modeling with the given cost table.
func (h *Host) AttachCPU(cpu *ksim.CPU, costs ksim.Costs) {
	h.CPU = cpu
	h.Costs = costs
}

// egressSend is the TX CPU-completion callback.
func (h *Host) egressSend(p *netsim.Packet) { h.egress.Send(p) }

// Transmit pushes a packet into the network, paying TX CPU cost when a CPU
// is attached. Overloaded CPUs drop (and recycle) the transmission.
func (h *Host) Transmit(p *netsim.Packet) {
	if h.egress == nil {
		panic("tcp: host has no egress link")
	}
	if h.CPU == nil {
		h.egress.Send(p)
		return
	}
	if !h.CPU.SubmitPacket(ksim.Kernel, h.Costs.PacketTx, h.sendFn, p) {
		h.TxDropped++
		netsim.FreePacket(p)
	}
}

// HandlePacket implements netsim.Handler: it charges RX processing to the
// CPU (softirq, as NET_RX) and then delivers to the owning endpoint.
func (h *Host) HandlePacket(p *netsim.Packet) {
	if h.CPU == nil {
		h.dispatch(p)
		return
	}
	if !h.CPU.SubmitPacket(ksim.SoftIRQ, h.Costs.PacketRx, h.dispatchFn, p) {
		h.RxDropped++
		netsim.FreePacket(p)
		return
	}
	// Sys-side protocol work for the accepted packet (dropped packets never
	// reach the TCP state machine, so they cost only the softirq attempt).
	h.CPU.Charge(ksim.Kernel, h.Costs.PacketRxSys)
}

// dispatch demultiplexes p to its endpoint and recycles it once the handler
// returns: the host terminally consumes every arriving packet (endpoints
// respond with freshly allocated packets, never by re-sending p).
func (h *Host) dispatch(p *netsim.Packet) {
	if p.Ack {
		if s, ok := h.senders[p.Flow]; ok {
			s.handleAck(p)
		}
	} else if r, ok := h.receivers[p.Flow]; ok {
		r.handleData(p)
	}
	netsim.FreePacket(p)
}

var _ netsim.Handler = (*Host)(nil)

// registerSender attaches a sender to the host's demux table.
func (h *Host) registerSender(s *Sender) { h.senders[s.Flow] = s }

// RegisterReceiver attaches a receiver to the host's demux table.
func (h *Host) RegisterReceiver(r *Receiver) { h.receivers[r.Flow] = r }

// UDPSource generates constant-bit-rate background traffic — the emulated
// congestion of the paper's testbed experiments (0.1 Gbps UDP).
type UDPSource struct {
	Host    *Host
	Flow    netsim.FlowID
	Dst     int
	Bps     int64
	PktSize int

	running bool
	tickFn  func()
	sendFn  func()
}

// NewUDPSource returns a CBR source sending from h to dst at bps.
func NewUDPSource(h *Host, flow netsim.FlowID, dst int, bps int64) *UDPSource {
	u := &UDPSource{Host: h, Flow: flow, Dst: dst, Bps: bps, PktSize: netsim.HeaderBytes + netsim.MSS}
	u.tickFn = u.tick
	u.sendFn = u.sendOne
	return u
}

// Start begins transmission; SetRate adjusts the rate live (used by the
// traffic-pattern switcher in the adaptation experiments).
func (u *UDPSource) Start() {
	if u.running {
		return
	}
	u.running = true
	u.tick()
}

// Stop halts transmission after the next scheduled packet.
func (u *UDPSource) Stop() { u.running = false }

// SetRate changes the sending rate; 0 pauses without stopping the loop.
func (u *UDPSource) SetRate(bps int64) { u.Bps = bps }

func (u *UDPSource) tick() {
	if !u.running {
		return
	}
	if u.Bps <= 0 {
		u.Host.Eng.After(netsim.Millisecond, u.tickFn)
		return
	}
	interval := netsim.Time(int64(u.PktSize) * 8 * int64(netsim.Second) / u.Bps)
	if interval < 1 {
		interval = 1
	}
	u.Host.Eng.After(interval, u.sendFn)
}

// sendOne transmits one CBR packet and schedules the next. The callbacks are
// bound once at construction, so the steady sending loop allocates only the
// pooled packet it sends.
func (u *UDPSource) sendOne() {
	if !u.running {
		return
	}
	p := netsim.AllocPacket()
	p.Flow, p.Src, p.Dst = u.Flow, u.Host.ID, u.Dst
	p.Size = u.PktSize
	p.SentAt = u.Host.Eng.Now()
	u.Host.Transmit(p)
	u.tick()
}

// BurstyUDP drives a UDPSource between two rates on a fixed half-period —
// the time-varying background congestion real bottlenecks exhibit. Stale
// (coarse-interval) controllers keep mis-tracking it, which is exactly the
// responsiveness penalty of §2.2.
type BurstyUDP struct {
	Src        *UDPSource
	Low, High  int64
	HalfPeriod netsim.Time

	running bool
	high    bool
}

// NewBurstyUDP wraps src, toggling between low and high every halfPeriod.
func NewBurstyUDP(src *UDPSource, low, high int64, halfPeriod netsim.Time) *BurstyUDP {
	return &BurstyUDP{Src: src, Low: low, High: high, HalfPeriod: halfPeriod}
}

// Start begins in the high phase and runs until Stop.
func (b *BurstyUDP) Start() {
	if b.running {
		return
	}
	b.running = true
	b.high = true
	b.Src.SetRate(b.High)
	b.Src.Start()
	b.tick()
}

// Stop halts toggling and the underlying source.
func (b *BurstyUDP) Stop() {
	b.running = false
	b.Src.Stop()
}

func (b *BurstyUDP) tick() {
	b.Src.Host.Eng.After(b.HalfPeriod, func() {
		if !b.running {
			return
		}
		b.high = !b.high
		if b.high {
			b.Src.SetRate(b.High)
		} else {
			b.Src.SetRate(b.Low)
		}
		b.tick()
	})
}
