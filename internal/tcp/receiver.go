package tcp

import (
	"github.com/liteflow-sim/liteflow/internal/netsim"
)

// Receiver terminates a flow: it deduplicates segments, acknowledges each
// one selectively (echoing ECN marks DCTCP-style), and accounts goodput.
//
// Dedup state is a contiguous prefix plus a map of out-of-order islands
// rather than a grow-forever seen-set: everything below nextContig has been
// received, and pending holds only the segments ahead of the contiguous
// prefix (keyed by start seq, valued by end seq). Entries are deleted as the
// prefix advances over them, so steady in-order traffic keeps the map empty
// and the hot path allocation-free, with memory bounded by the reorder
// window instead of the flow length.
type Receiver struct {
	Host *Host
	Flow netsim.FlowID
	Src  int // node to send ACKs to

	// OnDeliver, when set, fires for every new (non-duplicate) payload
	// byte range, with the bytes delivered and the current time. Used for
	// goodput time series.
	OnDeliver func(bytes int, now netsim.Time)
	// OnFIN fires when the FIN-bearing segment arrives; LiteFlow's flow
	// cache uses it to drop per-flow state (paper §3.4).
	OnFIN func(flow netsim.FlowID)
	// OnApp fires exactly once per application message: when the first
	// (tag-bearing) segment of a message pushed with Sender.Push arrives for
	// the first time. Duplicates from retransmission races are suppressed by
	// the dedup state. Actor session machines live entirely in this hook.
	OnApp func(tag int64, now netsim.Time)

	nextContig  int64           // every byte below this seq has arrived
	pending     map[int64]int64 // out-of-order island: start seq → end seq
	uniqueBytes int64
	finSeen     bool

	// DupAcks counts ACKs re-sent for duplicate segments.
	DupAcks int64
}

// NewReceiver creates a receiver for flow on host h, ACKing towards src, and
// registers it with the host's demux table.
func NewReceiver(h *Host, flow netsim.FlowID, src int) *Receiver {
	r := &Receiver{Host: h, Flow: flow, Src: src, pending: make(map[int64]int64)}
	h.RegisterReceiver(r)
	return r
}

// UniqueBytes returns the distinct payload bytes received so far.
func (r *Receiver) UniqueBytes() int64 { return r.uniqueBytes }

// handleData processes one data segment: dedup, account, ACK.
func (r *Receiver) handleData(p *netsim.Packet) {
	payload := p.PayloadBytes()
	dup := p.Seq < r.nextContig
	if !dup {
		_, dup = r.pending[p.Seq]
	}
	if !dup {
		if p.Seq == r.nextContig {
			r.nextContig += int64(payload)
			// Absorb any islands the prefix now reaches. Zero-length
			// islands are never stored (see below), so each lookup that
			// hits strictly advances nextContig and the loop terminates.
			for end, ok := r.pending[r.nextContig]; ok; end, ok = r.pending[r.nextContig] {
				delete(r.pending, r.nextContig)
				r.nextContig = end
			}
		} else if payload > 0 {
			r.pending[p.Seq] = p.Seq + int64(payload)
		}
		r.uniqueBytes += int64(payload)
		if r.OnDeliver != nil {
			r.OnDeliver(payload, r.Host.Eng.Now())
		}
		if p.App != 0 && r.OnApp != nil {
			r.OnApp(p.App, r.Host.Eng.Now())
		}
		if p.FIN && !r.finSeen {
			r.finSeen = true
			if r.OnFIN != nil {
				r.OnFIN(r.Flow)
			}
		}
	} else {
		r.DupAcks++
	}
	// Selective ACK for this segment; echo congestion marks.
	ack := netsim.AllocPacket()
	ack.Flow, ack.Src, ack.Dst = r.Flow, r.Host.ID, r.Src
	ack.Ack, ack.AckNo, ack.ECE = true, p.Seq, p.CE
	ack.Size = netsim.AckSize
	ack.SentAt = r.Host.Eng.Now()
	r.Host.Transmit(ack)
}
