package tcp

import (
	"github.com/liteflow-sim/liteflow/internal/netsim"
)

// Receiver terminates a flow: it deduplicates segments, acknowledges each
// one selectively (echoing ECN marks DCTCP-style), and accounts goodput.
type Receiver struct {
	Host *Host
	Flow netsim.FlowID
	Src  int // node to send ACKs to

	// OnDeliver, when set, fires for every new (non-duplicate) payload
	// byte range, with the bytes delivered and the current time. Used for
	// goodput time series.
	OnDeliver func(bytes int, now netsim.Time)
	// OnFIN fires when the FIN-bearing segment arrives; LiteFlow's flow
	// cache uses it to drop per-flow state (paper §3.4).
	OnFIN func(flow netsim.FlowID)

	seen        map[int64]bool
	uniqueBytes int64
	finSeen     bool

	// DupAcks counts ACKs re-sent for duplicate segments.
	DupAcks int64
}

// NewReceiver creates a receiver for flow on host h, ACKing towards src, and
// registers it with the host's demux table.
func NewReceiver(h *Host, flow netsim.FlowID, src int) *Receiver {
	r := &Receiver{Host: h, Flow: flow, Src: src, seen: make(map[int64]bool)}
	h.RegisterReceiver(r)
	return r
}

// UniqueBytes returns the distinct payload bytes received so far.
func (r *Receiver) UniqueBytes() int64 { return r.uniqueBytes }

// handleData processes one data segment: dedup, account, ACK.
func (r *Receiver) handleData(p *netsim.Packet) {
	payload := p.PayloadBytes()
	if !r.seen[p.Seq] {
		r.seen[p.Seq] = true
		r.uniqueBytes += int64(payload)
		if r.OnDeliver != nil {
			r.OnDeliver(payload, r.Host.Eng.Now())
		}
		if p.FIN && !r.finSeen {
			r.finSeen = true
			if r.OnFIN != nil {
				r.OnFIN(r.Flow)
			}
		}
	} else {
		r.DupAcks++
	}
	// Selective ACK for this segment; echo congestion marks.
	r.Host.Transmit(&netsim.Packet{
		Flow: r.Flow, Src: r.Host.ID, Dst: r.Src,
		Ack: true, AckNo: p.Seq, ECE: p.CE,
		Size: netsim.AckSize, SentAt: r.Host.Eng.Now(),
	})
}
