package tcp

import (
	"testing"

	"github.com/liteflow-sim/liteflow/internal/netsim"
)

// TestFlowSteadyStateZeroAllocs is the zero-allocation contract for the
// packet datapath: once a flow is warm (segment freelist primed, packet pool
// populated, event-queue capacity grown, SRTT converged), driving the
// simulation forward must not touch the heap. The rig is a clean pipe — no
// drops — so the loss path (rtxQueue growth, loss-burst slices) is
// deliberately outside this contract; it allocates proportionally to loss
// events, which steady state does not have.
func TestFlowSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; guard runs in the plain job")
	}
	eng := netsim.NewEngine()
	a, b := pair(eng, 1_000_000_000, netsim.Millisecond, 1<<20)
	s := NewSender(a, 1, b.ID, 0, NewFixedRate(200_000_000))
	r := NewReceiver(b, 1, a.ID)
	var delivered int64
	r.OnDeliver = func(n int, now netsim.Time) { delivered += int64(n) }
	s.Start()
	eng.RunUntil(200 * netsim.Millisecond) // warm pools, heap, freelists, SRTT
	if delivered == 0 {
		t.Fatal("flow did not start; alloc measurement is vacuous")
	}
	next := eng.Now()
	allocs := testing.AllocsPerRun(20, func() {
		next += 10 * netsim.Millisecond
		eng.RunUntil(next)
	})
	if allocs != 0 {
		t.Errorf("steady-state sender/receiver loop allocates %.1f allocs/op, want 0", allocs)
	}
	if s.Retransmits != 0 {
		t.Errorf("clean pipe retransmitted %d segments; rig no longer isolates the no-loss path", s.Retransmits)
	}
}
