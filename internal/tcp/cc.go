// Package tcp implements the transport half of the simulated kernel
// datapath: hosts with CPU-accounted packet processing, senders with pacing
// and selective-repeat loss recovery, receivers with goodput and FCT
// accounting, and a pluggable congestion-control interface. Congestion
// control algorithms themselves (BBR, CUBIC, DCTCP, and the NN-driven
// Aurora/MOCC deployments) live in package cc.
package tcp

import "github.com/liteflow-sim/liteflow/internal/netsim"

// AckInfo carries the per-ACK measurements a congestion controller sees —
// the congestion signals the paper's input collector module gathers
// (average throughput, latency, latency gradient, ECN/ACKed bytes).
type AckInfo struct {
	Now          netsim.Time
	RTT          netsim.Time // sample for this ACK
	SRTT         netsim.Time // smoothed RTT maintained by the sender
	AckedBytes   int         // new bytes acknowledged by this ACK
	ECE          bool        // receiver echoed an ECN mark
	Inflight     int         // bytes outstanding after this ACK
	DeliveryRate int64       // recent goodput estimate, bits/sec
}

// LossInfo describes a loss-detection event.
type LossInfo struct {
	Now       netsim.Time
	LostBytes int
	// Timeout reports whether the loss was detected by RTO rather than
	// fast retransmit; controllers typically react more sharply.
	Timeout bool
}

// CongestionControl is the contract between the sender and a congestion
// control algorithm. Implementations decide both a pacing rate and a window.
type CongestionControl interface {
	// Start is called once when the flow begins, with the current time.
	Start(now netsim.Time)
	// OnAck processes one acknowledgment.
	OnAck(a AckInfo)
	// OnLoss processes a loss event.
	OnLoss(l LossInfo)
	// PacingRate returns the current pacing rate in bits/sec. The sender
	// spaces data transmissions at this rate (sk_pacing_rate analog).
	PacingRate() int64
	// CwndBytes bounds the bytes in flight.
	CwndBytes() int
}

// FixedRate is a trivial controller pinned at a constant rate — the
// LF-Dummy-NN of §5.1's high-throughput experiment and a useful test double.
type FixedRate struct {
	Bps int64
	Wnd int
}

// NewFixedRate returns a controller pacing at bps with an effectively
// unlimited window.
func NewFixedRate(bps int64) *FixedRate { return &FixedRate{Bps: bps, Wnd: 1 << 30} }

// Start implements CongestionControl.
func (f *FixedRate) Start(netsim.Time) {}

// OnAck implements CongestionControl.
func (f *FixedRate) OnAck(AckInfo) {}

// OnLoss implements CongestionControl.
func (f *FixedRate) OnLoss(LossInfo) {}

// PacingRate implements CongestionControl.
func (f *FixedRate) PacingRate() int64 { return f.Bps }

// CwndBytes implements CongestionControl.
func (f *FixedRate) CwndBytes() int { return f.Wnd }
