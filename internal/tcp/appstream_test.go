package tcp

import (
	"testing"

	"github.com/liteflow-sim/liteflow/internal/netsim"
)

// TestPushDeliversMessagesWithTags drives a request/response exchange over
// one app-limited stream: every pushed message surfaces its tag exactly once
// via OnApp, in push order, and the byte counts line up.
func TestPushDeliversMessagesWithTags(t *testing.T) {
	eng := netsim.NewEngine()
	a, b := pair(eng, 100_000_000, 2*netsim.Millisecond, 1<<20)
	s := NewSender(a, 1, b.ID, 0, NewFixedRate(50_000_000))
	r := NewReceiver(b, 1, a.ID)

	var tags []int64
	r.OnApp = func(tag int64, now netsim.Time) { tags = append(tags, tag) }

	s.Push(500, 101)    // fits one segment
	s.Push(10_000, 102) // spans several segments; tag only on the first
	s.Push(1, 103)      // minimum message
	s.Push(40_000, 104) // larger than a cwnd's worth
	s.Start()
	eng.RunUntil(2 * netsim.Second)

	want := []int64{101, 102, 103, 104}
	if len(tags) != len(want) {
		t.Fatalf("OnApp fired %d times (%v), want %v", len(tags), tags, want)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("tags = %v, want %v", tags, want)
		}
	}
	const total = 500 + 10_000 + 1 + 40_000
	if r.UniqueBytes() != total {
		t.Errorf("receiver got %d unique bytes, want %d", r.UniqueBytes(), total)
	}
	if s.AckedBytes() != total {
		t.Errorf("sender acked %d bytes, want %d", s.AckedBytes(), total)
	}
}

// TestPushMidRunWakesIdleSender parks a drained app stream long enough for
// its RTO to disarm, then pushes again: the stream must wake up and deliver.
func TestPushMidRunWakesIdleSender(t *testing.T) {
	eng := netsim.NewEngine()
	a, b := pair(eng, 100_000_000, 2*netsim.Millisecond, 1<<20)
	s := NewSender(a, 1, b.ID, 0, NewFixedRate(50_000_000))
	r := NewReceiver(b, 1, a.ID)
	var tags []int64
	r.OnApp = func(tag int64, now netsim.Time) { tags = append(tags, tag) }

	s.Push(2000, 1)
	s.Start()
	// Idle for many MinRTO periods, then push from an engine event (the
	// actor pattern: Push always runs on the sender host's partition).
	eng.At(3*netsim.Second, func() { s.Push(3000, 2) })
	eng.RunUntil(4 * netsim.Second)

	if len(tags) != 2 || tags[0] != 1 || tags[1] != 2 {
		t.Fatalf("tags = %v, want [1 2]", tags)
	}
	if r.UniqueBytes() != 5000 {
		t.Errorf("receiver got %d unique bytes, want 5000", r.UniqueBytes())
	}
}

// TestPushTagSurvivesLoss runs the tagged stream across a lossy link: the
// retransmitted first segment must still deliver its tag, exactly once.
func TestPushTagSurvivesLoss(t *testing.T) {
	eng := netsim.NewEngine()
	a := NewHost(eng, 1)
	b := NewHost(eng, 2)
	ab := netsim.NewLink(eng, b, 100_000_000, 2*netsim.Millisecond, netsim.NewDropTail(1<<20))
	ba := netsim.NewLink(eng, a, 100_000_000, 2*netsim.Millisecond, netsim.NewDropTail(1<<20))
	a.SetEgress(ab)
	b.SetEgress(ba)
	ab.SetLoss(0.2, 42) // heavy forward loss

	s := NewSender(a, 1, b.ID, 0, NewFixedRate(50_000_000))
	s.MinRTO = 20 * netsim.Millisecond
	r := NewReceiver(b, 1, a.ID)
	var tags []int64
	r.OnApp = func(tag int64, now netsim.Time) { tags = append(tags, tag) }

	const n = 20
	for i := 1; i <= n; i++ {
		s.Push(5000, int64(i))
	}
	s.Start()
	eng.RunUntil(30 * netsim.Second)

	if ab.LossDrops() == 0 {
		t.Fatal("loss link dropped nothing; SetLoss inert")
	}
	if len(tags) != n {
		t.Fatalf("OnApp fired %d times, want %d (tags %v)", len(tags), n, tags)
	}
	seen := make(map[int64]bool)
	for _, tag := range tags {
		if seen[tag] {
			t.Fatalf("tag %d surfaced twice", tag)
		}
		seen[tag] = true
	}
	if r.UniqueBytes() != n*5000 {
		t.Errorf("receiver got %d unique bytes, want %d", r.UniqueBytes(), n*5000)
	}
}

// TestOnAckedReportsUploadProgress checks the sender-side progress hook is
// monotone and reaches the pushed total.
func TestOnAckedReportsUploadProgress(t *testing.T) {
	eng := netsim.NewEngine()
	a, b := pair(eng, 100_000_000, 2*netsim.Millisecond, 1<<20)
	s := NewSender(a, 1, b.ID, 0, NewFixedRate(50_000_000))
	NewReceiver(b, 1, a.ID)
	var last int64
	s.OnAcked = func(acked int64, now netsim.Time) {
		if acked < last {
			t.Fatalf("OnAcked went backwards: %d after %d", acked, last)
		}
		last = acked
	}
	s.Push(100_000, 7)
	s.Start()
	eng.RunUntil(2 * netsim.Second)
	if last != 100_000 {
		t.Errorf("final OnAcked = %d, want 100000", last)
	}
}

// TestPushPanicsOnBoundedSender documents the Size==0 contract.
func TestPushPanicsOnBoundedSender(t *testing.T) {
	eng := netsim.NewEngine()
	a, b := pair(eng, 100_000_000, 2*netsim.Millisecond, 1<<20)
	s := NewSender(a, 1, b.ID, 1000, NewFixedRate(50_000_000))
	defer func() {
		if recover() == nil {
			t.Fatal("Push on a bounded sender did not panic")
		}
	}()
	s.Push(100, 1)
}
