package netsim

import "testing"

func TestLinkSerializationAndDelay(t *testing.T) {
	e := NewEngine()
	var arrived Time = -1
	h := HandlerFunc(func(p *Packet) { arrived = e.Now() })
	// 8 Mbps link: a 1000-byte packet serializes in 1 ms. Delay 2 ms.
	l := NewLink(e, h, 8_000_000, 2*Millisecond, nil)
	l.Send(&Packet{Size: 1000})
	e.Run()
	want := 1*Millisecond + 2*Millisecond
	if arrived != want {
		t.Errorf("arrival = %d, want %d", arrived, want)
	}
	if l.TxPackets() != 1 || l.TxBytes() != 1000 {
		t.Errorf("counters = %d pkts / %d bytes", l.TxPackets(), l.TxBytes())
	}
}

func TestLinkBackToBackSerialization(t *testing.T) {
	e := NewEngine()
	var arrivals []Time
	h := HandlerFunc(func(p *Packet) { arrivals = append(arrivals, e.Now()) })
	l := NewLink(e, h, 8_000_000, 0, nil) // 1 ms per 1000B packet, no delay
	for i := 0; i < 3; i++ {
		l.Send(&Packet{Size: 1000})
	}
	e.Run()
	want := []Time{1 * Millisecond, 2 * Millisecond, 3 * Millisecond}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Errorf("arrival %d = %v, want %v", i, arrivals[i], want[i])
		}
	}
}

func TestLinkPipelinesPropagation(t *testing.T) {
	// Propagation overlaps with the next packet's serialization: with delay
	// 10 ms and 1 ms tx time, two packets arrive at 11 ms and 12 ms (not 22).
	e := NewEngine()
	var arrivals []Time
	h := HandlerFunc(func(p *Packet) { arrivals = append(arrivals, e.Now()) })
	l := NewLink(e, h, 8_000_000, 10*Millisecond, nil)
	l.Send(&Packet{Size: 1000})
	l.Send(&Packet{Size: 1000})
	e.Run()
	if len(arrivals) != 2 || arrivals[0] != 11*Millisecond || arrivals[1] != 12*Millisecond {
		t.Errorf("arrivals = %v, want [11ms 12ms]", arrivals)
	}
}

func TestLinkDropsWhenQueueFull(t *testing.T) {
	e := NewEngine()
	var got int
	h := HandlerFunc(func(p *Packet) { got++ })
	q := NewDropTail(1500) // room for one queued packet beyond the in-flight one
	l := NewLink(e, h, 8_000_000, 0, q)
	// First Send dequeues immediately into transmission; next fills queue;
	// third is dropped.
	l.Send(&Packet{Size: 1500})
	l.Send(&Packet{Size: 1500})
	l.Send(&Packet{Size: 1500})
	e.Run()
	if got != 2 {
		t.Errorf("delivered = %d, want 2", got)
	}
	if q.Drops() != 1 {
		t.Errorf("drops = %d, want 1", q.Drops())
	}
}

func TestLinkZeroRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-rate link must panic")
		}
	}()
	NewLink(NewEngine(), &Sink{}, 0, 0, nil)
}

func TestLinkTxTime(t *testing.T) {
	l := NewLink(NewEngine(), &Sink{}, 1_000_000_000, 0, nil) // 1 Gbps
	if got := l.TxTime(1250); got != 10*Microsecond {
		t.Errorf("TxTime(1250B @1Gbps) = %d, want 10µs", got)
	}
}

func TestPipeBidirectional(t *testing.T) {
	e := NewEngine()
	var aGot, bGot int
	a := HandlerFunc(func(p *Packet) { aGot++ })
	b := HandlerFunc(func(p *Packet) { bGot++ })
	pipe := NewPipe(e, a, b, 1_000_000_000, Millisecond, 1<<20)
	pipe.AtoB.Send(&Packet{Size: 100})
	pipe.BtoA.Send(&Packet{Size: 100})
	e.Run()
	if aGot != 1 || bGot != 1 {
		t.Errorf("aGot=%d bGot=%d, want 1/1", aGot, bGot)
	}
}
