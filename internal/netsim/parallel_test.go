package netsim

import (
	"bytes"
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/obs"
)

// ---------------------------------------------------------------------------
// Typed event queue vs container/heap oracle
// ---------------------------------------------------------------------------

// oracleItem mirrors event ordering: (at, seq) with FIFO tie-break.
type oracleItem struct {
	at  Time
	seq uint64
}

type oracleHeap []oracleItem

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x interface{}) { *h = append(*h, x.(oracleItem)) }
func (h *oracleHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// FuzzEventQueue drives the typed 4-ary queue and a container/heap oracle
// with the same interleaved push/pop sequence and requires identical pop
// order — including the FIFO tie-break among same-time events.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 4, 0, 0, 5, 5, 5, 0, 0, 0})
	f.Add([]byte{0})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q eventQueue
		var o oracleHeap
		var seq uint64
		for _, b := range data {
			if b == 0 && q.len() > 0 {
				got := q.pop()
				want := heap.Pop(&o).(oracleItem)
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("pop order diverged: got (at=%d seq=%d), oracle (at=%d seq=%d)",
						got.at, got.seq, want.at, want.seq)
				}
				continue
			}
			seq++
			at := Time(b % 16) // coarse times force plenty of ties
			q.push(event{at: at, seq: seq})
			heap.Push(&o, oracleItem{at: at, seq: seq})
		}
		for q.len() > 0 {
			got := q.pop()
			want := heap.Pop(&o).(oracleItem)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("drain order diverged: got (at=%d seq=%d), oracle (at=%d seq=%d)",
					got.at, got.seq, want.at, want.seq)
			}
		}
		if o.Len() != 0 {
			t.Fatalf("oracle retains %d items after queue drained", o.Len())
		}
	})
}

// ---------------------------------------------------------------------------
// Typed past-event errors
// ---------------------------------------------------------------------------

func TestTryAtReturnsErrPastEvent(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	err := e.TryAt(50, func() {})
	if !errors.Is(err, ErrPastEvent) {
		t.Fatalf("TryAt in the past: err = %v, want errors.Is(_, ErrPastEvent)", err)
	}
	if err := e.TryAt(100, func() {}); err != nil {
		t.Fatalf("TryAt at the current time must succeed, got %v", err)
	}
}

func TestAtPanicsWithErrPastEvent(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrPastEvent) {
			t.Fatalf("At in the past: panic = %v, want error wrapping ErrPastEvent", r)
		}
	}()
	e.At(50, func() {})
}

func TestAtPacketPanicsWithErrPastEvent(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrPastEvent) {
			t.Fatalf("AtPacket in the past: panic = %v, want error wrapping ErrPastEvent", r)
		}
	}()
	e.AtPacket(50, func(*Packet) {}, &Packet{})
}

// ---------------------------------------------------------------------------
// Partitioned engine mechanics
// ---------------------------------------------------------------------------

func TestStepPanicsOnMultiPartitionEngine(t *testing.T) {
	e := NewParallelEngine(2)
	e.AddPartition()
	defer func() {
		if recover() == nil {
			t.Fatal("Step on a multi-partition engine must panic")
		}
	}()
	e.Step()
}

func TestAddPartitionOnClassicEngineReturnsSelf(t *testing.T) {
	e := NewEngine()
	if p := e.AddPartition(); p != e {
		t.Fatal("classic AddPartition must return the engine itself")
	}
	if e.Domains() != 0 {
		t.Fatalf("classic Domains() = %d, want 0", e.Domains())
	}
}

func TestBindRemoteZeroDelayPanics(t *testing.T) {
	e := NewParallelEngine(2)
	p1 := e.AddPartition()
	l := NewLink(e, &Sink{}, 1e9, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("BindRemote with zero delay must panic (no conservative lookahead)")
		}
	}()
	l.BindRemote(p1)
}

func TestBindRemoteForeignEnginePanics(t *testing.T) {
	e := NewParallelEngine(2)
	other := NewParallelEngine(2)
	l := NewLink(e, &Sink{}, 1e9, Millisecond, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("BindRemote across unrelated engines must panic")
		}
	}()
	l.BindRemote(other)
}

func TestCrossPartitionSchedulePanicsMidWindow(t *testing.T) {
	e := NewParallelEngine(2)
	p1 := e.AddPartition()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling onto another partition mid-window must panic")
		}
	}()
	// The offending event sits in partition 0, which windowed execution runs
	// on the calling goroutine — so the ownership panic is recoverable here.
	e.At(10, func() { p1.At(20, func() {}) })
	e.RunUntil(100)
}

// ringLog is one partition's private arrival record; partitions never share
// a log, so windowed execution stays race-free.
type ringLog struct {
	arrivals []string
}

// buildRing wires partitions 0..n-1 in a ring of cross-partition links. Each
// arrival is recorded with virtual time and forwarded after a local delay.
// It returns the per-partition logs and the engine.
func buildRing(domains, parts, hops int) (*Engine, []*ringLog) {
	root := NewParallelEngine(domains)
	engs := []*Engine{root}
	for i := 1; i < parts; i++ {
		engs = append(engs, root.AddPartition())
	}
	logs := make([]*ringLog, parts)
	links := make([]*Link, parts)
	for i := range logs {
		logs[i] = &ringLog{}
	}
	for i := 0; i < parts; i++ {
		next := (i + 1) % parts
		links[i] = NewLink(engs[i], nil, 1e9, Time(50+10*i)*Microsecond, NewDropTail(1<<20)).BindRemote(engs[next])
	}
	for i := 0; i < parts; i++ {
		i := i
		prev := (i + parts - 1) % parts
		links[prev].SetTarget(HandlerFunc(func(p *Packet) {
			logs[i].arrivals = append(logs[i].arrivals,
				fmt.Sprintf("p%d t=%d flow=%d size=%d", i, engs[i].Now(), p.Flow, p.Size))
			if p.Hop < 1000 { // bound total work
				p.Hop++
				links[i].Send(p)
			} else {
				FreePacket(p)
			}
		}))
	}
	// Seed traffic: several packets injected at distinct partitions/times.
	for i := 0; i < hops; i++ {
		src := i % parts
		at := Time(i) * 100 * Microsecond
		flow := FlowID(i)
		size := 200 + 100*i
		engs[src].At(at, func() {
			p := AllocPacket()
			p.Flow, p.Size = flow, size
			links[src].Send(p)
		})
	}
	return root, logs
}

// TestParallelRingByteIdenticalAcrossDomains runs the same ring with 1, 2, 4
// and 8 domains and demands identical per-partition arrival logs: the worker
// count must be invisible in results.
func TestParallelRingByteIdenticalAcrossDomains(t *testing.T) {
	const parts, hops = 5, 12
	var want []string
	for _, domains := range []int{1, 2, 4, 8} {
		eng, logs := buildRing(domains, parts, hops)
		eng.RunUntil(200 * Millisecond)
		var got []string
		for _, lg := range logs {
			got = append(got, lg.arrivals...)
		}
		if want == nil {
			want = got
			if len(want) == 0 {
				t.Fatal("ring produced no arrivals")
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("domains=%d: %d arrivals, want %d", domains, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("domains=%d: arrival %d = %q, want %q", domains, i, got[i], want[i])
			}
		}
	}
}

// TestPartitionScopeTracesByteIdenticalAcrossDomains drives drops through
// partition-scoped links and requires the folded trace export to be
// byte-identical for every domain count.
func TestPartitionScopeTracesByteIdenticalAcrossDomains(t *testing.T) {
	run := func(domains int) []byte {
		tr := obs.NewTracer(4096)
		sc := obs.New(nil, tr)
		root := NewParallelEngine(domains)
		p1 := root.AddPartition()
		p2 := root.AddPartition()
		// Tiny queues force drops, which emit trace events in each source
		// partition concurrently. Each link drains into its destination
		// partition's own sink (a sink is partition-local state).
		l1 := NewLink(p1, &Sink{}, 1e6, Millisecond, NewDropTail(600), p1.PartitionScope(sc)).BindRemote(p2)
		l2 := NewLink(p2, &Sink{}, 1e6, Millisecond, NewDropTail(600), p2.PartitionScope(sc)).BindRemote(p1)
		for i := 0; i < 50; i++ {
			at := Time(i) * 10 * Microsecond
			p1.At(at, func() {
				p := AllocPacket()
				p.Size = 500
				l1.Send(p)
			})
			p2.At(at, func() {
				p := AllocPacket()
				p.Size = 500
				l2.Send(p)
			})
		}
		root.RunUntil(Second)
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		if tr.Len() == 0 {
			t.Fatal("expected drop events in the folded tracer")
		}
		return buf.Bytes()
	}
	want := run(1)
	for _, domains := range []int{2, 4} {
		if got := run(domains); !bytes.Equal(got, want) {
			t.Fatalf("domains=%d: trace export differs from domains=1", domains)
		}
	}
}

// ---------------------------------------------------------------------------
// Cross-domain packet conservation under randomized topologies and faults
// ---------------------------------------------------------------------------

// starRun is one deterministic star-topology run: nSrc source partitions
// inject precomputed traffic through a central switch partition toward nDst
// sink partitions, with precomputed mid-run rate faults on the delivery
// links. It returns (injected, delivered, dropped) plus a canonical
// description of all counters.
func starRun(t *testing.T, domains int, seed int64) (int64, int64, int64, string) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	nSrc := 2 + r.Intn(3)
	nDst := 2 + r.Intn(3)
	nPkts := 50 + r.Intn(200)

	// Precompute every random value before the engine starts: event
	// callbacks must not consume shared randomness during parallel windows.
	type injection struct {
		src, dst, size int
		at             Time
	}
	injections := make([]injection, nPkts)
	for i := range injections {
		injections[i] = injection{
			src:  r.Intn(nSrc),
			dst:  r.Intn(nDst),
			size: 100 + r.Intn(1400),
			at:   Time(r.Intn(5000)) * Microsecond,
		}
	}
	type fault struct {
		dst  int
		at   Time
		rate int64
	}
	faults := make([]fault, 1+r.Intn(4))
	for i := range faults {
		faults[i] = fault{
			dst:  r.Intn(nDst),
			at:   Time(1000+r.Intn(3000)) * Microsecond,
			rate: int64(1e5 + r.Intn(1e6)),
		}
	}
	queueCap := 2000 + r.Intn(4000) // tiny: force drops

	root := NewParallelEngine(domains)
	swEng := root.AddPartition()
	sw := NewSwitch(500)
	srcEng := make([]*Engine, nSrc)
	upLinks := make([]*Link, nSrc)
	upQs := make([]*DropTail, nSrc)
	for i := 0; i < nSrc; i++ {
		srcEng[i] = root.AddPartition()
		upQs[i] = NewDropTail(queueCap)
		upLinks[i] = NewLink(srcEng[i], sw, 1e8, 100*Microsecond, upQs[i]).BindRemote(swEng)
	}
	sinks := make([]*Sink, nDst)
	downLinks := make([]*Link, nDst)
	downQs := make([]*DropTail, nDst)
	for j := 0; j < nDst; j++ {
		dstEng := root.AddPartition()
		sinks[j] = &Sink{}
		downQs[j] = NewDropTail(queueCap)
		downLinks[j] = NewLink(swEng, sinks[j], 1e7, 100*Microsecond, downQs[j]).BindRemote(dstEng)
		sw.AddPort(600+j, downLinks[j])
		sw.AddRoute(600+j, 600+j)
	}

	injected := make([]int64, nSrc)
	for _, in := range injections {
		in := in
		srcEng[in.src].At(in.at, func() {
			p := AllocPacket()
			p.Dst = 600 + in.dst
			p.Flow = FlowID(in.src)
			p.Size = in.size
			upLinks[in.src].Send(p)
			injected[in.src]++
		})
	}
	// Rate faults execute in the switch partition, which owns the delivery
	// links.
	for _, f := range faults {
		f := f
		swEng.At(f.at, func() { downLinks[f.dst].SetRate(f.rate) })
	}

	root.Run()

	var tot, delivered, dropped int64
	for _, n := range injected {
		tot += n
	}
	for _, s := range sinks {
		delivered += s.Packets
	}
	for _, q := range upQs {
		dropped += int64(q.Drops())
	}
	for _, q := range downQs {
		dropped += int64(q.Drops())
	}
	desc := fmt.Sprintf("injected=%v delivered=%d dropped=%d", injected, delivered, dropped)
	for j, s := range sinks {
		desc += fmt.Sprintf(" sink%d=%d/%dB", j, s.Packets, s.Bytes)
	}
	return tot, delivered, dropped, desc
}

// TestCrossDomainPacketConservation checks, for randomized star topologies
// with injected rate faults, that (a) every injected packet is delivered or
// dropped once the engine drains and (b) all counters are identical for
// every domain count.
func TestCrossDomainPacketConservation(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		var want string
		for _, domains := range []int{1, 2, 4} {
			injected, delivered, dropped, desc := starRun(t, domains, seed)
			if injected != delivered+dropped {
				t.Fatalf("seed=%d domains=%d: conservation violated: %s (injected=%d, accounted=%d)",
					seed, domains, desc, injected, delivered+dropped)
			}
			if want == "" {
				want = desc
			} else if desc != want {
				t.Fatalf("seed=%d domains=%d: counters differ:\n got %s\nwant %s", seed, domains, desc, want)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Allocation guards for the event loop
// ---------------------------------------------------------------------------

// TestEngineSteadyStateZeroAllocs pins the zero-allocation contract of the
// windowless hot path: a self-rescheduling timer plus a pooled packet ping
// over a link must not touch the heap once queues and pools are warm.
func TestEngineSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; guard runs in the plain job")
	}
	e := NewEngine()
	sink := HandlerFunc(func(p *Packet) { FreePacket(p) })
	l := NewLink(e, sink, 1e9, 10*Microsecond, NewDropTail(1<<20))
	var tick func()
	tick = func() {
		p := AllocPacket()
		p.Size = 1000
		l.Send(p)
		e.After(100*Microsecond, tick)
	}
	e.After(0, tick)
	e.RunUntil(10 * Millisecond) // warm: pool populated, heap array sized
	deadline := e.Now()
	allocs := testing.AllocsPerRun(100, func() {
		deadline += Millisecond
		e.RunUntil(deadline)
	})
	if allocs != 0 {
		t.Errorf("steady-state event loop allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkEngineStep measures the raw schedule+dispatch cost of the typed
// queue (the replacement for the boxing container/heap path).
func BenchmarkEngineStep(b *testing.B) {
	e := NewEngine()
	var fn func()
	fn = func() { e.After(10, fn) }
	e.After(0, fn)
	e.Step() // prime: one event always pending
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkParallelWindowLoop measures windowed execution overhead on the
// ring topology (cross-partition handoffs every window).
func BenchmarkParallelWindowLoop(b *testing.B) {
	for _, domains := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("domains=%d", domains), func(b *testing.B) {
			eng, _ := buildRing(domains, 5, 12)
			b.ReportAllocs()
			b.ResetTimer()
			deadline := Time(0)
			for i := 0; i < b.N; i++ {
				deadline += Millisecond
				eng.RunUntil(deadline)
			}
		})
	}
}
