package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(300, func() { order = append(order, 3) })
	e.At(100, func() { order = append(order, 1) })
	e.At(200, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 300 {
		t.Errorf("Now = %d, want 300", e.Now())
	}
}

func TestEngineFIFOWithinSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(50, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineAfterAndNow(t *testing.T) {
	e := NewEngine()
	var at2 Time
	e.After(100, func() {
		e.After(50, func() { at2 = e.Now() })
	})
	e.Run()
	if at2 != 150 {
		t.Errorf("nested After time = %d, want 150", at2)
	}
}

func TestEngineNegativeAfterClamps(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(-5, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Errorf("negative After must run at now; ran=%v now=%d", ran, e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past must panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.At(500, func() {})
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Errorf("Now = %d, want 100", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1 (the t=500 event)", e.Pending())
	}
	e.Run()
	if e.Now() != 500 {
		t.Errorf("final Now = %d, want 500", e.Now())
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty queue must return false")
	}
}

// Property: regardless of insertion order, events execute in nondecreasing
// time order.
func TestEventOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var times []Time
		n := 1 + r.Intn(100)
		for i := 0; i < n; i++ {
			at := Time(r.Intn(10000))
			e.At(at, func() { times = append(times, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 100; j++ {
			e.At(Time(j), func() {})
		}
		e.Run()
	}
}
