package netsim

// Switch forwards packets between links. It supports three forwarding modes,
// checked in order:
//
//  1. Explicit paths (XPath analog): when a packet carries a Path, the switch
//     forwards on the port towards Path[Hop] and advances Hop.
//  2. Destination routes: exact-match routing table from destination node ID
//     to an ECMP group of ports; multi-port groups are sprayed per-flow with
//     a symmetric hash (gopacket FastHash idiom) so a flow sticks to a path.
//  3. Default route, if configured.
//
// Packets with no matching route are counted and dropped — a loud counter
// rather than a silent loss, so topology bugs surface in tests.
type Switch struct {
	ID int

	ports    map[int]*Link   // neighbor node ID → egress link
	routes   map[int][]*Link // destination node ID → ECMP group
	defRoute []*Link
	unrouted int64
	hashSalt uint64
}

// NewSwitch returns an empty switch with the given node ID.
func NewSwitch(id int) *Switch {
	return &Switch{
		ID:     id,
		ports:  make(map[int]*Link),
		routes: make(map[int][]*Link),
	}
}

// AddPort registers the egress link towards neighbor node ID.
func (s *Switch) AddPort(neighbor int, l *Link) { s.ports[neighbor] = l }

// Port returns the egress link towards the neighbor, or nil.
func (s *Switch) Port(neighbor int) *Link { return s.ports[neighbor] }

// AddRoute appends the ports reaching the given neighbors to the ECMP group
// for destination dst. Unknown neighbors panic: a route through a missing
// port is a topology construction bug.
func (s *Switch) AddRoute(dst int, viaNeighbors ...int) {
	for _, n := range viaNeighbors {
		l, ok := s.ports[n]
		if !ok {
			panic("netsim: route via unknown neighbor port")
		}
		s.routes[dst] = append(s.routes[dst], l)
	}
}

// SetDefaultRoute sets the ECMP group used when no destination route matches.
func (s *Switch) SetDefaultRoute(viaNeighbors ...int) {
	s.defRoute = s.defRoute[:0]
	for _, n := range viaNeighbors {
		l, ok := s.ports[n]
		if !ok {
			panic("netsim: default route via unknown neighbor port")
		}
		s.defRoute = append(s.defRoute, l)
	}
}

// SetHashSalt perturbs the ECMP hash, letting experiments decorrelate hash
// collisions across trials.
func (s *Switch) SetHashSalt(salt uint64) { s.hashSalt = salt }

// Unrouted returns the number of packets dropped for lack of a route.
func (s *Switch) Unrouted() int64 { return s.unrouted }

// ecmpHash hashes the flow ID symmetrically so both directions of a flow pick
// the same member index given the same group size.
func (s *Switch) ecmpHash(f FlowID) uint64 {
	x := uint64(f) + s.hashSalt
	// SplitMix64 finalizer: cheap, well-distributed, deterministic.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HandlePacket forwards p according to the forwarding modes above.
func (s *Switch) HandlePacket(p *Packet) {
	// Mode 1: explicit path.
	if p.Path != nil && p.Hop < len(p.Path) {
		next := p.Path[p.Hop]
		if l, ok := s.ports[next]; ok {
			p.Hop++
			l.Send(p)
			return
		}
		// Fall through to table routing if the pinned hop is unknown.
	}
	// Mode 2: destination routes.
	group := s.routes[p.Dst]
	if len(group) == 0 {
		group = s.defRoute
	}
	if len(group) == 0 {
		s.unrouted++
		FreePacket(p)
		return
	}
	l := group[0]
	if len(group) > 1 {
		l = group[int(s.ecmpHash(p.Flow)%uint64(len(group)))]
	}
	l.Send(p)
}

var _ Handler = (*Switch)(nil)

// Sink is a Handler that counts and discards everything it receives; useful
// as a traffic drain and in tests.
type Sink struct {
	Packets int64
	Bytes   int64
}

// HandlePacket counts p, recycles it into the packet pool, and drops it.
func (s *Sink) HandlePacket(p *Packet) {
	s.Packets++
	s.Bytes += int64(p.Size)
	FreePacket(p)
}

var _ Handler = (*Sink)(nil)
