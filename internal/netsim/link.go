package netsim

import (
	"github.com/liteflow-sim/liteflow/internal/obs"
	"github.com/liteflow-sim/liteflow/internal/opt"
)

// Handler consumes packets at the far end of a link. Hosts and switches
// implement it.
type Handler interface {
	HandlePacket(p *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(p *Packet)

// HandlePacket calls f(p).
func (f HandlerFunc) HandlePacket(p *Packet) { f(p) }

// Link is a unidirectional link: serialization at Rate, then propagation
// Delay, feeding the remote Handler. Packets that arrive while the link is
// transmitting wait in the attached Queue.
type Link struct {
	eng   *Engine
	rem   *Engine // destination partition when ≠ eng's (BindRemote)
	to    Handler
	rate  int64 // bits per second
	delay Time
	queue Queue

	busy bool

	// Wireless-style random loss: a packet that finishes serialization is
	// corrupted (dropped before propagation) with probability lossRate.
	// lossRNG is a private xorshift so the draw sequence depends only on
	// this link's own packet order — deterministic per §4d under any
	// domain count.
	lossRate  float64
	lossRNG   uint64
	lossDrops int64

	// Cumulative counters for experiment accounting.
	txPackets int64
	txBytes   int64

	sc    obs.Scope
	drops *obs.Counter
	marks *obs.Counter
	lossC *obs.Counter
}

// Connect creates a link with transmission rate rateBps (bits/second),
// one-way propagation delay, and buffering discipline q. It panics on a
// non-positive rate: a zero-rate link would never drain and silently hang
// the simulation. opt.WithScope exports queue drop and ECN mark telemetry;
// omitted, telemetry is a no-op.
func Connect(eng *Engine, to Handler, rateBps int64, delay Time, q Queue, options ...opt.Option) *Link {
	return NewLink(eng, to, rateBps, delay, q, opt.Resolve(options).Scope)
}

// NewLink is the pre-options constructor.
//
// Deprecated: use Connect, which takes functional options (opt.WithScope).
func NewLink(eng *Engine, to Handler, rateBps int64, delay Time, q Queue, sc ...obs.Scope) *Link {
	if rateBps <= 0 {
		panic("netsim: link rate must be positive")
	}
	if q == nil {
		q = NewDropTail(1 << 30)
	}
	l := &Link{eng: eng, to: to, rate: rateBps, delay: delay, queue: q}
	if len(sc) > 0 {
		l.sc = sc[0]
	}
	l.drops = l.sc.Counter("liteflow_net_queue_drops_total",
		"packets rejected by a full egress queue")
	l.marks = l.sc.Counter("liteflow_net_ecn_marks_total",
		"packets CE-marked on enqueue")
	l.lossC = l.sc.Counter("liteflow_net_loss_drops_total",
		"packets corrupted by configured link loss")
	return l
}

// SetLoss configures wireless-style random loss: each packet that finishes
// serialization is independently dropped with probability rate before
// propagation (the bits were sent, then corrupted). seed initializes the
// link-private PRNG so the drop pattern is reproducible and independent of
// partition scheduling. rate 0 disables loss; rates outside [0,1) panic.
func (l *Link) SetLoss(rate float64, seed int64) {
	if rate < 0 || rate >= 1 {
		panic("netsim: loss rate must be in [0, 1)")
	}
	l.lossRate = rate
	// splitmix64 of the seed so adjacent seeds give uncorrelated streams;
	// the state must be non-zero for xorshift.
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	l.lossRNG = z
}

// LossDrops returns the cumulative count of packets dropped by SetLoss.
func (l *Link) LossDrops() int64 { return l.lossDrops }

// lose draws the per-packet corruption coin (xorshift64*, top 53 bits as a
// uniform float in [0,1)). Zero-alloc and branch-cheap on loss-free links.
func (l *Link) lose() bool {
	if l.lossRate == 0 {
		return false
	}
	x := l.lossRNG
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	l.lossRNG = x
	u := float64(x>>11) / (1 << 53)
	return u < l.lossRate
}

// Engine returns the partition view owning this link (serialization and
// propagation are timed on it). Experiments use it to place measurement
// ticks in the partition that owns the sampled state.
func (l *Link) Engine() *Engine { return l.eng }

// BindRemote declares that the link's receiving end lives in dst's
// partition: deliveries are routed through the cross-partition mailbox and
// the link's propagation delay joins the conservative-lookahead minimum. On
// a classic engine, or when dst is the link's own partition, it is a no-op —
// topology builders call it unconditionally. A cross-partition link must
// have positive delay: zero-delay handoff would give the window loop zero
// lookahead and stall it. BindRemote returns l for wiring convenience.
func (l *Link) BindRemote(dst *Engine) *Link {
	if dst == nil || dst == l.eng || !l.eng.co.partitioned {
		return l
	}
	if dst.co != l.eng.co {
		panic("netsim: BindRemote across unrelated engines")
	}
	if l.delay <= 0 {
		panic("netsim: cross-partition link must have positive delay (conservative lookahead)")
	}
	l.rem = dst
	co := l.eng.co
	if co.lookahead == 0 || l.delay < co.lookahead {
		co.lookahead = l.delay
	}
	return l
}

// Rate returns the link rate in bits per second.
func (l *Link) Rate() int64 { return l.rate }

// SetRate changes the link rate (bits per second), effective for packets
// serialized after the call — the mechanism for degraded-link experiments.
// It panics on non-positive rates like NewLink.
func (l *Link) SetRate(bps int64) {
	if bps <= 0 {
		panic("netsim: link rate must be positive")
	}
	l.rate = bps
}

// Delay returns the one-way propagation delay.
func (l *Link) Delay() Time { return l.delay }

// Queue returns the attached queueing discipline, for inspection (queue
// length sampling in the Figure 1b experiment) or reconfiguration.
func (l *Link) Queue() Queue { return l.queue }

// SetTarget redirects delivered packets to h. Used by topology builders that
// wire links before all nodes exist.
func (l *Link) SetTarget(h Handler) { l.to = h }

// TxBytes returns the cumulative bytes fully serialized onto the wire.
func (l *Link) TxBytes() int64 { return l.txBytes }

// TxPackets returns the cumulative packet count serialized onto the wire.
func (l *Link) TxPackets() int64 { return l.txPackets }

// TxTime returns the serialization time for a packet of size bytes.
func (l *Link) TxTime(size int) Time {
	return Time(int64(size) * 8 * int64(Second) / l.rate)
}

// Send enqueues p for transmission, dropping it if the queue is full. Send
// must be called from the link's own partition (entities hand packets across
// partitions only by being the target of a link).
func (l *Link) Send(p *Packet) {
	l.eng.checkOwner()
	p.EnqAt = l.eng.Now()
	ceBefore := p.CE
	if !l.queue.Enqueue(p) {
		l.drops.Inc()
		l.sc.Event2("net", "drop", p.EnqAt, "flow", int64(p.Flow), "bytes", int64(p.Size))
		FreePacket(p) // dropped
		return
	}
	if p.CE && !ceBefore {
		l.marks.Inc()
		l.sc.Event1("net", "ecn_mark", p.EnqAt, "flow", int64(p.Flow))
	}
	if !l.busy {
		l.startNext()
	}
}

// startNext begins serializing the head-of-queue packet. Serialization
// completion is a typed evTxDone event (no closure, no allocation).
func (l *Link) startNext() {
	p := l.queue.Dequeue()
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	l.eng.push(event{at: l.eng.now + l.TxTime(p.Size), kind: evTxDone, l: l, p: p})
}

// txDone retires one serialization: account the transmit, launch propagation
// (in parallel with the next serialization) and start the next packet.
// Local deliveries are typed evDeliver events; cross-partition deliveries go
// to the outbox, drained into the destination partition at the next window
// barrier.
func (l *Link) txDone(p *Packet) {
	l.txPackets++
	l.txBytes += int64(p.Size)
	if l.lose() {
		l.lossDrops++
		l.lossC.Inc()
		l.sc.Event2("net", "loss", l.eng.now, "flow", int64(p.Flow), "bytes", int64(p.Size))
		FreePacket(p)
		l.startNext()
		return
	}
	at := l.eng.now + l.delay
	if l.rem != nil {
		l.eng.outbox = append(l.eng.outbox, handoff{l: l, p: p, at: at})
	} else {
		l.eng.push(event{at: at, kind: evDeliver, l: l, p: p})
	}
	l.startNext()
}

// Pipe is a bidirectional connection built from two independent links. It is
// a convenience for dumbbell topologies and host attachments.
type Pipe struct {
	AtoB *Link
	BtoA *Link
}

// NewPipe wires a ↔ b with symmetric rate, delay and fresh drop-tail queues
// of capBytes each.
func NewPipe(eng *Engine, a, b Handler, rateBps int64, delay Time, capBytes int) *Pipe {
	return &Pipe{
		AtoB: NewLink(eng, b, rateBps, delay, NewDropTail(capBytes)),
		BtoA: NewLink(eng, a, rateBps, delay, NewDropTail(capBytes)),
	}
}
