// Package netsim is a deterministic discrete-event network simulator: an
// event engine with virtual nanosecond time, plus packets, queues, links and
// nodes. It is the substitute substrate for the Linux kernel datapath used by
// the LiteFlow paper (see DESIGN.md §1): it reproduces the feedback loops —
// ACK clocking, queue build-up, ECN marking, loss — that make the placement
// of an adaptive NN's control path matter.
//
// The engine comes in two modes. NewEngine builds the classic single-threaded
// engine: all state mutation happens inside event callbacks, entities need no
// locks, and runs are reproducible. NewParallelEngine builds a partitioned
// conservative-lookahead engine (DESIGN.md §4h): entities are placed into
// partitions (AddPartition), each partition owns a private event queue and
// virtual clock, and execution proceeds in windows bounded by the minimum
// cross-partition link delay — the safe lookahead of conservative parallel
// discrete-event simulation. Within a window partitions share no state, so
// they may execute on separate goroutines; at the window barrier,
// cross-partition packet handoffs are drained from per-partition mailboxes in
// partition-index order, the same merge-in-deterministic-order rule the
// experiment harness and fleet plane use (§4d). Because window boundaries,
// drain order and per-partition event order are all independent of how many
// goroutines execute the windows, a partitioned run is byte-identical for
// every domain count.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/liteflow-sim/liteflow/internal/obs"
)

// Time is virtual simulation time in nanoseconds.
type Time = int64

// Common durations in nanoseconds.
const (
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

// never is the sentinel "no event" time.
const never = Time(math.MaxInt64)

// ErrPastEvent reports an attempt to schedule an event before the scheduling
// partition's current virtual time. At panics with an error wrapping it;
// TryAt returns it, letting replay-style callers (a parked fleet member
// catching up at a stale clock) fall back instead of crashing.
var ErrPastEvent = errors.New("netsim: event scheduled in the past")

// pastEventError decorates ErrPastEvent with the offending times. It is the
// panic value of At and the return value of TryAt.
func pastEventError(at, now Time, partition int) error {
	return fmt.Errorf("%w (at=%d now=%d partition=%d)", ErrPastEvent, at, now, partition)
}

// Event kinds. Hot-path work (packet delivery, link serialization, CPU
// completion) is expressed as a typed kind plus operands instead of a
// closure, so steady-state scheduling allocates nothing.
const (
	evFunc     uint8 = iota // fn()
	evPacketFn              // pfn(p)
	evDeliver               // l.to.HandlePacket(p) — link propagation done
	evTxDone                // l.txDone(p) — link serialization done
)

type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among same-time events in one partition
	kind uint8
	fn   func()
	pfn  func(*Packet)
	l    *Link
	p    *Packet
}

func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a typed 4-ary min-heap ordered by (at, seq). Unlike the old
// container/heap implementation it never boxes events through interface{},
// so push/pop allocate only on backing-array growth.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !q.ev[i].before(&q.ev[parent]) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	q.ev[n] = event{} // clear pointers so the GC can reclaim operands
	q.ev = q.ev[:n]
	q.siftDown(0)
	return top
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.ev)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.ev[c].before(&q.ev[min]) {
				min = c
			}
		}
		if !q.ev[min].before(&q.ev[i]) {
			return
		}
		q.ev[i], q.ev[min] = q.ev[min], q.ev[i]
		i = min
	}
}

// handoff is one cross-partition packet delivery awaiting the window barrier.
type handoff struct {
	l  *Link
	p  *Packet
	at Time
}

// coordinator is the shared state behind every partition view of one
// simulation: the partition list, the conservative lookahead, and the
// window/barrier machinery.
type coordinator struct {
	parts       []*Engine
	partitioned bool // built by NewParallelEngine
	domains     int  // worker goroutines for window execution
	lookahead   Time // min cross-partition link delay; 0 = no cross links yet
	running     bool
	inWindow    bool // workers may be executing partitions concurrently

	// foldInto receives partition trace shards (see PartitionScope), merged
	// in partition order at the end of every Run/RunUntil.
	foldInto *obs.Tracer
}

// Engine is one partition's view of the simulation: a private event queue,
// clock and FIFO sequence counter. NewEngine returns a single-partition
// engine with the classic serial semantics; NewParallelEngine returns the
// root view of a partitioned engine, and AddPartition mints further views.
// Entities hold the view of the partition they live in, so At/After/Now are
// naturally partition-local. Run/RunUntil may be called on any view and
// drive the whole simulation.
type Engine struct {
	co     *coordinator
	id     int
	now    Time
	seq    uint64
	q      eventQueue
	outbox []handoff
	// active is true while this partition's events are executing on its
	// worker. checkOwner reads it from other workers to diagnose ownership
	// violations, hence atomic (the store is per window, not per event).
	active atomic.Bool
	tracer *obs.Tracer
}

// NewEngine returns a classic single-partition engine with time 0 and an
// empty event queue. AddPartition on it returns the engine itself, so
// topology builders can place entities unconditionally.
func NewEngine() *Engine {
	co := &coordinator{domains: 1}
	e := &Engine{co: co}
	co.parts = []*Engine{e}
	return e
}

// NewParallelEngine returns the root view of a partitioned
// conservative-lookahead engine executing windows on the given number of
// domains (worker goroutines; values < 1 are clamped to 1). Partition count
// and domain count are independent: partitions fix the event ordering —
// output is byte-identical for every domain count — while domains only map
// partitions onto workers (partition i runs on worker i mod domains).
func NewParallelEngine(domains int) *Engine {
	if domains < 1 {
		domains = 1
	}
	co := &coordinator{partitioned: true, domains: domains}
	e := &Engine{co: co}
	co.parts = []*Engine{e}
	return e
}

// AddPartition mints a new partition view on a partitioned engine. On a
// classic engine it returns the engine itself: the single partition.
func (e *Engine) AddPartition() *Engine {
	co := e.co
	if !co.partitioned {
		return e
	}
	if co.running {
		panic("netsim: AddPartition while the engine is running")
	}
	p := &Engine{co: co, id: len(co.parts), now: co.parts[0].now}
	co.parts = append(co.parts, p)
	return p
}

// Partition returns this view's partition index (0 for the root view).
func (e *Engine) Partition() int { return e.id }

// Partitions returns the number of partitions.
func (e *Engine) Partitions() int { return len(e.co.parts) }

// Domains returns the worker-goroutine count of a partitioned engine, and 0
// for a classic engine.
func (e *Engine) Domains() int {
	if !e.co.partitioned {
		return 0
	}
	return e.co.domains
}

// Lookahead returns the conservative window width: the minimum
// cross-partition link delay, or 0 when no cross-partition link exists.
func (e *Engine) Lookahead() Time { return e.co.lookahead }

// Now returns this partition's current virtual time.
func (e *Engine) Now() Time { return e.now }

// PartitionScope returns sc with its tracer swapped for this partition's
// private shard, minting the shard on first use. During windowed execution
// partitions must not share a trace ring (emission order would depend on the
// worker schedule); shards are folded back into sc's original tracer in
// partition order at the end of every Run/RunUntil, so exports are
// byte-identical for every domain count. On a classic engine, or when sc
// does not trace, sc is returned unchanged.
func (e *Engine) PartitionScope(sc obs.Scope) obs.Scope {
	base := sc.Tracer()
	if base == nil || !e.co.partitioned {
		return sc
	}
	if e.co.foldInto == nil {
		e.co.foldInto = base
	} else if e.co.foldInto != base {
		panic("netsim: PartitionScope called with two different tracers")
	}
	if e.tracer == nil {
		e.tracer = obs.NewTracer(base.Cap())
	}
	return sc.WithTracer(e.tracer)
}

// push assigns the partition-local FIFO sequence and enqueues.
func (e *Engine) push(ev event) {
	e.seq++
	ev.seq = e.seq
	e.q.push(ev)
}

// checkOwner panics when an event executing in another partition schedules
// onto this one mid-window: that is a data race in windowed mode. (The
// co.inWindow short-circuit keeps the e.active read on the owning worker in
// race-free programs.)
func (e *Engine) checkOwner() {
	if e.co.inWindow && !e.active.Load() {
		panic("netsim: cross-partition schedule during a window; hand off through a Link (mailbox) instead")
	}
}

// At schedules fn to run at absolute time t in this partition. Scheduling in
// the past is a programming error and panics (with an error wrapping
// ErrPastEvent): silently reordering events would corrupt causality in every
// experiment built on top. Callers that legitimately race a moving clock —
// replaying at a possibly stale time — use TryAt.
func (e *Engine) At(t Time, fn func()) {
	if err := e.TryAt(t, fn); err != nil {
		panic(err)
	}
}

// TryAt schedules fn at absolute time t, returning an error wrapping
// ErrPastEvent (instead of panicking) when t is before this partition's
// clock.
func (e *Engine) TryAt(t Time, fn func()) error {
	if t < e.now {
		return pastEventError(t, e.now, e.id)
	}
	e.checkOwner()
	e.push(event{at: t, kind: evFunc, fn: fn})
	return nil
}

// AtPacket schedules fn(p) at absolute time t. It is the closure-free
// variant of At for per-packet completions (CPU work retiring a packet): the
// packet rides in the event, so steady-state scheduling allocates nothing.
func (e *Engine) AtPacket(t Time, fn func(*Packet), p *Packet) {
	if t < e.now {
		panic(pastEventError(t, e.now, e.id))
	}
	e.checkOwner()
	e.push(event{at: t, kind: evPacketFn, pfn: fn, p: p})
}

// After schedules fn to run d nanoseconds from now. Negative d is clamped to
// zero (runs "immediately", after already-queued same-time events).
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Pending returns the number of scheduled events across all partitions,
// including cross-partition handoffs awaiting a window barrier.
func (e *Engine) Pending() int {
	n := 0
	for _, p := range e.co.parts {
		n += p.q.len() + len(p.outbox)
	}
	return n
}

// exec dispatches one event.
func (e *Engine) exec(ev *event) {
	switch ev.kind {
	case evFunc:
		ev.fn()
	case evPacketFn:
		ev.pfn(ev.p)
	case evDeliver:
		ev.l.to.HandlePacket(ev.p)
	case evTxDone:
		ev.l.txDone(ev.p)
	}
}

// Step executes the earliest event. It returns false when the queue is
// empty. Step is a single-partition affair; on a multi-partition engine it
// panics — windowed execution (Run/RunUntil) is the only way to interleave
// partitions deterministically.
func (e *Engine) Step() bool {
	if len(e.co.parts) > 1 {
		panic("netsim: Step on a multi-partition engine; use Run or RunUntil")
	}
	p := e.co.parts[0]
	if p.q.len() == 0 {
		return false
	}
	ev := p.q.pop()
	p.now = ev.at
	p.exec(&ev)
	return true
}

// runTo executes this partition's events strictly before end (the exclusive
// window bound), advancing the partition clock as it goes.
func (e *Engine) runTo(end Time) {
	e.active.Store(true)
	for len(e.q.ev) > 0 && e.q.ev[0].at < end {
		ev := e.q.pop()
		e.now = ev.at
		e.exec(&ev)
	}
	e.active.Store(false)
}

// RunUntil executes events until every queue is empty or the next event is
// later than deadline. Every partition clock is advanced to the deadline if
// the simulation outlived it, so subsequent scheduling is relative to the
// deadline.
func (e *Engine) RunUntil(deadline Time) { e.co.run(deadline) }

// Run executes events until every queue is empty.
func (e *Engine) Run() { e.co.run(never) }

// nextTime returns the earliest pending event time across partitions.
func (co *coordinator) nextTime() Time {
	t := never
	for _, p := range co.parts {
		if len(p.q.ev) > 0 && p.q.ev[0].at < t {
			t = p.q.ev[0].at
		}
	}
	return t
}

// run is the window loop. Each iteration finds the global minimum event time
// T, executes the window [T, T+lookahead) on every partition (concurrently
// when domains > 1), then drains cross-partition mailboxes at the barrier.
// Conservative correctness: any packet handed off during the window arrives
// at ≥ T + link delay ≥ T + lookahead, i.e. strictly after the window, so no
// partition can receive work for a time it already executed past.
func (co *coordinator) run(deadline Time) {
	if co.running {
		panic("netsim: Run/RunUntil re-entered from inside an event")
	}
	co.running = true
	defer func() { co.running = false }()

	for {
		t := co.nextTime()
		if t == never || t > deadline {
			break
		}
		end := never
		if deadline < never-1 {
			end = deadline + 1 // exclusive bound: events at == deadline run
		}
		if co.lookahead > 0 {
			if we := t + co.lookahead; we > t && we < end {
				end = we
			}
		}
		co.window(end)
		co.drain()
	}

	if deadline != never {
		for _, p := range co.parts {
			if p.now < deadline {
				p.now = deadline
			}
		}
	} else {
		// Run(): align every clock at the last executed event so a
		// subsequent schedule on any view is never "in the past".
		var m Time
		for _, p := range co.parts {
			if p.now > m {
				m = p.now
			}
		}
		for _, p := range co.parts {
			if p.now < m {
				p.now = m
			}
		}
	}
	co.foldShards()
}

// window executes [*, end) on every partition. Partition i runs on worker
// i mod domains; with one domain (or one partition) everything runs on the
// calling goroutine with zero synchronization.
func (co *coordinator) window(end Time) {
	if co.domains <= 1 || len(co.parts) == 1 {
		for _, p := range co.parts {
			p.runTo(end)
		}
		return
	}
	d := co.domains
	if d > len(co.parts) {
		d = len(co.parts)
	}
	co.inWindow = true
	var wg sync.WaitGroup
	for w := 1; w < d; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(co.parts); i += d {
				co.parts[i].runTo(end)
			}
		}(w)
	}
	for i := 0; i < len(co.parts); i += d {
		co.parts[i].runTo(end)
	}
	wg.Wait()
	co.inWindow = false
}

// drain moves cross-partition handoffs from source outboxes into destination
// queues. Iteration is source-partition-index order, then send order within
// a source; destination FIFO sequence numbers are assigned in that drain
// order. Both orders are fixed by the partitioning alone — not by the domain
// count or worker schedule — which is what keeps partitioned runs
// byte-identical under any parallelism.
func (co *coordinator) drain() {
	for _, src := range co.parts {
		for i := range src.outbox {
			h := &src.outbox[i]
			dst := h.l.rem
			if h.at < dst.now {
				// Lookahead violation: a cross-partition link delivered
				// into a window the destination already executed. The link
				// was wired without BindRemote or its delay was mutated
				// below the registered lookahead.
				panic(pastEventError(h.at, dst.now, dst.id))
			}
			dst.push(event{at: h.at, kind: evDeliver, l: h.l, p: h.p})
			h.p = nil
			h.l = nil
		}
		src.outbox = src.outbox[:0]
	}
}

// foldShards merges partition trace shards into the base tracer in
// partition-index order and resets the shards, so repeated Run/RunUntil
// calls never double-count.
func (co *coordinator) foldShards() {
	if co.foldInto == nil {
		return
	}
	for _, p := range co.parts {
		if p.tracer != nil && p.tracer.Len() > 0 {
			co.foldInto.Merge(p.tracer)
			p.tracer.Reset()
		}
	}
}
