// Package netsim is a deterministic discrete-event network simulator: an
// event engine with virtual nanosecond time, plus packets, queues, links and
// nodes. It is the substitute substrate for the Linux kernel datapath used by
// the LiteFlow paper (see DESIGN.md §1): it reproduces the feedback loops —
// ACK clocking, queue build-up, ECN marking, loss — that make the placement
// of an adaptive NN's control path matter.
//
// The engine is single-threaded by design: all state mutation happens inside
// event callbacks, so entities need no locks and runs are reproducible.
package netsim

import "container/heap"

// Time is virtual simulation time in nanoseconds.
type Time = int64

// Common durations in nanoseconds.
const (
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among same-time events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now  Time
	heap eventHeap
	seq  uint64
}

// NewEngine returns an engine with time 0 and an empty event queue.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: silently reordering events would corrupt
// causality in every experiment built on top.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("netsim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.heap, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now. Negative d is clamped to
// zero (runs "immediately", after already-queued same-time events).
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.heap) }

// Step executes the earliest event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// RunUntil executes events until the queue is empty or the next event is
// later than deadline. Time is advanced to the deadline if the simulation
// outlived it, so subsequent scheduling is relative to the deadline.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}
