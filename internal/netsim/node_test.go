package netsim

import "testing"

// buildY returns a switch with two ports (to node 1 and node 2) feeding two
// sinks, plus the engine.
func buildY(t *testing.T) (*Engine, *Switch, *Sink, *Sink) {
	t.Helper()
	e := NewEngine()
	s := NewSwitch(0)
	sink1, sink2 := &Sink{}, &Sink{}
	s.AddPort(1, NewLink(e, sink1, 1e9, 0, nil))
	s.AddPort(2, NewLink(e, sink2, 1e9, 0, nil))
	return e, s, sink1, sink2
}

func TestSwitchDestinationRouting(t *testing.T) {
	e, s, sink1, sink2 := buildY(t)
	s.AddRoute(1, 1)
	s.AddRoute(2, 2)
	s.HandlePacket(&Packet{Dst: 1, Size: 100})
	s.HandlePacket(&Packet{Dst: 2, Size: 100})
	s.HandlePacket(&Packet{Dst: 2, Size: 100})
	e.Run()
	if sink1.Packets != 1 || sink2.Packets != 2 {
		t.Errorf("sink1=%d sink2=%d, want 1/2", sink1.Packets, sink2.Packets)
	}
}

func TestSwitchDefaultRoute(t *testing.T) {
	e, s, sink1, _ := buildY(t)
	s.SetDefaultRoute(1)
	s.HandlePacket(&Packet{Dst: 99, Size: 100})
	e.Run()
	if sink1.Packets != 1 {
		t.Errorf("default route not used, sink1=%d", sink1.Packets)
	}
}

func TestSwitchUnroutedCounted(t *testing.T) {
	_, s, _, _ := buildY(t)
	s.HandlePacket(&Packet{Dst: 42, Size: 100})
	if s.Unrouted() != 1 {
		t.Errorf("Unrouted = %d, want 1", s.Unrouted())
	}
}

func TestSwitchECMPFlowSticky(t *testing.T) {
	e, s, sink1, sink2 := buildY(t)
	s.AddRoute(5, 1, 2) // 2-way ECMP towards dst 5
	const flows = 64
	const perFlow = 10
	for f := 0; f < flows; f++ {
		for i := 0; i < perFlow; i++ {
			s.HandlePacket(&Packet{Dst: 5, Flow: FlowID(f), Size: 100})
		}
	}
	e.Run()
	// Every flow's packets must all land on one sink: totals divisible by
	// perFlow per flow means each sink count is a multiple of perFlow.
	if sink1.Packets%perFlow != 0 || sink2.Packets%perFlow != 0 {
		t.Errorf("flows split across paths: sink1=%d sink2=%d", sink1.Packets, sink2.Packets)
	}
	if sink1.Packets+sink2.Packets != flows*perFlow {
		t.Errorf("lost packets: %d+%d", sink1.Packets, sink2.Packets)
	}
	// And the hash must actually spread flows across both paths.
	if sink1.Packets == 0 || sink2.Packets == 0 {
		t.Error("ECMP did not spread flows at all")
	}
}

func TestSwitchECMPSaltChangesMapping(t *testing.T) {
	// With different salts, at least one of a handful of flows should map
	// to a different port.
	pick := func(salt uint64) [8]int {
		var out [8]int
		e := NewEngine()
		s := NewSwitch(0)
		s1, s2 := &Sink{}, &Sink{}
		s.AddPort(1, NewLink(e, s1, 1e9, 0, nil))
		s.AddPort(2, NewLink(e, s2, 1e9, 0, nil))
		s.AddRoute(5, 1, 2)
		s.SetHashSalt(salt)
		for f := 0; f < 8; f++ {
			before := s1.Packets
			s.HandlePacket(&Packet{Dst: 5, Flow: FlowID(f), Size: 1})
			e.Run()
			if s1.Packets > before {
				out[f] = 1
			}
		}
		return out
	}
	if pick(0) == pick(12345) {
		t.Error("different salts should remap at least one of 8 flows")
	}
}

func TestSwitchExplicitPath(t *testing.T) {
	e, s, sink1, sink2 := buildY(t)
	s.AddRoute(5, 2) // table says port 2 ...
	p := &Packet{Dst: 5, Size: 100, Path: []int{1}}
	s.HandlePacket(p) // ... but the pinned path says node 1
	e.Run()
	if sink1.Packets != 1 || sink2.Packets != 0 {
		t.Errorf("explicit path ignored: sink1=%d sink2=%d", sink1.Packets, sink2.Packets)
	}
	if p.Hop != 1 {
		t.Errorf("Hop = %d, want 1", p.Hop)
	}
}

func TestSwitchExplicitPathFallsBackOnUnknownHop(t *testing.T) {
	e, s, sink1, _ := buildY(t)
	s.AddRoute(5, 1)
	p := &Packet{Dst: 5, Size: 100, Path: []int{77}} // node 77 not a port
	s.HandlePacket(p)
	e.Run()
	if sink1.Packets != 1 {
		t.Error("must fall back to table routing for unknown pinned hop")
	}
}

func TestSwitchExplicitPathExhaustedUsesTable(t *testing.T) {
	e, s, _, sink2 := buildY(t)
	s.AddRoute(5, 2)
	p := &Packet{Dst: 5, Size: 100, Path: []int{9}, Hop: 1} // path consumed
	s.HandlePacket(p)
	e.Run()
	if sink2.Packets != 1 {
		t.Error("consumed path must use table routing")
	}
}

func TestSwitchRouteViaUnknownPortPanics(t *testing.T) {
	_, s, _, _ := buildY(t)
	defer func() {
		if recover() == nil {
			t.Error("AddRoute via unknown port must panic")
		}
	}()
	s.AddRoute(5, 99)
}

func TestPacketPayloadBytes(t *testing.T) {
	d := &Packet{Size: HeaderBytes + 100}
	if d.PayloadBytes() != 100 {
		t.Errorf("PayloadBytes = %d, want 100", d.PayloadBytes())
	}
	a := &Packet{Size: AckSize, Ack: true}
	if a.PayloadBytes() != 0 {
		t.Error("ACK payload must be 0")
	}
	tiny := &Packet{Size: 10}
	if tiny.PayloadBytes() != 0 {
		t.Error("sub-header packet payload must clamp to 0")
	}
}
