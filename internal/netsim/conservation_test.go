package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: packets are conserved through a link — everything sent is either
// delivered, still queued, in flight (transmitting/propagating), or was
// dropped by the queue. Checked after the engine drains, when in-flight is
// zero.
func TestLinkConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		sink := &Sink{}
		q := NewDropTail(1 + r.Intn(20000))
		l := NewLink(e, sink, int64(1+r.Intn(1_000_000_000)), Time(r.Intn(1000)), q)
		sent := int64(0)
		n := 1 + r.Intn(300)
		for i := 0; i < n; i++ {
			at := Time(r.Intn(10000))
			e.At(at, func() {
				l.Send(&Packet{Size: 100 + r.Intn(1400)})
				sent++
			})
		}
		e.Run()
		return sent == sink.Packets+int64(q.Drops()) && q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a switch with complete routes never loses packets — everything
// handled is delivered or dropped at a queue, and per-destination delivery
// respects the routing table.
func TestSwitchConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		s := NewSwitch(0)
		const ports = 3
		sinks := make([]*Sink, ports)
		for p := 0; p < ports; p++ {
			sinks[p] = &Sink{}
			s.AddPort(p+1, NewLink(e, sinks[p], 1e9, 0, NewDropTail(1<<30)))
			s.AddRoute(100+p, p+1)
		}
		counts := make([]int64, ports)
		n := 1 + r.Intn(500)
		for i := 0; i < n; i++ {
			dst := r.Intn(ports)
			counts[dst]++
			s.HandlePacket(&Packet{Dst: 100 + dst, Flow: FlowID(i), Size: 100})
		}
		e.Run()
		for p := 0; p < ports; p++ {
			if sinks[p].Packets != counts[p] {
				return false
			}
		}
		return s.Unrouted() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
