package netsim

// Queue is the buffering discipline attached to a link's egress. Enqueue
// reports false when the packet was dropped. Implementations are not
// concurrency-safe; the engine is single-threaded.
type Queue interface {
	Enqueue(p *Packet) bool
	Dequeue() *Packet
	Len() int   // packets queued
	Bytes() int // bytes queued
}

// DropTail is a FIFO queue bounded by bytes, with optional DCTCP-style ECN
// marking: packets enqueued while the queue holds at least MarkBytes get CE
// set. MarkBytes == 0 disables marking.
type DropTail struct {
	CapBytes  int // drop packets that would push the queue beyond this
	MarkBytes int // ECN marking threshold K; 0 = no marking

	pkts  []*Packet
	head  int
	bytes int
	drops int
}

// NewDropTail returns a FIFO queue holding at most capBytes.
func NewDropTail(capBytes int) *DropTail {
	return &DropTail{CapBytes: capBytes}
}

// NewECNQueue returns a FIFO queue with capacity capBytes that marks CE on
// packets arriving when the backlog is at least markBytes.
func NewECNQueue(capBytes, markBytes int) *DropTail {
	return &DropTail{CapBytes: capBytes, MarkBytes: markBytes}
}

// Enqueue appends p unless it would overflow the byte capacity.
func (q *DropTail) Enqueue(p *Packet) bool {
	if q.bytes+p.Size > q.CapBytes {
		q.drops++
		return false
	}
	if q.MarkBytes > 0 && q.bytes >= q.MarkBytes {
		p.CE = true
	}
	q.pkts = append(q.pkts, p)
	q.bytes += p.Size
	return true
}

// Dequeue removes and returns the oldest packet, or nil when empty.
func (q *DropTail) Dequeue() *Packet {
	if q.head >= len(q.pkts) {
		return nil
	}
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	q.bytes -= p.Size
	// Compact once the dead prefix dominates, amortized O(1).
	if q.head > 64 && q.head*2 >= len(q.pkts) {
		n := copy(q.pkts, q.pkts[q.head:])
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	return p
}

// Len returns the number of queued packets.
func (q *DropTail) Len() int { return len(q.pkts) - q.head }

// Bytes returns the number of queued bytes.
func (q *DropTail) Bytes() int { return q.bytes }

// Drops returns the cumulative count of packets rejected by Enqueue.
func (q *DropTail) Drops() int { return q.drops }

// NumPrioBands is the number of strict-priority bands in a PrioQueue,
// matching the 8 hardware queues of commodity switches used by pFabric-style
// schedulers.
const NumPrioBands = 8

// PrioQueue is a strict-priority queue: band 0 drains first. Each band is a
// drop-tail FIFO; the byte capacity is shared across bands (a shared-buffer
// switch model). ECN marking applies on the total backlog.
type PrioQueue struct {
	CapBytes  int
	MarkBytes int

	bands [NumPrioBands]DropTail
	bytes int
	drops int
}

// NewPrioQueue returns a strict-priority queue with shared capacity capBytes
// and ECN threshold markBytes (0 disables marking).
func NewPrioQueue(capBytes, markBytes int) *PrioQueue {
	q := &PrioQueue{CapBytes: capBytes, MarkBytes: markBytes}
	for i := range q.bands {
		// Band capacity is enforced at the shared level; make each band
		// individually unbounded.
		q.bands[i].CapBytes = int(^uint(0) >> 1)
	}
	return q
}

// Enqueue places p into its priority band unless the shared buffer is full.
func (q *PrioQueue) Enqueue(p *Packet) bool {
	if q.bytes+p.Size > q.CapBytes {
		q.drops++
		return false
	}
	if q.MarkBytes > 0 && q.bytes >= q.MarkBytes {
		p.CE = true
	}
	band := p.Prio
	if band < 0 {
		band = 0
	}
	if band >= NumPrioBands {
		band = NumPrioBands - 1
	}
	q.bands[band].Enqueue(p)
	q.bytes += p.Size
	return true
}

// Dequeue returns the oldest packet from the highest-priority non-empty band.
func (q *PrioQueue) Dequeue() *Packet {
	for i := range q.bands {
		if q.bands[i].Len() > 0 {
			p := q.bands[i].Dequeue()
			q.bytes -= p.Size
			return p
		}
	}
	return nil
}

// Len returns the total number of queued packets across bands.
func (q *PrioQueue) Len() int {
	n := 0
	for i := range q.bands {
		n += q.bands[i].Len()
	}
	return n
}

// Bytes returns the total queued bytes across bands.
func (q *PrioQueue) Bytes() int { return q.bytes }

// Drops returns the cumulative count of packets rejected by Enqueue.
func (q *PrioQueue) Drops() int { return q.drops }
