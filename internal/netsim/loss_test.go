package netsim

import "testing"

// TestLinkLossDeterministic pushes a fixed packet train through a lossy link
// twice with the same seed: drop count and delivered set must match exactly,
// and a different seed must (for this train) pick a different pattern.
func TestLinkLossDeterministic(t *testing.T) {
	run := func(seed int64) (drops int64, delivered []int64) {
		eng := NewEngine()
		sink := HandlerFunc(func(p *Packet) {
			delivered = append(delivered, p.Seq)
			FreePacket(p)
		})
		l := NewLink(eng, sink, 1_000_000_000, Millisecond, NewDropTail(1<<30))
		l.SetLoss(0.3, seed)
		for i := 0; i < 200; i++ {
			seq := int64(i)
			eng.At(Time(i)*Microsecond, func() {
				p := AllocPacket()
				p.Flow, p.Seq, p.Size = 1, seq, 1000
				l.Send(p)
			})
		}
		eng.RunUntil(Second)
		return l.LossDrops(), delivered
	}

	d1, got1 := run(7)
	d2, got2 := run(7)
	if d1 == 0 || d1 == 200 {
		t.Fatalf("loss 0.3 over 200 packets dropped %d; rng degenerate", d1)
	}
	if d1 != d2 || len(got1) != len(got2) {
		t.Fatalf("same seed diverged: drops %d vs %d, delivered %d vs %d",
			d1, d2, len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("same seed delivered different packet %d: %d vs %d", i, got1[i], got2[i])
		}
	}
	_, got3 := run(8)
	same := len(got3) == len(got1)
	if same {
		for i := range got1 {
			if got1[i] != got3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical loss patterns")
	}
}

// TestLinkLossRateValidation documents the [0,1) contract.
func TestLinkLossRateValidation(t *testing.T) {
	eng := NewEngine()
	l := NewLink(eng, HandlerFunc(func(p *Packet) { FreePacket(p) }),
		1_000_000, Millisecond, nil)
	for _, bad := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetLoss(%v) did not panic", bad)
				}
			}()
			l.SetLoss(bad, 1)
		}()
	}
	l.SetLoss(0, 1) // zero disables, must not panic
}
