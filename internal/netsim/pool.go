package netsim

import "sync"

// packetPool recycles Packet objects across the whole process. Packets are
// zeroed on allocation, so pool reuse order (which varies under parallel
// windows) cannot leak state between uses and never affects results.
var packetPool = sync.Pool{New: func() interface{} { return new(Packet) }}

// AllocPacket returns a zeroed packet, reusing a freed one when available.
// Producers (transports, traffic sources) allocate here; the entity that
// terminally consumes a packet — a drop point, a sink, or the demultiplexer
// after the endpoint handler returns — releases it with FreePacket.
func AllocPacket() *Packet {
	p := packetPool.Get().(*Packet)
	*p = Packet{}
	return p
}

// FreePacket recycles p. Freeing the same packet twice without an
// intervening AllocPacket is a use-after-free in the making and panics.
// Freeing nil is a no-op. Packets constructed directly (tests, external
// producers) may be freed too; they simply join the pool.
func FreePacket(p *Packet) {
	if p == nil {
		return
	}
	if p.freed {
		panic("netsim: packet double-free")
	}
	p.freed = true
	packetPool.Put(p)
}
