//go:build race

package netsim

// raceEnabled reports whether the race detector is active. The detector's
// shadow-memory instrumentation adds heap allocations to the event loop, so
// the zero-alloc guards skip themselves under -race (they still run in the
// plain test job).
const raceEnabled = true
