package netsim

// FlowID identifies a transport flow. IDs are allocated by the transport
// layer and used as hash keys throughout (flow cache, FCT accounting),
// mirroring gopacket's hashable Endpoint/Flow idiom.
type FlowID uint64

// Packet is the unit of transfer. Packets are passed by pointer and reused
// where possible; entities must not retain a packet after handing it off.
type Packet struct {
	Flow FlowID
	Src  int // source node ID
	Dst  int // destination node ID

	Seq  int64 // first byte carried (data) — cumulative byte sequence space
	Size int   // wire size in bytes, headers included

	Ack   bool  // true for pure ACK packets
	AckNo int64 // cumulative ACK: next byte expected by the receiver

	FIN bool // sender has no more data after this segment

	CE  bool // congestion experienced: set by ECN-marking queues
	ECE bool // echoed CE: set on ACKs by DCTCP-style receivers

	Prio int // priority band, 0 = highest (flow scheduling experiments)

	// App is an opaque application tag carried on the first segment of an
	// application message (actor request/response framing). Zero means "no
	// tag". The transport echoes it on retransmissions of that segment so
	// exactly one delivered copy surfaces it to the receiver app.
	App int64

	// Path optionally pins the exact sequence of switch node IDs to
	// traverse (XPath-style explicit path control, used by the load
	// balancing experiments). When nil, switches use their routing tables.
	Path []int
	Hop  int // index of the next entry in Path

	SentAt Time // transmission start time at the original sender
	EnqAt  Time // last enqueue time (for per-hop queueing delay accounting)

	// freed guards the pool (AllocPacket/FreePacket) against double-free.
	freed bool
}

// HeaderBytes is the fixed per-packet header overhead (Ethernet + IP + TCP,
// rounded). Goodput accounting subtracts it from wire size.
const HeaderBytes = 58

// MSS is the maximum segment payload in bytes used by the transport.
const MSS = 1448

// AckSize is the wire size of a pure ACK.
const AckSize = HeaderBytes + 8

// PayloadBytes returns the application bytes carried by a data packet.
func (p *Packet) PayloadBytes() int {
	if p.Ack {
		return 0
	}
	n := p.Size - HeaderBytes
	if n < 0 {
		return 0
	}
	return n
}
