package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mkPkt(size int) *Packet { return &Packet{Size: size} }

func TestDropTailFIFO(t *testing.T) {
	q := NewDropTail(10000)
	for i := 0; i < 5; i++ {
		p := mkPkt(100)
		p.Seq = int64(i)
		if !q.Enqueue(p) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if q.Len() != 5 || q.Bytes() != 500 {
		t.Fatalf("Len/Bytes = %d/%d, want 5/500", q.Len(), q.Bytes())
	}
	for i := 0; i < 5; i++ {
		p := q.Dequeue()
		if p == nil || p.Seq != int64(i) {
			t.Fatalf("dequeue %d returned %+v", i, p)
		}
	}
	if q.Dequeue() != nil {
		t.Error("dequeue on empty queue must return nil")
	}
}

func TestDropTailCapacity(t *testing.T) {
	q := NewDropTail(250)
	if !q.Enqueue(mkPkt(100)) || !q.Enqueue(mkPkt(100)) {
		t.Fatal("first two packets must fit")
	}
	if q.Enqueue(mkPkt(100)) {
		t.Error("third packet must be dropped (300 > 250)")
	}
	if q.Drops() != 1 {
		t.Errorf("Drops = %d, want 1", q.Drops())
	}
	// A smaller packet that fits must still be accepted.
	if !q.Enqueue(mkPkt(50)) {
		t.Error("50-byte packet must fit in remaining 50 bytes")
	}
}

func TestDropTailECNMarking(t *testing.T) {
	q := NewECNQueue(100000, 300)
	for i := 0; i < 3; i++ {
		p := mkPkt(100)
		q.Enqueue(p)
		if p.CE {
			t.Fatalf("packet %d below threshold must not be marked", i)
		}
	}
	p := mkPkt(100)
	q.Enqueue(p) // backlog is now 300 ≥ K
	if !p.CE {
		t.Error("packet at threshold must be CE-marked")
	}
}

func TestDropTailNoMarkingWhenDisabled(t *testing.T) {
	q := NewDropTail(100000)
	for i := 0; i < 100; i++ {
		p := mkPkt(100)
		q.Enqueue(p)
		if p.CE {
			t.Fatal("marking disabled but packet got CE")
		}
	}
}

func TestDropTailCompaction(t *testing.T) {
	q := NewDropTail(1 << 30)
	// Push/pop enough to trigger the compaction path several times.
	for round := 0; round < 10; round++ {
		for i := 0; i < 200; i++ {
			p := mkPkt(1)
			p.Seq = int64(round*200 + i)
			q.Enqueue(p)
		}
		for i := 0; i < 200; i++ {
			p := q.Dequeue()
			if p.Seq != int64(round*200+i) {
				t.Fatalf("order broken after compaction: got %d want %d", p.Seq, round*200+i)
			}
		}
	}
	if q.Len() != 0 || q.Bytes() != 0 {
		t.Errorf("queue should be empty, Len=%d Bytes=%d", q.Len(), q.Bytes())
	}
}

// Property: bytes accounting is always the sum of queued packet sizes.
func TestDropTailBytesInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := NewDropTail(5000)
		queued := 0
		cnt := 0
		for i := 0; i < 300; i++ {
			if r.Intn(2) == 0 {
				size := 1 + r.Intn(200)
				if q.Enqueue(mkPkt(size)) {
					queued += size
					cnt++
				}
			} else if p := q.Dequeue(); p != nil {
				queued -= p.Size
				cnt--
			}
			if q.Bytes() != queued || q.Len() != cnt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPrioQueueStrictPriority(t *testing.T) {
	q := NewPrioQueue(1<<20, 0)
	lo := mkPkt(100)
	lo.Prio = 5
	hi := mkPkt(100)
	hi.Prio = 0
	mid := mkPkt(100)
	mid.Prio = 2
	q.Enqueue(lo)
	q.Enqueue(hi)
	q.Enqueue(mid)
	if got := q.Dequeue(); got != hi {
		t.Error("priority 0 must dequeue first")
	}
	if got := q.Dequeue(); got != mid {
		t.Error("priority 2 must dequeue second")
	}
	if got := q.Dequeue(); got != lo {
		t.Error("priority 5 must dequeue last")
	}
}

func TestPrioQueueFIFOWithinBand(t *testing.T) {
	q := NewPrioQueue(1<<20, 0)
	for i := 0; i < 5; i++ {
		p := mkPkt(10)
		p.Prio = 3
		p.Seq = int64(i)
		q.Enqueue(p)
	}
	for i := 0; i < 5; i++ {
		if p := q.Dequeue(); p.Seq != int64(i) {
			t.Fatalf("band FIFO broken: got %d want %d", p.Seq, i)
		}
	}
}

func TestPrioQueueSharedCapacityAndClamping(t *testing.T) {
	q := NewPrioQueue(250, 0)
	a := mkPkt(100)
	a.Prio = -3 // clamps to band 0
	b := mkPkt(100)
	b.Prio = 99 // clamps to last band
	if !q.Enqueue(a) || !q.Enqueue(b) {
		t.Fatal("both packets must fit")
	}
	if q.Enqueue(mkPkt(100)) {
		t.Error("shared capacity must reject the third packet")
	}
	if q.Drops() != 1 {
		t.Errorf("Drops = %d, want 1", q.Drops())
	}
	if q.Dequeue() != a {
		t.Error("clamped-high priority must drain first")
	}
	if q.Dequeue() != b {
		t.Error("clamped-low priority must drain last")
	}
	if q.Len() != 0 || q.Bytes() != 0 {
		t.Error("queue must be empty after draining")
	}
}

func TestPrioQueueECNMarksOnTotalBacklog(t *testing.T) {
	q := NewPrioQueue(1<<20, 150)
	p1 := mkPkt(100)
	p1.Prio = 0
	q.Enqueue(p1)
	p2 := mkPkt(100)
	p2.Prio = 7
	q.Enqueue(p2) // backlog 100 < 150 at enqueue time: unmarked
	if p2.CE {
		t.Error("p2 enqueued below threshold must be unmarked")
	}
	p3 := mkPkt(100)
	q.Enqueue(p3) // backlog 200 ≥ 150
	if !p3.CE {
		t.Error("p3 above threshold must be marked")
	}
}

func BenchmarkDropTailEnqueueDequeue(b *testing.B) {
	q := NewDropTail(1 << 30)
	p := mkPkt(1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(p)
		q.Dequeue()
	}
}
