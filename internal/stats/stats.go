// Package stats provides small, allocation-conscious statistics helpers used
// by the simulator and the experiment harness: running summaries, CDFs,
// percentiles and fixed-interval time series.
//
// All helpers are deterministic and operate on float64 samples. They are not
// safe for concurrent use; callers own the synchronization (the simulator is
// single-threaded by design).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a running mean/variance/min/max without storing
// samples, using Welford's online algorithm.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddN records n identical samples in O(1), equivalent (up to float
// association) to calling Add(x) n times. It exists for batch telemetry:
// a batch of n queries sharing one modeled cost observes the histogram once
// instead of n times.
func (s *Summary) AddN(x float64, n int) {
	if n <= 0 {
		return
	}
	// A run of n identical samples is a summary with zero variance; folding
	// it in via the parallel Welford combination handles the cross terms.
	s.Merge(Summary{n: n, mean: x, m2: 0, min: x, max: x})
}

// Merge folds another summary into s using the parallel Welford combination
// (Chan et al.), as if every sample of o had been Add-ed to s. Merging in a
// fixed order is deterministic, which the telemetry merge relies on.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.mean += d * float64(o.n) / float64(n)
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.n = n
}

// N returns the number of samples recorded.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean, or 0 if no samples were recorded.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the population variance, or 0 for fewer than two samples.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample, or 0 if none were recorded.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample, or 0 if none were recorded.
func (s *Summary) Max() float64 { return s.max }

// String renders "mean=… std=… n=…" for logs and experiment rows.
func (s *Summary) String() string {
	return fmt.Sprintf("mean=%.3f std=%.3f min=%.3f max=%.3f n=%d", s.Mean(), s.Std(), s.Min(), s.Max(), s.n)
}

// Dist stores samples for quantile queries. It sorts lazily and caches the
// sorted order until the next Add.
type Dist struct {
	xs     []float64
	sorted bool
}

// NewDist returns a Dist with capacity hint n.
func NewDist(n int) *Dist { return &Dist{xs: make([]float64, 0, n)} }

// Add records one sample.
func (d *Dist) Add(x float64) {
	d.xs = append(d.xs, x)
	d.sorted = false
}

// N returns the number of samples.
func (d *Dist) N() int { return len(d.xs) }

// Merge appends all of o's samples into d. o is unchanged; merging in a
// deterministic order keeps quantiles reproducible (ties in sort order never
// affect values, only the backing layout).
func (d *Dist) Merge(o *Dist) {
	if o == nil || len(o.xs) == 0 {
		return
	}
	d.xs = append(d.xs, o.xs...)
	d.sorted = false
}

func (d *Dist) sortIfNeeded() {
	if !d.sorted {
		sort.Float64s(d.xs)
		d.sorted = true
	}
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear interpolation
// between closest ranks. It returns 0 when the distribution is empty.
func (d *Dist) Quantile(q float64) float64 {
	if len(d.xs) == 0 {
		return 0
	}
	d.sortIfNeeded()
	if q <= 0 {
		return d.xs[0]
	}
	if q >= 1 {
		return d.xs[len(d.xs)-1]
	}
	pos := q * float64(len(d.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return d.xs[lo]
	}
	frac := pos - float64(lo)
	return d.xs[lo]*(1-frac) + d.xs[hi]*frac
}

// Mean returns the arithmetic mean of the samples (0 when empty).
func (d *Dist) Mean() float64 {
	if len(d.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range d.xs {
		sum += x
	}
	return sum / float64(len(d.xs))
}

// Median returns the 50th percentile.
func (d *Dist) Median() float64 { return d.Quantile(0.5) }

// CDFPoint is one (value, cumulative fraction) pair of an empirical CDF.
type CDFPoint struct {
	X float64 // sample value
	F float64 // fraction of samples ≤ X
}

// CDF returns the empirical CDF downsampled to at most points entries
// (always including the extremes). points must be ≥ 2.
func (d *Dist) CDF(points int) []CDFPoint {
	if len(d.xs) == 0 {
		return nil
	}
	if points < 2 {
		points = 2
	}
	d.sortIfNeeded()
	n := len(d.xs)
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := i * (n - 1) / (points - 1)
		out = append(out, CDFPoint{X: d.xs[idx], F: float64(idx+1) / float64(n)})
	}
	return out
}

// TimeSeries accumulates samples into fixed-width time bins, e.g. goodput
// measured every 100 ms. Times are int64 nanoseconds (simulator virtual time).
type TimeSeries struct {
	binWidth int64
	bins     []float64
	counts   []int
}

// NewTimeSeries returns a TimeSeries with the given bin width in nanoseconds.
// It panics if binWidth is not positive, since a zero width would divide by
// zero on every Add.
func NewTimeSeries(binWidth int64) *TimeSeries {
	if binWidth <= 0 {
		panic("stats: TimeSeries bin width must be positive")
	}
	return &TimeSeries{binWidth: binWidth}
}

// Add accumulates value v into the bin containing time t. Negative times are
// clamped to bin 0.
func (ts *TimeSeries) Add(t int64, v float64) {
	bin := int(t / ts.binWidth)
	if bin < 0 {
		bin = 0
	}
	for bin >= len(ts.bins) {
		ts.bins = append(ts.bins, 0)
		ts.counts = append(ts.counts, 0)
	}
	ts.bins[bin] += v
	ts.counts[bin]++
}

// NumBins returns the number of bins touched so far.
func (ts *TimeSeries) NumBins() int { return len(ts.bins) }

// BinWidth returns the configured bin width in nanoseconds.
func (ts *TimeSeries) BinWidth() int64 { return ts.binWidth }

// Sum returns the accumulated value of bin i (0 for untouched bins in range).
func (ts *TimeSeries) Sum(i int) float64 {
	if i < 0 || i >= len(ts.bins) {
		return 0
	}
	return ts.bins[i]
}

// Count returns the number of samples added to bin i.
func (ts *TimeSeries) Count(i int) int {
	if i < 0 || i >= len(ts.counts) {
		return 0
	}
	return ts.counts[i]
}

// Avg returns the mean of the samples in bin i, or 0 for an empty bin.
func (ts *TimeSeries) Avg(i int) float64 {
	if i < 0 || i >= len(ts.bins) || ts.counts[i] == 0 {
		return 0
	}
	return ts.bins[i] / float64(ts.counts[i])
}

// RatePerSecond interprets bin sums as byte (or bit) counts and returns the
// per-second rate series, one value per bin.
func (ts *TimeSeries) RatePerSecond() []float64 {
	out := make([]float64, len(ts.bins))
	secs := float64(ts.binWidth) / 1e9
	for i, v := range ts.bins {
		out[i] = v / secs
	}
	return out
}

// Normalize divides each value by base, returning a new slice. Values are 0
// when base is 0, which keeps downstream table formatting total.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// MeanOf returns the mean of xs, or 0 when empty.
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
