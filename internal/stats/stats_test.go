package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d, want 5", s.N())
	}
	if !almost(s.Mean(), 3, 1e-12) {
		t.Errorf("Mean = %v, want 3", s.Mean())
	}
	if !almost(s.Var(), 2, 1e-12) {
		t.Errorf("Var = %v, want 2", s.Var())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Errorf("empty summary must report zeros, got %s", s.String())
	}
}

func TestSummarySingleSample(t *testing.T) {
	var s Summary
	s.Add(42)
	if s.Mean() != 42 || s.Var() != 0 || s.Min() != 42 || s.Max() != 42 {
		t.Errorf("single sample summary wrong: %s", s.String())
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	var s Summary
	s.Add(-5)
	s.Add(5)
	if !almost(s.Mean(), 0, 1e-12) || s.Min() != -5 || s.Max() != 5 {
		t.Errorf("negative handling wrong: %s", s.String())
	}
}

// Property: Welford mean matches the naive mean for arbitrary inputs.
func TestSummaryMeanMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		sum := 0.0
		clean := xs[:0]
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			clean = append(clean, x)
		}
		for _, x := range clean {
			s.Add(x)
			sum += x
		}
		if len(clean) == 0 {
			return s.Mean() == 0
		}
		want := sum / float64(len(clean))
		return almost(s.Mean(), want, 1e-6*(1+math.Abs(want)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistQuantiles(t *testing.T) {
	d := NewDist(0)
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.99, 99.01},
	}
	for _, c := range cases {
		if got := d.Quantile(c.q); !almost(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestDistEmpty(t *testing.T) {
	d := NewDist(0)
	if d.Quantile(0.5) != 0 || d.Mean() != 0 || d.CDF(10) != nil {
		t.Error("empty Dist must return zero values and nil CDF")
	}
}

func TestDistAddAfterQuantileResorts(t *testing.T) {
	d := NewDist(0)
	d.Add(10)
	d.Add(20)
	_ = d.Quantile(0.5) // forces a sort
	d.Add(1)            // must invalidate the cached order
	if got := d.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) after late Add = %v, want 1", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	d := NewDist(0)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		d.Add(r.NormFloat64())
	}
	pts := d.CDF(32)
	if len(pts) == 0 {
		t.Fatal("no CDF points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].F < pts[i-1].F {
			t.Fatalf("CDF not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
	if last := pts[len(pts)-1]; last.F != 1 {
		t.Errorf("last CDF fraction = %v, want 1", last.F)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := NewDist(0)
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			d.Add(r.Float64()*1000 - 500)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := d.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return d.Quantile(0) <= d.Quantile(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTimeSeriesBinning(t *testing.T) {
	ts := NewTimeSeries(1e9) // 1-second bins
	ts.Add(0, 10)
	ts.Add(5e8, 20)
	ts.Add(15e8, 5)
	if ts.NumBins() != 2 {
		t.Fatalf("NumBins = %d, want 2", ts.NumBins())
	}
	if ts.Sum(0) != 30 || ts.Sum(1) != 5 {
		t.Errorf("Sum = %v,%v want 30,5", ts.Sum(0), ts.Sum(1))
	}
	if ts.Count(0) != 2 || ts.Avg(0) != 15 {
		t.Errorf("Count/Avg(0) = %d/%v want 2/15", ts.Count(0), ts.Avg(0))
	}
	rates := ts.RatePerSecond()
	if rates[0] != 30 || rates[1] != 5 {
		t.Errorf("rates = %v", rates)
	}
}

func TestTimeSeriesNegativeTimeClamps(t *testing.T) {
	ts := NewTimeSeries(100)
	ts.Add(-50, 7)
	if ts.Sum(0) != 7 {
		t.Errorf("negative time must land in bin 0, got %v", ts.Sum(0))
	}
}

func TestTimeSeriesZeroWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTimeSeries(0) must panic")
		}
	}()
	NewTimeSeries(0)
}

func TestTimeSeriesOutOfRangeQueries(t *testing.T) {
	ts := NewTimeSeries(10)
	if ts.Sum(3) != 0 || ts.Count(-1) != 0 || ts.Avg(99) != 0 {
		t.Error("out-of-range queries must return 0")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6}, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Normalize = %v, want %v", got, want)
		}
	}
	zero := Normalize([]float64{1, 2}, 0)
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("Normalize by 0 must zero out, got %v", zero)
	}
}

func TestMeanOf(t *testing.T) {
	if MeanOf(nil) != 0 {
		t.Error("MeanOf(nil) must be 0")
	}
	if got := MeanOf([]float64{1, 2, 3}); !almost(got, 2, 1e-12) {
		t.Errorf("MeanOf = %v, want 2", got)
	}
}

func BenchmarkSummaryAdd(b *testing.B) {
	var s Summary
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i))
	}
}

func BenchmarkDistQuantile(b *testing.B) {
	d := NewDist(10000)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		d.Add(r.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Quantile(0.99)
	}
}
