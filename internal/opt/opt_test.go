package opt_test

// Tests for the functional-options package and its consumers: option
// application/ignoring per constructor, nil-safety, and behavioral
// equivalence of the deprecated trailing-Scope wrappers with the options
// form (compared via registry-export bytes after identical activity).

import (
	"testing"

	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netlink"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/obs"
	"github.com/liteflow-sim/liteflow/internal/opt"
	"github.com/liteflow-sim/liteflow/internal/quant"
	"github.com/liteflow-sim/liteflow/internal/topo"
)

func TestResolveEmpty(t *testing.T) {
	o := opt.Resolve(nil)
	if o.HasScope || o.Faults != nil || o.Watchdog != nil || o.Retry != nil {
		t.Errorf("zero Options expected, got %+v", o)
	}
	if o.Scope.Enabled() {
		t.Error("default scope must be the no-op scope")
	}
}

func TestResolveSkipsNilOptions(t *testing.T) {
	o := opt.Resolve([]opt.Option{nil, opt.WithFaults(nil), nil})
	if o.Faults != nil {
		t.Errorf("nil injector must stay nil, got %v", o.Faults)
	}
}

func TestWithScopeSetsHasScope(t *testing.T) {
	reg := obs.NewRegistry()
	sc := obs.New(reg, nil)
	o := opt.Resolve([]opt.Option{opt.WithScope(sc)})
	if !o.HasScope {
		t.Error("WithScope must set HasScope")
	}
	if o.Scope.Registry() != reg {
		t.Error("WithScope must carry the scope through Resolve")
	}
	// Even an explicit no-op scope counts as "explicitly set".
	o = opt.Resolve([]opt.Option{opt.WithScope(obs.Nop())})
	if !o.HasScope {
		t.Error("WithScope(Nop) must still set HasScope")
	}
}

func TestWithScopeLastWins(t *testing.T) {
	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	o := opt.Resolve([]opt.Option{
		opt.WithScope(obs.New(regA, nil)),
		opt.WithScope(obs.New(regB, nil)),
	})
	if o.Scope.Registry() != regB {
		t.Error("later WithScope must override earlier one")
	}
}

func TestWithWatchdogDefaults(t *testing.T) {
	o := opt.Resolve([]opt.Option{opt.WithWatchdog(opt.Watchdog{})})
	if o.Watchdog == nil {
		t.Fatal("WithWatchdog must set Options.Watchdog")
	}
	if o.Watchdog.Window != opt.DefaultWatchdogWindow {
		t.Errorf("zero Window: got %d, want default %d", o.Watchdog.Window, opt.DefaultWatchdogWindow)
	}
	if o.Watchdog.Check != opt.DefaultWatchdogWindow/2 {
		t.Errorf("zero Check: got %d, want window/2 = %d", o.Watchdog.Check, opt.DefaultWatchdogWindow/2)
	}

	o = opt.Resolve([]opt.Option{opt.WithWatchdog(opt.Watchdog{Window: 7e9, Check: 1e9})})
	if o.Watchdog.Window != 7e9 || o.Watchdog.Check != 1e9 {
		t.Errorf("explicit fields must be preserved, got %+v", *o.Watchdog)
	}
}

func TestWithRetryDefaults(t *testing.T) {
	d := opt.DefaultRetry()
	o := opt.Resolve([]opt.Option{opt.WithRetry(opt.Retry{})})
	if o.Retry == nil {
		t.Fatal("WithRetry must set Options.Retry")
	}
	if *o.Retry != d {
		t.Errorf("zero Retry: got %+v, want defaults %+v", *o.Retry, d)
	}
	o = opt.Resolve([]opt.Option{opt.WithRetry(opt.Retry{Max: 9, Base: 1e6, Cap: 2e6})})
	if o.Retry.Max != 9 || o.Retry.Base != 1e6 || o.Retry.Cap != 2e6 {
		t.Errorf("explicit fields must be preserved, got %+v", *o.Retry)
	}
}

func TestWithWatchdogCopiesValue(t *testing.T) {
	w := opt.Watchdog{Window: 5e9}
	option := opt.WithWatchdog(w)
	w.Window = 1 // mutating the caller's copy must not affect the option
	o := opt.Resolve([]opt.Option{option})
	if o.Watchdog.Window != 5e9 {
		t.Errorf("WithWatchdog must capture the value at construction, got %d", o.Watchdog.Window)
	}
}

// export renders a registry to its canonical Prometheus bytes.
func export(reg *obs.Registry) string { return string(reg.PrometheusText()) }

// tinyNet builds a deterministic 4→8→1 policy network for core rigs.
func tinyNet() *nn.Network {
	return nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Tanh}, 3)
}

// coreRig builds a core with one registered model using either the
// deprecated trailing-scope form or the options form, then drives identical
// query traffic against it.
func coreRig(t *testing.T, sc obs.Scope, deprecated bool) *core.Core {
	t.Helper()
	eng := netsim.NewEngine()
	cpu := ksim.NewHostCPU(eng, 2)
	cfg := core.DefaultConfig()
	cfg.FlowCacheTimeout = 0
	var c *core.Core
	if deprecated {
		c = core.New(eng, cpu, ksim.DefaultCosts(), cfg, sc)
	} else {
		c = core.NewCore(eng, cpu, ksim.DefaultCosts(), cfg, opt.WithScope(sc))
	}
	mod, err := codegen.Build(quant.Quantize(tinyNet(), cfg.Quant), "m")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterModel(mod); err != nil {
		t.Fatal(err)
	}
	in := make([]int64, 4)
	out := make([]int64, 1)
	for i := 0; i < 10; i++ {
		if err := c.QueryModel(1, in, out); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestDeprecatedCoreWrapperEquivalence(t *testing.T) {
	regOld := obs.NewRegistry()
	coreRig(t, obs.New(regOld, nil), true)
	regNew := obs.NewRegistry()
	coreRig(t, obs.New(regNew, nil), false)
	if export(regOld) != export(regNew) {
		t.Errorf("core.New and core.NewCore diverge:\n--- deprecated ---\n%s\n--- options ---\n%s",
			export(regOld), export(regNew))
	}
	// The deprecated form with no scope at all must also work (nil-safety).
	coreRig(t, obs.Nop(), true)
}

func TestDeprecatedCPUWrapperEquivalence(t *testing.T) {
	drive := func(cpu *ksim.CPU) {
		cpu.Charge(ksim.Kernel, 5000)
		cpu.Charge(ksim.SoftIRQ, 2500)
	}
	regOld := obs.NewRegistry()
	drive(ksim.NewCPU(netsim.NewEngine(), 2, obs.New(regOld, nil)))
	regNew := obs.NewRegistry()
	drive(ksim.NewHostCPU(netsim.NewEngine(), 2, opt.WithScope(obs.New(regNew, nil))))
	if export(regOld) != export(regNew) {
		t.Errorf("ksim.NewCPU and ksim.NewHostCPU diverge:\n--- deprecated ---\n%s\n--- options ---\n%s",
			export(regOld), export(regNew))
	}
	// No-scope calls of both forms must be valid.
	ksim.NewCPU(netsim.NewEngine(), 1)
	ksim.NewHostCPU(netsim.NewEngine(), 1)
}

func TestDeprecatedChannelWrapperEquivalence(t *testing.T) {
	drive := func(eng *netsim.Engine, ch *netlink.Channel) {
		for i := 0; i < 4; i++ {
			ch.Push(netlink.Message{Kind: netlink.KindSample, Data: []float64{1, float64(i)}})
		}
		ch.Flush()
		eng.RunUntil(1e9)
	}
	engOld := netsim.NewEngine()
	regOld := obs.NewRegistry()
	drive(engOld, netlink.New(engOld, ksim.NewHostCPU(engOld, 1), ksim.DefaultCosts(),
		func([]netlink.Message) {}, obs.New(regOld, nil)))
	engNew := netsim.NewEngine()
	regNew := obs.NewRegistry()
	drive(engNew, netlink.NewChannel(engNew, ksim.NewHostCPU(engNew, 1), ksim.DefaultCosts(),
		func([]netlink.Message) {}, opt.WithScope(obs.New(regNew, nil))))
	if export(regOld) != export(regNew) {
		t.Errorf("netlink.New and netlink.NewChannel diverge:\n--- deprecated ---\n%s\n--- options ---\n%s",
			export(regOld), export(regNew))
	}
}

func TestDeprecatedLinkWrapperEquivalence(t *testing.T) {
	drive := func(eng *netsim.Engine, l *netsim.Link) {
		for i := 0; i < 3; i++ {
			l.Send(&netsim.Packet{Flow: 1, Size: 1500, Seq: int64(i) * 1500})
		}
		eng.RunUntil(1e9)
	}
	engOld := netsim.NewEngine()
	regOld := obs.NewRegistry()
	drive(engOld, netsim.NewLink(engOld, netsim.HandlerFunc(func(*netsim.Packet) {}),
		1e9, 1e6, netsim.NewDropTail(64<<10), obs.New(regOld, nil)))
	engNew := netsim.NewEngine()
	regNew := obs.NewRegistry()
	drive(engNew, netsim.Connect(engNew, netsim.HandlerFunc(func(*netsim.Packet) {}),
		1e9, 1e6, netsim.NewDropTail(64<<10), opt.WithScope(obs.New(regNew, nil))))
	if export(regOld) != export(regNew) {
		t.Errorf("netsim.NewLink and netsim.Connect diverge:\n--- deprecated ---\n%s\n--- options ---\n%s",
			export(regOld), export(regNew))
	}
}

func TestDeprecatedTopoWrappersEquivalence(t *testing.T) {
	opts := topo.TestbedOpts(2)
	engOld := netsim.NewEngine()
	regOld := obs.NewRegistry()
	dOld := topo.NewDumbbell(engOld, opts, obs.New(regOld, nil))
	dOld.AttachCPUs(2, ksim.DefaultCosts(), obs.New(regOld, nil))
	engNew := netsim.NewEngine()
	regNew := obs.NewRegistry()
	dNew := topo.BuildDumbbell(engNew, opts, opt.WithScope(obs.New(regNew, nil)))
	dNew.ProvisionCPUs(2, ksim.DefaultCosts(), opt.WithScope(obs.New(regNew, nil)))

	if len(dOld.Senders) != len(dNew.Senders) || len(dOld.Receivers) != len(dNew.Receivers) {
		t.Fatalf("topologies differ structurally: %d/%d senders, %d/%d receivers",
			len(dOld.Senders), len(dNew.Senders), len(dOld.Receivers), len(dNew.Receivers))
	}
	for i := range dOld.Senders {
		if (dOld.Senders[i].CPU == nil) != (dNew.Senders[i].CPU == nil) {
			t.Errorf("sender %d CPU provisioning differs", i)
		}
	}
	if export(regOld) != export(regNew) {
		t.Errorf("topo deprecated wrappers diverge:\n--- deprecated ---\n%s\n--- options ---\n%s",
			export(regOld), export(regNew))
	}
}

// staticUser implements Freezer/Evaluator/Adapter with a fixed network.
type staticUser struct{ net *nn.Network }

func (u staticUser) Freeze() *nn.Network          { return u.net }
func (u staticUser) Stability() float64           { return 1 }
func (u staticUser) Infer(in []float64) []float64 { return u.net.Infer(in) }
func (u staticUser) Adapt([]core.Sample)          {}

// serviceRig wires a full slow path and pushes one batch through it.
func serviceRig(t *testing.T, reg *obs.Registry, deprecated bool) core.ServiceStats {
	t.Helper()
	sc := obs.New(reg, nil)
	eng := netsim.NewEngine()
	cpu := ksim.NewHostCPU(eng, 2)
	cfg := core.DefaultConfig()
	cfg.FlowCacheTimeout = 0
	c := core.NewCore(eng, cpu, ksim.DefaultCosts(), cfg, opt.WithScope(sc))
	net := tinyNet()
	mod, err := codegen.Build(quant.Quantize(net, cfg.Quant), "m")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterModel(mod); err != nil {
		t.Fatal(err)
	}
	ch := netlink.NewChannel(eng, cpu, ksim.DefaultCosts(), nil, opt.WithScope(sc))
	u := staticUser{net}
	var svc *core.Service
	if deprecated {
		svc = core.NewService(c, ch, u, u, u, sc)
	} else {
		svc = core.NewSlowPath(c, ch, u, u, u, opt.WithScope(sc))
	}
	svc.Start(100e6)
	for i := 0; i < 8; i++ {
		ch.Push(core.EncodeSample(core.Sample{Input: []float64{0.1, 0.2, 0.3, 0.4}, Aux: []float64{1}, At: eng.Now()}))
	}
	eng.RunUntil(1e9)
	ch.StopBatching()
	c.StopSweeper()
	return svc.Stats()
}

func TestDeprecatedServiceWrapperEquivalence(t *testing.T) {
	regOld := obs.NewRegistry()
	statsOld := serviceRig(t, regOld, true)
	regNew := obs.NewRegistry()
	statsNew := serviceRig(t, regNew, false)
	if statsOld != statsNew {
		t.Errorf("service stats diverge:\ndeprecated: %+v\noptions:    %+v", statsOld, statsNew)
	}
	if export(regOld) != export(regNew) {
		t.Errorf("core.NewService and core.NewSlowPath diverge in telemetry")
	}
	if statsOld.Batches == 0 {
		t.Error("rig produced no batches; equivalence test is vacuous")
	}
}

// TestConstructorsIgnoreIrrelevantOptions verifies constructors tolerate
// options they do not consume instead of misbehaving: a CPU does not use a
// watchdog, a channel does not use a retry policy.
func TestConstructorsIgnoreIrrelevantOptions(t *testing.T) {
	eng := netsim.NewEngine()
	cpu := ksim.NewHostCPU(eng, 1, opt.WithWatchdog(opt.Watchdog{}), opt.WithRetry(opt.Retry{}))
	if cpu == nil {
		t.Fatal("CPU constructor rejected irrelevant options")
	}
	ch := netlink.NewChannel(eng, cpu, ksim.DefaultCosts(), nil,
		opt.WithWatchdog(opt.Watchdog{Window: 1}), opt.WithFaults(nil))
	if ch == nil {
		t.Fatal("channel constructor rejected irrelevant options")
	}
	l := netsim.Connect(eng, netsim.HandlerFunc(func(*netsim.Packet) {}), 1e9, 0,
		netsim.NewDropTail(1<<16), opt.WithRetry(opt.Retry{Max: 1}))
	if l == nil {
		t.Fatal("link constructor rejected irrelevant options")
	}
}
