// Package opt defines the functional-options pattern shared by every
// component constructor (core, netlink, ksim, netsim, topo). It replaces the
// old trailing-variadic `sc ...obs.Scope` convention: options compose, new
// knobs (fault injection, watchdog, install retry) ride the same parameter,
// and call sites read as configuration rather than positional magic.
//
// The package sits just above obs and fault in the import graph so every
// subsystem can depend on it without cycles.
package opt

import (
	"github.com/liteflow-sim/liteflow/internal/fault"
	"github.com/liteflow-sim/liteflow/internal/obs"
)

// Watchdog configures the core's slow-path liveness watchdog: if no batch
// reaches the userspace service within Window, the core degrades gracefully
// to the last-good snapshot (pending standby discarded) and counts
// liteflow_core_degraded_total. All times are virtual nanoseconds.
type Watchdog struct {
	// Window is the maximum silence tolerated before degrading.
	// Zero selects DefaultWatchdogWindow.
	Window int64
	// Check is the watchdog tick period. Zero selects Window/2.
	Check int64
}

// DefaultWatchdogWindow tolerates one second of slow-path silence — ten
// missed batches at the paper's recommended T = 100 ms.
const DefaultWatchdogWindow = int64(1e9)

// withDefaults fills zero fields.
func (w Watchdog) withDefaults() Watchdog {
	if w.Window <= 0 {
		w.Window = DefaultWatchdogWindow
	}
	if w.Check <= 0 {
		w.Check = w.Window / 2
	}
	return w
}

// Retry bounds the slow path's retry-with-backoff for failed snapshot
// installs: attempt n waits min(Base<<n, Cap) of virtual time before
// retrying, up to Max attempts total.
type Retry struct {
	Max  int   // total attempts (including the first); <=0 selects 3
	Base int64 // first backoff, ns; <=0 selects 50 ms
	Cap  int64 // backoff ceiling, ns; <=0 selects 1 s
}

// DefaultRetry returns the default install-retry policy: 3 attempts,
// 50 ms base backoff, 1 s cap.
func DefaultRetry() Retry { return Retry{Max: 3, Base: 50e6, Cap: 1e9} }

func (r Retry) withDefaults() Retry {
	d := DefaultRetry()
	if r.Max <= 0 {
		r.Max = d.Max
	}
	if r.Base <= 0 {
		r.Base = d.Base
	}
	if r.Cap <= 0 {
		r.Cap = d.Cap
	}
	return r
}

// Options is the resolved option set a constructor consumes.
type Options struct {
	// Scope is the telemetry scope; the zero value is a valid no-op.
	Scope obs.Scope
	// HasScope distinguishes an explicit WithScope from the default, so
	// components that inherit a parent's scope (the service inherits the
	// core's) can tell the difference.
	HasScope bool
	// Faults is the fault injector; nil injects nothing.
	Faults *fault.Injector
	// Watchdog, when non-nil, enables the core's slow-path watchdog.
	Watchdog *Watchdog
	// Retry, when non-nil, overrides the install retry policy.
	Retry *Retry
}

// Option mutates an Options during Resolve.
type Option func(*Options)

// Resolve applies opts in order over the zero Options.
func Resolve(opts []Option) Options {
	var o Options
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// WithScope attaches a telemetry scope (metrics registry + tracer + labels).
func WithScope(sc obs.Scope) Option {
	return func(o *Options) { o.Scope = sc; o.HasScope = true }
}

// WithFaults attaches a fault injector. A nil injector is valid and injects
// nothing, so callers can wire it unconditionally.
func WithFaults(inj *fault.Injector) Option {
	return func(o *Options) { o.Faults = inj }
}

// WithWatchdog enables the core's slow-path liveness watchdog. Zero fields
// take defaults (1 s window, window/2 check period).
func WithWatchdog(w Watchdog) Option {
	w = w.withDefaults()
	return func(o *Options) { o.Watchdog = &w }
}

// WithRetry overrides the slow path's snapshot-install retry policy. Zero
// fields take defaults (3 attempts, 50 ms base, 1 s cap).
func WithRetry(r Retry) Option {
	r = r.withDefaults()
	return func(o *Options) { o.Retry = &r }
}
