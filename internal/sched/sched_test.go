package sched

import (
	"math"
	"math/rand"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/quant"
	"github.com/liteflow-sim/liteflow/internal/workload"
)

// trainSet builds a labeled set from the web-search workload.
func trainSet(seed int64, n int, drift float64) ([][]float64, []int64) {
	fm := NewFeatureModel(seed)
	fm.Drift = drift
	dist := workload.WebSearch()
	r := rand.New(rand.NewSource(seed + 100))
	feats := make([][]float64, n)
	sizes := make([]int64, n)
	for i := 0; i < n; i++ {
		sizes[i] = dist.Sample(r)
		feats[i] = fm.Features(sizes[i])
	}
	return feats, sizes
}

func TestFFNNLearnsFlowSizes(t *testing.T) {
	net := NewFFNN(1)
	feats, sizes := trainSet(2, 512, 0)
	loss := Train(net, feats, sizes, 600, 1e-2)
	if loss > 0.002 {
		t.Fatalf("training loss = %v, want ≤ 0.002", loss)
	}
	// Held-out evaluation: order-of-magnitude accuracy.
	testF, testS := trainSet(3, 200, 0)
	var correctBand int
	for i := range testF {
		pred := PredictedBytes(net.Infer(testF[i])[0])
		if PrioOf(pred) == PrioOf(float64(testS[i])) {
			correctBand++
		}
	}
	frac := float64(correctBand) / float64(len(testF))
	if frac < 0.6 {
		t.Errorf("band accuracy = %.2f, want ≥ 0.6", frac)
	}
}

func TestDriftDegradesFrozenModel(t *testing.T) {
	// A model trained at drift 0 must misclassify under feature drift —
	// the premise of the N-O-A comparison — and retraining must recover.
	net := NewFFNN(1)
	feats, sizes := trainSet(2, 512, 0)
	Train(net, feats, sizes, 600, 1e-2)

	bandAcc := func(drift float64) float64 {
		testF, testS := trainSet(9, 300, drift)
		ok := 0
		for i := range testF {
			if PrioOf(PredictedBytes(net.Infer(testF[i])[0])) == PrioOf(float64(testS[i])) {
				ok++
			}
		}
		return float64(ok) / float64(len(testF))
	}
	clean := bandAcc(0)
	drifted := bandAcc(0.15)
	if drifted >= clean {
		t.Errorf("drift must hurt the frozen model: clean %.2f, drifted %.2f", clean, drifted)
	}
	// Online adaptation: retrain on drifted data.
	f2, s2 := trainSet(11, 512, 0.15)
	Train(net, f2, s2, 600, 1e-2)
	recovered := bandAcc(0.15)
	if recovered <= drifted {
		t.Errorf("retraining must recover accuracy: drifted %.2f, recovered %.2f", drifted, recovered)
	}
}

func TestPrioOf(t *testing.T) {
	cases := map[float64]int{
		1e3: 0, 9e3: 0, 15e3: 1, 50e3: 2, 200e3: 3, 500e3: 4, 2e6: 5, 5e6: 6, 50e6: 7,
	}
	for size, want := range cases {
		if got := PrioOf(size); got != want {
			t.Errorf("PrioOf(%g) = %d, want %d", size, got, want)
		}
	}
}

func TestTargetRoundTrip(t *testing.T) {
	for _, s := range []int64{1000, 50_000, 2_000_000} {
		back := PredictedBytes(Target(s))
		if math.Abs(back-float64(s))/float64(s) > 0.01 {
			t.Errorf("round trip %d -> %.0f", s, back)
		}
	}
}

func TestTrainEmptySetIsSafe(t *testing.T) {
	if got := Train(NewFFNN(1), nil, nil, 10, 1e-3); got != 0 {
		t.Error("empty training set must return 0")
	}
}

// latencyRig builds all three predictors over the same trained model.
func latencyRig(t *testing.T) (*netsim.Engine, *KernelPredictor, *UserPredictor, *UserPredictor) {
	t.Helper()
	eng := netsim.NewEngine()
	costs := ksim.DefaultCosts()
	net := NewFFNN(1)
	feats, sizes := trainSet(2, 256, 0)
	Train(net, feats, sizes, 300, 1e-2)
	prog := quant.Quantize(net, quant.DefaultConfig())
	kp := NewKernelPredictor(eng, nil, costs, prog)
	char := NewUserPredictor(eng, nil, costs, net, CharDev)
	nl := NewUserPredictor(eng, nil, costs, net, Netlink)
	return eng, kp, char, nl
}

func TestPredictionLatencyOrdering(t *testing.T) {
	// Figure 15's shape: LF < char-dev < netlink, µs scale.
	eng, kp, char, nl := latencyRig(t)
	fm := NewFeatureModel(5)
	mean := func(p Predictor) float64 {
		var sum netsim.Time
		const n = 200
		for i := 0; i < n; i++ {
			sum += p.Predict(fm.Features(50_000), func(int) {})
		}
		eng.Run()
		return float64(sum) / n / 1e3 // µs
	}
	lf := mean(kp)
	cd := mean(char)
	nlk := mean(nl)
	if !(lf < cd && cd < nlk) {
		t.Errorf("latency ordering broken: LF=%.2fµs char=%.2fµs netlink=%.2fµs", lf, cd, nlk)
	}
	if lf < 0.5 || lf > 5 {
		t.Errorf("LF latency = %.2fµs, want low-µs scale", lf)
	}
	if nlk < 5 || nlk > 15 {
		t.Errorf("netlink latency = %.2fµs, want ≈ 8µs scale", nlk)
	}
}

func TestPredictorsAgreeOnPriority(t *testing.T) {
	eng, kp, char, _ := latencyRig(t)
	fm := NewFeatureModel(6)
	dist := workload.WebSearch()
	r := rand.New(rand.NewSource(3))
	agree := 0
	const n = 100
	for i := 0; i < n; i++ {
		f := fm.Features(dist.Sample(r))
		var pk, pc int
		kp.Predict(f, func(p int) { pk = p })
		char.Predict(f, func(p int) { pc = p })
		eng.Run()
		if pk == pc {
			agree++
		}
	}
	if float64(agree)/n < 0.9 {
		t.Errorf("kernel and userspace deployments disagree too often: %d/%d", agree, n)
	}
}

func TestUserPredictorChargesCPU(t *testing.T) {
	eng := netsim.NewEngine()
	cpu := ksim.NewCPU(eng, 4)
	costs := ksim.DefaultCosts()
	up := NewUserPredictor(eng, cpu, costs, NewFFNN(1), CharDev)
	up.Predict(make([]float64, NumFeatures), func(int) {})
	eng.Run()
	if cpu.BusyTime(ksim.SoftIRQ) == 0 || cpu.BusyTime(ksim.User) == 0 {
		t.Error("userspace prediction must charge softirq and user CPU time")
	}
	kp := NewKernelPredictor(eng, cpu, costs, quant.Quantize(NewFFNN(1), quant.DefaultConfig()))
	before := cpu.BusyTime(ksim.SoftIRQ)
	kp.Predict(make([]float64, NumFeatures), func(int) {})
	eng.Run()
	if cpu.BusyTime(ksim.SoftIRQ) != before {
		t.Error("kernel prediction must not cost cross-space softirq")
	}
	if cpu.BusyTime(ksim.Kernel) == 0 {
		t.Error("kernel prediction must charge kernel time")
	}
}

func TestOraclePredictor(t *testing.T) {
	o := &OraclePredictor{SizeOf: func(f []float64) int64 { return int64(f[0]) }}
	var got int
	lat := o.Predict([]float64{5_000}, func(p int) { got = p })
	if lat != 0 || got != 0 {
		t.Errorf("oracle: lat=%v prio=%d, want 0/0", lat, got)
	}
	o.Predict([]float64{5_000_000}, func(p int) { got = p })
	if got != 6 {
		t.Errorf("oracle prio for 5MB = %d, want 6", got)
	}
}

func BenchmarkKernelPredict(b *testing.B) {
	eng := netsim.NewEngine()
	prog := quant.Quantize(NewFFNN(1), quant.DefaultConfig())
	kp := NewKernelPredictor(eng, nil, ksim.DefaultCosts(), prog)
	f := make([]float64, NumFeatures)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kp.Predict(f, func(int) {})
		if i%1024 == 1023 {
			eng.Run()
		}
	}
}
