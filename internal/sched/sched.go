// Package sched implements NN-driven flow scheduling (paper §5.2): FLUX's
// FFNN flow-size predictor, the priority tagger that maps predicted sizes to
// strict-priority bands (pFabric-style), and the three prediction
// deployments the paper compares — the LiteFlow kernel snapshot, a
// char-device userspace service, and a per-message netlink userspace
// service — each with its own latency and CPU cost profile (Figure 15).
package sched

import (
	"math"
	"math/rand"

	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/quant"
)

// NumFeatures is the FFNN input width: the flow metadata FLUX collects at
// flow start (normalized log burst size, inter-arrival gap, source load,
// destination load).
const NumFeatures = 4

// LogScale normalizes log10(bytes) into roughly [0, 1] for the regressor
// (10^7.5 ≈ 30 MB is the workload's tail).
const LogScale = 7.5

// NewFFNN returns FLUX's predictor architecture: 2 hidden layers × 5
// neurons, ReLU, linear output regressing normalized log flow size.
func NewFFNN(seed int64) *nn.Network {
	net := nn.New([]int{NumFeatures, 5, 5, 1},
		[]nn.Activation{nn.ReLU, nn.ReLU, nn.Linear}, seed)
	// Small positive biases keep the narrow ReLU layers alive at init;
	// with only 5 units per layer, zero biases strand most of them dead
	// on the all-positive feature ranges.
	for _, l := range net.Layers[:2] {
		for i := range l.B {
			l.B[i] = 0.1
		}
	}
	return net
}

// FeatureModel synthesizes predictable-but-noisy flow features: the
// information FLUX extracts from application context. Drift shifts the
// feature→size mapping, modelling workload changes that invalidate a frozen
// model (the N-O-A comparisons of Figure 16).
type FeatureModel struct {
	// Noise is the feature noise stddev (prediction ceiling).
	Noise float64
	// Drift offsets the informative feature; a tuned model learns it away,
	// a frozen snapshot cannot.
	Drift float64

	rng *rand.Rand
}

// NewFeatureModel returns a feature synthesizer with the given seed.
func NewFeatureModel(seed int64) *FeatureModel {
	return &FeatureModel{Noise: 0.03, rng: rand.New(rand.NewSource(seed))}
}

// Features produces the metadata vector observed for a flow of the given
// size (bytes). The first dimension carries the learnable signal; the rest
// model context of limited value.
func (f *FeatureModel) Features(size int64) []float64 {
	sig := math.Log10(float64(size))/LogScale + f.Drift + f.rng.NormFloat64()*f.Noise
	return []float64{
		sig,
		f.rng.Float64() * 0.5,         // inter-arrival gap (weakly informative)
		0.3 + f.rng.NormFloat64()*0.1, // source load
		0.3 + f.rng.NormFloat64()*0.1, // destination load
	}
}

// Target returns the regression target for a flow size.
func Target(size int64) float64 { return math.Log10(float64(size)) / LogScale }

// PredictedBytes inverts a model output back to bytes.
func PredictedBytes(out float64) float64 { return math.Pow(10, out*LogScale) }

// Train fits the FFNN on (features, size) pairs for the given epochs and
// returns the final loss. The adapter used by the online experiments calls
// this with freshly collected batches.
func Train(net *nn.Network, feats [][]float64, sizes []int64, epochs int, lr float64) float64 {
	if len(feats) == 0 {
		return 0
	}
	y := make([][]float64, len(sizes))
	for i, s := range sizes {
		y[i] = []float64{Target(s)}
	}
	opt := nn.NewAdam(lr)
	var loss float64
	for e := 0; e < epochs; e++ {
		loss = nn.TrainBatch(net, opt, feats, y, 5)
	}
	return loss
}

// PrioThresholds are the flow-size boundaries (bytes) between the 8 strict
// priority bands, following the pFabric/PIAS convention: small flows get
// high priority (band 0).
var PrioThresholds = []float64{10e3, 30e3, 100e3, 300e3, 1e6, 3e6, 10e6}

// PrioOf maps a predicted flow size to a priority band.
func PrioOf(predictedBytes float64) int {
	for i, th := range PrioThresholds {
		if predictedBytes < th {
			return i
		}
	}
	return len(PrioThresholds)
}

// Predictor resolves a flow's priority asynchronously; the three deployment
// variants differ in where the NN runs and what the exchange costs.
type Predictor interface {
	// Predict computes a priority for the feature vector and delivers it
	// via reply, after the deployment's latency. It returns the latency
	// charged for this prediction (for Figure 15's CDF).
	Predict(features []float64, reply func(prio int)) netsim.Time
}

// KernelPredictor runs the quantized FFNN snapshot in the kernel — the
// LF-FFNN deployment: inference cost only, no boundary crossing.
type KernelPredictor struct {
	Eng   *netsim.Engine
	CPU   *ksim.CPU // optional
	Costs ksim.Costs
	Prog  *quant.Program

	in  []int64
	out []int64
	jit *rand.Rand
}

// NewKernelPredictor wraps a quantized snapshot.
func NewKernelPredictor(eng *netsim.Engine, cpu *ksim.CPU, costs ksim.Costs, prog *quant.Program) *KernelPredictor {
	return &KernelPredictor{Eng: eng, CPU: cpu, Costs: costs, Prog: prog,
		in: make([]int64, prog.InputSize()), out: make([]int64, prog.OutputSize()),
		jit: rand.New(rand.NewSource(1))}
}

// Predict implements Predictor.
func (k *KernelPredictor) Predict(features []float64, reply func(int)) netsim.Time {
	cost := ksim.InferCost(k.Costs.KernelInferPerMAC, k.Prog.MACs())
	lat := cost + netsim.Time(k.jit.Int63n(int64(cost)+1)) // cache/pipeline jitter
	if k.CPU != nil {
		k.CPU.Charge(ksim.Kernel, cost)
		lat += k.CPU.QueueDelay()
	}
	k.Prog.QuantizeInput(features, k.in)
	k.Prog.Infer(k.in, k.out)
	bytes := PredictedBytes(float64(k.out[0]) / float64(k.Prog.OutputScale))
	prio := PrioOf(bytes)
	k.Eng.After(lat, func() { reply(prio) })
	return lat
}

// Transport selects the userspace exchange mechanism.
type Transport int

// Userspace transports the paper compares against.
const (
	CharDev Transport = iota
	Netlink
)

// UserPredictor runs the float FFNN in userspace behind a per-prediction
// kernel↔user exchange — char-FFNN and netlink-FFNN.
type UserPredictor struct {
	Eng       *netsim.Engine
	CPU       *ksim.CPU // optional
	Costs     ksim.Costs
	Net       *nn.Network
	Transport Transport

	out []float64
	jit *rand.Rand
}

// NewUserPredictor wraps a float network behind the given transport.
func NewUserPredictor(eng *netsim.Engine, cpu *ksim.CPU, costs ksim.Costs, net *nn.Network, tr Transport) *UserPredictor {
	return &UserPredictor{Eng: eng, CPU: cpu, Costs: costs, Net: net, Transport: tr,
		out: make([]float64, 1), jit: rand.New(rand.NewSource(2))}
}

// Predict implements Predictor.
func (u *UserPredictor) Predict(features []float64, reply func(int)) netsim.Time {
	var oneWay netsim.Time
	var perMsg netsim.Time
	switch u.Transport {
	case CharDev:
		oneWay, perMsg = u.Costs.CharDevLatency, u.Costs.CharDevPerMsg
	default:
		oneWay, perMsg = u.Costs.NetlinkLatency, u.Costs.NetlinkPerMsg
	}
	infer := ksim.InferCost(u.Costs.UserInferPerMAC, u.Net.MACs())
	lat := 2*oneWay + infer
	lat += netsim.Time(u.jit.Int63n(int64(oneWay) + 1)) // scheduling jitter
	if u.CPU != nil {
		u.CPU.Charge(ksim.SoftIRQ, 2*u.Costs.CrossSpace)
		u.CPU.Charge(ksim.Kernel, 2*perMsg)
		u.CPU.Charge(ksim.User, infer)
		lat += u.CPU.QueueDelay()
	}
	u.Net.Forward(features, u.out)
	prio := PrioOf(PredictedBytes(u.out[0]))
	u.Eng.After(lat, func() { reply(prio) })
	return lat
}

var (
	_ Predictor = (*KernelPredictor)(nil)
	_ Predictor = (*UserPredictor)(nil)
)

// OraclePredictor tags flows with their true size instantly — the "advance
// knowledge" upper bound FLUX argues for.
type OraclePredictor struct {
	// SizeOf maps a feature vector back to the true size; experiments
	// capture the true size in a closure.
	SizeOf func(features []float64) int64
}

// Predict implements Predictor with zero latency.
func (o *OraclePredictor) Predict(features []float64, reply func(int)) netsim.Time {
	reply(PrioOf(float64(o.SizeOf(features))))
	return 0
}
