// Package fault is a deterministic, seed-driven fault injector for the
// simulated LiteFlow deployment. The paper's robustness story (§3.4, §4) is
// that the kernel fast path keeps serving inference when the userspace slow
// path is slow, stalled, or delivering bad snapshots — this package creates
// exactly those conditions on demand: netlink message drop/corruption,
// batch delivery delay and reordering, forced snapshot build/quantization
// failures, transient service outages (crash/restart windows), and CPU
// overload spikes.
//
// Every decision comes from the injector's own splitmix64 PRNG streams —
// one independent stream per subsystem so, e.g., enabling message drops does
// not perturb the outage schedule — and all timing is virtual simulation
// time. No wall clock, no global rand: two same-seed runs inject byte-
// identical fault sequences, so faulted runs stay diffable regression
// artifacts like everything else in the simulator.
//
// Every injected fault is emitted through the supplied obs.Scope under the
// "fault" trace category and counted in liteflow_fault_injected_total{kind},
// so traces show cause→effect: a "fault/outage" span explains the
// "core/degrade" event that follows it.
//
// A nil *Injector is valid and injects nothing; callers never need to guard
// call sites.
package fault

import (
	"math"

	"github.com/liteflow-sim/liteflow/internal/obs"
)

// Clock is the virtual-time surface the injector schedules against. It is
// structurally satisfied by *netsim.Engine (netsim.Time is an int64 alias);
// fault deliberately does not import netsim so the package sits below every
// layer it plugs into.
type Clock interface {
	Now() int64
	After(d int64, fn func())
}

// Profile declares which faults fire and how hard. Probabilities are in
// [0, 1]; durations are virtual nanoseconds. The zero Profile injects
// nothing.
type Profile struct {
	// Netlink kernel→userspace path.
	MsgDropP      float64 // per-message drop probability at flush time
	MsgCorruptP   float64 // per-message payload corruption probability
	BatchDelayP   float64 // per-flush probability of extra delivery delay
	BatchDelayMax int64   // max extra delay per delayed flush (ns)
	BatchReorderP float64 // per-flush probability of shuffling the batch

	// Slow-path snapshot pipeline.
	BuildFailP float64 // forced snapshot codegen failure probability
	QuantFailP float64 // forced quantization failure probability

	// Transient service outages: roughly every OutagePeriod (jittered), the
	// userspace service goes dark for OutageDuration and drops everything
	// delivered to it.
	OutagePeriod   int64
	OutageDuration int64

	// CPU overload spikes: roughly every SpikePeriod (jittered), SpikeWork
	// of extra softirq-class work lands on the host CPU.
	SpikePeriod int64
	SpikeWork   int64
}

// Active reports whether the profile injects anything at all.
func (p Profile) Active() bool {
	return p.MsgDropP > 0 || p.MsgCorruptP > 0 || p.BatchDelayP > 0 ||
		p.BatchReorderP > 0 || p.BuildFailP > 0 || p.QuantFailP > 0 ||
		(p.OutagePeriod > 0 && p.OutageDuration > 0) ||
		(p.SpikePeriod > 0 && p.SpikeWork > 0)
}

// Named profiles for cmd/lfsim's -fault-profile flag.
const (
	millisecond = int64(1e6)
	second      = int64(1e9)
)

// None injects nothing.
func None() Profile { return Profile{} }

// Netlink stresses only the channel: drops, corruption, delay, reordering.
func Netlink() Profile {
	return Profile{
		MsgDropP:      0.05,
		MsgCorruptP:   0.02,
		BatchDelayP:   0.2,
		BatchDelayMax: 20 * millisecond,
		BatchReorderP: 0.1,
	}
}

// SlowPath stresses the userspace service: build/quantization failures and
// crash/restart windows.
func SlowPath() Profile {
	return Profile{
		BuildFailP:     0.3,
		QuantFailP:     0.1,
		OutagePeriod:   2 * second,
		OutageDuration: 500 * millisecond,
	}
}

// Chaos turns everything on at once.
func Chaos() Profile {
	return Profile{
		MsgDropP:       0.05,
		MsgCorruptP:    0.02,
		BatchDelayP:    0.2,
		BatchDelayMax:  20 * millisecond,
		BatchReorderP:  0.1,
		BuildFailP:     0.2,
		QuantFailP:     0.05,
		OutagePeriod:   2 * second,
		OutageDuration: 500 * millisecond,
		SpikePeriod:    300 * millisecond,
		SpikeWork:      2 * millisecond,
	}
}

// ByName resolves a named profile: none, netlink, slowpath, chaos.
func ByName(name string) (Profile, bool) {
	switch name {
	case "", "none":
		return None(), true
	case "netlink":
		return Netlink(), true
	case "slowpath":
		return SlowPath(), true
	case "chaos":
		return Chaos(), true
	}
	return Profile{}, false
}

// rng is a splitmix64 stream — tiny, fast, and fully deterministic.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform int64 in [0, n). n must be positive.
func (r *rng) intn(n int64) int64 { return int64(r.next() % uint64(n)) }

// Stats is a snapshot of injected-fault counts.
type Stats struct {
	Drops      int64
	Corrupts   int64
	Delays     int64
	Reorders   int64
	BuildFails int64
	QuantFails int64
	Outages    int64
	Spikes     int64
}

// Total sums every injected fault.
func (s Stats) Total() int64 {
	return s.Drops + s.Corrupts + s.Delays + s.Reorders +
		s.BuildFails + s.QuantFails + s.Outages + s.Spikes
}

// metrics holds the injector's registry-backed counters, one per fault kind.
// All are registered eagerly so the Prometheus export is shape-identical
// whether or not a given fault kind ever fired.
type metrics struct {
	drops, corrupts, delays, reorders *obs.Counter
	buildFails, quantFails            *obs.Counter
	outages, spikes                   *obs.Counter
}

func newMetrics(sc obs.Scope) metrics {
	kind := func(k string) obs.Label { return obs.Label{Key: "kind", Value: k} }
	c := func(k string) *obs.Counter {
		return sc.Counter("liteflow_fault_injected_total", "faults injected, by kind", kind(k))
	}
	return metrics{
		drops:      c("msg_drop"),
		corrupts:   c("msg_corrupt"),
		delays:     c("batch_delay"),
		reorders:   c("batch_reorder"),
		buildFails: c("build_fail"),
		quantFails: c("quant_fail"),
		outages:    c("service_outage"),
		spikes:     c("cpu_spike"),
	}
}

// Injector makes the fault decisions. All methods are safe on a nil
// receiver (no fault is injected), so wiring is unconditional.
type Injector struct {
	prof Profile
	sc   obs.Scope
	met  metrics

	// Independent decision streams so fault kinds do not perturb each other.
	net, snap, svc, cpu rng

	// Outage-window state; windows are generated lazily and assume the
	// monotonic virtual clock of the simulator.
	outageStart int64
	outageEnd   int64
	outageOpen  bool

	spiking bool
}

// New returns an injector driven by profile p and the given seed. The scope
// exports per-kind fault counters and "fault"-category trace events; a zero
// scope still counts (Stats keeps working) but exports nothing.
func New(p Profile, seed int64, sc obs.Scope) *Injector {
	mix := func(stream uint64) rng {
		r := rng{state: uint64(seed)*0x9e3779b97f4a7c15 + stream}
		r.next() // decorrelate adjacent seeds
		return r
	}
	j := &Injector{prof: p, sc: sc, met: newMetrics(sc)}
	j.net = mix(1)
	j.snap = mix(2)
	j.svc = mix(3)
	j.cpu = mix(4)
	j.scheduleOutage(0)
	return j
}

// Profile returns the injector's profile (the zero Profile for nil).
func (j *Injector) Profile() Profile {
	if j == nil {
		return Profile{}
	}
	return j.prof
}

// Stats returns a snapshot of injected-fault counts (zero for nil).
func (j *Injector) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	return Stats{
		Drops:      j.met.drops.Value(),
		Corrupts:   j.met.corrupts.Value(),
		Delays:     j.met.delays.Value(),
		Reorders:   j.met.reorders.Value(),
		BuildFails: j.met.buildFails.Value(),
		QuantFails: j.met.quantFails.Value(),
		Outages:    j.met.outages.Value(),
		Spikes:     j.met.spikes.Value(),
	}
}

// DropMessage decides whether one kernel→userspace message is lost at flush
// time.
func (j *Injector) DropMessage(now int64) bool {
	if j == nil || j.prof.MsgDropP <= 0 {
		return false
	}
	if j.net.float() >= j.prof.MsgDropP {
		return false
	}
	j.met.drops.Inc()
	j.sc.Event("fault", "msg_drop", now)
	return true
}

// CorruptMessage decides whether to corrupt one message payload, mutating
// data in place. Corruption modes mirror what a buggy kernel-side encoder
// could produce — a negative or oversized length header, or non-finite
// values — all of which a hardened decoder must reject. It reports whether
// the payload was corrupted.
func (j *Injector) CorruptMessage(now int64, data []float64) bool {
	if j == nil || j.prof.MsgCorruptP <= 0 || len(data) == 0 {
		return false
	}
	if j.net.float() >= j.prof.MsgCorruptP {
		return false
	}
	mode := j.net.intn(4)
	switch mode {
	case 0:
		data[0] = -1 // negative input-length header
	case 1:
		data[0] = float64(len(data) + 64) // header overruns the payload
	case 2:
		data[0] = math.NaN() // non-finite header
	default:
		data[j.net.intn(int64(len(data)))] = math.NaN() // non-finite value
	}
	j.met.corrupts.Inc()
	j.sc.Event1("fault", "msg_corrupt", now, "mode", mode)
	return true
}

// DeliveryDelay returns extra virtual-time delay to add to one batch
// delivery (0 for most flushes).
func (j *Injector) DeliveryDelay(now int64) int64 {
	if j == nil || j.prof.BatchDelayP <= 0 || j.prof.BatchDelayMax <= 0 {
		return 0
	}
	if j.net.float() >= j.prof.BatchDelayP {
		return 0
	}
	d := 1 + j.net.intn(j.prof.BatchDelayMax)
	j.met.delays.Inc()
	j.sc.Event1("fault", "batch_delay", now, "ns", d)
	return d
}

// BatchPermutation returns a shuffled index permutation for an n-message
// batch, or nil to keep the original order.
func (j *Injector) BatchPermutation(now int64, n int) []int {
	if j == nil || j.prof.BatchReorderP <= 0 || n < 2 {
		return nil
	}
	if j.net.float() >= j.prof.BatchReorderP {
		return nil
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		k := j.net.intn(int64(i + 1))
		perm[i], perm[k] = perm[k], perm[i]
	}
	j.met.reorders.Inc()
	j.sc.Event1("fault", "batch_reorder", now, "msgs", int64(n))
	return perm
}

// FailSnapshot decides whether one snapshot install attempt fails before it
// reaches the kernel, returning the failure stage ("build" or "quant").
func (j *Injector) FailSnapshot(now int64) (reason string, fail bool) {
	if j == nil {
		return "", false
	}
	if j.prof.BuildFailP > 0 && j.snap.float() < j.prof.BuildFailP {
		j.met.buildFails.Inc()
		j.sc.EventStr("fault", "snapshot_fail", now, "stage", "build")
		return "build", true
	}
	if j.prof.QuantFailP > 0 && j.snap.float() < j.prof.QuantFailP {
		j.met.quantFails.Inc()
		j.sc.EventStr("fault", "snapshot_fail", now, "stage", "quant")
		return "quant", true
	}
	return "", false
}

// ServiceDown reports whether the userspace service is inside a crash/
// restart window at the (monotonically advancing) virtual time now.
func (j *Injector) ServiceDown(now int64) bool {
	if j == nil || j.prof.OutagePeriod <= 0 || j.prof.OutageDuration <= 0 {
		return false
	}
	for now >= j.outageEnd {
		j.outageOpen = false
		j.scheduleOutage(j.outageEnd)
	}
	if now < j.outageStart {
		return false
	}
	if !j.outageOpen {
		j.outageOpen = true
		j.met.outages.Inc()
		j.sc.Span("fault", "service_outage", j.outageStart, j.prof.OutageDuration)
	}
	return true
}

// scheduleOutage places the next outage window after the given time, with a
// jittered gap in [P/2, 3P/2).
func (j *Injector) scheduleOutage(after int64) {
	if j.prof.OutagePeriod <= 0 || j.prof.OutageDuration <= 0 {
		j.outageStart = math.MaxInt64
		j.outageEnd = math.MaxInt64
		return
	}
	gap := j.prof.OutagePeriod/2 + j.svc.intn(j.prof.OutagePeriod)
	j.outageStart = after + gap
	j.outageEnd = j.outageStart + j.prof.OutageDuration
}

// StartCPUSpikes schedules recurring CPU overload bursts on clk: roughly
// every SpikePeriod (jittered ±50%), charge is invoked with SpikeWork of
// extra work. charge typically closes over a ksim.CPU and charges softirq
// time. StopCPUSpikes cancels after the pending burst.
func (j *Injector) StartCPUSpikes(clk Clock, charge func(work int64)) {
	if j == nil || j.prof.SpikePeriod <= 0 || j.prof.SpikeWork <= 0 || j.spiking {
		return
	}
	j.spiking = true
	j.scheduleSpike(clk, charge)
}

// StopCPUSpikes halts the spike generator (experiment teardown).
func (j *Injector) StopCPUSpikes() {
	if j != nil {
		j.spiking = false
	}
}

func (j *Injector) scheduleSpike(clk Clock, charge func(work int64)) {
	gap := j.prof.SpikePeriod/2 + j.cpu.intn(j.prof.SpikePeriod)
	clk.After(gap, func() {
		if !j.spiking {
			return
		}
		j.met.spikes.Inc()
		j.sc.Event1("fault", "cpu_spike", clk.Now(), "ns", j.prof.SpikeWork)
		charge(j.prof.SpikeWork)
		j.scheduleSpike(clk, charge)
	})
}
