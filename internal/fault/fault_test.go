package fault

import (
	"math"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/obs"
)

func TestByName(t *testing.T) {
	for name, want := range map[string]Profile{
		"":         None(),
		"none":     None(),
		"netlink":  Netlink(),
		"slowpath": SlowPath(),
		"chaos":    Chaos(),
	} {
		got, ok := ByName(name)
		if !ok || got != want {
			t.Errorf("ByName(%q) = %+v, %v", name, got, ok)
		}
	}
	if _, ok := ByName("earthquake"); ok {
		t.Error("unknown profile name must be rejected")
	}
	if None().Active() {
		t.Error("the zero profile must be inactive")
	}
	for _, p := range []Profile{Netlink(), SlowPath(), Chaos()} {
		if !p.Active() {
			t.Errorf("%+v must be active", p)
		}
	}
}

// TestNilInjector: a nil *Injector injects nothing and never panics, so
// wiring does not need nil guards.
func TestNilInjector(t *testing.T) {
	var j *Injector
	if j.DropMessage(0) || j.CorruptMessage(0, []float64{1}) {
		t.Error("nil injector must not inject")
	}
	if j.DeliveryDelay(0) != 0 || j.BatchPermutation(0, 8) != nil {
		t.Error("nil injector must not delay or reorder")
	}
	if _, fail := j.FailSnapshot(0); fail {
		t.Error("nil injector must not fail snapshots")
	}
	if j.ServiceDown(0) {
		t.Error("nil injector must not take the service down")
	}
	j.StartCPUSpikes(nil, nil) // must not dereference clk
	j.StopCPUSpikes()
	if j.Stats().Total() != 0 || j.Profile().Active() {
		t.Error("nil injector must report zero state")
	}
}

// TestDeterminism: two same-seed injectors make identical decision
// sequences; a different seed diverges.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) (drops []bool, delays []int64, perms [][]int, outages []bool) {
		j := New(Chaos(), seed, obs.Scope{})
		now := int64(0)
		for i := 0; i < 200; i++ {
			now += 10 * millisecond
			drops = append(drops, j.DropMessage(now))
			delays = append(delays, j.DeliveryDelay(now))
			perms = append(perms, j.BatchPermutation(now, 5))
			outages = append(outages, j.ServiceDown(now))
		}
		return
	}
	d1, l1, p1, o1 := run(42)
	d2, l2, p2, o2 := run(42)
	for i := range d1 {
		if d1[i] != d2[i] || l1[i] != l2[i] || o1[i] != o2[i] {
			t.Fatalf("same-seed decision %d diverged", i)
		}
		if len(p1[i]) != len(p2[i]) {
			t.Fatalf("same-seed permutation %d diverged", i)
		}
		for k := range p1[i] {
			if p1[i][k] != p2[i][k] {
				t.Fatalf("same-seed permutation %d diverged at %d", i, k)
			}
		}
	}
	d3, l3, _, o3 := run(43)
	same := true
	for i := range d1 {
		if d1[i] != d3[i] || l1[i] != l3[i] || o1[i] != o3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds must diverge")
	}
}

// TestProbabilityExtremes: p=1 always fires, p=0 never does, and the
// per-kind counters track exactly.
func TestProbabilityExtremes(t *testing.T) {
	always := New(Profile{MsgDropP: 1, MsgCorruptP: 1, BatchDelayP: 1,
		BatchDelayMax: millisecond, BatchReorderP: 1, BuildFailP: 1}, 1, obs.Scope{})
	for i := int64(0); i < 10; i++ {
		if !always.DropMessage(i) {
			t.Fatal("MsgDropP=1 must always drop")
		}
		data := []float64{3, 1, 2, 3}
		if !always.CorruptMessage(i, data) {
			t.Fatal("MsgCorruptP=1 must always corrupt")
		}
		valid := data[0] == 3 && !math.IsNaN(data[1]) && !math.IsNaN(data[2]) && !math.IsNaN(data[3])
		if valid {
			t.Fatalf("corruption left a valid payload: %v", data)
		}
		if always.DeliveryDelay(i) <= 0 {
			t.Fatal("BatchDelayP=1 must always delay")
		}
		if always.BatchPermutation(i, 4) == nil {
			t.Fatal("BatchReorderP=1 must always reorder")
		}
		if reason, fail := always.FailSnapshot(i); !fail || reason != "build" {
			t.Fatalf("BuildFailP=1 must always fail with build, got %q %v", reason, fail)
		}
	}
	st := always.Stats()
	if st.Drops != 10 || st.Corrupts != 10 || st.Delays != 10 || st.Reorders != 10 || st.BuildFails != 10 {
		t.Errorf("counters must track every injection: %+v", st)
	}

	never := New(Profile{OutagePeriod: second, OutageDuration: millisecond}, 1, obs.Scope{})
	for i := int64(0); i < 100; i++ {
		if never.DropMessage(i) || never.DeliveryDelay(i) != 0 || never.BatchPermutation(i, 4) != nil {
			t.Fatal("zero-probability faults must never fire")
		}
		if _, fail := never.FailSnapshot(i); fail {
			t.Fatal("zero-probability snapshot failure fired")
		}
	}
}

// TestOutageWindows: outages appear with jittered gaps in [P/2, 3P/2), last
// OutageDuration, and each window is counted once.
func TestOutageWindows(t *testing.T) {
	p := Profile{OutagePeriod: second, OutageDuration: 100 * millisecond}
	j := New(p, 9, obs.Scope{})
	var downNs, transitions int64
	wasDown := false
	step := millisecond
	horizon := 20 * second
	for now := int64(0); now < horizon; now += step {
		down := j.ServiceDown(now)
		if down {
			downNs += step
		}
		if down && !wasDown {
			transitions++
		}
		wasDown = down
	}
	st := j.Stats()
	if st.Outages == 0 {
		t.Fatal("no outages over 20 virtual seconds")
	}
	if st.Outages != transitions {
		t.Errorf("outage counter %d != observed windows %d", st.Outages, transitions)
	}
	// Gaps are jittered in [P/2, 3P/2) plus the 100 ms window, so the count
	// over 20 s must land between ~12 and ~20 windows.
	if st.Outages < 8 || st.Outages > 25 {
		t.Errorf("outage count %d implausible for P=1s over 20s", st.Outages)
	}
	// Total downtime ≈ windows × duration (sampling quantizes by one step).
	wantDown := st.Outages * p.OutageDuration
	if downNs < wantDown-st.Outages*step || downNs > wantDown+st.Outages*step {
		t.Errorf("downtime %dns, want ≈ %dns", downNs, wantDown)
	}
}

// fakeClock is a minimal Clock for spike tests: events run when advanced.
type fakeClock struct {
	now int64
	q   []fakeEv
}

type fakeEv struct {
	at int64
	fn func()
}

func (c *fakeClock) Now() int64 { return c.now }
func (c *fakeClock) After(d int64, fn func()) {
	c.q = append(c.q, fakeEv{c.now + d, fn})
}

func (c *fakeClock) runUntil(t int64) {
	for {
		best := -1
		for i, e := range c.q {
			if e.at <= t && (best < 0 || e.at < c.q[best].at) {
				best = i
			}
		}
		if best < 0 {
			c.now = t
			return
		}
		e := c.q[best]
		c.q = append(c.q[:best], c.q[best+1:]...)
		c.now = e.at
		e.fn()
	}
}

func TestCPUSpikes(t *testing.T) {
	p := Profile{SpikePeriod: 100 * millisecond, SpikeWork: millisecond}
	j := New(p, 5, obs.Scope{})
	clk := &fakeClock{}
	var charged int64
	j.StartCPUSpikes(clk, func(work int64) { charged += work })
	j.StartCPUSpikes(clk, func(work int64) { charged += work }) // idempotent
	clk.runUntil(2 * second)
	st := j.Stats()
	if st.Spikes == 0 {
		t.Fatal("no spikes over 2 virtual seconds")
	}
	// Jittered gaps in [P/2, 3P/2) → roughly 2s/0.1s = 20 spikes, wide band.
	if st.Spikes < 10 || st.Spikes > 40 {
		t.Errorf("spike count %d implausible for P=100ms over 2s", st.Spikes)
	}
	if charged != st.Spikes*p.SpikeWork {
		t.Errorf("charged %d, want %d (double StartCPUSpikes must not double-charge)",
			charged, st.Spikes*p.SpikeWork)
	}
	j.StopCPUSpikes()
	before := st.Spikes
	clk.runUntil(4 * second)
	if j.Stats().Spikes != before {
		t.Error("spikes must stop after StopCPUSpikes")
	}
}
