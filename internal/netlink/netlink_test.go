package netlink

import (
	"testing"

	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
)

func newTestChannel(deliver func([]Message)) (*netsim.Engine, *ksim.CPU, *Channel) {
	eng := netsim.NewEngine()
	cpu := ksim.NewCPU(eng, 4)
	ch := New(eng, cpu, ksim.DefaultCosts(), deliver)
	return eng, cpu, ch
}

func TestFlushDeliversBatch(t *testing.T) {
	var got []Message
	eng, _, ch := newTestChannel(func(b []Message) { got = b })
	ch.Push(Message{Kind: KindSample, Data: []float64{1, 2}})
	ch.Push(Message{Kind: KindSample, Data: []float64{3}})
	ch.Flush()
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(got))
	}
	if got[0].Data[0] != 1 || got[1].Data[0] != 3 {
		t.Error("batch order wrong")
	}
	if ch.Buffered() != 0 {
		t.Error("buffer must be empty after flush")
	}
}

func TestFlushChargesCPU(t *testing.T) {
	eng, cpu, ch := newTestChannel(func(b []Message) {})
	ch.Push(Message{Data: make([]float64, 10)})
	before := cpu.TotalBusy()
	ch.Flush()
	eng.Run()
	if cpu.BusyTime(ksim.SoftIRQ) == 0 {
		t.Error("flush must charge softirq time")
	}
	if cpu.BusyTime(ksim.Kernel) == 0 {
		t.Error("flush must charge kernel copy time")
	}
	if cpu.TotalBusy() <= before {
		t.Error("flush must consume CPU")
	}
}

func TestEmptyFlushIsFree(t *testing.T) {
	eng, cpu, ch := newTestChannel(func(b []Message) { t.Error("must not deliver empty batch") })
	ch.Flush()
	eng.Run()
	if cpu.TotalBusy() != 0 {
		t.Error("empty flush must be free")
	}
	if ch.Stats().Flushes != 0 {
		t.Error("empty flush must not count")
	}
}

func TestDeliveryIncursLatency(t *testing.T) {
	var at netsim.Time = -1
	eng, _, ch := newTestChannel(nil)
	costs := ksim.DefaultCosts()
	ch.deliver = func(b []Message) { at = eng.Now() }
	ch.Push(Message{Data: []float64{1}})
	ch.Flush()
	eng.Run()
	if at < costs.CrossSpaceLatency {
		t.Errorf("delivery at %d, want ≥ cross-space latency %d", at, costs.CrossSpaceLatency)
	}
}

func TestPeriodicBatching(t *testing.T) {
	var batches [][]Message
	eng, _, ch := newTestChannel(func(b []Message) { batches = append(batches, b) })
	// Producer: one sample every 10 ms.
	var produce func()
	n := 0
	produce = func() {
		if n >= 30 {
			ch.StopBatching()
			return
		}
		ch.Push(Message{Data: []float64{float64(n)}})
		n++
		eng.After(10*netsim.Millisecond, produce)
	}
	eng.After(0, produce)
	ch.StartBatching(100 * netsim.Millisecond) // the paper's T = 100 ms
	eng.RunUntil(400 * netsim.Millisecond)
	if len(batches) < 3 {
		t.Fatalf("got %d batches, want ≥ 3", len(batches))
	}
	// Each 100 ms batch should hold ~10 samples.
	if got := len(batches[0]); got < 8 || got > 12 {
		t.Errorf("first batch has %d samples, want ≈10", got)
	}
}

func TestStartBatchingValidation(t *testing.T) {
	_, _, ch := newTestChannel(func(b []Message) {})
	defer func() {
		if recover() == nil {
			t.Error("non-positive interval must panic")
		}
	}()
	ch.StartBatching(0)
}

func TestBufferBoundDropsOldest(t *testing.T) {
	var got []Message
	eng, _, ch := newTestChannel(func(b []Message) { got = b })
	ch.MaxBuffer = 3
	for i := 0; i < 5; i++ {
		ch.Push(Message{Data: []float64{float64(i)}})
	}
	if ch.Stats().Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", ch.Stats().Dropped)
	}
	ch.Flush()
	eng.Run()
	if len(got) != 3 || got[0].Data[0] != 2 {
		t.Errorf("buffer must keep newest; got %v", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, _, ch := newTestChannel(func(b []Message) {})
	ch.Push(Message{Data: make([]float64, 4)}) // 16 + 32 bytes
	ch.Push(Message{Data: make([]float64, 1)}) // 16 + 8 bytes
	ch.Flush()
	eng.Run()
	s := ch.Stats()
	if s.Flushes != 1 || s.Messages != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.Bytes != 72 {
		t.Errorf("Bytes = %d, want 72", s.Bytes)
	}
}

func TestSendToKernel(t *testing.T) {
	eng, cpu, ch := newTestChannel(func(b []Message) {})
	ran := false
	ch.SendToKernel(1024, func() { ran = true })
	eng.Run()
	if !ran {
		t.Fatal("kernel callback did not run")
	}
	if cpu.BusyTime(ksim.SoftIRQ) == 0 || cpu.BusyTime(ksim.Kernel) == 0 {
		t.Error("downcall must charge CPU")
	}
	s := ch.Stats()
	if s.Downcalls != 1 || s.DownBytes != 1024 {
		t.Errorf("stats = %+v", s)
	}
	// nil callback must not panic.
	ch.SendToKernel(1, nil)
	eng.Run()
}

func TestSmallTBeatsLargeTOnOverheadPerSample(t *testing.T) {
	// Batching economics: flushing every 1 ms costs far more CPU per sample
	// than every 100 ms at the same production rate — the left side of
	// Figure 14.
	run := func(interval netsim.Time) float64 {
		eng, cpu, ch := newTestChannel(func(b []Message) {})
		var produce func()
		n := 0
		produce = func() {
			if n >= 1000 {
				return
			}
			ch.Push(Message{Data: []float64{1}})
			n++
			eng.After(netsim.Millisecond, produce)
		}
		eng.After(0, produce)
		ch.StartBatching(interval)
		eng.RunUntil(netsim.Second)
		ch.StopBatching()
		return float64(cpu.BusyTime(ksim.SoftIRQ))
	}
	fast := run(netsim.Millisecond)
	slow := run(100 * netsim.Millisecond)
	if fast < slow*10 {
		t.Errorf("1ms flushing softirq=%v should be ≫ 100ms flushing softirq=%v", fast, slow)
	}
}

func BenchmarkPushFlush(b *testing.B) {
	eng, _, ch := newTestChannel(func(batch []Message) {})
	msg := Message{Data: make([]float64, 8)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ch.Push(msg)
		if i%64 == 63 {
			ch.Flush()
			eng.Run()
		}
	}
}
