// Package netlink simulates the kernel↔userspace channel LiteFlow uses for
// its slow path (paper §4.1–4.2): training data accumulates in a kernel-side
// buffer and is flushed to the userspace service in batches every T, and the
// userspace service pushes snapshot installs and fidelity-evaluation queries
// back down.
//
// Costs are charged to the host's ksim CPU: each flush pays one cross-space
// transition (softirq) plus per-message and per-byte copy costs (kernel
// time). This makes the batching economics of Figure 14 measurable: small T
// behaves like the CCP baseline's per-update switching; large T starves the
// tuner of fresh data.
package netlink

import (
	"errors"

	"github.com/liteflow-sim/liteflow/internal/fault"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/obs"
	"github.com/liteflow-sim/liteflow/internal/opt"
)

// ErrChannelClosed is returned by operations on a channel after Close. Test
// with errors.Is.
var ErrChannelClosed = errors.New("netlink: channel closed")

// MsgKind distinguishes the two record types the paper sends over netlink.
type MsgKind int

// Message kinds (paper §4.2: "two types of messages are transferred").
const (
	// KindSample carries newly collected training data for online
	// adaptation.
	KindSample MsgKind = iota
	// KindFidelity carries snapshot outputs for necessity evaluation.
	KindFidelity
)

// Message is one record crossing the boundary.
type Message struct {
	Kind MsgKind
	Data []float64   // feature/label payload (already dequantized)
	At   netsim.Time // kernel-side collection time
}

// wireBytes estimates the message's on-wire size: nlmsghdr-ish overhead plus
// 8 bytes per value.
func (m Message) wireBytes() int { return 16 + 8*len(m.Data) }

// Stats counts channel activity for experiment reporting. It is a snapshot
// view over the channel's registry-backed counters.
type Stats struct {
	Flushes     int64
	Messages    int64
	Bytes       int64
	Dropped     int64 // messages discarded by the bounded kernel buffer
	Downcalls   int64 // userspace→kernel deliveries
	DownBytes   int64
	DownAborted int64 // downcalls whose completion was voided by a mid-flight Close
	Undelivered int64 // batched messages that fired with no delivery callback
}

// chanMetrics holds the channel's registry-backed instruments.
type chanMetrics struct {
	flushes     *obs.Counter
	messages    *obs.Counter
	bytes       *obs.Counter
	dropped     *obs.Counter
	downcalls   *obs.Counter
	downBytes   *obs.Counter
	downAborted *obs.Counter
	undelivered *obs.Counter
}

func newChanMetrics(sc obs.Scope) chanMetrics {
	return chanMetrics{
		flushes:     sc.Counter("liteflow_netlink_flushes_total", "kernel→userspace batch deliveries"),
		messages:    sc.Counter("liteflow_netlink_messages_total", "messages delivered to userspace"),
		bytes:       sc.Counter("liteflow_netlink_bytes_total", "wire bytes delivered to userspace"),
		dropped:     sc.Counter("liteflow_netlink_dropped_total", "messages displaced by the bounded kernel buffer"),
		downcalls:   sc.Counter("liteflow_netlink_downcalls_total", "userspace→kernel transfers"),
		downBytes:   sc.Counter("liteflow_netlink_down_bytes_total", "userspace→kernel payload bytes"),
		downAborted: sc.Counter("liteflow_netlink_downcalls_aborted_total", "downcall completions voided because the channel closed mid-flight"),
		undelivered: sc.Counter("liteflow_netlink_undelivered_total", "batched messages discarded because no delivery callback was installed"),
	}
}

// Channel is a simulated netlink socket pair bound to one host CPU.
type Channel struct {
	eng   *netsim.Engine
	cpu   *ksim.CPU
	costs ksim.Costs

	// MaxBuffer bounds the kernel-side accumulation buffer in messages;
	// overflow drops the oldest data first (the kernel cannot block the
	// datapath on a slow consumer). Zero means 4096.
	MaxBuffer int

	buf     []Message
	deliver func(batch []Message)

	inj    *fault.Injector
	closed bool

	sc  obs.Scope
	met chanMetrics

	ticking  bool
	interval netsim.Time
}

// NewChannel returns a channel delivering kernel batches to deliver. The
// callback runs in virtual time after the cross-space latency has elapsed;
// it may also be installed later with SetDeliver (batches that fire while no
// callback is installed are counted and discarded, never a panic).
// opt.WithScope exports channel metrics and batch-delivery trace events
// (omitted, telemetry is a no-op but counters still count); opt.WithFaults
// injects message drop/corruption and batch delay/reorder at flush time.
func NewChannel(eng *netsim.Engine, cpu *ksim.CPU, costs ksim.Costs, deliver func(batch []Message), options ...opt.Option) *Channel {
	o := opt.Resolve(options)
	c := &Channel{eng: eng, cpu: cpu, costs: costs, MaxBuffer: 4096, deliver: deliver,
		inj: o.Faults, sc: o.Scope}
	c.met = newChanMetrics(c.sc)
	return c
}

// New is the pre-options constructor.
//
// Deprecated: use NewChannel, which takes functional options (opt.WithScope,
// opt.WithFaults).
func New(eng *netsim.Engine, cpu *ksim.CPU, costs ksim.Costs, deliver func(batch []Message), sc ...obs.Scope) *Channel {
	var scope obs.Scope
	if len(sc) > 0 {
		scope = sc[0]
	}
	return NewChannel(eng, cpu, costs, deliver, opt.WithScope(scope))
}

// Stats returns a snapshot of the channel's counters.
func (c *Channel) Stats() Stats {
	return Stats{
		Flushes:     c.met.flushes.Value(),
		Messages:    c.met.messages.Value(),
		Bytes:       c.met.bytes.Value(),
		Dropped:     c.met.dropped.Value(),
		Downcalls:   c.met.downcalls.Value(),
		DownBytes:   c.met.downBytes.Value(),
		DownAborted: c.met.downAborted.Value(),
		Undelivered: c.met.undelivered.Value(),
	}
}

// SetDeliver replaces the kernel-batch delivery callback. The userspace
// service installs itself here after construction.
//
// Replacement is safe with respect to in-flight flushes: a batch whose
// cross-space latency is still elapsing is delivered to the callback
// installed at *delivery* time, not at flush time, and a batch that fires
// with no callback installed is counted in
// liteflow_netlink_undelivered_total and discarded rather than panicking.
// Like the rest of the simulator, the channel is single-goroutine: SetDeliver
// must be called from simulation context (a test asserts this contract).
func (c *Channel) SetDeliver(fn func(batch []Message)) { c.deliver = fn }

// Close shuts the channel down: pending buffered messages are discarded,
// periodic batching stops, and subsequent Push/Flush/SendToKernel calls are
// rejected. Close is idempotent.
func (c *Channel) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.ticking = false
	c.met.dropped.Add(int64(len(c.buf)))
	c.buf = nil
	c.sc.Event("netlink", "close", c.eng.Now())
}

// Closed reports whether Close has been called.
func (c *Channel) Closed() bool { return c.closed }

// Buffered returns the number of kernel-side messages awaiting flush.
func (c *Channel) Buffered() int { return len(c.buf) }

// Push appends a message to the kernel-side batch buffer. Buffer appends are
// in-kernel memory writes: free in this model (their cost is subsumed by the
// per-packet processing charge already paid by the datapath).
func (c *Channel) Push(m Message) {
	if c.closed {
		c.met.dropped.Inc()
		return
	}
	max := c.MaxBuffer
	if max <= 0 {
		max = 4096
	}
	if len(c.buf) >= max {
		// Drop oldest: adaptation prefers fresh signal.
		copy(c.buf, c.buf[1:])
		c.buf = c.buf[:len(c.buf)-1]
		c.met.dropped.Inc()
		c.sc.Event("netlink", "drop", c.eng.Now())
	}
	c.buf = append(c.buf, m)
}

// Flush sends the accumulated batch to userspace now, charging the CPU for
// one cross-space transition plus copy costs, and invoking the delivery
// callback after the transition latency. An empty buffer flush is free.
// With a fault injector attached, per-message drop/corruption and per-batch
// reorder/extra-delay faults apply here — after the kernel has paid the
// flush costs, like a lossy boundary would behave.
func (c *Channel) Flush() {
	if c.closed || len(c.buf) == 0 {
		return
	}
	batch := c.buf
	c.buf = nil
	now := c.eng.Now()

	if c.inj != nil {
		kept := batch[:0]
		for _, m := range batch {
			if c.inj.DropMessage(now) {
				continue
			}
			c.inj.CorruptMessage(now, m.Data)
			kept = append(kept, m)
		}
		batch = kept
		if perm := c.inj.BatchPermutation(now, len(batch)); perm != nil {
			shuffled := make([]Message, len(batch))
			for i, p := range perm {
				shuffled[i] = batch[p]
			}
			batch = shuffled
		}
		if len(batch) == 0 {
			return // whole batch lost; the flush costs below were never paid
		}
	}

	bytes := 0
	for _, m := range batch {
		bytes += m.wireBytes()
	}
	c.met.flushes.Inc()
	c.met.messages.Add(int64(len(batch)))
	c.met.bytes.Add(int64(bytes))
	c.sc.Event2("netlink", "flush", now, "msgs", int64(len(batch)), "bytes", int64(bytes))

	// One softirq-visible wakeup per flush; copy work scales with volume.
	c.cpu.Charge(ksim.SoftIRQ, c.costs.CrossSpace)
	c.cpu.Charge(ksim.Kernel, c.costs.NetlinkPerMsg+netsim.Time(bytes)*c.costs.NetlinkPerByte)

	delay := c.costs.CrossSpaceLatency + c.cpu.QueueDelay()
	if c.inj != nil {
		delay += netsim.Time(c.inj.DeliveryDelay(now))
	}
	// The whole kernel→user flight as a span: flush to delivery, including
	// queueing and injected delay.
	c.sc.Span1("netlink", "flush_flight", now, int64(delay), "msgs", int64(len(batch)))
	c.eng.After(delay, func() {
		// Resolve the callback at delivery time so SetDeliver replacements
		// apply to in-flight batches, and a missing callback degrades to a
		// counted discard instead of a panic.
		if fn := c.deliver; fn != nil {
			fn(batch)
			return
		}
		c.met.undelivered.Add(int64(len(batch)))
		c.sc.Event1("netlink", "undelivered", c.eng.Now(), "msgs", int64(len(batch)))
	})
}

// StartBatching schedules periodic flushes every interval — the paper's
// batch data delivery interval T. Calling it again re-arms with the new
// interval; StopBatching cancels.
func (c *Channel) StartBatching(interval netsim.Time) {
	if interval <= 0 {
		panic("netlink: batch interval must be positive")
	}
	if c.closed {
		return
	}
	c.interval = interval
	if c.ticking {
		return
	}
	c.ticking = true
	c.tick()
}

// StopBatching stops the periodic flushing after the current tick.
func (c *Channel) StopBatching() { c.ticking = false }

func (c *Channel) tick() {
	if !c.ticking {
		return
	}
	c.eng.After(c.interval, func() {
		if !c.ticking {
			return
		}
		c.Flush()
		c.tick()
	})
}

// SendToKernel models a userspace→kernel transfer of payloadBytes (snapshot
// parameters, evaluation queries), invoking done in the kernel after costs
// and latency. The transition is softirq work; the copy is kernel work. It
// returns ErrChannelClosed (and never invokes done) after Close.
func (c *Channel) SendToKernel(payloadBytes int, done func()) error {
	if c.closed {
		return ErrChannelClosed
	}
	c.met.downcalls.Inc()
	c.met.downBytes.Add(int64(payloadBytes))
	c.sc.Event1("netlink", "downcall", c.eng.Now(), "bytes", int64(payloadBytes))
	c.cpu.Charge(ksim.SoftIRQ, c.costs.CrossSpace)
	c.cpu.Charge(ksim.Kernel, c.costs.NetlinkPerMsg+netsim.Time(payloadBytes)*c.costs.NetlinkPerByte)
	delay := c.costs.CrossSpaceLatency + c.cpu.QueueDelay()
	// The user→kernel flight as a span: downcall to kernel-side completion.
	c.sc.Span1("netlink", "downcall_flight", c.eng.Now(), int64(delay), "bytes", int64(payloadBytes))
	c.eng.After(delay, func() {
		if c.closed {
			// Close raced the downcall mid-flight: the kernel side is gone,
			// so the completion must not run against it. Counted so callers
			// can see the loss (the doc contract is "never invokes done
			// after Close").
			c.met.downAborted.Inc()
			c.sc.Event("netlink", "downcall_aborted", c.eng.Now())
			return
		}
		if done != nil {
			done()
		}
	})
	return nil
}
