// Package netlink simulates the kernel↔userspace channel LiteFlow uses for
// its slow path (paper §4.1–4.2): training data accumulates in a kernel-side
// buffer and is flushed to the userspace service in batches every T, and the
// userspace service pushes snapshot installs and fidelity-evaluation queries
// back down.
//
// Costs are charged to the host's ksim CPU: each flush pays one cross-space
// transition (softirq) plus per-message and per-byte copy costs (kernel
// time). This makes the batching economics of Figure 14 measurable: small T
// behaves like the CCP baseline's per-update switching; large T starves the
// tuner of fresh data.
package netlink

import (
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/obs"
)

// MsgKind distinguishes the two record types the paper sends over netlink.
type MsgKind int

// Message kinds (paper §4.2: "two types of messages are transferred").
const (
	// KindSample carries newly collected training data for online
	// adaptation.
	KindSample MsgKind = iota
	// KindFidelity carries snapshot outputs for necessity evaluation.
	KindFidelity
)

// Message is one record crossing the boundary.
type Message struct {
	Kind MsgKind
	Data []float64   // feature/label payload (already dequantized)
	At   netsim.Time // kernel-side collection time
}

// wireBytes estimates the message's on-wire size: nlmsghdr-ish overhead plus
// 8 bytes per value.
func (m Message) wireBytes() int { return 16 + 8*len(m.Data) }

// Stats counts channel activity for experiment reporting. It is a snapshot
// view over the channel's registry-backed counters.
type Stats struct {
	Flushes   int64
	Messages  int64
	Bytes     int64
	Dropped   int64 // messages discarded by the bounded kernel buffer
	Downcalls int64 // userspace→kernel deliveries
	DownBytes int64
}

// chanMetrics holds the channel's registry-backed instruments.
type chanMetrics struct {
	flushes   *obs.Counter
	messages  *obs.Counter
	bytes     *obs.Counter
	dropped   *obs.Counter
	downcalls *obs.Counter
	downBytes *obs.Counter
}

func newChanMetrics(sc obs.Scope) chanMetrics {
	return chanMetrics{
		flushes:   sc.Counter("liteflow_netlink_flushes_total", "kernel→userspace batch deliveries"),
		messages:  sc.Counter("liteflow_netlink_messages_total", "messages delivered to userspace"),
		bytes:     sc.Counter("liteflow_netlink_bytes_total", "wire bytes delivered to userspace"),
		dropped:   sc.Counter("liteflow_netlink_dropped_total", "messages displaced by the bounded kernel buffer"),
		downcalls: sc.Counter("liteflow_netlink_downcalls_total", "userspace→kernel transfers"),
		downBytes: sc.Counter("liteflow_netlink_down_bytes_total", "userspace→kernel payload bytes"),
	}
}

// Channel is a simulated netlink socket pair bound to one host CPU.
type Channel struct {
	eng   *netsim.Engine
	cpu   *ksim.CPU
	costs ksim.Costs

	// MaxBuffer bounds the kernel-side accumulation buffer in messages;
	// overflow drops the oldest data first (the kernel cannot block the
	// datapath on a slow consumer). Zero means 4096.
	MaxBuffer int

	buf     []Message
	deliver func(batch []Message)

	sc  obs.Scope
	met chanMetrics

	ticking  bool
	interval netsim.Time
}

// New returns a channel delivering kernel batches to deliver. The callback
// runs in virtual time after the cross-space latency has elapsed. An
// optional obs.Scope exports channel metrics and batch-delivery trace
// events; omitted, telemetry is a no-op (counters still count).
func New(eng *netsim.Engine, cpu *ksim.CPU, costs ksim.Costs, deliver func(batch []Message), sc ...obs.Scope) *Channel {
	c := &Channel{eng: eng, cpu: cpu, costs: costs, MaxBuffer: 4096, deliver: deliver}
	if len(sc) > 0 {
		c.sc = sc[0]
	}
	c.met = newChanMetrics(c.sc)
	return c
}

// Stats returns a snapshot of the channel's counters.
func (c *Channel) Stats() Stats {
	return Stats{
		Flushes:   c.met.flushes.Value(),
		Messages:  c.met.messages.Value(),
		Bytes:     c.met.bytes.Value(),
		Dropped:   c.met.dropped.Value(),
		Downcalls: c.met.downcalls.Value(),
		DownBytes: c.met.downBytes.Value(),
	}
}

// SetDeliver replaces the kernel-batch delivery callback. The userspace
// service installs itself here after construction.
func (c *Channel) SetDeliver(fn func(batch []Message)) { c.deliver = fn }

// Buffered returns the number of kernel-side messages awaiting flush.
func (c *Channel) Buffered() int { return len(c.buf) }

// Push appends a message to the kernel-side batch buffer. Buffer appends are
// in-kernel memory writes: free in this model (their cost is subsumed by the
// per-packet processing charge already paid by the datapath).
func (c *Channel) Push(m Message) {
	max := c.MaxBuffer
	if max <= 0 {
		max = 4096
	}
	if len(c.buf) >= max {
		// Drop oldest: adaptation prefers fresh signal.
		copy(c.buf, c.buf[1:])
		c.buf = c.buf[:len(c.buf)-1]
		c.met.dropped.Inc()
		c.sc.Event("netlink", "drop", c.eng.Now())
	}
	c.buf = append(c.buf, m)
}

// Flush sends the accumulated batch to userspace now, charging the CPU for
// one cross-space transition plus copy costs, and invoking the delivery
// callback after the transition latency. An empty buffer flush is free.
func (c *Channel) Flush() {
	if len(c.buf) == 0 {
		return
	}
	batch := c.buf
	c.buf = nil

	bytes := 0
	for _, m := range batch {
		bytes += m.wireBytes()
	}
	c.met.flushes.Inc()
	c.met.messages.Add(int64(len(batch)))
	c.met.bytes.Add(int64(bytes))
	c.sc.Event2("netlink", "flush", c.eng.Now(), "msgs", int64(len(batch)), "bytes", int64(bytes))

	// One softirq-visible wakeup per flush; copy work scales with volume.
	c.cpu.Charge(ksim.SoftIRQ, c.costs.CrossSpace)
	c.cpu.Charge(ksim.Kernel, c.costs.NetlinkPerMsg+netsim.Time(bytes)*c.costs.NetlinkPerByte)

	delay := c.costs.CrossSpaceLatency + c.cpu.QueueDelay()
	c.eng.After(delay, func() { c.deliver(batch) })
}

// StartBatching schedules periodic flushes every interval — the paper's
// batch data delivery interval T. Calling it again re-arms with the new
// interval; StopBatching cancels.
func (c *Channel) StartBatching(interval netsim.Time) {
	if interval <= 0 {
		panic("netlink: batch interval must be positive")
	}
	c.interval = interval
	if c.ticking {
		return
	}
	c.ticking = true
	c.tick()
}

// StopBatching stops the periodic flushing after the current tick.
func (c *Channel) StopBatching() { c.ticking = false }

func (c *Channel) tick() {
	if !c.ticking {
		return
	}
	c.eng.After(c.interval, func() {
		if !c.ticking {
			return
		}
		c.Flush()
		c.tick()
	})
}

// SendToKernel models a userspace→kernel transfer of payloadBytes (snapshot
// parameters, evaluation queries), invoking done in the kernel after costs
// and latency. The transition is softirq work; the copy is kernel work.
func (c *Channel) SendToKernel(payloadBytes int, done func()) {
	c.met.downcalls.Inc()
	c.met.downBytes.Add(int64(payloadBytes))
	c.sc.Event1("netlink", "downcall", c.eng.Now(), "bytes", int64(payloadBytes))
	c.cpu.Charge(ksim.SoftIRQ, c.costs.CrossSpace)
	c.cpu.Charge(ksim.Kernel, c.costs.NetlinkPerMsg+netsim.Time(payloadBytes)*c.costs.NetlinkPerByte)
	delay := c.costs.CrossSpaceLatency + c.cpu.QueueDelay()
	c.eng.After(delay, func() {
		if done != nil {
			done()
		}
	})
}
