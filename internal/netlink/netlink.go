// Package netlink simulates the kernel↔userspace channel LiteFlow uses for
// its slow path (paper §4.1–4.2): training data accumulates in a kernel-side
// buffer and is flushed to the userspace service in batches every T, and the
// userspace service pushes snapshot installs and fidelity-evaluation queries
// back down.
//
// Costs are charged to the host's ksim CPU: each flush pays one cross-space
// transition (softirq) plus per-message and per-byte copy costs (kernel
// time). This makes the batching economics of Figure 14 measurable: small T
// behaves like the CCP baseline's per-update switching; large T starves the
// tuner of fresh data.
package netlink

import (
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
)

// MsgKind distinguishes the two record types the paper sends over netlink.
type MsgKind int

// Message kinds (paper §4.2: "two types of messages are transferred").
const (
	// KindSample carries newly collected training data for online
	// adaptation.
	KindSample MsgKind = iota
	// KindFidelity carries snapshot outputs for necessity evaluation.
	KindFidelity
)

// Message is one record crossing the boundary.
type Message struct {
	Kind MsgKind
	Data []float64   // feature/label payload (already dequantized)
	At   netsim.Time // kernel-side collection time
}

// wireBytes estimates the message's on-wire size: nlmsghdr-ish overhead plus
// 8 bytes per value.
func (m Message) wireBytes() int { return 16 + 8*len(m.Data) }

// Stats counts channel activity for experiment reporting.
type Stats struct {
	Flushes   int64
	Messages  int64
	Bytes     int64
	Dropped   int64 // messages discarded by the bounded kernel buffer
	Downcalls int64 // userspace→kernel deliveries
	DownBytes int64
}

// Channel is a simulated netlink socket pair bound to one host CPU.
type Channel struct {
	eng   *netsim.Engine
	cpu   *ksim.CPU
	costs ksim.Costs

	// MaxBuffer bounds the kernel-side accumulation buffer in messages;
	// overflow drops the oldest data first (the kernel cannot block the
	// datapath on a slow consumer). Zero means 4096.
	MaxBuffer int

	buf     []Message
	deliver func(batch []Message)
	stats   Stats

	ticking  bool
	interval netsim.Time
}

// New returns a channel delivering kernel batches to deliver. The callback
// runs in virtual time after the cross-space latency has elapsed.
func New(eng *netsim.Engine, cpu *ksim.CPU, costs ksim.Costs, deliver func(batch []Message)) *Channel {
	return &Channel{eng: eng, cpu: cpu, costs: costs, MaxBuffer: 4096, deliver: deliver}
}

// Stats returns a snapshot of the channel's counters.
func (c *Channel) Stats() Stats { return c.stats }

// SetDeliver replaces the kernel-batch delivery callback. The userspace
// service installs itself here after construction.
func (c *Channel) SetDeliver(fn func(batch []Message)) { c.deliver = fn }

// Buffered returns the number of kernel-side messages awaiting flush.
func (c *Channel) Buffered() int { return len(c.buf) }

// Push appends a message to the kernel-side batch buffer. Buffer appends are
// in-kernel memory writes: free in this model (their cost is subsumed by the
// per-packet processing charge already paid by the datapath).
func (c *Channel) Push(m Message) {
	max := c.MaxBuffer
	if max <= 0 {
		max = 4096
	}
	if len(c.buf) >= max {
		// Drop oldest: adaptation prefers fresh signal.
		copy(c.buf, c.buf[1:])
		c.buf = c.buf[:len(c.buf)-1]
		c.stats.Dropped++
	}
	c.buf = append(c.buf, m)
}

// Flush sends the accumulated batch to userspace now, charging the CPU for
// one cross-space transition plus copy costs, and invoking the delivery
// callback after the transition latency. An empty buffer flush is free.
func (c *Channel) Flush() {
	if len(c.buf) == 0 {
		return
	}
	batch := c.buf
	c.buf = nil

	bytes := 0
	for _, m := range batch {
		bytes += m.wireBytes()
	}
	c.stats.Flushes++
	c.stats.Messages += int64(len(batch))
	c.stats.Bytes += int64(bytes)

	// One softirq-visible wakeup per flush; copy work scales with volume.
	c.cpu.Charge(ksim.SoftIRQ, c.costs.CrossSpace)
	c.cpu.Charge(ksim.Kernel, c.costs.NetlinkPerMsg+netsim.Time(bytes)*c.costs.NetlinkPerByte)

	delay := c.costs.CrossSpaceLatency + c.cpu.QueueDelay()
	c.eng.After(delay, func() { c.deliver(batch) })
}

// StartBatching schedules periodic flushes every interval — the paper's
// batch data delivery interval T. Calling it again re-arms with the new
// interval; StopBatching cancels.
func (c *Channel) StartBatching(interval netsim.Time) {
	if interval <= 0 {
		panic("netlink: batch interval must be positive")
	}
	c.interval = interval
	if c.ticking {
		return
	}
	c.ticking = true
	c.tick()
}

// StopBatching stops the periodic flushing after the current tick.
func (c *Channel) StopBatching() { c.ticking = false }

func (c *Channel) tick() {
	if !c.ticking {
		return
	}
	c.eng.After(c.interval, func() {
		if !c.ticking {
			return
		}
		c.Flush()
		c.tick()
	})
}

// SendToKernel models a userspace→kernel transfer of payloadBytes (snapshot
// parameters, evaluation queries), invoking done in the kernel after costs
// and latency. The transition is softirq work; the copy is kernel work.
func (c *Channel) SendToKernel(payloadBytes int, done func()) {
	c.stats.Downcalls++
	c.stats.DownBytes += int64(payloadBytes)
	c.cpu.Charge(ksim.SoftIRQ, c.costs.CrossSpace)
	c.cpu.Charge(ksim.Kernel, c.costs.NetlinkPerMsg+netsim.Time(payloadBytes)*c.costs.NetlinkPerByte)
	delay := c.costs.CrossSpaceLatency + c.cpu.QueueDelay()
	c.eng.After(delay, func() {
		if done != nil {
			done()
		}
	})
}
