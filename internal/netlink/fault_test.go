package netlink

import (
	"errors"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/fault"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/obs"
	"github.com/liteflow-sim/liteflow/internal/opt"
)

// TestSetDeliverReplacementAppliesToInFlightBatches pins the delivery-callback
// contract: a batch whose cross-space latency is still elapsing goes to the
// callback installed at delivery time, so swapping the handler mid-flight
// (as NewSlowPath does when it installs itself after construction) never
// delivers to a stale callback.
func TestSetDeliverReplacementAppliesToInFlightBatches(t *testing.T) {
	eng := netsim.NewEngine()
	cpu := ksim.NewCPU(eng, 4)
	oldCalls, newCalls := 0, 0
	ch := NewChannel(eng, cpu, ksim.DefaultCosts(), func([]Message) { oldCalls++ })
	ch.Push(Message{Data: []float64{1}})
	ch.Flush() // delivery now scheduled after cross-space latency
	ch.SetDeliver(func([]Message) { newCalls++ })
	eng.Run()
	if oldCalls != 0 || newCalls != 1 {
		t.Errorf("in-flight batch went to old callback (old=%d new=%d), want the replacement",
			oldCalls, newCalls)
	}
}

// TestNilDeliverIsCountedNotPanic: a batch firing with no callback installed
// is a counted discard (liteflow_netlink_undelivered_total), never a panic.
func TestNilDeliverIsCountedNotPanic(t *testing.T) {
	eng := netsim.NewEngine()
	cpu := ksim.NewCPU(eng, 4)
	ch := NewChannel(eng, cpu, ksim.DefaultCosts(), nil)
	ch.Push(Message{Data: []float64{1}})
	ch.Push(Message{Data: []float64{2}})
	ch.Flush()
	eng.Run()
	if got := ch.Stats().Undelivered; got != 2 {
		t.Errorf("Undelivered = %d, want 2", got)
	}
}

func TestCloseSemantics(t *testing.T) {
	eng := netsim.NewEngine()
	cpu := ksim.NewCPU(eng, 4)
	delivered := 0
	ch := NewChannel(eng, cpu, ksim.DefaultCosts(), func([]Message) { delivered++ })
	ch.Push(Message{Data: []float64{1}})
	ch.Close()
	ch.Close() // idempotent
	if !ch.Closed() {
		t.Fatal("Closed() must report true after Close")
	}
	if ch.Buffered() != 0 {
		t.Error("Close must discard buffered messages")
	}
	if ch.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d, want the buffered message counted", ch.Stats().Dropped)
	}
	ch.Push(Message{Data: []float64{2}}) // rejected, counted
	if ch.Stats().Dropped != 2 {
		t.Errorf("post-close Push must count as dropped, got %d", ch.Stats().Dropped)
	}
	ch.Flush()
	ch.StartBatching(netsim.Millisecond)
	err := ch.SendToKernel(8, func() { t.Error("done must not run on a closed channel") })
	if !errors.Is(err, ErrChannelClosed) {
		t.Errorf("SendToKernel after Close = %v, want ErrChannelClosed", err)
	}
	eng.Run()
	if delivered != 0 {
		t.Error("closed channel must not deliver")
	}
}

// TestFlushFaults: with a drop-everything injector the whole batch is lost
// before the kernel pays flush costs; with corruption the payloads mutate
// but still arrive.
func TestFlushFaults(t *testing.T) {
	eng := netsim.NewEngine()
	cpu := ksim.NewCPU(eng, 4)
	dropAll := fault.New(fault.Profile{MsgDropP: 1}, 1, obs.Scope{})
	delivered := 0
	ch := NewChannel(eng, cpu, ksim.DefaultCosts(), func(b []Message) { delivered += len(b) },
		opt.WithFaults(dropAll))
	ch.Push(Message{Data: []float64{1}})
	ch.Push(Message{Data: []float64{2}})
	ch.Flush()
	eng.Run()
	if delivered != 0 {
		t.Errorf("drop-all injector delivered %d messages", delivered)
	}
	if cpu.TotalBusy() != 0 {
		t.Error("a fully dropped batch must not charge flush costs")
	}
	if ch.Stats().Flushes != 0 {
		t.Error("a fully dropped batch must not count as a flush")
	}

	corrupt := fault.New(fault.Profile{MsgCorruptP: 1}, 1, obs.Scope{})
	var got []Message
	ch2 := NewChannel(eng, cpu, ksim.DefaultCosts(), func(b []Message) { got = b },
		opt.WithFaults(corrupt))
	ch2.Push(Message{Data: []float64{2, 7, 7}})
	ch2.Flush()
	eng.Run()
	if len(got) != 1 {
		t.Fatalf("corrupted batch must still deliver, got %d messages", len(got))
	}
	if corrupt.Stats().Corrupts != 1 {
		t.Errorf("Corrupts = %d, want 1", corrupt.Stats().Corrupts)
	}
}
