package main

import (
	"strings"
	"testing"
)

func TestRunGeneratesValidModule(t *testing.T) {
	spec := `{"name":"aurora","sizes":[30,32,16,1],
		"activations":["tanh","tanh","tanh"],"seed":1,"outputScale":1000}`
	var out strings.Builder
	if err := run(strings.NewReader(spec), &out, false); err != nil {
		t.Fatal(err)
	}
	src := out.String()
	for _, want := range []string{"package snapshot", "Infer_aurora", "lut_0"} {
		if !strings.Contains(src, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunWithRuntime(t *testing.T) {
	spec := `{"sizes":[2,2],"activations":["linear"],"seed":1}`
	var out strings.Builder
	if err := run(strings.NewReader(spec), &out, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "registerModel") {
		t.Error("runtime support source missing")
	}
	// Default name applies.
	if !strings.Contains(out.String(), "Infer_model") {
		t.Error("default model name missing")
	}
}

func TestRunWithExplicitWeights(t *testing.T) {
	spec := `{"name":"w","sizes":[2,1],"activations":["linear"],
		"weights":[[[1.0, -1.0]]],"biases":[[0.5]]}`
	var out strings.Builder
	if err := run(strings.NewReader(spec), &out, false); err != nil {
		t.Fatal(err)
	}
	// Weight 1.0 at the default scale 4096 must appear inlined.
	if !strings.Contains(out.String(), "input[0]*4096") {
		t.Error("explicit weight not inlined")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := []string{
		`not json`,
		`{"sizes":[2,1],"activations":["nope"]}`,
		`{"sizes":[2,1],"activations":["linear"],"weights":[[[1]],[[2]]]}`,
	}
	for _, c := range cases {
		var out strings.Builder
		if err := run(strings.NewReader(c), &out, false); err == nil {
			t.Errorf("spec %q must be rejected", c)
		}
	}
}
