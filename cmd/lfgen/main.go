// Command lfgen generates a kernel-snapshot source module from a neural
// network description — the analog of LiteFlow's snapshot generation
// pipeline (quantization + layer-wise code translation + compile check,
// paper §3.1), with the GCC/insmod step replaced by Go source emission and a
// parser/type validation.
//
// The network is described as JSON on stdin (or -in file):
//
//	{
//	  "name": "aurora",
//	  "sizes": [30, 32, 16, 1],
//	  "activations": ["tanh", "tanh", "tanh"],
//	  "seed": 1,
//	  "outputScale": 1000
//	}
//
// Weights are initialized deterministically from the seed; pass "weights"
// and "biases" arrays to supply trained parameters instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/quant"
)

type spec struct {
	Name        string        `json:"name"`
	Sizes       []int         `json:"sizes"`
	Activations []string      `json:"activations"`
	Seed        int64         `json:"seed"`
	OutputScale int64         `json:"outputScale"`
	Weights     [][][]float64 `json:"weights"` // [layer][out][in], optional
	Biases      [][]float64   `json:"biases"`  // [layer][out], optional
}

func parseAct(s string) (nn.Activation, error) {
	switch s {
	case "linear":
		return nn.Linear, nil
	case "relu":
		return nn.ReLU, nil
	case "tanh":
		return nn.Tanh, nil
	case "sigmoid":
		return nn.Sigmoid, nil
	}
	return 0, fmt.Errorf("unknown activation %q", s)
}

func run(in io.Reader, out io.Writer, emitRuntime bool) error {
	var sp spec
	if err := json.NewDecoder(in).Decode(&sp); err != nil {
		return fmt.Errorf("parse spec: %w", err)
	}
	if sp.Name == "" {
		sp.Name = "model"
	}
	acts := make([]nn.Activation, 0, len(sp.Activations))
	for _, a := range sp.Activations {
		act, err := parseAct(a)
		if err != nil {
			return err
		}
		acts = append(acts, act)
	}
	net := nn.New(sp.Sizes, acts, sp.Seed)
	if sp.Weights != nil {
		if len(sp.Weights) != len(net.Layers) {
			return fmt.Errorf("weights: got %d layers, want %d", len(sp.Weights), len(net.Layers))
		}
		for li, l := range net.Layers {
			for i := range l.W {
				copy(l.W[i], sp.Weights[li][i])
			}
			if sp.Biases != nil {
				copy(l.B, sp.Biases[li])
			}
		}
	}
	qc := quant.DefaultConfig()
	if sp.OutputScale > 0 {
		qc.OutputScale = sp.OutputScale
	}
	mod, err := codegen.Build(quant.Quantize(net, qc), sp.Name)
	if err != nil {
		return err
	}
	if emitRuntime {
		fmt.Fprintln(out, codegen.RuntimeSource())
	}
	_, err = fmt.Fprint(out, mod.Source)
	return err
}

func main() {
	var (
		inPath  = flag.String("in", "", "spec file (default stdin)")
		outPath = flag.String("out", "", "output file (default stdout)")
		runtime = flag.Bool("runtime", false, "also emit the snapshot runtime support source")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := run(in, out, *runtime); err != nil {
		fmt.Fprintln(os.Stderr, "lfgen:", err)
		os.Exit(1)
	}
}
