// Command lfsim runs ad-hoc congestion-control scenarios on the simulated
// testbed: one dumbbell, N flows under a chosen scheme, with goodput,
// retransmission and CPU reports. It is the quick-look companion to the
// structured experiments in cmd/lfbench.
//
// Example:
//
//	lfsim -cc lf-aurora -flows 4 -duration 5s -congested
//	lfsim -cc ccp-aurora -interval 10ms -flows 10
//	lfsim -cc bbr -flows 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/liteflow-sim/liteflow/internal/cc"
	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/quant"
	"github.com/liteflow-sim/liteflow/internal/tcp"
	"github.com/liteflow-sim/liteflow/internal/topo"
)

func main() {
	var (
		scheme    = flag.String("cc", "bbr", "scheme: bbr | cubic | lf-aurora | lf-mocc | ccp-aurora | ccp-mocc")
		flows     = flag.Int("flows", 1, "concurrent flows")
		duration  = flag.Duration("duration", 5*time.Second, "measured duration (after 2s warmup)")
		interval  = flag.Duration("interval", 10*time.Millisecond, "CCP communication interval (0 = per-ACK)")
		congested = flag.Bool("congested", false, "1 Gbps bottleneck + 0.1 Gbps UDP background")
	)
	flag.Parse()

	eng := netsim.NewEngine()
	opts := topo.TestbedOpts(1)
	if !*congested {
		opts.BottleneckBps = 40e9
		opts.BufferBytes = 4 << 20
	}
	d := topo.NewDumbbell(eng, opts)
	costs := ksim.DefaultCosts()
	d.AttachCPUs(4, costs)
	sender, receiver := d.Senders[0], d.Receivers[0]

	if *congested {
		u := tcp.NewUDPSource(d.UDPHost, 9999, receiver.ID, 100e6)
		u.Start()
		defer u.Stop()
	}

	// Policy nets for the NN schemes.
	needAurora := *scheme == "lf-aurora" || *scheme == "ccp-aurora"
	needMOCC := *scheme == "lf-mocc" || *scheme == "ccp-mocc"
	var lf *core.Core
	var policy cc.Policy
	var macs int
	if needAurora || needMOCC {
		net := cc.NewAuroraNet(1)
		if needMOCC {
			net = cc.NewMOCCNet(1)
		}
		fmt.Fprintln(os.Stderr, "pretraining policy network…")
		cc.Pretrain(net, 400, 2)
		policy = cc.NewNNPolicy(net)
		macs = net.MACs()
		if *scheme == "lf-aurora" || *scheme == "lf-mocc" {
			cfg := core.DefaultConfig()
			cfg.FlowCacheTimeout = 0
			lf = core.New(eng, sender.CPU, costs, cfg)
			mod, err := codegen.Build(quant.Quantize(net, cfg.Quant), "model")
			if err != nil {
				fmt.Fprintln(os.Stderr, "lfsim:", err)
				os.Exit(1)
			}
			if _, err := lf.RegisterModel(mod); err != nil {
				fmt.Fprintln(os.Stderr, "lfsim:", err)
				os.Exit(1)
			}
		}
	}

	var ctrls []*cc.MIController
	makeCtrl := func(flow netsim.FlowID) tcp.CongestionControl {
		switch *scheme {
		case "bbr":
			return cc.NewBBR()
		case "cubic":
			return cc.NewCubic()
		case "lf-aurora", "lf-mocc":
			m := cc.NewMIController(eng, core.NewFlowBackend(lf, flow), 500e6)
			ctrls = append(ctrls, m)
			return m
		case "ccp-aurora", "ccp-mocc":
			b := &cc.CCPBackend{Eng: eng, CPU: sender.CPU, Costs: costs,
				Policy: policy, Interval: netsim.Time(interval.Nanoseconds()), UserMACs: macs}
			m := cc.NewMIController(eng, b, 500e6)
			ctrls = append(ctrls, m)
			return m
		}
		fmt.Fprintf(os.Stderr, "lfsim: unknown scheme %q\n", *scheme)
		os.Exit(2)
		return nil
	}

	perFlow := make([]int64, *flows)
	measuring := false
	var senders []*tcp.Sender
	for i := 0; i < *flows; i++ {
		i := i
		f := netsim.FlowID(i + 1)
		s := tcp.NewSender(sender, f, receiver.ID, 0, makeCtrl(f))
		rcv := tcp.NewReceiver(receiver, f, sender.ID)
		rcv.OnDeliver = func(n int, now netsim.Time) {
			if measuring {
				perFlow[i] += int64(n)
			}
		}
		s.Start()
		senders = append(senders, s)
	}

	warmup := 2 * netsim.Second
	eng.RunUntil(warmup)
	measuring = true
	sender.CPU.ResetAccounting()
	eng.RunUntil(warmup + netsim.Time(duration.Nanoseconds()))
	for _, m := range ctrls {
		m.Stop()
	}
	if lf != nil {
		lf.StopSweeper()
	}

	secs := duration.Seconds()
	var agg float64
	for i, b := range perFlow {
		g := float64(b*8) / secs / 1e9
		agg += g
		fmt.Printf("flow %2d: %7.3f Gbps (rtx %d, timeouts %d)\n", i+1, g,
			senders[i].Retransmits, senders[i].Timeouts)
	}
	fmt.Printf("aggregate: %.3f Gbps over %s\n", agg, *scheme)
	fmt.Printf("sender CPU: %s\n", sender.CPU.Report())
	if lf != nil {
		st := lf.Stats()
		fmt.Printf("liteflow core: %d queries, %d cache hits, %d models\n",
			st.Queries, st.CacheHits, lf.Models())
	}
}
